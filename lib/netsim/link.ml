type 'a item = { size : int; payload : 'a }

type stats = {
  offered : int;
  delivered : int;
  dropped_queue : int;
  dropped_random : int;
  bytes_delivered : int;
  max_queue : int;
}

type 'a t = {
  sim : Sim.t;
  rng : Pftk_stats.Rng.t;
  bandwidth : float;
  delay : float;
  deliver : 'a -> unit;
  discipline : Queue_discipline.t;
  disc_state : Queue_discipline.state;
  random_loss : (unit -> bool) option;
  queue : 'a item Queue.t;
  mutable transmitting : bool;
  mutable propagating : int;
  mutable offered : int;
  mutable delivered : int;
  mutable dropped_queue : int;
  mutable dropped_random : int;
  mutable bytes_delivered : int;
  mutable max_queue : int;
  mutable busy_time : float;
  mutable queue_area : float;  (* ∫ queue-length dt up to last_queue_event *)
  mutable last_queue_event : float;
}

let create ?(discipline = Queue_discipline.drop_tail ~capacity:64) ?random_loss
    ~sim ~rng ~bandwidth ~delay ~deliver () =
  if not (bandwidth > 0.) then invalid_arg "Link.create: bandwidth must be positive";
  if delay < 0. then invalid_arg "Link.create: negative delay";
  {
    sim;
    rng;
    bandwidth;
    delay;
    deliver;
    discipline;
    disc_state = Queue_discipline.init discipline;
    random_loss;
    queue = Queue.create ();
    transmitting = false;
    propagating = 0;
    offered = 0;
    delivered = 0;
    dropped_queue = 0;
    dropped_random = 0;
    bytes_delivered = 0;
    max_queue = 0;
    busy_time = 0.;
    queue_area = 0.;
    last_queue_event = 0.;
  }

let queue_length t = Queue.length t.queue
let in_flight t = t.propagating

(* Account the time spent at the current queue length; call before any
   length change so [queue_area] stays a step-function integral. *)
let observe_queue t =
  let now = Sim.now t.sim in
  t.queue_area <-
    t.queue_area +. (float_of_int (Queue.length t.queue) *. (now -. t.last_queue_event));
  t.last_queue_event <- now

let mean_queue t =
  let now = Sim.now t.sim in
  if now <= 0. then 0.
  else
    (t.queue_area
    +. (float_of_int (Queue.length t.queue) *. (now -. t.last_queue_event)))
    /. now

(* Pull the head of the queue into transmission; when its serialization
   completes, launch propagation and recurse on the next packet. *)
let rec start_transmission t =
  match Queue.peek_opt t.queue with
  | None -> t.transmitting <- false
  | Some { size; payload } ->
      t.transmitting <- true;
      let tx_time = float_of_int size /. t.bandwidth in
      t.busy_time <- t.busy_time +. tx_time;
      ignore
        (Sim.schedule t.sim ~delay:tx_time (fun () ->
             observe_queue t;
             ignore (Queue.pop t.queue);
             Queue_discipline.on_dequeue t.discipline t.disc_state
               ~queue_length:(Queue.length t.queue);
             t.propagating <- t.propagating + 1;
             ignore
               (Sim.schedule t.sim ~delay:t.delay (fun () ->
                    t.propagating <- t.propagating - 1;
                    t.delivered <- t.delivered + 1;
                    t.bytes_delivered <- t.bytes_delivered + size;
                    t.deliver payload));
             start_transmission t))

let send (t : _ t) ~size payload =
  if size <= 0 then invalid_arg "Link.send: size must be positive";
  t.offered <- t.offered + 1;
  let randomly_lost =
    match t.random_loss with Some lossy -> lossy () | None -> false
  in
  if randomly_lost then begin
    t.dropped_random <- t.dropped_random + 1;
    false
  end
  else if
    not
      (Queue_discipline.admit t.discipline t.disc_state ~rng:t.rng
         ~queue_length:(Queue.length t.queue))
  then begin
    t.dropped_queue <- t.dropped_queue + 1;
    false
  end
  else begin
    observe_queue t;
    Queue.push { size; payload } t.queue;
    if Queue.length t.queue > t.max_queue then t.max_queue <- Queue.length t.queue;
    if not t.transmitting then start_transmission t;
    true
  end

let stats (t : _ t) : stats =
  {
    offered = t.offered;
    delivered = t.delivered;
    dropped_queue = t.dropped_queue;
    dropped_random = t.dropped_random;
    bytes_delivered = t.bytes_delivered;
    max_queue = t.max_queue;
  }

let busy_time t = t.busy_time
let delay t = t.delay
