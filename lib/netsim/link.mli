(** A unidirectional network link: a FIFO service queue drained at a fixed
    bandwidth, followed by a fixed propagation delay, with a pluggable
    buffer-management discipline and an optional random-loss hook.

    The payload type is abstract so the TCP layer can ship its own segment
    records through without the simulator knowing about TCP. *)

type 'a t

type stats = {
  offered : int;  (** Packets presented to {!send}. *)
  delivered : int;  (** Packets handed to the receive callback. *)
  dropped_queue : int;  (** Dropped by the queue discipline. *)
  dropped_random : int;  (** Dropped by the random-loss hook. *)
  bytes_delivered : int;
  max_queue : int;  (** High-water mark of the queue, packets. *)
}

val create :
  ?discipline:Queue_discipline.t ->
  ?random_loss:(unit -> bool) ->
  sim:Sim.t ->
  rng:Pftk_stats.Rng.t ->
  bandwidth:float ->
  delay:float ->
  deliver:('a -> unit) ->
  unit ->
  'a t
(** [create ~sim ~rng ~bandwidth ~delay ~deliver ()] where [bandwidth] is in
    bytes per second and [delay] is one-way propagation in seconds.
    [discipline] defaults to a 64-packet drop-tail queue.  [random_loss],
    when supplied, is consulted per packet {e before} the queue: returning
    [true] discards the packet (models drops elsewhere on the path).
    Raises [Invalid_argument] for nonpositive [bandwidth] or negative
    [delay]. *)

val send : 'a t -> size:int -> 'a -> bool
(** Offer a packet of [size] bytes.  [false] if it was dropped on entry;
    [true] means it will be delivered after queueing + transmission +
    propagation.  Raises [Invalid_argument] when [size <= 0]. *)

val queue_length : 'a t -> int
(** Packets waiting or in transmission. *)

val in_flight : 'a t -> int
(** Packets currently in propagation (sent, not yet delivered). *)

val stats : 'a t -> stats

val busy_time : 'a t -> float
(** Cumulative transmission time, for utilization accounting. *)

val mean_queue : 'a t -> float
(** Time-averaged queue length (packets waiting or in transmission) from
    time 0 to the simulator's current time; 0 before any time has passed.
    This is the occupancy observable the mean-field backend predicts. *)

val delay : 'a t -> float
(** The link's one-way propagation delay, seconds. *)
