type event = {
  time : float;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
}

(* Shared heap-padding sentinel. Although [cancelled] is a mutable
   field, the sentinel is never mutated: it is born cancelled and no
   code path un-cancels an event, so sharing it across domains is
   race-free. *)
let dummy_event = { time = 0.; seq = -1; action = ignore; cancelled = true }
[@@lint.allow "L3"]

let create () =
  { heap = Array.make 64 dummy_event; size = 0; clock = 0.; next_seq = 0 }

let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let bigger = Array.make (2 * Array.length t.heap) dummy_event in
  Array.blit t.heap 0 bigger 0 t.size;
  t.heap <- bigger

let sift_up t i =
  let e = t.heap.(i) in
  let rec loop i =
    if i = 0 then i
    else
      let parent = (i - 1) / 2 in
      if before e t.heap.(parent) then begin
        t.heap.(i) <- t.heap.(parent);
        loop parent
      end
      else i
  in
  t.heap.(loop i) <- e

let sift_down t i =
  let e = t.heap.(i) in
  let rec loop i =
    let l = (2 * i) + 1 in
    if l >= t.size then i
    else begin
      let child =
        if l + 1 < t.size && before t.heap.(l + 1) t.heap.(l) then l + 1 else l
      in
      if before t.heap.(child) e then begin
        t.heap.(i) <- t.heap.(child);
        loop child
      end
      else i
    end
  in
  t.heap.(loop i) <- e

let push t e =
  if t.size = Array.length t.heap then grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let e = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    sift_down t 0
  end;
  t.heap.(t.size) <- dummy_event;
  e

let schedule_at t ~time action =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  let e = { time; seq = t.next_seq; action; cancelled = false } in
  t.next_seq <- t.next_seq + 1;
  push t e;
  e

let schedule t ~delay action =
  if delay < 0. then invalid_arg "Sim.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) action

let cancel e =
  if not e.cancelled then e.cancelled <- true

let cancelled e = e.cancelled

let pending t =
  let n = ref 0 in
  for i = 0 to t.size - 1 do
    if not t.heap.(i).cancelled then incr n
  done;
  !n

let step t =
  let rec next () =
    if t.size = 0 then false
    else begin
      let e = pop t in
      if e.cancelled then next ()
      else begin
        t.clock <- e.time;
        e.action ();
        true
      end
    end
  in
  next ()

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some horizon ->
      let rec loop () =
        (* Discard cancelled heads first: the horizon check must see the
           next event that will actually fire, or [step] would leap past
           the horizon through a cancelled head. *)
        while t.size > 0 && t.heap.(0).cancelled do
          ignore (pop t)
        done;
        if t.size = 0 then t.clock <- Float.max t.clock horizon
        else if t.heap.(0).time > horizon then
          t.clock <- Float.max t.clock horizon
        else begin
          ignore (step t);
          loop ()
        end
      in
      loop ()
