(** Multiple flows through one bottleneck: the "TCP-friendliness" testbed.

    The paper's motivation (§I) for a closed-form B(p) is letting a
    non-TCP flow pick a send rate that a TCP flow would get under the same
    conditions.  This module runs N flows — TCP Reno connections and/or
    TFRC-style equation-paced flows — through a single shared drop-tail
    bottleneck and reports each flow's goodput, so the claim can be checked
    end to end: a paced flow holding to eq. (33) should neither starve nor
    starve-out the Reno flows it shares the queue with.

    Topology: every sender feeds one shared forward link (the bottleneck);
    each flow gets its own uncongested reverse path for ACKs/feedback.
    TFRC feedback is idealized (the receiver's loss/RTT observations reach
    the controller instantly once per epoch); the pacing itself and all
    data-path queueing/loss are simulated faithfully. *)

type kind =
  | Reno_flow of Reno.config
  | Tfrc_flow of { mss : int }
      (** Equation-paced at {!Pftk_core.Tfrc.Controller.allowed_rate}. *)
  | Cross_flow of Pftk_netsim.Cross_traffic.config
      (** Unresponsive ON/OFF background traffic: the stand-in for the
          congested routers' other users. *)

type spec = {
  name : string;
  kind : kind;
  start_time : float; [@pftk.unit "s"]
  (** When the flow begins sending, seconds. *)
}

val reno : ?config:Reno.config -> string -> spec
(** A Reno flow starting at t = 0. *)

val tfrc : ?mss:int -> string -> spec
(** A TFRC flow starting at t = 0 (default MSS 1460). *)

val cross : ?config:Pftk_netsim.Cross_traffic.config -> string -> spec
(** An ON/OFF background source starting at t = 0. *)

type flow_result = {
  name : string;
  kind_label : string;  (** "reno", "tfrc" or "cross". *)
  packets_sent : int;
  packets_delivered : int;
  goodput : float; [@pftk.unit "pkt/s"]
  (** Delivered packets/s over the flow's active time. *)
  loss_rate : float; [@pftk.unit "prob"]
  (** Fraction of this flow's packets dropped. *)
}

type result = {
  flows : flow_result list;
  bottleneck_utilization : float; [@pftk.unit "1"]
  (** Busy fraction of the shared link. *)
  bottleneck_mean_queue : float; [@pftk.unit "pkt"]
      (** Time-averaged bottleneck occupancy, packets — the observable the
          mean-field backend's equilibrium queue predicts. *)
  jain_fairness : float; [@pftk.unit "1"]
      (** Jain's index over per-flow goodputs, in [(1/n), 1]. *)
}

val run :
  ?seed:int64 ->
  ?buffer:int ->
  ?discipline:Pftk_netsim.Queue_discipline.t ->
  ?bandwidth:float ->
  ?one_way_delay:float ->
  duration:float ->
  spec list ->
  result
(** Defaults: 64-packet drop-tail buffer, 1.25 MB/s bottleneck, 20 ms
    one-way delay.  [discipline] overrides the bottleneck's queue
    management wholesale (e.g. RED for the mean-field cross-validation);
    when given, [buffer] is ignored.  Raises [Invalid_argument] on an
    empty flow list or nonpositive duration. *)
