(** End-to-end assembly: a Reno sender and a delayed-ACK receiver joined by
    a duplex {!Pftk_netsim.Path}, with optional random loss injected on
    either direction — one simulated measurement connection of §III.

    A scenario describes the path the way the paper's Table II rows
    characterize theirs; [run] executes a bulk transfer for a given
    duration and returns the sender's trace plus endpoint statistics. *)

type scenario = {
  forward_bandwidth : float; [@pftk.unit "byte/s"]
  (** bytes/s on the data direction. *)
  reverse_bandwidth : float; [@pftk.unit "byte/s"]
  forward_delay : float; [@pftk.unit "s"]
  (** one-way propagation, seconds. *)
  reverse_delay : float; [@pftk.unit "s"]
  buffer : Pftk_netsim.Queue_discipline.t;  (** Bottleneck buffer. *)
  data_loss : Pftk_loss.Loss_process.t option;
      (** Extra random loss on data packets (cross-traffic stand-in). *)
  ack_loss : Pftk_loss.Loss_process.t option;
  sender : Reno.config;
  ack_every : int;  (** Receiver's delayed-ACK factor (the model's b). *)
}

val default_scenario : scenario
(** A 1.5 Mbit/s bottleneck, 50 ms one-way delay, 32-packet drop-tail
    buffer, no injected loss, default Reno sender, delayed ACKs (b = 2). *)

type result = {
  recorder : Pftk_trace.Recorder.t;  (** The sender-side trace. *)
  duration : float; [@pftk.unit "s"]
  packets_sent : int;
  segments_delivered : int;  (** Receiver-side distinct in-order segments. *)
  retransmissions : int;
  timeouts : int;
  fast_retransmits : int;
  send_rate : float; [@pftk.unit "pkt/s"]  (** packets/s — the paper's B. *)
  throughput : float; [@pftk.unit "pkt/s"]
  (** packets/s delivered — the paper's T. *)
  rtt_flight_samples : (float * int) array;
  forward_stats : Pftk_netsim.Link.stats;
}

val run :
  ?seed:int64 -> ?recorder:Pftk_trace.Recorder.t -> duration:float ->
  scenario -> result
[@@pftk.unit "_ -> _ -> s -> _ -> _"]
(** Simulate a saturated transfer for [duration] simulated seconds.
    [recorder] substitutes a caller-built recorder for the internal one —
    pass [Recorder.create ~buffered:false ()] with subscribed sinks to run
    arbitrarily long transfers in O(1) memory, feeding the
    [Pftk_online] estimators as the transfer progresses (the returned
    [result.recorder] is then unbuffered). *)

val rtt_window_correlation : result -> float
[@@pftk.unit "_ -> 1"]
(** Pearson correlation between RTT samples and packets in flight — the
    §IV independence check ([-0.1, 0.1] on normal paths, up to 0.97 on the
    modem path of Fig. 11).  Returns [0.] with fewer than two samples. *)
