module Sim = Pftk_netsim.Sim
module Recorder = Pftk_trace.Recorder
module Event = Pftk_trace.Event

type recovery_style = Reno_recovery | Newreno_recovery | Sack_recovery

type config = {
  mss : int;
  header : int;
  wm : int;
  initial_cwnd : float;
  initial_ssthresh : float;
  dup_ack_threshold : int;
  backoff_cap : int;
  min_rto : float;
  max_rto : float;
  recovery : recovery_style;
}

let default_config =
  {
    mss = 1460;
    header = 40;
    wm = 32;
    initial_cwnd = 1.;
    initial_ssthresh = 64.;
    dup_ack_threshold = 3;
    backoff_cap = 6;
    min_rto = 0.2;
    max_rto = 240.;
    recovery = Reno_recovery;
  }

let validate_config c =
  if c.mss <= 0 || c.header < 0 then invalid_arg "Reno: bad segment sizes";
  if c.wm < 1 then invalid_arg "Reno: wm must be >= 1";
  if not (c.initial_cwnd >= 1.) then invalid_arg "Reno: initial_cwnd must be >= 1";
  if c.dup_ack_threshold < 1 then invalid_arg "Reno: dup_ack_threshold must be >= 1";
  if c.backoff_cap < 0 then invalid_arg "Reno: backoff_cap must be >= 0";
  if not (0. < c.min_rto && c.min_rto <= c.max_rto) then
    invalid_arg "Reno: inconsistent RTO bounds"

type t = {
  config : config;
  sim : Sim.t;
  recorder : Recorder.t;
  transmit : Segment.data -> unit;
  rto : Rto.t;
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable cwnd : float;
  mutable ssthresh : float;
  mutable dup_acks : int;
  mutable in_fast_recovery : bool;
  mutable recover : int;  (* highest seq outstanding at fast-recovery entry *)
  sacked : (int, unit) Hashtbl.t;  (* SACKed above snd_una *)
  fr_rexmitted : (int, unit) Hashtbl.t;  (* holes already resent this recovery *)
  mutable backoff : int;  (* consecutive unacked timeouts *)
  mutable pipe : int;  (* segments believed to be in the network *)
  mutable rexmit_next : int;  (* go-back-N cursor, meaningful below recovery_point *)
  mutable recovery_point : int;
  mutable timer : Sim.event option;
  mutable timing : (int * float * int) option;
      (* (seq, sent_at, flight_then): the one segment currently being timed
         for an RTT sample, BSD-style. *)
  mutable stopped : bool;
  mutable packets_sent : int;
  mutable retransmissions : int;
  mutable timeout_count : int;
  mutable fast_retransmit_count : int;
  mutable rtt_flight : (float * int) list;
}

let create ?(config = default_config) ~sim ~recorder ~transmit () =
  validate_config config;
  {
    config;
    sim;
    recorder;
    transmit;
    rto = Rto.create ~min_rto:config.min_rto ~max_rto:config.max_rto ();
    snd_una = 0;
    snd_nxt = 0;
    cwnd = config.initial_cwnd;
    ssthresh = config.initial_ssthresh;
    dup_acks = 0;
    in_fast_recovery = false;
    recover = -1;
    sacked = Hashtbl.create 64;
    fr_rexmitted = Hashtbl.create 64;
    backoff = 0;
    pipe = 0;
    rexmit_next = 0;
    recovery_point = 0;
    timer = None;
    timing = None;
    stopped = false;
    packets_sent = 0;
    retransmissions = 0;
    timeout_count = 0;
    fast_retransmit_count = 0;
    rtt_flight = [];
  }

let flight t = t.snd_nxt - t.snd_una

let effective_window t =
  min (max 1 (int_of_float t.cwnd)) t.config.wm

let timer_value t =
  let multiplier = float_of_int (1 lsl min t.backoff t.config.backoff_cap) in
  Float.min t.config.max_rto (Rto.rto t.rto *. multiplier)

let cancel_timer t =
  match t.timer with
  | Some e ->
      Sim.cancel e;
      t.timer <- None
  | None -> ()

let record t kind = Recorder.record t.recorder ~time:(Sim.now t.sim) kind

let send_segment t ~seq ~retransmission =
  let wire = t.config.mss + t.config.header in
  t.packets_sent <- t.packets_sent + 1;
  t.pipe <- t.pipe + 1;
  if retransmission then begin
    t.retransmissions <- t.retransmissions + 1;
    (* Karn: a retransmission invalidates any in-progress timing of that
       segment. *)
    match t.timing with
    | Some (timed, _, _) when timed = seq -> t.timing <- None
    | Some _ | None -> ()
  end
  else if t.timing = None then t.timing <- Some (seq, Sim.now t.sim, flight t);
  record t
    (Event.Segment_sent
       { seq; retransmission; cwnd = t.cwnd; flight = flight t });
  t.transmit { Segment.seq; size = wire; retransmission }

let rec arm_timer t =
  cancel_timer t;
  if not t.stopped then
    t.timer <- Some (Sim.schedule t.sim ~delay:(timer_value t) (on_timeout t))

and on_timeout t () =
  t.timer <- None;
  if not t.stopped then begin
    let expired = timer_value t in
    t.backoff <- t.backoff + 1;
    t.timeout_count <- t.timeout_count + 1;
    record t (Event.Timer_fired { backoff = t.backoff; rto = expired });
    t.ssthresh <- Float.max 2. (float_of_int (flight t) /. 2.);
    t.cwnd <- 1.;
    t.dup_acks <- 0;
    t.in_fast_recovery <- false;
    (* Go-back-N: everything outstanding is presumed lost; resend it
       progressively as the window reopens, pruning on cumulative ACKs. *)
    t.recovery_point <- t.snd_nxt;
    t.rexmit_next <- t.snd_una;
    t.pipe <- 0;
    (* Whatever was being timed is now meaningless: its ACK, if it ever
       comes, will have waited out the recovery. *)
    t.timing <- None;
    Hashtbl.reset t.sacked;
    Hashtbl.reset t.fr_rexmitted;
    send_segment t ~seq:t.snd_una ~retransmission:true;
    t.rexmit_next <- t.snd_una + 1;
    arm_timer t
  end

(* How many segments the window permits right now: the congestion window
   minus the pipe estimate (segments believed still in the network -- the
   cumulative-ACK analog of RFC 3517's pipe).  During go-back-N recovery
   the sendable segments are retransmissions below [recovery_point]. *)
let fill_window t =
  if not t.stopped then begin
    let budget = ref (effective_window t - t.pipe) in
    (* SACK hole-filling pass: during fast recovery, resend un-SACKed
       segments below [recover] exactly once per recovery (RFC 6675's
       scoreboard, cumulative-ACK flavored).  A hole only counts as lost
       once at least [dup_ack_threshold] segments above it have been
       SACKed (the IsLost rule), so in-flight data is not resent
       spuriously. *)
    if t.in_fast_recovery && t.config.recovery = Sack_recovery then begin
      let total_sacked = Hashtbl.length t.sacked in
      let sacked_at_or_below = ref 0 in
      let seq = ref t.snd_una in
      while !budget > 0 && !seq <= t.recover do
        let is_sacked = Hashtbl.mem t.sacked !seq in
        if is_sacked then incr sacked_at_or_below;
        let sacked_above = total_sacked - !sacked_at_or_below in
        if
          (not is_sacked)
          && sacked_above >= t.config.dup_ack_threshold
          && not (Hashtbl.mem t.fr_rexmitted !seq)
        then begin
          Hashtbl.replace t.fr_rexmitted !seq ();
          send_segment t ~seq:!seq ~retransmission:true;
          decr budget
        end;
        incr seq
      done
    end;
    (* Retransmission pass. *)
    while !budget > 0 && t.rexmit_next < t.recovery_point do
      let seq = max t.rexmit_next t.snd_una in
      if seq >= t.recovery_point then t.rexmit_next <- t.recovery_point
      else begin
        send_segment t ~seq ~retransmission:true;
        t.rexmit_next <- seq + 1;
        decr budget
      end
    done;
    (* New data pass. *)
    while !budget > 0 do
      send_segment t ~seq:t.snd_nxt ~retransmission:false;
      t.snd_nxt <- t.snd_nxt + 1;
      decr budget
    done;
    if flight t > 0 && t.timer = None then arm_timer t
  end

let start t =
  if t.snd_nxt = 0 then fill_window t

let in_go_back_n t = t.rexmit_next < t.recovery_point

(* BSD-style single-segment timing with Karn's rule: exactly one segment is
   timed at a time; timing starts when the segment is first sent, is
   abandoned if that segment is retransmitted or any timeout intervenes,
   and yields a sample when the cumulative ACK first covers it.  Timing a
   single designated segment keeps recovery-delayed cumulative ACKs from
   inflating the estimator. *)
let take_rtt_sample t ~upto =
  match t.timing with
  | Some (seq, at, flight_then) when upto > seq ->
      t.timing <- None;
      let sample = Sim.now t.sim -. at in
      if sample > 0. then begin
        Rto.observe t.rto sample;
        t.rtt_flight <- (sample, flight_then) :: t.rtt_flight;
        record t
          (Event.Rtt_sample
             {
               sample;
               srtt = Option.value ~default:sample (Rto.srtt t.rto);
               rto = Rto.rto t.rto;
             })
      end
  | Some _ | None -> ()

let on_new_ack t ack =
  take_rtt_sample t ~upto:ack;
  (* Drop bookkeeping for acked segments.  Segments already SACKed were
     deducted from the pipe when their block arrived. *)
  let newly = ref 0 in
  for seq = t.snd_una to ack - 1 do
    if Hashtbl.mem t.sacked seq then Hashtbl.remove t.sacked seq
    else incr newly;
    Hashtbl.remove t.fr_rexmitted seq
  done;
  t.pipe <- max 0 (t.pipe - !newly);
  t.snd_una <- ack;
  if t.snd_nxt < t.snd_una then t.snd_nxt <- t.snd_una;
  (* Dropped copies never produce ACKs, so [pipe] would drift upward and
     throttle the window forever; anything beyond the unacked range is a
     duplicate whose fate no longer matters. *)
  t.pipe <- min t.pipe (flight t);
  t.backoff <- 0;
  if t.in_fast_recovery then begin
    let past_recovery = ack > t.recover in
    match t.config.recovery with
    | Reno_recovery ->
        (* Reno: leave fast recovery on the first ACK for new data. *)
        t.cwnd <- t.ssthresh;
        t.in_fast_recovery <- false
    | Newreno_recovery ->
        if past_recovery then begin
          t.cwnd <- t.ssthresh;
          t.in_fast_recovery <- false
        end
        else begin
          (* Partial ACK: the next hole is lost too -- resend it at once
             and stay in recovery (RFC 6582), deflating by the amount
             acked. *)
          t.cwnd <- Float.max t.ssthresh (t.cwnd -. float_of_int !newly +. 1.);
          if not (Hashtbl.mem t.fr_rexmitted t.snd_una) then begin
            Hashtbl.replace t.fr_rexmitted t.snd_una ();
            send_segment t ~seq:t.snd_una ~retransmission:true
          end;
          arm_timer t
        end
    | Sack_recovery ->
        if past_recovery then begin
          t.cwnd <- t.ssthresh;
          t.in_fast_recovery <- false;
          Hashtbl.reset t.fr_rexmitted
        end
        (* else: fill_window's hole pass keeps resending under the pipe. *)
  end
  else if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1. (* slow start *)
  else t.cwnd <- t.cwnd +. (1. /. t.cwnd);
  (* congestion avoidance: +1/W per ACK, the paper's growth law *)
  t.cwnd <- Float.min t.cwnd (float_of_int t.config.wm);
  t.dup_acks <- 0;
  if flight t > 0 || in_go_back_n t then arm_timer t else cancel_timer t;
  fill_window t

let on_dup_ack t =
  if flight t > 0 && not (in_go_back_n t) then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.in_fast_recovery then begin
      (* Reno/NewReno inflate the window per dup ACK; SACK recovery is
         governed by the pipe instead (each SACK block already freed
         budget when it was processed). *)
      if t.config.recovery <> Sack_recovery then t.cwnd <- t.cwnd +. 1.;
      fill_window t
    end
    else if t.dup_acks = t.config.dup_ack_threshold then begin
      t.fast_retransmit_count <- t.fast_retransmit_count + 1;
      record t (Event.Fast_retransmit_triggered { seq = t.snd_una });
      t.ssthresh <- Float.max 2. (float_of_int (flight t) /. 2.);
      t.recover <- t.snd_nxt - 1;
      Hashtbl.reset t.fr_rexmitted;
      Hashtbl.replace t.fr_rexmitted t.snd_una ();
      send_segment t ~seq:t.snd_una ~retransmission:true;
      t.cwnd <-
        (if t.config.recovery = Sack_recovery then t.ssthresh
         else t.ssthresh +. float_of_int t.config.dup_ack_threshold);
      t.in_fast_recovery <- true;
      arm_timer t
    end
  end

(* Register newly SACKed segments; each one has left the network, so the
   pipe shrinks with it. *)
let process_sack_blocks t blocks =
  List.iter
    (fun (first, last) ->
      for seq = max first t.snd_una to last do
        if seq < t.snd_nxt && not (Hashtbl.mem t.sacked seq) then begin
          Hashtbl.replace t.sacked seq ();
          t.pipe <- max 0 (t.pipe - 1)
        end
      done)
    blocks

let on_ack t ({ Segment.ack; sacked } : Segment.ack) =
  if not t.stopped then begin
    record t (Event.Ack_received { ack });
    if t.config.recovery = Sack_recovery then process_sack_blocks t sacked;
    if ack > t.snd_una then on_new_ack t ack
    else if ack = t.snd_una then on_dup_ack t
    (* ack < snd_una: stale reordered ACK, ignore *)
  end

let stop t =
  t.stopped <- true;
  cancel_timer t;
  record t Event.Connection_closed

let cwnd t = t.cwnd
let ssthresh t = t.ssthresh
let snd_una t = t.snd_una
let snd_nxt t = t.snd_nxt
let packets_sent t = t.packets_sent
let retransmissions t = t.retransmissions
let timeout_count t = t.timeout_count
let fast_retransmit_count t = t.fast_retransmit_count
let rtt_flight_samples t = Array.of_list (List.rev t.rtt_flight)
