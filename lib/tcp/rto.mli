(** Retransmission-timeout estimation: Jacobson's smoothed RTT/variance
    filter with Karn's rule.

    Karn's rule — never take an RTT sample from a segment that was
    retransmitted — is applied by the {e caller} (the sender knows which
    segments were retransmitted); the paper's own trace analysis follows
    the same algorithm when reporting average RTT (§III). *)

type t

val create :
  ?initial_rto:float ->
  ?min_rto:float ->
  ?max_rto:float ->
  ?granularity:float ->
  ?alpha:float ->
  ?beta:float ->
  unit ->
  t
[@@pftk.unit "s -> s -> s -> s -> 1 -> 1 -> _ -> _"]
(** Defaults: initial RTO 3 s (RFC 1122), min 0.2 s (typical late-90s BSD
    tick-based floor), max 240 s, granularity 0.1 s, gains
    [alpha = 1/8], [beta = 1/4]. *)

val observe : t -> float -> unit
[@@pftk.unit "_ -> s -> _"]
(** Feed one RTT sample (seconds, positive).  First sample initializes
    [srtt = r], [rttvar = r/2]; later samples run the EWMA pair. *)

val srtt : t -> float option
[@@pftk.unit "_ -> s"]
(** Smoothed RTT; [None] before the first sample. *)

val rttvar : t -> float option
[@@pftk.unit "_ -> s"]

val rto : t -> float
[@@pftk.unit "_ -> s"]
(** Current timer value: [srtt + max(granularity, 4 rttvar)], clamped to
    [\[min_rto, max_rto\]]; [initial_rto] before any sample. *)

val samples : t -> int
