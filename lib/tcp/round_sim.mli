(** A Monte-Carlo simulator of the paper's {e model process} itself, at
    round granularity (§II).

    Where {!module:Reno} is a faithful packet-level protocol implementation,
    this simulator executes exactly the stochastic process the analysis
    assumes: transmission proceeds in rounds of W packets lasting one RTT;
    the window grows [1/b] per round; losses within a round are correlated
    (everything after the first loss is lost) and rounds are independent;
    a loss indication is classified TD or TO by the penultimate/last-round
    duplicate-ACK count of Fig. 4; timeout sequences back off exponentially
    with the timer capped at [2^backoff_cap * T0]; after a TD the window
    halves, after a TO it restarts from one.

    Agreement between this simulator and eq. (32) validates the algebra of
    the derivation; agreement between {!module:Reno} and eq. (32) validates
    the modeling assumptions.  Both are exercised in the test suite and
    benches.

    It is also hour-long-trace fast: cost is O(packets), no event queue. *)

type flavor =
  | Model_reno
      (** Exactly the paper's model process: linear window growth
          everywhere, no slow start (the paper assumes slow-start time is
          negligible). *)
  | Reno_slow_start
      (** Reno with slow start after timeouts (window doubles by factor
          [1 + 1/b] per round below ssthresh). *)
  | Tahoe
      (** No fast recovery: a TD indication also drops the window to one
          and slow-starts back to half the old window — the SunOS-style
          behavior Paxson observed (paper §IV). *)

type config = {
  flavor : flavor;  (** Default [Model_reno]. *)
  b : int;  (** Delayed-ACK factor (window growth 1/b per round). *)
  wm : int;  (** Receiver-limited maximum window, packets. *)
  t0 : float; [@pftk.unit "s"]  (** Single-timeout duration, seconds. *)
  rtt_mean : float; [@pftk.unit "s"]  (** Mean round duration, seconds. *)
  rtt_jitter : float; [@pftk.unit "1"]
      (** Std-dev of round durations as a fraction of the mean (rounds stay
          i.i.d., per the model's assumption); 0 for deterministic. *)
  aimd_increase : float; [@pftk.unit "1"]
      (** Additive-increase constant alpha: the window grows
          [alpha / b] per loss-free round.  1 is TCP. *)
  aimd_decrease : float; [@pftk.unit "1"]
      (** Multiplicative-decrease constant beta: a TD scales the window by
          [1 - beta].  0.5 is TCP. *)
  dup_ack_threshold : int;  (** Duplicate ACKs needed for a TD (3; Linux 2). *)
  backoff_cap : int;  (** Timer frozen at [2^backoff_cap * T0] (6; Irix 5). *)
  initial_window : float; [@pftk.unit "pkt"]
}

val default_config : config
(** b 2, wm 32, T0 2 s, RTT 0.2 s, jitter 0.1, threshold 3, cap 6. *)

val config_of_params : ?rtt_jitter:float -> Pftk_core.Params.t -> config
[@@pftk.unit "1 -> _ -> _"]
(** Lift model parameters into a simulator config (identity on
    [b]/[wm]/[t0]/[rtt]). *)

type result = {
  duration : float; [@pftk.unit "s"]  (** Simulated seconds actually elapsed. *)
  rounds : int;
  packets_sent : int;
  packets_delivered : int;
  td_events : int;
  to_sequences : int;
  to_by_backoff : int array;
      (** [to_by_backoff.(k-1)] = sequences of exactly [k] timeouts, for
          [k <= 5]; index 5 collects "6 or more" — Table II's T0..T5+
          columns. *)
  send_rate : float; [@pftk.unit "pkt/s"]  (** packets/s, the model's B. *)
  throughput : float; [@pftk.unit "pkt/s"]
  (** packets/s delivered, the model's T. *)
  loss_indications : int;  (** TD events + TO sequences. *)
  observed_p : float; [@pftk.unit "prob"]
  (** loss indications / packets sent (§III's estimate). *)
}

val run :
  ?seed:int64 ->
  ?recorder:Pftk_trace.Recorder.t ->
  duration:float ->
  loss:Pftk_loss.Loss_process.t ->
  config ->
  result
[@@pftk.unit "_ -> _ -> s -> _ -> _ -> _"]
(** Simulate until the virtual clock passes [duration].  When [recorder]
    is given, per-packet [Segment_sent], per-round [Round_started], and
    ground-truth [Fast_retransmit_triggered]/[Timer_fired] events are
    recorded for the trace-analysis pipeline. *)

val window_samples :
  ?seed:int64 -> rounds:int -> loss:Pftk_loss.Loss_process.t -> config -> float array
[@@pftk.unit "_ -> _ -> _ -> _ -> pkt"]
(** The window size at the start of each of [rounds] consecutive rounds —
    the sample paths plotted in Figs. 1, 3 and 5. *)
