module Sim = Pftk_netsim.Sim
module Link = Pftk_netsim.Link
module Path = Pftk_netsim.Path
module Queue_discipline = Pftk_netsim.Queue_discipline
module Loss_process = Pftk_loss.Loss_process
module Recorder = Pftk_trace.Recorder

type scenario = {
  forward_bandwidth : float;
  reverse_bandwidth : float;
  forward_delay : float;
  reverse_delay : float;
  buffer : Queue_discipline.t;
  data_loss : Loss_process.t option;
  ack_loss : Loss_process.t option;
  sender : Reno.config;
  ack_every : int;
}

let default_scenario =
  {
    forward_bandwidth = 187_500.;
    reverse_bandwidth = 187_500.;
    forward_delay = 0.05;
    reverse_delay = 0.05;
    buffer = Queue_discipline.drop_tail ~capacity:32;
    data_loss = None;
    ack_loss = None;
    sender = Reno.default_config;
    ack_every = 2;
  }

type result = {
  recorder : Recorder.t;
  duration : float;
  packets_sent : int;
  segments_delivered : int;
  retransmissions : int;
  timeouts : int;
  fast_retransmits : int;
  send_rate : float;
  throughput : float;
  rtt_flight_samples : (float * int) array;
  forward_stats : Link.stats;
}

let loss_hook = Option.map (fun process () -> Loss_process.drops process)

let run ?(seed = 42L) ?recorder ~duration scenario =
  if not (duration > 0.) then invalid_arg "Connection.run: duration must be positive";
  let sim = Sim.create () in
  let rng = Pftk_stats.Rng.create ~seed () in
  let recorder =
    match recorder with Some r -> r | None -> Recorder.create ()
  in
  (* The endpoints and the path are mutually referential; tie the knot with
     forward references resolved before the simulation starts. *)
  let sender_ref = ref None and receiver_ref = ref None in
  let path =
    Path.create
      ~forward_discipline:scenario.buffer
      ?forward_loss:(loss_hook scenario.data_loss)
      ?reverse_loss:(loss_hook scenario.ack_loss)
      ~sim ~rng
      ~forward_bandwidth:scenario.forward_bandwidth
      ~reverse_bandwidth:scenario.reverse_bandwidth
      ~forward_delay:scenario.forward_delay
      ~reverse_delay:scenario.reverse_delay
      ~deliver_data:(fun segment ->
        match !receiver_ref with
        | Some receiver -> Receiver.on_data receiver segment
        | None -> assert false)
      ~deliver_ack:(fun ack ->
        match !sender_ref with
        | Some sender -> Reno.on_ack sender ack
        | None -> assert false)
      ()
  in
  let receiver =
    Receiver.create ~ack_every:scenario.ack_every
      ~sack:(scenario.sender.Reno.recovery = Reno.Sack_recovery)
      ~sim
      ~send_ack:(fun ack -> ignore (Link.send path.Path.reverse ~size:40 ack))
      ()
  in
  receiver_ref := Some receiver;
  let sender =
    Reno.create ~config:scenario.sender ~sim ~recorder
      ~transmit:(fun segment ->
        ignore (Link.send path.Path.forward ~size:segment.Segment.size segment))
      ()
  in
  sender_ref := Some sender;
  Reno.start sender;
  Sim.run ~until:duration sim;
  Reno.stop sender;
  {
    recorder;
    duration;
    packets_sent = Reno.packets_sent sender;
    segments_delivered = Receiver.segments_received receiver;
    retransmissions = Reno.retransmissions sender;
    timeouts = Reno.timeout_count sender;
    fast_retransmits = Reno.fast_retransmit_count sender;
    send_rate = float_of_int (Reno.packets_sent sender) /. duration;
    throughput = float_of_int (Receiver.segments_received receiver) /. duration;
    rtt_flight_samples = Reno.rtt_flight_samples sender;
    forward_stats = Link.stats path.Path.forward;
  }

let rtt_window_correlation result =
  let samples = result.rtt_flight_samples in
  if Array.length samples < 2 then 0.
  else
    let rtts = Array.map fst samples in
    let flights = Array.map (fun (_, f) -> float_of_int f) samples in
    if Pftk_stats.Descriptive.std rtts = 0. || Pftk_stats.Descriptive.std flights = 0.
    then 0.
    else Pftk_stats.Correlation.pearson rtts flights
