(** A from-scratch TCP Reno bulk-transfer sender (saturated source).

    Implements the behaviors the paper's model targets (§II):
    slow start, congestion avoidance ([+1/cwnd] per ACK), fast retransmit
    on [dup_ack_threshold] duplicate ACKs with window halving, timeout with
    window reset to one and exponential timer backoff capped at
    [2^backoff_cap], a receiver-window clamp [wm], and Karn/Jacobson RTO
    estimation.  Loss recovery after a timeout is go-back-N with cumulative
    ACK pruning (classic pre-SACK Reno).

    The stack quirks the paper accounts for in §IV are configuration knobs:
    Linux-style TD after 2 duplicate ACKs ([dup_ack_threshold = 2]) and the
    Irix backoff cap of [2^5].

    The sender is transport-agnostic: it emits segments through a callback
    and is driven by {!on_ack} and its own simulator timers. *)

type recovery_style =
  | Reno_recovery
      (** Exit fast recovery on the first new ACK (classic Reno; collapses
          to a timeout when several packets of one window are lost). *)
  | Newreno_recovery
      (** Partial ACKs retransmit the next hole and stay in recovery
          (RFC 6582): one lost packet recovered per RTT, no timeout. *)
  | Sack_recovery
      (** The receiver reports SACK blocks; the sender's scoreboard resends
          all holes under the pipe limit within one recovery (RFC 6675,
          cumulative-ACK flavored). *)

type config = {
  mss : int;  (** Segment payload bytes (wire size adds [header]). *)
  header : int;
  wm : int;  (** Receiver-advertised window, packets (the model's W_m). *)
  initial_cwnd : float; [@pftk.unit "pkt"]
  initial_ssthresh : float; [@pftk.unit "pkt"]
  dup_ack_threshold : int;
  backoff_cap : int;
  min_rto : float; [@pftk.unit "s"]
  max_rto : float; [@pftk.unit "s"]
  recovery : recovery_style;  (** Default [Reno_recovery], the paper's. *)
}

val default_config : config
(** MSS 1460 B + 40 B headers, [wm] 32, initial cwnd 1, ssthresh 64,
    threshold 3, cap 6, RTO in [\[0.2 s, 240 s\]]. *)

type t

val create :
  ?config:config ->
  sim:Pftk_netsim.Sim.t ->
  recorder:Pftk_trace.Recorder.t ->
  transmit:(Segment.data -> unit) ->
  unit ->
  t

val start : t -> unit
(** Begin transmitting (fills the initial window). *)

val on_ack : t -> Segment.ack -> unit
(** Feed an arriving cumulative ACK. *)

val stop : t -> unit
(** Cancel timers; the sender becomes inert. *)

(** {2 Observables} *)

val cwnd : t -> float
[@@pftk.unit "_ -> pkt"]

val ssthresh : t -> float
[@@pftk.unit "_ -> pkt"]
val flight : t -> int
(** Outstanding segments, [snd_nxt - snd_una]. *)

val snd_una : t -> int
val snd_nxt : t -> int
val packets_sent : t -> int
(** All transmissions, retransmissions included (the model's send-rate
    numerator). *)

val retransmissions : t -> int
val timeout_count : t -> int
val fast_retransmit_count : t -> int

val rtt_flight_samples : t -> (float * int) array
(** Per valid RTT sample, the pair (sample, packets in flight when the
    timed segment was sent) — the data behind §IV's correlation check. *)
