module Sim = Pftk_netsim.Sim
module Link = Pftk_netsim.Link
module Queue_discipline = Pftk_netsim.Queue_discipline
module Recorder = Pftk_trace.Recorder
module Tfrc = Pftk_core.Tfrc

type kind =
  | Reno_flow of Reno.config
  | Tfrc_flow of { mss : int }
  | Cross_flow of Pftk_netsim.Cross_traffic.config

type spec = { name : string; kind : kind; start_time : float }

let reno ?(config = Reno.default_config) name =
  { name; kind = Reno_flow config; start_time = 0. }

let tfrc ?(mss = 1460) name = { name; kind = Tfrc_flow { mss }; start_time = 0. }

let cross ?(config = Pftk_netsim.Cross_traffic.default) name =
  { name; kind = Cross_flow config; start_time = 0. }

type flow_result = {
  name : string;
  kind_label : string;
  packets_sent : int;
  packets_delivered : int;
  goodput : float;
  loss_rate : float;
}

type result = {
  flows : flow_result list;
  bottleneck_utilization : float;
  bottleneck_mean_queue : float;
  jain_fairness : float;
}

(* Payload on the shared bottleneck: which flow, plus either a TCP segment
   or a paced datagram with its send timestamp (for RTT feedback). *)
type payload =
  | Tcp_data of int * Segment.data
  | Paced of { flow : int; seq : int; sent_at : float }
  | Background of int

(* Per-flow endpoint state, filled in as flows are instantiated. *)
type endpoint =
  | Tcp_endpoint of Reno.t * Receiver.t
  | Paced_endpoint of paced_state
  | Cross_endpoint of cross_state

and cross_state = {
  mutable source : Pftk_netsim.Cross_traffic.t option;
  mutable received : int;
}

and paced_state = {
  controller : Tfrc.Controller.t;
  mss : int;
  mutable next_seq : int;
  mutable rcv_expected : int;
  mutable sent : int;
  mutable delivered : int;
}

let jain goodputs =
  let n = float_of_int (Array.length goodputs) in
  let total = Array.fold_left ( +. ) 0. goodputs in
  let sq = Array.fold_left (fun acc g -> acc +. (g *. g)) 0. goodputs in
  if sq = 0. then 1. else total *. total /. (n *. sq)

let run ?(seed = 53L) ?(buffer = 64) ?discipline ?(bandwidth = 1_250_000.)
    ?(one_way_delay = 0.02) ~duration specs =
  if specs = [] then invalid_arg "Shared_bottleneck.run: no flows";
  if not (duration > 0.) then
    invalid_arg "Shared_bottleneck.run: duration must be positive";
  let sim = Sim.create () in
  let rng = Pftk_stats.Rng.create ~seed () in
  let n = List.length specs in
  let endpoints : endpoint option array = Array.make n None in
  (* Shared forward bottleneck: dispatch deliveries by flow id. *)
  let discipline =
    match discipline with
    | Some d -> d
    | None -> Queue_discipline.drop_tail ~capacity:buffer
  in
  let bottleneck =
    Link.create ~discipline ~sim ~rng ~bandwidth ~delay:one_way_delay
      ~deliver:(fun payload ->
        match payload with
        | Tcp_data (flow, segment) -> begin
            match endpoints.(flow) with
            | Some (Tcp_endpoint (_, receiver)) -> Receiver.on_data receiver segment
            | Some (Paced_endpoint _) | Some (Cross_endpoint _) | None ->
                assert false
          end
        | Background flow -> begin
            match endpoints.(flow) with
            | Some (Cross_endpoint state) -> state.received <- state.received + 1
            | Some _ | None -> assert false
          end
        | Paced { flow; seq; sent_at } -> begin
            match endpoints.(flow) with
            | Some (Paced_endpoint state) ->
                (* In-order FIFO link: a gap means the skipped packets were
                   dropped at the bottleneck. *)
                let lost = max 0 (seq - state.rcv_expected) in
                for _ = 1 to lost do
                  Tfrc.Controller.on_packet state.controller ~lost:true
                done;
                Tfrc.Controller.on_packet state.controller ~lost:false;
                state.rcv_expected <- seq + 1;
                state.delivered <- state.delivered + 1;
                (* Idealized instant feedback of the RTT sample. *)
                Tfrc.Controller.on_rtt_sample state.controller
                  (Sim.now sim -. sent_at +. one_way_delay)
            | Some (Tcp_endpoint _) | Some (Cross_endpoint _) | None ->
                assert false
          end)
      ()
  in
  (* Instantiate flows. *)
  List.iteri
    (fun flow spec ->
      match spec.kind with
      | Reno_flow config ->
          let recorder = Recorder.create () in
          let reverse =
            Link.create ~sim ~rng ~bandwidth:(bandwidth *. 4.)
              ~delay:one_way_delay
              ~deliver:(fun ack ->
                match endpoints.(flow) with
                | Some (Tcp_endpoint (sender, _)) -> Reno.on_ack sender ack
                | Some (Paced_endpoint _) | Some (Cross_endpoint _) | None ->
                    assert false)
              ()
          in
          let receiver =
            Receiver.create
              ~sack:(config.Reno.recovery = Reno.Sack_recovery)
              ~sim
              ~send_ack:(fun ack -> ignore (Link.send reverse ~size:40 ack))
              ()
          in
          let sender =
            Reno.create ~config ~sim ~recorder
              ~transmit:(fun segment ->
                ignore
                  (Link.send bottleneck ~size:segment.Segment.size
                     (Tcp_data (flow, segment))))
              ()
          in
          endpoints.(flow) <- Some (Tcp_endpoint (sender, receiver));
          ignore
            (Sim.schedule sim ~delay:spec.start_time (fun () ->
                 Reno.start sender))
      | Tfrc_flow { mss } ->
          let state =
            {
              controller = Tfrc.Controller.create ~initial_rate:10. ();
              mss;
              next_seq = 0;
              rcv_expected = 0;
              sent = 0;
              delivered = 0;
            }
          in
          endpoints.(flow) <- Some (Paced_endpoint state);
          (* Pacing loop: one packet per 1/rate seconds. *)
          let rec send_next () =
            let seq = state.next_seq in
            state.next_seq <- seq + 1;
            state.sent <- state.sent + 1;
            ignore
              (Link.send bottleneck ~size:(state.mss + 40)
                 (Paced { flow; seq; sent_at = Sim.now sim }));
            let gap = 1. /. Tfrc.Controller.allowed_rate state.controller in
            ignore (Sim.schedule sim ~delay:(Float.min 10. gap) send_next)
          in
          (* Feedback epochs once per ~RTT. *)
          let rec epoch () =
            Tfrc.Controller.feedback_epoch state.controller;
            let rtt =
              Option.value
                ~default:(2. *. one_way_delay)
                (Tfrc.Controller.smoothed_rtt state.controller)
            in
            ignore (Sim.schedule sim ~delay:rtt epoch)
          in
          ignore
            (Sim.schedule sim ~delay:spec.start_time (fun () ->
                 send_next ();
                 epoch ()))
      | Cross_flow config ->
          let state = { source = None; received = 0 } in
          endpoints.(flow) <- Some (Cross_endpoint state);
          ignore
            (Sim.schedule sim ~delay:spec.start_time (fun () ->
                 state.source <-
                   Some
                     (Pftk_netsim.Cross_traffic.start ~config ~sim ~rng
                        ~send:(fun ~size ->
                          ignore (Link.send bottleneck ~size (Background flow)))
                        ()))))
    specs;
  Sim.run ~until:duration sim;
  (* Collect. *)
  let flows =
    List.mapi
      (fun flow spec ->
        let active = duration -. spec.start_time in
        match endpoints.(flow) with
        | Some (Tcp_endpoint (sender, receiver)) ->
            let sent = Reno.packets_sent sender in
            let delivered = Receiver.segments_received receiver in
            {
              name = spec.name;
              kind_label = "reno";
              packets_sent = sent;
              packets_delivered = delivered;
              goodput = float_of_int delivered /. active;
              loss_rate =
                (if sent = 0 then 0.
                 else float_of_int (sent - delivered) /. float_of_int sent);
            }
        | Some (Cross_endpoint state) ->
            let sent =
              match state.source with
              | Some source -> Pftk_netsim.Cross_traffic.packets_sent source
              | None -> 0
            in
            {
              name = spec.name;
              kind_label = "cross";
              packets_sent = sent;
              packets_delivered = state.received;
              goodput = float_of_int state.received /. active;
              loss_rate =
                (if sent = 0 then 0.
                 else float_of_int (sent - state.received) /. float_of_int sent);
            }
        | Some (Paced_endpoint state) ->
            {
              name = spec.name;
              kind_label = "tfrc";
              packets_sent = state.sent;
              packets_delivered = state.delivered;
              goodput = float_of_int state.delivered /. active;
              loss_rate =
                (if state.sent = 0 then 0.
                 else
                   float_of_int (state.sent - state.delivered)
                   /. float_of_int state.sent);
            }
        | None -> assert false)
      specs
  in
  {
    flows;
    bottleneck_utilization = Link.busy_time bottleneck /. duration;
    bottleneck_mean_queue = Link.mean_queue bottleneck;
    jain_fairness =
      jain (Array.of_list (List.map (fun f -> f.goodput) flows));
  }
