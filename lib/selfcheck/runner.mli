(** The harness driver: generate cases, run the invariant catalog over
    them on the domain pool, shrink what fails, and report.

    Determinism contract: a report is a pure function of [(cases, seed,
    only)].  Case [i] is generated from its own {!Gen.rng_for} stream and
    every invariant is deterministic, so [jobs] only changes wall-clock
    time — {!pp_report} output is byte-identical for every [jobs] value
    (which is why the report never mentions [jobs]). *)

type config = {
  cases : int;  (** Number of generated cases, indices [0 .. cases-1]. *)
  seed : int64;  (** Base seed; each case derives its own stream. *)
  jobs : int;  (** Worker domains; [1] runs sequentially. *)
  only : string option;  (** Restrict to one invariant (id or name). *)
}

type failure = {
  index : int;  (** Generated case index. *)
  invariant : Invariant.t;
  reason : string;  (** From the original (unshrunk) failing case. *)
  shrunk : Case.t;  (** {!Shrink.minimize} fixpoint, still failing. *)
  shrunk_reason : string;  (** The failure as reported on [shrunk]. *)
}

type report = {
  cases : int;
  seed : int64;
  checked : (string * int * int * int) list;
      (** Per invariant id, in catalog order: (id, passes, skips, fails). *)
  failures : failure list;  (** Sorted by (index, invariant id). *)
}

val run : config -> report
(** Raises [Invalid_argument] when [cases < 0], [jobs < 1], or [only]
    names no invariant. *)

val catalog : only:string option -> Invariant.t list
(** The invariants a config selects; raises [Invalid_argument] on an
    unknown name. *)

val pp_report : Format.formatter -> report -> unit
(** Full deterministic report: header, per-invariant table, then each
    failure with its shrunk counterexample in corpus form. *)

val counterexample_to_string : seed:int64 -> failure -> string
(** The corpus-file form of a failure: a commented header (invariant,
    seed/index provenance, reason) followed by the shrunk case's
    {!Case.to_string}.  {!Case.of_string} reads it back. *)

val ok : report -> bool
(** [true] when no invariant failed. *)
