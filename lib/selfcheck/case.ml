module Params = Pftk_core.Params
module Serialize = Pftk_trace.Serialize

type t = {
  params : Params.t;
  p : float;
  p2 : float;
  target_p : float;
  flows : int;
  capacity : float;
  base_rtt : float;
  fp_target_p : float;
  trace : Pftk_trace.Event.t list;
  adversarial : Pftk_trace.Event.t list;
}

let to_string c =
  let buf = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  line "# pftk-selfcheck case v1";
  line "rtt %h" c.params.Params.rtt;
  line "t0 %h" c.params.Params.t0;
  line "b %d" c.params.Params.b;
  line "wm %d" c.params.Params.wm;
  line "p %h" c.p;
  line "p2 %h" c.p2;
  line "target_p %h" c.target_p;
  line "flows %d" c.flows;
  line "capacity %h" c.capacity;
  line "base_rtt %h" c.base_rtt;
  line "fp_target_p %h" c.fp_target_p;
  line "trace %d" (List.length c.trace);
  List.iter (fun e -> line "%s" (Serialize.line_of_event e)) c.trace;
  line "adversarial %d" (List.length c.adversarial);
  List.iter (fun e -> line "%s" (Serialize.line_of_event e)) c.adversarial;
  Buffer.contents buf

exception Parse of string

let of_string s =
  let lines = Array.of_list (String.split_on_char '\n' s) in
  let pos = ref 0 in
  (* Scalars and counted blocks both live on data lines; comments and
     blanks in between are legal so pinned corpus files can be annotated. *)
  let rec next_data () =
    if !pos >= Array.length lines then raise (Parse "unexpected end of case")
    else begin
      let l = String.trim lines.(!pos) in
      incr pos;
      if String.length l = 0 || l.[0] = '#' then next_data () else l
    end
  in
  let expect key =
    let l = next_data () in
    match String.index_opt l ' ' with
    | Some i when String.equal (String.sub l 0 i) key ->
        String.sub l (i + 1) (String.length l - i - 1)
    | _ -> raise (Parse (Printf.sprintf "expected %S field, got %S" key l))
  in
  let floatv key =
    let v = expect key in
    try float_of_string v
    with _ -> raise (Parse (Printf.sprintf "bad float for %S: %S" key v))
  in
  let intv key =
    let v = expect key in
    try int_of_string v
    with _ -> raise (Parse (Printf.sprintf "bad int for %S: %S" key v))
  in
  let events key =
    let n = intv key in
    if n < 0 then raise (Parse (Printf.sprintf "negative %S count" key));
    List.init n (fun _ ->
        let l = next_data () in
        match Serialize.event_of_line l with
        | Some e -> e
        | None -> raise (Parse (Printf.sprintf "expected event line, got %S" l))
        | exception Serialize.Error e -> raise (Parse (Serialize.error_message e)))
  in
  match
    let rtt = floatv "rtt" in
    let t0 = floatv "t0" in
    let b = intv "b" in
    let wm = intv "wm" in
    let p = floatv "p" in
    let p2 = floatv "p2" in
    let target_p = floatv "target_p" in
    let flows = intv "flows" in
    let capacity = floatv "capacity" in
    let base_rtt = floatv "base_rtt" in
    let fp_target_p = floatv "fp_target_p" in
    let trace = events "trace" in
    let adversarial = events "adversarial" in
    {
      params = { Params.rtt; t0; b; wm };
      p;
      p2;
      target_p;
      flows;
      capacity;
      base_rtt;
      fp_target_p;
      trace;
      adversarial;
    }
  with
  | c -> Ok c
  | exception Parse msg -> Error msg

let equal a b = String.equal (to_string a) (to_string b)
let pp fmt c = Format.pp_print_string fmt (to_string c)
