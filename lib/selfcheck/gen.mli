(** Deterministic case generation.

    Every case is a pure function of [(seed, index)]: case [index] draws
    from an {!Pftk_stats.Rng} seeded with
    [seed + (index + 1) * 0x9E3779B97F4A7C15] (the SplitMix64 golden-gamma
    increment), so the stream for case [i] never depends on how many cases
    ran before it or on which domain ran it.  That is what makes
    [--jobs 1] and [--jobs 4] byte-identical.

    The generation domain is deliberately documented because the invariant
    catalog's tolerances are calibrated against it: [rtt] in [1e-3, 5] s,
    [t0/rtt] in [1, 100], [b] in {1, 2}, [wm] in [2, 256] or unlimited,
    [p] log-uniform in [1e-4, 0.5).  A quarter of the cases reuse the
    paper's measured path profiles ({!Pftk_dataset.Path_profile}) and a
    few percent are hand-picked corner parameter sets. *)

val rng_for : seed:int64 -> index:int -> Pftk_stats.Rng.t
(** The per-case generator stream described above. *)

val params : Pftk_stats.Rng.t -> Pftk_core.Params.t
(** Random, profile-derived, or corner path parameters. *)

val loss : Pftk_stats.Rng.t -> float
(** Log-uniform in [\[1e-4, 0.5)]. *)

val trace : Pftk_stats.Rng.t -> Pftk_trace.Event.t list
(** A plausible sender session: finite floats, non-decreasing times
    starting at 0, sends/acks/timeout chains/fast retransmits/RTT samples.
    Safe for {!Pftk_trace.Recorder.record} and both analyzer modes. *)

val adversarial_trace : Pftk_stats.Rng.t -> Pftk_trace.Event.t list
(** Serialization stress: NaN, infinities, signed zeros, denormals,
    huge magnitudes for every float field; [min_int]/[max_int] for every
    int field.  Only {!Pftk_trace.Serialize.line_of_event} /
    [event_of_line] are expected to survive this. *)

val case : seed:int64 -> index:int -> Case.t
(** The full case for [(seed, index)]. *)
