module Params = Pftk_core.Params
module Event = Pftk_trace.Event
module Serialize = Pftk_trace.Serialize
module Analyzer = Pftk_trace.Analyzer

type verdict = Pass | Skip of string | Fail of string

type t = {
  id : string;
  name : string;
  description : string;
  check : Case.t -> verdict;
}

let failf fmt = Printf.ksprintf (fun s -> Fail s) fmt
let skipf fmt = Printf.ksprintf (fun s -> Skip s) fmt

(* [a <= b] up to [tol] relative slack on [b] (rates are positive). *)
let le ~tol a b = a <= b +. (tol *. Float.max (Float.abs a) (Float.abs b))

let window_cap (c : Case.t) =
  let cap = float_of_int c.params.Params.wm /. c.params.Params.rtt in
  let check_model acc kind =
    match acc with
    | Fail _ -> acc
    | _ ->
        let rate = Pftk_core.Model.send_rate kind c.params c.p in
        if le ~tol:1e-9 rate cap then acc
        else
          failf "%s: rate %.17g > Wm/RTT %.17g at p=%h"
            (Pftk_core.Model.name kind) rate cap c.p
  in
  List.fold_left check_model Pass
    [
      Pftk_core.Model.Full;
      Pftk_core.Model.Full_approx_q;
      Pftk_core.Model.Approximate;
      Pftk_core.Model.Throughput_model;
    ]

let ordering_tdonly (c : Case.t) =
  let td = Pftk_core.Tdonly.send_rate_capped c.params c.p in
  let full = Pftk_core.Full_model.send_rate c.params c.p in
  let approx_q =
    Pftk_core.Full_model.send_rate ~q:Pftk_core.Qhat.Approximate c.params c.p
  in
  if not (le ~tol:1e-9 full td) then
    failf "full %.17g > td-only %.17g at p=%h" full td c.p
  else if not (le ~tol:1e-9 approx_q td) then
    failf "full(approx-q) %.17g > td-only %.17g at p=%h" approx_q td c.p
  else Pass

let monotone_p (c : Case.t) =
  let r1 = Pftk_core.Full_model.send_rate_unconstrained c.params c.p in
  let r2 = Pftk_core.Full_model.send_rate_unconstrained c.params c.p2 in
  if le ~tol:1e-12 r2 r1 then Pass
  else failf "rate(p=%h)=%.17g < rate(p2=%h)=%.17g" c.p r1 c.p2 r2

let markov_envelope (c : Case.t) =
  let { Params.wm; rtt; t0; _ } = c.params in
  if wm = Params.unlimited_window || wm < 2 || wm > 64 then
    skipf "wm=%d outside calibrated [2, 64]" wm
  else if c.p < 1e-3 || c.p > 0.3 then
    skipf "p=%h outside calibrated [1e-3, 0.3]" c.p
  else if t0 /. rtt > 100. then skipf "t0/rtt=%g outside calibrated [1, 100]" (t0 /. rtt)
  else begin
    let full = Pftk_core.Full_model.send_rate c.params c.p in
    let markov = Pftk_core.Markov.send_rate (Pftk_core.Markov.solve c.params c.p) in
    let ratio = markov /. full in
    if ratio >= 0.6 && ratio <= 1.05 then Pass
    else
      failf "markov/full = %.17g outside [0.6, 1.05] (markov=%.17g full=%.17g p=%h)"
        ratio markov full c.p
  end

(* Round-trip one model through Inverse.loss_for_rate.  The recovered loss
   must attain the target rate, and must be the *largest* such loss: on a
   rate plateau (window-limited regime) every p up to the plateau's right
   edge attains the target, and a fair loss budget is the largest one. *)
let inverse_one ~label ~model ~find (c : Case.t) =
  let target = model c.target_p in
  match find target with
  | None -> failf "%s: no loss found for attainable target %.17g" label target
  | Some p_star ->
      let attained = model p_star in
      if not (le ~tol:1e-6 target attained) then
        failf "%s: rate at recovered p=%h is %.17g < target %.17g" label p_star
          attained target
      else if p_star < c.target_p *. (1. -. 1e-6) then
        failf "%s: recovered p=%h is not the largest loss attaining the target (target_p=%h)"
          label p_star c.target_p
      else Pass

let inverse_roundtrip (c : Case.t) =
  let full p = Pftk_core.Full_model.send_rate c.params p in
  match
    inverse_one ~label:"full" ~model:full
      ~find:(fun rate -> Pftk_core.Inverse.loss_budget c.params ~rate)
      c
  with
  | Pass ->
      let approx p = Pftk_core.Approx_model.send_rate c.params p in
      inverse_one ~label:"approx" ~model:approx
        ~find:(Pftk_core.Inverse.loss_for_rate approx)
        c
  | v -> v

let float_bits_eq a b =
  (Float.is_nan a && Float.is_nan b)
  || Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let kind_eq k1 k2 =
  match (k1, k2) with
  | ( Event.Segment_sent { seq = s1; retransmission = r1; cwnd = c1; flight = f1 },
      Event.Segment_sent { seq = s2; retransmission = r2; cwnd = c2; flight = f2 }
    ) ->
      s1 = s2 && r1 = r2 && float_bits_eq c1 c2 && f1 = f2
  | Event.Ack_received { ack = a1 }, Event.Ack_received { ack = a2 } -> a1 = a2
  | ( Event.Timer_fired { backoff = b1; rto = r1 },
      Event.Timer_fired { backoff = b2; rto = r2 } ) ->
      b1 = b2 && float_bits_eq r1 r2
  | ( Event.Fast_retransmit_triggered { seq = s1 },
      Event.Fast_retransmit_triggered { seq = s2 } ) ->
      s1 = s2
  | ( Event.Rtt_sample { sample = s1; srtt = sr1; rto = r1 },
      Event.Rtt_sample { sample = s2; srtt = sr2; rto = r2 } ) ->
      float_bits_eq s1 s2 && float_bits_eq sr1 sr2 && float_bits_eq r1 r2
  | ( Event.Round_started { index = i1; window = w1 },
      Event.Round_started { index = i2; window = w2 } ) ->
      i1 = i2 && float_bits_eq w1 w2
  | Event.Connection_closed, Event.Connection_closed -> true
  | _ -> false

let event_eq e1 e2 =
  float_bits_eq e1.Event.time e2.Event.time && kind_eq e1.Event.kind e2.Event.kind

let serialize_roundtrip (c : Case.t) =
  let check_event acc e =
    match acc with
    | Fail _ -> acc
    | _ -> begin
        let line = Serialize.line_of_event e in
        match Serialize.event_of_line line with
        | Some e' when event_eq e e' -> acc
        | Some e' ->
            failf "round-trip changed %S into %S" line (Serialize.line_of_event e')
        | None -> failf "round-trip lost %S" line
        | exception Serialize.Error err ->
            failf "round-trip rejected %S: %s" line (Serialize.error_message err)
      end
  in
  List.fold_left check_event Pass (c.trace @ c.adversarial)

let delivery_ratio (c : Case.t) =
  let ratio = Pftk_core.Throughput.delivery_ratio c.params c.p in
  if ratio > 0. && ratio <= 1. +. 1e-9 then Pass
  else failf "delivery ratio %.17g outside (0, 1] at p=%h" ratio c.p

let buffer_cap = 100_000

let required_buffer (c : Case.t) =
  let { Case.flows; capacity; base_rtt; fp_target_p; _ } = c in
  let solve buffer =
    Pftk_core.Fixed_point.solve ~flows ~capacity ~buffer ~base_rtt ()
  in
  let at_cap = solve buffer_cap in
  if at_cap.Pftk_core.Fixed_point.p > fp_target_p then
    skipf "target p=%h unreachable: even buffer=%d leaves p=%h" fp_target_p
      buffer_cap at_cap.Pftk_core.Fixed_point.p
  else begin
    let buffer =
      Pftk_core.Fixed_point.required_buffer ~target_p:fp_target_p ~flows
        ~capacity ~base_rtt ()
    in
    let eq = solve buffer in
    if le ~tol:1e-6 eq.Pftk_core.Fixed_point.p fp_target_p then Pass
    else
      failf "buffer %d said sufficient but equilibrium p=%.17g > target %.17g"
        buffer eq.Pftk_core.Fixed_point.p fp_target_p
  end

let summaries_eq ~at (stream : Analyzer.summary) (posthoc : Analyzer.summary) =
  let float_exact label a b =
    if a = b then None
    else Some (Printf.sprintf "%s: streaming %.17g <> post-hoc %.17g" label a b)
  in
  let float_rel label a b =
    if Float.abs (a -. b) <= 1e-9 *. Float.max (Float.abs a) (Float.abs b) then
      None
    else Some (Printf.sprintf "%s: streaming %.17g <> post-hoc %.17g" label a b)
  in
  let int_exact label a b =
    if a = b then None
    else Some (Printf.sprintf "%s: streaming %d <> post-hoc %d" label a b)
  in
  let first_mismatch =
    List.find_map Fun.id
      [
        float_exact "duration" stream.Analyzer.duration posthoc.Analyzer.duration;
        int_exact "packets_sent" stream.Analyzer.packets_sent
          posthoc.Analyzer.packets_sent;
        int_exact "loss_indications" stream.Analyzer.loss_indications
          posthoc.Analyzer.loss_indications;
        int_exact "td_count" stream.Analyzer.td_count posthoc.Analyzer.td_count;
        (if stream.Analyzer.to_by_backoff = posthoc.Analyzer.to_by_backoff then
           None
         else Some "to_by_backoff buckets differ");
        float_exact "observed_p" stream.Analyzer.observed_p
          posthoc.Analyzer.observed_p;
        float_exact "avg_rtt" stream.Analyzer.avg_rtt posthoc.Analyzer.avg_rtt;
        float_rel "avg_t0" stream.Analyzer.avg_t0 posthoc.Analyzer.avg_t0;
        float_exact "send_rate" stream.Analyzer.send_rate
          posthoc.Analyzer.send_rate;
      ]
  in
  match first_mismatch with
  | None -> None
  | Some msg -> Some (Printf.sprintf "after %d events, %s" at msg)

let online_mode mode (c : Case.t) =
  let summary = Pftk_online.Summary.create ~mode () in
  let recorder = Pftk_trace.Recorder.create () in
  let n = List.length c.trace in
  let step = Int.max 1 (n / 8) in
  let mismatch = ref None in
  List.iteri
    (fun i e ->
      Pftk_online.Summary.push summary e;
      Pftk_trace.Recorder.record recorder ~time:e.Event.time e.Event.kind;
      if !mismatch = None && (i mod step = step - 1 || i = n - 1) then
        mismatch :=
          summaries_eq ~at:(i + 1)
            (Pftk_online.Summary.current summary)
            (Analyzer.summarize ~mode recorder))
    c.trace;
  !mismatch

let online_equivalence (c : Case.t) =
  match online_mode `Ground_truth c with
  | Some msg -> failf "ground-truth mode: %s" msg
  | None -> begin
      match online_mode `Infer c with
      | Some msg -> failf "infer mode: %s" msg
      | None -> Pass
    end

(* --- C11: batch evaluation ≡ scalar evaluation --------------------------- *)

module Bcolumns = Pftk_batch.Columns
module Bscan = Pftk_batch.Scan
module Bkernel = Pftk_batch.Kernel
module Bengine = Pftk_batch.Engine

(* The two rejections only the batch side can express: the scalar [wm]
   is an [int], so it can be neither fractional nor above the
   float-sentinel.  Everything else the scan rejects, the scalar guards
   must reject with the identical message. *)
let batch_only_wm_message msg =
  String.equal msg "batch: wm must be a whole number of packets"
  || String.equal msg
       "batch: wm exceeds the unlimited-window sentinel (use wm <= 0 for \
        unlimited)"

let scalar_eval kernel ~p ~rtt ~t0 ~wm =
  match Bkernel.scalar_reference kernel ~p ~rtt ~t0 ~wm with
  | v -> Ok v
  | exception Invalid_argument msg -> Error msg

let adversarial_floats (c : Case.t) =
  let of_kind = function
    | Event.Segment_sent { cwnd; _ } -> [ cwnd ]
    | Event.Timer_fired { rto; _ } -> [ rto ]
    | Event.Rtt_sample { sample; srtt; rto } -> [ sample; srtt; rto ]
    | Event.Round_started { window; _ } -> [ window ]
    | Event.Ack_received _ | Event.Fast_retransmit_triggered _
    | Event.Connection_closed ->
        []
  in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  take 6
    (List.concat_map
       (fun e -> e.Event.time :: of_kind e.Event.kind)
       c.adversarial)

let batch_scalar_equiv (c : Case.t) =
  let { Params.rtt; t0; b; _ } = c.params in
  let wmf = float_of_int c.params.Params.wm in
  let full_kernel = Bkernel.make ~b Bkernel.Full in
  let models =
    [
      full_kernel;
      Bkernel.make ~b Bkernel.Full_approx_q;
      Bkernel.make ~b Bkernel.Approximate;
      Bkernel.make ~b Bkernel.Td_only;
      Bkernel.make ~b (Bkernel.Tfrc (Float.max 1e-3 (t0 /. rtt)));
    ]
  in
  (* Candidate rows: the case's own losses, then adversarial floats
     (NaN, infinities, signed zeros, subnormals, fractional and
     out-of-range values, plus whatever the adversarial trace carries)
     substituted into each field in turn. *)
  let specials =
    [
      Float.nan;
      Float.infinity;
      Float.neg_infinity;
      -0.;
      0.;
      -1.;
      1.;
      1.5;
      0x1p-1074;
      0x1p-1022;
      Float.max_float;
      0.3;
    ]
    @ adversarial_floats c
  in
  let rows =
    (c.p, rtt, t0, wmf)
    :: (c.p2, rtt, t0, wmf)
    :: (c.target_p, rtt, t0, wmf)
    :: (c.p, rtt, t0, Bcolumns.unlimited_wm)
    :: List.concat_map
         (fun s ->
           [ (s, rtt, t0, wmf); (c.p, s, t0, wmf); (c.p, rtt, s, wmf);
             (c.p, rtt, t0, s) ])
         specials
  in
  (* Rejection parity: a scan rejection must mirror the scalar guard
     (same message, [Params.validate] order) unless it is one of the
     two batch-only wm demands. *)
  let classify acc (p, rtt, t0, wm) =
    match acc with
    | Error _ -> acc
    | Ok accepted -> begin
        match Bscan.check_row ~p ~rtt ~t0 ~wm with
        | Error (_field, msg) when batch_only_wm_message msg -> Ok accepted
        | Error (_field, msg) -> begin
            match scalar_eval full_kernel ~p ~rtt ~t0 ~wm with
            | Error m when String.equal m msg -> Ok accepted
            | Error m ->
                Error
                  (Printf.sprintf
                     "scan rejected (p=%h rtt=%h t0=%h wm=%h) with %S but the \
                      scalar guard raised %S"
                     p rtt t0 wm msg m)
            | Ok v ->
                Error
                  (Printf.sprintf
                     "scan rejected (p=%h rtt=%h t0=%h wm=%h) with %S but the \
                      scalar path accepted (rate %.17g)"
                     p rtt t0 wm msg v)
          end
        | Ok () -> Ok ((p, rtt, t0, wm) :: accepted)
      end
  in
  match List.fold_left classify (Ok []) rows with
  | Error msg -> Fail msg
  | Ok accepted_rev ->
      let accepted = Array.of_list (List.rev accepted_rev) in
      let n = Array.length accepted in
      let cols = Bcolumns.create n in
      Array.iteri
        (fun i (p, rtt, t0, wm) -> Bcolumns.set cols i ~p ~rtt ~t0 ~wm)
        accepted;
      (* Bit-for-bit equality of every accepted row under every kernel. *)
      let check_model acc kernel =
        match acc with
        | Fail _ -> acc
        | _ ->
            let out = Bengine.run ~jobs:1 kernel cols in
            let rec rowwise i =
              if i >= n then Pass
              else
                let p, rtt, t0, wm = accepted.(i) in
                match scalar_eval kernel ~p ~rtt ~t0 ~wm with
                | Error m ->
                    failf
                      "%s: scan accepted (p=%h rtt=%h t0=%h wm=%h) but the \
                       scalar path rejected it: %s"
                      (Bkernel.name kernel) p rtt t0 wm m
                | Ok v ->
                    let bv = Float.Array.get out i in
                    if float_bits_eq v bv then rowwise (i + 1)
                    else
                      failf
                        "%s: batch %.17g (%Lx) <> scalar %.17g (%Lx) at \
                         (p=%h rtt=%h t0=%h wm=%h)"
                        (Bkernel.name kernel) bv (Int64.bits_of_float bv) v
                        (Int64.bits_of_float v) p rtt t0 wm
            in
            rowwise 0
      in
      List.fold_left check_model Pass models

(* --- C12: mean-field degenerate limits ----------------------------------- *)

module Mf_solver = Pftk_meanfield.Solver
module Mf_law = Pftk_meanfield.Queue_law
module Mf_hist = Pftk_meanfield.Window_hist

(* Two degenerate corners tie the mean-field backend to the closed-form
   model.  (A) One flow behind a constant drop law on an unconstrained
   link must reproduce eq. (32)/(33) itself — exactly, up to the float
   round-trip of re-deriving t0 from t0/rtt.  (B) The window histogram's
   stationary distribution under constant loss must land on the
   1/sqrt(p) scaling law: E[W^2].bp/2 = 1 (the drop-rate balance the
   derivation of eq. (31) rests on) and E[W].sqrt(3bp/8) at the
   calibrated 0.804 (a pure shape constant of the halving dynamics:
   uniform-seeded runs land on 0.8044 across b in 1..3 and p in
   [1e-4, 0.05]; the window pins it to [0.75, 0.88]). *)
let meanfield_degenerate (c : Case.t) =
  let { Params.rtt; t0; b; wm; _ } = c.params in
  if t0 < 1e-3 then skipf "t0=%g below the solver's 1e-3 floor" t0
  else begin
    let cfg =
      {
        (Mf_solver.default ~flows:1 ~capacity:1e9 ~base_rtt:rtt
           ~law:(Mf_law.constant ~p:c.p))
        with
        Mf_solver.b;
        wm = (if wm = Params.unlimited_window then 0 else wm);
        t0_factor = t0 /. rtt;
      }
    in
    let close a b =
      Float.abs (a -. b) <= 1e-6 *. Float.max (Float.abs a) (Float.abs b)
    in
    let check_law acc (rate_law, label, expect) =
      match acc with
      | Fail _ -> acc
      | _ ->
          let eq = Mf_solver.solve { cfg with Mf_solver.rate_law } in
          if close eq.Mf_solver.per_flow_rate expect then acc
          else
            failf "%s: solver rate %.17g <> model rate %.17g at p=%h" label
              eq.Mf_solver.per_flow_rate expect c.p
    in
    let part_a =
      List.fold_left check_law Pass
        [
          (Mf_solver.Full, "full", Pftk_core.Full_model.send_rate c.params c.p);
          ( Mf_solver.Approximate,
            "approx",
            Pftk_core.Approx_model.send_rate c.params c.p );
        ]
    in
    match part_a with
    | (Fail _ | Skip _) as v -> v
    | Pass ->
        if c.p > 0.05 then Pass (* histogram calibrated for p <= 0.05 *)
        else begin
          let bf = float_of_int b in
          let wmax = 3. *. sqrt (2. /. (bf *. c.p)) in
          let h = Mf_hist.create ~bins:128 ~wmax () in
          let w0 = sqrt (1.5 /. (bf *. c.p)) in
          Mf_hist.reset h ~mean:w0 ~spread:(0.5 *. w0);
          let drift = 1. /. (bf *. rtt) in
          let dt = Mf_hist.max_dt h ~drift ~p:c.p ~rtt in
          for _ = 1 to 400 do
            Mf_hist.step h ~dt ~drift ~p:c.p ~rtt
          done;
          let m2_norm = Mf_hist.second_moment h *. bf *. c.p /. 2. in
          let mean_norm = Mf_hist.mean h *. sqrt (3. *. bf *. c.p /. 8.) in
          if m2_norm < 0.97 || m2_norm > 1.03 then
            failf
              "stationary E[W^2].bp/2 = %.17g outside [0.97, 1.03] (b=%d p=%h)"
              m2_norm b c.p
          else if mean_norm < 0.75 || mean_norm > 0.88 then
            failf
              "stationary E[W].sqrt(3bp/8) = %.17g outside [0.75, 0.88] (b=%d \
               p=%h)"
              mean_norm b c.p
          else Pass
        end
  end

let corpus_roundtrip (c : Case.t) =
  match Case.of_string (Case.to_string c) with
  | Error msg -> failf "case text did not parse back: %s" msg
  | Ok c' when Case.equal c c' -> Pass
  | Ok _ -> Fail "case text parsed back to a different case"

let all =
  [
    {
      id = "C1";
      name = "window-cap";
      description = "capped models never exceed Wm/RTT";
      check = window_cap;
    };
    {
      id = "C2";
      name = "ordering-tdonly";
      description = "full model <= TD-only capped rate";
      check = ordering_tdonly;
    };
    {
      id = "C3";
      name = "monotone-p";
      description = "eq. (28) send rate non-increasing in p";
      check = monotone_p;
    };
    {
      id = "C4";
      name = "markov-envelope";
      description = "Markov/full ratio within [0.6, 1.05]";
      check = markov_envelope;
    };
    {
      id = "C5";
      name = "inverse-roundtrip";
      description = "loss_for_rate attains the target at the largest p";
      check = inverse_roundtrip;
    };
    {
      id = "C6";
      name = "serialize-roundtrip";
      description = "event line encoding is a bit-exact round trip";
      check = serialize_roundtrip;
    };
    {
      id = "C7";
      name = "delivery-ratio";
      description = "throughput <= send rate, ratio in (0, 1]";
      check = delivery_ratio;
    };
    {
      id = "C8";
      name = "required-buffer";
      description = "required_buffer's buffer meets the loss target";
      check = required_buffer;
    };
    {
      id = "C9";
      name = "online-equivalence";
      description = "streaming Summary matches post-hoc Analyzer";
      check = online_equivalence;
    };
    {
      id = "C10";
      name = "corpus-roundtrip";
      description = "Case text encoding round-trips";
      check = corpus_roundtrip;
    };
    {
      id = "C11";
      name = "batch-scalar-equiv";
      description = "batch kernels match scalar models bit-for-bit";
      check = batch_scalar_equiv;
    };
    {
      id = "C12";
      name = "meanfield-degenerate";
      description = "mean-field single-flow limit matches eq. (32)/(33)";
      check = meanfield_degenerate;
    };
  ]

let find key =
  let key = String.lowercase_ascii key in
  List.find_opt
    (fun inv ->
      String.equal (String.lowercase_ascii inv.id) key
      || String.equal inv.name key)
    all

let run inv case =
  try inv.check case
  with e -> Fail (Printf.sprintf "exception: %s" (Printexc.to_string e))
