module Rng = Pftk_stats.Rng
module Params = Pftk_core.Params
module Event = Pftk_trace.Event

let golden_gamma = 0x9E3779B97F4A7C15L

let rng_for ~seed ~index =
  if index < 0 then invalid_arg "Gen.rng_for: index must be >= 0";
  let seed = Int64.(add seed (mul (of_int (index + 1)) golden_gamma)) in
  Rng.create ~seed ()

let log_uniform rng lo hi = exp (Rng.float_range rng (log lo) (log hi))

let profiles =
  Array.of_list
    (List.map Pftk_dataset.Path_profile.params
       (Pftk_dataset.Path_profile.all @ Pftk_dataset.Path_profile.extras))

(* Hand-picked parameter sets at the edges of the documented domain. *)
let corners =
  [|
    Params.make ~b:1 ~wm:2 ~rtt:1e-3 ~t0:1e-3 ();
    Params.make ~b:2 ~wm:2 ~rtt:5. ~t0:500. ();
    Params.make ~b:2 ~wm:256 ~rtt:1e-3 ~t0:0.1 ();
    Params.make ~b:1 ~rtt:0.5 ~t0:1. () (* unlimited window *);
    Params.make ~b:2 ~wm:3 ~rtt:4.726 ~t0:18.407 () (* the modem path *);
    Params.make ~b:2 ~wm:8 ~rtt:0.02 ~t0:2. ();
  |]

let params rng =
  match Rng.int rng 8 with
  | 0 | 1 -> profiles.(Rng.int rng (Array.length profiles))
  | 2 -> corners.(Rng.int rng (Array.length corners))
  | _ ->
      let rtt = log_uniform rng 1e-3 5. in
      let t0 = rtt *. Rng.float_range rng 1. 100. in
      let b = if Rng.bool rng then 2 else 1 in
      let wm =
        if Rng.bernoulli rng 0.15 then Params.unlimited_window
        else 2 + Rng.int rng 255
      in
      Params.make ~b ~wm ~rtt ~t0 ()

let loss rng = log_uniform rng 1e-4 0.5

(* --- Well-formed session traces ----------------------------------------- *)

let trace rng =
  let n = 10 + Rng.int rng 200 in
  let t = ref 0. in
  let seq = ref 0 in
  let acked = ref 0 in
  let backoff = ref 0 in
  let events = ref [] in
  let emit kind = events := { Event.time = !t; kind } :: !events in
  emit (Event.Round_started { index = 0; window = 1. });
  for _ = 1 to n do
    t := !t +. Rng.exponential rng 0.02;
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        let retransmission = !seq > !acked && Rng.bernoulli rng 0.2 in
        let s =
          if retransmission then !acked
          else begin
            incr seq;
            !seq - 1
          end
        in
        backoff := 0;
        emit
          (Event.Segment_sent
             {
               seq = s;
               retransmission;
               cwnd = Rng.float_range rng 1. 64.;
               flight = max 0 (!seq - !acked);
             })
    | 4 | 5 | 6 ->
        (* Duplicate ack a third of the time, cumulative progress else. *)
        if Rng.bernoulli rng 0.33 then emit (Event.Ack_received { ack = !acked })
        else begin
          acked := min !seq (!acked + 1 + Rng.int rng 3);
          backoff := 0;
          emit (Event.Ack_received { ack = !acked })
        end
    | 7 ->
        (* Timer chains double the backoff counter, like a real sender. *)
        incr backoff;
        emit
          (Event.Timer_fired
             { backoff = !backoff; rto = Rng.float_range rng 0.2 3. })
    | 8 ->
        if !seq > !acked then begin
          backoff := 0;
          emit (Event.Fast_retransmit_triggered { seq = !acked })
        end
        else begin
          let sample = Rng.float_range rng 0.01 1. in
          emit (Event.Rtt_sample { sample; srtt = sample; rto = 4. *. sample })
        end
    | _ ->
        let sample = Rng.float_range rng 0.01 1. in
        let srtt = Rng.float_range rng 0.01 1. in
        emit (Event.Rtt_sample { sample; srtt; rto = 4. *. srtt })
  done;
  if Rng.bool rng then begin
    t := !t +. Rng.exponential rng 0.02;
    emit Event.Connection_closed
  end;
  List.rev !events

(* --- Adversarial traces -------------------------------------------------- *)

let special_floats =
  [|
    Float.nan;
    Float.infinity;
    Float.neg_infinity;
    -0.;
    0.;
    0x1p-1074 (* smallest denormal *);
    -0x1p-1074;
    Float.max_float;
    -.Float.max_float;
    Float.min_float;
    1e-300;
    -1e300;
  |]

let special_ints = [| 0; 1; -1; max_int; min_int; max_int - 1; min_int + 1 |]

let any_float rng =
  if Rng.bernoulli rng 0.6 then
    special_floats.(Rng.int rng (Array.length special_floats))
  else Rng.float_range rng (-1e9) 1e9

let any_int rng =
  if Rng.bernoulli rng 0.6 then
    special_ints.(Rng.int rng (Array.length special_ints))
  else Rng.int rng 1_000_000 - 500_000

let adversarial_trace rng =
  let n = 1 + Rng.int rng 30 in
  List.init n (fun _ ->
      let time = any_float rng in
      let kind =
        match Rng.int rng 7 with
        | 0 ->
            Event.Segment_sent
              {
                seq = any_int rng;
                retransmission = Rng.bool rng;
                cwnd = any_float rng;
                flight = any_int rng;
              }
        | 1 -> Event.Ack_received { ack = any_int rng }
        | 2 -> Event.Timer_fired { backoff = any_int rng; rto = any_float rng }
        | 3 -> Event.Fast_retransmit_triggered { seq = any_int rng }
        | 4 ->
            Event.Rtt_sample
              {
                sample = any_float rng;
                srtt = any_float rng;
                rto = any_float rng;
              }
        | 5 -> Event.Round_started { index = any_int rng; window = any_float rng }
        | _ -> Event.Connection_closed
      in
      { Event.time; kind })

(* --- The full case ------------------------------------------------------- *)

let case ~seed ~index =
  let rng = rng_for ~seed ~index in
  let params = params rng in
  let p = loss rng in
  let p2 = p +. ((1. -. p) *. Rng.float_range rng 0.01 0.9) in
  let target_p = log_uniform rng 1e-3 0.3 in
  let flows = 1 + Rng.int rng 64 in
  let capacity = Rng.float_range rng 50. 5000. in
  let base_rtt = Rng.float_range rng 0.005 0.5 in
  let fp_target_p = log_uniform rng 1e-3 0.1 in
  let trace = trace rng in
  let adversarial = adversarial_trace rng in
  {
    Case.params;
    p;
    p2;
    target_p;
    flows;
    capacity;
    base_rtt;
    fp_target_p;
    trace;
    adversarial;
  }
