module Params = Pftk_core.Params

let size c = String.length (Case.to_string c)

(* Simple values each scalar is pulled toward; in trial order. *)
let float_targets = [ 0.01; 0.1; 1. ]

let round3 x =
  if Float.is_nan x || Float.abs x = Float.infinity then x
  else float_of_string (Printf.sprintf "%.3g" x)

let list_shrinks xs =
  match xs with
  | [] -> []
  | _ ->
      let n = List.length xs in
      let half = n / 2 in
      let firsts = List.filteri (fun i _ -> i < half) xs in
      let seconds = List.filteri (fun i _ -> i >= half) xs in
      let without_one =
        if n <= 12 then List.init n (fun k -> List.filteri (fun i _ -> i <> k) xs)
        else []
      in
      ([] :: firsts :: seconds :: without_one)
      |> List.filter (fun ys -> List.length ys < n)

let params_candidates (p : Params.t) =
  [
    { Params.rtt = 0.1; t0 = 1.; b = 2; wm = 16 };
    { p with Params.b = 2 };
    { p with Params.wm = 16 };
    { p with Params.rtt = 0.1 };
    { p with Params.t0 = 1. };
    { p with Params.rtt = round3 p.Params.rtt };
    { p with Params.t0 = round3 p.Params.t0 };
  ]

let candidates (c : Case.t) =
  let traces = List.map (fun t -> { c with Case.trace = t }) (list_shrinks c.Case.trace) in
  let advs =
    List.map
      (fun t -> { c with Case.adversarial = t })
      (list_shrinks c.Case.adversarial)
  in
  let params = List.map (fun p -> { c with Case.params = p }) (params_candidates c.Case.params) in
  let floats =
    List.concat_map
      (fun v ->
        [
          { c with Case.p = v };
          { c with Case.p2 = Float.max v (c.Case.p +. 1e-6) };
          { c with Case.target_p = v };
          { c with Case.fp_target_p = v };
          { c with Case.capacity = 1000. *. v };
          { c with Case.base_rtt = v };
        ])
      float_targets
  in
  let rounded =
    [
      { c with Case.p = round3 c.Case.p };
      { c with Case.p2 = round3 c.Case.p2 };
      { c with Case.target_p = round3 c.Case.target_p };
      { c with Case.fp_target_p = round3 c.Case.fp_target_p };
      { c with Case.capacity = round3 c.Case.capacity };
      { c with Case.base_rtt = round3 c.Case.base_rtt };
    ]
  in
  let ints = [ { c with Case.flows = 1 }; { c with Case.flows = c.Case.flows / 2 } ] in
  traces @ advs @ params @ ints @ floats @ rounded

let minimize ~keep c0 =
  let valid (c : Case.t) =
    c.Case.p > 0. && c.Case.p < 1.
    && c.Case.p2 > c.Case.p && c.Case.p2 < 1.
    && c.Case.target_p > 0. && c.Case.target_p < 1.
    && c.Case.fp_target_p > 0. && c.Case.fp_target_p < 1.
    && c.Case.flows >= 1
    && c.Case.capacity > 0. && c.Case.base_rtt > 0.
    && c.Case.params.Params.rtt > 0. && c.Case.params.Params.t0 > 0.
    && c.Case.params.Params.b >= 1 && c.Case.params.Params.wm >= 1
  in
  let rec go c =
    let smaller =
      List.find_opt
        (fun c' -> valid c' && size c' < size c && keep c')
        (candidates c)
    in
    match smaller with Some c' -> go c' | None -> c
  in
  go c0
