(** Counterexample minimization.

    Greedy fixpoint search: from a failing case, repeatedly try simpler
    candidate cases (shorter traces, round parameter values, default-ish
    path parameters) and keep the first candidate that is strictly smaller
    {e and} still fails.  "Size" is the length of the case's corpus text
    ({!Case.to_string}), so minimization directly optimizes what gets
    pinned under [test/corpus/].

    Deterministic: candidates are enumerated in a fixed order, so the same
    failing case always shrinks to the same counterexample. *)

val size : Case.t -> int
(** [String.length (Case.to_string c)]. *)

val candidates : Case.t -> Case.t list
(** One round of simplification attempts, in trial order. *)

val minimize : keep:(Case.t -> bool) -> Case.t -> Case.t
(** [minimize ~keep c] greedily applies {!candidates} while [keep] holds
    (callers pass "this invariant still fails"); returns the fixpoint.
    [keep c] itself need not be checked — [c] is assumed failing. *)
