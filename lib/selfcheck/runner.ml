type config = { cases : int; seed : int64; jobs : int; only : string option }

type failure = {
  index : int;
  invariant : Invariant.t;
  reason : string;
  shrunk : Case.t;
  shrunk_reason : string;
}

type report = {
  cases : int;
  seed : int64;
  checked : (string * int * int * int) list;
  failures : failure list;
}

let catalog ~only =
  match only with
  | None -> Invariant.all
  | Some key -> begin
      match Invariant.find key with
      | Some inv -> [ inv ]
      | None -> invalid_arg (Printf.sprintf "Runner: unknown invariant %S" key)
    end

(* Everything one case produced: a verdict per selected invariant, plus a
   shrunk counterexample for each failure.  Workers return this by value,
   so the closure passed to the pool captures only immutable config. *)
type case_outcome = {
  verdicts : (string * Invariant.verdict) list;
  case_failures : failure list;
}

let still_fails inv c =
  match Invariant.run inv c with
  | Invariant.Fail _ -> true
  | Invariant.Pass | Invariant.Skip _ -> false

let check_case ~seed ~invariants index =
  let case = Gen.case ~seed ~index in
  let verdicts =
    List.map (fun inv -> (inv.Invariant.id, Invariant.run inv case)) invariants
  in
  let case_failures =
    List.filter_map
      (fun (id, verdict) ->
        match verdict with
        | Invariant.Pass | Invariant.Skip _ -> None
        | Invariant.Fail reason ->
            let inv =
              List.find (fun i -> String.equal i.Invariant.id id) invariants
            in
            let shrunk = Shrink.minimize ~keep:(still_fails inv) case in
            let shrunk_reason =
              match Invariant.run inv shrunk with
              | Invariant.Fail r -> r
              | Invariant.Pass | Invariant.Skip _ -> reason
            in
            Some { index; invariant = inv; reason; shrunk; shrunk_reason })
      verdicts
  in
  { verdicts; case_failures }

let run { cases; seed; jobs; only } =
  if cases < 0 then invalid_arg "Runner.run: cases must be >= 0";
  if jobs < 1 then invalid_arg "Runner.run: jobs must be >= 1";
  let invariants = catalog ~only in
  let outcomes =
    Pftk_parallel.init ~jobs cases (fun index ->
        check_case ~seed ~invariants index)
  in
  let checked =
    List.map
      (fun inv ->
        let pass = ref 0 and skip = ref 0 and fail = ref 0 in
        Array.iter
          (fun outcome ->
            List.iter
              (fun (id, verdict) ->
                if String.equal id inv.Invariant.id then
                  match verdict with
                  | Invariant.Pass -> incr pass
                  | Invariant.Skip _ -> incr skip
                  | Invariant.Fail _ -> incr fail)
              outcome.verdicts)
          outcomes;
        (inv.Invariant.id, !pass, !skip, !fail))
      invariants
  in
  let failures =
    Array.to_list outcomes
    |> List.concat_map (fun outcome -> outcome.case_failures)
    |> List.sort (fun a b ->
           match compare a.index b.index with
           | 0 -> compare a.invariant.Invariant.id b.invariant.Invariant.id
           | c -> c)
  in
  { cases; seed; checked; failures }

let ok report = List.for_all (fun (_, _, _, fails) -> fails = 0) report.checked

let counterexample_to_string ~seed failure =
  Printf.sprintf
    "# pftk-selfcheck counterexample\n\
     # invariant %s (%s): %s\n\
     # found at seed=%Ld index=%d\n\
     # reason: %s\n\
     %s"
    failure.invariant.Invariant.id failure.invariant.Invariant.name
    failure.invariant.Invariant.description seed failure.index
    (String.map (function '\n' -> ' ' | c -> c) failure.shrunk_reason)
    (Case.to_string failure.shrunk)

let pp_report ppf (report : report) =
  Format.fprintf ppf "pftk-selfcheck: %d cases, seed %Ld@." report.cases
    report.seed;
  List.iter
    (fun (id, pass, skip, fail) ->
      let inv =
        List.find (fun i -> String.equal i.Invariant.id id) Invariant.all
      in
      Format.fprintf ppf "  %-4s %-20s pass %-6d skip %-6d fail %d@." id
        inv.Invariant.name pass skip fail)
    report.checked;
  (match report.failures with
  | [] -> Format.fprintf ppf "all invariants hold@."
  | failures ->
      Format.fprintf ppf "%d failure(s):@." (List.length failures);
      List.iter
        (fun f ->
          Format.fprintf ppf "@.case %d violates %s (%s): %s@." f.index
            f.invariant.Invariant.id f.invariant.Invariant.name f.reason;
          Format.fprintf ppf "shrunk to (%s):@.%s" f.shrunk_reason
            (Case.to_string f.shrunk))
        failures);
  ()
