(** The invariant catalog: named, paper-guaranteed relations that every
    generated case must satisfy.

    {t
    | id  | name                | relation checked                                       |
    |-----|---------------------|--------------------------------------------------------|
    | C1  | window-cap          | capped models never exceed [Wm/RTT] (§II-C)            |
    | C2  | ordering-tdonly     | full model [<=] TD-only capped rate (timeouts only hurt)|
    | C3  | monotone-p          | eq. (28) non-increasing in [p]                         |
    | C4  | markov-envelope     | Markov/full ratio within the calibrated envelope       |
    | C5  | inverse-roundtrip   | [loss_for_rate] attains the target at the largest [p]  |
    | C6  | serialize-roundtrip | [line_of_event] / [event_of_line] bit-exact identity   |
    | C7  | delivery-ratio      | throughput [<=] send rate, ratio in (0, 1]             |
    | C8  | required-buffer     | provisioned buffer really meets the loss target        |
    | C9  | online-equivalence  | streaming [Online.Summary] ≡ post-hoc [Analyzer]       |
    | C10 | corpus-roundtrip    | [Case.of_string (Case.to_string c)] is [c]             |
    }

    Tolerances are calibrated against the {!Gen} domain: C1/C2/C7 hold to
    1e-9 relative, C3 to 1e-12, C5/C8 to 1e-6; C4 uses the empirical
    envelope [0.6, 1.05] on its restricted domain and skips outside it.
    A check that raises is reported as [Fail] by {!run}, never as a crash. *)

type verdict =
  | Pass
  | Skip of string  (** Case outside the invariant's domain; reason says why. *)
  | Fail of string  (** Violation; reason carries the observed numbers. *)

type t = {
  id : string;  (** ["C1"] .. ["C10"]. *)
  name : string;  (** Short slug, e.g. ["window-cap"]. *)
  description : string;  (** One line for reports and docs. *)
  check : Case.t -> verdict;
}

val all : t list
(** The whole catalog, in id order. *)

val find : string -> t option
(** Lookup by [id] or [name], case-insensitive. *)

val run : t -> Case.t -> verdict
(** {!check} with exceptions converted to [Fail] (an invariant must
    never abort the harness). *)
