(** One generated test case: every input the invariant catalog consumes.

    A case bundles model parameters, loss probabilities, an inversion
    target, a provisioning scenario, and two event traces (a well-formed
    one for the analyzers and an adversarial one for serialization).  Each
    invariant reads the fields it needs and ignores the rest, which keeps
    generation, shrinking and the corpus format uniform across the whole
    catalog.

    The textual encoding round-trips exactly: floats are written in [%h]
    hexadecimal (as trace files already do) and events reuse
    [Serialize.line_of_event], so a shrunk counterexample pinned under
    [test/corpus/] replays bit-identically forever. *)

type t = {
  params : Pftk_core.Params.t;  (** Path parameters for the models. *)
  p : float;  (** Primary loss probability, in (0, 1). *)
  p2 : float;  (** Second loss probability, [p < p2 < 1] (monotonicity). *)
  target_p : float;  (** The rate at this loss is the inversion target. *)
  flows : int;  (** Provisioning scenario (C8): competing flows. *)
  capacity : float;  (** Bottleneck capacity, packets/s. *)
  base_rtt : float;  (** Two-way propagation delay, seconds. *)
  fp_target_p : float;  (** Loss target for {!Pftk_core.Fixed_point.required_buffer}. *)
  trace : Pftk_trace.Event.t list;
      (** Finite floats, non-decreasing times: safe for the analyzers. *)
  adversarial : Pftk_trace.Event.t list;
      (** Serialization stress: NaN/infinite/denormal floats, extreme ints. *)
}

val to_string : t -> string
(** Textual form, one [key value] line per scalar field followed by the two
    counted trace blocks.  Deterministic; see {!of_string}. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string} ([Error] explains the first offending line).
    Comment lines starting with [#] and blank lines are ignored. *)

val equal : t -> t -> bool
(** Equality of the textual form (robust to NaN in the traces). *)

val pp : Format.formatter -> t -> unit
