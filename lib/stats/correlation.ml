let check_pair name x y =
  let n = Array.length x in
  if not (Int.equal n (Array.length y)) then invalid_arg (name ^ ": length mismatch");
  if n < 2 then invalid_arg (name ^ ": need at least two points");
  n

let covariance x y =
  let n = check_pair "Correlation.covariance" x y in
  let mx = Descriptive.mean x and my = Descriptive.mean y in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. ((x.(i) -. mx) *. (y.(i) -. my))
  done;
  !acc /. float_of_int (n - 1)

let pearson x y =
  let _n = check_pair "Correlation.pearson" x y in
  let sx = Descriptive.std x and sy = Descriptive.std y in
  if Float.equal sx 0. || Float.equal sy 0. then 0. else covariance x y /. (sx *. sy)

(* Midranks: ties share the average of the ranks they span. *)
let midranks a =
  let n = Array.length a in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare a.(i) a.(j)) idx;
  let ranks = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && Float.equal a.(idx.(!j + 1)) a.(idx.(!i)) do incr j done;
    let avg_rank = float_of_int (!i + !j) /. 2. +. 1. in
    for k = !i to !j do
      ranks.(idx.(k)) <- avg_rank
    done;
    i := !j + 1
  done;
  ranks

let spearman x y =
  let _n = check_pair "Correlation.spearman" x y in
  pearson (midranks x) (midranks y)

let autocorrelation a lag =
  let n = Array.length a in
  if lag < 0 || lag >= n - 1 then invalid_arg "Correlation.autocorrelation: bad lag";
  let x = Array.sub a 0 (n - lag) in
  let y = Array.sub a lag (n - lag) in
  pearson x y
