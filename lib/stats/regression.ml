type fit = { slope : float; intercept : float; r_squared : float }

let linear_fit x y =
  let n = Array.length x in
  if not (Int.equal n (Array.length y)) then invalid_arg "Regression.linear_fit: length mismatch";
  if n < 2 then invalid_arg "Regression.linear_fit: need at least two points";
  let mx = Descriptive.mean x and my = Descriptive.mean y in
  let sxx = ref 0. and sxy = ref 0. and syy = ref 0. in
  for i = 0 to n - 1 do
    let dx = x.(i) -. mx and dy = y.(i) -. my in
    sxx := !sxx +. (dx *. dx);
    sxy := !sxy +. (dx *. dy);
    syy := !syy +. (dy *. dy)
  done;
  if Float.equal !sxx 0. then invalid_arg "Regression.linear_fit: x has zero variance";
  let slope = !sxy /. !sxx in
  let intercept = my -. (slope *. mx) in
  let r_squared = if Float.equal !syy 0. then 1. else !sxy *. !sxy /. (!sxx *. !syy) in
  { slope; intercept; r_squared }

let log_log_fit x y =
  let check a =
    Array.iter (fun v -> if v <= 0. then invalid_arg "Regression.log_log_fit: nonpositive data") a
  in
  check x;
  check y;
  linear_fit (Array.map log x) (Array.map log y)

let predict f x = (f.slope *. x) +. f.intercept
