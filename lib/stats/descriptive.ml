let check_nonempty name a =
  if Int.equal (Array.length a) 0 then invalid_arg (name ^ ": empty input")

let sum a = Array.fold_left ( +. ) 0. a
let sum_list l = List.fold_left ( +. ) 0. l

let mean a =
  check_nonempty "Descriptive.mean" a;
  sum a /. float_of_int (Array.length a)

let mean_list l =
  if List.is_empty l then invalid_arg "Descriptive.mean_list: empty input";
  sum_list l /. float_of_int (List.length l)

let sum_sq_dev a =
  let m = mean a in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. a

let variance a =
  check_nonempty "Descriptive.variance" a;
  let n = Array.length a in
  if Int.equal n 1 then 0. else sum_sq_dev a /. float_of_int (n - 1)

let population_variance a =
  check_nonempty "Descriptive.population_variance" a;
  sum_sq_dev a /. float_of_int (Array.length a)

let std a = sqrt (variance a)

let min a =
  check_nonempty "Descriptive.min" a;
  Array.fold_left Float.min a.(0) a

let max a =
  check_nonempty "Descriptive.max" a;
  Array.fold_left Float.max a.(0) a

let sorted_copy a =
  let b = Array.copy a in
  Array.sort Float.compare b;
  b

let quantile a q =
  check_nonempty "Descriptive.quantile" a;
  if q < 0. || q > 1. then invalid_arg "Descriptive.quantile: q outside [0,1]";
  let b = sorted_copy a in
  let n = Array.length b in
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = Int.min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  b.(lo) +. (frac *. (b.(hi) -. b.(lo)))

let median a = quantile a 0.5

let geometric_mean a =
  check_nonempty "Descriptive.geometric_mean" a;
  Array.iter (fun x -> if x <= 0. then invalid_arg "Descriptive.geometric_mean: nonpositive entry") a;
  let log_sum = Array.fold_left (fun acc x -> acc +. log x) 0. a in
  exp (log_sum /. float_of_int (Array.length a))

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

let summarize a =
  check_nonempty "Descriptive.summarize" a;
  {
    n = Array.length a;
    mean = mean a;
    std = std a;
    min = min a;
    p25 = quantile a 0.25;
    median = median a;
    p75 = quantile a 0.75;
    max = max a;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g std=%.4g min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g"
    s.n s.mean s.std s.min s.p25 s.median s.p75 s.max
