type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let default_seed = 0x9E3779B97F4A7C15L

(* SplitMix64 step: used only to expand a 64-bit seed into the four words of
   xoshiro state, as recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ?(seed = default_seed) () =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = bits64 t in
  create ~seed ()

(* Take the top 53 bits for a uniform double in [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_range t lo hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t n =
  assert (n > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec loop () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw n64 in
    if Int64.sub raw v > Int64.sub (Int64.sub Int64.max_int n64) 1L then loop ()
    else Int64.to_int v
  in
  loop ()

let bool t = Int64.compare (bits64 t) 0L < 0

let bernoulli t p =
  assert (p >= 0. && p <= 1.);
  float t < p

let exponential t mean =
  assert (mean > 0.);
  let u = 1. -. float t in
  -.mean *. log u

let geometric t p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 1
  else
    let u = 1. -. float t in
    (* Inverse-CDF: smallest k with 1 - (1-p)^k >= u. *)
    let k = int_of_float (Float.ceil (log u /. log (1. -. p))) in
    Int.max 1 k

let normal t ~mean ~std =
  let u1 = 1. -. float t in
  let u2 = float t in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mean +. (std *. z)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
