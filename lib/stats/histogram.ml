type scale = Linear | Log

type t = {
  scale : scale;
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
}

let create_linear ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create_linear: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create_linear: bins <= 0";
  { scale = Linear; lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0 }

let create_log ~lo ~hi ~bins =
  if not (0. < lo && lo < hi) then invalid_arg "Histogram.create_log: need 0 < lo < hi";
  if bins <= 0 then invalid_arg "Histogram.create_log: bins <= 0";
  { scale = Log; lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0 }

let n_bins t = Array.length t.counts

let position t x =
  match t.scale with
  | Linear -> (x -. t.lo) /. (t.hi -. t.lo)
  | Log -> if x <= 0. then -1. else log (x /. t.lo) /. log (t.hi /. t.lo)

let add t x =
  let pos = position t x in
  if pos < 0. then t.underflow <- t.underflow + 1
  else if pos >= 1. then t.overflow <- t.overflow + 1
  else begin
    let i = int_of_float (pos *. float_of_int (n_bins t)) in
    let i = Int.min i (n_bins t - 1) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add_all t a = Array.iter (add t) a
let count t i = t.counts.(i)
let counts t = Array.copy t.counts
let underflow t = t.underflow
let overflow t = t.overflow
let total t = Array.fold_left ( + ) 0 t.counts + t.underflow + t.overflow

let edge t i =
  let frac = float_of_int i /. float_of_int (n_bins t) in
  match t.scale with
  | Linear -> t.lo +. (frac *. (t.hi -. t.lo))
  | Log -> t.lo *. ((t.hi /. t.lo) ** frac)

let bin_edges t = Array.init (n_bins t + 1) (edge t)

let bin_center t i =
  let a = edge t i and b = edge t (i + 1) in
  match t.scale with Linear -> (a +. b) /. 2. | Log -> sqrt (a *. b)

let normalized t =
  let in_range = Array.fold_left ( + ) 0 t.counts in
  if Int.equal in_range 0 then Array.make (n_bins t) 0.
  else Array.map (fun c -> float_of_int c /. float_of_int in_range) t.counts

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i c ->
      Format.fprintf ppf "[%.4g, %.4g): %d@ " (edge t i) (edge t (i + 1)) c)
    t.counts;
  Format.fprintf ppf "underflow=%d overflow=%d@]" t.underflow t.overflow
