let paired name ~predicted ~observed =
  if not (Int.equal (Array.length predicted) (Array.length observed)) then
    invalid_arg (name ^ ": length mismatch")

(* Fold [f] over pairs with a positive observed value; relative-error
   metrics are undefined where the observation is zero. *)
let fold_valid name f init ~predicted ~observed =
  paired name ~predicted ~observed;
  let acc = ref init and n = ref 0 in
  Array.iteri
    (fun i o ->
      if o > 0. then begin
        acc := f !acc predicted.(i) o;
        incr n
      end)
    observed;
  if Int.equal !n 0 then invalid_arg (name ^ ": no usable observations");
  (!acc, !n)

let average_error ~predicted ~observed =
  let total, n =
    fold_valid "Error_metrics.average_error"
      (fun acc p o -> acc +. (Float.abs (p -. o) /. o))
      0. ~predicted ~observed
  in
  total /. float_of_int n

let mean_signed_error ~predicted ~observed =
  let total, n =
    fold_valid "Error_metrics.mean_signed_error"
      (fun acc p o -> acc +. ((p -. o) /. o))
      0. ~predicted ~observed
  in
  total /. float_of_int n

let max_relative_error ~predicted ~observed =
  let m, _n =
    fold_valid "Error_metrics.max_relative_error"
      (fun acc p o -> Float.max acc (Float.abs (p -. o) /. o))
      0. ~predicted ~observed
  in
  m

let rmse ~predicted ~observed =
  paired "Error_metrics.rmse" ~predicted ~observed;
  let n = Array.length observed in
  if Int.equal n 0 then invalid_arg "Error_metrics.rmse: empty input";
  let total = ref 0. in
  for i = 0 to n - 1 do
    let d = predicted.(i) -. observed.(i) in
    total := !total +. (d *. d)
  done;
  sqrt (!total /. float_of_int n)
