(** Plain-text trace serialization: one event per line, so simulated traces
    can be saved, inspected with standard Unix tools, and re-analyzed later
    — the workflow the paper had with raw tcpdump files.

    Format: [<time> <tag> <fields...>] with tags
    [send seq rexmit cwnd flight | ack n | timeout backoff rto |
     fastrexmit seq | rtt sample srtt rto | round index window | close].
    Lines starting with [#] are comments.  The format round-trips every
    {!Event.t} exactly (property-tested). *)

val write_event : out_channel -> Event.t -> unit
val write : out_channel -> Recorder.t -> unit

val event_of_line : string -> Event.t option
(** [None] on comments and blank lines; raises [Failure] on a malformed
    line (with the offending content in the message). *)

val read : in_channel -> Recorder.t
(** Reads to EOF.  Raises [Failure] on malformed input or non-monotonic
    timestamps. *)

val iter_channel : (Event.t -> unit) -> in_channel -> unit
(** Streaming variant of {!read}: feeds each parsed event to the callback
    without building a recorder, so saved traces of any length can be
    replayed through the online estimators in O(1) memory.  Same failure
    contract as {!read}. *)

val iter_file : string -> (Event.t -> unit) -> unit
(** {!iter_channel} over a file path. *)

val save : string -> Recorder.t -> unit
(** Write to a file path. *)

val load : string -> Recorder.t
(** Read from a file path. *)

val line_of_event : Event.t -> string
(** The single-line encoding (no trailing newline). *)
