(** Plain-text trace serialization: one event per line, so simulated traces
    can be saved, inspected with standard Unix tools, and re-analyzed later
    — the workflow the paper had with raw tcpdump files.

    Format: [<time> <tag> <fields...>] with tags
    [send seq rexmit cwnd flight | ack n | timeout backoff rto |
     fastrexmit seq | rtt sample srtt rto | round index window | close].
    Lines starting with [#] are comments.  The format round-trips every
    {!Event.t} exactly (property-tested, including non-finite floats).

    Bad input never escapes as a bare [Failure]: every parse problem is
    reported as {!Error} carrying the source file (when known), the 1-based
    line number of the offending line, and a human-readable reason. *)

type error = {
  file : string option;  (** Source path; [None] for bare channels/lines. *)
  line : int;  (** 1-based offending line; [0] when unknown. *)
  reason : string;  (** Human-readable description, offending content inline. *)
}

exception Error of error

val error_message : error -> string
(** ["file:line: reason"], omitting the parts that are unknown. *)

val write_event : out_channel -> Event.t -> unit
val write : out_channel -> Recorder.t -> unit

val event_of_line : string -> Event.t option
(** [None] on comments and blank lines; raises {!Error} (with [line = 0] —
    a bare line has no position) on a malformed line, with the offending
    content in [reason]. *)

val read : ?file:string -> in_channel -> Recorder.t
(** Reads to EOF.  Raises {!Error} on malformed input or non-monotonic
    timestamps, locating the offending line; [file] seeds the error's
    location. *)

val iter_channel : ?file:string -> (Event.t -> unit) -> in_channel -> unit
(** Streaming variant of {!read}: feeds each parsed event to the callback
    without building a recorder, so saved traces of any length can be
    replayed through the online estimators in O(1) memory.  Same failure
    contract as {!read}. *)

val iter_file : string -> (Event.t -> unit) -> unit
(** {!iter_channel} over a file path; errors carry the path. *)

val save : string -> Recorder.t -> unit
(** Write to a file path. *)

val load : string -> Recorder.t
(** Read from a file path; errors carry the path. *)

val line_of_event : Event.t -> string
(** The single-line encoding (no trailing newline). *)
