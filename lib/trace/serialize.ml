(* %h floats round-trip exactly through hexadecimal notation; times use it
   so that re-analysis of a saved trace is bit-identical. *)

type error = { file : string option; line : int; reason : string }

exception Error of error

let error_message { file; line; reason } =
  match (file, line) with
  | Some f, l when l > 0 -> Printf.sprintf "%s:%d: %s" f l reason
  | Some f, _ -> Printf.sprintf "%s: %s" f reason
  | None, l when l > 0 -> Printf.sprintf "line %d: %s" l reason
  | None, _ -> reason

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Serialize.Error: " ^ error_message e)
    | _ -> None)

let line_of_event { Event.time; kind } =
  match kind with
  | Event.Segment_sent { seq; retransmission; cwnd; flight } ->
      Printf.sprintf "%h send %d %b %h %d" time seq retransmission cwnd flight
  | Event.Ack_received { ack } -> Printf.sprintf "%h ack %d" time ack
  | Event.Timer_fired { backoff; rto } ->
      Printf.sprintf "%h timeout %d %h" time backoff rto
  | Event.Fast_retransmit_triggered { seq } ->
      Printf.sprintf "%h fastrexmit %d" time seq
  | Event.Rtt_sample { sample; srtt; rto } ->
      Printf.sprintf "%h rtt %h %h %h" time sample srtt rto
  | Event.Round_started { index; window } ->
      Printf.sprintf "%h round %d %h" time index window
  | Event.Connection_closed -> Printf.sprintf "%h close" time

let write_event oc event =
  output_string oc (line_of_event event);
  output_char oc '\n'

let write oc recorder =
  output_string oc "# pftk trace v1\n";
  Recorder.iter (write_event oc) recorder

let malformed line =
  raise
    (Error
       { file = None; line = 0; reason = Printf.sprintf "malformed line %S" line })

let event_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else begin
    let fail () = malformed line in
    let float_of s = try float_of_string s with Failure _ -> fail () in
    let int_of s = try int_of_string s with Failure _ -> fail () in
    let bool_of s = try bool_of_string s with Invalid_argument _ -> fail () in
    match String.split_on_char ' ' line with
    | time :: "send" :: [ seq; rexmit; cwnd; flight ] ->
        Some
          {
            Event.time = float_of time;
            kind =
              Event.Segment_sent
                {
                  seq = int_of seq;
                  retransmission = bool_of rexmit;
                  cwnd = float_of cwnd;
                  flight = int_of flight;
                };
          }
    | time :: "ack" :: [ ack ] ->
        Some
          { Event.time = float_of time; kind = Event.Ack_received { ack = int_of ack } }
    | time :: "timeout" :: [ backoff; rto ] ->
        Some
          {
            Event.time = float_of time;
            kind =
              Event.Timer_fired { backoff = int_of backoff; rto = float_of rto };
          }
    | time :: "fastrexmit" :: [ seq ] ->
        Some
          {
            Event.time = float_of time;
            kind = Event.Fast_retransmit_triggered { seq = int_of seq };
          }
    | time :: "rtt" :: [ sample; srtt; rto ] ->
        Some
          {
            Event.time = float_of time;
            kind =
              Event.Rtt_sample
                {
                  sample = float_of sample;
                  srtt = float_of srtt;
                  rto = float_of rto;
                };
          }
    | time :: "round" :: [ index; window ] ->
        Some
          {
            Event.time = float_of time;
            kind =
              Event.Round_started
                { index = int_of index; window = float_of window };
          }
    | [ time; "close" ] ->
        Some { Event.time = float_of time; kind = Event.Connection_closed }
    | _ -> fail ()
  end

let iter_channel ?file f ic =
  let last = ref neg_infinity in
  let lineno = ref 0 in
  try
    while true do
      let line = input_line ic in
      incr lineno;
      match event_of_line line with
      | Some event ->
          if event.Event.time < !last then
            raise
              (Error
                 {
                   file;
                   line = !lineno;
                   reason =
                     Printf.sprintf "time went backwards: %g s after %g s"
                       event.Event.time !last;
                 });
          last := event.Event.time;
          f event
      | None -> ()
      | exception Error e ->
          (* event_of_line knows neither the file nor the line number. *)
          raise (Error { e with file; line = !lineno })
    done
  with End_of_file -> ()

let read ?file ic =
  let recorder = Recorder.create () in
  iter_channel ?file
    (fun { Event.time; kind } -> Recorder.record recorder ~time kind)
    ic;
  recorder

let save path recorder =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc recorder)

let load path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ~file:path ic)

let iter_file path f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> iter_channel ~file:path f ic)
