type t = {
  mutable buf : Event.t array;
  mutable size : int;
  mutable last_time : float;
  mutable seen : int;
  mutable sends : int;
  buffered : bool;
  mutable subscribers : (Event.t -> unit) list;  (* reverse subscription order *)
}

let placeholder : Event.t = { time = 0.; kind = Event.Connection_closed }

let create ?(buffered = true) () =
  {
    buf = (if buffered then Array.make 1024 placeholder else [||]);
    size = 0;
    last_time = 0.;
    seen = 0;
    sends = 0;
    buffered;
    subscribers = [];
  }

let is_buffered t = t.buffered
let subscribe t f = t.subscribers <- f :: t.subscribers

let record t ~time kind =
  if time < t.last_time then invalid_arg "Recorder.record: time went backwards";
  t.last_time <- time;
  let event : Event.t = { time; kind } in
  if t.buffered then begin
    if t.size = Array.length t.buf then begin
      let bigger = Array.make (2 * t.size) placeholder in
      Array.blit t.buf 0 bigger 0 t.size;
      t.buf <- bigger
    end;
    t.buf.(t.size) <- event;
    t.size <- t.size + 1
  end;
  t.seen <- t.seen + 1;
  if Event.is_send event then t.sends <- t.sends + 1;
  (* Subscribers run in subscription order, after the buffer append, so a
     sink that queries the recorder sees a state that includes the event. *)
  List.iter (fun f -> f event) (List.rev t.subscribers)

let length t = t.size
let events_seen t = t.seen

let require_buffer t name =
  if not t.buffered then
    invalid_arg (Printf.sprintf "Recorder.%s: recorder is unbuffered" name)

let events t =
  require_buffer t "events";
  Array.sub t.buf 0 t.size

let iter f t =
  require_buffer t "iter";
  for i = 0 to t.size - 1 do
    f t.buf.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun e -> acc := f !acc e) t;
  !acc

let between t ~start ~stop =
  let out = ref [] in
  iter
    (fun e -> if e.Event.time >= start && e.Event.time < stop then out := e :: !out)
    t;
  Array.of_list (List.rev !out)

let duration t = if t.seen = 0 then 0. else t.last_time
let packets_sent t = t.sends

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter (fun e -> Format.fprintf ppf "%a@ " Event.pp e) t;
  Format.fprintf ppf "@]"
