(** The sender's trace stream: an append-only, timestamped sequence of
    events, optionally buffered in memory.

    Two consumption styles:

    - {e Post hoc}: the default ([buffered = true]) recorder keeps every
      event; {!events}, {!iter}, {!fold} and {!between} walk the complete
      trace afterwards, the way the paper's programs re-read tcpdump files.
    - {e Streaming}: any number of sinks attached with {!subscribe} see
      each event the moment it is recorded.  With [buffered = false] the
      recorder keeps {b no} event storage at all — only O(1) counters —
      so arbitrarily long simulations can run with online consumers (see
      [lib/online]) without the trace ever living in memory. *)

type t

val create : ?buffered:bool -> unit -> t
(** [buffered] defaults to [true].  An unbuffered recorder still
    timestamps, validates monotonicity, counts, and notifies subscribers;
    it just never stores events. *)

val is_buffered : t -> bool

val subscribe : t -> (Event.t -> unit) -> unit
(** Attach a sink.  Sinks run synchronously inside {!record}, in
    subscription order, after the event has been appended to the buffer
    (when there is one).  A sink must not record into the same recorder. *)

val record : t -> time:float -> Event.kind -> unit
(** Timestamps must be non-decreasing; raises [Invalid_argument]
    otherwise (the simulator never goes back in time). *)

val length : t -> int
(** Number of {e buffered} events ([0] for an unbuffered recorder). *)

val events_seen : t -> int
(** Number of events recorded, buffered or not. *)

val events : t -> Event.t array
(** Snapshot copy, in record order.  Raises [Invalid_argument] on an
    unbuffered recorder — as do {!iter}, {!fold}, {!between} and {!pp}:
    streaming pipelines must consume via {!subscribe} instead. *)

val iter : (Event.t -> unit) -> t -> unit
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val between : t -> start:float -> stop:float -> Event.t array
(** Events with [start <= time < stop]. *)

val duration : t -> float
(** Timestamp of the last recorded event, [0.] when none; works for
    unbuffered recorders too. *)

val packets_sent : t -> int
(** Count of [Segment_sent] events recorded (retransmissions included —
    the paper's send rate counts every transmission); O(1), works for
    unbuffered recorders too. *)

val pp : Format.formatter -> t -> unit
