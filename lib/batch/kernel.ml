type model = Full | Full_approx_q | Approximate | Td_only | Tfrc of float
type t = { model : model; b : int }

let make ?(b = 2) model =
  if b < 1 then invalid_arg "Batch.Kernel.make: b must be >= 1";
  (match model with
  | Tfrc t0_factor when not (t0_factor > 0.) ->
      invalid_arg "Batch.Kernel.make: t0_factor must be positive"
  | _ -> ());
  { model; b }

let name t =
  match t.model with
  | Full -> "full"
  | Full_approx_q -> "full-approx-q"
  | Approximate -> "approximate"
  | Td_only -> "td-only"
  | Tfrc _ -> "tfrc"

(* The loops below are written against a hard constraint of this build
   (no flambda): a cross-function float argument is boxed, so even a
   tiny [let f a b = ...] helper in the hot path costs 3x (measured:
   89 -> 34 M evals/s for eq. 33).  Everything is therefore spelled
   inline — [Float.min]/[Float.max] become two-way branches (safe here:
   the scanned domain excludes NaN at every site where the stdlib
   versions would differ), [Timeouts.f] is the literal polynomial, and
   Q-hat shares one [log1p (-p)] per row.  Each expression reproduces
   the scalar spelling operation for operation, so results are
   bit-identical to the guarded scalar path (selfcheck C11). *)

(* Each per-model loop is a toplevel [*_unchecked] function annotated
   [@pftk.zero_alloc], so pftk-flow proves both halves of the kernel
   contract: F1/F3 (callers must scan first; the loops never raise) and
   F2 (no allocating construct in any loop body).  The per-model
   constants are computed at function entry — once per chunk, outside
   the rows loop, so the extraction is performance-neutral. *)

let[@pftk.zero_alloc] full_rows_unchecked ~b pcol rcol tcol wcol ~pos ~len out
    =
  (* Eq. (32) with Q-hat of eq. (24), fused: E[W_u] computed once
     per row and reused for the regime test and the taken branch. *)
  let bf = float_of_int b in
      let c1 = float_of_int (2 + b) /. (3. *. bf) in
      let c1c1 = c1 *. c1 in
      let c2 = float_of_int (2 + b) /. 6. in
      let c2c2 = c2 *. c2 in
      let t3b = 3. *. bf in
      let k2b = 2. *. bf in
      let b8 = bf /. 8. in
      for i = pos to pos + len - 1 do
        let p = Float.Array.unsafe_get pcol i in
        let rtt = Float.Array.unsafe_get rcol i in
        let t0 = Float.Array.unsafe_get tcol i in
        let wmf = Float.Array.unsafe_get wcol i in
        let omp = 1. -. p in
        let ew = c1 +. sqrt ((8. *. omp /. (t3b *. p)) +. c1c1) in
        let l = Float.log1p (-.p) in
        let fp =
          1.
          +. (p
             *. (1.
                +. (p
                   *. (2.
                      +. (p
                         *. (4.
                            +. (p *. (8. +. (p *. (16. +. (p *. 32.)))))))))))
        in
        let v =
          if ew >= wmf then begin
            (* Window-limited: Q-hat at w = max 1 wm = wm (scan gives
               wm >= 1). *)
            let denom_q = -.Float.expm1 (wmf *. l) in
            let qhat =
              if denom_q <= 0. then begin
                let a = 3. /. wmf in
                if a < 1. then a else 1.
              end
              else begin
                let q3 = exp (3. *. l) in
                let numer_q =
                  (1. -. q3)
                  *. (1. +. (q3 *. -.Float.expm1 ((wmf -. 3.) *. l)))
                in
                let r = numer_q /. denom_q in
                if r < 1. then r else 1.
              end
            in
            let numer = (omp /. p) +. wmf +. (qhat /. omp) in
            let denom =
              (rtt *. ((b8 *. wmf) +. (omp /. (p *. wmf)) +. 2.))
              +. (qhat *. t0 *. fp /. omp)
            in
            numer /. denom
          end
          else begin
            let ex = c2 +. sqrt ((k2b *. omp /. (3. *. p)) +. c2c2) in
            let w = if ew < 1. then 1. else ew in
            let denom_q = -.Float.expm1 (w *. l) in
            let qhat =
              if denom_q <= 0. then begin
                let a = 3. /. w in
                if a < 1. then a else 1.
              end
              else begin
                let q3 = exp (3. *. l) in
                let numer_q =
                  (1. -. q3) *. (1. +. (q3 *. -.Float.expm1 ((w -. 3.) *. l)))
                in
                let r = numer_q /. denom_q in
                if r < 1. then r else 1.
              end
            in
            let numer = (omp /. p) +. ew +. (qhat /. omp) in
            let denom =
              (rtt *. (ex +. 1.)) +. (qhat *. t0 *. fp /. omp)
            in
            numer /. denom
          end
        in
        Float.Array.unsafe_set out i v
      done

let[@pftk.zero_alloc] full_approx_q_rows_unchecked ~b pcol rcol tcol wcol ~pos
    ~len out =
  (* Eq. (32) with the min(1, 3/w) Q-hat of eq. (25): no
     transcendentals beyond the two square roots. *)
  let bf = float_of_int b in
      let c1 = float_of_int (2 + b) /. (3. *. bf) in
      let c1c1 = c1 *. c1 in
      let c2 = float_of_int (2 + b) /. 6. in
      let c2c2 = c2 *. c2 in
      let t3b = 3. *. bf in
      let k2b = 2. *. bf in
      let b8 = bf /. 8. in
      for i = pos to pos + len - 1 do
        let p = Float.Array.unsafe_get pcol i in
        let rtt = Float.Array.unsafe_get rcol i in
        let t0 = Float.Array.unsafe_get tcol i in
        let wmf = Float.Array.unsafe_get wcol i in
        let omp = 1. -. p in
        let ew = c1 +. sqrt ((8. *. omp /. (t3b *. p)) +. c1c1) in
        let fp =
          1.
          +. (p
             *. (1.
                +. (p
                   *. (2.
                      +. (p
                         *. (4.
                            +. (p *. (8. +. (p *. (16. +. (p *. 32.)))))))))))
        in
        let v =
          if ew >= wmf then begin
            let qhat =
              let a = 3. /. wmf in
              if a < 1. then a else 1.
            in
            let numer = (omp /. p) +. wmf +. (qhat /. omp) in
            let denom =
              (rtt *. ((b8 *. wmf) +. (omp /. (p *. wmf)) +. 2.))
              +. (qhat *. t0 *. fp /. omp)
            in
            numer /. denom
          end
          else begin
            let ex = c2 +. sqrt ((k2b *. omp /. (3. *. p)) +. c2c2) in
            let w = if ew < 1. then 1. else ew in
            let qhat =
              let a = 3. /. w in
              if a < 1. then a else 1.
            in
            let numer = (omp /. p) +. ew +. (qhat /. omp) in
            let denom =
              (rtt *. (ex +. 1.)) +. (qhat *. t0 *. fp /. omp)
            in
            numer /. denom
          end
        in
        Float.Array.unsafe_set out i v
      done

let[@pftk.zero_alloc] approximate_rows_unchecked ~b pcol rcol tcol wcol ~pos
    ~len out =
  (* Eq. (33). *)
  let bf = float_of_int b in
      let k2b = 2. *. bf in
      let t3b = 3. *. bf in
      for i = pos to pos + len - 1 do
        let p = Float.Array.unsafe_get pcol i in
        let rtt = Float.Array.unsafe_get rcol i in
        let t0 = Float.Array.unsafe_get tcol i in
        let wmf = Float.Array.unsafe_get wcol i in
        let cap = wmf /. rtt in
        let td = rtt *. sqrt (k2b *. p /. 3.) in
        (* [x /. 8. = x *. 0.125] bit-for-bit (8 and 1/8 are both exact,
           so both operations round the same real value once) — and the
           multiply stays off the divider unit, which this loop
           saturates. *)
        let m = 3. *. sqrt (t3b *. p *. 0.125) in
        let mm = if m < 1. then m else 1. in
        let tot = t0 *. mm *. p *. (1. +. (32. *. p *. p)) in
        let r = 1. /. (td +. tot) in
        Float.Array.unsafe_set out i (if cap < r then cap else r)
      done

let[@pftk.zero_alloc] td_only_rows_unchecked ~b pcol rcol ~pos ~len out =
  (* Eq. (19), uncapped, matching [Model.send_rate Td_only]. *)
  let bf = float_of_int b in
      let c1 = float_of_int (2 + b) /. (3. *. bf) in
      let c1c1 = c1 *. c1 in
      let c2 = float_of_int (2 + b) /. 6. in
      let c2c2 = c2 *. c2 in
      let t3b = 3. *. bf in
      let k2b = 2. *. bf in
      for i = pos to pos + len - 1 do
        let p = Float.Array.unsafe_get pcol i in
        let rtt = Float.Array.unsafe_get rcol i in
        let omp = 1. -. p in
        let ew = c1 +. sqrt ((8. *. omp /. (t3b *. p)) +. c1c1) in
        let ex = c2 +. sqrt ((k2b *. omp /. (3. *. p)) +. c2c2) in
        Float.Array.unsafe_set out i
          (((omp /. p) +. ew) /. (rtt *. (ex +. 1.)))
      done

let[@pftk.zero_alloc] tfrc_rows_unchecked ~t0_factor pcol rcol ~pos ~len out =
  (* [Tfrc.fair_rate]: eq. (33) at b = 2, no receiver window
     (cap = unlimited/rtt can still bind for subnormal p), with
     T0 = max 1e-3 (t0_factor * rtt).  Reads only the p and rtt
     columns. *)
  let bf = float_of_int 2 in
      let k2b = 2. *. bf in
      let t3b = 3. *. bf in
      let wu = Columns.unlimited_wm in
      for i = pos to pos + len - 1 do
        let p = Float.Array.unsafe_get pcol i in
        let rtt = Float.Array.unsafe_get rcol i in
        let t0 =
          let x = t0_factor *. rtt in
          if x > 1e-3 then x else 1e-3
        in
        let cap = wu /. rtt in
        let td = rtt *. sqrt (k2b *. p /. 3.) in
        let m = 3. *. sqrt (t3b *. p *. 0.125) in
        let mm = if m < 1. then m else 1. in
        let tot = t0 *. mm *. p *. (1. +. (32. *. p *. p)) in
        let r = 1. /. (td +. tot) in
        Float.Array.unsafe_set out i (if cap < r then cap else r)
      done

let eval_into { model; b } (c : Columns.t) ~pos ~len out =
  if pos < 0 || len < 0 || pos + len > c.Columns.n then
    invalid_arg "Batch.Kernel.eval_into: range out of bounds";
  if Float.Array.length out < pos + len then
    invalid_arg "Batch.Kernel.eval_into: output array too short";
  let pcol = c.Columns.p
  and rcol = c.Columns.rtt
  and tcol = c.Columns.t0
  and wcol = c.Columns.wm in
  match model with
  | Full -> full_rows_unchecked ~b pcol rcol tcol wcol ~pos ~len out
  | Full_approx_q ->
      full_approx_q_rows_unchecked ~b pcol rcol tcol wcol ~pos ~len out
  | Approximate -> approximate_rows_unchecked ~b pcol rcol tcol wcol ~pos ~len out
  | Td_only -> td_only_rows_unchecked ~b pcol rcol ~pos ~len out
  | Tfrc t0_factor -> tfrc_rows_unchecked ~t0_factor pcol rcol ~pos ~len out

let scalar_reference t ~p ~rtt ~t0 ~wm =
  match t.model with
  | Full ->
      Pftk_core.Model.send_rate Pftk_core.Model.Full
        (Pftk_core.Params.make ~b:t.b ~wm:(Columns.wm_to_int wm) ~rtt ~t0 ())
        p
  | Full_approx_q ->
      Pftk_core.Model.send_rate Pftk_core.Model.Full_approx_q
        (Pftk_core.Params.make ~b:t.b ~wm:(Columns.wm_to_int wm) ~rtt ~t0 ())
        p
  | Approximate ->
      Pftk_core.Model.send_rate Pftk_core.Model.Approximate
        (Pftk_core.Params.make ~b:t.b ~wm:(Columns.wm_to_int wm) ~rtt ~t0 ())
        p
  | Td_only ->
      Pftk_core.Model.send_rate Pftk_core.Model.Td_only
        (Pftk_core.Params.make ~b:t.b ~wm:(Columns.wm_to_int wm) ~rtt ~t0 ())
        p
  | Tfrc t0_factor -> Pftk_core.Tfrc.fair_rate ~t0_factor ~rtt p
