type error = { row : int; field : string; message : string }

(* One predicate per field, spelled exactly like the scalar guards
   ([Params.validate] / [Params.check_p]) so NaN and infinity behave
   identically: [not (rtt > 0.)] rejects NaN and accepts [+inf], just as
   the scalar path does.  The integrality demand on [wm] is batch-only —
   the scalar side stores an [int] and cannot express the violation. *)
let check_row ~p ~rtt ~t0 ~wm =
  if not (rtt > 0.) then Error ("rtt", "Params: rtt must be positive")
  else if not (t0 > 0.) then Error ("t0", "Params: t0 must be positive")
  else if not (wm >= 1.) then Error ("wm", "Params: wm must be >= 1")
  else if not (wm <= Columns.unlimited_wm) then
    (* Beyond the sentinel the float column and the scalar [int] stop
       corresponding (and [Float.is_integer] would wave [infinity]
       through), so the scan draws the line exactly at the sentinel. *)
    Error
      ( "wm",
        "batch: wm exceeds the unlimited-window sentinel (use wm <= 0 for \
         unlimited)" )
  else if not (Float.is_integer wm) then
    Error ("wm", "batch: wm must be a whole number of packets")
  else if not (p > 0. && p < 1.) then
    Error ("p", Printf.sprintf "loss probability p=%g outside (0, 1)" p)
  else Ok ()

let validate (c : Columns.t) =
  let n = c.Columns.n in
  let pcol = c.Columns.p
  and rcol = c.Columns.rtt
  and tcol = c.Columns.t0
  and wcol = c.Columns.wm in
  (* Fast path: one inlined conjunction per row (a cross-function call
     would box all four floats — the same no-flambda trap the kernels
     avoid).  Only a failing row pays for [check_row], which rebuilds
     the scalar-exact diagnostic. *)
  let rec go i =
    if i >= n then begin
      c.Columns.dirty <- false;
      Ok ()
    end
    else
      let p = Float.Array.unsafe_get pcol i in
      let rtt = Float.Array.unsafe_get rcol i in
      let t0 = Float.Array.unsafe_get tcol i in
      let wm = Float.Array.unsafe_get wcol i in
      if
        rtt > 0. && t0 > 0.
        && wm >= 1.
        && wm <= Columns.unlimited_wm
        && Float.trunc wm = wm
        && p > 0. && p < 1.
      then go (i + 1)
      else
        match check_row ~p ~rtt ~t0 ~wm with
        | Error (field, message) -> Error { row = i; field; message }
        | Ok () -> go (i + 1)
  in
  go 0
