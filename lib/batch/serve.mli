(** The line protocol of [pftk serve --batch].

    Input grammar, one query per line (any amount of blanks/tabs
    between fields; trailing [\r] tolerated):

    {v <p> <rtt-seconds> <t0-seconds> <wm-packets> v}

    Numbers are OCaml float literals ([float_of_string]); [wm <= 0]
    denotes "no receiver limit" (the CLI's [--wm] convention).  Output
    is exactly one line per input line: the send rate in packets/s
    printed with ["%.17g"] (round-trips the double exactly), or the
    sentinel ["nan"] for a rejected line.  Rejections (parse failures
    and out-of-domain values) are reported on stderr as
    ["pftk serve: line %d: <message>"] without aborting the stream. *)

type query = { p : float; rtt : float; t0 : float; wm : float }

val max_line_bytes : int
(** 4096: longer lines are rejected (never evaluated) with a
    ["line exceeds %d bytes (got %d)"] diagnostic naming the observed
    length, bounding per-line work for untrusted input.  A line of
    exactly [max_line_bytes] bytes is still accepted. *)

val sentinel : string
(** ["nan"]: the output line for a rejected input line. *)

val format_rate : float -> string
(** ["%.17g"] — shortest text that round-trips the exact double. *)

val parse_line : string -> (query, string) result
(** Syntax only; domain checking is {!Scan.check_row}'s job (so the
    rejection messages match the scalar guards). *)
