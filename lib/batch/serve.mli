(** The line protocol of [pftk serve --batch].

    Input grammar, one query per line (any amount of blanks/tabs
    between fields; trailing [\r] tolerated):

    {v <p> <rtt-seconds> <t0-seconds> <wm-packets> v}

    Units: [p] is the loss probability (dimensionless, [0 < p < 1]),
    [rtt] and [t0] are seconds, [wm] is packets, and every output rate
    is packets per second — multiply by the MSS in bytes
    ([Pftk_core.Inverse.rate_in_bytes]) for bytes/s.

    Numbers are OCaml float literals ([float_of_string]); [wm <= 0]
    denotes "no receiver limit" (the CLI's [--wm] convention).  Output
    is exactly one line per input line: the send rate in packets/s
    printed with ["%.17g"] (round-trips the double exactly), or the
    sentinel ["nan"] for a rejected line.  Rejections (parse failures
    and out-of-domain values) are reported on stderr as
    ["pftk serve: line %d: <message>"] without aborting the stream. *)

type query = {
  p : float; [@pftk.unit "prob"]  (** loss probability, dimensionless *)
  rtt : float; [@pftk.unit "s"]  (** round-trip time, seconds *)
  t0 : float; [@pftk.unit "s"]  (** initial timeout, seconds *)
  wm : float; [@pftk.unit "pkt"]  (** receiver window, packets *)
}

val max_line_bytes : int
(** 4096: longer lines are rejected (never evaluated) with a
    ["line exceeds %d bytes (got %d)"] diagnostic naming the observed
    length, bounding per-line work for untrusted input.  A line of
    exactly [max_line_bytes] bytes is still accepted. *)

val sentinel : string
(** ["nan"]: the output line for a rejected input line. *)

val format_rate : float -> string
[@@pftk.unit "pkt/s -> _"]
(** ["%.17g"] — shortest text that round-trips the exact double. *)

val parse_line : string -> (query, string) result
(** Syntax only; domain checking is {!Scan.check_row}'s job (so the
    rejection messages match the scalar guards). *)
