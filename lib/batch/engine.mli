(** The scanned front door to the batch kernels: validate whole columns
    once ({!Scan.validate}), then run the guard-free loops, optionally
    fanned over the domain pool in contiguous chunks.

    Determinism contract: the chunk grid depends only on [chunk] (never
    on [jobs]) and each chunk writes a disjoint output slice of a pure
    per-row function, so every [jobs] value — including [jobs] larger
    than the row count — produces byte-identical output
    (property-tested in [test_batch]).  [jobs] beyond 64 clamp (the
    runtime caps live domains); the clamp cannot change the output. *)

val default_chunk : int
(** 65536 rows (2 MiB of columns): small enough to balance the pool,
    large enough to amortize task dispatch. *)

val run_into :
  ?jobs:int -> ?chunk:int -> Kernel.t -> Columns.t -> floatarray -> unit
[@@pftk.unit "_ -> _ -> _ -> _ -> pkt/s -> _"]
(** Scan all rows, then evaluate them into [out.(0 .. n-1)].  Raises
    [Invalid_argument] ["batch row %d: <scalar message>"] on the first
    out-of-domain row, before touching [out].  The scan is skipped when
    the columns are unchanged since their last successful scan
    ({!Columns.t.dirty} is clear), so repeated evaluation runs at pure
    kernel speed. *)

val run : ?jobs:int -> ?chunk:int -> Kernel.t -> Columns.t -> floatarray
[@@pftk.unit "_ -> _ -> _ -> _ -> pkt/s"]
(** {!run_into} into a fresh array. *)

val loss_budget_into :
  ?jobs:int ->
  ?chunk:int ->
  b:int ->
  Columns.t ->
  rates:floatarray ->
  floatarray ->
  unit
[@@pftk.unit "_ -> _ -> _ -> _ -> pkt/s -> prob -> _"]
(** Batched {!Pftk_core.Inverse.loss_budget}: for each row, the largest
    loss probability under which the full model (with the row's [rtt],
    [t0], [wm] and the batch [b]) still sustains [rates.(i)] packets/s.
    The [p] column is ignored but still scanned.  Rows with no
    sustaining budget (target above the model's range) or a
    non-positive/NaN target get a NaN sentinel rather than an error. *)

val loss_budget :
  ?jobs:int -> ?chunk:int -> b:int -> Columns.t -> rates:floatarray -> floatarray
[@@pftk.unit "_ -> _ -> _ -> _ -> pkt/s -> prob"]
(** {!loss_budget_into} into a fresh array; unsolvable rows carry the
    same NaN sentinel. *)
