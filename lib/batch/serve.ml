type query = { p : float; rtt : float; t0 : float; wm : float }

let max_line_bytes = 4096
let sentinel = "nan"
let format_rate r = Printf.sprintf "%.17g" r

let is_space ch = ch = ' ' || ch = '\t' || ch = '\r'

(* Whitespace-separated tokens, allocation-light (no regexp, no
   intermediate list of empty fields). *)
let split_fields line =
  let n = String.length line in
  let rec skip i = if i < n && is_space line.[i] then skip (i + 1) else i in
  let rec tok i = if i < n && not (is_space line.[i]) then tok (i + 1) else i in
  let rec go acc i =
    let i = skip i in
    if i >= n then List.rev acc
    else
      let j = tok i in
      go (String.sub line i (j - i) :: acc) j
  in
  go [] 0

let field_name = [| "p"; "rtt"; "t0"; "wm" |]

let number idx s =
  match float_of_string_opt s with
  | Some v -> Ok v
  | None ->
      Error
        (Printf.sprintf "field %d (%s): %S is not a number" (idx + 1)
           field_name.(idx) s)

let ( let* ) = Result.bind

let parse_line line =
  if String.length line > max_line_bytes then
    Error
      (Printf.sprintf "line exceeds %d bytes (got %d)" max_line_bytes
         (String.length line))
  else
    match split_fields line with
    | [] -> Error "empty line"
    | [ a; b; c; d ] ->
        let* p = number 0 a in
        let* rtt = number 1 b in
        let* t0 = number 2 c in
        let* wm = number 3 d in
        (* wm <= 0 denotes "no receiver limit", the CLI's --wm
           convention; NaN stays NaN and is rejected by the scan. *)
        Ok { p; rtt; t0; wm = (if wm <= 0. then Columns.unlimited_wm else wm) }
    | toks ->
        Error
          (Printf.sprintf "expected 4 fields (p rtt t0 wm), got %d"
             (List.length toks))
