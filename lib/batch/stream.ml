type outcome = { total : int; failed : int }

let run ?(jobs = 1) ?(chunk = Engine.default_chunk) ?(scalar = false) kernel ic
    oc ~err =
  if chunk < 1 then invalid_arg "Batch.Stream.run: chunk must be >= 1";
  let total = ref 0 and failed = ref 0 in
  let buf = Buffer.create (64 * 1024) in
  (* Lines of the current batch, newest first: [Ok q] joins the packed
     columns, [Error] lines keep their slot so output stays 1:1. *)
  let pending = ref [] in
  let npending = ref 0 and nok = ref 0 in
  let flush_batch () =
    if !npending > 0 then begin
      let items = List.rev !pending in
      let cols = Columns.create !nok in
      let j = ref 0 in
      List.iter
        (fun item ->
          match item with
          | Ok (q : Serve.query) ->
              Columns.set cols !j ~p:q.Serve.p ~rtt:q.Serve.rtt ~t0:q.Serve.t0
                ~wm:q.Serve.wm;
              incr j
          | Error () -> ())
        items;
      let out =
        if scalar then begin
          (* Reference mode: the same stream answered by per-row
             guarded scalar calls — the oracle for the CLI's
             batch-vs-scalar byte-identity test. *)
          let o = Float.Array.make !nok 0. in
          let j = ref 0 in
          List.iter
            (fun item ->
              match item with
              | Ok (q : Serve.query) ->
                  Float.Array.set o !j
                    (Kernel.scalar_reference kernel ~p:q.Serve.p
                       ~rtt:q.Serve.rtt ~t0:q.Serve.t0 ~wm:q.Serve.wm);
                  incr j
              | Error () -> ())
            items;
          o
        end
        else Engine.run ~jobs ~chunk kernel cols
      in
      let j = ref 0 in
      List.iter
        (fun item ->
          (match item with
          | Ok _ ->
              Buffer.add_string buf (Serve.format_rate (Float.Array.get out !j));
              incr j
          | Error () -> Buffer.add_string buf Serve.sentinel);
          Buffer.add_char buf '\n')
        items;
      output_string oc (Buffer.contents buf);
      Buffer.clear buf;
      pending := [];
      npending := 0;
      nok := 0
    end
  in
  let reject msg =
    incr failed;
    Printf.fprintf err "pftk serve: line %d: %s\n" !total msg;
    pending := Error () :: !pending
  in
  (try
     while true do
       let line = input_line ic in
       incr total;
       (match Serve.parse_line line with
       | Error msg -> reject msg
       | Ok q -> (
           match
             Scan.check_row ~p:q.Serve.p ~rtt:q.Serve.rtt ~t0:q.Serve.t0
               ~wm:q.Serve.wm
           with
           | Ok () ->
               pending := Ok q :: !pending;
               incr nok
           | Error (_field, message) -> reject message));
       incr npending;
       if !npending >= chunk then flush_batch ()
     done
   with End_of_file -> ());
  flush_batch ();
  flush oc;
  flush err;
  { total = !total; failed = !failed }
