(** Columnar parameter storage for the batch engine: one [floatarray]
    per model input, so the evaluation kernels stream unboxed floats
    with no per-row allocation.

    The receiver window is kept as a float column holding
    [float_of_int wm] (the scan additionally demands integrality); rows
    set with [wm <= 0] store the scalar CLI's "unlimited" sentinel,
    [float_of_int Params.unlimited_window]. *)

type t = {
  n : int;  (** row count *)
  p : floatarray; [@pftk.unit "prob"]  (** loss probability, per row *)
  rtt : floatarray; [@pftk.unit "s"]  (** round-trip time (s), per row *)
  t0 : floatarray; [@pftk.unit "s"]  (** initial timeout (s), per row *)
  wm : floatarray; [@pftk.unit "pkt"]
  (** receiver window (packets, integral), per row *)
  mutable dirty : bool;
      (** [true] iff a row may have changed since the last successful
          {!Scan.validate}.  Maintained by {!set} (raises it) and the
          scan (clears it) so repeated evaluation over unchanged columns
          skips the rescan; treat as read-only outside those two. *)
}

val create : int -> t
(** [create n] allocates [n] zero-filled rows (all-zero rows fail the
    scan; fill every row before evaluating). *)

val length : t -> int

val set : t -> int -> p:float -> rtt:float -> t0:float -> wm:float -> unit
[@@pftk.unit "_ -> _ -> prob -> s -> s -> pkt -> _"]
(** Fill row [i]; [wm <= 0.] maps to {!unlimited_wm} (the CLI's
    "no receiver limit" convention). *)

val row : t -> int -> float * float * float * float
[@@pftk.unit "_ -> _ -> (prob, s, s, pkt)"]
(** [(p, rtt, t0, wm)] of row [i], as stored. *)

val unlimited_wm : float
[@@pftk.unit "pkt"]
(** [float_of_int Params.unlimited_window]. *)

val wm_to_int : float -> int
[@@pftk.unit "pkt -> _"]
(** Inverse of the storage convention: the scalar [wm] an in-domain
    column value denotes.  Values [>= unlimited_wm] clamp to
    [Params.unlimited_window]. *)
