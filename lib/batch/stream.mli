(** Drive the batch engine from a newline-delimited query stream (the
    backend of [pftk serve --batch]).

    Lines are buffered up to [chunk], packed into columns (rejected
    lines keep an empty slot), evaluated in one engine pass, and
    emitted strictly 1:1 and in order: every input line yields exactly
    one output line — a rate or {!Serve.sentinel}.  Rejections go to
    [err] as they are encountered (see {!Serve} for the message
    contract); the stream never aborts on bad input. *)

type outcome = { total : int; failed : int }

val run :
  ?jobs:int ->
  ?chunk:int ->
  ?scalar:bool ->
  Kernel.t ->
  in_channel ->
  out_channel ->
  err:out_channel ->
  outcome
(** [scalar:true] answers each accepted line with the guarded
    per-row scalar computation instead of the batch kernel — same
    protocol, used to cross-check batch output byte-for-byte. *)
