(** The hoisted domain scan: validates whole columns once, up front, so
    the evaluation kernels run guard-free ([_unchecked]) inner loops.

    The predicates and messages mirror the scalar guards exactly
    ({!Pftk_core.Params.validate} order [rtt, t0, wm] then
    {!Pftk_core.Params.check_p}), including their NaN/infinity
    behaviour: NaN fails every comparison and is rejected with the same
    message a scalar call would raise; [+inf] durations are accepted,
    as on the scalar side.  Two batch-only demands are added, because
    the scalar [wm] is an [int]: the [wm] column must hold whole
    numbers, no larger than {!Columns.unlimited_wm} (beyond which a
    float column and an [int] window stop corresponding). *)

type error = { row : int; field : string; message : string }

val check_row :
  p:float -> rtt:float -> t0:float -> wm:float -> (unit, string * string) result
[@@pftk.unit "prob -> s -> s -> pkt -> _"]
(** Validate one row; [Error (field, message)] identifies the first
    failing field in the scalar validation order. *)

val validate : Columns.t -> (unit, error) result
(** Row-major scan of all four columns; the reported error is exactly
    the one a scalar loop over the rows would raise first.  A successful
    scan clears {!Columns.t.dirty}, letting the engine skip the rescan
    on repeated evaluation of unchanged columns. *)
