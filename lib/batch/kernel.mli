(** Specialized columnar evaluation loops for the throughput models.

    A kernel is a model choice plus the batch-constant [b]; evaluation
    walks [Columns.t] rows with zero per-row allocation.  The inner
    loops assume their input range has passed {!Scan.validate} — all
    guards are hoisted there — and reproduce the scalar float
    arithmetic operation for operation, so for every in-domain row the
    result is bit-identical to the corresponding guarded scalar call
    (enforced by selfcheck invariant C11 and [test_batch]). *)

type model =
  | Full  (** eq. (32), Q-hat by eq. (24) — [Model.Full] *)
  | Full_approx_q  (** eq. (32), Q-hat by eq. (25) — [Model.Full_approx_q] *)
  | Approximate  (** eq. (33) — [Model.Approximate] *)
  | Td_only  (** eq. (19), uncapped — [Model.Td_only] *)
  | Tfrc of float
      (** {!Pftk_core.Tfrc.fair_rate} with the given [t0_factor]; reads
          only the [p] and [rtt] columns. *)

type t

val make : ?b:int -> model -> t
(** [b] defaults to 2 (delayed ACKs), as everywhere in the suite.
    Raises [Invalid_argument] if [b < 1] or a [Tfrc] factor is not
    positive. *)

val name : t -> string
(** The scalar CLI's name for the kernel's model. *)

val eval_into : t -> Columns.t -> pos:int -> len:int -> floatarray -> unit
[@@pftk.unit "_ -> _ -> _ -> _ -> pkt/s -> _"]
(** Evaluate rows [pos .. pos+len-1] into the same indices of the
    output array.  Range- and length-checked, but the rows themselves
    must already have passed the scan: out-of-domain values give
    unspecified results (never exceptions).  Use {!Engine.run} for the
    scanned front door. *)

val scalar_reference : t -> p:float -> rtt:float -> t0:float -> wm:float -> float
[@@pftk.unit "_ -> prob -> s -> s -> pkt -> pkt/s"]
(** The guarded scalar computation this kernel batches — what a
    per-row CLI invocation computes ([Model.send_rate] on a
    [Params.make] of the row, or [Tfrc.fair_rate]).  The oracle for
    every batch-vs-scalar equivalence test; raises on out-of-domain
    inputs exactly as the scalar guards do.  [wm] is in the column
    representation ({!Columns.wm_to_int} recovers the scalar value;
    ignored, like [t0], by [Tfrc]). *)
