type t = {
  n : int;
  p : floatarray;
  rtt : floatarray;
  t0 : floatarray;
  wm : floatarray;
  mutable dirty : bool;
}

let unlimited_wm = float_of_int Pftk_core.Params.unlimited_window

let create n =
  if n < 0 then invalid_arg "Batch.Columns.create: n must be >= 0";
  {
    n;
    p = Float.Array.make n 0.;
    rtt = Float.Array.make n 0.;
    t0 = Float.Array.make n 0.;
    wm = Float.Array.make n 0.;
    dirty = true;
  }

let length t = t.n

let set t i ~p ~rtt ~t0 ~wm =
  if i < 0 || i >= t.n then invalid_arg "Batch.Columns.set: row out of range";
  t.dirty <- true;
  Float.Array.set t.p i p;
  Float.Array.set t.rtt i rtt;
  Float.Array.set t.t0 i t0;
  Float.Array.set t.wm i (if wm <= 0. then unlimited_wm else wm)

let row t i =
  if i < 0 || i >= t.n then invalid_arg "Batch.Columns.row: row out of range";
  ( Float.Array.get t.p i,
    Float.Array.get t.rtt i,
    Float.Array.get t.t0 i,
    Float.Array.get t.wm i )

(* The scalar side stores [wm] as an [int]; columns store
   [float_of_int wm].  Both directions round-trip through the same
   [float_of_int], so comparisons against the column value agree with
   the scalar regime test.  Values at or above the unlimited sentinel
   clamp back to it (guards [int_of_float] overflow for huge columns). *)
let wm_to_int w =
  if w >= unlimited_wm then Pftk_core.Params.unlimited_window
  else int_of_float w
