let default_chunk = 65536

(* The OCaml runtime refuses to allocate more than ~128 live domains;
   requests beyond this clamp rather than crash.  Safe because the
   chunk grid — and therefore the output — never depends on [jobs]. *)
let max_jobs = 64
let clamp_jobs jobs = if jobs > max_jobs then max_jobs else jobs

(* The scan runs only when a row may have changed since the last
   successful validation ([Columns.dirty]); evaluating the same columns
   repeatedly — several models over one grid, bisection over rates —
   pays for it once. *)
let scan_or_raise (c : Columns.t) =
  if c.Columns.dirty then
    match Scan.validate c with
    | Ok () -> ()
    | Error { Scan.row; message; _ } ->
        invalid_arg (Printf.sprintf "batch row %d: %s" row message)

let run_into ?(jobs = 1) ?(chunk = default_chunk) kernel (c : Columns.t) out =
  if jobs < 1 then invalid_arg "Batch.Engine.run_into: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Batch.Engine.run_into: chunk must be >= 1";
  let jobs = clamp_jobs jobs in
  if Float.Array.length out < c.Columns.n then
    invalid_arg "Batch.Engine.run_into: output array too short";
  scan_or_raise c;
  let n = c.Columns.n in
  if jobs = 1 || n <= chunk then Kernel.eval_into kernel c ~pos:0 ~len:n out
  else begin
    (* The chunk grid depends only on [chunk], never on [jobs], and
       each worker writes its own disjoint [pos, pos+len) slice of
       [out], so any [jobs] value produces byte-identical output (the
       per-row function is pure).  The mutable-capture lint cannot see
       the disjointness, hence the scoped allow. *)
    let nchunks = (n + chunk - 1) / chunk in
    ignore
      (Pftk_parallel.map ~jobs
         ((fun i ->
            let pos = i * chunk in
            let len = if n - pos < chunk then n - pos else chunk in
            Kernel.eval_into kernel c ~pos ~len out)
         [@lint.allow "R1"])
         (List.init nchunks (fun i -> i)))
  end

let run ?jobs ?chunk kernel c =
  let out = Float.Array.make c.Columns.n 0. in
  run_into ?jobs ?chunk kernel c out;
  out

(* The batched inverse rides on the scalar segment-aware bisection: at
   ~240 model evaluations per row there is nothing to gain from a
   specialized loop, only from the fan-out.  Rows whose target rate has
   no sustaining loss budget get a NaN sentinel. *)
let loss_budget_into ?(jobs = 1) ?(chunk = default_chunk) ~b (c : Columns.t)
    ~rates out =
  if jobs < 1 then invalid_arg "Batch.Engine.loss_budget_into: jobs must be >= 1";
  if chunk < 1 then invalid_arg "Batch.Engine.loss_budget_into: chunk must be >= 1";
  let jobs = clamp_jobs jobs in
  if b < 1 then invalid_arg "Batch.Engine.loss_budget_into: b must be >= 1";
  let n = c.Columns.n in
  if Float.Array.length rates < n then
    invalid_arg "Batch.Engine.loss_budget_into: rates array too short";
  if Float.Array.length out < n then
    invalid_arg "Batch.Engine.loss_budget_into: output array too short";
  scan_or_raise c;
  let row i =
    let rtt = Float.Array.unsafe_get c.Columns.rtt i in
    let t0 = Float.Array.unsafe_get c.Columns.t0 i in
    let wm = Columns.wm_to_int (Float.Array.unsafe_get c.Columns.wm i) in
    let params = Pftk_core.Params.make ~b ~wm ~rtt ~t0 () in
    let rate = Float.Array.unsafe_get rates i in
    let v =
      if not (rate > 0.) then Float.nan
      else
        match Pftk_core.Inverse.loss_budget params ~rate with
        | Some p -> p
        | None -> Float.nan
    in
    Float.Array.unsafe_set out i v
  in
  if jobs = 1 || n <= chunk then
    for i = 0 to n - 1 do
      row i
    done
  else begin
    (* Same disjoint-slice argument as [run_into]. *)
    let nchunks = (n + chunk - 1) / chunk in
    ignore
      (Pftk_parallel.map ~jobs
         ((fun ci ->
            let pos = ci * chunk in
            let stop =
              if n - pos < chunk then n else pos + chunk
            in
            for i = pos to stop - 1 do
              row i
            done)
         [@lint.allow "R1"])
         (List.init nchunks (fun i -> i)))
  end

let loss_budget ?jobs ?chunk ~b c ~rates =
  let out = Float.Array.make c.Columns.n 0. in
  loss_budget_into ?jobs ?chunk ~b c ~rates out;
  out
