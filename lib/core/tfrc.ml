module Loss_history = struct
  type t = {
    depth : int;
    (* closed.(0) is the most recent completed interval length. *)
    mutable closed : float list;
    mutable current : int;  (* packets since the current event started *)
    mutable in_event : bool;  (* has any loss event occurred yet *)
    mutable event_span : int;
    mutable since_event_start : int;
    mutable loss_events : int;
    mutable packets_seen : int;
  }

  let create ?(intervals = 8) () =
    if intervals < 2 then invalid_arg "Tfrc.Loss_history: intervals must be >= 2";
    {
      depth = intervals;
      closed = [];
      current = 0;
      in_event = false;
      event_span = 1;
      since_event_start = 0;
      loss_events = 0;
      packets_seen = 0;
    }

  let set_event_span t span =
    if span < 1 then invalid_arg "Tfrc.Loss_history: span must be >= 1";
    t.event_span <- span

  let weights depth =
    (* RFC 5348: the first half of the history has weight 1, decaying
       linearly to 2/(depth+2)-ish afterwards; for depth 8 this is the
       canonical [1,1,1,1,0.8,0.6,0.4,0.2]. *)
    Array.init depth (fun i ->
        let half = depth / 2 in
        if i < half then 1.
        else 1. -. (float_of_int (i - half + 1) /. float_of_int (half + 1)))

  let on_packet t ~lost =
    t.packets_seen <- t.packets_seen + 1;
    t.current <- t.current + 1;
    t.since_event_start <- t.since_event_start + 1;
    if lost then begin
      if t.in_event && t.since_event_start <= t.event_span then
        (* Same loss event: ignore. *)
        ()
      else begin
        t.loss_events <- t.loss_events + 1;
        if t.in_event then begin
          (* Close the running interval. *)
          t.closed <- float_of_int t.current :: t.closed;
          if List.length t.closed > t.depth then
            t.closed <- List.filteri (fun i _ -> i < t.depth) t.closed
        end;
        t.in_event <- true;
        t.current <- 0;
        t.since_event_start <- 0
      end
    end

  let loss_events t = t.loss_events
  let packets_seen t = t.packets_seen

  let weighted_average intervals depth =
    let w = weights depth in
    let num = ref 0. and den = ref 0. in
    List.iteri
      (fun i s ->
        if i < depth then begin
          num := !num +. (w.(i) *. s);
          den := !den +. w.(i)
        end)
      intervals;
    if Float.equal !den 0. then None else Some (!num /. !den)

  let average_interval t =
    if not t.in_event then None
    else begin
      (* History discounting: include the open interval as interval zero if
         that *raises* the average (a long loss-free stretch should lift the
         allowed rate promptly; a short one must not crash it). *)
      let history = weighted_average t.closed t.depth in
      let with_current =
        weighted_average (float_of_int t.current :: t.closed) t.depth
      in
      match (history, with_current) with
      | None, None -> Some (Float.max 1. (float_of_int t.current))
      | None, Some c -> Some c
      | Some h, None -> Some h
      | Some h, Some c -> Some (Float.max h c)
    end

  let loss_event_rate t =
    match average_interval t with
    | Some avg when avg > 0. -> Some (Float.min 1. (1. /. avg))
    | Some _ | None -> None
end

(* The throughput equation as a standalone function of (t0_factor, rtt,
   p): exactly what [Controller.equation_rate] computes, factored out so
   the batch engine can evaluate it columnwise.  [fair_rate_unchecked]
   follows the validated-input convention (caller vouches for
   [t0_factor > 0], [rtt > 0] and [0 < p < 1]). *)
let fair_rate_unchecked ~t0_factor ~rtt p =
  (* Spelled without [Params.make] (whose validation raises): the same
     window cap and uncapped rate [Approx_model.send_rate_unchecked]
     would compute from [make ~rtt ~t0 ()]'s record — b = 2,
     wm = unlimited_window — operation for operation, so the result is
     bit-identical and the F3 no-raise contract holds. *)
  let t0 = Float.max 1e-3 (t0_factor *. rtt) in
  Float.min
    (float_of_int Params.unlimited_window /. rtt)
    (Approx_model.send_rate_uncapped_unchecked ~rtt ~t0 ~b:2 p)

let fair_rate ?(t0_factor = 4.) ~rtt p =
  Params.check_p p;
  if not (rtt > 0.) then invalid_arg "Tfrc.fair_rate: rtt must be positive";
  if not (t0_factor > 0.) then
    invalid_arg "Tfrc.fair_rate: t0_factor must be positive";
  fair_rate_unchecked ~t0_factor ~rtt p

module Controller = struct
  type t = {
    history : Loss_history.t;
    min_rate : float;
    rtt_gain : float;
    t0_factor : float;
    mutable rate : float;
    mutable srtt : float option;
  }

  let create ?(initial_rate = 1.) ?(min_rate = 1. /. 64.) ?(rtt_gain = 0.1)
      ?(t0_factor = 4.) () =
    if not (initial_rate > 0. && min_rate > 0.) then
      invalid_arg "Tfrc.Controller: rates must be positive";
    if not (0. < rtt_gain && rtt_gain <= 1.) then
      invalid_arg "Tfrc.Controller: rtt_gain outside (0, 1]";
    if not (t0_factor > 0.) then
      invalid_arg "Tfrc.Controller: t0_factor must be positive";
    {
      history = Loss_history.create ();
      min_rate;
      rtt_gain;
      t0_factor;
      rate = initial_rate;
      srtt = None;
    }

  let on_rtt_sample t r =
    if not (r > 0.) then invalid_arg "Tfrc.Controller: rtt sample must be positive";
    t.srtt <-
      (match t.srtt with
      | None -> Some r
      | Some s -> Some (((1. -. t.rtt_gain) *. s) +. (t.rtt_gain *. r)))

  let on_packet t ~lost =
    (* Group losses within roughly one RTT's worth of packets at the
       current rate into a single event. *)
    (match t.srtt with
    | Some rtt ->
        Loss_history.set_event_span t.history
          (Int.max 1 (int_of_float (t.rate *. rtt)))
    | None -> ());
    Loss_history.on_packet t.history ~lost

  let equation_rate t p rtt =
    Params.check_p p;
    if not (rtt > 0.) then
      invalid_arg "Tfrc.Controller.equation_rate: rtt must be positive";
    fair_rate_unchecked ~t0_factor:t.t0_factor ~rtt p

  let feedback_epoch t =
    match (Loss_history.loss_event_rate t.history, t.srtt) with
    | Some p, Some rtt when p > 0. && p < 1. ->
        t.rate <- Float.max t.min_rate (equation_rate t p rtt)
    | _, Some rtt ->
        (* No loss event yet: slow-start doubling, capped so one epoch's
           doubling cannot exceed an entire window per RTT forever --
           standard practice caps at twice the received rate; here we just
           double. *)
        ignore rtt;
        t.rate <- t.rate *. 2.
    | _, None -> ()

  let allowed_rate t = Float.max t.min_rate t.rate
  let loss_event_rate t = Loss_history.loss_event_rate t.history
  let smoothed_rtt t = t.srtt
end
