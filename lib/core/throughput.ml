let send_rate = Full_model.send_rate

(* Shared denominators with Full_model; only the numerator swaps E[Y] for
   E[Y'] = (1-p)/p + E[W]/2 and Q E[R] for Q * 1. *)
let throughput_unconstrained ?(q = Qhat.Closed) (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  let ew = Tdonly.e_w ~b:params.b p in
  let ex = Tdonly.e_x ~b:params.b p in
  let qhat = Qhat.eval q ~p (Float.max 1. ew) in
  let numer = ((1. -. p) /. p) +. (ew /. 2.) +. qhat in
  let denom =
    (params.rtt *. (ex +. 1.))
    +. (qhat *. Timeouts.f p *. params.t0 /. (1. -. p))
  in
  numer /. denom

let throughput_limited ?(q = Qhat.Closed) (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  let wm = float_of_int params.wm in
  let qhat = Qhat.eval q ~p (Float.max 1. wm) in
  let numer = ((1. -. p) /. p) +. (wm /. 2.) +. qhat in
  let denom =
    (params.rtt
    *. ((float_of_int params.b /. 8. *. wm) +. ((1. -. p) /. (p *. wm)) +. 2.))
    +. (qhat *. Timeouts.f p *. params.t0 /. (1. -. p))
  in
  numer /. denom

let throughput ?q (params : Params.t) p =
  Params.check_p p;
  if Full_model.window_limited params p then throughput_limited ?q params p
  else throughput_unconstrained ?q params p

let delivery_ratio ?q params p =
  Params.check_p p;
  throughput ?q params p /. send_rate ?q params p
