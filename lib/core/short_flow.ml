type phases = {
  handshake : float;
  slow_start : float;
  recovery : float;
  congestion_avoidance : float;
  delayed_ack : float;
  total : float;
}

let expected_slow_start_data ~p d =
  Params.check_p p;
  if d < 1 then invalid_arg "Short_flow: packets must be >= 1";
  let df = float_of_int d in
  (* P[first loss within the transfer] = 1 - (1-p)^d; conditioned on that,
     the data sent before it is geometric-ish; unconditionally Cardwell's
     E[d_ss] below.  Cap at d: we cannot slow-start more than the data. *)
  let e =
    ((1. -. ((1. -. p) ** df)) *. (1. -. p) /. p) +. 1.
  in
  Float.min df e

let gamma ~b = 1. +. (1. /. float_of_int b)

(* Slow start sends w1 * (gamma^k - 1) / (gamma - 1) packets in k rounds.
   Invert for the rounds and read the final window off the growth curve,
   switching to linear accumulation once the cap wm is reached. *)
let uncapped_rounds ~initial_window ~b data =
  let g = gamma ~b in
  Float.max 0.
    (log ((data *. (g -. 1.) /. initial_window) +. 1.) /. log g)

let slow_start_window ?(initial_window = 1.) ~b ~wm data =
  if not (initial_window >= 1.) then
    invalid_arg "Short_flow: initial_window must be >= 1";
  if wm < 1 then invalid_arg "Short_flow: wm must be >= 1";
  if not (data >= 0.) then invalid_arg "Short_flow: negative data";
  let g = gamma ~b in
  let k = uncapped_rounds ~initial_window ~b data in
  Float.min (float_of_int wm) (initial_window *. (g ** k))

let slow_start_rounds ?(initial_window = 1.) ~b ~wm data =
  if not (initial_window >= 1.) then
    invalid_arg "Short_flow: initial_window must be >= 1";
  if wm < 1 then invalid_arg "Short_flow: wm must be >= 1";
  if not (data >= 0.) then invalid_arg "Short_flow: negative data";
  let g = gamma ~b in
  let wmf = float_of_int wm in
  (* Data sent by the time the window first reaches wm. *)
  let rounds_to_cap = log (wmf /. initial_window) /. log g in
  let data_at_cap = initial_window *. ((g ** rounds_to_cap) -. 1.) /. (g -. 1.) in
  if data <= data_at_cap then uncapped_rounds ~initial_window ~b data
  else rounds_to_cap +. ((data -. data_at_cap) /. wmf)

let expected_latency ?(handshake = true) ?(delayed_ack_timeout = 0.1)
    ?(initial_window = 1.) (params : Params.t) ~p ~packets =
  Params.validate params;
  Params.check_p p;
  if packets < 1 then invalid_arg "Short_flow: packets must be >= 1";
  if delayed_ack_timeout < 0. then
    invalid_arg "Short_flow: negative delayed_ack_timeout";
  let d = float_of_int packets in
  let d_ss = expected_slow_start_data ~p packets in
  let t_ss =
    params.rtt
    *. slow_start_rounds ~initial_window ~b:params.b ~wm:params.wm d_ss
  in
  (* First-loss recovery, conditioned on a loss occurring at all. *)
  let loss_prob = 1. -. ((1. -. p) ** d) in
  let w_ss = slow_start_window ~initial_window ~b:params.b ~wm:params.wm d_ss in
  let q = Qhat.closed_form ~p (Float.max 1. w_ss) in
  let t_recovery =
    loss_prob *. ((q *. Timeouts.e_zto ~t0:params.t0 p) +. ((1. -. q) *. params.rtt))
  in
  (* Remaining data drains at the steady-state rate of eq. (32). *)
  let remaining = Float.max 0. (d -. d_ss) in
  let t_ca =
    if Float.equal remaining 0. then 0. else remaining /. Full_model.send_rate params p
  in
  let t_handshake = if handshake then params.rtt else 0. in
  let t_delack = delayed_ack_timeout in
  {
    handshake = t_handshake;
    slow_start = t_ss;
    recovery = t_recovery;
    congestion_avoidance = t_ca;
    delayed_ack = t_delack;
    total = t_handshake +. t_ss +. t_recovery +. t_ca +. t_delack;
  }

let mean_rate phases ~packets =
  if packets < 1 then invalid_arg "Short_flow.mean_rate: packets must be >= 1";
  float_of_int packets /. phases.total
