(** Section V: throughput — data {e received} per unit time — as opposed to
    send rate (data sent, including packets destined to be lost).

    Only the numerator of eq. (21) changes: a TDP delivers
    [E[Y'] = E[alpha] + E[W] - E[beta] - 1] packets (the last round's
    [beta] packets are lost along with the triggering packet), and a
    timeout sequence delivers exactly one packet (eq. 35).

    The paper's printed eq. (37)/(38) hardcodes the delayed-ACK case
    [b = 2]; this module keeps [b] symbolic, so [b = 2] reproduces the
    printed formulas exactly (tested). *)

val send_rate : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt/s"]
(** Alias for {!Full_model.send_rate}, for side-by-side comparison
    (Fig. 13). *)

val throughput : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt/s"]
(** Eq. (37): T(p), packets per second delivered to the receiver. *)

val throughput_unconstrained : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt/s"]
(** First branch of eq. (37) regardless of regime. *)

val throughput_limited : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt/s"]
(** Second branch of eq. (37) regardless of regime. *)

val delivery_ratio : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> 1"]
(** [throughput / send_rate]: fraction of sent packets that are delivered;
    in [\[0, 1\]] and decreasing in [p]. *)
