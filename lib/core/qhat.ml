(* Numerically stable powers of (1 - p): for small p, [1 - (1-p)^w] loses all
   precision if computed naively, so we go through log1p/expm1. *)
let pow_q p w = exp (w *. Float.log1p (-.p))
let one_minus_pow_q p w = -.Float.expm1 (w *. Float.log1p (-.p))

(* Validated-input variants ([0 < p < 1] and the integer ranges vouched
   by the caller): the guarded exports below delegate here, so both
   spellings share the exact same float operations — the flow analyzer
   (F3) holds the [_unchecked] entry points to a no-raise contract. *)
let a_prob_unchecked ~p ~w k =
  pow_q p (float_of_int k) *. p /. one_minus_pow_q p (float_of_int w)

let a_prob ~p ~w k =
  Params.check_p p;
  if w < 1 then invalid_arg "Qhat.a_prob: w must be >= 1";
  if k < 0 || k > w - 1 then invalid_arg "Qhat.a_prob: k outside [0, w-1]";
  a_prob_unchecked ~p ~w k

let c_prob_unchecked ~p ~n m =
  if Int.equal m n then pow_q p (float_of_int n) else pow_q p (float_of_int m) *. p

let c_prob ~p ~n m =
  Params.check_p p;
  if n < 0 then invalid_arg "Qhat.c_prob: n must be >= 0";
  if m < 0 || m > n then invalid_arg "Qhat.c_prob: m outside [0, n]";
  c_prob_unchecked ~p ~n m

let h_unchecked ~p k =
  let upper = Int.min 2 k in
  let acc = ref 0. in
  for m = 0 to upper do
    acc := !acc +. c_prob_unchecked ~p ~n:k m
  done;
  !acc

let h ~p k =
  Params.check_p p;
  h_unchecked ~p k

let exact_unchecked ~p w =
  if w <= 3 then 1.
  else begin
    (* k ranges over 0 .. w-1: the number of packets ACKed in the penultimate
       round given it contains a loss.  k < 3 forces a TO outright; otherwise
       the last round of k packets must yield fewer than 3 dup ACKs. *)
    let acc = ref 0. in
    for k = 0 to Int.min 2 (w - 1) do
      acc := !acc +. a_prob_unchecked ~p ~w k
    done;
    for k = 3 to w - 1 do
      acc := !acc +. (a_prob_unchecked ~p ~w k *. h_unchecked ~p k)
    done;
    Float.min 1. !acc
  end

let exact ~p w =
  Params.check_p p;
  if w < 1 then invalid_arg "Qhat.exact: w must be >= 1";
  exact_unchecked ~p w

(* Validated-input variants ([0 < p < 1], [w >= 1] vouched by the
   caller): same expressions as the guarded exports below. *)
let approx_unchecked w = Float.min 1. (3. /. w)

let approx w =
  if not (w >= 1.) then invalid_arg "Qhat.approx: w must be >= 1";
  approx_unchecked w

let closed_form_unchecked ~p w =
  let denom = one_minus_pow_q p w in
  if denom <= 0. then approx_unchecked w
  else begin
    let q3 = pow_q p 3. in
    let numer = (1. -. q3) *. (1. +. (q3 *. one_minus_pow_q p (w -. 3.))) in
    Float.min 1. (numer /. denom)
  end

let closed_form ~p w =
  Params.check_p p;
  if not (w >= 1.) then invalid_arg "Qhat.closed_form: w must be >= 1";
  closed_form_unchecked ~p w

type variant = Exact_sum | Closed | Approximate

let eval variant ~p w =
  Params.check_p p;
  match variant with
  | Exact_sum -> exact ~p (Int.max 1 (int_of_float (Float.round w)))
  | Closed -> closed_form ~p w
  | Approximate -> approx w

let eval_unchecked variant ~p w =
  match variant with
  | Exact_sum -> exact_unchecked ~p (Int.max 1 (int_of_float (Float.round w)))
  | Closed -> closed_form_unchecked ~p w
  | Approximate -> approx_unchecked w
