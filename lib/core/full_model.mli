(** The paper's primary contribution: the "full model" of eq. (32), giving
    steady-state TCP Reno send rate as a function of loss probability with
    triple-duplicate ACKs, timeouts with exponential backoff, and
    receiver-window limitation all accounted for.

    The model switches between two regimes (§II-C): when the unconstrained
    mean window [E[W_u]] of eq. (13) stays below the receiver limit [W_m]
    the send rate is eq. (28); otherwise the window saturates at [W_m] and
    the TDP geometry changes to the flat-topped sawtooth of Fig. 6. *)

val window_limited : Params.t -> float -> bool
[@@pftk.unit "_ -> prob -> _"]
(** [true] when [E[W_u] >= W_m], i.e. eq. (32) takes its second branch. *)

val send_rate : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt/s"]
(** Eq. (32), packets per second.  [q] selects how Q-hat is evaluated
    (default {!Qhat.Closed}, the paper's eq. 24); {!Qhat.Approximate} gives
    the [min(1, 3/w)] ablation. *)

val send_rate_unchecked : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt/s"]
(** {!send_rate} without the domain guards and without the duplicate
    [E[W_u]] evaluation (validated-input convention: the caller vouches
    that [params] passes {!Params.validate} and [0 < p < 1]).
    Bit-identical to {!send_rate} on the domain. *)

val send_rate_unconstrained : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt/s"]
(** Eq. (28): the no-window-limit branch, regardless of [W_m]. *)

val send_rate_limited : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt/s"]
(** The window-limited branch of eq. (32), regardless of [E[W_u]]. *)

val e_u : Params.t -> float
[@@pftk.unit "_ -> 1"]
(** §II-C: expected rounds of linear growth per TDP when limited,
    [E[U] = (b/2) W_m]. *)

val e_v : Params.t -> float -> float
[@@pftk.unit "_ -> prob -> 1"]
(** §II-C: expected rounds at the flat top,
    [E[V] = (1-p)/(p W_m) + 1 - (3b/8) W_m].  May be negative when the
    limited branch is evaluated outside its regime; callers guard with
    {!window_limited}. *)

val e_x_limited : Params.t -> float -> float
[@@pftk.unit "_ -> prob -> 1"]
(** §II-C: [E[X] = (b/8) W_m + (1-p)/(p W_m) + 1]. *)

val timeout_fraction : ?q:Qhat.variant -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> prob"]
(** The model's Q of eq. (26): probability that a loss indication is a
    timeout, evaluated at the regime's effective window
    ([E[W_u]] or [W_m]). *)
