(** Model inversion: given a target rate, find the loss probability that
    produces it, and the "TCP-friendly" applications built on top.

    The paper's stated motivation (§I) for a closed-form B(p) is defining a
    fair-share send rate for non-TCP flows.  A TFRC-style controller
    measures [p] and [RTT] and sets its rate to [B(p)]; conversely, an
    admission controller asks what loss budget sustains a desired rate.
    Every model in the suite is strictly decreasing in [p], so bisection on
    [log p] is exact and robust. *)

val loss_for_rate :
  ?lo:float ->
  ?hi:float ->
  ?tolerance:float ->
  (float -> float) ->
  float ->
  float option
[@@pftk.unit "prob -> prob -> 1 -> _ -> pkt/s -> prob"]
(** [loss_for_rate model target] finds [p] in [\[lo, hi\]] (defaults
    [1e-9, 0.999]) with [model p = target], assuming [model] is
    non-increasing in [p].  [None] when the target lies outside
    [model hi .. model lo].  [tolerance] is relative on [log p] (default
    1e-9).

    When several losses attain the target — every capped model plateaus at
    [Wm/RTT] below the window-limited knee — the result is the {e largest}
    such [p] (within tolerance): the returned value is a loss {e budget},
    the worst loss under which the rate is still met.  The returned [p]
    always satisfies [model p >= target]. *)

val tcp_friendly_rate : Params.t -> float -> float
[@@pftk.unit "_ -> prob -> pkt/s"]
(** The fair-share send rate a non-TCP flow should adopt under measured
    loss [p] and the path's parameters: {!Full_model.send_rate}. *)

val tcp_friendly_rate_simple : Params.t -> float -> float
[@@pftk.unit "_ -> prob -> pkt/s"]
(** Same using the approximate model (eq. 33), the form TFRC standardized. *)

val loss_budget : Params.t -> rate:float -> float option
[@@pftk.unit "_ -> pkt/s -> prob"]
(** Largest loss probability under which the full model still sustains
    [rate] (packets/s).  Eq. (32) is only piecewise monotone — the send
    rate jumps upward where [E[W_u]] crosses [W_m] — so this searches the
    unconstrained and window-limited segments separately rather than
    trusting a single bisection across the knee. *)

val rate_in_bytes : mss:int -> float -> float
[@@pftk.unit "_ -> pkt/s -> byte/s"]
(** Convert packets/s to bytes/s at a given maximum segment size. *)
