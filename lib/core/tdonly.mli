(** Section II-A: loss indications are exclusively triple-duplicate ACKs.

    These are the closed forms for the means of the triple-duplicate-period
    (TDP) quantities, culminating in the TD-only send rate of eq. (19) and
    its square-root asymptotic of eq. (20).  The same expressions are the
    "TD only" baseline the paper compares against (Mathis et al. [9] /
    Mahdavi-Floyd [8], with delayed ACKs).

    All [p] arguments must satisfy [0 < p < 1] (checked). *)

val e_w : b:int -> float -> float
[@@pftk.unit "_ -> prob -> pkt"]
(** Eq. (13): expected unconstrained window size at the end of a TDP,
    [E[W] = (2+b)/(3b) + sqrt(8(1-p)/(3bp) + ((2+b)/(3b))^2)]. *)

val e_w_unchecked : b:int -> float -> float
[@@pftk.unit "_ -> prob -> pkt"]
(** {!e_w} without the domain guards (validated-input convention: the
    caller vouches for [0 < p < 1] and [b >= 1]).  Bit-identical to
    {!e_w} on the domain. *)

val e_w_asymptotic : b:int -> float -> float
[@@pftk.unit "_ -> prob -> pkt"]
(** Eq. (14): [sqrt(8 / (3 b p))], the small-[p] leading term of {!e_w}. *)

val e_x : b:int -> float -> float
[@@pftk.unit "_ -> prob -> 1"]
(** Eq. (15): expected number of rounds in a TDP. *)

val e_x_unchecked : b:int -> float -> float
[@@pftk.unit "_ -> prob -> 1"]
(** {!e_x} without the domain guards; same contract as
    {!e_w_unchecked}. *)

val e_a : rtt:float -> b:int -> float -> float
[@@pftk.unit "s -> _ -> prob -> s"]
(** Eq. (16): expected TDP duration, [RTT * (E[X] + 1)]. *)

val e_y : b:int -> float -> float
[@@pftk.unit "_ -> prob -> pkt"]
(** Eq. (5): expected packets per TDP, [(1-p)/p + E[W]]. *)

val e_alpha : float -> float
[@@pftk.unit "prob -> pkt"]
(** Eq. (4): expected packets up to and including the first loss, [1/p]. *)

val send_rate : rtt:float -> b:int -> float -> float
[@@pftk.unit "s -> _ -> prob -> pkt/s"]
(** Eq. (19): the exact TD-only send rate [E[Y] / E[A]], packets/second. *)

val send_rate_unchecked : rtt:float -> b:int -> float -> float
[@@pftk.unit "s -> _ -> prob -> pkt/s"]
(** {!send_rate} without the domain guards (caller additionally vouches
    for [rtt > 0]).  Bit-identical to {!send_rate} on the domain. *)

val send_rate_sqrt : rtt:float -> b:int -> float -> float
[@@pftk.unit "s -> _ -> prob -> pkt/s"]
(** Eq. (20): the square-root approximation [(1/RTT) sqrt(3 / (2bp))]. *)

val send_rate_capped : Params.t -> float -> float
[@@pftk.unit "_ -> prob -> pkt/s"]
(** {!send_rate} additionally clamped at [wm / rtt]; the best case the
    TD-only family can claim once the receiver window binds. *)

val mathis : rtt:float -> b:int -> float -> float
[@@pftk.unit "s -> _ -> prob -> pkt/s"]
(** The baseline of [8]/[9] exactly as the paper plots it ("TD only"):
    identical to {!send_rate}. Provided under its conventional name. *)
