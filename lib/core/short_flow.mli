(** Transfer latency of {e short} flows: the Cardwell extension the paper
    cites as [2] ("Modeling the performance of short TCP connections") and
    lists as future work.

    The steady-state rate B(p) of eq. (32) only describes bulk transfers;
    a short flow (a 1998 web page!) spends most of its life in the initial
    slow start.  This model composes four phases for a transfer of [d]
    packets:

    + {b slow start}: the window grows by a factor [gamma = 1 + 1/b] per
      round from [initial_window] until the first loss or until the data
      (or [W_m]) runs out;
    + {b first-loss recovery}: with probability [1 - (1-p)^d] the transfer
      hits a loss, costing either a timeout sequence (probability
      [Q-hat(w_ss)]) or a fast-retransmit RTT;
    + {b congestion avoidance}: whatever data remains drains at the
      steady-state rate B(p);
    + optionally the {b initial handshake} (one RTT) and the first
      segment's {b delayed-ACK} penalty.

    For [d -> infinity] the per-packet latency tends to [1 / B(p)]
    (property-tested), so the short-flow model is a strict refinement of
    the paper's bulk model. *)

type phases = {
  handshake : float; [@pftk.unit "s"]  (** Connection establishment, seconds. *)
  slow_start : float; [@pftk.unit "s"]
  (** Expected slow-start duration, seconds. *)
  recovery : float; [@pftk.unit "s"]
  (** Expected first-loss recovery cost, seconds. *)
  congestion_avoidance : float; [@pftk.unit "s"]
  (** Remaining-data drain time, seconds. *)
  delayed_ack : float; [@pftk.unit "s"]
  (** First-segment delayed-ACK penalty, seconds. *)
  total : float; [@pftk.unit "s"]
}

val expected_slow_start_data : p:float -> int -> float
[@@pftk.unit "prob -> _ -> pkt"]
(** [expected_slow_start_data ~p d]: expected number of the [d] packets
    sent in the initial slow-start phase,
    [(1 - (1-p)^d)(1-p)/p + 1] capped at [d] (Cardwell eq. for E[d_ss]). *)

val slow_start_window : ?initial_window:float -> b:int -> wm:int -> float -> float
[@@pftk.unit "pkt -> _ -> _ -> pkt -> pkt"]
(** Window reached after sending a given amount of data in slow start,
    capped at [wm]. *)

val slow_start_rounds : ?initial_window:float -> b:int -> wm:int -> float -> float
[@@pftk.unit "pkt -> _ -> _ -> pkt -> 1"]
(** Rounds needed to send that data growing geometrically by
    [gamma = 1 + 1/b] per round (with the cap, growth continues linearly
    at [wm] per round). *)

val expected_latency :
  ?handshake:bool ->
  ?delayed_ack_timeout:float ->
  ?initial_window:float ->
  Params.t ->
  p:float ->
  packets:int ->
  phases
[@@pftk.unit "_ -> s -> pkt -> _ -> prob -> _ -> _"]
(** [expected_latency params ~p ~packets] is the expected completion time
    of a [packets]-long transfer.  [handshake] (default true) charges one
    RTT for connection setup; [delayed_ack_timeout] (default 0.1 s, the
    conventional E[delay] = half the 200 ms timer) is the expected wait
    for the lone first-segment ACK; [initial_window] defaults to 1.
    Raises [Invalid_argument] when [packets < 1] or [p] is out of
    range. *)

val mean_rate : phases -> packets:int -> float
[@@pftk.unit "_ -> _ -> pkt/s"]
(** Effective packets/second of the whole transfer. *)
