type transition = { next : int; prob : float }

type t = {
  pi : float array;
  packets : float array;  (* expected packets sent per step, by state *)
  durations : float array;  (* expected step duration (s), by state *)
  w_max : int;
  b : int;
  iterations : int;
}

let state_index ~b w c = ((w - 1) * b) + c

(* Expected packets ACKed ahead of the loss in a lossy round of w packets:
   sum_k k A(w, k).  These are exactly the packets sent in the TDP's final
   round, so they are the loss-step reward beyond the round itself. *)
let expected_last_round ~p w =
  let acc = ref 0. in
  for k = 1 to w - 1 do
    acc := !acc +. (float_of_int k *. Qhat.a_prob ~p ~w k)
  done;
  !acc

let build ?(q = Qhat.Closed) ~w_max (params : Params.t) p =
  let b = params.b in
  let n = w_max * b in
  let transitions = Array.make n [] in
  let packets = Array.make n 0. in
  let durations = Array.make n 0. in
  let e_r = Timeouts.e_r p in
  let e_zto = Timeouts.e_zto ~t0:params.t0 p in
  for w = 1 to w_max do
    let p_ok = exp (float_of_int w *. Float.log1p (-.p)) in
    let p_loss = 1. -. p_ok in
    let qhat = Qhat.eval q ~p (float_of_int w) in
    let last_round = expected_last_round ~p w in
    let halved = Int.max 1 (w / 2) in
    for c = 0 to b - 1 do
      let s = state_index ~b w c in
      let grown =
        if c + 1 >= b then state_index ~b (Int.min (w + 1) w_max) 0
        else state_index ~b w (c + 1)
      in
      let td_next = state_index ~b halved 0 in
      let to_next = state_index ~b 1 0 in
      transitions.(s) <-
        [
          { next = grown; prob = p_ok };
          { next = td_next; prob = p_loss *. (1. -. qhat) };
          { next = to_next; prob = p_loss *. qhat };
        ];
      (* Per-step expected rewards: the round always sends w packets in one
         RTT; a loss adds the final round, and a timeout additionally the
         backoff sequence. *)
      packets.(s) <-
        (float_of_int w +. (p_loss *. (last_round +. (qhat *. e_r))));
      durations.(s) <-
        (params.rtt *. (1. +. p_loss)) +. (p_loss *. qhat *. e_zto)
    done
  done;
  (transitions, packets, durations)

let power_iteration transitions ~tolerance ~max_iterations =
  let n = Array.length transitions in
  let pi = Array.make n (1. /. float_of_int n) in
  let next = Array.make n 0. in
  let rec loop iter =
    Array.fill next 0 n 0.;
    for s = 0 to n - 1 do
      let mass = pi.(s) in
      if mass > 0. then
        List.iter
          (fun { next = s'; prob } -> next.(s') <- next.(s') +. (mass *. prob))
          transitions.(s)
    done;
    let delta = ref 0. in
    for s = 0 to n - 1 do
      delta := !delta +. Float.abs (next.(s) -. pi.(s));
      pi.(s) <- next.(s)
    done;
    if !delta < tolerance || iter >= max_iterations then iter else loop (iter + 1)
  in
  let iterations = loop 1 in
  (pi, iterations)

let solve ?(q = Qhat.Closed) ?(max_window = 256) ?(tolerance = 1e-12)
    ?(max_iterations = 200_000) (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  if max_window < 1 then invalid_arg "Markov.solve: max_window must be >= 1";
  let w_max = Int.min params.wm max_window in
  let transitions, packets, durations = build ~q ~w_max params p in
  let pi, iterations = power_iteration transitions ~tolerance ~max_iterations in
  { pi; packets; durations; w_max; b = params.b; iterations }

let send_rate t =
  let num = ref 0. and den = ref 0. in
  Array.iteri
    (fun s mass ->
      num := !num +. (mass *. t.packets.(s));
      den := !den +. (mass *. t.durations.(s)))
    t.pi;
  !num /. !den

let window_distribution t =
  let dist = Array.make t.w_max 0. in
  Array.iteri
    (fun s mass ->
      let w = (s / t.b) + 1 in
      dist.(w - 1) <- dist.(w - 1) +. mass)
    t.pi;
  dist

let mean_window t =
  let dist = window_distribution t in
  let acc = ref 0. in
  Array.iteri (fun i mass -> acc := !acc +. (float_of_int (i + 1) *. mass)) dist;
  !acc

let iterations t = t.iterations
let states t = Array.length t.pi
