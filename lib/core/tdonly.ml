let check ~b p =
  Params.check_p p;
  if b < 1 then invalid_arg "Tdonly: b must be >= 1"

let e_alpha p =
  Params.check_p p;
  1. /. p

(* Eq. (13).  The constant (2+b)/(3b) appears twice; name it.
   The [_unchecked] variants carry the arithmetic; the checked exports
   guard and delegate, so both spell the identical float expression. *)
let e_w_unchecked ~b p =
  let c = float_of_int (2 + b) /. (3. *. float_of_int b) in
  c +. sqrt ((8. *. (1. -. p) /. (3. *. float_of_int b *. p)) +. (c *. c))

let e_w ~b p =
  check ~b p;
  e_w_unchecked ~b p

let e_w_asymptotic ~b p =
  check ~b p;
  sqrt (8. /. (3. *. float_of_int b *. p))

(* Eq. (15). *)
let e_x_unchecked ~b p =
  let c = float_of_int (2 + b) /. 6. in
  c +. sqrt ((2. *. float_of_int b *. (1. -. p) /. (3. *. p)) +. (c *. c))

let e_x ~b p =
  check ~b p;
  e_x_unchecked ~b p

let e_a ~rtt ~b p =
  check ~b p;
  if not (rtt > 0.) then invalid_arg "Tdonly.e_a: rtt must be positive";
  rtt *. (e_x ~b p +. 1.)

let e_y ~b p =
  check ~b p;
  ((1. -. p) /. p) +. e_w ~b p

(* Eq. (19): B = E[Y] / E[A]. *)
let send_rate_unchecked ~rtt ~b p =
  (((1. -. p) /. p) +. e_w_unchecked ~b p)
  /. (rtt *. (e_x_unchecked ~b p +. 1.))

let send_rate ~rtt ~b p =
  check ~b p;
  if not (rtt > 0.) then invalid_arg "Tdonly.send_rate: rtt must be positive";
  send_rate_unchecked ~rtt ~b p

let send_rate_sqrt ~rtt ~b p =
  check ~b p;
  if not (rtt > 0.) then invalid_arg "Tdonly.send_rate_sqrt: rtt must be positive";
  sqrt (3. /. (2. *. float_of_int b *. p)) /. rtt

let send_rate_capped (params : Params.t) p =
  Params.validate params;
  check ~b:params.b p;
  Float.min
    (float_of_int params.wm /. params.rtt)
    (send_rate ~rtt:params.rtt ~b:params.b p)

let mathis = send_rate
