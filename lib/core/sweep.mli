(** Parameter sweeps: the raw series behind every model curve in the
    paper's figures. *)

val logspace : lo:float -> hi:float -> n:int -> float array
[@@pftk.unit "_ -> _ -> _ -> _"]
(** [n] points geometrically spaced from [lo] to [hi] inclusive.
    Requires [0 < lo <= hi] and [n >= 2] (or [n = 1] when [lo = hi]). *)

val linspace : lo:float -> hi:float -> n:int -> float array
[@@pftk.unit "_ -> _ -> _ -> _"]

type point = { p : float; [@pftk.unit "prob"] rate : float [@pftk.unit "pkt/s"] }

val series : (float -> float) -> float array -> point list
[@@pftk.unit "_ -> prob -> _"]
(** Evaluate a model over the given loss probabilities; points where the
    model raises or returns a non-finite value are dropped. *)

val paper_loss_grid : unit -> float array
[@@pftk.unit "_ -> prob"]
(** The grid used by the figure drivers: 60 log-spaced points covering
    [p] from [1e-4] to [0.8], the x-range of Figs. 7 and 12. *)

val pp_series : Format.formatter -> point list -> unit
(** Two-column [p rate] listing, one point per line. *)
