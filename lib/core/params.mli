(** Connection parameters shared by every model in the suite.

    These are the observable inputs of the PFTK equation: the loss
    probability [p] is kept separate because every model is evaluated as a
    function [p -> rate] at fixed path parameters. *)

type t = {
  rtt : float; [@pftk.unit "s"]
  (** Average round-trip time, seconds (paper: RTT = E[r]). *)
  t0 : float; [@pftk.unit "s"]
  (** Average duration of a single timeout, seconds (T_0). *)
  b : int;  (** Packets acknowledged per ACK; 2 with delayed ACKs (§II). *)
  wm : int;  (** Receiver-advertised maximum window, packets (W_m). *)
}

val make : ?b:int -> ?wm:int -> rtt:float -> t0:float -> unit -> t
[@@pftk.unit "_ -> _ -> s -> s -> _ -> _"]
(** [make ~rtt ~t0 ()] with [b] defaulting to 2 (delayed ACKs) and [wm] to
    [max_int/2] (effectively unlimited).  Raises [Invalid_argument] when
    [rtt <= 0.], [t0 <= 0.], [b < 1] or [wm < 1]. *)

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-domain fields. *)

val unlimited_window : int
(** The sentinel used by {!make} for "no receiver limit". *)

val check_p : float -> unit
[@@pftk.unit "prob -> _"]
(** Loss probabilities must satisfy [0. < p && p < 1.]; raises
    [Invalid_argument] otherwise.  [p = 0] would make every model's
    [1/p] terms diverge and [p = 1] starves the timeout series. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
