(** Unified dispatch over every send-rate model in the suite, so the
    experiment drivers, CLI and benches can treat them uniformly. *)

type kind =
  | Td_only  (** Eq. (19): Mathis-style baseline, no timeouts, no W_m. *)
  | Td_only_sqrt  (** Eq. (20): pure square-root law. *)
  | Full  (** Eq. (32), Q-hat by the closed form (24). *)
  | Full_approx_q  (** Eq. (32), Q-hat = min(1, 3/w) (25). *)
  | Approximate  (** Eq. (33). *)
  | Throughput_model  (** Eq. (37): receiver-side throughput. *)
  | Markov  (** Numerically solved Markov chain. *)

val all : kind list
val name : kind -> string
val of_name : string -> kind option
(** Inverse of {!name}; also accepts common aliases ("pftk", "mathis"). *)

val send_rate : kind -> Params.t -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt/s"]
(** Evaluate the chosen model; packets per second. *)

val series : kind -> Params.t -> float array -> Sweep.point list
[@@pftk.unit "_ -> _ -> prob -> _"]
