type equilibrium = {
  p : float;
  per_flow_rate : float;
  rtt : float;
  utilization : float;
  window_limited : bool;
}

let solve ?(b = 2) ?(wm = Params.unlimited_window) ?(t0_factor = 4.)
    ?(queue_fill = 0.5) ~flows ~capacity ~buffer ~base_rtt () =
  if flows < 1 then invalid_arg "Fixed_point.solve: flows must be >= 1";
  if not (capacity > 0.) then invalid_arg "Fixed_point.solve: capacity must be positive";
  if buffer < 0 then invalid_arg "Fixed_point.solve: negative buffer";
  if not (base_rtt > 0.) then invalid_arg "Fixed_point.solve: base_rtt must be positive";
  if not (0. <= queue_fill && queue_fill <= 1.) then
    invalid_arg "Fixed_point.solve: queue_fill outside [0, 1]";
  let fair_share = capacity /. float_of_int flows in
  let p_min = 1e-7 and p_max = 0.95 in
  let params_at rtt =
    Params.make ~b ~wm ~rtt ~t0:(Float.max 1e-3 (t0_factor *. rtt)) ()
  in
  (* If the flows cannot fill the link even with an empty queue and
     negligible loss, the queue stays empty: equilibrium is loss-free at
     the base RTT. *)
  let empty_queue = params_at base_rtt in
  if Full_model.send_rate empty_queue p_min <= fair_share then begin
    let r = Full_model.send_rate empty_queue p_min in
    {
      p = 0.;
      per_flow_rate = r;
      rtt = base_rtt;
      utilization = float_of_int flows *. r /. capacity;
      window_limited = Full_model.window_limited empty_queue p_min;
    }
  end
  else begin
    (* Saturated: the queue hovers around [queue_fill] of the buffer. *)
    let rtt = base_rtt +. (queue_fill *. float_of_int buffer /. capacity) in
    let params = params_at rtt in
    let rate p = Full_model.send_rate params p in
    if rate p_min <= fair_share then begin
      (* Saturated-queue RTT alone slows the flows to (or below) the fair
         share: equilibrium sits at negligible loss. *)
      let r = Float.min fair_share (rate p_min) in
      {
        p = 0.;
        per_flow_rate = r;
        rtt;
        utilization = float_of_int flows *. r /. capacity;
        window_limited = Full_model.window_limited params p_min;
      }
    end
    else begin
      let rec bisect lo hi n =
        if Int.equal n 0 then (lo +. hi) /. 2.
        else
          let mid = sqrt (lo *. hi) in
          if rate mid > fair_share then bisect mid hi (n - 1)
          else bisect lo mid (n - 1)
      in
      let p = bisect p_min p_max 80 in
      {
        p;
        per_flow_rate = rate p;
        rtt;
        utilization = float_of_int flows *. rate p /. capacity;
        window_limited = Full_model.window_limited params p;
      }
    end
  end

let buffer_cap = 100_000

let required_buffer ?(b = 2) ?(target_p = 0.01) ~flows ~capacity ~base_rtt () =
  if not (target_p > 0. && target_p < 1.) then
    invalid_arg "Fixed_point.required_buffer: target_p outside (0, 1)";
  (* Larger buffers inflate RTT, which slows the flows and lowers
     equilibrium loss, so loss is monotone non-increasing in the buffer
     size.  Bisect on whole packets: buffers are integers, and the loss is
     a step function of the integer buffer — a continuous bisection can
     converge inside a step and truncate to a buffer one packet short of
     the target. *)
  let loss_at buffer = (solve ~b ~flows ~capacity ~buffer ~base_rtt ()).p in
  if loss_at 0 <= target_p then 0
  else if loss_at buffer_cap > target_p then buffer_cap
  else begin
    (* Invariant: [loss_at lo > target_p >= loss_at hi]. *)
    let rec bisect lo hi =
      if hi - lo <= 1 then hi
      else begin
        let mid = lo + ((hi - lo) / 2) in
        if loss_at mid > target_p then bisect mid hi else bisect lo mid
      end
    in
    bisect 0 buffer_cap
  end
