(** Generalized AIMD: the paper's derivation with the additive-increase and
    multiplicative-decrease constants left symbolic.

    TCP is AIMD(1, 1/2): add one packet per round, halve on a TD loss.  The
    same §II-A argument for any increase [alpha] (packets per round) and
    decrease factor [beta] (window multiplied by [1 - beta] on loss) gives

    {v
    E[W] = sqrt( alpha (2 - beta) (1-p) * 2 / (2 b beta p) ) + O(1)
    B    ~ (1/RTT) sqrt( alpha (2 - beta) / (2 b beta p) )
    v}

    which reduces to eq. (20) at [alpha = 1, beta = 1/2].  This is the
    algebra behind "TCP-friendly AIMD" parameter choices: any pair with
    [alpha = 3 beta / (2 - beta)] gets the same bandwidth share as TCP.
    The derivation mirrors Section II-A exactly: sawtooth between
    [(1-beta) W] and [W], duration [b W beta / alpha] rounds, area
    [1/p] packets per loss. *)

type t = {
  alpha : float; [@pftk.unit "1"]
  (** Additive increase, packets per loss-free round (dimensionless in
      the algebra: windows stay the [pkt] carrier). *)
  beta : float; [@pftk.unit "1"]
  (** Multiplicative decrease: window scales by [1 - beta]. *)
}

val tcp : t
(** AIMD(1, 1/2). *)

val make : alpha:float -> beta:float -> t
[@@pftk.unit "1 -> 1 -> _"]
(** Requires [alpha > 0] and [0 < beta < 1]. *)

val e_w : t -> b:int -> float -> float
[@@pftk.unit "_ -> _ -> prob -> pkt"]
(** Mean window at the end of a TD period (the eq. (13) analog, leading
    term).  Reduces to [Tdonly.e_w]'s asymptotic at {!tcp}. *)

val send_rate : t -> rtt:float -> b:int -> float -> float
[@@pftk.unit "_ -> s -> _ -> prob -> pkt/s"]
(** TD-only send rate (the eq. (20) analog), packets/second. *)

val tcp_friendly_alpha : beta:float -> float
[@@pftk.unit "1 -> 1"]
(** The additive increase that makes AIMD(alpha, beta) consume the same
    bandwidth as TCP under equal (p, RTT): [alpha = 3 beta / (2 - beta)].
    E.g. [beta = 1/8] (a "smooth" flow) pairs with [alpha = 0.2]. *)

val is_tcp_friendly : ?tolerance:float -> t -> bool
[@@pftk.unit "1 -> _ -> _"]
(** Whether the pair's send rate matches TCP's within [tolerance]
    (relative, default 1e-6) at any (p, RTT) — checked algebraically. *)
