type kind =
  | Td_only
  | Td_only_sqrt
  | Full
  | Full_approx_q
  | Approximate
  | Throughput_model
  | Markov

let all =
  [ Td_only; Td_only_sqrt; Full; Full_approx_q; Approximate; Throughput_model; Markov ]

let name = function
  | Td_only -> "td-only"
  | Td_only_sqrt -> "td-only-sqrt"
  | Full -> "full"
  | Full_approx_q -> "full-approx-q"
  | Approximate -> "approximate"
  | Throughput_model -> "throughput"
  | Markov -> "markov"

let of_name s =
  match String.lowercase_ascii s with
  | "td-only" | "tdonly" | "mathis" -> Some Td_only
  | "td-only-sqrt" | "sqrt" -> Some Td_only_sqrt
  | "full" | "pftk" | "proposed" -> Some Full
  | "full-approx-q" -> Some Full_approx_q
  | "approximate" | "approx" -> Some Approximate
  | "throughput" -> Some Throughput_model
  | "markov" -> Some Markov
  | _ -> None

let send_rate kind (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  match kind with
  | Td_only -> Tdonly.send_rate ~rtt:params.rtt ~b:params.b p
  | Td_only_sqrt -> Tdonly.send_rate_sqrt ~rtt:params.rtt ~b:params.b p
  | Full -> Full_model.send_rate params p
  | Full_approx_q -> Full_model.send_rate ~q:Qhat.Approximate params p
  | Approximate -> Approx_model.send_rate params p
  | Throughput_model -> Throughput.throughput params p
  | Markov -> Markov.send_rate (Markov.solve params p)

let series kind params ps = Sweep.series (send_rate kind params) ps
