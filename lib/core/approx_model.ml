(* Validated-input variants carry the arithmetic; the guarded exports
   below delegate, so both spell the identical float expressions. *)
let send_rate_uncapped_unchecked ~rtt ~t0 ~b p =
  let bf = float_of_int b in
  let td_term = rtt *. sqrt (2. *. bf *. p /. 3.) in
  let to_term =
    t0
    *. Float.min 1. (3. *. sqrt (3. *. bf *. p /. 8.))
    *. p
    *. (1. +. (32. *. p *. p))
  in
  1. /. (td_term +. to_term)

let send_rate_uncapped ~rtt ~t0 ~b p =
  Params.check_p p;
  if not (rtt > 0. && t0 > 0.) then
    invalid_arg "Approx_model: rtt and t0 must be positive";
  if b < 1 then invalid_arg "Approx_model: b must be >= 1";
  send_rate_uncapped_unchecked ~rtt ~t0 ~b p

let send_rate_unchecked (params : Params.t) p =
  Float.min
    (float_of_int params.wm /. params.rtt)
    (send_rate_uncapped_unchecked ~rtt:params.rtt ~t0:params.t0 ~b:params.b p)

let send_rate (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  send_rate_unchecked params p
