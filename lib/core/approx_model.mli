(** The "approximate model" of eqs. (30) and (33): the widely cited one-line
    PFTK formula,

    {v
    B(p) = min( Wm/RTT,
                1 / ( RTT sqrt(2bp/3)
                      + T0 min(1, 3 sqrt(3bp/8)) p (1 + 32 p^2) ) )
    v}

    This is the form adopted by TFRC and countless rate controllers; the
    paper verifies in §III that it tracks the full model closely. *)

val send_rate : Params.t -> float -> float
[@@pftk.unit "_ -> prob -> pkt/s"]
(** Eq. (33), packets per second. *)

val send_rate_uncapped : rtt:float -> t0:float -> b:int -> float -> float
[@@pftk.unit "s -> s -> _ -> prob -> pkt/s"]
(** Eq. (30): without the [Wm/RTT] clamp. *)

val send_rate_unchecked : Params.t -> float -> float
[@@pftk.unit "_ -> prob -> pkt/s"]
(** {!send_rate} without the domain guards (validated-input convention:
    the caller vouches that [params] passes {!Params.validate} and
    [0 < p < 1]).  Bit-identical to {!send_rate} on the domain. *)

val send_rate_uncapped_unchecked :
  rtt:float -> t0:float -> b:int -> float -> float
[@@pftk.unit "s -> s -> _ -> prob -> pkt/s"]
(** {!send_rate_uncapped} without the domain guards; same contract as
    {!send_rate_unchecked}. *)
