(** The probability Q-hat(w) that a loss indication arriving at window size
    [w] is a timeout rather than a triple-duplicate ACK (§II-B).

    Three interchangeable evaluations are provided:
    - {!exact}: the defining double sum of eqs. (22)-(23) over the
      penultimate-round/last-round decomposition (integer [w] only);
    - {!closed_form}: the algebraic reduction of eq. (24), valid for real
      [w] (needed because the model plugs in the non-integer [E[W]]);
    - {!approx}: the [min(1, 3/w)] approximation of eq. (25).

    For integer [w >= 1] the first two agree to floating-point accuracy
    (property-tested), and all three tend to [3/w] as [p -> 0]. *)

val a_prob : p:float -> w:int -> int -> float
[@@pftk.unit "prob -> _ -> _ -> prob"]
(** [a_prob ~p ~w k] is A(w, k): probability that exactly the first [k] of
    [w] packets in the penultimate round are ACKed, given the round suffers
    at least one loss.  Defined for [0 <= k <= w - 1]; the [w] values sum
    to 1. *)

val c_prob : p:float -> n:int -> int -> float
[@@pftk.unit "prob -> _ -> _ -> prob"]
(** [c_prob ~p ~n m] is C(n, m): probability that [m] packets are ACKed in
    sequence in the last round of [n] packets and the rest (if any) lost.
    Defined for [0 <= m <= n]. *)

val h : p:float -> int -> float
[@@pftk.unit "prob -> _ -> prob"]
(** Eq. (23): [h k = sum_{m=0}^{2} C(k, m)], the probability the last round
    yields fewer than three duplicate ACKs. *)

val exact : p:float -> int -> float
[@@pftk.unit "prob -> _ -> prob"]
(** Eq. (22): 1 for [w <= 3], else
    [sum_{k=0}^{2} A(w,k) + sum_{k=3}^{w-1} A(w,k) h(k)]. *)

val closed_form : p:float -> float -> float
[@@pftk.unit "prob -> _ -> prob"]
(** Eq. (24); accepts real [w >= 1].  Returns the [p -> 0] limit
    [min(1, 3/w)] when [p] underflows the formula's precision. *)

val approx : float -> float
[@@pftk.unit "_ -> prob"]
(** Eq. (25): [min(1, 3/w)]. *)

val closed_form_unchecked : p:float -> float -> float
[@@pftk.unit "prob -> _ -> prob"]
(** {!closed_form} without the domain guards (validated-input
    convention: the caller vouches for [0 < p < 1] and [w >= 1]).
    Bit-identical to {!closed_form} on the domain. *)

val approx_unchecked : float -> float
[@@pftk.unit "_ -> prob"]
(** {!approx} without the [w >= 1] guard; same contract as
    {!closed_form_unchecked}. *)

type variant = Exact_sum | Closed | Approximate

val eval : variant -> p:float -> float -> float
[@@pftk.unit "_ -> prob -> _ -> prob"]
(** Dispatch on the chosen evaluation; [Exact_sum] rounds [w] to the nearest
    integer [>= 1]. *)

val eval_unchecked : variant -> p:float -> float -> float
[@@pftk.unit "_ -> prob -> _ -> prob"]
(** {!eval} without the domain guards ([Exact_sum] still validates
    internally: the rounded integer path is not on the batch fast
    path).  Bit-identical to {!eval} on the domain. *)
