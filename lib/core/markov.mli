(** A numerical Markov-reward model of TCP Reno congestion avoidance, in the
    spirit of the companion report the paper cites as [13] and compares
    against in Fig. 12.

    The chain's states are pairs [(w, c)]: the congestion window [w] in
    packets and the delayed-ACK credit [c] (the window grows by one packet
    every [b] loss-free rounds).  Each step is one round:

    - with probability [(1-p)^w] the round is loss-free (reward [w] packets,
      [RTT] seconds) and the credit/window advance;
    - otherwise a loss indication ends the TDP after one further round that
      carries the expected number of packets ACKed ahead of the loss; the
      indication is a timeout with probability [Q-hat(w)] (window resets to
      1 and the step is charged the expected timeout-sequence duration and
      retransmissions) and a triple-duplicate ACK otherwise (window halves).

    The stationary distribution of the embedded chain is obtained by power
    iteration, and the send rate is the ratio of expected reward to expected
    duration per step — no closed-form shortcuts, making this an independent
    numerical check of eq. (32). *)

type t

val solve :
  ?q:Qhat.variant ->
  ?max_window:int ->
  ?tolerance:float ->
  ?max_iterations:int ->
  Params.t ->
  float ->
  t
[@@pftk.unit "_ -> _ -> 1 -> _ -> _ -> prob -> _"]
(** [solve params p] builds and solves the chain.  [max_window] truncates
    the state space when [params.wm] is unlimited (default 256);
    [tolerance] is the L1 convergence threshold of the power iteration
    (default 1e-12). *)

val send_rate : t -> float
[@@pftk.unit "_ -> pkt/s"]
(** Packets per second under the stationary distribution. *)

val mean_window : t -> float
[@@pftk.unit "_ -> pkt"]
(** Stationary mean of [w]. *)

val window_distribution : t -> float array
[@@pftk.unit "_ -> prob"]
(** [dist.(w - 1)] is the stationary probability of window size [w]
    (marginalized over ACK credit). *)

val iterations : t -> int
(** Power-iteration steps used. *)

val states : t -> int
(** Number of chain states. *)
