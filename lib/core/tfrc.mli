(** TFRC-style equation-based rate control: the "TCP-friendly" application
    the paper's introduction motivates (and which later standardized the
    approximate model of eq. (33) as its throughput equation).

    Two pieces:

    - {!Loss_history} implements the loss {e event} rate estimator: loss
      events (not individual packets) separated into intervals, with the
      average interval computed over the last eight intervals using the
      standard decaying weights [1, 1, 1, 1, 0.8, 0.6, 0.4, 0.2] and the
      history-discounting rule that lets a long current interval raise the
      estimate immediately.  [p = 1 / average interval].
    - {!Controller} combines the estimator with a smoothed RTT and the
      PFTK equation: before the first loss event it doubles its rate each
      feedback epoch (slow start); afterwards it paces at eq. (33)
      evaluated at the measured loss event rate.

    {2 Units}

    Every rate in this module is {e packet-normalized}: RFC 5348 states
    the throughput equation in bytes/second with an explicit segment
    size [s] in the numerator,
    [X_Bps = s / (R sqrt(2bp/3) + t_RTO (3 sqrt(3bp/8)) p (1 + 32 p^2))],
    while this module (like the rest of the suite) fixes [s = 1 MSS]
    and reports packets/second.  The two conventions differ by exactly
    the segment size: multiplying any rate here by the MSS in bytes
    ({!Inverse.rate_in_bytes}) recovers the RFC's [X_Bps] — the
    conversion is pinned against an RFC worked value in
    [test/test_core.ml] ("tfrc-oracle" suite). *)

val fair_rate : ?t0_factor:float -> rtt:float -> float -> float
[@@pftk.unit "1 -> s -> prob -> pkt/s"]
(** [fair_rate ~rtt p] is the raw TFRC throughput equation — eq. (33)
    with [T0 = max 1e-3 (t0_factor * rtt)], [b = 2] and no receiver
    window — as a standalone function ([t0_factor] defaults to 4, the
    RFC rule).  Identical to {!Controller.equation_rate} on a controller
    with the same [t0_factor].  Packet-normalized ([s = 1 MSS]):
    multiply by the MSS in bytes for RFC 5348's [X_Bps].  Raises
    [Invalid_argument] unless [0 < p < 1], [rtt > 0] and
    [t0_factor > 0]. *)

val fair_rate_unchecked : t0_factor:float -> rtt:float -> float -> float
[@@pftk.unit "1 -> s -> prob -> pkt/s"]
(** {!fair_rate} without the domain guards (validated-input convention:
    the caller vouches for the domain).  Bit-identical to {!fair_rate}
    on the domain. *)

module Loss_history : sig
  type t

  val create : ?intervals:int -> unit -> t
  (** [intervals] is the history depth (default 8, the RFC value;
      must be >= 2). *)

  val on_packet : t -> lost:bool -> unit
  (** Feed each packet in sequence.  A lost packet begins a new loss event
      unless the current event is still "open" (within {!set_event_span}
      packets of the event start, modeling the one-RTT grouping rule). *)

  val set_event_span : t -> int -> unit
  (** Packets after an event's first loss that still belong to the same
      event (callers set this to the current window; default 1 = every
      loss is its own event). *)

  val loss_events : t -> int
  val packets_seen : t -> int

  val average_interval : t -> float option
  [@@pftk.unit "_ -> 1"]
  (** Weighted average loss interval, [None] before the first event. *)

  val loss_event_rate : t -> float option
  [@@pftk.unit "_ -> prob"]
  (** [1 / average_interval]. *)
end

module Controller : sig
  type t

  val create :
    ?initial_rate:float ->
    ?min_rate:float ->
    ?rtt_gain:float ->
    ?t0_factor:float ->
    unit ->
    t
  [@@pftk.unit "pkt/s -> pkt/s -> 1 -> 1 -> _ -> _"]
  (** [initial_rate] (default 1 packet/s), [min_rate] floor (default one
      packet per 64 s, the protocol's trickle rate), [rtt_gain] the EWMA
      gain for RTT smoothing (default 0.1), [t0_factor] the RTO stand-in
      [T0 = t0_factor * RTT] (default 4, the RFC rule). *)

  val on_rtt_sample : t -> float -> unit [@@pftk.unit "_ -> s -> _"]
  val on_packet : t -> lost:bool -> unit

  val equation_rate : t -> float -> float -> float
  [@@pftk.unit "_ -> prob -> s -> pkt/s"]
  (** [equation_rate t p rtt] is the raw throughput equation (eq. (33))
      at loss-event rate [p] and round-trip time [rtt], with
      [T0 = t0_factor * rtt]; packets/second, packet-normalized
      ([s = 1 MSS]) — multiply by the MSS in bytes for RFC 5348's
      [X_Bps].  Raises [Invalid_argument]
      unless [0 < p < 1] and [rtt > 0]. *)

  val feedback_epoch : t -> unit
  (** Mark the end of a feedback interval (once per RTT): updates the
      allowed rate — doubling while no loss event has ever been seen,
      eq. (33) afterwards. *)

  val allowed_rate : t -> float
  [@@pftk.unit "_ -> pkt/s"]
  (** Current allowed send rate, packets/second. *)

  val loss_event_rate : t -> float option [@@pftk.unit "_ -> prob"]
  val smoothed_rtt : t -> float option [@@pftk.unit "_ -> s"]
end
