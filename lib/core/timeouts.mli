(** The timeout-sequence machinery of §II-B.

    After a timeout the sender retries with exponentially backed-off timers
    [T0, 2 T0, 4 T0, ..., 64 T0] (cap after the 6th), one retransmission per
    timer.  The number of timeouts in a sequence is geometric because the
    sequence extends while retransmissions keep getting lost. *)

val f : float -> float
[@@pftk.unit "prob -> 1"]
(** Eq. (29): [f(p) = 1 + p + 2p^2 + 4p^3 + 8p^4 + 16p^5 + 32p^6]. *)

val f_unchecked : float -> float
[@@pftk.unit "prob -> 1"]
(** {!f} without the domain guard: the caller vouches for [0 < p < 1]
    (validated-input convention — see DESIGN "Batch evaluation").
    Bit-identical to {!f} on its domain. *)

val e_r : float -> float
[@@pftk.unit "prob -> pkt"]
(** Eq. (27): expected packet transmissions in a timeout sequence,
    [1 / (1-p)]. *)

val sequence_duration : ?backoff_cap:int -> t0:float -> int -> float
[@@pftk.unit "_ -> s -> _ -> s"]
(** [sequence_duration ~t0 k] is L_k, the duration of a sequence of [k]
    timeouts: [(2^k - 1) T0] for [k <= cap + 1] and
    [((2^(cap+1) - 1) + 2^cap * (k - cap - 1)) T0] beyond.  The paper's cap
    is 6 (timer frozen at [64 T0 = 2^cap T0]); Irix-style stacks use 5. *)

val p_sequence_length : float -> int -> float
[@@pftk.unit "prob -> _ -> prob"]
(** [P[R = k] = p^(k-1) (1-p)], the geometric law of the sequence length. *)

val e_zto : t0:float -> float -> float
[@@pftk.unit "s -> prob -> s"]
(** Expected duration of a timeout sequence, [T0 * f(p) / (1-p)]. *)

val e_zto_series : ?backoff_cap:int -> ?terms:int -> t0:float -> float -> float
[@@pftk.unit "_ -> _ -> s -> prob -> s"]
(** [E[Z^TO]] evaluated directly as [sum_k L_k P[R=k]]; converges to
    {!e_zto} for cap 6 (property-tested) and provides the ablation for other
    backoff caps. *)
