type t = { rtt : float; t0 : float; b : int; wm : int }

let unlimited_window = max_int / 2

let validate t =
  if not (t.rtt > 0.) then invalid_arg "Params: rtt must be positive";
  if not (t.t0 > 0.) then invalid_arg "Params: t0 must be positive";
  if t.b < 1 then invalid_arg "Params: b must be >= 1";
  if t.wm < 1 then invalid_arg "Params: wm must be >= 1"

let make ?(b = 2) ?(wm = unlimited_window) ~rtt ~t0 () =
  let t = { rtt; t0; b; wm } in
  validate t;
  t

let check_p p =
  if not (p > 0. && p < 1.) then
    invalid_arg (Printf.sprintf "loss probability p=%g outside (0, 1)" p)

let pp ppf t =
  if t.wm >= unlimited_window then
    Format.fprintf ppf "RTT=%.3fs T0=%.3fs b=%d Wm=unlimited" t.rtt t.t0 t.b
  else Format.fprintf ppf "RTT=%.3fs T0=%.3fs b=%d Wm=%d" t.rtt t.t0 t.b t.wm

let equal a b =
  Float.equal a.rtt b.rtt && Float.equal a.t0 b.t0 && Int.equal a.b b.b
  && Int.equal a.wm b.wm
