let logspace ~lo ~hi ~n =
  if not (0. < lo && lo <= hi) then invalid_arg "Sweep.logspace: need 0 < lo <= hi";
  if n < 1 then invalid_arg "Sweep.logspace: n must be >= 1";
  if Int.equal n 1 then begin
    if not (Float.equal lo hi) then invalid_arg "Sweep.logspace: n = 1 requires lo = hi";
    [| lo |]
  end
  else
    let ratio = log (hi /. lo) /. float_of_int (n - 1) in
    Array.init n (fun i -> lo *. exp (ratio *. float_of_int i))

let linspace ~lo ~hi ~n =
  if n < 1 then invalid_arg "Sweep.linspace: n must be >= 1";
  if Int.equal n 1 then [| lo |]
  else
    let step = (hi -. lo) /. float_of_int (n - 1) in
    Array.init n (fun i -> lo +. (step *. float_of_int i))

type point = { p : float; rate : float }

let series model ps =
  Array.to_list ps
  |> List.filter_map (fun p ->
         match model p with
         | rate when Float.is_finite rate -> Some { p; rate }
         | _ -> None
         | exception Invalid_argument _ -> None)

let paper_loss_grid () = logspace ~lo:1e-4 ~hi:0.8 ~n:60

let pp_series ppf points =
  Format.fprintf ppf "@[<v>";
  List.iter (fun { p; rate } -> Format.fprintf ppf "%.6g %.6g@ " p rate) points;
  Format.fprintf ppf "@]"
