let loss_for_rate ?(lo = 1e-9) ?(hi = 0.999) ?(tolerance = 1e-9) model target =
  if not (0. < lo && lo < hi && hi < 1.) then
    invalid_arg "Inverse.loss_for_rate: need 0 < lo < hi < 1";
  let rate_lo = model lo and rate_hi = model hi in
  (* model is decreasing: rate_lo is the highest achievable rate. *)
  if target > rate_lo || target < rate_hi then None
  else begin
    (* Bisection on log p: rates span orders of magnitude over (0, 1).
       Invariant: [model (exp log_lo) >= target > model (exp log_hi)], so
       moving right on equality converges to the *largest* p attaining the
       target.  Capped models plateau at [Wm/RTT] for every small p; the
       left edge of the bracket would be a uselessly tiny loss budget. *)
    let rec bisect log_lo log_hi iter =
      if Int.equal iter 0 || (log_hi -. log_lo) < tolerance then exp log_lo
      else begin
        let log_mid = (log_lo +. log_hi) /. 2. in
        if model (exp log_mid) >= target then bisect log_mid log_hi (iter - 1)
        else bisect log_lo log_mid (iter - 1)
      end
    in
    if target <= rate_hi then Some hi else Some (bisect (log lo) (log hi) 200)
  end

let tcp_friendly_rate params p =
  Params.check_p p;
  Full_model.send_rate params p

let tcp_friendly_rate_simple params p =
  Params.check_p p;
  Approx_model.send_rate params p

let loss_budget params ~rate =
  let model p = Full_model.send_rate params p in
  let lo = 1e-9 and hi = 0.999 in
  let limited p = Full_model.window_limited params p in
  if not (limited lo) || limited hi then loss_for_rate ~lo ~hi model rate
  else begin
    (* Eq. (32) switches branches where E[W_u] falls to W_m, and the rate
       jumps upward there, so the set of losses attaining a rate inside
       the jump band is disconnected.  Each branch is monotone on its own
       segment: search the unconstrained (larger-loss) segment first and
       fall back to the window-limited one, keeping the result the
       largest attaining loss overall. *)
    let rec knee log_lo log_hi n =
      (* limited (exp log_lo) && not (limited (exp log_hi)) *)
      if Int.equal n 0 then (exp log_lo, exp log_hi)
      else begin
        let log_mid = (log_lo +. log_hi) /. 2. in
        if limited (exp log_mid) then knee log_mid log_hi (n - 1)
        else knee log_lo log_mid (n - 1)
      end
    in
    let knee_left, knee_right = knee (log lo) (log hi) 40 in
    match loss_for_rate ~lo:knee_right ~hi model rate with
    | Some _ as found -> found
    | None -> loss_for_rate ~lo ~hi:knee_left model rate
  end

let rate_in_bytes ~mss rate =
  if mss <= 0 then invalid_arg "Inverse.rate_in_bytes: mss must be positive";
  float_of_int mss *. rate
