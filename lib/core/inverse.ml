let loss_for_rate ?(lo = 1e-9) ?(hi = 0.999) ?(tolerance = 1e-9) model target =
  if not (0. < lo && lo < hi && hi < 1.) then
    invalid_arg "Inverse.loss_for_rate: need 0 < lo < hi < 1";
  let rate_lo = model lo and rate_hi = model hi in
  (* model is decreasing: rate_lo is the highest achievable rate. *)
  if target > rate_lo || target < rate_hi then None
  else begin
    (* Bisection on log p: rates span orders of magnitude over (0, 1). *)
    let rec bisect log_lo log_hi iter =
      let log_mid = (log_lo +. log_hi) /. 2. in
      let mid = exp log_mid in
      if Int.equal iter 0 || (log_hi -. log_lo) < tolerance then mid
      else if model mid > target then bisect log_mid log_hi (iter - 1)
      else bisect log_lo log_mid (iter - 1)
    in
    Some (bisect (log lo) (log hi) 200)
  end

let tcp_friendly_rate params p =
  Params.check_p p;
  Full_model.send_rate params p

let tcp_friendly_rate_simple params p =
  Params.check_p p;
  Approx_model.send_rate params p

let loss_budget params ~rate =
  loss_for_rate (fun p -> Full_model.send_rate params p) rate

let rate_in_bytes ~mss rate =
  if mss <= 0 then invalid_arg "Inverse.rate_in_bytes: mss must be positive";
  float_of_int mss *. rate
