(* Validated-input variant: callers (the batch engine's hoisted column
   scan, the fused eq. (32) kernel) vouch for [0 < p < 1]. *)
let f_unchecked p =
  1. +. (p *. (1. +. (p *. (2. +. (p *. (4. +. (p *. (8. +. (p *. (16. +. (p *. 32.)))))))))))

let f p =
  Params.check_p p;
  f_unchecked p

let e_r p =
  Params.check_p p;
  1. /. (1. -. p)

let sequence_duration ?(backoff_cap = 6) ~t0 k =
  if k < 1 then invalid_arg "Timeouts.sequence_duration: k must be >= 1";
  if backoff_cap < 1 then invalid_arg "Timeouts.sequence_duration: cap must be >= 1";
  if not (t0 > 0.) then invalid_arg "Timeouts.sequence_duration: t0 must be positive";
  (* The i-th timeout in a sequence lasts 2^min(i-1, cap) * T0, so the
     doubling law L_k = (2^k - 1) T0 extends through k = cap + 1 and grows
     linearly (slope 2^cap * T0) beyond. *)
  if k <= backoff_cap + 1 then t0 *. float_of_int ((1 lsl k) - 1)
  else
    let doubling_sum = float_of_int ((1 lsl (backoff_cap + 1)) - 1) in
    let frozen = float_of_int (1 lsl backoff_cap) in
    t0 *. (doubling_sum +. (frozen *. float_of_int (k - backoff_cap - 1)))

let p_sequence_length p k =
  Params.check_p p;
  if k < 1 then invalid_arg "Timeouts.p_sequence_length: k must be >= 1";
  (p ** float_of_int (k - 1)) *. (1. -. p)

let e_zto ~t0 p =
  Params.check_p p;
  if not (t0 > 0.) then invalid_arg "Timeouts.e_zto: t0 must be positive";
  t0 *. f p /. (1. -. p)

let e_zto_series ?(backoff_cap = 6) ?(terms = 400) ~t0 p =
  Params.check_p p;
  if not (t0 > 0.) then
    invalid_arg "Timeouts.e_zto_series: t0 must be positive";
  let acc = ref 0. in
  for k = 1 to terms do
    acc := !acc +. (sequence_duration ~backoff_cap ~t0 k *. p_sequence_length p k)
  done;
  !acc
