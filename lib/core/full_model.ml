let effective_window (params : Params.t) p =
  Float.min (Tdonly.e_w ~b:params.b p) (float_of_int params.wm)

let window_limited (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  Tdonly.e_w ~b:params.b p >= float_of_int params.wm

let timeout_fraction ?(q = Qhat.Closed) (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  Qhat.eval q ~p (Float.max 1. (effective_window params p))

(* Eq. (28): numerator is packets per S_i cycle (E[Y] + Q E[R]), denominator
   its duration (E[A] + Q E[Z^TO]). *)
let send_rate_unconstrained ?(q = Qhat.Closed) (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  let ew = Tdonly.e_w ~b:params.b p in
  let ex = Tdonly.e_x ~b:params.b p in
  let qhat = Qhat.eval q ~p (Float.max 1. ew) in
  let numer = ((1. -. p) /. p) +. ew +. (qhat /. (1. -. p)) in
  let denom =
    (params.rtt *. (ex +. 1.))
    +. (qhat *. params.t0 *. Timeouts.f p /. (1. -. p))
  in
  numer /. denom

let e_u (params : Params.t) =
  Params.validate params;
  float_of_int params.b /. 2. *. float_of_int params.wm

let e_v (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  let wm = float_of_int params.wm in
  ((1. -. p) /. (p *. wm)) +. 1. -. (3. *. float_of_int params.b /. 8. *. wm)

let e_x_limited (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  let wm = float_of_int params.wm in
  (float_of_int params.b /. 8. *. wm) +. ((1. -. p) /. (p *. wm)) +. 1.

let send_rate_limited ?(q = Qhat.Closed) (params : Params.t) p =
  Params.validate params;
  Params.check_p p;
  let wm = float_of_int params.wm in
  let qhat = Qhat.eval q ~p (Float.max 1. wm) in
  let numer = ((1. -. p) /. p) +. wm +. (qhat /. (1. -. p)) in
  let denom =
    (params.rtt
    *. ((float_of_int params.b /. 8. *. wm) +. ((1. -. p) /. (p *. wm)) +. 2.))
    +. (qhat *. params.t0 *. Timeouts.f p /. (1. -. p))
  in
  numer /. denom

let send_rate ?q params p =
  Params.check_p p;
  if window_limited params p then send_rate_limited ?q params p
  else send_rate_unconstrained ?q params p

(* Eq. (32) in one pass over already-validated inputs: [E[W_u]] is
   computed once and reused for both the regime test and the
   unconstrained branch, and every subterm spells the same float
   expression as the guarded path above, so the result is bit-identical
   to [send_rate] (held to it by selfcheck invariant C11). *)
let send_rate_unchecked ?(q = Qhat.Closed) (params : Params.t) p =
  let ew = Tdonly.e_w_unchecked ~b:params.b p in
  let wm = float_of_int params.wm in
  if ew >= wm then begin
    let qhat = Qhat.eval_unchecked q ~p (Float.max 1. wm) in
    let numer = ((1. -. p) /. p) +. wm +. (qhat /. (1. -. p)) in
    let denom =
      (params.rtt
      *. ((float_of_int params.b /. 8. *. wm) +. ((1. -. p) /. (p *. wm)) +. 2.))
      +. (qhat *. params.t0 *. Timeouts.f_unchecked p /. (1. -. p))
    in
    numer /. denom
  end
  else begin
    let ex = Tdonly.e_x_unchecked ~b:params.b p in
    let qhat = Qhat.eval_unchecked q ~p (Float.max 1. ew) in
    let numer = ((1. -. p) /. p) +. ew +. (qhat /. (1. -. p)) in
    let denom =
      (params.rtt *. (ex +. 1.))
      +. (qhat *. params.t0 *. Timeouts.f_unchecked p /. (1. -. p))
    in
    numer /. denom
  end
