(** Network equilibrium via the model: the provisioning use of the PFTK
    equation (the line of work the second author took it into — predicting
    steady-state loss and delay of a congested link from its configuration).

    [N] identical saturated TCP flows share a bottleneck of capacity [C]
    packets/s with a drop-tail buffer of [B] packets and two-way
    propagation delay [rtt0].  In equilibrium the flows fill the link, so
    the per-flow rate, the loss probability and the queueing delay satisfy
    a fixed point:

    - queue ~ full when the link saturates: [RTT = rtt0 + B/C] (drop-tail);
    - each flow obeys the model: [rate = B(p, RTT, T0)];
    - rates fill capacity: [N * rate = C] — losses supply exactly the [p]
      that makes this hold.

    The solver finds [p] by bisection (the model is monotone in [p]).  If
    even [p -> 0] cannot fill the link (window-limited flows), the link is
    underutilized and equilibrium loss is ~0. *)

type equilibrium = {
  p : float; [@pftk.unit "prob"]
  (** Equilibrium loss-indication probability (0 if underutilized). *)
  per_flow_rate : float; [@pftk.unit "pkt/s"]  (** packets/s. *)
  rtt : float; [@pftk.unit "s"]
  (** Equilibrium RTT including queueing, seconds. *)
  utilization : float; [@pftk.unit "1"]  (** [N * rate / C], at most ~1. *)
  window_limited : bool;  (** Whether flows are pinned by W_m instead of loss. *)
}

val solve :
  ?b:int ->
  ?wm:int ->
  ?t0_factor:float ->
  ?queue_fill:float ->
  flows:int ->
  capacity:float ->
  buffer:int ->
  base_rtt:float ->
  unit ->
  equilibrium
[@@pftk.unit "_ -> _ -> 1 -> 1 -> _ -> pkt/s -> _ -> s -> _ -> _"]
(** [solve ~flows ~capacity ~buffer ~base_rtt ()].  [t0_factor] maps RTT to
    the timeout duration ([T0 = t0_factor * RTT], default 4); [queue_fill]
    is the assumed mean occupancy of the buffer as a fraction (default
    0.5 — drop-tail queues oscillate between ~0 and full under sawtooth
    flows).  Raises [Invalid_argument] on nonpositive inputs. *)

val required_buffer :
  ?b:int -> ?target_p:float -> flows:int -> capacity:float -> base_rtt:float ->
  unit -> int
[@@pftk.unit "_ -> prob -> _ -> pkt/s -> s -> _ -> _"]
(** Smallest drop-tail buffer (whole packets) whose equilibrium loss under
    {!solve} (with its defaults) is at most [target_p] (default 0.01): a
    provisioning helper that inverts the bandwidth-delay relation at the
    model's operating point.

    Round-trip guarantee:
    [(solve ~buffer:(required_buffer ~target_p ...) ...).p <= target_p]
    whenever any buffer up to 100_000 packets meets the target.  Returns
    [0] when even an empty buffer does, and caps at 100_000 when none does
    (check the returned equilibrium before trusting the cap). *)
