(** Domain-parallel fan-out for independent simulation jobs.

    Every expensive fan-out in this repository — per-path hour traces,
    100-s connection batches, Monte-Carlo sweeps — is embarrassingly
    parallel: each item derives its own RNG stream from its index, so
    items never share mutable state.  This module runs such fan-outs on a
    fixed-size pool of OCaml 5 domains ([Domain] + [Mutex] + [Condition],
    no external dependencies) while keeping results in input order.

    Determinism contract: callers must make each item's work a pure
    function of the item itself (per-index seeds, no shared RNG).  Under
    that discipline the results are identical for every [jobs] value, and
    [jobs:1] short-circuits to the plain sequential [List.map] /
    [Array.init] path without spawning any domain.

    Nesting: calls compose (an inner [map] inside a worker just spawns its
    own pool), but the domain counts multiply — keep inner fan-outs at
    [jobs:1] when the outer level already saturates the machine. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size command-line
    front ends should default their [--jobs] flag to. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs], computed by up to [jobs] worker
    domains.  Results are returned in input order.  If any application of
    [f] raises, remaining unstarted jobs are abandoned and the first
    observed exception is re-raised in the caller (with its backtrace)
    after all workers have stopped.  [jobs:1] is exactly [List.map].
    Requires [jobs >= 1]. *)

val mapi : jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
(** Like {!map} with the item's index, mirroring [List.mapi] — the shape
    of every per-path experiment loop (the index feeds the seed). *)

val init : jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] computed in parallel; same
    ordering and exception contract as {!map}.  Requires [n >= 0]. *)

(** The underlying fixed-size worker pool, exposed for workloads that
    want to submit heterogeneous tasks themselves.  Tasks must not raise
    (wrap them); {!map}/{!init} handle that for the common case. *)
module Pool : sig
  type t

  val create : size:int -> t
  (** Spawn [size] worker domains.  Requires [size >= 1]. *)

  val submit : t -> (unit -> unit) -> unit
  (** Queue a task.  Raises [Invalid_argument] after {!shutdown}. *)

  val wait : t -> unit
  (** Block until every submitted task has finished. *)

  val shutdown : t -> unit
  (** Drain remaining tasks, then join all worker domains.  The pool
      cannot be reused afterwards. *)
end
