let default_jobs () = Domain.recommended_domain_count ()

module Pool = struct
  type t = {
    mutex : Mutex.t;
    work_ready : Condition.t;
    work_done : Condition.t;
    mutable queue : (unit -> unit) list;
    mutable pending : int;  (** Tasks queued or currently running. *)
    mutable stopping : bool;
    mutable workers : unit Domain.t list;
  }

  (* Workers pull tasks until the queue is empty AND the pool is stopping;
     a stopping pool still drains whatever was submitted before shutdown. *)
  let rec worker_loop pool =
    Mutex.lock pool.mutex;
    let rec take () =
      match pool.queue with
      | task :: rest ->
          pool.queue <- rest;
          Some task
      | [] ->
          if pool.stopping then None
          else begin
            Condition.wait pool.work_ready pool.mutex;
            take ()
          end
    in
    let task = take () in
    Mutex.unlock pool.mutex;
    match task with
    | None -> ()
    | Some task ->
        task ();
        Mutex.lock pool.mutex;
        pool.pending <- pool.pending - 1;
        if pool.pending = 0 then Condition.broadcast pool.work_done;
        Mutex.unlock pool.mutex;
        worker_loop pool

  let create ~size =
    if size < 1 then invalid_arg "Pftk_parallel.Pool.create: size must be >= 1";
    let pool =
      {
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        queue = [];
        pending = 0;
        stopping = false;
        workers = [];
      }
    in
    pool.workers <-
      List.init size (fun _ -> Domain.spawn (fun () -> worker_loop pool));
    pool

  let submit pool task =
    Mutex.lock pool.mutex;
    if pool.stopping then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Pftk_parallel.Pool.submit: pool is shut down"
    end;
    pool.queue <- pool.queue @ [ task ];
    pool.pending <- pool.pending + 1;
    Condition.signal pool.work_ready;
    Mutex.unlock pool.mutex

  let wait pool =
    Mutex.lock pool.mutex;
    while pool.pending > 0 do
      Condition.wait pool.work_done pool.mutex
    done;
    Mutex.unlock pool.mutex

  let shutdown pool =
    Mutex.lock pool.mutex;
    pool.stopping <- true;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.mutex;
    List.iter Domain.join pool.workers;
    pool.workers <- []
end

(* Run [body 0 .. body (n-1)] on a pool of [jobs] domains.  On failure the
   first observed exception is kept, unstarted jobs become no-ops, and the
   exception is re-raised here once every worker has finished. *)
let run ~jobs n body =
  if n > 0 then begin
    let failure = Atomic.make None in
    let pool = Pool.create ~size:(min jobs n) in
    (* The worker closure shares [failure] across domains by design:
       it is the pool's own first-error slot, written only through a
       compare-and-set and read back only after [Pool.wait].  This is
       the synchronization R1 exists to police, not a leak past it. *)
    for i = 0 to n - 1 do
      Pool.submit pool
        ((fun () ->
           if Atomic.get failure = None then
             try body i
             with exn ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (exn, bt))))
        [@lint.allow "R1"])
    done;
    Pool.wait pool;
    Pool.shutdown pool;
    match Atomic.get failure with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

let check_jobs name jobs =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pftk_parallel.%s: jobs must be >= 1" name)

let mapi ~jobs f xs =
  check_jobs "mapi" jobs;
  if jobs = 1 then List.mapi f xs
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    run ~jobs n (fun i -> results.(i) <- Some (f i items.(i)));
    List.init n (fun i ->
        match results.(i) with Some v -> v | None -> assert false)
  end

let map ~jobs f xs =
  check_jobs "map" jobs;
  if jobs = 1 then List.map f xs else mapi ~jobs (fun _ x -> f x) xs

let init ~jobs n f =
  check_jobs "init" jobs;
  if n < 0 then invalid_arg "Pftk_parallel.init: n must be >= 0";
  if jobs = 1 then Array.init n f
  else begin
    let results = Array.make n None in
    run ~jobs n (fun i -> results.(i) <- Some (f i));
    Array.map (function Some v -> v | None -> assert false) results
  end
