type red = {
  red_capacity : int;
  min_threshold : float;
  max_threshold : float;
  max_probability : float;
  weight : float;
}

type t = Drop_tail of int | Red of red | Constant of float

let drop_tail ~capacity =
  if capacity < 1 then invalid_arg "Queue_law.drop_tail: capacity < 1";
  Drop_tail capacity

let red ?(weight = 0.002) ?(max_probability = 0.1) ~capacity ~min_threshold
    ~max_threshold () =
  if capacity < 1 then invalid_arg "Queue_law.red: capacity < 1";
  if not (0. <= min_threshold && min_threshold <= max_threshold) then
    invalid_arg "Queue_law.red: need 0 <= min_threshold <= max_threshold";
  if not (max_threshold <= float_of_int capacity) then
    invalid_arg "Queue_law.red: max_threshold above capacity";
  if not (0. < max_probability && max_probability <= 1.) then
    invalid_arg "Queue_law.red: max_probability outside (0, 1]";
  if not (0. < weight && weight <= 1.) then
    invalid_arg "Queue_law.red: weight outside (0, 1]";
  Red { red_capacity = capacity; min_threshold; max_threshold; max_probability; weight }

let constant ~p =
  if not (0. <= p && p < 1.) then
    invalid_arg "Queue_law.constant: p outside [0, 1)";
  Constant p

let validate = function
  | Drop_tail capacity -> ignore (drop_tail ~capacity)
  | Red r ->
      ignore
        (red ~weight:r.weight ~max_probability:r.max_probability
           ~capacity:r.red_capacity ~min_threshold:r.min_threshold
           ~max_threshold:r.max_threshold ())
  | Constant p -> ignore (constant ~p)

let capacity = function
  | Drop_tail c -> c
  | Red r -> r.red_capacity
  | Constant _ -> 0

let drop_prob t ~avg_queue =
  match t with
  | Constant p -> p
  | Drop_tail c -> if avg_queue >= float_of_int c then 1. else 0.
  | Red r ->
      if avg_queue < r.min_threshold then 0.
      else if avg_queue >= r.max_threshold then 1.
      else
        r.max_probability
        *. ((avg_queue -. r.min_threshold)
           /. (r.max_threshold -. r.min_threshold))

let queue_for_drop t ~p =
  match t with
  | Constant _ -> 0.
  | Drop_tail c -> if p <= 0. then 0. else 0.5 *. float_of_int c
  | Red r ->
      if p <= 0. then r.min_threshold
      else if p >= r.max_probability then r.max_threshold
      else
        r.min_threshold
        +. (p /. r.max_probability)
           *. (r.max_threshold -. r.min_threshold)
