(** Time-domain mean-field dynamics: the stable/oscillating verdict.

    The equilibrium of {!Solver} says where the system balances; whether
    the population actually settles there is Reynier's RED stability
    question, and it depends on what the fixed point cannot see — the
    EWMA averaging lag ({!Queue_law.red} [weight]) and the one-RTT delay
    before senders react to a drop.  This module integrates the full
    coupled system forward in time:

    - the window distribution ({!Window_hist}) driven by the drop
      probability the senders {e saw one base-RTT ago};
    - the instantaneous queue, [dq/dt = λ·(1-p) - capacity] clamped to
      [0, buffer], with the arrival rate [λ = N·E[W]/RTT];
    - the RED average queue, relaxing toward [q] at the per-packet EWMA
      rate [weight·λ] (drop-tail and constant laws have no averager).

    Integration starts {e at} the solver's equilibrium, population spread
    around the equilibrium window: a stable law shows only discretization
    ripple, an unstable one grows its limit cycle from there.  The verdict
    reads the trailing half of the horizon — amplitude above the threshold
    means {!Oscillating}, with the cycle period estimated from mean
    crossings.  Cost per step is O(bins), independent of [flows]. *)

type osc = {
  amplitude : float; [@pftk.unit "pkt"]
      (** Half the trailing peak-to-peak queue swing. *)
  period : float; [@pftk.unit "s"]
      (** Estimated limit-cycle period (0 when too few crossings). *)
}

type verdict = Stable | Oscillating of osc

type config = {
  solver : Solver.config;
  bins : int;  (** Histogram resolution (default 256). *)
  horizon : float; [@pftk.unit "s"]
      (** Total simulated time; the verdict reads the trailing half. *)
  dt : float; [@pftk.unit "s"]  (** Step size; [<= 0] picks one. *)
  osc_threshold : float; [@pftk.unit "pkt"]
      (** Minimum absolute amplitude counted as oscillation. *)
}

val default : Solver.config -> config
[@@pftk.unit "_ -> _"]
(** 256 bins, a horizon of 400 base RTTs (at least 2 s), automatic [dt],
    and a 1-packet oscillation threshold. *)

type result = {
  verdict : verdict;
  equilibrium : Solver.equilibrium;
      (** The fixed point the run was seeded from. *)
  mean_queue : float; [@pftk.unit "pkt"]
  queue_min : float; [@pftk.unit "pkt"]
  queue_max : float; [@pftk.unit "pkt"]
      (** Trailing-half statistics of the instantaneous queue. *)
  mean_window : float; [@pftk.unit "pkt"]
  mean_goodput : float; [@pftk.unit "pkt/s"]
      (** Trailing-half per-flow delivered rate [E[W]/RTT·(1-p)]. *)
  steps : int;
}

val run : config -> result
[@@pftk.unit "_ -> _"]
(** Raises [Invalid_argument] on a non-positive horizon or negative
    threshold, and propagates {!Solver.solve}'s validation.  For a
    [Constant] law there is no queue; the verdict then reads the mean
    window instead (a drifting population would be a discretization bug,
    so it pins the C12 degenerate limit as [Stable]). *)
