(** Window-distribution state of a homogeneous flow population.

    The mean-field limit of N AIMD flows (McDonald–Reynier) tracks the
    {e distribution} of congestion windows, not the flows: one probability
    mass per window bin, the same object for N = 2 or N = 10⁶.  This module
    is that state — a fixed-width histogram over [0, wmax] advanced by the
    two mean-field transport terms:

    - {b additive increase}: mass drifts right at [1/(b·RTT)] packets per
      second (one window per [b] rounds), upwind-discretized;
    - {b multiplicative decrease}: mass in a bin at window [w] suffers loss
      indications at rate [p·w/RTT] (each of the [w/RTT] packets per second
      is marked with probability [p]) and jumps to [w/2], deposited across
      the two bracketing bins so both mass and mean are conserved.

    The top bin is absorbing under drift — mass that reaches [wmax] stays
    there until a loss halves it — which is exactly the receiver-window
    clamp [W_m] when [wmax] is set to the advertised window.  Timeouts are
    not modeled: this is the pure AIMD population process of the mean-field
    papers, and the divergence from eq. (32) at timeout-dominated loss
    rates is measured (and bounded) by selfcheck invariant C12.

    One step costs O(bins), independent of the population size. *)

type t

val create : ?bins:int -> wmax:float -> unit -> t
[@@pftk.unit "_ -> pkt -> _ -> _"]
(** A histogram of [bins] cells (default 256) spanning windows
    [0 .. wmax].  All mass starts at zero; call {!reset}.  Raises
    [Invalid_argument] when [bins < 2] or [wmax <= 0]. *)

val reset : t -> mean:float -> spread:float -> unit
[@@pftk.unit "_ -> pkt -> pkt -> _"]
(** Re-initialize to unit mass spread uniformly over
    [[mean - spread, mean + spread]] clipped to [0, wmax] (a point mass in
    the bin containing [mean] when the interval collapses).  Starting the
    population spread out rather than synchronized lets a stable law mix
    toward its stationary profile instead of locking into an artificial
    global sawtooth. *)

val bins : t -> int

val wmax : t -> float
[@@pftk.unit "_ -> pkt"]

val width : t -> float
[@@pftk.unit "_ -> pkt"]
(** Bin width, [wmax / bins]. *)

val total : t -> float
[@@pftk.unit "_ -> 1"]
(** Total mass; 1 after {!reset} and conserved by {!step} (up to float
    rounding — the transport terms only move mass between bins). *)

val mean : t -> float
[@@pftk.unit "_ -> pkt"]
(** Mean window E[W] over bin centers. *)

val second_moment : t -> float
[@@pftk.unit "_ -> pkt^2"]
(** E[W²], the moment the AIMD drift balance pins: a stationary
    distribution satisfies [E[W²] = 2/(b·p)]. *)

val step : t -> dt:float -> drift:float -> p:float -> rtt:float -> unit
[@@pftk.unit "_ -> s -> pkt/s -> prob -> s -> _"]
(** Advance the distribution by [dt]: halving flux at loss probability [p]
    and round-trip time [rtt], then upwind drift at [drift] packets per
    second.  Outflow fractions are clamped to the available mass, so any
    [dt] is mass-conserving and non-negative; steps beyond {!max_dt} only
    lose accuracy, never stability. *)

val max_dt : t -> drift:float -> p:float -> rtt:float -> float
[@@pftk.unit "_ -> pkt/s -> prob -> s -> s"]
(** The largest step for which neither transport term wants to move more
    than 90% of a bin's mass: the CFL bound [0.9·width/drift] against the
    drift, and [0.9·rtt/(p·wmax)] against the fastest halving rate. *)
