type osc = { amplitude : float; period : float }
type verdict = Stable | Oscillating of osc

type config = {
  solver : Solver.config;
  bins : int;
  horizon : float;
  dt : float;
  osc_threshold : float;
}

let default solver =
  {
    solver;
    bins = 256;
    horizon = Float.max 2. (400. *. solver.Solver.base_rtt);
    dt = 0.;
    osc_threshold = 1.;
  }

type result = {
  verdict : verdict;
  equilibrium : Solver.equilibrium;
  mean_queue : float;
  queue_min : float;
  queue_max : float;
  mean_window : float;
  mean_goodput : float;
  steps : int;
}

let run cfg =
  if not (cfg.horizon > 0.) then
    invalid_arg "Dynamics.run: horizon must be positive";
  if cfg.osc_threshold < 0. then
    invalid_arg "Dynamics.run: negative osc_threshold";
  let sc = cfg.solver in
  let eq = Solver.solve sc in
  let n = float_of_int sc.Solver.flows in
  let capacity = sc.Solver.capacity in
  let base_rtt = sc.Solver.base_rtt in
  let b_rounds = float_of_int sc.Solver.b in
  let law = sc.Solver.law in
  let buffer = float_of_int (Queue_law.capacity law) in
  (* Window span: the receiver cap when one is set, else comfortable
     headroom above the equilibrium window. *)
  let wmax =
    if sc.Solver.wm > 0 then float_of_int sc.Solver.wm
    else Float.max 8. (3. *. eq.Solver.per_flow_rate *. eq.Solver.rtt)
  in
  let hist = Window_hist.create ~bins:cfg.bins ~wmax () in
  let w_eq =
    Float.max 1. (Float.min (0.95 *. wmax) (eq.Solver.per_flow_rate *. eq.Solver.rtt))
  in
  Window_hist.reset hist ~mean:w_eq ~spread:(0.5 *. w_eq);
  let dt =
    if cfg.dt > 0. then cfg.dt
    else begin
      (* A fraction of the feedback delay, and under the drift CFL bound
         at the fastest (empty-queue) drift. *)
      let cfl = 0.9 *. Window_hist.width hist *. b_rounds *. base_rtt in
      Float.min (base_rtt /. 16.) cfl
    end
  in
  let steps_total =
    Int.max 2 (int_of_float (Float.ceil (cfg.horizon /. dt)))
  in
  let settle = steps_total / 2 in
  let samples = Array.make (steps_total - settle) 0. in
  (* Senders react to drops one propagation round late. *)
  let delay_len = Int.max 1 (int_of_float ((base_rtt /. dt) +. 0.5)) in
  let delayed = Array.make delay_len eq.Solver.p in
  let delay_at = ref 0 in
  let q = ref eq.Solver.queue in
  let qbar = ref eq.Solver.queue in
  let sum_w = ref 0. in
  let sum_goodput = ref 0. in
  let recorded = ref 0 in
  for step = 0 to steps_total - 1 do
    let rtt = base_rtt +. (!q /. capacity) in
    let w_mean = Window_hist.mean hist in
    let arrival = n *. w_mean /. rtt in
    let p_now =
      match law with
      | Queue_law.Constant p0 -> p0
      | Queue_law.Red _ -> Queue_law.drop_prob law ~avg_queue:!qbar
      | Queue_law.Drop_tail _ ->
          (* Fluid drop-tail: a full buffer sheds exactly the excess. *)
          if !q >= buffer && arrival > capacity then 1. -. (capacity /. arrival)
          else 0.
    in
    let p_seen = delayed.(!delay_at) in
    delayed.(!delay_at) <- p_now;
    delay_at := (!delay_at + 1) mod delay_len;
    Window_hist.step hist ~dt ~drift:(1. /. (b_rounds *. rtt)) ~p:p_seen ~rtt;
    (match law with
    | Queue_law.Constant _ -> ()
    | Queue_law.Drop_tail _ | Queue_law.Red _ ->
        let dq = dt *. ((arrival *. (1. -. p_now)) -. capacity) in
        q := Float.max 0. (Float.min buffer (!q +. dq));
        (match law with
        | Queue_law.Red red ->
            let gain =
              Float.min 1. (red.Queue_law.weight *. arrival *. dt)
            in
            qbar := !qbar +. (gain *. (!q -. !qbar))
        | Queue_law.Drop_tail _ | Queue_law.Constant _ -> qbar := !q));
    if step >= settle then begin
      (* The oscillation signal: the queue, except in the open-loop
         constant law where only the window distribution can move. *)
      samples.(!recorded) <-
        (match law with Queue_law.Constant _ -> w_mean | _ -> !q);
      sum_w := !sum_w +. w_mean;
      sum_goodput := !sum_goodput +. (w_mean /. rtt *. (1. -. p_now));
      incr recorded
    end
  done;
  let count = Float.max 1. (float_of_int !recorded) in
  let sig_min = ref Float.infinity in
  let sig_max = ref Float.neg_infinity in
  let sig_sum = ref 0. in
  for i = 0 to !recorded - 1 do
    let s = samples.(i) in
    if s < !sig_min then sig_min := s;
    if s > !sig_max then sig_max := s;
    sig_sum := !sig_sum +. s
  done;
  let sig_mean = !sig_sum /. count in
  let amplitude = Float.max 0. ((!sig_max -. !sig_min) /. 2.) in
  let crossings = ref 0 in
  for i = 1 to !recorded - 1 do
    let a = samples.(i - 1) -. sig_mean and b = samples.(i) -. sig_mean in
    if (a < 0. && b >= 0.) || (a >= 0. && b < 0.) then incr crossings
  done;
  let verdict =
    if amplitude > Float.max cfg.osc_threshold (0.02 *. Float.max 1. sig_mean)
    then begin
      let period =
        if !crossings >= 3 then
          2. *. float_of_int !recorded *. dt /. float_of_int !crossings
        else 0.
      in
      Oscillating { amplitude; period }
    end
    else Stable
  in
  let queue_stats =
    match law with
    | Queue_law.Constant _ -> (0., 0., 0.)
    | _ -> (sig_mean, !sig_min, !sig_max)
  in
  let mean_queue, queue_min, queue_max = queue_stats in
  {
    verdict;
    equilibrium = eq;
    mean_queue;
    queue_min;
    queue_max;
    mean_window = !sum_w /. count;
    mean_goodput = !sum_goodput /. count;
    steps = steps_total;
  }
