(** Drop profiles for the mean-field bottleneck.

    The mean-field backend replaces the per-packet queue of [netsim] with a
    deterministic {e drop law}: a map from the (averaged) queue occupancy to
    the loss probability every flow in the population experiences.  Three
    laws cover the spectrum the ROADMAP papers study:

    - {b RED}, mirroring [Pftk_netsim.Queue_discipline]: no loss below
      [min_threshold], a linear ramp to [max_probability] on
      [[min_threshold, max_threshold)], and certain loss at or above
      [max_threshold] (the original, non-gentle RED that the packet-level
      simulator implements).  Unlike the simulator, [min_threshold =
      max_threshold] is accepted here and collapses the ramp to a step —
      the degenerate profile whose infinite slope is the textbook unstable
      limit of Reynier's stability condition.
    - {b Drop-tail} as the degenerate case: loss only at a full buffer.
    - {b Constant}: a fixed loss probability with no queue at all — the
      single-flow/open-loop limit in which the mean-field equilibrium must
      reduce to the PFTK send-rate formula (selfcheck invariant C12). *)

type red = {
  red_capacity : int;  (** Hard buffer limit, whole packets. *)
  min_threshold : float; [@pftk.unit "pkt"]
      (** Average occupancy below which nothing is dropped. *)
  max_threshold : float; [@pftk.unit "pkt"]
      (** Average occupancy at which the drop probability jumps to 1. *)
  max_probability : float; [@pftk.unit "prob"]
      (** Drop probability at the top of the linear ramp. *)
  weight : float; [@pftk.unit "1/pkt"]
      (** Per-packet EWMA gain of the average-queue estimator (the RED
          [w_q]); only the time-domain dynamics use it. *)
}

type t =
  | Drop_tail of int  (** Buffer capacity, whole packets. *)
  | Red of red
  | Constant of float  (** Fixed drop probability, no queue. *)

val drop_tail : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val red :
  ?weight:float ->
  ?max_probability:float ->
  capacity:int ->
  min_threshold:float ->
  max_threshold:float ->
  unit ->
  t
[@@pftk.unit "1/pkt -> prob -> _ -> pkt -> pkt -> _ -> _"]
(** [weight] defaults to 0.002 and [max_probability] to 0.1, matching
    [Pftk_netsim.Queue_discipline.red].  Requires
    [0 <= min_threshold <= max_threshold <= capacity] (equality of the
    thresholds is allowed, see above), [max_probability] in (0, 1] and
    [weight] in (0, 1]; raises [Invalid_argument] otherwise. *)

val constant : p:float -> t
[@@pftk.unit "prob -> _"]
(** Raises [Invalid_argument] unless [0 <= p < 1]. *)

val validate : t -> unit
(** Re-checks the constructor invariants (for laws built literally);
    raises [Invalid_argument] on violation. *)

val capacity : t -> int
(** The hard buffer limit in packets; [0] for [Constant]. *)

val drop_prob : t -> avg_queue:float -> float
[@@pftk.unit "_ -> pkt -> prob"]
(** The drop probability the law applies at averaged occupancy
    [avg_queue].  Drop-tail reads the instantaneous queue (it has no
    averager): 1 at or above capacity, else 0. *)

val queue_for_drop : t -> p:float -> float
[@@pftk.unit "_ -> prob -> pkt"]
(** The averaged occupancy at which the law supplies drop probability [p]
    — the equilibrium inverse of {!drop_prob} used by the fixed-point
    solver.  For RED: [min_threshold] when [p <= 0], the linear ramp
    inverse for [p < max_probability], and [max_threshold] beyond the ramp
    (past the ramp the queue pins at the cliff and loss becomes
    demand-determined, exactly like drop-tail).  For drop-tail: 0 when
    [p <= 0], else half the buffer — the mean of the empty-to-full
    sawtooth, the same [queue_fill = 0.5] convention as
    [Pftk_core.Fixed_point.solve].  For [Constant]: 0. *)
