type t = {
  n : int;
  h : float;  (* bin width, pkt *)
  mass : float array;  (* probability mass per bin *)
  scratch : float array;  (* halving-flux deposits, zeroed per step *)
}

let create ?(bins = 256) ~wmax () =
  if bins < 2 then invalid_arg "Window_hist.create: bins < 2";
  if not (wmax > 0.) then invalid_arg "Window_hist.create: wmax must be positive";
  {
    n = bins;
    h = wmax /. float_of_int bins;
    mass = Array.make bins 0.;
    scratch = Array.make bins 0.;
  }

let bins t = t.n
let width t = t.h
let wmax t = t.h *. float_of_int t.n
let center t i = (float_of_int i +. 0.5) *. t.h

let reset t ~mean ~spread =
  Array.fill t.mass 0 t.n 0.;
  let lo = Float.max 0. (mean -. spread) in
  let hi = Float.min (wmax t) (mean +. spread) in
  if hi > lo then begin
    (* Mass proportional to each bin's overlap with [lo, hi]. *)
    for i = 0 to t.n - 1 do
      let bl = float_of_int i *. t.h and bh = float_of_int (i + 1) *. t.h in
      let overlap = Float.min hi bh -. Float.max lo bl in
      if overlap > 0. then t.mass.(i) <- overlap /. (hi -. lo)
    done;
    (* Renormalize the clipping rounding away. *)
    let s = Array.fold_left ( +. ) 0. t.mass in
    if s > 0. then
      for i = 0 to t.n - 1 do
        t.mass.(i) <- t.mass.(i) /. s
      done
  end
  else begin
    let i = int_of_float (mean /. t.h) in
    let i = if i < 0 then 0 else if i > t.n - 1 then t.n - 1 else i in
    t.mass.(i) <- 1.
  end

let total t = Array.fold_left ( +. ) 0. t.mass

let mean t =
  let acc = ref 0. in
  for i = 0 to t.n - 1 do
    acc := !acc +. (t.mass.(i) *. center t i)
  done;
  !acc

let second_moment t =
  let acc = ref 0. in
  for i = 0 to t.n - 1 do
    let w = center t i in
    acc := !acc +. (t.mass.(i) *. w *. w)
  done;
  !acc

let step t ~dt ~drift ~p ~rtt =
  let n = t.n and m = t.mass and s = t.scratch in
  (* Halving flux: bin i loses mass at rate p·w_i/rtt toward w_i/2. *)
  if p > 0. then begin
    Array.fill s 0 n 0.;
    for i = 0 to n - 1 do
      let mi = m.(i) in
      if mi > 0. then begin
        let w = center t i in
        let frac = Float.min 1. (dt *. p *. w /. rtt) in
        if frac > 0. then begin
          let out = mi *. frac in
          m.(i) <- mi -. out;
          (* Deposit at w/2, split linearly over the bracketing bins. *)
          let x = Float.max 0. ((w /. 2. /. t.h) -. 0.5) in
          let lo = int_of_float x in
          if lo >= n - 1 then s.(n - 1) <- s.(n - 1) +. out
          else begin
            let f = x -. float_of_int lo in
            s.(lo) <- s.(lo) +. (out *. (1. -. f));
            s.(lo + 1) <- s.(lo + 1) +. (out *. f)
          end
        end
      end
    done;
    for i = 0 to n - 1 do
      m.(i) <- m.(i) +. s.(i)
    done
  end;
  (* Upwind drift: mass moves right one neighbor at a time; the top bin is
     absorbing (the W_m clamp).  Walking from the top keeps each packet of
     mass from moving twice in one step. *)
  let frac = Float.min 1. (dt *. drift /. t.h) in
  if frac > 0. then
    for i = n - 2 downto 0 do
      let out = m.(i) *. frac in
      m.(i) <- m.(i) -. out;
      m.(i + 1) <- m.(i + 1) +. out
    done

let max_dt t ~drift ~p ~rtt =
  let cfl =
    if drift > 0. then 0.9 *. t.h /. drift else Float.infinity
  in
  let halving =
    if p > 0. then 0.9 *. rtt /. (p *. wmax t) else Float.infinity
  in
  Float.min cfl halving
