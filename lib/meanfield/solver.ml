module Params = Pftk_core.Params
module Full_model = Pftk_core.Full_model
module Approx_model = Pftk_core.Approx_model

type rate_law = Full | Approximate

type config = {
  flows : int;
  capacity : float;
  base_rtt : float;
  b : int;
  wm : int;
  law : Queue_law.t;
  rate_law : rate_law;
  t0_factor : float;
  damping : float;
  max_iterations : int;
  tolerance : float;
}

let default ~flows ~capacity ~base_rtt ~law =
  {
    flows;
    capacity;
    base_rtt;
    b = 2;
    wm = 0;
    law;
    rate_law = Full;
    t0_factor = 4.;
    damping = 0.5;
    max_iterations = 200;
    tolerance = 1e-6;
  }

type outcome = Converged | Oscillating of float

type equilibrium = {
  p : float;
  queue : float;
  rtt : float;
  per_flow_rate : float;
  per_flow_goodput : float;
  utilization : float;
  window_limited : bool;
  iterations : int;
  residual : float;
  loop_gain : float;
  outcome : outcome;
}

let validate cfg =
  if cfg.flows < 1 then invalid_arg "Solver.solve: flows must be >= 1";
  if not (cfg.capacity > 0.) then
    invalid_arg "Solver.solve: capacity must be positive";
  if not (cfg.base_rtt > 0.) then
    invalid_arg "Solver.solve: base_rtt must be positive";
  if cfg.b < 1 then invalid_arg "Solver.solve: b must be >= 1";
  if not (cfg.t0_factor > 0.) then
    invalid_arg "Solver.solve: t0_factor must be positive";
  if not (0. < cfg.damping && cfg.damping <= 1.) then
    invalid_arg "Solver.solve: damping outside (0, 1]";
  if cfg.max_iterations < 1 then
    invalid_arg "Solver.solve: max_iterations must be >= 1";
  if not (cfg.tolerance > 0.) then
    invalid_arg "Solver.solve: tolerance must be positive";
  Queue_law.validate cfg.law

(* Loss probabilities the equilibrium search may visit.  [p_min] stands in
   for "no loss" (the formulas diverge at 0); [p_max] caps the bisection
   in hopeless configurations. *)
let p_min = 1e-7
let p_max = 0.95

let solve cfg =
  validate cfg;
  let n = float_of_int cfg.flows in
  let wm_eff = if cfg.wm <= 0 then Params.unlimited_window else cfg.wm in
  let params_at rtt =
    Params.make ~b:cfg.b ~wm:wm_eff ~rtt
      ~t0:(Float.max 1e-3 (cfg.t0_factor *. rtt))
      ()
  in
  let rate_fn =
    match cfg.rate_law with
    | Full -> fun params p -> Full_model.send_rate params p
    | Approximate -> Approx_model.send_rate
  in
  let rate rtt p = rate_fn (params_at rtt) p in
  let fair = cfg.capacity /. n in
  let rtt_of q = cfg.base_rtt +. (q /. cfg.capacity) in
  (* The loss that balances the link at occupancy [q]: the model is
     monotone decreasing in [p], so geometric bisection; 0 when even
     (near-)lossless flows cannot fill the link. *)
  let p_needed q =
    let rtt = rtt_of q in
    if rate rtt p_min <= fair then 0.
    else if rate rtt p_max >= fair then p_max
    else begin
      let rec bisect lo hi k =
        if Int.equal k 0 then (lo +. hi) /. 2.
        else
          let mid = sqrt (lo *. hi) in
          if rate rtt mid > fair then bisect mid hi (k - 1)
          else bisect lo mid (k - 1)
      in
      bisect p_min p_max 80
    end
  in
  let finish ~p ~queue ~iterations ~residual ~loop_gain ~outcome =
    let rtt = rtt_of queue in
    let params = params_at rtt in
    let p_eval = if p <= 0. then p_min else p in
    let r = rate_fn params p_eval in
    (* A loss-free equilibrium means the link (or the window) already
       limits the flows; don't let the p_min evaluation overshoot it. *)
    let r = if p <= 0. then Float.min fair r else r in
    {
      p;
      queue;
      rtt;
      per_flow_rate = r;
      per_flow_goodput = r *. (1. -. Float.max 0. p);
      utilization = n *. r /. cfg.capacity;
      window_limited = Full_model.window_limited params p_eval;
      iterations;
      residual;
      loop_gain;
      outcome;
    }
  in
  match cfg.law with
  | Queue_law.Constant p0 ->
      (* Open loop: the drop process is given, nothing couples back. *)
      let rtt = cfg.base_rtt in
      let params = params_at rtt in
      let p_eval = if p0 <= 0. then p_min else p0 in
      let r = rate_fn params p_eval in
      {
        p = p0;
        queue = 0.;
        rtt;
        per_flow_rate = r;
        per_flow_goodput = r *. (1. -. p0);
        utilization = n *. r /. cfg.capacity;
        window_limited = Full_model.window_limited params p_eval;
        iterations = 0;
        residual = 0.;
        loop_gain = 0.;
        outcome = Converged;
      }
  | Queue_law.Drop_tail _ ->
      if rate cfg.base_rtt p_min <= fair then
        (* Underutilized: the queue stays empty, loss stays ~0. *)
        finish ~p:0. ~queue:0. ~iterations:0 ~residual:0. ~loop_gain:0.
          ~outcome:Converged
      else begin
        let queue = Queue_law.queue_for_drop cfg.law ~p:1. in
        if rate (rtt_of queue) p_min <= fair then
          (* The queueing delay alone slows the flows to the fair share. *)
          finish ~p:0. ~queue ~iterations:0 ~residual:0. ~loop_gain:0.
            ~outcome:Converged
        else
          finish ~p:(p_needed queue) ~queue ~iterations:0 ~residual:0.
            ~loop_gain:0. ~outcome:Converged
      end
  | Queue_law.Red red ->
      if rate cfg.base_rtt p_min <= fair then
        finish ~p:0. ~queue:0. ~iterations:0 ~residual:0. ~loop_gain:0.
          ~outcome:Converged
      else begin
        let phi q = Queue_law.queue_for_drop cfg.law ~p:(p_needed q) in
        let trail_len = 16 in
        let trail = Array.make trail_len red.Queue_law.min_threshold in
        let q = ref red.Queue_law.min_threshold in
        let residual = ref Float.infinity in
        let iter = ref 0 in
        let converged = ref false in
        while (not !converged) && !iter < cfg.max_iterations do
          let target = phi !q in
          residual := Float.abs (target -. !q);
          q := ((1. -. cfg.damping) *. !q) +. (cfg.damping *. target);
          trail.(!iter mod trail_len) <- !q;
          incr iter;
          if !residual <= cfg.tolerance *. Float.max 1. !q then
            converged := true
        done;
        let loop_gain =
          let d = Float.max 0.25 (0.02 *. !q) in
          let lo = Float.max 0. (!q -. d) in
          let hi = !q +. d in
          if hi > lo then Float.abs (phi hi -. phi lo) /. (hi -. lo) else 0.
        in
        let outcome =
          if !converged then Converged
          else begin
            let filled = Int.min !iter trail_len in
            let qmin = ref Float.infinity and qmax = ref Float.neg_infinity in
            for i = 0 to filled - 1 do
              if trail.(i) < !qmin then qmin := trail.(i);
              if trail.(i) > !qmax then qmax := trail.(i)
            done;
            Oscillating ((!qmax -. !qmin) /. 2.)
          end
        in
        finish ~p:(p_needed !q) ~queue:!q ~iterations:!iter
          ~residual:!residual ~loop_gain ~outcome
      end
