(** Mean-field equilibrium of N homogeneous PFTK flows behind one drop law.

    In equilibrium the population, the queue and the drop law must agree:

    - each flow sends at the PFTK rate [B(p, RTT)] (eq. (32) or (33));
    - the round-trip time carries the queueing delay,
      [RTT = base_rtt + queue/capacity];
    - a saturated link forces [N·B(p, RTT) = capacity] — the loss supplies
      exactly the [p] that makes demand meet capacity;
    - the drop law closes the loop: the queue must sit where the law emits
      that [p] ({!Queue_law.queue_for_drop}).

    The solver runs the damped fixed-point iteration
    [q ← (1-γ)·q + γ·Φ(q)] where [Φ] maps an occupancy to the occupancy
    the law demands for the loss that balances the link at that occupancy.
    [Φ] is monotone non-increasing, so the undamped iteration oscillates
    whenever [|Φ'| > 1] — the fixed-point shadow of Reynier's RED
    stability condition.  The damping keeps the solver itself convergent;
    the reported {!equilibrium.loop_gain} is the measured [|Φ'|] at the
    fixed point, and a residual that refuses to shrink is reported as
    {!Oscillating} — a finding about the configuration, never an
    exception.

    Every quantity here is per the population, so the cost is independent
    of [flows]: solving for 10⁶ flows is the same arithmetic as for 2. *)

type rate_law = Full | Approximate
(** Which PFTK formula closes the flow side: eq. (32) with its timeout
    term, or the square-root eq. (33). *)

type config = {
  flows : int;  (** Population size N, >= 1. *)
  capacity : float; [@pftk.unit "pkt/s"]
      (** Bottleneck service rate C, packets per second. *)
  base_rtt : float; [@pftk.unit "s"]
      (** Two-way propagation delay excluding queueing. *)
  b : int;  (** Packets acknowledged per ACK, as in {!Pftk_core.Params}. *)
  wm : int;  (** Receiver window cap, packets; [<= 0] means unlimited. *)
  law : Queue_law.t;
  rate_law : rate_law;
  t0_factor : float; [@pftk.unit "1"]
      (** Timeout as a multiple of RTT, [T0 = t0_factor·RTT]. *)
  damping : float; [@pftk.unit "1"]
      (** Fixed-point damping γ in (0, 1]; 1 is the undamped map. *)
  max_iterations : int;
  tolerance : float; [@pftk.unit "1"]
      (** Relative residual on the queue at which iteration stops. *)
}

val default :
  flows:int -> capacity:float -> base_rtt:float -> law:Queue_law.t -> config
[@@pftk.unit "_ -> pkt/s -> s -> _ -> _"]
(** [b = 2], [wm] unlimited, full model, [t0_factor = 4] (as
    {!Pftk_core.Fixed_point.solve}), [damping = 0.5],
    [max_iterations = 200], [tolerance = 1e-6]. *)

type outcome =
  | Converged
  | Oscillating of float
      (** The damped iteration still bounced by this queue amplitude
          (packets, half the trailing peak-to-peak) after
          [max_iterations]: the drop law has no stable operating point at
          this damping. *)

type equilibrium = {
  p : float; [@pftk.unit "prob"]
      (** Equilibrium loss probability (0 when underutilized). *)
  queue : float; [@pftk.unit "pkt"]  (** Averaged queue occupancy. *)
  rtt : float; [@pftk.unit "s"]  (** [base_rtt] plus queueing delay. *)
  per_flow_rate : float; [@pftk.unit "pkt/s"]
  per_flow_goodput : float; [@pftk.unit "pkt/s"]
      (** [per_flow_rate·(1-p)] — the delivered share. *)
  utilization : float; [@pftk.unit "1"]
      (** [N·per_flow_rate/capacity]; [Constant] laws have no capacity
          coupling, so only there may it exceed 1. *)
  window_limited : bool;
      (** Whether the flows are pinned by [wm] rather than loss. *)
  iterations : int;  (** Fixed-point iterations spent (0 = closed form). *)
  residual : float; [@pftk.unit "pkt"]
      (** Final queue residual [|Φ(q) - q|]. *)
  loop_gain : float; [@pftk.unit "1"]
      (** Measured [|Φ'|] at the operating point; > 1 flags a law whose
          undamped feedback overshoots (RED instability proxy). *)
  outcome : outcome;
}

val solve : config -> equilibrium
[@@pftk.unit "_ -> _"]
(** Raises [Invalid_argument] when [flows < 1], [capacity <= 0],
    [base_rtt <= 0], [b < 1], [t0_factor <= 0], [damping] outside (0, 1],
    [max_iterations < 1], [tolerance <= 0], or the law fails
    {!Queue_law.validate}.  Never raises on a non-convergent law — that is
    the {!Oscillating} outcome. *)
