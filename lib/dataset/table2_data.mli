(** Table II verbatim: the published summaries of the 24 one-hour traces.

    These numbers serve two purposes: they calibrate the synthetic path
    profiles (RTT, T0 and loss level per sender-receiver pair), and they
    are the paper-side reference EXPERIMENTS.md compares the regenerated
    table against. *)

type row = {
  sender : string;
  receiver : string;
  packets_sent : int;
  loss_indications : int;
  td : int;
  to_counts : int list;  (** T0, T1, T2, T3, T4, "T5 or more" — 6 cells. *)
  rtt : float;  (** seconds. *)
  timeout : float;  (** average single-timeout duration T_0, seconds. *)
}

val rows : row list
(** All 24 rows, in the paper's order. *)

val find : sender:string -> receiver:string -> row option

val observed_p : row -> float
(** loss indications / packets sent, the paper's estimate of p. *)

val timeout_fraction : row -> float
(** Fraction of loss indications that are timeouts (any depth): the
    paper's headline observation is that this is the majority in almost
    every trace. *)
