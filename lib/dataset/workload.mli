(** Workload generators: the synthetic counterparts of the paper's two
    measurement campaigns (§III) — 1-hour saturated connections, and
    batches of 100 serially-initiated 100-second connections.

    Traces come from the round-based simulator driven by an {e episodic}
    loss process (round-correlated loss plus multi-round congestion
    blackouts).  Three process knobs are calibrated per path against its
    published Table II row: the per-packet loss parameter (targeting the
    published loss-indication frequency), the episode probability
    (targeting the published timeout share of indications), and the mean
    episode length (targeting the published mean backoff depth — the
    T0..T5+ spread).  Sender-side stack quirks follow the sending host's
    OS (Table I): Linux senders use a 2-dup-ACK threshold, the Irix sender
    a 2^5 backoff cap. *)

type calibration = {
  p : float;  (** Per-packet loss-event probability. *)
  burst_prob : float;  (** Episode probability per loss event. *)
  mean_burst_rounds : float;  (** Mean episode length, rounds. *)
}

type trace = {
  profile : Path_profile.t;
  recorder : Pftk_trace.Recorder.t;
  result : Pftk_tcp.Round_sim.result;
}

val sim_config : Path_profile.t -> Pftk_tcp.Round_sim.config
(** The path's simulator configuration (parameters + OS tweaks). *)

val targets : Path_profile.t -> float * float * float
(** (indication rate, timeout fraction, mean backoff depth) the calibration
    aims for: from the published row when there is one, otherwise generic
    defaults. *)

val calibrate :
  ?seed:int64 -> ?duration:float -> ?iterations:int -> Path_profile.t -> calibration
(** Fixed-point calibration over short probe runs (default 5 x 600 s). *)

val loss_process : Pftk_stats.Rng.t -> calibration -> Pftk_loss.Loss_process.t

val hour_trace : ?seed:int64 -> Path_profile.t -> trace
(** One 3600-s saturated connection, with full event recording. *)

val batch_100s :
  ?seed:int64 -> ?count:int -> ?jobs:int -> Path_profile.t -> trace list
(** [count] (default 100) independent 100-s connections, one seed each.
    [jobs] (default 1) worker domains simulate the connections in
    parallel; results are identical for every [jobs] value because each
    connection's stream depends only on its index. *)

val run_for : ?seed:int64 -> duration:float -> Path_profile.t -> trace
(** Arbitrary-duration variant used by both of the above. *)

val run_observed :
  ?seed:int64 ->
  duration:float ->
  sink:(Pftk_trace.Event.t -> unit) ->
  Path_profile.t ->
  trace
(** Like {!run_for}, but recorder-free: events stream to [sink] as the
    simulation produces them and nothing is buffered (the returned
    recorder is unbuffered).  With the same [seed], [sink] sees exactly
    the event sequence {!run_for}'s recorder would hold, so feeding it a
    [Pftk_online.Summary.sink] yields the same analysis in O(1) memory. *)
