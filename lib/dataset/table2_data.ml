type row = {
  sender : string;
  receiver : string;
  packets_sent : int;
  loss_indications : int;
  td : int;
  to_counts : int list;
  rtt : float;
  timeout : float;
}

let row sender receiver packets_sent loss_indications td t0 t1 t2 t3 t4 t5 rtt
    timeout =
  {
    sender;
    receiver;
    packets_sent;
    loss_indications;
    td;
    to_counts = [ t0; t1; t2; t3; t4; t5 ];
    rtt;
    timeout;
  }

(* Table II, verbatim from the paper. *)
let rows =
  [
    row "manic" "alps" 54402 722 19 611 67 15 6 2 2 0.207 2.505;
    row "manic" "baskerville" 58120 735 306 411 17 1 0 0 0 0.243 2.495;
    row "manic" "ganef" 58924 743 272 444 22 4 1 0 0 0.226 2.405;
    row "manic" "mafalda" 56283 494 2 474 17 1 0 0 0 0.233 2.146;
    row "manic" "maria" 68752 649 1 604 35 8 1 0 0 0.180 2.416;
    row "manic" "spiff" 117992 784 47 702 34 1 0 0 0 0.211 2.274;
    row "manic" "sutton" 81123 1638 988 597 41 7 3 1 1 0.204 2.459;
    row "manic" "tove" 7938 264 1 190 37 18 8 3 7 0.275 3.597;
    row "void" "alps" 37137 838 7 588 164 56 17 4 2 0.162 0.489;
    row "void" "baskerville" 32042 853 339 430 67 12 5 0 0 0.482 1.094;
    row "void" "ganef" 60770 1112 414 582 79 20 9 4 2 0.254 0.637;
    row "void" "maria" 93005 1651 33 1344 197 54 15 5 3 0.152 0.417;
    row "void" "spiff" 65536 671 72 539 56 4 0 0 0 0.415 0.749;
    row "void" "sutton" 78246 1928 840 863 152 45 18 9 1 0.211 0.601;
    row "void" "tove" 8265 856 5 444 209 100 51 27 12 0.272 1.356;
    row "babel" "alps" 13460 1466 0 1068 247 87 33 18 8 0.194 1.359;
    row "babel" "baskerville" 62237 1753 197 1467 76 10 3 0 0 0.253 0.429;
    row "babel" "ganef" 86675 2125 398 1686 38 2 1 0 0 0.201 0.306;
    row "babel" "spiff" 57687 1120 0 939 137 36 7 1 0 0.331 0.953;
    row "babel" "sutton" 83486 2320 685 1448 142 31 9 4 1 0.210 0.705;
    row "babel" "tove" 83944 1516 1 1364 118 17 7 5 3 0.194 0.520;
    row "pif" "alps" 83971 762 0 577 111 46 16 8 2 0.168 7.278;
    row "pif" "imagine" 44891 1346 15 1044 186 63 21 10 5 0.229 0.700;
    row "pif" "manic" 34251 1422 43 944 272 105 36 14 6 0.257 1.454;
  ]

let find ~sender ~receiver =
  List.find_opt (fun r -> r.sender = sender && r.receiver = receiver) rows

let observed_p r =
  float_of_int r.loss_indications /. float_of_int r.packets_sent

let timeout_fraction r =
  let timeouts = List.fold_left ( + ) 0 r.to_counts in
  float_of_int timeouts /. float_of_int r.loss_indications
