module Round_sim = Pftk_tcp.Round_sim
module Loss_process = Pftk_loss.Loss_process
module Recorder = Pftk_trace.Recorder

type calibration = { p : float; burst_prob : float; mean_burst_rounds : float }

type trace = {
  profile : Path_profile.t;
  recorder : Recorder.t;
  result : Round_sim.result;
}

let sim_config (profile : Path_profile.t) =
  let base = Round_sim.config_of_params (Path_profile.params profile) in
  match Host.find profile.sender with
  | None -> base
  | Some host ->
      let tweaks = Host.reno_tweaks host.Host.family in
      {
        base with
        Round_sim.dup_ack_threshold = tweaks.Host.dup_ack_threshold;
        backoff_cap = tweaks.Host.backoff_cap;
      }

let mean_depth to_counts =
  let total = List.fold_left ( + ) 0 to_counts in
  if total = 0 then 1.
  else begin
    let weighted = ref 0 in
    List.iteri (fun i n -> weighted := !weighted + ((i + 1) * n)) to_counts;
    float_of_int !weighted /. float_of_int total
  end

let targets (profile : Path_profile.t) =
  match profile.table2 with
  | Some row ->
      ( Table2_data.observed_p row,
        Table2_data.timeout_fraction row,
        mean_depth row.Table2_data.to_counts )
  | None -> (profile.loss_rate, 0.7, 1.2)

let loss_process rng { p; burst_prob; mean_burst_rounds } =
  Loss_process.episodic rng ~p ~burst_prob ~mean_burst_rounds

let observe (result : Round_sim.result) =
  let indications = result.Round_sim.loss_indications in
  let to_frac =
    if indications = 0 then 0.
    else float_of_int result.Round_sim.to_sequences /. float_of_int indications
  in
  ( result.Round_sim.observed_p,
    to_frac,
    mean_depth (Array.to_list result.Round_sim.to_by_backoff) )

let clamp lo hi v = Float.max lo (Float.min hi v)

let calibrate ?(seed = 11L) ?(duration = 600.) ?(iterations = 5) profile =
  if iterations < 1 then invalid_arg "Workload.calibrate: iterations < 1";
  let target_rate, target_to, target_depth = targets profile in
  let rec refine cal remaining =
    if remaining = 0 then cal
    else begin
      let rng = Pftk_stats.Rng.create ~seed () in
      let result =
        Round_sim.run ~seed ~duration ~loss:(loss_process rng cal)
          (sim_config profile)
      in
      let rate, to_frac, depth = observe result in
      let p =
        if rate <= 0. then clamp 1e-5 0.9 (cal.p *. 2.)
        else clamp 1e-5 0.9 (cal.p *. (target_rate /. rate))
      in
      let burst_prob =
        clamp 0. 1. (cal.burst_prob +. (0.8 *. (target_to -. to_frac)))
      in
      let mean_burst_rounds =
        if depth <= 1. && target_depth <= 1. then cal.mean_burst_rounds
        else
          clamp 1. 30.
            (cal.mean_burst_rounds
            *. ((target_depth -. 0.99) /. Float.max 0.01 (depth -. 0.99)))
      in
      refine { p; burst_prob; mean_burst_rounds } (remaining - 1)
    end
  in
  let _, target_to, target_depth = targets profile in
  refine
    {
      p = clamp 1e-5 0.9 profile.Path_profile.loss_rate;
      burst_prob = clamp 0. 1. (target_to /. 2.);
      mean_burst_rounds = clamp 1. 30. target_depth;
    }
    iterations

let run_with_calibration ~seed ~duration profile cal =
  let rng = Pftk_stats.Rng.create ~seed:(Int64.add seed 1L) () in
  let recorder = Recorder.create () in
  let result =
    Round_sim.run ~seed ~recorder ~duration ~loss:(loss_process rng cal)
      (sim_config profile)
  in
  { profile; recorder; result }

let run_observed ?(seed = 11L) ~duration ~sink profile =
  let cal = calibrate ~seed profile in
  let rng = Pftk_stats.Rng.create ~seed:(Int64.add seed 1L) () in
  (* Unbuffered recorder: events flow straight to the subscribed sink, so
     memory stays O(1) no matter how long the connection runs. *)
  let recorder = Recorder.create ~buffered:false () in
  Recorder.subscribe recorder sink;
  let result =
    Round_sim.run ~seed ~recorder ~duration ~loss:(loss_process rng cal)
      (sim_config profile)
  in
  { profile; recorder; result }

let run_for ?(seed = 11L) ~duration profile =
  let cal = calibrate ~seed profile in
  run_with_calibration ~seed ~duration profile cal

let hour_trace ?seed profile = run_for ?seed ~duration:3600. profile

let batch_100s ?(seed = 11L) ?(count = 100) ?(jobs = 1) profile =
  if count < 1 then invalid_arg "Workload.batch_100s: count < 1";
  (* Calibrate once for the path; each connection then gets its own RNG
     stream, like the paper's serially-initiated connections.  The
     per-index seeds make the batch embarrassingly parallel: fanning the
     connections across domains cannot change any result. *)
  let cal = calibrate ~seed profile in
  Pftk_parallel.init ~jobs count (fun i ->
      let connection_seed = Int64.add seed (Int64.of_int (100 + i)) in
      run_with_calibration ~seed:connection_seed ~duration:100. profile cal)
  |> Array.to_list
