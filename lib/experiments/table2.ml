module Path_profile = Pftk_dataset.Path_profile
module Workload = Pftk_dataset.Workload
module Analyzer = Pftk_trace.Analyzer
module Table2_data = Pftk_dataset.Table2_data

type row = { profile : Path_profile.t; summary : Analyzer.summary }

let generate ?(seed = 17L) ?(duration = 3600.) ?(jobs = 1) () =
  Pftk_parallel.mapi ~jobs
    (fun i profile ->
      let trace =
        Workload.run_for ~seed:(Int64.add seed (Int64.of_int i)) ~duration
          profile
      in
      { profile; summary = Analyzer.summarize trace.Workload.recorder })
    Path_profile.all

let timeout_fraction row =
  let timeouts = Array.fold_left ( + ) 0 row.summary.Analyzer.to_by_backoff in
  if row.summary.Analyzer.loss_indications = 0 then 0.
  else
    float_of_int timeouts /. float_of_int row.summary.Analyzer.loss_indications

let print_cells ppf ~tag ~sender ~receiver ~packets ~loss ~td ~to_counts ~rtt
    ~timeout =
  Format.fprintf ppf
    "%-5s %-6s %-12s %8d %6d %5d %6d %5d %5d %5d %5d %5d  %6.3f %7.3f@." tag
    sender receiver packets loss td to_counts.(0) to_counts.(1) to_counts.(2)
    to_counts.(3) to_counts.(4) to_counts.(5) rtt timeout

let print ppf rows =
  Report.heading ppf "Table II: Summary data from 1-hour traces (sim vs paper)";
  Format.fprintf ppf
    "%-5s %-6s %-12s %8s %6s %5s %6s %5s %5s %5s %5s %5s  %6s %7s@." "" "Sender"
    "Receiver" "Packets" "Loss" "TD" "T0" "T1" "T2" "T3" "T4" "T5+" "RTT"
    "TimeOut";
  List.iter
    (fun { profile; summary } ->
      print_cells ppf ~tag:"sim" ~sender:profile.Path_profile.sender
        ~receiver:profile.Path_profile.receiver
        ~packets:summary.Analyzer.packets_sent
        ~loss:summary.Analyzer.loss_indications ~td:summary.Analyzer.td_count
        ~to_counts:summary.Analyzer.to_by_backoff ~rtt:summary.Analyzer.avg_rtt
        ~timeout:summary.Analyzer.avg_t0;
      match profile.Path_profile.table2 with
      | None -> ()
      | Some published ->
          print_cells ppf ~tag:"paper" ~sender:published.Table2_data.sender
            ~receiver:published.Table2_data.receiver
            ~packets:published.Table2_data.packets_sent
            ~loss:published.Table2_data.loss_indications
            ~td:published.Table2_data.td
            ~to_counts:(Array.of_list published.Table2_data.to_counts)
            ~rtt:published.Table2_data.rtt
            ~timeout:published.Table2_data.timeout)
    rows;
  let majority =
    List.filter (fun row -> timeout_fraction row > 0.5) rows |> List.length
  in
  Format.fprintf ppf
    "@.Timeouts are the majority of loss indications in %d of %d simulated traces.@."
    majority (List.length rows)
