module Solver = Pftk_meanfield.Solver
module Dynamics = Pftk_meanfield.Dynamics
module Queue_law = Pftk_meanfield.Queue_law

type cell = {
  label : string;
  flows : int;
  capacity : float;
  base_rtt : float;
  buffer : int;
  min_threshold : float;
  max_threshold : float;
  max_probability : float;
  weight : float;
}

type outcome = {
  cell : cell;
  equilibrium : Solver.equilibrium;
  dynamics : Dynamics.result;
  stable : bool;
}

let cell ?(base_rtt = 0.1) ?(max_probability = 0.1) ~flows ~capacity ~weight
    () =
  let buffer = Int.max 8 (int_of_float (capacity *. base_rtt)) in
  let b = float_of_int buffer in
  {
    label =
      Printf.sprintf "w=%g C=%g pkt/s N=%d" weight capacity flows;
    flows;
    capacity;
    base_rtt;
    buffer;
    min_threshold = b /. 6.;
    max_threshold = b /. 2.;
    max_probability;
    weight;
  }

let default_cells =
  List.concat_map
    (fun weight ->
      List.concat_map
        (fun capacity ->
          List.map
            (fun flows -> cell ~flows ~capacity ~weight ())
            [ 50; 400 ])
        [ 1_000.; 8_000. ])
    [ 0.0005; 0.005; 0.05 ]

let quick_cells =
  [
    cell ~flows:50 ~capacity:1_000. ~weight:0.05 ();
    cell ~flows:50 ~capacity:8_000. ~weight:0.0005 ();
    cell ~flows:400 ~capacity:1_000. ~weight:0.005 ();
    cell ~flows:400 ~capacity:8_000. ~weight:0.05 ();
  ]

let evaluate c =
  let law =
    Queue_law.red ~weight:c.weight ~max_probability:c.max_probability
      ~capacity:c.buffer ~min_threshold:c.min_threshold
      ~max_threshold:c.max_threshold ()
  in
  let solver =
    Solver.default ~flows:c.flows ~capacity:c.capacity ~base_rtt:c.base_rtt
      ~law
  in
  let dynamics = Dynamics.run (Dynamics.default solver) in
  {
    cell = c;
    equilibrium = dynamics.Dynamics.equilibrium;
    dynamics;
    stable =
      (match dynamics.Dynamics.verdict with
      | Dynamics.Stable -> true
      | Dynamics.Oscillating _ -> false);
  }

let generate ?(cells = default_cells) ?(jobs = 1) () =
  Pftk_parallel.map ~jobs evaluate cells

let print ppf outcomes =
  Report.heading ppf
    "RED stability boundary (mean-field dynamics verdicts)";
  Format.fprintf ppf "  %-28s  %8s  %7s  %7s  %-22s@." "cell" "p" "queue"
    "util" "verdict";
  List.iter
    (fun o ->
      let verdict =
        match o.dynamics.Dynamics.verdict with
        | Dynamics.Stable -> "stable"
        | Dynamics.Oscillating { Dynamics.amplitude; period } ->
            Printf.sprintf "oscillating +-%.1f pkt%s" amplitude
              (if period > 0. then Printf.sprintf " T=%.2fs" period else "")
      in
      Format.fprintf ppf "  %-28s  %8.5f  %7.1f  %7.3f  %-22s@."
        o.cell.label o.equilibrium.Solver.p o.dynamics.Dynamics.mean_queue
        o.equilibrium.Solver.utilization verdict)
    outcomes;
  let stable_n = List.length (List.filter (fun o -> o.stable) outcomes) in
  Report.kv ppf "stable cells"
    (Printf.sprintf "%d / %d" stable_n (List.length outcomes))
