(** Table II: summary data from the 1-hour traces.

    Each of the 24 sender-receiver pairs runs a calibrated hour-long
    simulated connection; the trace analyzer then produces exactly the
    published columns (packets sent, loss indications, TD count, the
    T0..T5+ timeout breakdown, average RTT, average single-timeout
    duration).  The printout interleaves simulated and published rows so
    the shape comparison — timeouts dominating loss indications everywhere,
    exponential backoff clearly present — is immediate. *)

type row = {
  profile : Pftk_dataset.Path_profile.t;
  summary : Pftk_trace.Analyzer.summary;
}

val generate : ?seed:int64 -> ?duration:float -> ?jobs:int -> unit -> row list
(** Default duration 3600 s (the paper's).  [jobs] (default 1) worker
    domains simulate the 24 paths in parallel; each path seeds its own
    RNG stream from its index, so results do not depend on [jobs]. *)

val timeout_fraction : row -> float
(** Simulated fraction of loss indications that are timeouts. *)

val print : Format.formatter -> row list -> unit
