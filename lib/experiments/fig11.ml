module Connection = Pftk_tcp.Connection
module Reno = Pftk_tcp.Reno
module Analyzer = Pftk_trace.Analyzer
module Intervals = Pftk_trace.Intervals
module Queue_discipline = Pftk_netsim.Queue_discipline
module Loss_process = Pftk_loss.Loss_process
open Pftk_core

type scenario_result = {
  name : string;
  correlation : float;
  avg_rtt : float;
  avg_t0 : float;
  observed_p : float;
  measured_rate : float;
  predicted_rate : float;
  intervals : (float * float) list;
}

let analyze ~name ~wm (result : Connection.result) =
  let summary = Analyzer.summarize result.Connection.recorder in
  let avg_rtt =
    if summary.Analyzer.avg_rtt > 0. then summary.Analyzer.avg_rtt else 0.5
  in
  let avg_t0 =
    if summary.Analyzer.avg_t0 > 0. then summary.Analyzer.avg_t0
    else 3. *. avg_rtt
  in
  let params = Params.make ~rtt:avg_rtt ~t0:avg_t0 ~wm () in
  let predicted_rate =
    if summary.Analyzer.observed_p > 0. then
      Full_model.send_rate params summary.Analyzer.observed_p
    else float_of_int wm /. avg_rtt
  in
  let intervals =
    Intervals.split ~width:100. result.Connection.recorder
    |> List.filter_map (fun bin ->
           if bin.Intervals.packets_sent = 0 then None
           else
             Some
               ( bin.Intervals.observed_p,
                 float_of_int bin.Intervals.packets_sent ))
  in
  {
    name;
    correlation = Connection.rtt_window_correlation result;
    avg_rtt;
    avg_t0;
    observed_p = summary.Analyzer.observed_p;
    measured_rate = result.Connection.send_rate;
    predicted_rate;
    intervals;
  }

let run_modem ?(seed = 41L) ?(duration = 3600.) () =
  let rng = Pftk_stats.Rng.create ~seed:(Int64.add seed 5L) () in
  let wm = 22 in
  let scenario =
    {
      Connection.default_scenario with
      (* 28.8 kbit/s serial line, and the ISP-side buffer devoted entirely
         to this connection that the paper blames for the correlation. *)
      forward_bandwidth = 3600.;
      reverse_bandwidth = 3600.;
      forward_delay = 0.1;
      reverse_delay = 0.1;
      buffer = Queue_discipline.drop_tail ~capacity:30;
      (* Moderate loss keeps the window oscillating, so queueing delay
         tracks the window (the 0.97 correlation of Sec. IV) and the mean
         RTT stops being a usable model input. *)
      data_loss = Some (Loss_process.bernoulli rng ~p:0.01);
      sender = { Reno.default_config with wm; min_rto = 1. };
    }
  in
  analyze ~name:"manic-p5 (28.8k modem, dedicated buffer)" ~wm
    (Connection.run ~seed ~duration scenario)

let run_wide_area ?(seed = 43L) ?(duration = 3600.) () =
  let rng = Pftk_stats.Rng.create ~seed:(Int64.add seed 5L) () in
  let wm = 32 in
  let scenario =
    {
      Connection.default_scenario with
      forward_bandwidth = 1_250_000.;
      reverse_bandwidth = 1_250_000.;
      forward_delay = 0.04;
      reverse_delay = 0.04;
      buffer = Queue_discipline.drop_tail ~capacity:50;
      data_loss = Some (Loss_process.bernoulli rng ~p:0.02);
      sender = { Reno.default_config with wm };
    }
  in
  analyze ~name:"wide-area (fast shared path)" ~wm
    (Connection.run ~seed ~duration scenario)

let generate ?seed ?(wide_duration = 3600.) ?(modem_duration = 3600.)
    ?(jobs = 1) () =
  Pftk_parallel.map ~jobs
    (function
      | `Wide_area -> run_wide_area ?seed ~duration:wide_duration ()
      | `Modem -> run_modem ?seed ~duration:modem_duration ())
    [ `Wide_area; `Modem ]

let print ppf results =
  Report.heading ppf "Fig. 11 / Sec. IV: RTT-window correlation study";
  List.iter
    (fun r ->
      Report.subheading ppf r.name;
      Report.kv ppf "RTT-window correlation" (Printf.sprintf "%.3f" r.correlation);
      Report.kv ppf "avg RTT" (Printf.sprintf "%.3f s" r.avg_rtt);
      Report.kv ppf "avg T0" (Printf.sprintf "%.3f s" r.avg_t0);
      Report.kv ppf "observed p" (Report.fmt_p r.observed_p);
      Report.kv ppf "measured send rate" (Report.fmt_rate r.measured_rate);
      Report.kv ppf "full-model prediction" (Report.fmt_rate r.predicted_rate);
      Report.kv ppf "prediction/measured"
        (Printf.sprintf "%.2fx" (r.predicted_rate /. r.measured_rate));
      Format.fprintf ppf "# intervals: p packets@.";
      List.iter (fun (p, n) -> Format.fprintf ppf "%.5f %.1f@." p n) r.intervals)
    results
