(** End-to-end model validation against the {e packet-level} simulator —
    this repository's stand-in for the paper's measurement campaign, in
    tabular form.

    For each loss level, a full TCP Reno connection runs over a simulated
    path; the trace analyzer then measures (p, RTT, T0) exactly as the
    paper's programs did, and the three models predict the send rate from
    those measurements alone.  The table reports measured vs predicted and
    the per-model average error across the sweep. *)

type point = {
  injected_p : float;  (** Bernoulli loss injected on the data path. *)
  observed_p : float;  (** Loss-indication frequency from the trace. *)
  avg_rtt : float;
  avg_t0 : float;
  measured : float;  (** Measured send rate, packets/s. *)
  full : float;
  approx : float;
  td_only : float;
}

type report = {
  points : point list;
  full_error : float;  (** Paper's average-error metric over the sweep. *)
  approx_error : float;
  td_only_error : float;
}

val generate :
  ?seed:int64 ->
  ?duration:float ->
  ?wm:int ->
  ?grid:float array ->
  ?jobs:int ->
  unit ->
  report
(** Defaults: 900-s connections, W_m 32, injected loss from 0.002 to 0.15
    (8 log-spaced points).  [jobs] worker domains run the sweep points in
    parallel; results are independent of [jobs]. *)

val print : Format.formatter -> report -> unit
