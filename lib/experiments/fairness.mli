(** TCP-friendliness validation: the end-to-end check of the paper's §I
    motivation.  An equation-paced (TFRC-style) flow shares a drop-tail
    bottleneck with TCP Reno flows; if the PFTK equation is a faithful
    model of Reno, the paced flow's goodput should sit near the Reno
    flows' — high Jain fairness, no starvation in either direction. *)

type scenario = {
  label : string;
  reno_flows : int;
  tfrc_flows : int;
  duration : float;
}

type outcome = {
  scenario : scenario;
  result : Pftk_tcp.Shared_bottleneck.result;
  mean_reno_goodput : float;
  mean_tfrc_goodput : float;  (** 0 when the scenario has no TFRC flows. *)
  friendliness_ratio : float;
      (** mean TFRC goodput / mean Reno goodput; 1.0 is perfectly
          friendly, 0 when not applicable. *)
}

val default_scenarios : scenario list
(** Reno-only baseline (3 flows), 3 Reno + 1 TFRC, 2 Reno + 2 TFRC. *)

val evaluate : ?seed:int64 -> scenario -> outcome

val generate :
  ?seed:int64 -> ?scenarios:scenario list -> ?jobs:int -> unit -> outcome list
(** [jobs] worker domains evaluate the scenarios in parallel; per-index
    seeds keep the outcomes independent of [jobs]. *)

val print : Format.formatter -> outcome list -> unit
