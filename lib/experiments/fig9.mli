(** Fig. 9: average prediction error of the three models on the 1-hour
    traces.

    For every path, the hour-long trace is split into 100-s intervals; for
    each interval the three models predict the packet count from the
    interval's observed loss frequency (RTT and T0 from the whole trace);
    the per-trace average error is the paper's
    [mean |predicted - observed| / observed].  Traces are printed in
    increasing order of TD-only error, as in the figure. *)

type entry = {
  label : string;  (** "sender-receiver". *)
  full_error : float;
  approx_error : float;
  td_only_error : float;
  intervals_used : int;
}

val generate : ?seed:int64 -> ?duration:float -> ?jobs:int -> unit -> entry list
(** Sorted by [td_only_error].  [jobs] worker domains simulate the traces
    in parallel; results are independent of [jobs]. *)

val entry_for :
  ?seed:int64 ->
  ?duration:float ->
  ?interval:float ->
  Pftk_dataset.Path_profile.t ->
  entry option
(** [None] when no interval had a usable loss frequency. *)

val print : Format.formatter -> title:string -> entry list -> unit
