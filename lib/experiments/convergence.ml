module Path_profile = Pftk_dataset.Path_profile
module Workload = Pftk_dataset.Workload
module Analyzer = Pftk_trace.Analyzer
module Predictor = Pftk_online.Predictor

type path_run = {
  profile : Path_profile.t;
  snapshots : Predictor.snapshot list;
  final : Analyzer.summary;
  final_prediction : Predictor.prediction option;
  p_converged_at : float option;
  rtt_converged_at : float option;
}

(* Earliest checkpoint from which the estimate stays within [tolerance]
   relative of the final value for the rest of the connection (a single
   early crossing does not count — the paper's point is that estimates
   settle, not that they graze the target). *)
let settled_at ~tolerance ~final ~value snapshots =
  if not (final > 0.) then None
  else begin
    let ok s = Float.abs (value s -. final) <= tolerance *. final in
    List.fold_left
      (fun settled s ->
        if ok s then
          match settled with Some _ -> settled | None -> Some s.Predictor.time
        else None)
      None snapshots
  end

let run_path ~seed ~duration ~interval ~tolerance profile =
  let snapshots = ref [] in
  let predictor =
    Predictor.create ~interval (Path_profile.params profile)
      ~on_snapshot:(fun s -> snapshots := s :: !snapshots)
  in
  let (_ : Workload.trace) =
    Workload.run_observed ~seed ~duration ~sink:(Predictor.sink predictor)
      profile
  in
  let snapshots = List.rev !snapshots in
  let final = Predictor.summary predictor in
  let last = Predictor.snapshot predictor in
  {
    profile;
    snapshots;
    final;
    final_prediction = last.Predictor.prediction;
    p_converged_at =
      settled_at ~tolerance ~final:final.Analyzer.observed_p
        ~value:(fun s -> s.Predictor.p)
        snapshots;
    rtt_converged_at =
      settled_at ~tolerance ~final:final.Analyzer.avg_rtt
        ~value:(fun s -> s.Predictor.rtt)
        snapshots;
  }

let generate ?(seed = 29L) ?(duration = 3600.) ?(interval = 100.)
    ?(tolerance = 0.1) ?(jobs = 1) () =
  if not (tolerance > 0.) then
    invalid_arg "Convergence.generate: tolerance must be positive";
  Pftk_parallel.mapi ~jobs
    (fun i profile ->
      run_path ~seed:(Int64.add seed (Int64.of_int i)) ~duration ~interval
        ~tolerance profile)
    Path_profile.all

let opt_time = function
  | Some t -> Printf.sprintf "%6.0f" t
  | None -> "     -"

let print ppf runs =
  Report.heading ppf
    "Streaming convergence: live estimates vs the final summary";
  Format.fprintf ppf "%-6s %-12s %8s %8s %9s %9s %9s %9s@." "Sender" "Receiver"
    "p_final" "rtt" "p_conv" "rtt_conv" "pred_full" "obs_rate";
  List.iter
    (fun r ->
      let pred =
        match r.final_prediction with
        | Some { Predictor.full; _ } -> Printf.sprintf "%9.2f" full
        | None -> "        -"
      in
      Format.fprintf ppf "%-6s %-12s %8.5f %8.4f %9s %9s %s %9.2f@."
        r.profile.Path_profile.sender r.profile.Path_profile.receiver
        r.final.Analyzer.observed_p r.final.Analyzer.avg_rtt
        (opt_time r.p_converged_at)
        (opt_time r.rtt_converged_at)
        pred r.final.Analyzer.send_rate)
    runs;
  let timed = List.filter_map (fun r -> r.p_converged_at) runs in
  (match timed with
  | [] -> Format.fprintf ppf "@.No path's p estimate settled within tolerance.@."
  | _ ->
      let n = List.length timed in
      let sum = List.fold_left ( +. ) 0. timed in
      Format.fprintf ppf
        "@.p settled within tolerance on %d of %d paths (mean settle time %.0f s).@."
        n (List.length runs) (sum /. float_of_int n));
  Format.fprintf ppf
    "Each checkpoint re-evaluates eq. (31)/(32) and (33) from the running estimates.@."
