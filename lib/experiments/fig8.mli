(** Fig. 8: the 100-second-connection experiments.

    For each of six sender-receiver pairs, 100 serially-initiated 100-s
    connections are simulated.  For every connection the loss frequency,
    RTT and T0 are measured from its own trace, and the measured packet
    count is compared with the proposed model's and the TD-only model's
    predictions — three aligned series per panel, indexed by trace
    number. *)

type sample = {
  index : int;
  p : float;  (** Per-trace observed loss frequency. *)
  measured : float;  (** Packets sent in the 100 s. *)
  full : float;  (** Proposed-model prediction. *)
  td_only : float;
}

type panel = {
  profile : Pftk_dataset.Path_profile.t;
  samples : sample list;  (** Traces without loss indications are skipped. *)
}

val generate : ?seed:int64 -> ?count:int -> ?jobs:int -> unit -> panel list
(** [count] connections per pair, default 100.  [jobs] worker domains
    build the panels in parallel; results are independent of [jobs]. *)

val panel_for :
  ?seed:int64 -> ?count:int -> ?jobs:int -> Pftk_dataset.Path_profile.t -> panel
(** [jobs] here parallelizes the panel's own 100-s batch instead (see
    {!Pftk_dataset.Workload.batch_100s}); don't combine an outer parallel
    {!generate} with inner [jobs] > 1. *)

val average_errors : panel -> float * float
(** (full-model error, TD-only error) under the paper's average-error
    metric, over the panel's samples. *)

val print : Format.formatter -> panel list -> unit
