(** Mean-field vs. packet-level cross-validation at a shared bottleneck.

    The mean-field backend claims the equilibrium of N homogeneous Reno
    flows for the cost of a fixed-point iteration; [netsim] computes the
    same scenario one packet at a time.  Where the packet-level simulation
    is affordable (N = 2..64) the two must agree — this family runs both
    sides on identical drop-tail bottleneck scenarios and reports mean
    per-flow goodput, loss and queue occupancy from each, with the
    relative goodput error that the test suite pins a tolerance on. *)

type scenario = {
  label : string;
  flows : int;  (** Reno population size. *)
  buffer : int;  (** Drop-tail bottleneck buffer, packets. *)
  bandwidth : float; [@pftk.unit "byte/s"]  (** Bottleneck bandwidth. *)
  one_way_delay : float; [@pftk.unit "s"]
  wire_bytes : int;  (** Bytes per packet on the wire (MSS + headers). *)
  duration : float; [@pftk.unit "s"]  (** Packet-level simulated time. *)
}

type row = {
  scenario : scenario;
  netsim_goodput : float; [@pftk.unit "pkt/s"]
      (** Mean per-flow delivered rate from the packet simulation. *)
  meanfield_goodput : float; [@pftk.unit "pkt/s"]
      (** {!Pftk_meanfield.Solver} equilibrium per-flow goodput. *)
  netsim_loss : float; [@pftk.unit "prob"]
  meanfield_loss : float; [@pftk.unit "prob"]
  netsim_queue : float; [@pftk.unit "pkt"]
  meanfield_queue : float; [@pftk.unit "pkt"]
  goodput_rel_err : float; [@pftk.unit "1"]
      (** [|meanfield - netsim| / netsim]. *)
}

val default_scenarios : scenario list
(** N = 2, 4, 8, 16, 32 and 64 flows on the {!Pftk_tcp.Shared_bottleneck}
    default path: 1.25 MB/s, 20 ms one-way, 64-packet buffer, 1500-byte
    packets. *)

val quick_scenarios : scenario list
(** N = 2, 8 and 32 with shorter simulated time, for smoke runs. *)

val evaluate : ?seed:int64 -> scenario -> row
(** One scenario, both sides; the seed drives only the packet-level
    simulation. *)

val generate :
  ?seed:int64 -> ?scenarios:scenario list -> ?jobs:int -> unit -> row list
(** All scenarios, fanned out over {!Pftk_parallel}; output is independent
    of [jobs]. *)

val print : Format.formatter -> row list -> unit
