(** Fig. 12: the closed-form full model against the numerically solved
    Markov model, at the paper's parameters (RTT 0.47 s, T0 3.2 s,
    W_m 12), plus the round-based Monte-Carlo as a third, independent
    reference. *)

type series = { label : string; points : (float * float) list }

type result = {
  params : Pftk_core.Params.t;
  full : series;
  markov : series;
  approx : series;
  monte_carlo : series;
  max_gap : float;
      (** max over the grid of |full - markov| / full — the "closeness of
          the match" the paper reports. *)
}

val generate :
  ?seed:int64 ->
  ?params:Pftk_core.Params.t ->
  ?grid:float array ->
  ?mc_duration:float ->
  ?jobs:int ->
  unit ->
  result
(** [jobs] worker domains run the Monte-Carlo grid points in parallel;
    each point seeds its own RNG from its index, so results are
    independent of [jobs]. *)

val print : Format.formatter -> result -> unit
