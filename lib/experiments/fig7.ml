module Path_profile = Pftk_dataset.Path_profile
module Workload = Pftk_dataset.Workload
module Analyzer = Pftk_trace.Analyzer
module Intervals = Pftk_trace.Intervals
open Pftk_core

type point = { p : float; packets : float; tag : string }

type panel = {
  profile : Path_profile.t;
  avg_rtt : float;
  avg_t0 : float;
  points : point list;
  full_curve : (float * float) list;
  approx_curve : (float * float) list;
  td_only_curve : (float * float) list;
}

(* The paper plots N_predicted = B(p) * interval for each model, with RTT
   and T0 taken from the whole trace. *)
let curves ~interval ~rtt ~t0 ~wm ~points =
  let p_lo =
    List.fold_left (fun acc pt -> if pt.p > 0. then Float.min acc pt.p else acc)
      1e-3 points
  in
  let grid = Sweep.logspace ~lo:(Float.max 1e-5 (p_lo /. 3.)) ~hi:0.9 ~n:50 in
  let params = Params.make ~rtt ~t0 ~wm () in
  let eval model = Sweep.series model grid
    |> List.map (fun { Sweep.p; rate } -> (p, rate *. interval))
  in
  ( eval (Full_model.send_rate params),
    eval (Approx_model.send_rate params),
    eval (Tdonly.send_rate ~rtt ~b:2) )

let panel_for ?(seed = 23L) ?(duration = 3600.) ?(interval = 100.) profile =
  let trace = Workload.run_for ~seed ~duration profile in
  let summary = Analyzer.summarize trace.Workload.recorder in
  let avg_rtt =
    if summary.Analyzer.avg_rtt > 0. then summary.Analyzer.avg_rtt
    else profile.Path_profile.rtt
  in
  let avg_t0 =
    if summary.Analyzer.avg_t0 > 0. then summary.Analyzer.avg_t0
    else profile.Path_profile.t0
  in
  let bins = Intervals.split ~width:interval trace.Workload.recorder in
  let points =
    List.filter_map
      (fun bin ->
        if bin.Intervals.packets_sent = 0 then None
        else
          Some
            {
              p = bin.Intervals.observed_p;
              packets = float_of_int bin.Intervals.packets_sent;
              tag = Intervals.classification_label bin.Intervals.classification;
            })
      bins
  in
  let full_curve, approx_curve, td_only_curve =
    curves ~interval ~rtt:avg_rtt ~t0:avg_t0 ~wm:profile.Path_profile.wm ~points
  in
  { profile; avg_rtt; avg_t0; points; full_curve; approx_curve; td_only_curve }

let generate ?(seed = 23L) ?duration ?interval ?(jobs = 1) () =
  Pftk_parallel.mapi ~jobs
    (fun i profile ->
      panel_for ~seed:(Int64.add seed (Int64.of_int i)) ?duration ?interval
        profile)
    Path_profile.fig7_paths

let print ppf panels =
  Report.heading ppf
    "Fig. 7: 1-hour traces, measured intervals vs model predictions";
  List.iter
    (fun panel ->
      Report.subheading ppf
        (Printf.sprintf "%s: RTT=%.3f T0=%.3f Wm=%d"
           (Path_profile.label panel.profile)
           panel.avg_rtt panel.avg_t0 panel.profile.Path_profile.wm);
      Format.fprintf ppf "# measured intervals: p packets tag@.";
      List.iter
        (fun pt -> Format.fprintf ppf "%.5f %.1f %s@." pt.p pt.packets pt.tag)
        panel.points;
      Report.series ppf ~label:"proposed (full)" panel.full_curve;
      Report.series ppf ~label:"proposed (approximate)" panel.approx_curve;
      Report.series ppf ~label:"TD only" panel.td_only_curve;
      Ascii_plot.render ppf ~x_label:"loss frequency p"
        ~y_label:"packets per interval"
        [
          { Ascii_plot.glyph = '*'; label = "proposed (full)";
            points = panel.full_curve };
          { Ascii_plot.glyph = '~'; label = "TD only";
            points = panel.td_only_curve };
          { Ascii_plot.glyph = 'o'; label = "measured intervals";
            points = List.map (fun pt -> (pt.p, pt.packets)) panel.points };
        ])
    panels
