module Path_profile = Pftk_dataset.Path_profile
module Workload = Pftk_dataset.Workload
module Analyzer = Pftk_trace.Analyzer
module Intervals = Pftk_trace.Intervals
module Error_metrics = Pftk_stats.Error_metrics
open Pftk_core

type entry = {
  label : string;
  full_error : float;
  approx_error : float;
  td_only_error : float;
  intervals_used : int;
}

let entry_for ?(seed = 31L) ?(duration = 3600.) ?(interval = 100.) profile =
  let trace = Workload.run_for ~seed ~duration profile in
  let summary = Analyzer.summarize trace.Workload.recorder in
  let rtt =
    if summary.Analyzer.avg_rtt > 0. then summary.Analyzer.avg_rtt
    else profile.Path_profile.rtt
  in
  let t0 =
    if summary.Analyzer.avg_t0 > 0. then summary.Analyzer.avg_t0
    else profile.Path_profile.t0
  in
  let params = Params.make ~rtt ~t0 ~wm:profile.Path_profile.wm () in
  let usable =
    Intervals.split ~width:interval trace.Workload.recorder
    |> List.filter (fun bin ->
           bin.Intervals.packets_sent > 0 && bin.Intervals.observed_p > 0.)
  in
  if usable = [] then None
  else begin
    let observed =
      Array.of_list
        (List.map (fun b -> float_of_int b.Intervals.packets_sent) usable)
    in
    let predict model =
      Array.of_list
        (List.map (fun b -> model b.Intervals.observed_p *. interval) usable)
    in
    let error model =
      Error_metrics.average_error ~predicted:(predict model) ~observed
    in
    Some
      {
        label = Path_profile.label profile;
        full_error = error (Full_model.send_rate params);
        approx_error = error (Approx_model.send_rate params);
        td_only_error = error (Tdonly.send_rate ~rtt ~b:2);
        intervals_used = List.length usable;
      }
  end

let generate ?(seed = 31L) ?duration ?(jobs = 1) () =
  Pftk_parallel.mapi ~jobs
    (fun i profile ->
      entry_for ~seed:(Int64.add seed (Int64.of_int i)) ?duration profile)
    Path_profile.all
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> Float.compare a.td_only_error b.td_only_error)

let print ppf ~title entries =
  Report.heading ppf title;
  Format.fprintf ppf "%-20s %10s %10s %10s %6s@." "Trace" "TD-only" "Full"
    "Approx" "Bins";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-20s %10.3f %10.3f %10.3f %6d@." e.label
        e.td_only_error e.full_error e.approx_error e.intervals_used)
    entries;
  let better =
    List.filter (fun e -> e.full_error < e.td_only_error) entries |> List.length
  in
  Format.fprintf ppf
    "@.Proposed (full) model beats TD-only on %d of %d traces.@." better
    (List.length entries)
