module SB = Pftk_tcp.Shared_bottleneck

type scenario = {
  label : string;
  reno_flows : int;
  tfrc_flows : int;
  duration : float;
}

type outcome = {
  scenario : scenario;
  result : SB.result;
  mean_reno_goodput : float;
  mean_tfrc_goodput : float;
  friendliness_ratio : float;
}

let default_scenarios =
  [
    { label = "3 reno (baseline)"; reno_flows = 3; tfrc_flows = 0; duration = 300. };
    { label = "3 reno + 1 tfrc"; reno_flows = 3; tfrc_flows = 1; duration = 300. };
    { label = "2 reno + 2 tfrc"; reno_flows = 2; tfrc_flows = 2; duration = 300. };
  ]

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let evaluate ?(seed = 59L) scenario =
  let specs =
    List.init scenario.reno_flows (fun i -> SB.reno (Printf.sprintf "reno-%d" (i + 1)))
    @ List.init scenario.tfrc_flows (fun i ->
          SB.tfrc (Printf.sprintf "tfrc-%d" (i + 1)))
  in
  let result = SB.run ~seed ~duration:scenario.duration specs in
  let goodputs label =
    List.filter_map
      (fun f -> if f.SB.kind_label = label then Some f.SB.goodput else None)
      result.SB.flows
  in
  let reno = mean (goodputs "reno") and tfrc = mean (goodputs "tfrc") in
  {
    scenario;
    result;
    mean_reno_goodput = reno;
    mean_tfrc_goodput = tfrc;
    friendliness_ratio = (if reno > 0. && tfrc > 0. then tfrc /. reno else 0.);
  }

let generate ?(seed = 59L) ?(scenarios = default_scenarios) ?(jobs = 1) () =
  Pftk_parallel.mapi ~jobs
    (fun i s -> evaluate ~seed:(Int64.add seed (Int64.of_int i)) s)
    scenarios

let print ppf outcomes =
  Report.heading ppf "TCP-friendliness at a shared bottleneck (Sec. I motivation)";
  List.iter
    (fun o ->
      Report.subheading ppf o.scenario.label;
      List.iter
        (fun (f : SB.flow_result) ->
          Format.fprintf ppf "  %-8s %-5s goodput %7.1f pkt/s  loss %.4f@."
            f.SB.name f.SB.kind_label f.SB.goodput f.SB.loss_rate)
        o.result.SB.flows;
      Report.kv ppf "bottleneck utilization"
        (Printf.sprintf "%.3f" o.result.SB.bottleneck_utilization);
      Report.kv ppf "Jain fairness"
        (Printf.sprintf "%.3f" o.result.SB.jain_fairness);
      if o.friendliness_ratio > 0. then
        Report.kv ppf "TFRC/Reno goodput ratio"
          (Printf.sprintf "%.2f" o.friendliness_ratio))
    outcomes
