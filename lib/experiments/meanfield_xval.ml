module SB = Pftk_tcp.Shared_bottleneck
module Solver = Pftk_meanfield.Solver
module Queue_law = Pftk_meanfield.Queue_law

type scenario = {
  label : string;
  flows : int;
  buffer : int;
  bandwidth : float;
  one_way_delay : float;
  wire_bytes : int;
  duration : float;
}

type row = {
  scenario : scenario;
  netsim_goodput : float;
  meanfield_goodput : float;
  netsim_loss : float;
  meanfield_loss : float;
  netsim_queue : float;
  meanfield_queue : float;
  goodput_rel_err : float;
}

let scenario_at ~duration flows =
  {
    label = Printf.sprintf "%d reno flows" flows;
    flows;
    buffer = 64;
    bandwidth = 1_250_000.;
    one_way_delay = 0.02;
    wire_bytes = 1500;
    duration;
  }

let default_scenarios = List.map (scenario_at ~duration:120.) [ 2; 4; 8; 16; 32; 64 ]
let quick_scenarios = List.map (scenario_at ~duration:40.) [ 2; 8; 32 ]

let evaluate ?(seed = 61L) s =
  let specs =
    List.init s.flows (fun i -> SB.reno (Printf.sprintf "reno-%d" (i + 1)))
  in
  let result =
    SB.run ~seed ~buffer:s.buffer ~bandwidth:s.bandwidth
      ~one_way_delay:s.one_way_delay ~duration:s.duration specs
  in
  let mean f =
    List.fold_left (fun acc r -> acc +. f r) 0. result.SB.flows
    /. float_of_int s.flows
  in
  let ns_goodput = mean (fun (r : SB.flow_result) -> r.SB.goodput) in
  let ns_loss = mean (fun (r : SB.flow_result) -> r.SB.loss_rate) in
  (* The mean-field twin: same path in packet units.  Reno's receiver
     delay-ACKs every second segment (b = 2) and advertises wm = 32. *)
  let capacity = s.bandwidth /. float_of_int s.wire_bytes in
  let cfg =
    {
      (Solver.default ~flows:s.flows ~capacity
         ~base_rtt:(2. *. s.one_way_delay)
         ~law:(Queue_law.drop_tail ~capacity:s.buffer))
      with
      Solver.wm = Pftk_tcp.Reno.default_config.Pftk_tcp.Reno.wm;
    }
  in
  let eq = Solver.solve cfg in
  {
    scenario = s;
    netsim_goodput = ns_goodput;
    meanfield_goodput = eq.Solver.per_flow_goodput;
    netsim_loss = ns_loss;
    meanfield_loss = eq.Solver.p;
    netsim_queue = result.SB.bottleneck_mean_queue;
    meanfield_queue = eq.Solver.queue;
    goodput_rel_err =
      (if ns_goodput > 0. then
         Float.abs (eq.Solver.per_flow_goodput -. ns_goodput) /. ns_goodput
       else Float.infinity);
  }

let generate ?(seed = 61L) ?(scenarios = default_scenarios) ?(jobs = 1) () =
  Pftk_parallel.mapi ~jobs
    (fun i s -> evaluate ~seed:(Int64.add seed (Int64.of_int i)) s)
    scenarios

let print ppf rows =
  Report.heading ppf
    "Mean-field vs netsim: N reno flows at a drop-tail bottleneck";
  Format.fprintf ppf
    "  %5s  %22s  %18s  %15s  %7s@." "flows" "goodput pkt/s (ns|mf)"
    "loss (ns|mf)" "queue (ns|mf)" "relerr";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %5d  %10.1f | %9.1f  %.4f | %.4f  %6.1f | %6.1f  %6.3f@."
        r.scenario.flows r.netsim_goodput r.meanfield_goodput r.netsim_loss
        r.meanfield_loss r.netsim_queue r.meanfield_queue r.goodput_rel_err)
    rows;
  let worst =
    List.fold_left (fun acc r -> Float.max acc r.goodput_rel_err) 0. rows
  in
  Report.kv ppf "worst per-flow goodput relative error"
    (Printf.sprintf "%.3f" worst)
