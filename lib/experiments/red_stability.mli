(** The RED stability boundary as a mean-field experiment family.

    Reynier's condition says a RED queue feeding N TCP flows is stable
    only when the feedback loop — drop-probability slope, averaging lag
    (the EWMA [weight]) and the one-RTT reaction delay — is gentle enough;
    past the boundary the queue settles into a limit cycle instead of an
    operating point.  Each cell of this family solves the mean-field
    equilibrium and then integrates {!Pftk_meanfield.Dynamics} to a
    stable/oscillating verdict, sweeping the EWMA weight (the gain axis),
    the link capacity and the population size.  Every cell is
    deterministic; the sweep fans out over {!Pftk_parallel} with output
    independent of [jobs]. *)

type cell = {
  label : string;
  flows : int;
  capacity : float; [@pftk.unit "pkt/s"]
  base_rtt : float; [@pftk.unit "s"]
  buffer : int;  (** RED hard limit, packets. *)
  min_threshold : float; [@pftk.unit "pkt"]
  max_threshold : float; [@pftk.unit "pkt"]
  max_probability : float; [@pftk.unit "prob"]
  weight : float; [@pftk.unit "1/pkt"]  (** EWMA gain — the swept axis. *)
}

type outcome = {
  cell : cell;
  equilibrium : Pftk_meanfield.Solver.equilibrium;
  dynamics : Pftk_meanfield.Dynamics.result;
  stable : bool;  (** [dynamics.verdict = Stable]. *)
}

val cell :
  ?base_rtt:float ->
  ?max_probability:float ->
  flows:int ->
  capacity:float ->
  weight:float ->
  unit ->
  cell
[@@pftk.unit "s -> prob -> _ -> pkt/s -> 1/pkt -> _ -> _"]
(** A cell on the canonical geometry: 100 ms base RTT, a one
    bandwidth-delay-product buffer, thresholds at 1/6 and 1/2 of it and
    [max_probability] 0.1 — so [weight], [capacity] and [flows] alone
    place the cell relative to the stability boundary. *)

val default_cells : cell list
(** A weight × capacity × population grid straddling the boundary: slow
    averaging (small weight) destabilizes fast links, and the test suite
    pins one cell from each side. *)

val quick_cells : cell list
(** A 4-cell subset (both verdicts represented) for smoke runs. *)

val evaluate : cell -> outcome
(** Solve + integrate one cell; purely deterministic. *)

val generate : ?cells:cell list -> ?jobs:int -> unit -> outcome list

val print : Format.formatter -> outcome list -> unit
