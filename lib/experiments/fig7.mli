(** Fig. 7: per-interval send rate vs loss frequency for six 1-hour traces,
    against the predictions of the proposed (full) model, the approximate
    model, and the "TD only" baseline of Mathis et al.

    Each panel divides its hour-long trace into 100-s intervals; every
    interval contributes one scatter point (observed loss frequency,
    packets sent) tagged TD/T0/T1/T2+ by the worst loss event inside it.
    The model curves are evaluated at the trace-wide average RTT and T0,
    exactly as the paper plots them. *)

type point = {
  p : float;
  packets : float;  (** Packets sent in the interval. *)
  tag : string;  (** TD / T0 / T1 / T2+ classification. *)
}

type panel = {
  profile : Pftk_dataset.Path_profile.t;
  avg_rtt : float;  (** Trace-wide, as shown in the subfigure title. *)
  avg_t0 : float;
  points : point list;
  full_curve : (float * float) list;  (** (p, packets per interval). *)
  approx_curve : (float * float) list;
  td_only_curve : (float * float) list;
}

val generate :
  ?seed:int64 ->
  ?duration:float ->
  ?interval:float ->
  ?jobs:int ->
  unit ->
  panel list
(** Defaults: 3600-s traces, 100-s intervals — 36 points per panel.
    [jobs] worker domains simulate the panels in parallel (per-index
    seeds keep the result independent of [jobs]). *)

val panel_for :
  ?seed:int64 ->
  ?duration:float ->
  ?interval:float ->
  Pftk_dataset.Path_profile.t ->
  panel

val print : Format.formatter -> panel list -> unit
