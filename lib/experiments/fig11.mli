(** Fig. 11 and the §IV RTT-window correlation study.

    The model assumes round duration is independent of window size.  §IV
    verifies this holds on the normal paths (correlation within
    [-0.1, 0.1]) but fails spectacularly behind a modem with a dedicated
    ISP buffer (correlation up to 0.97), where the model then overpredicts.

    Both scenarios run on the packet-level simulator: a wide-area path
    with a shared drop-tail bottleneck, and a 28.8 kbit/s modem link with
    a large dedicated buffer where queueing delay tracks the window almost
    perfectly. *)

type scenario_result = {
  name : string;
  correlation : float;  (** Pearson RTT-vs-flight. *)
  avg_rtt : float;
  avg_t0 : float;
  observed_p : float;
  measured_rate : float;  (** packets/s over the run. *)
  predicted_rate : float;  (** Full model at (observed_p, avg_rtt, avg_t0). *)
  intervals : (float * float) list;  (** Per-interval (p, packets). *)
}

val run_modem : ?seed:int64 -> ?duration:float -> unit -> scenario_result
(** The Fig. 11 path: 28.8 kbit/s bottleneck, dedicated 30-packet buffer,
    W_m 22, moderate random loss.  Expect a high RTT-window correlation and
    a model prediction that misses the measured rate badly (the paper
    observed overprediction; with our synthetic loss placement the flow
    exploits small-window/small-RTT phases and the model misses {e low} --
    either way the violated independence assumption is what breaks it). *)

val run_wide_area : ?seed:int64 -> ?duration:float -> unit -> scenario_result
(** A normal fast path with random loss; expect near-zero correlation. *)

val generate :
  ?seed:int64 ->
  ?wide_duration:float ->
  ?modem_duration:float ->
  ?jobs:int ->
  unit ->
  scenario_result list
(** Both scenarios — [run_wide_area] then [run_modem], in that order —
    simulated by up to [jobs] worker domains.  Omitting [seed] keeps each
    scenario's own default seed. *)

val print : Format.formatter -> scenario_result list -> unit
