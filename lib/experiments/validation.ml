module Connection = Pftk_tcp.Connection
module Analyzer = Pftk_trace.Analyzer
module Loss = Pftk_loss.Loss_process
open Pftk_core

type point = {
  injected_p : float;
  observed_p : float;
  avg_rtt : float;
  avg_t0 : float;
  measured : float;
  full : float;
  approx : float;
  td_only : float;
}

type report = {
  points : point list;
  full_error : float;
  approx_error : float;
  td_only_error : float;
}

let default_grid () = Sweep.logspace ~lo:0.002 ~hi:0.15 ~n:8

let point_for ~seed ~duration ~wm injected_p =
  let rng = Pftk_stats.Rng.create ~seed () in
  let scenario =
    {
      Connection.default_scenario with
      Connection.forward_bandwidth = 1_250_000.;
      reverse_bandwidth = 1_250_000.;
      forward_delay = 0.05;
      reverse_delay = 0.05;
      buffer = Pftk_netsim.Queue_discipline.drop_tail ~capacity:100;
      data_loss = Some (Loss.bernoulli rng ~p:injected_p);
      sender = { Pftk_tcp.Reno.default_config with wm };
    }
  in
  let result = Connection.run ~seed ~duration scenario in
  let s = Analyzer.summarize result.Connection.recorder in
  if s.Analyzer.loss_indications = 0 || s.Analyzer.avg_rtt <= 0. then None
  else begin
    let rtt = s.Analyzer.avg_rtt in
    let t0 = if s.Analyzer.avg_t0 > 0. then s.Analyzer.avg_t0 else 4. *. rtt in
    let params = Params.make ~rtt ~t0 ~wm () in
    let p = s.Analyzer.observed_p in
    Some
      {
        injected_p;
        observed_p = p;
        avg_rtt = rtt;
        avg_t0 = t0;
        measured = result.Connection.send_rate;
        full = Full_model.send_rate params p;
        approx = Approx_model.send_rate params p;
        td_only = Tdonly.send_rate ~rtt ~b:2 p;
      }
  end

let generate ?(seed = 83L) ?(duration = 900.) ?(wm = 32) ?grid ?(jobs = 1) () =
  let grid = match grid with Some g -> g | None -> default_grid () in
  let points =
    Array.to_list grid
    |> Pftk_parallel.mapi ~jobs (fun i p ->
           point_for ~seed:(Int64.add seed (Int64.of_int i)) ~duration ~wm p)
    |> List.filter_map Fun.id
  in
  let observed = Array.of_list (List.map (fun pt -> pt.measured) points) in
  let error pick =
    Pftk_stats.Error_metrics.average_error
      ~predicted:(Array.of_list (List.map pick points))
      ~observed
  in
  {
    points;
    full_error = error (fun pt -> pt.full);
    approx_error = error (fun pt -> pt.approx);
    td_only_error = error (fun pt -> pt.td_only);
  }

let print ppf report =
  Report.heading ppf
    "Model validation against the packet-level Reno simulator";
  Format.fprintf ppf "%-10s %-9s %-7s %-7s | %9s %9s %9s %9s@." "inject-p"
    "obs-p" "rtt" "t0" "measured" "full" "approx" "td-only";
  List.iter
    (fun pt ->
      Format.fprintf ppf "%-10.4f %-9.4f %-7.3f %-7.3f | %9.2f %9.2f %9.2f %9.2f@."
        pt.injected_p pt.observed_p pt.avg_rtt pt.avg_t0 pt.measured pt.full
        pt.approx pt.td_only)
    report.points;
  Report.kv ppf "avg error: full" (Printf.sprintf "%.3f" report.full_error);
  Report.kv ppf "avg error: approximate" (Printf.sprintf "%.3f" report.approx_error);
  Report.kv ppf "avg error: TD-only" (Printf.sprintf "%.3f" report.td_only_error)
