(** Streaming-estimation convergence over the Table II path catalog.

    Each path runs one calibrated saturated connection with a
    [Pftk_online.Predictor] attached recorder-free (no event buffering);
    the predictor checkpoints the running estimates of [p], [RTT] and
    [T0] and the model's predicted send rate every [interval] seconds —
    the paper's 100-s slicing.  Per path, the experiment reports when the
    live [p] and [RTT] estimates {e settle}: the earliest checkpoint from
    which they stay within [tolerance] (relative) of the final
    whole-connection summary. *)

type path_run = {
  profile : Pftk_dataset.Path_profile.t;
  snapshots : Pftk_online.Predictor.snapshot list;  (** Chronological. *)
  final : Pftk_trace.Analyzer.summary;
      (** Streaming summary at end of connection (equal to the post-hoc
          analyzer's, per the equivalence contract). *)
  final_prediction : Pftk_online.Predictor.prediction option;
  p_converged_at : float option;
      (** Earliest checkpoint time from which the [p] estimate stays
          within tolerance of the final value; [None] if it never
          settles (or the final value is zero). *)
  rtt_converged_at : float option;
}

val generate :
  ?seed:int64 ->
  ?duration:float ->
  ?interval:float ->
  ?tolerance:float ->
  ?jobs:int ->
  unit ->
  path_run list
(** Defaults: 3600-s connections, 100-s checkpoints, 10% relative
    tolerance.  [jobs] worker domains run the paths in parallel; each
    path seeds its own RNG stream from its index, so results do not
    depend on [jobs]. *)

val print : Format.formatter -> path_run list -> unit
