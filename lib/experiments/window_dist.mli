(** Stationary congestion-window distribution: a deeper Fig. 12-style
    check.  The Markov chain's stationary distribution over window sizes
    is compared against the empirical per-round window histogram of the
    Monte-Carlo simulator, and both means against eq. (13)'s E[W] (capped
    at W_m).  Close agreement here validates the chain's {e dynamics}, not
    just its long-run rate. *)

type result = {
  params : Pftk_core.Params.t;
  p : float;
  markov_dist : float array;  (** P[W = w], index w-1. *)
  simulated_dist : float array;  (** Empirical per-round frequencies. *)
  markov_mean : float;
  simulated_mean : float;
  model_e_w : float;  (** min(E[W_u], W_m) from eq. (13). *)
  total_variation : float;
      (** TV distance between the two distributions, in [0, 1]. *)
}

val generate :
  ?seed:int64 ->
  ?params:Pftk_core.Params.t ->
  ?p:float ->
  ?rounds:int ->
  ?jobs:int ->
  unit ->
  result
(** Defaults: the Fig. 12 parameters, p = 0.02, 200k simulated rounds.
    The rounds are simulated in fixed 8192-round chunks, each driven by
    its own stream split off a master RNG ({!Pftk_stats.Rng.split}), and
    [jobs] worker domains run the chunks in parallel.  The chunk layout
    depends only on [rounds], so the result is bit-identical for every
    [jobs] value.  Each chunk restarts its window walk from the initial
    window; with >= thousands of rounds per chunk the transient bias is
    far below the Monte-Carlo noise floor. *)

val print : Format.formatter -> result -> unit
