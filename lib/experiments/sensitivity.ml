open Pftk_core

type elasticity = {
  p : float;
  wrt_rtt : float;
  wrt_t0 : float;
  wrt_p : float;
  wrt_wm : float;
}

let log_derivative f x =
  let h = 0.01 in
  let up = f (x *. (1. +. h)) and down = f (x *. (1. -. h)) in
  (log up -. log down) /. (log (1. +. h) -. log (1. -. h))

let elasticities ?(params = Params.make ~rtt:0.2 ~t0:2. ~wm:32 ())
    ?(grid = Sweep.logspace ~lo:1e-3 ~hi:0.3 ~n:9) () =
  Array.to_list grid
  |> List.map (fun p ->
         let at_rtt rtt =
           Full_model.send_rate { params with Params.rtt } p
         in
         let at_t0 t0 = Full_model.send_rate { params with Params.t0 } p in
         let at_p p' = Full_model.send_rate params p' in
         (* W_m is an integer; use a +/- 25% two-point slope instead. *)
         let wm_lo = max 1 (int_of_float (float_of_int params.Params.wm *. 0.75)) in
         let wm_hi =
           max (wm_lo + 1) (int_of_float (float_of_int params.Params.wm *. 1.25))
         in
         let wrt_wm =
           (* log of the rate ratio, not a difference of logs: the pkt/s
              units cancel inside the ratio. *)
           log
             (Full_model.send_rate { params with Params.wm = wm_hi } p
             /. Full_model.send_rate { params with Params.wm = wm_lo } p)
           /. (log (float_of_int wm_hi) -. log (float_of_int wm_lo))
         in
         {
           p;
           wrt_rtt = log_derivative at_rtt params.Params.rtt;
           wrt_t0 = log_derivative at_t0 params.Params.t0;
           wrt_p = log_derivative at_p p;
           wrt_wm;
         })

let print ppf rows =
  Report.heading ppf "Input sensitivity of eq. (32): elasticities d log B / d log x";
  Format.fprintf ppf "%-10s %10s %10s %10s %10s@." "p" "RTT" "T0" "p" "Wm";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-10.4f %10.3f %10.3f %10.3f %10.3f@." e.p e.wrt_rtt
        e.wrt_t0 e.wrt_p e.wrt_wm)
    rows;
  Format.fprintf ppf
    "@.Reading: in the TD regime the theory predicts -1 (RTT) and -0.5 (p);@.";
  Format.fprintf ppf
    "as p grows, weight shifts from RTT onto T0 and p (timeout regime);@.";
  Format.fprintf ppf "Wm only matters while the window is receiver-limited.@."
