module Path_profile = Pftk_dataset.Path_profile
module Workload = Pftk_dataset.Workload
module Analyzer = Pftk_trace.Analyzer
open Pftk_core

type sample = {
  index : int;
  p : float;
  measured : float;
  full : float;
  td_only : float;
}

type panel = { profile : Path_profile.t; samples : sample list }

let duration = 100.

let sample_of_trace ~index ~(profile : Path_profile.t) summary =
  if summary.Analyzer.loss_indications = 0 || summary.Analyzer.packets_sent = 0
  then None
  else begin
    let p = summary.Analyzer.observed_p in
    let rtt =
      if summary.Analyzer.avg_rtt > 0. then summary.Analyzer.avg_rtt
      else profile.Path_profile.rtt
    in
    let t0 =
      if summary.Analyzer.avg_t0 > 0. then summary.Analyzer.avg_t0
      else profile.Path_profile.t0
    in
    let params = Params.make ~rtt ~t0 ~wm:profile.Path_profile.wm () in
    Some
      {
        index;
        p;
        measured = float_of_int summary.Analyzer.packets_sent;
        full = Full_model.send_rate params p *. duration;
        td_only = Tdonly.send_rate ~rtt ~b:2 p *. duration;
      }
  end

let panel_for ?(seed = 29L) ?count ?jobs profile =
  let traces = Workload.batch_100s ~seed ?count ?jobs profile in
  let samples =
    List.mapi
      (fun index trace ->
        sample_of_trace ~index ~profile
          (Analyzer.summarize trace.Workload.recorder))
      traces
    |> List.filter_map Fun.id
  in
  { profile; samples }

(* Parallelism lives at the panel level (it covers the per-path
   calibration as well as the batch); each panel's inner batch stays
   sequential so the domain counts don't multiply. *)
let generate ?(seed = 29L) ?count ?(jobs = 1) () =
  Pftk_parallel.mapi ~jobs
    (fun i profile ->
      panel_for ~seed:(Int64.add seed (Int64.of_int (1000 * i))) ?count profile)
    Path_profile.fig8_paths

let average_errors panel =
  let measured = Array.of_list (List.map (fun s -> s.measured) panel.samples) in
  let full = Array.of_list (List.map (fun s -> s.full) panel.samples) in
  let td = Array.of_list (List.map (fun s -> s.td_only) panel.samples) in
  if Array.length measured = 0 then (0., 0.)
  else
    ( Pftk_stats.Error_metrics.average_error ~predicted:full ~observed:measured,
      Pftk_stats.Error_metrics.average_error ~predicted:td ~observed:measured )

let print ppf panels =
  Report.heading ppf "Fig. 8: 100-second traces, measured vs model predictions";
  List.iter
    (fun panel ->
      let full_err, td_err = average_errors panel in
      Report.subheading ppf
        (Printf.sprintf "%s (%d usable traces; avg err: full=%.3f, TD only=%.3f)"
           (Path_profile.label panel.profile)
           (List.length panel.samples) full_err td_err);
      Format.fprintf ppf "# trace p measured proposed td_only@.";
      List.iter
        (fun s ->
          Format.fprintf ppf "%3d %.5f %8.1f %8.1f %8.1f@." s.index s.p
            s.measured s.full s.td_only)
        panel.samples)
    panels
