open Pftk_core

type series = { label : string; points : (float * float) list }

type result = {
  params : Params.t;
  full : series;
  markov : series;
  approx : series;
  monte_carlo : series;
  max_gap : float;
}

let paper_params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 ()

let to_points s = List.map (fun { Sweep.p; rate } -> (p, rate)) s

let generate ?(seed = 47L) ?(params = paper_params) ?grid
    ?(mc_duration = 30_000.) ?(jobs = 1) () =
  let grid =
    match grid with Some g -> g | None -> Sweep.logspace ~lo:1e-3 ~hi:0.5 ~n:30
  in
  let full = Sweep.series (Full_model.send_rate params) grid in
  let markov =
    Sweep.series (fun p -> Markov.send_rate (Markov.solve params p)) grid
  in
  let approx = Sweep.series (Approx_model.send_rate params) grid in
  let monte_carlo =
    Array.to_list grid
    |> Pftk_parallel.mapi ~jobs (fun i p ->
           let rng =
             Pftk_stats.Rng.create ~seed:(Int64.add seed (Int64.of_int i)) ()
           in
           let loss = Pftk_loss.Loss_process.round_correlated rng ~p in
           let r =
             Pftk_tcp.Round_sim.run ~seed ~duration:mc_duration ~loss
               (Pftk_tcp.Round_sim.config_of_params params)
           in
           (p, r.Pftk_tcp.Round_sim.send_rate))
  in
  let gaps =
    List.map2
      (fun f m -> Float.abs (f.Sweep.rate -. m.Sweep.rate) /. f.Sweep.rate)
      full markov
  in
  {
    params;
    full = { label = "proposed (full)"; points = to_points full };
    markov = { label = "markov (numerical)"; points = to_points markov };
    approx = { label = "proposed (approximate)"; points = to_points approx };
    monte_carlo = { label = "monte-carlo (round sim)"; points = monte_carlo };
    max_gap = List.fold_left Float.max 0. gaps;
  }

let print ppf result =
  Report.heading ppf "Fig. 12: Comparison with the Markov model";
  Report.kv ppf "parameters" (Format.asprintf "%a" Params.pp result.params);
  Report.kv ppf "max |full - markov| / full"
    (Printf.sprintf "%.3f" result.max_gap);
  List.iter
    (fun s -> Report.series ppf ~label:s.label s.points)
    [ result.full; result.markov; result.approx; result.monte_carlo ];
  Ascii_plot.render ppf ~x_label:"loss probability p" ~y_label:"send rate pkt/s"
    [
      { Ascii_plot.glyph = '*'; label = result.full.label; points = result.full.points };
      { Ascii_plot.glyph = 'm'; label = result.markov.label; points = result.markov.points };
      { Ascii_plot.glyph = '.'; label = result.monte_carlo.label; points = result.monte_carlo.points };
    ]
