module Path_profile = Pftk_dataset.Path_profile
module Workload = Pftk_dataset.Workload
module Analyzer = Pftk_trace.Analyzer
module Error_metrics = Pftk_stats.Error_metrics
open Pftk_core

let duration = 100.

let entry_for ?(seed = 37L) ?count profile =
  let traces = Workload.batch_100s ~seed ?count profile in
  let observations =
    List.filter_map
      (fun trace ->
        let s = Analyzer.summarize trace.Workload.recorder in
        if s.Analyzer.loss_indications = 0 || s.Analyzer.packets_sent = 0 then
          None
        else begin
          let rtt =
            if s.Analyzer.avg_rtt > 0. then s.Analyzer.avg_rtt
            else profile.Path_profile.rtt
          in
          let t0 =
            if s.Analyzer.avg_t0 > 0. then s.Analyzer.avg_t0
            else profile.Path_profile.t0
          in
          let params = Params.make ~rtt ~t0 ~wm:profile.Path_profile.wm () in
          let p = s.Analyzer.observed_p in
          Some
            ( float_of_int s.Analyzer.packets_sent,
              Full_model.send_rate params p *. duration,
              Approx_model.send_rate params p *. duration,
              Tdonly.send_rate ~rtt ~b:2 p *. duration )
        end)
      traces
  in
  if observations = [] then None
  else begin
    let pick f = Array.of_list (List.map f observations) in
    let observed = pick (fun (o, _, _, _) -> o) in
    let error predicted =
      Error_metrics.average_error ~predicted ~observed
    in
    Some
      {
        Fig9.label = Path_profile.label profile;
        full_error = error (pick (fun (_, f, _, _) -> f));
        approx_error = error (pick (fun (_, _, a, _) -> a));
        td_only_error = error (pick (fun (_, _, _, t) -> t));
        intervals_used = List.length observations;
      }
  end

(* The paper ran the 100-s campaign across its whole host set; use every
   profiled path plus the two Fig. 8-only pairs. *)
let paths () =
  Path_profile.all
  @ List.filter
      (fun (p : Path_profile.t) -> p.Path_profile.receiver <> "p5")
      Path_profile.extras

let generate ?(seed = 37L) ?count ?(jobs = 1) () =
  Pftk_parallel.mapi ~jobs
    (fun i profile ->
      entry_for ~seed:(Int64.add seed (Int64.of_int (1000 * i))) ?count profile)
    (paths ())
  |> List.filter_map Fun.id
  |> List.sort (fun a b -> Float.compare a.Fig9.td_only_error b.Fig9.td_only_error)

let print ppf entries =
  Fig9.print ppf ~title:"Fig. 10: Comparison of the models for 100-s traces"
    entries
