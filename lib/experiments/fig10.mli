(** Fig. 10: average prediction error of the three models on the 100-s
    traces.

    Like Fig. 9, but each observation is one whole 100-s connection and
    the models use that connection's own measured RTT and T0, as described
    in §III.  Runs over every profiled path (the paper's 100-s campaign
    covered its whole host set). *)

val generate : ?seed:int64 -> ?count:int -> ?jobs:int -> unit -> Fig9.entry list
(** Sorted by TD-only error.  [count] connections per pair (default 100).
    [jobs] worker domains cover the paths in parallel; results are
    independent of [jobs]. *)

val print : Format.formatter -> Fig9.entry list -> unit
