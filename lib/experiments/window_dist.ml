open Pftk_core

type result = {
  params : Params.t;
  p : float;
  markov_dist : float array;
  simulated_dist : float array;
  markov_mean : float;
  simulated_mean : float;
  model_e_w : float;
  total_variation : float;
}

(* Monte-Carlo rounds are simulated in fixed-size chunks so the work can
   fan out across domains.  Chunk layout depends only on [rounds], and the
   per-chunk streams are derived by splitting one master RNG in chunk
   order before any simulation starts — so the histogram is bit-identical
   for every [jobs] value. *)
let chunk_size = 8_192

let chunk_streams ~seed ~rounds =
  let chunks = (rounds + chunk_size - 1) / chunk_size in
  let master = Pftk_stats.Rng.create ~seed () in
  (* Built with an explicit loop: [split] advances the master stream, so
     derivation order must be the chunk order. *)
  let rec build i acc =
    if i = chunks then List.rev acc
    else begin
      let rng = Pftk_stats.Rng.split master in
      let sim_seed = Pftk_stats.Rng.bits64 master in
      let n = min chunk_size (rounds - (i * chunk_size)) in
      build (i + 1) ((rng, sim_seed, n) :: acc)
    end
  in
  build 0 []

let generate ?(seed = 89L) ?(params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 ())
    ?(p = 0.02) ?(rounds = 200_000) ?(jobs = 1) () =
  let solved = Markov.solve params p in
  let markov_dist = Markov.window_distribution solved in
  let wm = Array.length markov_dist in
  let sample_chunks =
    Pftk_parallel.map ~jobs
      (fun (rng, sim_seed, n) ->
        let loss = Pftk_loss.Loss_process.round_correlated rng ~p in
        Pftk_tcp.Round_sim.window_samples ~seed:sim_seed ~rounds:n ~loss
          (Pftk_tcp.Round_sim.config_of_params params))
      (chunk_streams ~seed ~rounds)
  in
  let counts = Array.make wm 0 in
  List.iter
    (Array.iter (fun w ->
         let idx = min (wm - 1) (max 0 (int_of_float (Float.round w) - 1)) in
         counts.(idx) <- counts.(idx) + 1))
    sample_chunks;
  let simulated_dist =
    Array.map (fun c -> float_of_int c /. float_of_int rounds) counts
  in
  let mean dist =
    let acc = ref 0. in
    Array.iteri (fun i m -> acc := !acc +. (float_of_int (i + 1) *. m)) dist;
    !acc
  in
  let tv =
    let acc = ref 0. in
    Array.iteri
      (fun i m -> acc := !acc +. Float.abs (m -. simulated_dist.(i)))
      markov_dist;
    !acc /. 2.
  in
  {
    params;
    p;
    markov_dist;
    simulated_dist;
    markov_mean = mean markov_dist;
    simulated_mean = mean simulated_dist;
    model_e_w =
      Float.min (float_of_int params.Params.wm) (Tdonly.e_w ~b:params.Params.b p);
    total_variation = tv;
  }

let print ppf r =
  Report.heading ppf "Stationary window distribution: Markov chain vs Monte-Carlo";
  Report.kv ppf "parameters" (Format.asprintf "%a" Params.pp r.params);
  Report.kv ppf "p" (Printf.sprintf "%g" r.p);
  Format.fprintf ppf "%-4s %10s %10s@." "w" "markov" "simulated";
  Array.iteri
    (fun i m ->
      Format.fprintf ppf "%-4d %10.4f %10.4f@." (i + 1) m r.simulated_dist.(i))
    r.markov_dist;
  Report.kv ppf "mean window (markov)" (Printf.sprintf "%.2f" r.markov_mean);
  Report.kv ppf "mean window (simulated)" (Printf.sprintf "%.2f" r.simulated_mean);
  Report.kv ppf "E[W] capped (eq. 13)" (Printf.sprintf "%.2f" r.model_e_w);
  Report.kv ppf "total variation distance" (Printf.sprintf "%.3f" r.total_variation)
