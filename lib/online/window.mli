(** Sliding time-window estimator: the mean/sum/count of the samples from
    the last [span] seconds, kept in a fixed-capacity ring buffer.

    This is the "most recent interval" view the paper takes when it
    re-estimates [(p, RTT, T0)] per 100-second slice (§III): unlike
    {!Ewma} it forgets sharply, and unlike a cumulative average it tracks
    non-stationary paths.  Memory is bounded by [capacity] regardless of
    stream length: when the ring fills within one span, the oldest sample
    is shed (and counted in {!dropped}). *)

type t

val create : ?capacity:int -> span:float -> unit -> t
[@@pftk.unit "_ -> s -> _ -> _"]
(** [capacity] defaults to 4096 samples.  Raises [Invalid_argument] when
    [span <= 0.] or [capacity < 1]. *)

val add : t -> time:float -> float -> unit
[@@pftk.unit "_ -> s -> _ -> _"]
(** Timestamps must be non-decreasing (the trace stream's contract). *)

val count : t -> now:float -> int
[@@pftk.unit "_ -> s -> _"]

val sum : t -> now:float -> float
[@@pftk.unit "_ -> s -> _"]

val mean : t -> now:float -> float option
[@@pftk.unit "_ -> s -> _"]
(** [None] when no sample is within [\[now - span, now\]]. *)

val span : t -> float
[@@pftk.unit "_ -> s"]

val capacity : t -> int

val dropped : t -> int
(** Samples shed by the capacity bound (0 in a well-sized window). *)
