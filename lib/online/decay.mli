(** Exponentially-decaying counters: event-rate estimation in O(1) state.

    A counter holds [sum over events of exp(-(now - t_i) / tau)] — each
    event contributes 1 that fades with time constant [tau].  The ratio of
    two counters driven by the same clock (loss indications over packets)
    is a decaying-window estimate of [p]; six counters make the decayed
    backoff histogram ([T0..T5+] shares that track the recent mix rather
    than the whole connection's).  Decay is applied lazily on access, so
    idle periods cost nothing. *)

type t

val create : tau:float -> unit -> t
[@@pftk.unit "s -> _ -> _"]
(** Raises [Invalid_argument] when [tau <= 0.]. *)

val bump : ?weight:float -> t -> time:float -> unit
[@@pftk.unit "1 -> _ -> s -> _"]
(** Add an event (default weight 1) at [time].  Timestamps must be
    non-decreasing; earlier timestamps are treated as [time = last]. *)

val value : t -> time:float -> float
[@@pftk.unit "_ -> s -> 1"]

val tau : t -> float
[@@pftk.unit "_ -> s"]

(** {1 Decayed histogram} *)

type hist

val create_hist : tau:float -> buckets:int -> hist
[@@pftk.unit "s -> _ -> _"]
val observe : hist -> time:float -> int -> unit
[@@pftk.unit "_ -> s -> _ -> _"]
(** Raises [Invalid_argument] when the bucket index is out of range. *)

val read : hist -> time:float -> float array
[@@pftk.unit "_ -> s -> 1"]

val total : hist -> time:float -> float
[@@pftk.unit "_ -> s -> 1"]

val buckets : hist -> int

val hist_tau : hist -> float
[@@pftk.unit "_ -> s"]
