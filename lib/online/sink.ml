module Event = Pftk_trace.Event
module Recorder = Pftk_trace.Recorder
module Serialize = Pftk_trace.Serialize

type t = Event.t -> unit

let null (_ : Event.t) = ()
let tee sinks event = List.iter (fun sink -> sink event) sinks
let filter pred sink event = if pred event then sink event

let map f sink event = sink (f event)

type counter = { mutable events : int; mutable last_time : float }

let counter () = { events = 0; last_time = 0. }

let counting c sink event =
  c.events <- c.events + 1;
  c.last_time <- event.Event.time;
  sink event

let events c = c.events
let last_time c = c.last_time

let to_recorder recorder { Event.time; kind } =
  Recorder.record recorder ~time kind

let to_channel oc event = Serialize.write_event oc event
