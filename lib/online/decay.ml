type t = { tau : float; mutable value : float; mutable last : float }

let check_tau tau =
  if not (tau > 0.) then invalid_arg "Decay: tau must be positive"

let create ~tau () =
  check_tau tau;
  { tau; value = 0.; last = 0. }

let age t ~time =
  if time > t.last then begin
    t.value <- t.value *. exp (-.(time -. t.last) /. t.tau);
    t.last <- time
  end

let bump ?(weight = 1.) t ~time =
  age t ~time;
  t.value <- t.value +. weight

let value t ~time =
  age t ~time;
  t.value

let tau t = t.tau

(* --- Decayed histogram ------------------------------------------------------ *)

type hist = { h_tau : float; counters : t array }

let create_hist ~tau ~buckets =
  check_tau tau;
  if buckets < 1 then invalid_arg "Decay.create_hist: buckets must be >= 1";
  { h_tau = tau; counters = Array.init buckets (fun _ -> create ~tau ()) }

let buckets h = Array.length h.counters

let observe h ~time bucket =
  if bucket < 0 || bucket >= Array.length h.counters then
    invalid_arg "Decay.observe: bucket out of range";
  bump h.counters.(bucket) ~time

let read h ~time = Array.map (fun c -> value c ~time) h.counters

let total h ~time =
  Array.fold_left (fun acc c -> acc +. value c ~time) 0. h.counters

let hist_tau h = h.h_tau
