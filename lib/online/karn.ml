module Event = Pftk_trace.Event

type t = {
  emit : float -> unit;
  send_time : (int, float) Hashtbl.t;
  tainted : (int, unit) Hashtbl.t;
  mutable highest_ack : int;
  mutable samples : int;
  mutable sum : float;
}

let create ?(on_sample = fun (_ : float) -> ()) () =
  {
    emit = on_sample;
    send_time = Hashtbl.create 512;
    tainted = Hashtbl.create 64;
    highest_ack = 0;
    samples = 0;
    sum = 0.;
  }

(* Mirrors Analyzer.karn_rtt_samples, one event at a time: first
   transmissions are stamped; a cumulative ACK matches every newly covered
   segment, skipping any that was ever retransmitted (Karn's rule); matched
   segments are forgotten, so live state is bounded by the flight size. *)
let push t { Event.time; kind } =
  match kind with
  | Event.Segment_sent { seq; retransmission; _ } ->
      if retransmission then Hashtbl.replace t.tainted seq ()
      else if not (Hashtbl.mem t.send_time seq) then
        Hashtbl.replace t.send_time seq time
  | Event.Ack_received { ack } ->
      if ack > t.highest_ack then begin
        for seq = t.highest_ack to ack - 1 do
          (match Hashtbl.find_opt t.send_time seq with
          | Some sent when not (Hashtbl.mem t.tainted seq) ->
              let sample = time -. sent in
              t.samples <- t.samples + 1;
              t.sum <- t.sum +. sample;
              t.emit sample
          | Some _ | None -> ());
          Hashtbl.remove t.send_time seq;
          Hashtbl.remove t.tainted seq
        done;
        t.highest_ack <- ack
      end
  | Event.Timer_fired _ | Event.Fast_retransmit_triggered _
  | Event.Rtt_sample _ | Event.Round_started _ | Event.Connection_closed ->
      ()

let samples t = t.samples
let sum t = t.sum
let mean t = if t.samples = 0 then None else Some (t.sum /. float_of_int t.samples)
let outstanding t = Hashtbl.length t.send_time + Hashtbl.length t.tainted
