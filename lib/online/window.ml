type t = {
  span : float;
  capacity : int;
  times : float array;
  values : float array;
  mutable head : int;  (* index of the oldest retained sample *)
  mutable len : int;
  mutable sum : float;
  mutable dropped : int;
}

let create ?(capacity = 4096) ~span () =
  if not (span > 0.) then invalid_arg "Window.create: span must be positive";
  if capacity < 1 then invalid_arg "Window.create: capacity must be >= 1";
  {
    span;
    capacity;
    times = Array.make capacity 0.;
    values = Array.make capacity 0.;
    head = 0;
    len = 0;
    sum = 0.;
    dropped = 0;
  }

let drop_oldest t =
  t.sum <- t.sum -. t.values.(t.head);
  t.head <- (t.head + 1) mod t.capacity;
  t.len <- t.len - 1

let evict t ~now =
  while t.len > 0 && t.times.(t.head) < now -. t.span do
    drop_oldest t
  done

let add t ~time x =
  evict t ~now:time;
  if t.len = t.capacity then begin
    (* Full ring inside the span: shed the oldest sample so memory stays
       bounded no matter the event rate; the count is reported so callers
       can widen the capacity if precision matters. *)
    drop_oldest t;
    t.dropped <- t.dropped + 1
  end;
  let slot = (t.head + t.len) mod t.capacity in
  t.times.(slot) <- time;
  t.values.(slot) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x

let count t ~now =
  evict t ~now;
  t.len

let sum t ~now =
  evict t ~now;
  t.sum

let mean t ~now =
  evict t ~now;
  if t.len = 0 then None else Some (t.sum /. float_of_int t.len)

let span t = t.span
let capacity t = t.capacity
let dropped t = t.dropped
