(** Event-sink combinators: the plumbing between a producer
    ([Recorder.subscribe], [Serialize.iter_file], a live simulation) and
    any number of streaming consumers ({!Summary.sink},
    {!Predictor.sink}, a trace file, another recorder).

    A sink is just [Event.t -> unit]; these helpers compose them without
    allocating per event. *)

type t = Pftk_trace.Event.t -> unit

val null : t
(** Discards every event. *)

val tee : t list -> t
(** Delivers each event to every sink, in list order. *)

val filter : (Pftk_trace.Event.t -> bool) -> t -> t
(** [filter pred sink] forwards only events satisfying [pred]. *)

val map : (Pftk_trace.Event.t -> Pftk_trace.Event.t) -> t -> t
(** [map f sink] forwards [f event]. *)

(** {1 Counting} *)

type counter

val counter : unit -> counter
val counting : counter -> t -> t
(** [counting c sink] forwards every event, tallying the count and the
    last timestamp into [c]. *)

val events : counter -> int
val last_time : counter -> float
[@@pftk.unit "_ -> s"]

(** {1 Terminal sinks} *)

val to_recorder : Pftk_trace.Recorder.t -> t
(** Re-records into a recorder (e.g. to buffer a filtered sub-stream). *)

val to_channel : out_channel -> t
(** Writes each event in the {!Pftk_trace.Serialize} line format. *)
