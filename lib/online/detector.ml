module Event = Pftk_trace.Event
module Analyzer = Pftk_trace.Analyzer

type mode =
  | Ground_truth
  | Infer of { dup_ack_threshold : int; min_timeout_gap : float }

let infer ?(dup_ack_threshold = 3) ?(min_timeout_gap = 0.15) () =
  if dup_ack_threshold < 1 then
    invalid_arg "Detector.infer: dup_ack_threshold must be >= 1";
  if not (min_timeout_gap > 0.) then
    invalid_arg "Detector.infer: min_timeout_gap must be positive";
  Infer { dup_ack_threshold; min_timeout_gap }

(* The mutable float state lives in its own all-float record: the
   compiler gives [floats] the flat (unboxed) float representation, so
   the per-event stores below are plain writes.  In the mixed record
   [t] each float store would box (one allocation per trace event),
   which rule F2 flags. *)
type floats = {
  mutable seq_at : float;  (* start time of the open timeout sequence *)
  mutable seq_first : float;  (* its first firing gap (rto) *)
  mutable last_activity : float;
}

type t = {
  mode : mode;
  emit : Analyzer.indication -> unit;
  fl : floats;
  (* Open timeout sequence, flattened from an option so per-event
     updates never allocate: [seq_count = 0] means no sequence is open
     and the [fl.seq_*] fields are meaningless. *)
  mutable seq_count : int;
  mutable emitted : int;
  (* Inference-mode duplicate-ACK state. *)
  mutable highest_ack : int;
  mutable dup_ack : int;
  mutable dup_count : int;
}

let create ?(on_indication = fun (_ : Analyzer.indication) -> ()) mode =
  {
    mode;
    emit = on_indication;
    fl = { seq_at = 0.; seq_first = 0.; last_activity = 0. };
    seq_count = 0;
    emitted = 0;
    highest_ack = -1;
    dup_ack = -1;
    dup_count = 0;
  }

let[@pftk.zero_alloc] close t =
  if t.seq_count > 0 then begin
    let at = t.fl.seq_at
    and timeouts = t.seq_count
    and first_timer = t.fl.seq_first in
    t.seq_count <- 0;
    t.emitted <- t.emitted + 1;
    (* One indication record per *completed* timeout sequence: this is
       the delivery API itself, amortized over the whole sequence of
       events, not a per-event allocation. *)
    (t.emit (Analyzer.To { at; timeouts; first_timer }) [@lint.allow "F2"])
  end

let[@pftk.zero_alloc] emit_td t at =
  t.emitted <- t.emitted + 1;
  (* Same deal: one record per detected loss indication. *)
  (t.emit (Analyzer.Td { at }) [@lint.allow "F2"])

(* Mirrors Analyzer.ground_truth_indications, one event at a time. *)
let[@pftk.zero_alloc] push_ground_truth t { Event.time; kind } =
  match kind with
  | Event.Fast_retransmit_triggered _ ->
      close t;
      emit_td t time
  | Event.Timer_fired { backoff; rto } ->
      if t.seq_count > 0 && backoff = t.seq_count + 1 then
        t.seq_count <- t.seq_count + 1
      else begin
        close t;
        t.fl.seq_at <- time;
        t.fl.seq_first <- rto;
        t.seq_count <- 1
      end
  | Event.Ack_received _ | Event.Segment_sent _ | Event.Rtt_sample _
  | Event.Round_started _ | Event.Connection_closed ->
      ()

(* Mirrors Analyzer.infer_indications, one event at a time. *)
let[@pftk.zero_alloc] push_infer t ~dup_ack_threshold ~min_timeout_gap
    { Event.time; kind } =
  match kind with
  | Event.Ack_received { ack } ->
      if ack > t.highest_ack then begin
        (* Cumulative progress ends any ongoing timeout sequence. *)
        close t;
        t.highest_ack <- ack;
        t.dup_ack <- ack;
        t.dup_count <- 0
      end
      else if ack = t.dup_ack then t.dup_count <- t.dup_count + 1
      else begin
        t.dup_ack <- ack;
        t.dup_count <- 1
      end;
      t.fl.last_activity <- time
  | Event.Segment_sent { seq; retransmission; _ } ->
      if retransmission then begin
        let gap = time -. t.fl.last_activity in
        if seq = t.dup_ack && t.dup_count >= dup_ack_threshold then begin
          close t;
          emit_td t time;
          t.dup_count <- 0
        end
        else if gap >= min_timeout_gap then begin
          if t.seq_count > 0 then t.seq_count <- t.seq_count + 1
          else begin
            t.fl.seq_at <- time;
            t.fl.seq_first <- gap;
            t.seq_count <- 1
          end
        end
        (* else: recovery-burst retransmission, not a new indication *)
      end;
      t.fl.last_activity <- time
  | Event.Timer_fired _ | Event.Fast_retransmit_triggered _
  | Event.Rtt_sample _ | Event.Round_started _ | Event.Connection_closed ->
      ()

let[@pftk.zero_alloc] push t event =
  match t.mode with
  | Ground_truth -> push_ground_truth t event
  | Infer { dup_ack_threshold; min_timeout_gap } ->
      push_infer t ~dup_ack_threshold ~min_timeout_gap event

let pending t =
  if t.seq_count > 0 then
    Some
      (Analyzer.To
         {
           at = t.fl.seq_at;
           timeouts = t.seq_count;
           first_timer = t.fl.seq_first;
         })
  else None

let flush t = close t
let emitted t = t.emitted
