module Event = Pftk_trace.Event
module Analyzer = Pftk_trace.Analyzer

type mode =
  | Ground_truth
  | Infer of { dup_ack_threshold : int; min_timeout_gap : float }

let infer ?(dup_ack_threshold = 3) ?(min_timeout_gap = 0.15) () =
  if dup_ack_threshold < 1 then
    invalid_arg "Detector.infer: dup_ack_threshold must be >= 1";
  if not (min_timeout_gap > 0.) then
    invalid_arg "Detector.infer: min_timeout_gap must be positive";
  Infer { dup_ack_threshold; min_timeout_gap }

type t = {
  mode : mode;
  emit : Analyzer.indication -> unit;
  (* Open timeout sequence: (start time, firing count, first gap). *)
  mutable open_seq : (float * int * float) option;
  mutable emitted : int;
  (* Inference-mode duplicate-ACK and idle-gap state. *)
  mutable highest_ack : int;
  mutable dup_ack : int;
  mutable dup_count : int;
  mutable last_activity : float;
}

let create ?(on_indication = fun (_ : Analyzer.indication) -> ()) mode =
  {
    mode;
    emit = on_indication;
    open_seq = None;
    emitted = 0;
    highest_ack = -1;
    dup_ack = -1;
    dup_count = 0;
    last_activity = 0.;
  }

let close t =
  match t.open_seq with
  | Some (at, count, first_timer) ->
      t.open_seq <- None;
      t.emitted <- t.emitted + 1;
      t.emit (Analyzer.To { at; timeouts = count; first_timer })
  | None -> ()

let emit_td t at =
  t.emitted <- t.emitted + 1;
  t.emit (Analyzer.Td { at })

(* Mirrors Analyzer.ground_truth_indications, one event at a time. *)
let push_ground_truth t { Event.time; kind } =
  match kind with
  | Event.Fast_retransmit_triggered _ ->
      close t;
      emit_td t time
  | Event.Timer_fired { backoff; rto } -> begin
      match t.open_seq with
      | Some (at, count, first_timer) when backoff = count + 1 ->
          t.open_seq <- Some (at, count + 1, first_timer)
      | _ ->
          close t;
          t.open_seq <- Some (time, 1, rto)
    end
  | Event.Ack_received _ | Event.Segment_sent _ | Event.Rtt_sample _
  | Event.Round_started _ | Event.Connection_closed ->
      ()

(* Mirrors Analyzer.infer_indications, one event at a time. *)
let push_infer t ~dup_ack_threshold ~min_timeout_gap { Event.time; kind } =
  match kind with
  | Event.Ack_received { ack } ->
      if ack > t.highest_ack then begin
        (* Cumulative progress ends any ongoing timeout sequence. *)
        close t;
        t.highest_ack <- ack;
        t.dup_ack <- ack;
        t.dup_count <- 0
      end
      else if ack = t.dup_ack then t.dup_count <- t.dup_count + 1
      else begin
        t.dup_ack <- ack;
        t.dup_count <- 1
      end;
      t.last_activity <- time
  | Event.Segment_sent { seq; retransmission; _ } ->
      if retransmission then begin
        let gap = time -. t.last_activity in
        if seq = t.dup_ack && t.dup_count >= dup_ack_threshold then begin
          close t;
          emit_td t time;
          t.dup_count <- 0
        end
        else if gap >= min_timeout_gap then begin
          match t.open_seq with
          | Some (at, count, first_timer) ->
              t.open_seq <- Some (at, count + 1, first_timer)
          | None -> t.open_seq <- Some (time, 1, gap)
        end
        (* else: recovery-burst retransmission, not a new indication *)
      end;
      t.last_activity <- time
  | Event.Timer_fired _ | Event.Fast_retransmit_triggered _
  | Event.Rtt_sample _ | Event.Round_started _ | Event.Connection_closed ->
      ()

let push t event =
  match t.mode with
  | Ground_truth -> push_ground_truth t event
  | Infer { dup_ack_threshold; min_timeout_gap } ->
      push_infer t ~dup_ack_threshold ~min_timeout_gap event

let pending t =
  match t.open_seq with
  | Some (at, count, first_timer) ->
      Some (Analyzer.To { at; timeouts = count; first_timer })
  | None -> None

let flush t = close t
let emitted t = t.emitted
