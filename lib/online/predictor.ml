module Event = Pftk_trace.Event
module Analyzer = Pftk_trace.Analyzer
module Params = Pftk_core.Params
module Full_model = Pftk_core.Full_model
module Approx_model = Pftk_core.Approx_model

type prediction = { full : float; approx : float }

type snapshot = {
  time : float;
  packets_sent : int;
  observed_rate : float;
  p : float;
  rtt : float;
  t0 : float;
  p_decayed : float option;
  rtt_ewma : float option;
  rtt_windowed : float option;
  prediction : prediction option;
}

type t = {
  params : Params.t;
  interval : float;
  emit : snapshot -> unit;
  summary : Summary.t;
  rtt_ewma : Ewma.t;
  rtt_window : Window.t;
  packet_decay : Decay.t;
  indication_decay : Decay.t;
  backoff_decay : Decay.hist;
  mutable last_time : float;
  mutable next_mark : float;
  mutable snapshots : int;
}

let create ?(mode = `Ground_truth) ?dup_ack_threshold ?min_timeout_gap
    ?(interval = 100.) ?(on_snapshot = fun (_ : snapshot) -> ())
    (params : Params.t) =
  Params.validate params;
  if not (interval > 0.) then
    invalid_arg "Predictor.create: interval must be positive";
  (* The decaying estimators forget with a time constant of two
     checkpoint intervals: long enough to smooth over individual loss
     events, short enough to track the per-100s drift the paper's
     interval analysis looks at. *)
  let tau = 2. *. interval in
  let packet_decay = Decay.create ~tau () in
  let indication_decay = Decay.create ~tau () in
  let backoff_decay = Decay.create_hist ~tau ~buckets:6 in
  let on_indication indication =
    let time = Analyzer.indication_time indication in
    Decay.bump indication_decay ~time;
    match indication with
    | Analyzer.Td _ -> ()
    | Analyzer.To { timeouts; _ } ->
        Decay.observe backoff_decay ~time (min (timeouts - 1) 5)
  in
  {
    params;
    interval;
    emit = on_snapshot;
    summary =
      Summary.create ~mode ?dup_ack_threshold ?min_timeout_gap ~on_indication
        ();
    rtt_ewma = Ewma.create ();
    rtt_window = Window.create ~span:interval ();
    packet_decay;
    indication_decay;
    backoff_decay;
    last_time = 0.;
    next_mark = interval;
    snapshots = 0;
  }

(* Estimates from the cumulative summary, with the suite's usual fallback
   for T0: before the first timeout there is no T0 sample, so the RFC 6298
   stand-in 4*RTT applies. *)
let estimates summary =
  let p = summary.Analyzer.observed_p in
  let rtt = summary.Analyzer.avg_rtt in
  let t0 =
    if summary.Analyzer.avg_t0 > 0. then summary.Analyzer.avg_t0 else 4. *. rtt
  in
  (p, rtt, t0)

(* The model is only defined on 0 < p < 1, rtt > 0, t0 > 0; outside that
   domain (a loss-free or sample-free prefix) there is no prediction yet. *)
let predict_at t ~p ~rtt ~t0 =
  if p > 0. && p < 1. && rtt > 0. && t0 > 0. then begin
    let params = { t.params with Params.rtt; t0 } in
    Some
      {
        full = Full_model.send_rate params p;
        approx = Approx_model.send_rate params p;
      }
  end
  else None

let snapshot_at t ~time =
  let summary = Summary.current t.summary in
  let p, rtt, t0 = estimates summary in
  let packets = Decay.value t.packet_decay ~time in
  let indications = Decay.value t.indication_decay ~time in
  {
    time;
    packets_sent = summary.Analyzer.packets_sent;
    observed_rate = summary.Analyzer.send_rate;
    p;
    rtt;
    t0;
    p_decayed = (if packets > 0. then Some (indications /. packets) else None);
    rtt_ewma = Ewma.value t.rtt_ewma;
    rtt_windowed = Window.mean t.rtt_window ~now:time;
    prediction = predict_at t ~p ~rtt ~t0;
  }

let push t event =
  let time = event.Event.time in
  (* Checkpoints fire for every interval boundary crossed up to this
     event, evaluated at the boundary time — the stream-side mirror of the
     paper's fixed 100-s slicing. *)
  while time >= t.next_mark do
    let mark = t.next_mark in
    t.snapshots <- t.snapshots + 1;
    t.next_mark <- t.next_mark +. t.interval;
    t.emit (snapshot_at t ~time:mark)
  done;
  t.last_time <- time;
  (match event.Event.kind with
  | Event.Segment_sent _ -> Decay.bump t.packet_decay ~time
  | Event.Rtt_sample { sample; _ } ->
      Ewma.update t.rtt_ewma sample;
      Window.add t.rtt_window ~time sample
  | Event.Ack_received _ | Event.Timer_fired _
  | Event.Fast_retransmit_triggered _ | Event.Round_started _
  | Event.Connection_closed ->
      ());
  Summary.push t.summary event

let sink t = push t
let snapshot t = snapshot_at t ~time:t.last_time
let summary t = Summary.current t.summary
let decayed_backoff t = Decay.read t.backoff_decay ~time:t.last_time
let snapshots_emitted t = t.snapshots
let interval t = t.interval
let params t = t.params

let pp_snapshot ppf s =
  let opt = function
    | Some v -> Printf.sprintf "%.4f" v
    | None -> "-"
  in
  Format.fprintf ppf
    "t=%8.1f pkts=%8d rate=%8.2f p=%.5f rtt=%.4f t0=%.3f p~=%s rtt~=%s %s"
    s.time s.packets_sent s.observed_rate s.p s.rtt s.t0 (opt s.p_decayed)
    (opt s.rtt_ewma)
    (match s.prediction with
    | Some { full; approx } ->
        Printf.sprintf "pred-full=%.2f pred-approx=%.2f" full approx
    | None -> "pred=-")
