(** Streaming loss-indication detector: the single-pass port of
    [Trace.Analyzer]'s post-hoc passes.  Feeding a trace event-by-event
    through {!push} emits exactly the indication sequence the
    corresponding [Analyzer] pass would return on the complete array —
    in the same order — plus a {!pending} view of the one piece of open
    state (an unfinished timeout sequence) a prefix can have.

    Invariant (property-tested): for every event-array prefix,
    [emitted indications @ pending] equals
    [Analyzer.ground_truth_indications prefix] /
    [Analyzer.infer_indications prefix].  State is O(1). *)

type mode =
  | Ground_truth
      (** Consume the sender's own [Timer_fired] /
          [Fast_retransmit_triggered] events. *)
  | Infer of { dup_ack_threshold : int; min_timeout_gap : float }
      (** Reconstruct indications from [Segment_sent] / [Ack_received]
          alone, as from a raw packet trace. *)

val infer : ?dup_ack_threshold:int -> ?min_timeout_gap:float -> unit -> mode
[@@pftk.unit "_ -> s -> _ -> _"]
(** [Infer] with the analyzer's defaults (3 duplicate ACKs, 0.15 s idle
    gap) and the analyzer's argument validation. *)

type t

val create : ?on_indication:(Pftk_trace.Analyzer.indication -> unit) -> mode -> t
(** Closed indications are delivered to [on_indication] in chronological
    order, each exactly once. *)

val push : t -> Pftk_trace.Event.t -> unit

val pending : t -> Pftk_trace.Analyzer.indication option
(** The still-open timeout sequence as it would be reported if the trace
    ended now; [None] when no sequence is open.  (TD indications are
    never pending — they are emitted the moment they are detected.) *)

val flush : t -> unit
(** End of stream: close and emit the pending sequence, if any. *)

val emitted : t -> int
(** Indications emitted so far (excludes {!pending}). *)
