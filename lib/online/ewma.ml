type t = { gain : float; mutable value : float option }

let create ?(gain = 0.125) () =
  if not (0. < gain && gain <= 1.) then
    invalid_arg "Ewma.create: gain outside (0, 1]";
  { gain; value = None }

let update t x =
  t.value <-
    (match t.value with
    | None -> Some x
    | Some v -> Some (((1. -. t.gain) *. v) +. (t.gain *. x)))

let value t = t.value
let value_or t ~default = match t.value with Some v -> v | None -> default
let gain t = t.gain
let reset t = t.value <- None
