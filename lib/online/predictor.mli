(** Live PFTK prediction: a {!Summary} plus the smoothed estimators,
    re-evaluating the full model (eq. 31/32) and the approximation
    (eq. 33) as the connection runs.

    At every checkpoint-interval boundary (default 100 s, the paper's
    slicing) the predictor emits a {!snapshot} pairing the observed send
    rate so far with the model's prediction from the streaming estimates
    of [p], [RTT] and [T0] — the predicted-vs-observed time series the
    convergence experiment and [pftk live] plot.  Alongside the cumulative
    estimates it tracks an EWMA and a sliding-window RTT and an
    exponentially-decaying [p], so recent behaviour is visible next to
    the whole-connection averages. *)

type prediction = {
  full : float; [@pftk.unit "pkt/s"]  (** Full model, eq. (32), packets/s. *)
  approx : float; [@pftk.unit "pkt/s"]
  (** Approximation, eq. (33), packets/s. *)
}

type snapshot = {
  time : float; [@pftk.unit "s"]
  (** Checkpoint time (an interval boundary, or "now"). *)
  packets_sent : int;
  observed_rate : float; [@pftk.unit "pkt/s"]
  (** Cumulative packets / duration. *)
  p : float; [@pftk.unit "prob"]  (** Cumulative loss-indication rate. *)
  rtt : float; [@pftk.unit "s"]  (** Cumulative average RTT. *)
  t0 : float; [@pftk.unit "s"]
  (** Average first-timer duration, or [4 * rtt] before the
      first timeout (RFC 6298 stand-in). *)
  p_decayed : float option; [@pftk.unit "prob"]
      (** Decaying-window [p]: ratio of the indication and packet decay
          counters; [None] before the first packet. *)
  rtt_ewma : float option; [@pftk.unit "s"]
  (** EWMA (gain 1/8) of RTT samples. *)
  rtt_windowed : float option; [@pftk.unit "s"]
  (** Mean over the last interval's samples. *)
  prediction : prediction option;
      (** [None] while the estimates are outside the model's domain
          (no loss yet, or no RTT sample yet). *)
}

type t

val create :
  ?mode:[ `Ground_truth | `Infer ] ->
  ?dup_ack_threshold:int ->
  ?min_timeout_gap:float ->
  ?interval:float ->
  ?on_snapshot:(snapshot -> unit) ->
  Pftk_core.Params.t ->
  t
[@@pftk.unit "_ -> _ -> s -> s -> _ -> _ -> _"]
(** [create params] keeps [params.b] and [params.wm] fixed (they are path
    facts, not estimated) and replaces [rtt]/[t0] with the streaming
    estimates at each evaluation.  [interval] (default 100 s, must be
    positive) sets the checkpoint spacing; [on_snapshot] hears each
    boundary snapshot in order.  Raises [Invalid_argument] on invalid
    [params] or a non-positive [interval]. *)

val push : t -> Pftk_trace.Event.t -> unit
(** Feed one event.  Crossing one or more interval boundaries first emits
    the snapshot(s) for those boundaries, evaluated at the boundary
    time. *)

val sink : t -> Pftk_trace.Event.t -> unit
(** [sink t] is [push t], shaped for [Recorder.subscribe]. *)

val snapshot : t -> snapshot
(** A snapshot at the time of the last event seen (not emitted to
    [on_snapshot]). *)

val summary : t -> Pftk_trace.Analyzer.summary
(** The underlying streaming summary ({!Summary.current}). *)

val decayed_backoff : t -> float array
[@@pftk.unit "_ -> 1"]
(** The six decayed backoff-histogram shares (T0..T5+) as of the last
    event. *)

val snapshots_emitted : t -> int

val interval : t -> float
[@@pftk.unit "_ -> s"]
val params : t -> Pftk_core.Params.t

val pp_snapshot : Format.formatter -> snapshot -> unit
