module Event = Pftk_trace.Event
module Analyzer = Pftk_trace.Analyzer

(* Closed-indication tallies, updated by the detector callback (the
   detector's pending sequence is folded in at query time). *)
type tallies = {
  mutable td : int;
  to_by_backoff : int array;
  mutable first_timer_sum : float;
  mutable first_timer_count : int;
  mutable closed : int;
}

type t = {
  mode : [ `Ground_truth | `Infer ];
  detector : Detector.t;
  karn : Karn.t;
  tallies : tallies;
  mutable events : int;
  mutable last_time : float;
  mutable packets : int;
  (* Ground-truth RTT accumulation, in arrival order. *)
  mutable rtt_sum : float;
  mutable rtt_count : int;
}

let bucket_of timeouts = min (timeouts - 1) 5

let record_indication tallies indication =
  tallies.closed <- tallies.closed + 1;
  match indication with
  | Analyzer.Td _ -> tallies.td <- tallies.td + 1
  | Analyzer.To { timeouts; first_timer; _ } ->
      let b = bucket_of timeouts in
      tallies.to_by_backoff.(b) <- tallies.to_by_backoff.(b) + 1;
      tallies.first_timer_sum <- tallies.first_timer_sum +. first_timer;
      tallies.first_timer_count <- tallies.first_timer_count + 1

let create ?(mode = `Ground_truth) ?dup_ack_threshold ?min_timeout_gap
    ?(on_indication = fun (_ : Analyzer.indication) -> ()) () =
  let tallies =
    {
      td = 0;
      to_by_backoff = Array.make 6 0;
      first_timer_sum = 0.;
      first_timer_count = 0;
      closed = 0;
    }
  in
  let detector_mode =
    match mode with
    | `Ground_truth -> Detector.Ground_truth
    | `Infer -> Detector.infer ?dup_ack_threshold ?min_timeout_gap ()
  in
  {
    mode;
    detector =
      Detector.create
        ~on_indication:(fun i ->
          record_indication tallies i;
          on_indication i)
        detector_mode;
    karn = Karn.create ();
    tallies;
    events = 0;
    last_time = 0.;
    packets = 0;
    rtt_sum = 0.;
    rtt_count = 0;
  }

let push t event =
  t.events <- t.events + 1;
  t.last_time <- event.Event.time;
  if Event.is_send event then t.packets <- t.packets + 1;
  (match (t.mode, event.Event.kind) with
  | `Ground_truth, Event.Rtt_sample { sample; _ } ->
      t.rtt_sum <- t.rtt_sum +. sample;
      t.rtt_count <- t.rtt_count + 1
  | `Ground_truth, _ -> ()
  | `Infer, _ -> Karn.push t.karn event);
  Detector.push t.detector event

let sink t = push t
let events_seen t = t.events
let mode t = t.mode

let current t =
  (* Fold the detector's open timeout sequence in provisionally, so the
     result equals Analyzer.summarize over exactly the events seen so far
     (the post-hoc pass closes open sequences at the end of the array
     too). *)
  let to_by_backoff = Array.copy t.tallies.to_by_backoff in
  let first_timer_sum = ref t.tallies.first_timer_sum in
  let first_timer_count = ref t.tallies.first_timer_count in
  let indications = ref t.tallies.closed in
  (match Detector.pending t.detector with
  | Some (Analyzer.To { timeouts; first_timer; _ }) ->
      incr indications;
      let b = bucket_of timeouts in
      to_by_backoff.(b) <- to_by_backoff.(b) + 1;
      first_timer_sum := !first_timer_sum +. first_timer;
      incr first_timer_count
  | Some (Analyzer.Td _) | None -> ());
  let duration = if t.events = 0 then 0. else t.last_time in
  let rtt_sum, rtt_count =
    match t.mode with
    | `Ground_truth -> (t.rtt_sum, t.rtt_count)
    | `Infer -> (Karn.sum t.karn, Karn.samples t.karn)
  in
  {
    Analyzer.duration;
    packets_sent = t.packets;
    loss_indications = !indications;
    td_count = t.tallies.td;
    to_by_backoff;
    observed_p =
      (if t.packets = 0 then 0.
       else float_of_int !indications /. float_of_int t.packets);
    avg_rtt = (if rtt_count = 0 then 0. else rtt_sum /. float_of_int rtt_count);
    avg_t0 =
      (if !first_timer_count = 0 then 0.
       else !first_timer_sum /. float_of_int !first_timer_count);
    send_rate =
      (if duration > 0. then float_of_int t.packets /. duration else 0.);
  }
