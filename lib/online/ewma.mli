(** Exponentially-weighted moving average: the RFC 6298 / TFRC-style
    smoother, seeded by its first sample.

    [v <- (1 - gain) v + gain x]; O(1) state.  The streaming estimators
    use it for the responsive (recent-history) view of RTT and T0, next
    to the cumulative averages that reproduce the post-hoc analyzer. *)

type t

val create : ?gain:float -> unit -> t
[@@pftk.unit "1 -> _ -> _"]
(** [gain] defaults to 0.125 (RFC 6298's alpha).  Raises
    [Invalid_argument] unless [0 < gain <= 1]. *)

val update : t -> float -> unit
[@@pftk.unit "_ -> _ -> _"]
(** The first sample initializes the average exactly (no zero bias). *)

val value : t -> float option
[@@pftk.unit "_ -> _"]
(** [None] before the first sample. *)

val value_or : t -> default:float -> float
[@@pftk.unit "_ -> _ -> _"]

val gain : t -> float
[@@pftk.unit "_ -> 1"]
val reset : t -> unit
