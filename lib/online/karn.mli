(** Streaming Karn RTT sampler: single-pass port of
    [Trace.Analyzer.karn_rtt_samples].  First-transmission segments are
    matched to the first cumulative ACK covering them; any segment that
    was ever retransmitted is never timed (Karn's algorithm).

    The sample sequence delivered to [on_sample] is identical — same
    values, same order — to the array the post-hoc pass returns on the
    complete trace.  Matched and superseded segments are dropped as the
    cumulative ACK advances, so live state is bounded by the number of
    in-flight segments ({!outstanding}), not the trace length. *)

type t

val create : ?on_sample:(float -> unit) -> unit -> t
[@@pftk.unit "_ -> _ -> _"]
val push : t -> Pftk_trace.Event.t -> unit

val samples : t -> int
(** Samples produced so far. *)

val sum : t -> float
[@@pftk.unit "_ -> s"]

val mean : t -> float option
[@@pftk.unit "_ -> s"]
(** Arithmetic mean of the samples so far, accumulated in arrival order
    (bit-identical to the post-hoc mean of the same prefix); [None]
    before the first sample. *)

val outstanding : t -> int
(** Segments currently tracked (the bounded-memory witness). *)
