(** The streaming counterpart of [Trace.Analyzer.summarize]: consume
    events one at a time (in O(1) state — a {!Detector}, a {!Karn}
    matcher, and a dozen counters) and produce, at any moment, the same
    [Analyzer.summary] the post-hoc pass would compute over the events
    seen so far.

    Equivalence contract (enforced by the streaming/post-hoc equivalence
    suite, [test_online.exe test equivalence]): for every prefix of every
    trace, {!current} matches [Analyzer.summarize] field-for-field —
    {b exactly} for [duration], [packets_sent], [loss_indications],
    [td_count], [to_by_backoff], [observed_p], [send_rate] and [avg_rtt],
    and within 1e-9 relative for [avg_t0] (the post-hoc pass happens to
    sum first-timer durations in reverse order; the multiset is
    identical, only float rounding differs).

    Degenerate streams are total, like the (robust) post-hoc analyzer:
    no events, zero duration, or no RTT samples yield zeros, never
    NaN or an exception. *)

type t

val create :
  ?mode:[ `Ground_truth | `Infer ] ->
  ?dup_ack_threshold:int ->
  ?min_timeout_gap:float ->
  ?on_indication:(Pftk_trace.Analyzer.indication -> unit) ->
  unit ->
  t
[@@pftk.unit "_ -> _ -> s -> _ -> _ -> _"]
(** Same defaults and argument validation as [Analyzer.summarize]:
    mode [`Ground_truth]; in [`Infer] mode RTT comes from streaming Karn
    matching and the threshold/gap options apply.  [on_indication] hears
    each closed indication once, in order, after it is tallied (the
    {!Predictor} feeds its decaying estimators from it). *)

val push : t -> Pftk_trace.Event.t -> unit

val sink : t -> Pftk_trace.Event.t -> unit
(** [sink t] is [push t], shaped for [Recorder.subscribe]. *)

val current : t -> Pftk_trace.Analyzer.summary
(** The summary of the events seen so far, open timeout sequence folded
    in provisionally. *)

val events_seen : t -> int
val mode : t -> [ `Ground_truth | `Infer ]
