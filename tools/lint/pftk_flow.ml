(* Command-line front end: [pftk_flow DIR...] runs the interprocedural
   F1-F4 analysis over every .cmt/.cmti under the given roots (default:
   lib bin bench examples). Roots are looked up both as given and under
   _build/default, so the tool works from the build context (the @flow
   rule) and from the source root (developers, the bench gate). Prints
   findings as file:line:col [rule] message, or a JSON array with
   --format=json, and exits non-zero if any survive. *)

let () =
  Pftk_findings.run_cli ~tool:"pftk-flow"
    ~default_roots:[ "lib"; "bin"; "bench"; "examples" ]
    ~analyze:(fun roots ->
      let paths = Pftk_findings.expand_build_roots roots in
      match Pftk_flow_engine.cmt_files paths with
      | [] ->
          Error
            (Printf.sprintf
               "no .cmt/.cmti files under %s (run `dune build @check` first)"
               (String.concat " " roots))
      | cmts ->
          Ok
            ( Pftk_flow_engine.analyze_paths paths,
              Printf.sprintf "%d compilation units" (List.length cmts) ))
