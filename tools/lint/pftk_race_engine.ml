(* pftk-race: typed analysis over the .cmt/.cmti binary annotations dune
   emits. Loads every compilation unit under the given roots with
   [Cmt_format.read_cmt], builds a cross-module table of type
   declarations (pass 1), then walks each Typedtree with
   [Tast_iterator] enforcing R1-R4 (pass 2). See the .mli for the rule
   definitions. *)

open Typedtree
module F = Pftk_findings

let split_canonical = F.split_canonical
let strip_stdlib = F.strip_stdlib

(* [Hashtbl.t] and [Stdlib.Hashtbl.t] as one spelling. *)
let head_of_path p =
  String.concat "." (strip_stdlib (split_canonical (Path.name p)))

let type_to_string ty =
  match Format.asprintf "%a" Printtyp.type_expr ty with
  | s -> s
  | exception _ -> "<type>"

(* --- Run state ------------------------------------------------------------- *)

type decl_info = {
  d_unit : string;  (* canonical unit the declaration lives in *)
  d_mutable : bool;  (* has a mutable (possibly inline) record field *)
  d_components : Types.type_expr list;  (* field/argument/manifest types *)
}

type state = {
  decls : (string, decl_info) Hashtbl.t;  (* canonical dotted name -> decl *)
  exported : (string, (string, unit) Hashtbl.t) Hashtbl.t;
      (* canonical unit -> toplevel value names in its interface *)
  mutable findings : F.finding list;
  allows : F.Allow.t;  (* active [@lint.allow] rules *)
}

let push st attrs = F.Allow.push st.allows attrs
let pop st rules = F.Allow.pop st.allows rules

let report st ~file (loc : Location.t) rule message =
  if not (F.Allow.active st.allows rule) then
    st.findings <- F.finding_of_loc ~file loc rule message :: st.findings

(* --- Transitive mutability ------------------------------------------------- *)

let builtin_mutable =
  [
    "ref";
    "array";
    "bytes";
    "floatarray";
    "Bytes.t";
    "Hashtbl.t";
    "Buffer.t";
    "Queue.t";
    "Stack.t";
    "Atomic.t";
    "Mutex.t";
    "Condition.t";
    "Semaphore.Counting.t";
    "Semaphore.Binary.t";
    "Random.State.t";
    "Domain.t";
    "Weak.t";
  ]

let lookup_decl st ~unit head =
  let candidates = [ head; unit ^ "." ^ head ] in
  List.find_map
    (fun key ->
      match Hashtbl.find_opt st.decls key with
      | Some d -> Some (key, d)
      | None -> None)
    candidates

(* Conservative structural walk: arrows are opaque (a closure result is
   the closure author's problem, checked at its own capture site), type
   variables are immutable, known constructors recurse through their
   declaration (fields, constructor arguments, manifest) and their type
   arguments, unknown constructors through arguments only. *)
let rec type_mutable st ~unit visited ty =
  match Types.get_desc ty with
  | Types.Ttuple tys -> List.exists (type_mutable st ~unit visited) tys
  | Types.Tpoly (t, _) -> type_mutable st ~unit visited t
  | Types.Tconstr (p, args, _) ->
      let head = head_of_path p in
      List.mem head builtin_mutable
      || List.exists (type_mutable st ~unit visited) args
      || (match lookup_decl st ~unit head with
         | Some (key, d) when not (List.mem key visited) ->
             d.d_mutable
             || List.exists
                  (type_mutable st ~unit:d.d_unit (key :: visited))
                  d.d_components
         | _ -> false)
  | _ -> false

(* --- Pass 1: type declarations and exported names -------------------------- *)

let info_of_decl unit (td : Types.type_declaration) =
  let of_labels m0 cs0 lds =
    List.fold_left
      (fun (m, cs) (ld : Types.label_declaration) ->
        let m =
          m
          ||
          match ld.ld_mutable with
          | Asttypes.Mutable -> true
          | Asttypes.Immutable -> false
        in
        (m, ld.ld_type :: cs))
      (m0, cs0) lds
  in
  let m, comps =
    match td.type_kind with
    | Types.Type_record (lds, _) -> of_labels false [] lds
    | Types.Type_variant (cds, _) ->
        List.fold_left
          (fun (m, cs) (cd : Types.constructor_declaration) ->
            match cd.cd_args with
            | Types.Cstr_tuple tys -> (m, tys @ cs)
            | Types.Cstr_record lds -> of_labels m cs lds)
          (false, []) cds
    | Types.Type_abstract | Types.Type_open -> (false, [])
  in
  let comps =
    match td.type_manifest with Some t -> t :: comps | None -> comps
  in
  { d_unit = unit; d_mutable = m; d_components = comps }

let add_decl st unit prefix (td : Typedtree.type_declaration) =
  let key = String.concat "." ((unit :: prefix) @ [ Ident.name td.typ_id ]) in
  Hashtbl.replace st.decls key (info_of_decl unit td.typ_type)

let rec decls_of_structure st unit prefix (str : structure) =
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_type (_, tds) -> List.iter (add_decl st unit prefix) tds
      | Tstr_module mb -> decls_of_module_binding st unit prefix mb
      | Tstr_recmodule mbs ->
          List.iter (decls_of_module_binding st unit prefix) mbs
      | _ -> ())
    str.str_items

and decls_of_module_binding st unit prefix mb =
  match mb.mb_name.Location.txt with
  | None -> ()
  | Some name -> decls_of_module_expr st unit (prefix @ [ name ]) mb.mb_expr

and decls_of_module_expr st unit prefix me =
  match me.mod_desc with
  | Tmod_structure s -> decls_of_structure st unit prefix s
  | Tmod_constraint (me, _, _, _) -> decls_of_module_expr st unit prefix me
  | _ -> ()

let rec decls_of_signature st unit prefix (sg : signature) =
  List.iter
    (fun (item : signature_item) ->
      match item.sig_desc with
      | Tsig_type (_, tds) -> List.iter (add_decl st unit prefix) tds
      | Tsig_module md -> (
          match (md.md_name.Location.txt, md.md_type.mty_desc) with
          | Some name, Tmty_signature s ->
              decls_of_signature st unit (prefix @ [ name ]) s
          | _ -> ())
      | _ -> ())
    sg.sig_items

let record_exports st unit (sg : signature) =
  let set = Hashtbl.create 16 in
  List.iter
    (fun (item : signature_item) ->
      match item.sig_desc with
      | Tsig_value vd -> Hashtbl.replace set (Ident.name vd.val_id) ()
      | _ -> ())
    sg.sig_items;
  Hashtbl.replace st.exported unit set

(* --- R1: mutable captures in worker closures ------------------------------- *)

(* The fan-out entry points. [map]/[mapi]/[init] must resolve through
   the Pftk_parallel wrapper; [Pool.submit] is matched on the [Pool]
   component so the internal submission sites inside pftk_parallel.ml
   itself (where the path prints without the library prefix) are
   covered too. *)
let trigger_of_callee fn =
  match fn.exp_desc with
  | Texp_ident (p, _, _) -> (
      let parts = split_canonical (Path.name p) in
      match List.rev parts with
      | ("map" | "mapi" | "init") :: _ when List.mem "Pftk_parallel" parts ->
          Some (String.concat "." parts)
      | "submit" :: rest when List.mem "Pool" rest ->
          Some (String.concat "." parts)
      | _ -> None)
  | _ -> None

(* Free identifiers of [closure] whose type contains mutable structure:
   collect every locally bound ident (patterns, for-loop indices,
   function parameters) and every used [Pident], then keep the used \
   bound ones. Module-level values of other units are [Pdot] references
   — those are R2's territory. *)
let mutable_captures st ~unit closure =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let uses : (Ident.t * expression) list ref = ref [] in
  let add_id id = Hashtbl.replace bound (Ident.unique_name id) () in
  let binders : type k. k general_pattern -> unit =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, _) -> add_id id
    | Tpat_alias (_, id, _) -> add_id id
    | _ -> ()
  in
  let super = Tast_iterator.default_iterator in
  let pat_it : type k. Tast_iterator.iterator -> k general_pattern -> unit =
   fun it p ->
    binders p;
    super.pat it p
  in
  let expr_it it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> uses := (id, e) :: !uses
    | Texp_for (id, _, _, _, _, _) -> add_id id
    | Texp_function { param; _ } -> add_id param
    | _ -> ());
    super.expr it e
  in
  let it = { super with pat = pat_it; expr = expr_it } in
  it.expr it closure;
  let seen = Hashtbl.create 8 in
  List.rev !uses
  |> List.filter (fun (id, _) -> not (Hashtbl.mem bound (Ident.unique_name id)))
  |> List.filter (fun (id, _) ->
         if Hashtbl.mem seen (Ident.unique_name id) then false
         else begin
           Hashtbl.replace seen (Ident.unique_name id) ();
           true
         end)
  |> List.filter (fun (_, e) -> type_mutable st ~unit [] e.exp_type)

(* --- R3: polymorphic comparison, typed ------------------------------------- *)

(* An external value whose scheme is ['a -> 'a -> bool/int/'a] with both
   arguments the *same* type variable: [=], [<>], [==], [compare],
   [min], [max], and any alias or functor instance thereof. Local
   ([Pident]) definitions are the caller's own monomorphic helpers, and
   the four ordering operators are exempt to match L1 (float ordering is
   idiomatic model code; aliasing an ordering operator under another
   name still trips the shape test at the alias site). *)
let is_poly_compare_use path (vd : Types.value_description) =
  (match path with Path.Pident _ -> false | _ -> true)
  && (match List.rev (split_canonical (Path.name path)) with
     | ("<" | ">" | "<=" | ">=") :: _ -> false
     | _ -> true)
  &&
  let is_tvar t =
    match Types.get_desc t with Types.Tvar _ -> true | _ -> false
  in
  match Types.get_desc vd.Types.val_type with
  | Types.Tarrow (Asttypes.Nolabel, a1, r1, _) -> (
      match Types.get_desc r1 with
      | Types.Tarrow (Asttypes.Nolabel, a2, r2, _) ->
          is_tvar a1 && is_tvar a2
          && Types.eq_type a1 a2
          && (match Types.get_desc r2 with
             | Types.Tconstr (p, [], _) -> (
                 match Path.name p with "bool" | "int" -> true | _ -> false)
             | Types.Tvar _ -> Types.eq_type r2 a1
             | _ -> false)
      | _ -> false)
  | _ -> false

(* --- R4: domain checks in lib/core entry points ---------------------------- *)

let watched_names = [ "p"; "rtt"; "t0" ]

let is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> String.equal (Path.name p) "float"
  | _ -> false

(* Every [Pident] mentioned anywhere in [e]. *)
let idents_of e =
  let acc : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let super = Tast_iterator.default_iterator in
  let expr_it it (e : expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        Hashtbl.replace acc (Ident.unique_name id) ()
    | _ -> ());
    super.expr it e
  in
  let it = { super with expr = expr_it } in
  it.expr it e;
  acc

let rec is_raising e =
  match e.exp_desc with
  | Texp_apply (fn, _) -> (
      match fn.exp_desc with
      | Texp_ident (p, _, _) -> (
          match List.rev (strip_stdlib (split_canonical (Path.name p))) with
          | ("invalid_arg" | "failwith" | "raise" | "raise_notrace") :: _ ->
              true
          | _ -> false)
      | _ -> false)
  | Texp_sequence (_, e2) -> is_raising e2
  | Texp_let (_, _, body) -> is_raising body
  | _ -> false

let is_guard_call e =
  match e.exp_desc with
  | Texp_apply (fn, _) -> (
      match fn.exp_desc with
      | Texp_ident (p, _, _) -> (
          match List.rev (split_canonical (Path.name p)) with
          | last :: _ ->
              String.equal last "validate"
              || String.length last >= 5 && String.sub last 0 5 = "check"
          | [] -> false)
      | _ -> false)
  | _ -> false

(* Shallow, function-local guard detection.  One walk follows the
   binding's spine — nested single-case [fun] levels (collecting watched
   float parameters named [p]/[rtt]/[t0], including those behind
   optional-argument wrappers), then the body's prefix of sequences,
   lets and raising conditionals.  A guard expression (a
   [check*]/[validate] call, or an [if] with a raising branch) protects
   every watched parameter it mentions — directly, or through a
   let-bound carrier built from watched parameters (so
   [let t = { rtt; t0; _ } in validate t] counts for [rtt] and [t0]). *)
let r4_binding st ~file name loc expr =
  let guarded : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let carriers : (string, Ident.t list) Hashtbl.t = Hashtbl.create 4 in
  let watched = ref [] in
  let watched_in e =
    let ids = idents_of e in
    let direct =
      List.filter (fun id -> Hashtbl.mem ids (Ident.unique_name id)) !watched
    in
    let via_carriers =
      Hashtbl.fold
        (fun c ws acc -> if Hashtbl.mem ids c then ws @ acc else acc)
        carriers []
    in
    direct @ via_carriers
  in
  let note e =
    let guards =
      is_guard_call e
      ||
      match e.exp_desc with
      | Texp_ifthenelse (_, th, el) ->
          is_raising th
          || (match el with Some el -> is_raising el | None -> false)
      | _ -> false
    in
    if guards then
      List.iter
        (fun id -> Hashtbl.replace guarded (Ident.unique_name id) ())
        (watched_in e)
  in
  let rec walk e =
    match e.exp_desc with
    | Texp_function { cases = [ c ]; _ } when Option.is_none c.c_guard ->
        (match c.c_lhs.pat_desc with
        | Tpat_var (id, _)
          when List.mem (Ident.name id) watched_names
               && is_float c.c_lhs.pat_type ->
            watched := !watched @ [ id ]
        | _ -> ());
        walk c.c_rhs
    | Texp_sequence (e1, e2) ->
        note e1;
        walk e2
    | Texp_let (_, vbs, bd) ->
        List.iter
          (fun vb ->
            note vb.vb_expr;
            match vb.vb_pat.pat_desc with
            | Tpat_var (cid, _) -> (
                match watched_in vb.vb_expr with
                | [] -> ()
                | ws -> Hashtbl.replace carriers (Ident.unique_name cid) ws)
            | _ -> ())
          vbs;
        walk bd
    | Texp_ifthenelse (_, th, el) -> (
        note e;
        match el with
        | Some el when is_raising th -> walk el
        | Some el when is_raising el -> walk th
        | _ -> ())
    | _ -> note e
  in
  walk expr;
  List.iter
    (fun id ->
      if not (Hashtbl.mem guarded (Ident.unique_name id)) then
        report st ~file loc "R4"
          (Printf.sprintf
             "entry point '%s' does not domain-check parameter '%s' before \
              first use (expected a check_p/validate call or an invalid_arg \
              guard in the function prefix)"
             name (Ident.name id)))
    !watched

(* The validated-input naming convention: a binding whose name ends in
   [_unchecked] declares "my caller has already domain-checked these
   inputs" — the batch kernels hoist the scan out of their inner loops
   and then call these.  R4 exempts them by name; everything else keeps
   its guard.  The contract is enforced elsewhere (selfcheck C11 proves
   batch ≡ guarded scalar bit-for-bit on scanned columns). *)
let is_unchecked name =
  let suffix = "_unchecked" in
  let n = String.length name and s = String.length suffix in
  n >= s && String.equal (String.sub name (n - s) s) suffix

(* Toplevel bindings are filtered against the unit's interface; bindings
   in nested modules (e.g. Tfrc.Controller) are all analyzed — the
   interface filter does not reach through module signatures, and a
   spurious hit on an internal helper costs one cheap guard. *)
let rec r4_structure st ~file ~top is_exported (str : structure) =
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (id, _)
                when (not (is_unchecked (Ident.name id)))
                     && ((not top) || is_exported (Ident.name id)) ->
                  let rs = push st vb.vb_attributes in
                  r4_binding st ~file (Ident.name id) vb.vb_pat.pat_loc
                    vb.vb_expr;
                  pop st rs
              | _ -> ())
            vbs
      | Tstr_module mb -> r4_module_binding st ~file is_exported mb
      | Tstr_recmodule mbs ->
          List.iter (r4_module_binding st ~file is_exported) mbs
      | _ -> ())
    str.str_items

and r4_module_binding st ~file is_exported mb =
  match r4_module_structure mb.mb_expr with
  | Some s -> r4_structure st ~file ~top:false is_exported s
  | None -> ()

and r4_module_structure me =
  match me.mod_desc with
  | Tmod_structure s -> Some s
  | Tmod_constraint (me, _, _, _) -> r4_module_structure me
  | _ -> None

(* --- R2: exported mutable values ------------------------------------------- *)

let rec r2_signature st ~file ~unit (sg : signature) =
  List.iter
    (fun (item : signature_item) ->
      match item.sig_desc with
      | Tsig_value vd ->
          let rs = push st vd.val_attributes in
          let ty = vd.val_val.Types.val_type in
          if type_mutable st ~unit [] ty then
            report st ~file vd.val_loc "R2"
              (Printf.sprintf
                 "interface exports toplevel mutable value '%s' : %s \
                  (cross-module shared state escapes the R1 capture check)"
                 (Ident.name vd.val_id) (type_to_string ty));
          pop st rs
      | Tsig_module md -> (
          match md.md_type.mty_desc with
          | Tmty_signature s -> r2_signature st ~file ~unit s
          | _ -> ())
      | _ -> ())
    sg.sig_items

(* --- Main expression walk (R1 + R3) ---------------------------------------- *)

let analyze_structure st ~file ~unit ~core_stats (str : structure) =
  let super = Tast_iterator.default_iterator in
  let vb_it it vb =
    let rs = push st vb.vb_attributes in
    super.value_binding it vb;
    pop st rs
  in
  let check_closure callee (a : expression) =
    match a.exp_desc with
    | Texp_function _ ->
        let rs = push st a.exp_attributes in
        List.iter
          (fun (id, (use : expression)) ->
            report st ~file use.exp_loc "R1"
              (Printf.sprintf
                 "closure passed to %s captures mutable '%s' : %s (shared \
                  state races across domains; pass it as data or restructure)"
                 callee (Ident.name id)
                 (type_to_string use.exp_type)))
          (mutable_captures st ~unit a);
        pop st rs
    | _ -> ()
  in
  let expr_it it (e : expression) =
    let rs = push st e.exp_attributes in
    (match e.exp_desc with
    | Texp_apply (fn, args) -> (
        match trigger_of_callee fn with
        | Some callee ->
            List.iter
              (fun (_, arg) ->
                match arg with Some a -> check_closure callee a | None -> ())
              args
        | None -> ())
    | Texp_ident (p, _, vd) when core_stats && is_poly_compare_use p vd ->
        report st ~file e.exp_loc "R3"
          (Printf.sprintf
             "polymorphic comparison '%s' : %s in model code (use \
              Float.equal/Float.compare or another typed comparator)"
             (Path.name p)
             (type_to_string vd.Types.val_type))
    | _ -> ());
    super.expr it e;
    pop st rs
  in
  let it = { super with expr = expr_it; value_binding = vb_it } in
  it.structure it str

(* --- Loading --------------------------------------------------------------- *)

let cmt_files = F.Cmt.files

let analyze_paths paths =
  let st =
    {
      decls = Hashtbl.create 512;
      exported = Hashtbl.create 64;
      findings = [];
      allows = F.Allow.create ();
    }
  in
  let units = F.Cmt.load_all paths in
  List.iter
    (fun (u : F.Cmt.unit_info) ->
      match u.u_annots with
      | Cmt_format.Implementation str -> decls_of_structure st u.u_name [] str
      | Cmt_format.Interface sg ->
          decls_of_signature st u.u_name [] sg;
          record_exports st u.u_name sg
      | _ -> ())
    units;
  List.iter
    (fun (u : F.Cmt.unit_info) ->
      let file = u.u_src in
      match u.u_annots with
      | Cmt_format.Implementation str ->
          let core_stats =
            F.under ~root:"lib/core" file || F.under ~root:"lib/stats" file
          in
          analyze_structure st ~file ~unit:u.u_name ~core_stats str;
          if F.under ~root:"lib/core" file then begin
            let is_exported =
              match Hashtbl.find_opt st.exported u.u_name with
              | Some set -> fun n -> Hashtbl.mem set n
              | None -> fun _ -> true
            in
            r4_structure st ~file ~top:true is_exported str
          end
      | Cmt_format.Interface sg ->
          if F.under ~root:"lib" file then r2_signature st ~file ~unit:u.u_name sg
      | _ -> ())
    units;
  List.sort_uniq F.compare_findings st.findings
