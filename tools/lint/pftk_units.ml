(* Command-line front end: [pftk_units DIR...] runs the dimensional
   analysis (rules U1-U4) over every .cmt/.cmti under the given roots
   (default: lib bin bench examples). Roots are looked up both as given
   and under _build/default, so the tool works from the build context
   (the @units rule) and from the source root (developers, the bench
   gate). Prints findings as file:line:col [rule] message, a JSON array
   with --format=json, or SARIF with --format=sarif, and exits non-zero
   if any survive. *)

let () =
  Pftk_findings.run_cli ~tool:"pftk-units"
    ~default_roots:[ "lib"; "bin"; "bench"; "examples" ]
    ~analyze:(fun roots ->
      let paths = Pftk_findings.expand_build_roots roots in
      match Pftk_units_engine.cmt_files paths with
      | [] ->
          Error
            (Printf.sprintf
               "no .cmt/.cmti files under %s (run `dune build @check` first)"
               (String.concat " " roots))
      | cmts ->
          Ok
            ( Pftk_units_engine.analyze_paths paths,
              Printf.sprintf "%d compilation units" (List.length cmts) ))
