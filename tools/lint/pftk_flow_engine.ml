(* pftk-flow: interprocedural contract analysis over the .cmt files dune
   emits.  Where pftk-race checks properties one function at a time,
   this engine first builds a table of every toplevel binding in the run
   (pass 1), scans each body once for raise sites, callee references and
   NaN mentions (pass 1b), closes may-raise and returns-NaN over the
   cross-module call graph (fixpoints), then re-walks the bodies
   enforcing F1-F4 (pass 2).  See the .mli for the rule definitions. *)

open Typedtree
module F = Pftk_findings

let split_canonical = F.split_canonical
let strip_stdlib = F.strip_stdlib

let path_last p =
  match List.rev (strip_stdlib (split_canonical (Path.name p))) with
  | last :: _ -> last
  | [] -> ""

let is_unchecked name =
  let suffix = "_unchecked" in
  let n = String.length name and s = String.length suffix in
  n >= s && String.equal (String.sub name (n - s) s) suffix

let has_zero_alloc attrs =
  List.exists
    (fun a -> a.Parsetree.attr_name.Location.txt = "pftk.zero_alloc")
    attrs

let raising_prims = [ "invalid_arg"; "failwith"; "raise"; "raise_notrace" ]
let is_raising_prim p = List.mem (path_last p) raising_prims

let is_nan_ident p =
  match strip_stdlib (split_canonical (Path.name p)) with
  | [ "nan" ] | [ "Float"; "nan" ] -> true
  | _ -> false

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* Can this signature carry the NaN sentinel out?  A float (or float
   array) must be spelled somewhere in the arrow's own type expression;
   reports, case records and other opaque constructors do not count even
   if NaN-carrying floats hide inside them — F4 audits the sentinel
   discipline of numeric APIs, not data plumbing. *)
let rec mentions_float ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, b, _) -> mentions_float a || mentions_float b
  | Types.Ttuple tys -> List.exists mentions_float tys
  | Types.Tpoly (t, _) -> mentions_float t
  | Types.Tconstr (p, args, _) ->
      (match String.concat "." (strip_stdlib (split_canonical (Path.name p)))
       with
      | "float" | "floatarray" | "Float.Array.t" -> true
      | _ -> false)
      || List.exists mentions_float args
  | _ -> false

let is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> String.equal (Path.name p) "float"
  | _ -> false

(* --- Run state ------------------------------------------------------------- *)

type fn_info = {
  fn_name : string;  (* canonical dotted, scope included *)
  fn_scope : string list;  (* unit (and nested-module) prefix *)
  fn_file : string;
  fn_attrs : Parsetree.attributes;
  fn_zero_alloc : bool;
  fn_unchecked : bool;
  fn_expr : expression;
  mutable fn_refs : string list;  (* resolved callee names (pass 1b) *)
  mutable fn_direct_raise : bool;
  mutable fn_may_raise : bool;
  mutable fn_raise_via : string option;  (* callee the raise is reached through *)
  mutable fn_nan : bool;  (* mentions (or reaches) the NaN sentinel *)
}

type state = {
  fns : (string, fn_info) Hashtbl.t;
  mutable order : fn_info list;  (* registration order, for the fixpoints *)
  mutable findings : F.finding list;
  allows : F.Allow.t;
}

let push st attrs = F.Allow.push st.allows attrs
let pop st rules = F.Allow.pop st.allows rules

let report st ~file (loc : Location.t) rule message =
  if not (F.Allow.active st.allows rule) then
    st.findings <- F.finding_of_loc ~file loc rule message :: st.findings

(* Resolve a reference made inside [scope] to a registered binding: try
   the path name qualified by progressively shorter prefixes of the
   scope, so sibling references ([Pident], nested-module locals) and
   wrapper-qualified cross-module paths all land on the same keys. *)
let resolve st ~scope p =
  let base =
    match p with
    | Path.Pident id -> Ident.name id
    | _ -> F.canonical (Path.name p)
  in
  let drop_last l = List.rev (List.tl (List.rev l)) in
  let rec go scope acc =
    let acc = String.concat "." (scope @ [ base ]) :: acc in
    match scope with [] -> acc | _ -> go (drop_last scope) acc
  in
  List.find_map (Hashtbl.find_opt st.fns) (List.rev (go scope []))

(* --- Pass 1: registration --------------------------------------------------- *)

let register_binding st ~file ~scope vb =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) ->
      let name = String.concat "." (scope @ [ Ident.name id ]) in
      let fn =
        {
          fn_name = name;
          fn_scope = scope;
          fn_file = file;
          fn_attrs = vb.vb_attributes;
          fn_zero_alloc = has_zero_alloc vb.vb_attributes;
          fn_unchecked = is_unchecked (Ident.name id);
          fn_expr = vb.vb_expr;
          fn_refs = [];
          fn_direct_raise = false;
          fn_may_raise = false;
          fn_raise_via = None;
          fn_nan = false;
        }
      in
      Hashtbl.replace st.fns name fn;
      st.order <- fn :: st.order
  | _ -> ()

let rec module_structure me =
  match me.mod_desc with
  | Tmod_structure s -> Some s
  | Tmod_constraint (me, _, _, _) -> module_structure me
  | _ -> None

let rec register_structure st ~file ~scope (str : structure) =
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (register_binding st ~file ~scope) vbs
      | Tstr_module mb -> register_module st ~file ~scope mb
      | Tstr_recmodule mbs -> List.iter (register_module st ~file ~scope) mbs
      | _ -> ())
    str.str_items

and register_module st ~file ~scope mb =
  match (mb.mb_name.Location.txt, module_structure mb.mb_expr) with
  | Some name, Some s -> register_structure st ~file ~scope:(scope @ [ name ]) s
  | _ -> ()

(* --- Pass 1b: per-function scan ---------------------------------------------

   One walk per body collecting the raw material for the fixpoints:
   direct raise sites ([invalid_arg]/[failwith]/[raise]/[assert]),
   resolved callee references, and mentions of the NaN sentinel.
   Everything under [try ... with] is treated as handled locally and
   skipped (the handlers themselves are scanned). *)

let scan_fn st fn =
  let seen = Hashtbl.create 8 in
  let rec go e =
    match e.exp_desc with
    | Texp_try (_, handlers) ->
        List.iter (fun c -> go c.c_rhs) handlers
    | Texp_assert _ -> fn.fn_direct_raise <- true
    | Texp_ident (p, _, _) ->
        if is_raising_prim p then fn.fn_direct_raise <- true
        else if is_nan_ident p then fn.fn_nan <- true
        else (
          match resolve st ~scope:fn.fn_scope p with
          | Some callee when not (Hashtbl.mem seen callee.fn_name) ->
              Hashtbl.replace seen callee.fn_name ();
              fn.fn_refs <- callee.fn_name :: fn.fn_refs
          | _ -> ())
    | _ ->
        let super = Tast_iterator.default_iterator in
        let it = { super with expr = (fun _ e -> go e) } in
        super.expr it e
  in
  go fn.fn_expr

let fixpoints st =
  let fns = List.rev st.order in
  List.iter
    (fun fn -> if fn.fn_direct_raise then fn.fn_may_raise <- true)
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        if not fn.fn_may_raise then
          match
            List.find_opt
              (fun r ->
                match Hashtbl.find_opt st.fns r with
                | Some c -> c.fn_may_raise
                | None -> false)
              fn.fn_refs
          with
          | Some via ->
              fn.fn_may_raise <- true;
              fn.fn_raise_via <- Some via;
              changed := true
          | None -> ())
      fns
  done;
  changed := true;
  while !changed do
    changed := false;
    List.iter
      (fun fn ->
        if
          (not fn.fn_nan)
          && List.exists
               (fun r ->
                 match Hashtbl.find_opt st.fns r with
                 | Some c -> c.fn_nan
                 | None -> false)
               fn.fn_refs
        then begin
          fn.fn_nan <- true;
          changed := true
        end)
      fns
  done

(* --- Guard shapes (shared by F1) -------------------------------------------- *)

let rec is_raising e =
  match e.exp_desc with
  | Texp_apply (fn, _) -> (
      match fn.exp_desc with
      | Texp_ident (p, _, _) -> is_raising_prim p
      | _ -> false)
  | Texp_assert _ -> true
  | Texp_sequence (_, e2) -> is_raising e2
  | Texp_let (_, _, body) -> is_raising body
  | _ -> false

let is_guard_call e =
  match e.exp_desc with
  | Texp_apply (fn, _) -> (
      match fn.exp_desc with
      | Texp_ident (p, _, _) -> (
          match List.rev (split_canonical (Path.name p)) with
          | last :: _ ->
              String.equal last "validate"
              || (String.length last >= 5 && String.sub last 0 5 = "check")
          | [] -> false)
      | _ -> false)
  | _ -> false

(* Does evaluating [e] establish "inputs are domain-checked"?  A
   [check*]/[validate] call, a conditional (or match) with a raising
   branch, a raising statement (everything after it is dead), or a
   sequence/let whose prefix contains one. *)
let rec establishes_guard e =
  is_guard_call e || is_raising e
  ||
  match e.exp_desc with
  | Texp_ifthenelse (_, th, el) ->
      is_raising th
      || (match el with Some el -> is_raising el | None -> false)
  | Texp_match (_, cases, _) -> List.exists (fun c -> is_raising c.c_rhs) cases
  | Texp_sequence (a, b) -> establishes_guard a || establishes_guard b
  | Texp_let (_, vbs, body) ->
      List.exists (fun vb -> establishes_guard vb.vb_expr) vbs
      || establishes_guard body
  | _ -> false

(* --- F1: guard domination for _unchecked call sites ------------------------- *)

let rec f1_walk st fn guarded e =
  let rs = push st e.exp_attributes in
  (match e.exp_desc with
  | Texp_ident (p, _, _) when is_unchecked (Path.last p) ->
      if not guarded then
        report st ~file:fn.fn_file e.exp_loc "F1"
          (Printf.sprintf
             "call site of '%s' in '%s' is not dominated by a domain guard \
              (expected a check*/validate call or a raising conditional \
              earlier in the function, or an *_unchecked caller name \
              propagating the contract)"
             (Path.last p) fn.fn_name)
  | _ -> ());
  (match e.exp_desc with
  | Texp_sequence (a, b) ->
      f1_walk st fn guarded a;
      f1_walk st fn (guarded || establishes_guard a) b
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun vb ->
          let vrs = push st vb.vb_attributes in
          let exempt =
            match vb.vb_pat.pat_desc with
            | Tpat_var (id, _) -> is_unchecked (Ident.name id)
            | _ -> false
          in
          f1_walk st fn (guarded || exempt) vb.vb_expr;
          pop st vrs)
        vbs;
      f1_walk st fn
        (guarded || List.exists (fun vb -> establishes_guard vb.vb_expr) vbs)
        body
  | Texp_ifthenelse (c, th, el) ->
      f1_walk st fn guarded c;
      let el_raises =
        match el with Some el -> is_raising el | None -> false
      in
      f1_walk st fn (guarded || el_raises) th;
      (match el with
      | Some el -> f1_walk st fn (guarded || is_raising th) el
      | None -> ())
  | Texp_match (scrut, cases, _) ->
      f1_walk st fn guarded scrut;
      let some_raising = List.exists (fun c -> is_raising c.c_rhs) cases in
      List.iter
        (fun c -> f1_walk st fn (guarded || some_raising) c.c_rhs)
        cases
  | _ ->
      let super = Tast_iterator.default_iterator in
      let it = { super with expr = (fun _ e -> f1_walk st fn guarded e) } in
      super.expr it e);
  pop st rs

(* --- F2: allocation-freedom of [@pftk.zero_alloc] bodies -------------------- *)

(* The parameter spine itself (the nested single-case [fun] levels) is
   the function's closure, built once at definition time — only the
   body proper must be allocation-free. *)
let rec f2_spine st fn e =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } when Option.is_none c.c_guard ->
      f2_spine st fn c.c_rhs
  | _ -> f2_walk st fn e

and f2_walk st fn e =
  let rs = push st e.exp_attributes in
  let bad fmt =
    Printf.ksprintf
      (fun msg ->
        report st ~file:fn.fn_file e.exp_loc "F2"
          (Printf.sprintf "[@pftk.zero_alloc] '%s': %s" fn.fn_name msg))
      fmt
  in
  let children () =
    let super = Tast_iterator.default_iterator in
    let it = { super with expr = (fun _ e -> f2_walk st fn e) } in
    super.expr it e
  in
  (match e.exp_desc with
  | Texp_function _ ->
      bad "closure construction allocates";
      children ()
  | Texp_tuple _ ->
      bad "tuple literal allocates";
      children ()
  | Texp_record _ ->
      bad "record literal allocates";
      children ()
  | Texp_array (_ :: _) ->
      bad "array literal allocates";
      children ()
  | Texp_construct (_, _, _ :: _) ->
      bad "constructor application allocates";
      children ()
  | Texp_variant (_, Some _) ->
      bad "polymorphic-variant construction allocates";
      children ()
  | Texp_lazy _ ->
      bad "lazy construction allocates";
      children ()
  | Texp_setfield (_, _, lbl, _) ->
      (if is_float lbl.Types.lbl_arg then
         match lbl.Types.lbl_repres with
         | Types.Record_float | Types.Record_unboxed _ -> ()
         | Types.Record_regular | Types.Record_inlined _
         | Types.Record_extension _ ->
             bad
               "store to float field '%s' of a mixed record boxes the float \
                (one allocation per store; use a float-only record or \
                Float.Array)"
               lbl.Types.lbl_name);
      children ()
  | Texp_apply (callee, args) ->
      (if is_arrow e.exp_type then
         bad "partial application allocates a closure");
      (match callee.exp_desc with
      | Texp_ident (p, _, { Types.val_kind = Types.Val_prim prim; _ }) ->
          let name = prim.Primitive.prim_name in
          let compiler_intrinsic =
            String.length name > 0 && name.[0] = '%'
            && not (String.equal name "%makemutable")
          in
          if not (compiler_intrinsic || not prim.Primitive.prim_alloc) then
            bad "call to allocating external '%s'" (Path.name p)
      | Texp_ident (p, _, _) -> (
          match resolve st ~scope:fn.fn_scope p with
          | Some c when c.fn_zero_alloc -> ()
          | Some c -> bad "calls '%s', which is not [@pftk.zero_alloc]" c.fn_name
          | None ->
              bad
                "calls un-analyzed function '%s' (only [%%...]/[@@noalloc] \
                 externals and [@pftk.zero_alloc] functions are \
                 allocation-free by contract)"
                (Path.name p))
      | _ ->
          bad "call through a computed function";
          f2_walk st fn callee);
      List.iter
        (fun (_, arg) ->
          match arg with Some a -> f2_walk st fn a | None -> ())
        args
  | _ -> children ());
  pop st rs

(* --- F3: exception escape from contract bodies ------------------------------- *)

let contract_of fn =
  if fn.fn_zero_alloc && fn.fn_unchecked then "[@pftk.zero_alloc], *_unchecked"
  else if fn.fn_zero_alloc then "[@pftk.zero_alloc]"
  else "*_unchecked"

let raise_why st name =
  match Hashtbl.find_opt st.fns name with
  | Some c when c.fn_direct_raise -> "it raises directly"
  | Some { fn_raise_via = Some via; _ } ->
      Printf.sprintf "it reaches a raise via '%s'" via
  | _ -> "it can raise"

let rec f3_walk st fn e =
  let rs = push st e.exp_attributes in
  (match e.exp_desc with
  | Texp_try (_, handlers) ->
      (* The body's exceptions are handled right here; only the
         handlers can let one escape. *)
      List.iter (fun c -> f3_walk st fn c.c_rhs) handlers
  | Texp_assert (cond, _) ->
      report st ~file:fn.fn_file e.exp_loc "F3"
        (Printf.sprintf
           "assert inside '%s' (%s) can raise Assert_failure; kernels signal \
            via the NaN sentinel, never exceptions"
           fn.fn_name (contract_of fn));
      f3_walk st fn cond
  | Texp_ident (p, _, _) ->
      if is_raising_prim p then
        report st ~file:fn.fn_file e.exp_loc "F3"
          (Printf.sprintf
             "'%s' inside '%s' (%s); kernels signal via the NaN sentinel, \
              never exceptions"
             (path_last p) fn.fn_name (contract_of fn))
      else (
        match resolve st ~scope:fn.fn_scope p with
        | Some c when c.fn_may_raise && not (String.equal c.fn_name fn.fn_name)
          ->
            report st ~file:fn.fn_file e.exp_loc "F3"
              (Printf.sprintf
                 "'%s' (%s) calls '%s', which can raise (%s); kernels signal \
                  via the NaN sentinel, never exceptions"
                 fn.fn_name (contract_of fn) c.fn_name
                 (raise_why st c.fn_name))
        | _ -> ())
  | _ ->
      let super = Tast_iterator.default_iterator in
      let it = { super with expr = (fun _ e -> f3_walk st fn e) } in
      super.expr it e);
  pop st rs

(* --- F4: NaN sentinel documented in the interface ---------------------------- *)

let doc_of_attrs attrs =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.Location.txt with
      | "ocaml.doc" | "doc" | "ocaml.text" -> (
          match a.attr_payload with
          | Parsetree.PStr
              [
                {
                  pstr_desc =
                    Pstr_eval
                      ( {
                          pexp_desc =
                            Pexp_constant (Pconst_string (s, _, _));
                          _;
                        },
                        _ );
                  _;
                };
              ] ->
              Some s
          | _ -> None)
      | _ -> None)
    attrs
  |> String.concat "\n"

let rec f4_signature st ~file ~scope (sg : signature) =
  List.iter
    (fun (item : signature_item) ->
      match item.sig_desc with
      | Tsig_value vd ->
          let rs = push st vd.val_attributes in
          let name = String.concat "." (scope @ [ Ident.name vd.val_id ]) in
          (match Hashtbl.find_opt st.fns name with
          | Some fn
            when fn.fn_nan
                 && is_arrow vd.val_val.Types.val_type
                 && mentions_float vd.val_val.Types.val_type
                 && not (F.contains_sub (doc_of_attrs vd.val_attributes) "NaN")
            ->
              report st ~file vd.val_loc "F4"
                (Printf.sprintf
                   "'%s' can return the NaN sentinel but its interface doc \
                    does not say \"NaN\"; document the sentinel so callers \
                    know rejection is in-band"
                   (Ident.name vd.val_id))
          | _ -> ());
          pop st rs
      | Tsig_module md -> (
          match (md.md_name.Location.txt, md.md_type.mty_desc) with
          | Some name, Tmty_signature s ->
              f4_signature st ~file ~scope:(scope @ [ name ]) s
          | _ -> ())
      | _ -> ())
    sg.sig_items

(* --- Driver ------------------------------------------------------------------ *)

let cmt_files = F.Cmt.files

let analyze_paths paths =
  let st =
    {
      fns = Hashtbl.create 512;
      order = [];
      findings = [];
      allows = F.Allow.create ();
    }
  in
  let units = F.Cmt.load_all paths in
  List.iter
    (fun (u : F.Cmt.unit_info) ->
      match u.u_annots with
      | Cmt_format.Implementation str ->
          register_structure st ~file:u.u_src ~scope:[ u.u_name ] str
      | _ -> ())
    units;
  let fns = List.rev st.order in
  List.iter (scan_fn st) fns;
  fixpoints st;
  List.iter
    (fun fn ->
      let rs = push st fn.fn_attrs in
      if not fn.fn_unchecked then f1_walk st fn false fn.fn_expr;
      if fn.fn_zero_alloc then f2_spine st fn fn.fn_expr;
      if fn.fn_zero_alloc || fn.fn_unchecked then f3_walk st fn fn.fn_expr;
      pop st rs)
    fns;
  List.iter
    (fun (u : F.Cmt.unit_info) ->
      match u.u_annots with
      | Cmt_format.Interface sg when F.under ~root:"lib" u.u_src ->
          f4_signature st ~file:u.u_src ~scope:[ u.u_name ] sg
      | _ -> ())
    units;
  List.sort_uniq F.compare_findings st.findings
