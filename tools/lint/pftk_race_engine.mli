(** Typed, cross-module analysis over the [.cmt]/[.cmti] files dune
    emits ([dune build @check] produces them as a side effect of every
    build). Where pftk-lint (L1-L5) walks the Parsetree, this engine
    loads [Cmt_format] binary annotations and walks the Typedtree, so it
    sees through aliases, inferred types and module boundaries:

    - [R1] a closure passed to [Pftk_parallel.map]/[mapi]/[init] or
      [Pool.submit] must not capture a free identifier whose type
      contains mutable structure ([ref], [array], [bytes], [Hashtbl.t],
      [Buffer.t], [Queue.t], records with [mutable] fields — computed
      transitively from every type declaration loaded in the run).
      Shared mutable captures are exactly the races the domain-parallel
      fan-out contract forbids.
    - [R2] no [lib/*] interface may export a toplevel value of mutable
      type: a [val cache : (k, v) Hashtbl.t] is cross-module shared
      state that R1 could never see from the capture site alone.
    - [R3] the polymorphic-comparison ban (L1) re-checked on the
      Typedtree: any use, in [lib/core] or [lib/stats], of an external
      value whose type scheme is ['a -> 'a -> bool/int/'a] — this
      catches [Stdlib.compare], aliases and functor-instantiated
      comparators that the syntactic rule misses.
    - [R4] every exported [lib/core] entry point taking a probability or
      duration parameter (named [p], [rtt] or [t0], of type [float])
      must domain-check it before first use: a [check*]/[validate] call
      or an [invalid_arg]/[failwith] guard mentioning the parameter (or
      a let-bound value built from it) in the function's guard prefix.
      Shallow and function-local by design, not full dataflow.
      Bindings whose name ends in [_unchecked] are exempt: that suffix
      is the repo's validated-input convention — the batch engine
      ([lib/batch]) hoists the domain scan out of its inner loops and
      dispatches to these kernels with inputs already proven in-domain
      (selfcheck invariant C11 holds them to the guarded scalar results
      bit-for-bit).  Scalar exports without the suffix stay guarded.

    Findings use the pftk-lint format and honour the same scoped
    [[@lint.allow "R1"]] escape hatch on expressions, value bindings and
    (for R2) interface declarations.

    The analyzer keeps run-wide state (the cross-module type-declaration
    table); it is not thread-safe. *)

val cmt_files : string list -> string list
(** The [.cmt]/[.cmti] files the analyzer would load under the given
    paths (sorted, deduplicated). Lets callers distinguish "clean tree"
    from "nothing was analyzed because no build artefacts exist". *)

val analyze_paths : string list -> Pftk_findings.finding list
(** [analyze_paths paths] loads every [.cmt]/[.cmti] found under the
    given paths (directories are walked recursively, including the
    dot-directories dune hides object files in; plain file paths are
    taken as-is), builds the cross-module type-declaration table, then
    runs R1-R4. Findings are sorted by file, then position, and
    deduplicated. *)
