(* Command-line front end: [pftk_race DIR...] runs the typed R1-R4
   analysis over every .cmt/.cmti under the given roots (default:
   lib bin bench examples). Roots are looked up both as given and under
   _build/default, so the tool works from the build context (the @race
   rule) and from the source root (developers, the bench gate). Prints
   findings as file:line:col [rule] message, or a JSON array with
   --format=json, and exits non-zero if any survive. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--format=json" args in
  let bad =
    List.filter
      (fun a ->
        String.length a >= 2
        && String.sub a 0 2 = "--"
        && a <> "--format=json" && a <> "--format=text")
      args
  in
  (match bad with
  | [] -> ()
  | b :: _ ->
      Printf.eprintf "pftk-race: unknown option %s\n" b;
      exit 2);
  let roots =
    match
      List.filter
        (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
        args
    with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | roots -> roots
  in
  let expand r =
    let built = Filename.concat (Filename.concat "_build" "default") r in
    (if Sys.file_exists r then [ r ] else [])
    @ if Sys.file_exists built then [ built ] else []
  in
  let paths = List.concat_map expand roots in
  let cmts = Pftk_race_engine.cmt_files paths in
  if cmts = [] then begin
    Printf.eprintf
      "pftk-race: no .cmt/.cmti files under %s (run `dune build @check` \
       first)\n"
      (String.concat " " roots);
    exit 2
  end;
  let findings = Pftk_race_engine.analyze_paths paths in
  if json then Format.printf "%a@." Pftk_lint_engine.pp_findings_json findings
  else
    List.iter (Format.printf "%a@." Pftk_lint_engine.pp_finding) findings;
  match findings with
  | [] ->
      Printf.eprintf "pftk-race: clean (%d compilation units)\n"
        (List.length cmts);
      exit 0
  | _ :: _ ->
      Printf.eprintf "pftk-race: %d finding(s)\n" (List.length findings);
      exit 1
