(** Interprocedural contract analysis over the [.cmt] files dune emits
    ([dune build @check] produces them as a side effect of every build).
    Where pftk-race (R1–R4) checks each function in isolation, this
    engine builds a cross-module call graph of every toplevel binding in
    the run and enforces the contracts the [_unchecked] kernel
    convention and the batch engine's zero-allocation discipline rest
    on:

    - [F1] every call site of a [*_unchecked] value must be dominated,
      within the calling function, by a recognized domain guard — a
      [check*]/[validate] call (e.g. [Params.check_p],
      [Params.validate], [Scan.validate]), a conditional or match with
      an [invalid_arg]/[failwith]/[raise]-ing branch earlier in the
      function — or the caller must itself be [*_unchecked]-named
      (including [let helper_unchecked = ... in ...] locals),
      propagating the contract to its own callers.  The walk follows
      sequences, lets, conditionals and matches; a guard anywhere in the
      evaluated prefix dominates the rest of the body.
    - [F2] a function annotated [[@pftk.zero_alloc]] must contain no
      allocating construct in its typed body: closure construction,
      tuple/record/array/constructor/polymorphic-variant literals,
      [lazy], partial applications, stores to float fields of mixed
      records (each one boxes), calls to allocating externals
      (everything that is neither a [%]-intrinsic nor [[@@noalloc]]),
      and calls to functions not themselves annotated
      [[@pftk.zero_alloc]] — unknown callees are flagged, so the
      allocation-freedom proof is closed over the annotation.  The
      parameter spine (the closure itself, built once at definition
      time) is exempt; a boxed float can only escape through one of the
      flagged constructs, which is what makes the per-row paths
      allocation-free.
    - [F3] no [raise]/[failwith]/[invalid_arg]/[assert] may be reachable
      from a [[@pftk.zero_alloc]] or [*_unchecked] body, directly or
      through any chain of calls to functions analyzed in the run
      (computed/external callees are assumed non-raising — the
      documented heuristic; [try ... with] bodies count as handled).
      Kernels signal rejection via the NaN sentinel, never exceptions.
    - [F4] any exported [lib/] function that can return the NaN sentinel
      (its body, or a callee's, mentions [Float.nan]/[nan]) must say
      "NaN" in its [.mli] doc comment — a pinned substring check, so
      sentinel discipline stays auditable at the interface.

    Findings use the shared pftk-lint format and honour the same scoped
    [[@lint.allow "F1"]] escape hatch on expressions, value bindings and
    (for F4) interface declarations.

    The analyzer keeps run-wide state (the function table and call
    graph); it is not thread-safe. *)

val cmt_files : string list -> string list
(** The [.cmt]/[.cmti] files the analyzer would load under the given
    paths (sorted, deduplicated). Lets callers distinguish "clean tree"
    from "nothing was analyzed because no build artefacts exist". *)

val analyze_paths : string list -> Pftk_findings.finding list
(** [analyze_paths paths] loads every [.cmt]/[.cmti] found under the
    given paths (directories walked recursively, including the
    dot-directories dune hides object files in; plain file paths are
    taken as-is), builds the cross-module function table and call
    graph, closes may-raise and returns-NaN over it, then runs F1–F4.
    Findings are sorted by file, then position, and deduplicated. *)
