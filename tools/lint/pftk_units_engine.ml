(* pftk-units: dimensional analysis over the .cmt files dune emits.
   Pass A reads every interface, collecting [@pftk.unit] declarations
   (and checking U3 in the lib/core+batch+online zone); pass B registers
   every toplevel binding like pftk-flow does; a quiet fixpoint then
   infers result units for unannotated functions (aliases copy their
   callee's signature, bodies that evaluate to a known unit export it);
   finally each body is abstract-interpreted once in loud mode,
   enforcing U1, U2 and U4.  See the .mli for the algebra and rules. *)

open Typedtree
module F = Pftk_findings

let split_canonical = F.split_canonical
let strip_stdlib = F.strip_stdlib

(* --- The unit algebra ------------------------------------------------------- *)

(* A unit is a vector of integer exponents over the base dimensions.
   "prob" and "1" are both the zero vector: probabilities carry no
   dimension, they just document intent. *)
type u = { u_s : int; u_pkt : int; u_byte : int }

let dimensionless = { u_s = 0; u_pkt = 0; u_byte = 0 }
let is_dimensionless v = v = dimensionless

let u_mul a b =
  { u_s = a.u_s + b.u_s; u_pkt = a.u_pkt + b.u_pkt; u_byte = a.u_byte + b.u_byte }

let u_div a b =
  { u_s = a.u_s - b.u_s; u_pkt = a.u_pkt - b.u_pkt; u_byte = a.u_byte - b.u_byte }

let u_pow a k = { u_s = a.u_s * k; u_pkt = a.u_pkt * k; u_byte = a.u_byte * k }

let u_to_string v =
  let bases = [ ("pkt", v.u_pkt); ("byte", v.u_byte); ("s", v.u_s) ] in
  let fac (b, e) = if e = 1 then b else Printf.sprintf "%s^%d" b e in
  let num = List.filter (fun (_, e) -> e > 0) bases in
  let den = List.filter_map (fun (b, e) -> if e < 0 then Some (b, -e) else None) bases in
  let nums =
    match num with [] -> "1" | l -> String.concat "*" (List.map fac l)
  in
  match den with
  | [] -> nums
  | l -> nums ^ "/" ^ String.concat "/" (List.map fac l)

(* --- Unit-expression parser -------------------------------------------------
   expr := term ('/' term)* ; term := factor ('*' factor)* ;
   factor := base ('^' int)? ; base := s | pkt | byte | prob | 1 *)

exception Unit_error of string

type tok = Base of string | Star | Slash | Caret | Int of int

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '*' then (toks := Star :: !toks; incr i)
    else if c = '/' then (toks := Slash :: !toks; incr i)
    else if c = '^' then (toks := Caret :: !toks; incr i)
    else if c >= 'a' && c <= 'z' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= 'a' && s.[!j] <= 'z' do incr j done;
      toks := Base (String.sub s !i (!j - !i)) :: !toks;
      i := !j
    end
    else if c = '-' || (c >= '0' && c <= '9') then begin
      let j = ref (!i + 1) in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      let lit = String.sub s !i (!j - !i) in
      (match int_of_string_opt lit with
      | Some k -> toks := Int k :: !toks
      | None -> raise (Unit_error (Printf.sprintf "bad exponent %S" lit)));
      i := !j
    end
    else
      raise
        (Unit_error (Printf.sprintf "unexpected character '%c' in unit expression" c))
  done;
  List.rev !toks

let parse_toks toks =
  let rest = ref toks in
  let base () =
    match !rest with
    | Base "s" :: t -> rest := t; { dimensionless with u_s = 1 }
    | Base "pkt" :: t -> rest := t; { dimensionless with u_pkt = 1 }
    | Base "byte" :: t -> rest := t; { dimensionless with u_byte = 1 }
    | Base "prob" :: t | Int 1 :: t -> rest := t; dimensionless
    | Base b :: _ ->
        raise
          (Unit_error
             (Printf.sprintf "unknown base unit %S (expected s, pkt, byte, prob or 1)" b))
    | _ -> raise (Unit_error "expected a base unit (s, pkt, byte, prob or 1)")
  in
  let factor () =
    let b = base () in
    match !rest with
    | Caret :: Int k :: t -> rest := t; u_pow b k
    | Caret :: _ -> raise (Unit_error "expected an integer exponent after '^'")
    | _ -> b
  in
  let term () =
    let f = ref (factor ()) in
    let going = ref true in
    while !going do
      match !rest with
      | Star :: t -> rest := t; f := u_mul !f (factor ())
      | _ -> going := false
    done;
    !f
  in
  let e = ref (term ()) in
  let going = ref true in
  while !going do
    match !rest with
    | Slash :: t -> rest := t; e := u_div !e (term ())
    | _ -> going := false
  done;
  if !rest <> [] then raise (Unit_error "trailing tokens in unit expression");
  !e

let unit_of_string s =
  match parse_toks (tokenize s) with
  | v -> Ok v
  | exception Unit_error m -> Error m

let parse_unit s = Result.map u_to_string (unit_of_string s)

(* --- Signature components ---------------------------------------------------
   One component per arrow component of the annotated type, "->"-
   separated; the last component is the result.  [Any] ("_", or a
   parenthesized tuple documentation) constrains nothing; [Dimless]
   ("1"/"prob") asserts no dimension; [U u] a concrete unit. *)

type comp = Any | Dimless | U of u

let comp_to_string = function
  | Any -> "_"
  | Dimless -> "1"
  | U v -> u_to_string v

let comp_of_string s =
  let s = String.trim s in
  if String.equal s "_" then Ok Any
  else if String.length s > 0 && s.[0] = '(' then Ok Any
  else
    match unit_of_string s with
    | Ok v -> Ok (if is_dimensionless v then Dimless else U v)
    | Error m -> Error m

let split_arrows s =
  let n = String.length s in
  let rec go start i acc =
    if i >= n - 1 then List.rev (String.sub s start (n - start) :: acc)
    else if s.[i] = '-' && s.[i + 1] = '>' then
      go (i + 2) (i + 2) (String.sub s start (i - start) :: acc)
    else go start (i + 1) acc
  in
  if n = 0 then [ "" ] else go 0 0 []

let sig_of_string s =
  let rec all = function
    | [] -> Ok []
    | c :: rest -> (
        match comp_of_string c with
        | Error m -> Error m
        | Ok c -> Result.map (fun l -> c :: l) (all rest))
  in
  all (split_arrows s)

let parse_sig s =
  Result.map
    (fun comps -> String.concat " -> " (List.map comp_to_string comps))
    (sig_of_string s)

(* --- Abstract values ---------------------------------------------------------
   [Known u] is always a *non-dimensionless* unit; dimensionless values
   are [Poly], like float literals — they adapt to either side of an
   addition and act as scalars under multiplication, which is exactly
   how the paper mixes pure numbers with packet counts ((1-p)/p + E[W]).
   [Unknown] constrains nothing and absorbs everything; [float_of_int]
   produces it, so integer-born quantities stay silent unless cast. *)

type av = Unknown | Poly | Known of u

let known v = if is_dimensionless v then Poly else Known v

let comp_av = function Any -> Unknown | Dimless -> Poly | U v -> Known v

let join a b =
  match (a, b) with
  | Known x, Known y -> if x = y then a else Unknown
  | Poly, x | x, Poly -> x
  | _ -> Unknown

(* Exponent view for * and /: Poly is the zero vector, Known its vector,
   Unknown contaminates the product. *)
let exps_of = function Known v -> Some v | Poly -> Some dimensionless | Unknown -> None

(* Component list of a path, from the [Path.t] structure rather than the
   printed name: operator names contain dots ([Path.name] prints
   [Stdlib.+.] for [( +. )]), so splitting the printed string on ['.']
   would shatter them.  Module components go through [split_canonical]
   (undoing dune's [Lib__Module] mangling); the final value component is
   kept atomic. *)
let rec raw_components p =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (q, s) -> raw_components q @ [ s ]
  | Path.Papply (q, _) -> raw_components q
  | Path.Pextra_ty (q, _) -> raw_components q

let path_parts p =
  match List.rev (raw_components p) with
  | last :: rev_modules ->
      List.concat_map split_canonical (List.rev rev_modules) @ [ last ]
  | [] -> []

(* --- Type helpers (as in pftk-flow) ----------------------------------------- *)

let rec mentions_float ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, b, _) -> mentions_float a || mentions_float b
  | Types.Ttuple tys -> List.exists mentions_float tys
  | Types.Tpoly (t, _) -> mentions_float t
  | Types.Tconstr (p, args, _) ->
      (match String.concat "." (strip_stdlib (split_canonical (Path.name p)))
       with
      | "float" | "floatarray" | "Float.Array.t" -> true
      | _ -> false)
      || List.exists mentions_float args
  | _ -> false

let is_float ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) -> String.equal (Path.name p) "float"
  | _ -> false

let rec arrow_comps ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, b, _) -> a :: arrow_comps b
  | Types.Tpoly (t, _) -> arrow_comps t
  | _ -> [ ty ]

(* --- The [@pftk.unit] attribute --------------------------------------------- *)

let unit_attr attrs =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.Location.txt "pftk.unit" then
        match a.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            Some (s, a.attr_loc)
        | _ -> Some ("", a.attr_loc)
      else None)
    attrs

(* --- Run state --------------------------------------------------------------- *)

type fn_info = {
  fn_name : string;  (* canonical dotted, scope included *)
  fn_scope : string list;  (* unit (and nested-module) prefix *)
  fn_file : string;
  fn_attrs : Parsetree.attributes;
  fn_expr : expression;
  mutable fn_sig : comp list option;  (* params @ [result] *)
  fn_declared : bool;  (* signature came from an annotation, not inference *)
}

type state = {
  fns : (string, fn_info) Hashtbl.t;
  mutable order : fn_info list;  (* registration order, for the fixpoint *)
  decls : (string, comp list) Hashtbl.t;  (* interface annotations *)
  fields : (string, comp) Hashtbl.t;  (* "Type.path.label" -> unit *)
  mutable findings : F.finding list;
  allows : F.Allow.t;
  mutable loud : bool;  (* false during the inference fixpoint *)
}

let push st attrs = F.Allow.push st.allows attrs
let pop st rules = F.Allow.pop st.allows rules

let report st ~file (loc : Location.t) rule message =
  if st.loud && not (F.Allow.active st.allows rule) then
    st.findings <- F.finding_of_loc ~file loc rule message :: st.findings

let u3_roots = [ "lib/core"; "lib/batch"; "lib/online"; "lib/meanfield" ]
let in_u3_zone file = List.exists (fun root -> F.under ~root file) u3_roots

(* Scoped lookup, as in pftk-flow's [resolve]: try the name qualified by
   progressively shorter prefixes of the referencing scope, longest
   first, so sibling references and wrapper-qualified cross-module paths
   land on the same keys. *)
let candidates ~scope base =
  let drop_last l = List.rev (List.tl (List.rev l)) in
  let rec go scope acc =
    let acc = String.concat "." (scope @ [ base ]) :: acc in
    match scope with [] -> acc | _ -> go (drop_last scope) acc
  in
  List.rev (go scope [])

let path_base p =
  match p with
  | Path.Pident id -> Ident.name id
  | _ -> F.canonical (Path.name p)

(* A callee's unit signature: a registered binding's (declared or
   inferred), else a bare interface declaration. *)
let lookup_sig st ~scope p =
  let keys = candidates ~scope (path_base p) in
  match
    List.find_map
      (fun k ->
        match Hashtbl.find_opt st.fns k with
        | Some { fn_sig = Some sg; _ } -> Some (k, sg)
        | _ -> None)
      keys
  with
  | Some _ as hit -> hit
  | None ->
      List.find_map
        (fun k -> Option.map (fun sg -> (k, sg)) (Hashtbl.find_opt st.decls k))
        keys

(* The record type a label belongs to, canonically, so "t.rtt" inside
   Params and "Pftk_core.Params.t.rtt" at a use site share a key. *)
let field_comp st ~scope (lbl : Types.label_description) =
  match Types.get_desc lbl.Types.lbl_res with
  | Types.Tconstr (p, _, _) ->
      let base = F.canonical (Path.name p) ^ "." ^ lbl.Types.lbl_name in
      List.find_map (Hashtbl.find_opt st.fields) (candidates ~scope base)
  | _ -> None

(* --- Operator classification ------------------------------------------------- *)

type op =
  | Same_join of bool  (* bool: polymorphic primitive, needs float args *)
  | Same_bool of bool
  | Mul
  | Div
  | Id1
  | Sqrt
  | Dimless1
  | Pow
  | Aget
  | Aset
  | Other

let classify = function
  | [ "+." ] | [ "-." ] | [ "Float"; ("add" | "sub" | "min" | "max" | "rem") ]
    ->
      Same_join false
  | [ ("min" | "max") ] -> Same_join true
  | [ ("<" | ">" | "<=" | ">=" | "=" | "<>" | "compare") ] -> Same_bool true
  | [ "Float"; ("compare" | "equal") ] -> Same_bool false
  | [ "*." ] | [ "Float"; "mul" ] -> Mul
  | [ "/." ] | [ "Float"; "div" ] -> Div
  | [ "~-."; ] | [ "abs_float" ] | [ "Float"; ("abs" | "neg" | "round" | "trunc") ]
    ->
      Id1
  | [ "sqrt" ] | [ "Float"; ("sqrt" | "cbrt") ] -> Sqrt
  | [ ("exp" | "log" | "log10" | "log1p" | "expm1" | "sin" | "cos" | "tan"
      | "atan" | "tanh") ]
  | [ "Float"; ("exp" | "log" | "log10" | "log1p" | "expm1" | "exp2" | "log2") ]
    ->
      Dimless1
  | [ "**" ] | [ "Float"; "pow" ] -> Pow
  | [ "Float"; "Array"; ("get" | "unsafe_get") ]
  | [ "Array"; ("get" | "unsafe_get") ] ->
      Aget
  | [ "Float"; "Array"; ("set" | "unsafe_set") ]
  | [ "Array"; ("set" | "unsafe_set") ] ->
      Aset
  | _ -> Other

(* --- Pattern binding ---------------------------------------------------------
   Binds pattern variables to an abstract value in [env] (keyed by
   [Ident.unique_name], so shadowing is free) and returns the keys to
   remove on scope exit.  [Some p] propagates the option payload — this
   is what makes the compiler's optional-argument desugaring
   ([match *opt*x with Some y -> y | None -> default]) transparent. *)
let rec bind_pat : type k. (string, av) Hashtbl.t -> k general_pattern -> av -> string list -> string list =
 fun env p v acc ->
  match p.pat_desc with
  | Tpat_var (id, _) ->
      let key = Ident.unique_name id in
      Hashtbl.replace env key v;
      key :: acc
  | Tpat_alias (inner, id, _) ->
      let key = Ident.unique_name id in
      Hashtbl.replace env key v;
      bind_pat env inner v (key :: acc)
  | Tpat_construct (_, cd, [ inner ], _)
    when String.equal cd.Types.cstr_name "Some" ->
      bind_pat env inner v acc
  | Tpat_value arg -> bind_pat env (arg :> value general_pattern) v acc
  | Tpat_or (a, b, _) -> bind_pat env b v (bind_pat env a v acc)
  | _ -> acc

let rec split_last = function
  | [ x ] -> ([], x)
  | x :: rest ->
      let l, last = split_last rest in
      (x :: l, last)
  | [] -> ([], Any)

(* --- Abstract interpretation -------------------------------------------------
   [infer] returns the abstract value of an expression, emitting U1/U2
   findings along the way when [st.loud].  Every sub-expression is
   walked exactly once per pass. *)

let rec infer st env fn e =
  let rs = push st e.exp_attributes in
  let v = infer_desc st env fn e in
  (* An expression-level [@pftk.unit "..."] is a cast: it overrides
     whatever the inference concluded, no questions asked. *)
  let v =
    match unit_attr e.exp_attributes with
    | Some (s, loc) -> (
        match unit_of_string s with
        | Ok u -> known u
        | Error m -> report st ~file:fn.fn_file loc "parse" m; v)
    | None -> v
  in
  pop st rs;
  v

and infer_desc st env fn e =
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_float _) -> Poly
  | Texp_constant _ -> Unknown
  | Texp_ident (p, _, _) -> ident_av st env fn p
  | Texp_let (_, vbs, body) ->
      let bound = List.concat_map (bind_vb st env fn) vbs in
      let v = infer st env fn body in
      List.iter (Hashtbl.remove env) bound;
      v
  | Texp_function { cases; _ } ->
      (* A lambda used as a value: walk the bodies for findings (with
         its parameters unbound — conservative), the closure itself is
         unit-opaque. *)
      List.iter
        (fun c ->
          Option.iter (fun g -> ignore (infer st env fn g)) c.c_guard;
          ignore (infer st env fn c.c_rhs))
        cases;
      Unknown
  | Texp_apply (callee, args) -> apply st env fn e callee args
  | Texp_ifthenelse (c, th, el) -> (
      ignore (infer st env fn c);
      let a = infer st env fn th in
      match el with None -> a | Some el -> join a (infer st env fn el))
  | Texp_match (scrut, cases, _) ->
      let sv = infer st env fn scrut in
      List.fold_left
        (fun acc c ->
          let bound = bind_pat env c.c_lhs sv [] in
          Option.iter (fun g -> ignore (infer st env fn g)) c.c_guard;
          let v = infer st env fn c.c_rhs in
          List.iter (Hashtbl.remove env) bound;
          join acc v)
        Poly cases
  | Texp_sequence (a, b) ->
      ignore (infer st env fn a);
      infer st env fn b
  | Texp_try (b, handlers) ->
      let v = infer st env fn b in
      List.iter (fun c -> ignore (infer st env fn c.c_rhs)) handlers;
      v
  | Texp_construct (_, cd, [ arg ]) when String.equal cd.Types.cstr_name "Some"
    ->
      infer st env fn arg
  | Texp_field (r, _, lbl) -> (
      ignore (infer st env fn r);
      match field_comp st ~scope:fn.fn_scope lbl with
      | Some c -> comp_av c
      | None -> Unknown)
  | Texp_setfield (r, _, lbl, v) ->
      ignore (infer st env fn r);
      check_field st fn v.exp_loc lbl (infer st env fn v);
      Unknown
  | Texp_record { fields; extended_expression; _ } ->
      Option.iter (fun ex -> ignore (infer st env fn ex)) extended_expression;
      Array.iter
        (fun (lbl, def) ->
          match def with
          | Overridden (_, ex) ->
              check_field st fn ex.exp_loc lbl (infer st env fn ex)
          | Kept _ -> ())
        fields;
      Unknown
  | _ ->
      let super = Tast_iterator.default_iterator in
      let it = { super with expr = (fun _ e -> ignore (infer st env fn e)) } in
      super.expr it e;
      Unknown

and ident_av st env fn p =
  match
    match p with
    | Path.Pident id -> Hashtbl.find_opt env (Ident.unique_name id)
    | _ -> None
  with
  | Some v -> v
  | None -> (
      match strip_stdlib (path_parts p) with
      | [ ("infinity" | "neg_infinity" | "epsilon_float" | "max_float"
          | "min_float" | "nan") ]
      | [ "Float";
          ( "infinity" | "neg_infinity" | "epsilon" | "nan" | "pi" | "zero"
          | "one" | "minus_one" | "max_float" | "min_float" ) ] ->
          Poly
      | _ -> (
          (* A unit-signed global used as a plain value. *)
          match lookup_sig st ~scope:fn.fn_scope p with
          | Some (_, [ res ]) -> comp_av res
          | _ -> Unknown))

and bind_vb st env fn vb =
  let rs = push st vb.vb_attributes in
  let v = infer st env fn vb.vb_expr in
  (* A single-component [@pftk.unit] on a local binding is a cast;
     arrow annotations belong to toplevel bindings (registration). *)
  let v =
    match unit_attr vb.vb_attributes with
    | Some (s, loc) -> (
        match sig_of_string s with
        | Ok [ c ] -> comp_av c
        | Ok _ -> v
        | Error m -> report st ~file:fn.fn_file loc "parse" m; v)
    | None -> v
  in
  let bound = bind_pat env vb.vb_pat v [] in
  pop st rs;
  bound

and check_same st fn loc what va vb =
  match (va, vb) with
  | Known x, Known y when x <> y ->
      report st ~file:fn.fn_file loc "U1"
        (Printf.sprintf "%s mixes units %s and %s" what (u_to_string x)
           (u_to_string y))
  | _ -> ()

and dimless_arg st fn loc what va =
  match va with
  | Known x ->
      report st ~file:fn.fn_file loc "U1"
        (Printf.sprintf "argument of %s must be dimensionless, got %s" what
           (u_to_string x))
  | _ -> ()

and check_field st fn loc (lbl : Types.label_description) va =
  match (field_comp st ~scope:fn.fn_scope lbl, va) with
  | Some (U x), Known y when x <> y ->
      report st ~file:fn.fn_file loc "U2"
        (Printf.sprintf "field '%s' declares unit %s but the value has unit %s"
           lbl.Types.lbl_name (u_to_string x) (u_to_string y))
  | Some Dimless, Known y ->
      report st ~file:fn.fn_file loc "U2"
        (Printf.sprintf
           "field '%s' is declared dimensionless but the value has unit %s"
           lbl.Types.lbl_name (u_to_string y))
  | _ -> ()

and apply st env fn e callee args =
  let walk_rest rest =
    List.iter
      (fun (_, a) -> Option.iter (fun a -> ignore (infer st env fn a)) a)
      rest
  in
  match callee.exp_desc with
  | Texp_ident (p, _, _) -> (
      let name = strip_stdlib (path_parts p) in
      let label = Printf.sprintf "'%s'" (String.concat "." name) in
      let float_args =
        match args with
        | (_, Some a) :: _ -> is_float a.exp_type
        | _ -> false
      in
      match (classify name, args) with
      | Same_join poly, [ (_, Some a); (_, Some b) ] when (not poly) || float_args ->
          let va = infer st env fn a and vb = infer st env fn b in
          check_same st fn e.exp_loc label va vb;
          join va vb
      | Same_bool poly, [ (_, Some a); (_, Some b) ] when (not poly) || float_args ->
          let va = infer st env fn a and vb = infer st env fn b in
          check_same st fn e.exp_loc label va vb;
          Unknown
      | (Mul | Div) as op, [ (_, Some a); (_, Some b) ] -> (
          let va = infer st env fn a and vb = infer st env fn b in
          match (exps_of va, exps_of vb) with
          | Some xa, Some xb ->
              known (if op = Mul then u_mul xa xb else u_div xa xb)
          | _ -> Unknown)
      | Id1, [ (_, Some a) ] -> infer st env fn a
      | (Sqrt | Dimless1), [ (_, Some a) ] -> (
          let va = infer st env fn a in
          dimless_arg st fn e.exp_loc label va;
          match va with Poly -> Poly | _ -> Unknown)
      | Pow, [ (_, Some a); (_, Some b) ] -> (
          let va = infer st env fn a and vb = infer st env fn b in
          dimless_arg st fn e.exp_loc label va;
          dimless_arg st fn e.exp_loc label vb;
          match (va, vb) with Poly, Poly -> Poly | _ -> Unknown)
      | Aget, [ (_, Some arr); (_, Some i) ] ->
          (* Convention: an array's abstract value is its element unit. *)
          let va = infer st env fn arr in
          ignore (infer st env fn i);
          va
      | Aset, [ (_, Some arr); (_, Some i); (_, Some v) ] ->
          let va = infer st env fn arr in
          ignore (infer st env fn i);
          let vv = infer st env fn v in
          (match (va, vv) with
          | Known x, Known y when x <> y ->
              report st ~file:fn.fn_file v.exp_loc "U2"
                (Printf.sprintf
                   "store into a %s array disagrees with the element unit: \
                    value has unit %s"
                   (u_to_string x) (u_to_string y))
          | _ -> ());
          Unknown
      | _, _ -> (
          match lookup_sig st ~scope:fn.fn_scope p with
          | None -> walk_rest args; Unknown
          | Some (cname, comps) ->
              let params, res = split_last comps in
              let rec go params args idx =
                match (params, args) with
                | _, [] -> (
                    (* Partial application keeps the residue opaque. *)
                    match params with [] -> comp_av res | _ :: _ -> Unknown)
                | [], rest -> walk_rest rest; Unknown
                | comp :: ps, (_, argo) :: rest ->
                    (match argo with
                    | Some a ->
                        check_arg st fn a.exp_loc cname idx comp
                          (infer st env fn a)
                    | None -> ());
                    go ps rest (idx + 1)
              in
              go params args 1))
  | _ ->
      ignore (infer st env fn callee);
      walk_rest args;
      Unknown

and check_arg st fn loc cname idx comp va =
  match (comp, va) with
  | U x, Known y when x <> y ->
      report st ~file:fn.fn_file loc "U2"
        (Printf.sprintf
           "argument %d of '%s' has unit %s but the declaration says %s" idx
           cname (u_to_string y) (u_to_string x))
  | Dimless, Known y ->
      report st ~file:fn.fn_file loc "U2"
        (Printf.sprintf
           "argument %d of '%s' has unit %s but the declaration says it is \
            dimensionless"
           idx cname (u_to_string y))
  | _ -> ()

(* Walk the parameter spine, binding each single-case [fun] level to its
   declared component; descends through the [let]s the compiler inserts
   for optional-argument defaults.  Returns the body's abstract value,
   or [Unknown] when the annotation's arity does not line up. *)
and spine st env fn params e =
  match (params, e.exp_desc) with
  | comp :: rest, Texp_function { cases = [ c ]; _ }
    when Option.is_none c.c_guard ->
      let bound = bind_pat env c.c_lhs (comp_av comp) [] in
      let v = spine st env fn rest c.c_rhs in
      List.iter (Hashtbl.remove env) bound;
      v
  | _ :: _, Texp_let (_, vbs, body) ->
      let bound = List.concat_map (bind_vb st env fn) vbs in
      let v = spine st env fn params body in
      List.iter (Hashtbl.remove env) bound;
      v
  | [], _ -> infer st env fn e
  | _ :: _, _ ->
      ignore (infer st env fn e);
      Unknown

(* --- Registration (implementations) ------------------------------------------ *)

let register_fields st ~file ~scope ~iface (decl : type_declaration) =
  match decl.typ_kind with
  | Ttype_record lds ->
      List.iter
        (fun (ld : label_declaration) ->
          (* The attribute may attach to the label or to its core type
             (`x : float [@pftk.unit "s"];` parses either way). *)
          let attrs = ld.ld_attributes @ ld.ld_type.ctyp_attributes in
          let rs = push st attrs in
          let key =
            String.concat "." (scope @ [ decl.typ_name.txt; ld.ld_name.txt ])
          in
          (match unit_attr attrs with
          | Some (s, loc) -> (
              match comp_of_string s with
              | Ok c -> Hashtbl.replace st.fields key c
              | Error m -> report st ~file loc "parse" m)
          | None ->
              if iface && in_u3_zone file && mentions_float ld.ld_type.ctyp_type
              then
                report st ~file ld.ld_loc "U3"
                  (Printf.sprintf
                     "float field '%s' of '%s' has no [@pftk.unit] annotation \
                      (\"1\" states dimensionless explicitly)"
                     ld.ld_name.txt
                     (String.concat "." (scope @ [ decl.typ_name.txt ]))));
          pop st rs)
        lds
  | _ -> ()

let register_binding st ~file ~scope vb =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) ->
      let name = String.concat "." (scope @ [ Ident.name id ]) in
      let sg, declared =
        match unit_attr vb.vb_attributes with
        | Some (s, loc) -> (
            match sig_of_string s with
            | Ok comps -> (Some comps, true)
            | Error m -> report st ~file loc "parse" m; (None, false))
        | None -> (
            match Hashtbl.find_opt st.decls name with
            | Some comps -> (Some comps, true)
            | None -> (None, false))
      in
      let fn =
        {
          fn_name = name;
          fn_scope = scope;
          fn_file = file;
          fn_attrs = vb.vb_attributes;
          fn_expr = vb.vb_expr;
          fn_sig = sg;
          fn_declared = declared;
        }
      in
      Hashtbl.replace st.fns name fn;
      st.order <- fn :: st.order
  | _ -> ()

let rec module_structure me =
  match me.mod_desc with
  | Tmod_structure s -> Some s
  | Tmod_constraint (me, _, _, _) -> module_structure me
  | _ -> None

let rec register_structure st ~file ~scope (str : structure) =
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.iter (register_binding st ~file ~scope) vbs
      | Tstr_type (_, decls) ->
          List.iter (register_fields st ~file ~scope ~iface:false) decls
      | Tstr_module mb -> register_module st ~file ~scope mb
      | Tstr_recmodule mbs -> List.iter (register_module st ~file ~scope) mbs
      | _ -> ())
    str.str_items

and register_module st ~file ~scope mb =
  match (mb.mb_name.Location.txt, module_structure mb.mb_expr) with
  | Some name, Some s -> register_structure st ~file ~scope:(scope @ [ name ]) s
  | _ -> ()

(* --- Interface pass (declarations + U3) --------------------------------------- *)

let rec interface st ~file ~scope (sg : signature) =
  List.iter
    (fun (item : signature_item) ->
      match item.sig_desc with
      | Tsig_value vd ->
          let rs = push st vd.val_attributes in
          let name = String.concat "." (scope @ [ Ident.name vd.val_id ]) in
          (match unit_attr vd.val_attributes with
          | Some (s, loc) -> (
              match sig_of_string s with
              | Ok comps ->
                  let n = List.length (arrow_comps vd.val_val.Types.val_type) in
                  if List.length comps <> n then
                    report st ~file loc "parse"
                      (Printf.sprintf
                         "[@pftk.unit] on '%s' has %d components but the type \
                          has %d"
                         (Ident.name vd.val_id) (List.length comps) n)
                  else Hashtbl.replace st.decls name comps
              | Error m -> report st ~file loc "parse" m)
          | None ->
              if in_u3_zone file && mentions_float vd.val_val.Types.val_type
              then
                report st ~file vd.val_loc "U3"
                  (Printf.sprintf
                     "exported float signature item '%s' has no [@pftk.unit] \
                      annotation (\"_\" and \"1\" state unit-free and \
                      dimensionless components explicitly)"
                     name));
          pop st rs
      | Tsig_type (_, decls) ->
          List.iter (register_fields st ~file ~scope ~iface:true) decls
      | Tsig_module md -> (
          match (md.md_name.Location.txt, md.md_type.mty_desc) with
          | Some name, Tmty_signature s ->
              interface st ~file ~scope:(scope @ [ name ]) s
          | _ -> ())
      | _ -> ())
    sg.sig_items

(* --- Inference fixpoint (quiet) ------------------------------------------------
   Gives unannotated functions a signature the checking pass and call
   sites can use: an alias copies its callee's signature wholesale; a
   body that abstract-evaluates to a known unit exports [_ -> ... -> u].
   Quiet: [st.loud] is off, so these walks emit nothing. *)

let rec spine_arity e =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } when Option.is_none c.c_guard ->
      1 + spine_arity c.c_rhs
  | _ -> 0

let infer_results st fns =
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 4 do
    changed := false;
    incr rounds;
    List.iter
      (fun fn ->
        if Option.is_none fn.fn_sig then begin
          (match fn.fn_expr.exp_desc with
          | Texp_ident (p, _, _) -> (
              match lookup_sig st ~scope:fn.fn_scope p with
              | Some (_, comps) ->
                  fn.fn_sig <- Some comps;
                  changed := true
              | None -> ())
          | _ -> ());
          if Option.is_none fn.fn_sig then begin
            let n = spine_arity fn.fn_expr in
            let env = Hashtbl.create 16 in
            match spine st env fn (List.init n (fun _ -> Any)) fn.fn_expr with
            | Known u ->
                fn.fn_sig <- Some (List.init n (fun _ -> Any) @ [ U u ]);
                changed := true
            | _ -> ()
          end
        end)
      fns
  done

(* --- Checking pass (loud) ------------------------------------------------------ *)

let check_fn st fn =
  let rs = push st fn.fn_attrs in
  let env = Hashtbl.create 16 in
  (match fn.fn_sig with
  | Some comps -> (
      let params, res = split_last comps in
      let v = spine st env fn params fn.fn_expr in
      if fn.fn_declared then
        match (res, v) with
        | U x, Known y when x <> y ->
            report st ~file:fn.fn_file fn.fn_expr.exp_loc "U4"
              (Printf.sprintf
                 "'%s' declares result unit %s but its body has unit %s"
                 fn.fn_name (u_to_string x) (u_to_string y))
        | Dimless, Known y ->
            report st ~file:fn.fn_file fn.fn_expr.exp_loc "U4"
              (Printf.sprintf
                 "'%s' declares a dimensionless result but its body has unit \
                  %s"
                 fn.fn_name (u_to_string y))
        | _ -> ())
  | None -> ignore (infer st env fn fn.fn_expr));
  pop st rs

(* --- Driver -------------------------------------------------------------------- *)

let cmt_files = F.Cmt.files

let analyze_paths paths =
  let st =
    {
      fns = Hashtbl.create 512;
      order = [];
      decls = Hashtbl.create 256;
      fields = Hashtbl.create 64;
      findings = [];
      allows = F.Allow.create ();
      loud = true;
    }
  in
  let units = F.Cmt.load_all paths in
  List.iter
    (fun (u : F.Cmt.unit_info) ->
      match u.u_annots with
      | Cmt_format.Interface sg -> interface st ~file:u.u_src ~scope:[ u.u_name ] sg
      | _ -> ())
    units;
  List.iter
    (fun (u : F.Cmt.unit_info) ->
      match u.u_annots with
      | Cmt_format.Implementation str ->
          register_structure st ~file:u.u_src ~scope:[ u.u_name ] str
      | _ -> ())
    units;
  let fns = List.rev st.order in
  st.loud <- false;
  infer_results st fns;
  st.loud <- true;
  List.iter (check_fn st) fns;
  List.sort_uniq F.compare_findings st.findings
