(** Shared plumbing for the four in-repo analyzers — pftk-lint (AST
    rules L1–L5), pftk-race (typed rules R1–R4), pftk-flow
    (interprocedural rules F1–F4) and pftk-units (dimensional rules
    U1–U4).  Everything the engines have in
    common lives here so each engine file carries only its rules: the
    finding record with its text and JSON renderings, path-zone tests,
    the scoped [[@lint.allow "..."]] escape hatch, canonical-name
    helpers for dune's wrapped-library name mangling, [.cmt]/[.cmti]
    discovery/loading, and the common CLI protocol. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, compiler convention *)
  rule : string;
      (** "L1".."L5", "R1".."R4", "F1".."F4", "U1".."U4", or "parse" *)
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit
(** Renders as [file:line:col [rule] message]. *)

val pp_findings_json : Format.formatter -> finding list -> unit
(** Renders the findings as a JSON array, one object per finding with
    fields [file], [line], [col], [rule], [message] — the
    [--format=json] output consumed by CI and editor integrations. *)

val pp_findings_sarif : tool:string -> Format.formatter -> finding list -> unit
(** Renders the findings as a SARIF 2.1.0 log (one run, driver [tool],
    a rule descriptor per distinct rule id, one result per finding) —
    the [--format=sarif] output GitHub code scanning and SARIF-aware
    editors ingest.  SARIF columns are 1-based, so [startColumn] is
    [col + 1]. *)

val compare_findings : finding -> finding -> int
(** Orders by file, then line, then column, then rule, then message. *)

val finding_of_loc : file:string -> Location.t -> string -> string -> finding
(** [finding_of_loc ~file loc rule message]: a finding at [loc]'s start
    position. *)

val contains_sub : string -> string -> bool
(** [contains_sub s sub]: does [s] contain [sub]? *)

val normalize : string -> string
(** Forward slashes, no leading [./]. *)

val under : root:string -> string -> bool
(** [under ~root path]: is [path] inside directory [root], whether given
    workspace-relative or absolute? Shared zone test for all engines. *)

val allows_of_attrs : Parsetree.attributes -> string list
(** Rule names listed in [[@lint.allow "..."]] attributes (space- or
    comma-separated). Typedtree attributes are Parsetree attributes, so
    the typed engines use the same reader. *)

(** Scoped suppression bookkeeping: a counting multiset of the rules
    currently allowed. Engines [push] on entering an attributed node and
    [pop] with the returned list on the way out. *)
module Allow : sig
  type t

  val create : unit -> t
  val push : t -> Parsetree.attributes -> string list
  val pop : t -> string list -> unit

  val active : t -> string -> bool
  (** Is a [[@lint.allow rule]] in scope? *)
end

val canonical : string -> string
(** dune mangles wrapped-library module names as [Pftk_core__Params];
    [Path.name] at use sites goes through the wrapper alias and prints
    [Pftk_core.Params.t]. Replacing ["__"] with ["."] puts declarations
    and references in the same namespace. *)

val split_canonical : string -> string list
(** [canonical] then split on ['.']. *)

val strip_stdlib : string list -> string list
(** Drops a leading ["Stdlib"] component so [Stdlib.compare] and
    [compare] look alike. *)

(** [.cmt]/[.cmti] discovery and loading for the typed engines. *)
module Cmt : sig
  type unit_info = {
    u_name : string;  (** canonical unit name *)
    u_src : string;  (** source path recorded in the cmt *)
    u_annots : Cmt_format.binary_annots;
  }

  val files : string list -> string list
  (** The [.cmt]/[.cmti] files under the given paths (directories walked
      recursively, including dot-directories; plain files taken as-is),
      sorted and deduplicated. Lets callers distinguish "clean tree"
      from "nothing was analyzed because no build artefacts exist". *)

  val load : string -> unit_info option
  (** One file; [None] if unreadable. *)

  val load_all : string list -> unit_info list
  (** [load] over [files], dropping unreadable entries. *)
end

val expand_build_roots : string list -> string list
(** Each root looked up both as given and under [_build/default], so the
    cmt-reading tools work from the build context (dune alias rules) and
    from the source root (developers, the bench gate). *)

val run_cli :
  tool:string ->
  default_roots:string list ->
  analyze:(string list -> (finding list * string, string) result) ->
  unit
(** The CLI protocol shared by all four tools: positional arguments are
    roots (defaulting to [default_roots]), [--format=json] switches the
    report to JSON and [--format=sarif] to SARIF 2.1.0, any other [--]
    option errors with exit 2. [analyze]
    maps the roots to findings plus a human summary detail for the
    "clean (...)" stderr line, or [Error message] (printed as
    "tool: message", exit 2). Exits 0 when clean, 1 on findings. *)
