(* Command-line front end: [pftk_lint DIR...] lints every .ml under the
   given roots (default: lib bin bench examples), prints findings as
   file:line:col [rule] message (or a JSON array with --format=json),
   and exits non-zero if any survive. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--format=json" args in
  let bad =
    List.filter
      (fun a ->
        String.length a >= 2
        && String.sub a 0 2 = "--"
        && a <> "--format=json" && a <> "--format=text")
      args
  in
  (match bad with
  | [] -> ()
  | b :: _ ->
      Printf.eprintf "pftk-lint: unknown option %s\n" b;
      exit 2);
  let roots =
    match
      List.filter
        (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
        args
    with
    | [] -> [ "lib"; "bin"; "bench"; "examples" ]
    | roots -> roots
  in
  let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
  List.iter (Printf.eprintf "pftk-lint: warning: no such directory: %s\n") missing;
  let roots = List.filter Sys.file_exists roots in
  let findings = Pftk_lint_engine.lint_dirs roots in
  if json then Format.printf "%a@." Pftk_lint_engine.pp_findings_json findings
  else List.iter (Format.printf "%a@." Pftk_lint_engine.pp_finding) findings;
  match findings with
  | [] ->
      Printf.eprintf "pftk-lint: clean (%s)\n" (String.concat " " roots);
      exit 0
  | _ :: _ ->
      Printf.eprintf "pftk-lint: %d finding(s)\n" (List.length findings);
      exit 1
