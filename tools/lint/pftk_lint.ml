(* Command-line front end: [pftk_lint DIR...] lints every .ml under the
   given roots (default: lib bin bench examples), prints findings as
   file:line:col [rule] message (or a JSON array with --format=json),
   and exits non-zero if any survive. *)

let () =
  Pftk_findings.run_cli ~tool:"pftk-lint"
    ~default_roots:[ "lib"; "bin"; "bench"; "examples" ]
    ~analyze:(fun roots ->
      let missing = List.filter (fun r -> not (Sys.file_exists r)) roots in
      List.iter
        (Printf.eprintf "pftk-lint: warning: no such directory: %s\n")
        missing;
      let roots = List.filter Sys.file_exists roots in
      Ok (Pftk_lint_engine.lint_dirs roots, String.concat " " roots))
