(** AST-level static analysis for the pftk tree.

    Parses implementation files with the compiler's own parser and walks
    the Parsetree enforcing the repo invariants that the domain-parallel
    experiment runner depends on:

    - [L1] no polymorphic structural comparison ([=], [<>], [compare],
      [min], [max]) in [lib/core] and [lib/stats]: model math must use
      [Float.equal]/[Float.compare] or other explicit comparators (NaN
      and record-identity hazards).
    - [L2] determinism: no [Random.*], [Sys.time] or
      [Unix.gettimeofday] anywhere under [lib/]; randomness flows only
      through [Pftk_stats.Rng] and wall-clock readings belong in
      [bench/].
    - [L3] domain-safety: no module-toplevel [ref], [Hashtbl.create],
      [Buffer.create] or mutable-field record literal in [lib/]; shared
      mutable state races under [Pftk_parallel] fan-outs.
    - [L4] interface hygiene: every [lib/] module keeps a paired [.mli].
    - [L5] no [Obj.magic] and no partial [List.hd]/[Option.get] in
      [lib/].

    A finding can be suppressed by annotating the offending expression
    or binding with [[@lint.allow "L2"]] (several rules may be listed,
    separated by spaces or commas); the attribute scopes to the
    annotated subtree only, so every exception stays visible in the
    diff. *)

type finding = Pftk_findings.finding = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, compiler convention *)
  rule : string;  (** "L1".."L5", or "parse" for unparseable input *)
  message : string;
}
(** Re-export of {!Pftk_findings.finding} (the record shared by all
    three analyzers) so existing consumers keep their spelling. *)

val pp_finding : Format.formatter -> finding -> unit
(** Renders as [file:line:col [rule] message]. *)

val pp_findings_json : Format.formatter -> finding list -> unit
(** Renders the findings as a JSON array, one object per finding with
    fields [file], [line], [col], [rule], [message] — the [--format=json]
    output consumed by CI and editor integrations. *)

val compare_findings : finding -> finding -> int
(** Orders by file, then line, then column, then rule. *)

val under : root:string -> string -> bool
(** [under ~root path]: is [path] inside directory [root], whether given
    workspace-relative or absolute? Shared zone test for both analysis
    engines. *)

val allows_of_attrs : Parsetree.attributes -> string list
(** Rule names listed in [[@lint.allow "..."]] attributes (space- or
    comma-separated). Exposed so the typed engine (pftk-race) honours the
    same escape hatch; Typedtree attributes are Parsetree attributes. *)

val lint_source : path:string -> string -> finding list
(** [lint_source ~path src] lints one compilation unit given its source
    text. [path] decides which rules apply (e.g. only [lib/core] and
    [lib/stats] get L1) and appears in findings. Does not touch the
    filesystem, so it never reports L4. *)

val lint_dirs : string list -> finding list
(** Recursively collects every [.ml] under the given roots (skipping
    [_build] and dot-directories), lints each, and checks the L4
    [.mli]-pairing invariant for files under [lib/]. Findings are sorted
    by file, then position. *)
