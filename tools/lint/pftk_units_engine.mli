(** pftk-units: typed dimensional analysis over the [.cmt]/[.cmti] files
    dune emits.  Every PFTK quantity has a physical dimension — RTT and
    T0 in seconds, windows and per-TDP packet counts in packets, send
    rates in packets/second, [p] and Q-hat dimensionless probabilities —
    but in the source they are all bare [float]s.  This engine gives the
    analyzer stack a unit algebra and checks it across module
    boundaries.

    {2 The algebra}

    Base dimensions [s] (seconds), [pkt] (packets) and [byte] (bytes)
    with integer exponents, composed with [*], [/] and [^]: ["pkt/s"],
    ["byte/s"], ["s^2"], ["1/s"].  ["1"] and ["prob"] both denote the
    dimensionless unit: probabilities, ratios, counts-of-rounds and the
    paper's pure-number expressions ([ (1-p)/p ], [Q-hat], delivery
    ratios) carry no dimension.  Dimensionless values behave like float
    literals — they adapt to any context — so eq. (5)'s
    [(1-p)/p + E[W]] (a pure number plus a packet count) is fine, while
    [rtt +. window] (seconds plus packets) is a finding.

    {2 Declaring units}

    - On a signature item: [val send_rate : rtt:float -> b:int -> float
      -> float [@@pftk.unit "s -> _ -> prob -> pkt/s"]] — one component
      per arrow component, [_] for components that carry no constraint
      (non-floats, unit-polymorphic arguments), the last component is
      the result.  A parenthesized tuple component (["(prob, s, s,
      pkt)"]) documents per-element units of a tuple.
    - On a record field (interface or implementation):
      [rtt : float [@pftk.unit "s"]].  For [floatarray]/[float array]
      fields the unit is the {e element} unit.
    - On a [let] binding in an implementation, same arrow spelling —
      this is how internal helpers opt in.
    - On an expression: [(float_of_int wm [@pftk.unit "pkt"])] {e
      asserts} a unit on a value the inference cannot see through
      (typically an [int] crossing into float arithmetic).

    Units of [int]-typed components are never tracked (counts are
    dimensionless); [float_of_int] yields an unknown unit unless cast.

    {2 The rules}

    - [U1] no mixed-unit addition, subtraction, comparison,
      [Float.min]/[Float.max]/[Float.rem], and no dimensioned argument
      to [sqrt]/[exp]/[log]/[log1p]/[expm1]/[**] — when both sides have
      a known, non-dimensionless unit and they differ.
    - [U2] call sites must match declared parameter units (resolved
      through the cross-module call graph, aliases included), record
      construction and field/array stores must match declared field
      units.
    - [U3] every exported float-mentioning signature item (values and
      record fields) in [lib/core], [lib/batch] and [lib/online] must
      carry a [[@pftk.unit]] annotation — ["1"] (or [_] per component)
      is an explicit statement, absence is the finding.
    - [U4] a function whose declaration names a result unit must not
      return a body inferred to a {e different} known unit.

    {2 Heuristics and limits (documented, deliberate)}

    Inference is conservative: a finding requires both sides to be
    {e known}, so unannotated code stays silent rather than noisy.
    Units flow through float arithmetic, [let]/[match]/[if] joins,
    [Some]/option payloads, record fields, [Float.Array.get]/[set] (and
    [Array.get]/[set]) element access, and declared or inferred
    function results; [float_of_int] and record values themselves are
    unit-opaque.  Result units of unannotated functions are inferred
    via a small fixpoint (aliases copy their callee's signature; a body
    that infers to a known unit exports it), mirroring pftk-flow's
    call-graph closure.  Toplevel [let () = ...] effects are not
    walked, as in pftk-flow.

    Findings use the shared pftk-findings format and honour the same
    scoped [[@lint.allow "U1"]] escape hatch on expressions, value
    bindings, signature items and record labels.

    The analyzer keeps run-wide state; it is not thread-safe. *)

val parse_unit : string -> (string, string) result
(** Parse a unit expression and return its normalized rendering
    (["prob"] normalizes to ["1"], ["pkt*1/s"] to ["pkt/s"]), or a
    parse-error message.  Exposed for the unit-algebra tests. *)

val parse_sig : string -> (string, string) result
(** Parse a full arrow annotation (["s -> _ -> pkt/s"]) and return its
    normalized rendering.  Exposed for the unit-algebra tests. *)

val u3_roots : string list
(** The interface zone U3 audits: [lib/core], [lib/batch],
    [lib/online]. *)

val cmt_files : string list -> string list
(** The [.cmt]/[.cmti] files the analyzer would load under the given
    paths (sorted, deduplicated). Lets callers distinguish "clean tree"
    from "nothing was analyzed because no build artefacts exist". *)

val analyze_paths : string list -> Pftk_findings.finding list
(** [analyze_paths paths] loads every [.cmt]/[.cmti] under the given
    paths, collects declared units from the interfaces (checking U3 in
    the zone), registers every toplevel and nested-module binding,
    closes alias/result-unit inference over the call graph, then
    abstract-interprets each body enforcing U1, U2 and U4.  Findings
    are sorted by file then position, and deduplicated. *)
