(* Shared plumbing for the in-repo analyzers (pftk-lint, pftk-race,
   pftk-flow): the finding record and its two renderings, the path-zone
   tests, the scoped [@lint.allow "..."] escape hatch, canonical-name
   helpers for dune's wrapped-library mangling, .cmt/.cmti discovery and
   loading, and the common CLI protocol (argument parsing, --format=json,
   exit codes). Each engine keeps only its rules. *)

type finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.message

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_findings_json ppf fs =
  Format.fprintf ppf "[";
  List.iteri
    (fun i f ->
      Format.fprintf ppf "%s@\n  " (if i = 0 then "" else ",");
      Format.fprintf ppf
        {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
        (json_escape f.file) f.line f.col (json_escape f.rule)
        (json_escape f.message))
    fs;
  Format.fprintf ppf "%s]" (if fs = [] then "" else "\n")

(* SARIF 2.1.0: the minimal static-analysis interchange shape GitHub
   code scanning and most editors ingest — one run, one driver, one
   rule descriptor per distinct rule id, one result per finding.
   Columns are 1-based in SARIF where the compiler convention (and our
   text/JSON output) is 0-based, hence [col + 1]. *)
let pp_findings_sarif ~tool ppf fs =
  let rules =
    List.sort_uniq String.compare (List.map (fun f -> f.rule) fs)
  in
  Format.fprintf ppf "{@\n";
  Format.fprintf ppf
    {|  "$schema": "https://json.schemastore.org/sarif-2.1.0.json",|};
  Format.fprintf ppf "@\n  \"version\": \"2.1.0\",@\n  \"runs\": [@\n";
  Format.fprintf ppf "    {@\n      \"tool\": {@\n        \"driver\": {@\n";
  Format.fprintf ppf "          \"name\": \"%s\",@\n" (json_escape tool);
  Format.fprintf ppf "          \"rules\": [";
  List.iteri
    (fun i r ->
      Format.fprintf ppf "%s{\"id\": \"%s\"}"
        (if i = 0 then "" else ", ")
        (json_escape r))
    rules;
  Format.fprintf ppf "]@\n        }@\n      },@\n      \"results\": [";
  List.iteri
    (fun i f ->
      Format.fprintf ppf "%s@\n        " (if i = 0 then "" else ",");
      Format.fprintf ppf
        {|{"ruleId": "%s", "level": "error", "message": {"text": "%s"}, "locations": [{"physicalLocation": {"artifactLocation": {"uri": "%s"}, "region": {"startLine": %d, "startColumn": %d}}}]}|}
        (json_escape f.rule) (json_escape f.message) (json_escape f.file)
        f.line (f.col + 1))
    fs;
  Format.fprintf ppf "%s]@\n    }@\n  ]@\n}"
    (if fs = [] then "" else "\n      ")

let compare_findings a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let finding_of_loc ~file (loc : Location.t) rule message =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    rule;
    message;
  }

(* --- Path zones ----------------------------------------------------------- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let normalize path =
  let path = String.map (fun c -> if c = '\\' then '/' else c) path in
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let under ~root path =
  let path = normalize path in
  String.length path > String.length root
  && (String.sub path 0 (String.length root + 1) = root ^ "/"
     || contains_sub path ("/" ^ root ^ "/"))

(* --- [@lint.allow "..."] -------------------------------------------------- *)

let allows_of_attrs attrs =
  List.concat_map
    (fun a ->
      if a.Parsetree.attr_name.Location.txt <> "lint.allow" then []
      else
        match a.Parsetree.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( {
                        pexp_desc = Pexp_constant (Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
            String.split_on_char ' ' s
            |> List.concat_map (String.split_on_char ',')
            |> List.filter (fun r -> r <> "")
        | _ -> [])
    attrs

module Allow = struct
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 4

  let push t attrs =
    let rules = allows_of_attrs attrs in
    List.iter
      (fun r ->
        let n = Option.value ~default:0 (Hashtbl.find_opt t r) in
        Hashtbl.replace t r (n + 1))
      rules;
    rules

  let pop t rules =
    List.iter
      (fun r ->
        match Hashtbl.find_opt t r with
        | Some n when n > 1 -> Hashtbl.replace t r (n - 1)
        | Some _ -> Hashtbl.remove t r
        | None -> ())
      rules

  let active t rule = Hashtbl.mem t rule
end

(* --- Canonical names ------------------------------------------------------- *)

let canonical name =
  let n = String.length name in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

let split_canonical name = String.split_on_char '.' (canonical name)

let strip_stdlib = function
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | parts -> parts

(* --- .cmt / .cmti loading -------------------------------------------------- *)

module Cmt = struct
  type unit_info = {
    u_name : string;
    u_src : string;
    u_annots : Cmt_format.binary_annots;
  }

  let rec collect acc path =
    match Sys.is_directory path with
    | exception Sys_error _ -> acc
    | true ->
        (* Walk dot-directories too: dune keeps objects in [.objs]. *)
        Array.fold_left
          (fun acc entry -> collect acc (Filename.concat path entry))
          acc (Sys.readdir path)
    | false ->
        if
          Filename.check_suffix path ".cmt"
          || Filename.check_suffix path ".cmti"
        then path :: acc
        else acc

  let files paths =
    List.sort_uniq String.compare
      (List.fold_left
         (fun acc p -> if Sys.file_exists p then collect acc p else acc)
         [] paths)

  let load path =
    match Cmt_format.read_cmt path with
    | exception _ -> None
    | cmt ->
        let src =
          match cmt.Cmt_format.cmt_sourcefile with Some s -> s | None -> path
        in
        Some
          {
            u_name = canonical cmt.Cmt_format.cmt_modname;
            u_src = src;
            u_annots = cmt.Cmt_format.cmt_annots;
          }

  let load_all paths = List.filter_map load (files paths)
end

let expand_build_roots roots =
  List.concat_map
    (fun r ->
      let built = Filename.concat (Filename.concat "_build" "default") r in
      (if Sys.file_exists r then [ r ] else [])
      @ if Sys.file_exists built then [ built ] else [])
    roots

(* --- CLI protocol ---------------------------------------------------------- *)

let run_cli ~tool ~default_roots ~analyze =
  let args = List.tl (Array.to_list Sys.argv) in
  let json = List.mem "--format=json" args in
  let sarif = List.mem "--format=sarif" args in
  let bad =
    List.filter
      (fun a ->
        String.length a >= 2
        && String.sub a 0 2 = "--"
        && a <> "--format=json" && a <> "--format=sarif"
        && a <> "--format=text")
      args
  in
  (match bad with
  | [] -> ()
  | b :: _ ->
      Printf.eprintf "%s: unknown option %s\n" tool b;
      exit 2);
  let roots =
    match
      List.filter
        (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
        args
    with
    | [] -> default_roots
    | roots -> roots
  in
  match analyze roots with
  | Error message ->
      Printf.eprintf "%s: %s\n" tool message;
      exit 2
  | Ok (findings, detail) -> (
      if sarif then Format.printf "%a@." (pp_findings_sarif ~tool) findings
      else if json then Format.printf "%a@." pp_findings_json findings
      else List.iter (Format.printf "%a@." pp_finding) findings;
      match findings with
      | [] ->
          Printf.eprintf "%s: clean (%s)\n" tool detail;
          exit 0
      | _ :: _ ->
          Printf.eprintf "%s: %d finding(s)\n" tool (List.length findings);
          exit 1)
