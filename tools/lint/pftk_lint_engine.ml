(* AST-level lint pass over the pftk tree, built on the compiler's own
   parser (compiler-libs.common) so it needs no new dependencies and
   never disagrees with the compiler about what the source means.

   The rules (L1-L5, see the .mli) are all syntactic: they run on the
   Parsetree, before typing, so e.g. L1 flags every use of the
   polymorphic [=] in model code even when it would specialize to [int]
   -- the point is that model arithmetic spells its comparators out. *)

open Parsetree

(* The finding record, its renderings, the path-zone tests and the
   [@lint.allow] machinery are shared by all three analyzers; see
   pftk_findings.mli.  Re-exported here so existing consumers (tests,
   the bench gate) keep their spelling. *)
type finding = Pftk_findings.finding = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let pp_finding = Pftk_findings.pp_finding
let pp_findings_json = Pftk_findings.pp_findings_json
let compare_findings = Pftk_findings.compare_findings
let normalize = Pftk_findings.normalize
let under = Pftk_findings.under

let in_lib path = under ~root:"lib" path

let in_core_or_stats path =
  under ~root:"lib/core" path || under ~root:"lib/stats" path

(* --- Longident helpers ---------------------------------------------------- *)

(* Flatten, dropping functor applications, then strip an explicit
   [Stdlib.] prefix so [Stdlib.compare] and [compare] look alike. *)
let ident_parts lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply (l, _) -> go acc l
  in
  match go [] lid with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | parts -> parts

let is_poly_compare = function
  | "=" | "<>" | "compare" | "min" | "max" -> true
  | _ -> false

let allows_of_attrs = Pftk_findings.allows_of_attrs

(* --- Per-file context ----------------------------------------------------- *)

type ctx = {
  path : string;
  findings : finding list ref;
  allowed : Pftk_findings.Allow.t;  (* active [@lint.allow] rules *)
  local_defs : (string, unit) Hashtbl.t;  (* toplevel lets in this unit *)
  local_mutable : (string, unit) Hashtbl.t;  (* mutable fields, this unit *)
  qualified_mutable : (string * string, unit) Hashtbl.t;
      (* (Module, field) pairs known mutable, across the whole run *)
  eager : bool ref;
      (* inside code evaluated at module-init time (toplevel, outside
         any function body): where L3 creation of mutable state races *)
}

let push_allows ctx attrs = Pftk_findings.Allow.push ctx.allowed attrs
let pop_allows ctx rules = Pftk_findings.Allow.pop ctx.allowed rules

let report ctx (loc : Location.t) rule message =
  if not (Pftk_findings.Allow.active ctx.allowed rule) then
    ctx.findings :=
      Pftk_findings.finding_of_loc ~file:ctx.path loc rule message
      :: !(ctx.findings)

(* --- Pre-scans ------------------------------------------------------------ *)

let iter_pattern_vars f p =
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var s -> f s.txt
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it p

(* Names bound by toplevel [let]s of this unit: a bare [min] after
   [let min a = ...] refers to the local, monomorphic definition, so L1
   must not flag it. *)
let collect_local_defs structure =
  let defs = Hashtbl.create 16 in
  List.iter
    (fun si ->
      match si.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb -> iter_pattern_vars (fun v -> Hashtbl.replace defs v ()) vb.pvb_pat)
            vbs
      | _ -> ())
    structure;
  defs

let collect_mutable_fields structure =
  let fields = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          (match td.ptype_kind with
          | Ptype_record lds ->
              List.iter
                (fun ld ->
                  match ld.pld_mutable with
                  | Asttypes.Mutable -> Hashtbl.replace fields ld.pld_name.txt ()
                  | Asttypes.Immutable -> ())
                lds
          | _ -> ());
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it structure;
  fields

(* --- The checker ---------------------------------------------------------- *)

let check_ident ctx lid (loc : Location.t) =
  let lib = in_lib ctx.path in
  (match ident_parts lid with
  | [ n ] when is_poly_compare n && in_core_or_stats ctx.path ->
      (* Qualified [Stdlib.compare] is always polymorphic; a bare name
         may resolve to a local monomorphic definition. *)
      let shadowed =
        (match lid with Longident.Lident _ -> true | _ -> false)
        && Hashtbl.mem ctx.local_defs n
      in
      if not shadowed then
        report ctx loc "L1"
          (Printf.sprintf
             "polymorphic comparison `%s' in model code; use Float.equal, \
              Float.compare, Int.equal, ... (NaN and structural-equality \
              hazards)"
             n)
  | _ -> ());
  if lib then
    match ident_parts lid with
    | "Random" :: _ :: _ ->
        report ctx loc "L2"
          "Random.* in lib/; all randomness must flow through Pftk_stats.Rng \
           so parallel runs stay reproducible"
    | [ "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ] ->
        report ctx loc "L2"
          "wall-clock reading in lib/; timing belongs in bench/, not in model \
           or experiment code"
    | [ "Obj"; "magic" ] -> report ctx loc "L5" "Obj.magic defeats the type system"
    | [ "List"; "hd" ] ->
        report ctx loc "L5"
          "partial List.hd in lib/; match on the list (or use a non-empty \
           representation)"
    | [ "Option"; "get" ] ->
        report ctx loc "L5"
          "partial Option.get in lib/; match on the option or use \
           Option.value"
    | _ -> ()

let mutable_label ctx (lid : Longident.t Asttypes.loc) =
  match lid.txt with
  | Longident.Lident f when Hashtbl.mem ctx.local_mutable f -> Some f
  | Longident.Ldot (path, f) -> (
      match ident_parts (Longident.Ldot (path, f)) with
      | [ m; field ] when Hashtbl.mem ctx.qualified_mutable (m, field) ->
          Some (m ^ "." ^ field)
      | _ -> None)
  | _ -> None

let check_eager_expr ctx e =
  if in_lib ctx.path && !(ctx.eager) then
    match e.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, _) -> (
        match ident_parts lid.txt with
        | [ "ref" ] | [ "Hashtbl"; "create" ] | [ "Buffer"; "create" ] ->
            report ctx e.pexp_loc "L3"
              (Printf.sprintf
                 "`%s' at module toplevel creates shared mutable state; this \
                  races under Pftk_parallel domain fan-outs -- allocate it \
                  inside the function that uses it"
                 (String.concat "." (ident_parts lid.txt)))
        | _ -> ())
    | Pexp_record (fields, _) -> (
        match List.find_map (fun (l, _) -> mutable_label ctx l) fields with
        | Some f ->
            report ctx e.pexp_loc "L3"
              (Printf.sprintf
                 "record literal with mutable field `%s' at module toplevel \
                  is shared mutable state; it races under Pftk_parallel \
                  domain fan-outs"
                 f)
        | None -> ())
    | _ -> ()

let rec is_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e') | Pexp_constraint (e', _) | Pexp_coerce (e', _, _) ->
      is_function e'
  | _ -> false

let make_iterator ctx =
  let default = Ast_iterator.default_iterator in
  let expr it e =
    let pushed = push_allows ctx e.pexp_attributes in
    (match e.pexp_desc with
    | Pexp_ident lid -> check_ident ctx lid.txt lid.loc
    | _ -> ());
    check_eager_expr ctx e;
    (match e.pexp_desc with
    | (Pexp_fun _ | Pexp_function _) when !(ctx.eager) ->
        (* A function literal at toplevel delays evaluation of its body
           to call time: L3's init-time scan stops here. *)
        ctx.eager := false;
        default.expr it e;
        ctx.eager := true
    | _ -> default.expr it e);
    pop_allows ctx pushed
  in
  let value_binding it vb =
    let pushed = push_allows ctx vb.pvb_attributes in
    default.value_binding it vb;
    pop_allows ctx pushed
  in
  let structure_item it si =
    match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            let pushed = push_allows ctx vb.pvb_attributes in
            it.Ast_iterator.pat it vb.pvb_pat;
            let saved = !(ctx.eager) in
            ctx.eager := not (is_function vb.pvb_expr);
            it.Ast_iterator.expr it vb.pvb_expr;
            ctx.eager := saved;
            pop_allows ctx pushed)
          vbs
    | Pstr_eval (e, attrs) ->
        let pushed = push_allows ctx attrs in
        let saved = !(ctx.eager) in
        ctx.eager := true;
        it.Ast_iterator.expr it e;
        ctx.eager := saved;
        pop_allows ctx pushed
    | _ -> default.structure_item it si
  in
  { default with expr; value_binding; structure_item }

(* --- Parsing -------------------------------------------------------------- *)

type parsed =
  | Ok_structure of structure
  | Failed of finding

let parse_string ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok_structure structure
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      let p = loc.loc_start in
      Failed
        {
          file = path;
          line = p.pos_lnum;
          col = p.pos_cnum - p.pos_bol;
          rule = "parse";
          message = "syntax error";
        }
  | exception exn ->
      Failed
        {
          file = path;
          line = 1;
          col = 0;
          rule = "parse";
          message = Printexc.to_string exn;
        }

let module_name_of_path path =
  String.capitalize_ascii Filename.(remove_extension (basename path))

let lint_structure ~path ~qualified_mutable structure =
  let ctx =
    {
      path = normalize path;
      findings = ref [];
      allowed = Pftk_findings.Allow.create ();
      local_defs = collect_local_defs structure;
      local_mutable = collect_mutable_fields structure;
      qualified_mutable;
      eager = ref false;
    }
  in
  let it = make_iterator ctx in
  it.Ast_iterator.structure it structure;
  !(ctx.findings)

let lint_source ~path source =
  match parse_string ~path source with
  | Failed f -> [ f ]
  | Ok_structure structure ->
      let qualified = Hashtbl.create 16 in
      Hashtbl.iter
        (fun field () ->
          Hashtbl.replace qualified (module_name_of_path path, field) ())
        (collect_mutable_fields structure);
      List.sort compare_findings (lint_structure ~path ~qualified_mutable:qualified structure)

(* --- Directory walk ------------------------------------------------------- *)

let rec walk_ml acc dir =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.sort String.compare entries;
  Array.fold_left
    (fun acc entry ->
      if entry = "" || entry.[0] = '.' || entry = "_build" then acc
      else
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk_ml acc path
        else if Filename.check_suffix entry ".ml" then path :: acc
        else acc)
    acc entries

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_dirs roots =
  let files = List.rev (List.fold_left walk_ml [] roots) in
  let parsed =
    List.map (fun path -> (path, parse_string ~path (read_file path))) files
  in
  (* Pass 1: mutable fields of every module in the run, so L3 catches
     toplevel [{ M.field = ... }] literals across module boundaries. *)
  let qualified_mutable = Hashtbl.create 64 in
  List.iter
    (fun (path, p) ->
      match p with
      | Failed _ -> ()
      | Ok_structure structure ->
          Hashtbl.iter
            (fun field () ->
              Hashtbl.replace qualified_mutable (module_name_of_path path, field) ())
            (collect_mutable_fields structure))
    parsed;
  (* Pass 2: rules L1-L3, L5 per file; L4 on the filesystem. *)
  let findings =
    List.concat_map
      (fun (path, p) ->
        let l4 =
          if in_lib path && not (Sys.file_exists (path ^ "i")) then
            [
              {
                file = normalize path;
                line = 1;
                col = 0;
                rule = "L4";
                message =
                  Printf.sprintf
                    "lib/ module without an interface; add %si to pin the \
                     public surface"
                    (Filename.basename path);
              };
            ]
          else []
        in
        match p with
        | Failed f -> f :: l4
        | Ok_structure structure ->
            lint_structure ~path ~qualified_mutable structure @ l4)
      parsed
  in
  List.sort compare_findings findings
