(* F4 trigger: returns the NaN sentinel but the .mli doc above never
   says "NaN". *)
let budget r = if r > 0. then 1. /. r else Float.nan
