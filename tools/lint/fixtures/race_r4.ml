(* R4 trigger: a lib/core entry point taking rtt/p without guards. *)
let send_rate ~rtt p = 1. /. (rtt *. sqrt p)
