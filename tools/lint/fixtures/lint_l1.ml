(* L1 trigger: polymorphic (=) on floats inside lib/core. *)
let f x = x = 0.
