(* U1 trigger: adds a seconds quantity to a packets quantity. *)
let[@pftk.unit "s -> pkt -> 1"] bad rtt wnd = rtt +. wnd
