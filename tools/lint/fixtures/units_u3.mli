val rate : float -> float
(* U3 trigger: an exported float signature item in the lib/core zone
   with no [@pftk.unit] annotation. *)
