(* F1 trigger: a call site of an *_unchecked value with no dominating
   guard in a caller that is not itself *_unchecked. *)
let rate_unchecked p = 1. /. sqrt p
let rate p = rate_unchecked p
