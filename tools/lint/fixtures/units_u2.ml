(* U2 trigger: passes a packets value where the callee declares
   seconds. *)
let[@pftk.unit "s -> 1"] normalize rtt = rtt /. rtt
let[@pftk.unit "pkt -> 1"] bad w = normalize w
