val budget : float -> float
(** Largest sustainable loss budget. *)
