(* U4 trigger: declares a pkt/s result but returns the seconds
   argument unchanged. *)
let[@pftk.unit "s -> pkt/s"] bad rtt = rtt
