(* F2 trigger: a tuple literal inside a [@pftk.zero_alloc] body. *)
let[@pftk.zero_alloc] pair x = (x, x)
