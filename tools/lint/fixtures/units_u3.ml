let rate x = x
