(* F3 trigger: invalid_arg reachable inside an *_unchecked body. *)
let bad_unchecked p = if p <= 0. then invalid_arg "p" else sqrt p
