#!/bin/sh
# One-command local CI for the pftk repo.  Runs, in order:
#
#   1. dune build          -- compiles everything at -warn-error +a and,
#                             via the default alias, runs the @lint
#                             (pftk-lint, rules L1-L5), @race
#                             (pftk-race, rules R1-R4), @flow
#                             (pftk-flow, rules F1-F4) and @units
#                             (pftk-units, rules U1-U4) analyzers
#   2. @flow, @units (timed)
#                          -- the interprocedural contract analyzer and
#                             the dimensional-analysis pass, each as its
#                             own timed phase
#   3. analyzer self-test  -- the deliberately-broken fixtures under
#                             tools/lint/fixtures must each make their
#                             analyzer exit 1 (tools/ci/analyzer_selftest.sh)
#   4. dune runtest        -- every alcotest/qcheck suite
#   5. equivalence suite   -- the online/post-hoc agreement contract:
#                             every streaming summary must match
#                             Analyzer.summarize exactly (avg_t0 within
#                             1e-9 relative) on all 24 Table II paths,
#                             packet-level traces, prefixes, and
#                             disk-replayed streams
#   6. pftk selfcheck      -- 200 seeded cases through the invariant
#                             catalog (C1-C12): differential model
#                             checks, inverse round-trips, serializer
#                             round-trips, online/post-hoc agreement,
#                             batch/scalar bit-equality
#   7. dune build --profile release
#                          -- the optimized build the benchmarks use
#   8. batch smoke         -- timed bench-batch runs on the release
#                             binary asserting the batch engine's
#                             speedup floors and bitwise equality
#   9. meanfield smoke     -- the mean-field backend on the release
#                             binary: a 100000-flow RED equilibrium
#                             held to a sub-second solver budget, and
#                             the quick netsim cross-validation
#
# Each phase reports its wall-clock time.  Exits non-zero at the first
# failure.  Run from anywhere inside the workspace; dune locates the
# project root itself.

set -eu

say() { printf '== %s\n' "$*"; }

# POSIX sh has no SECONDS; date +%s is universal.
phase() {
  _label=$1
  shift
  say "$_label"
  _t0=$(date +%s)
  "$@"
  _t1=$(date +%s)
  say "$_label: done in $((_t1 - _t0))s"
}

phase "dune build (default alias: compile + @lint + @race + @flow + @units)" dune build

phase "dune build @flow (pftk-flow, rules F1-F4)" dune build @flow

phase "dune build @units (pftk-units, rules U1-U4)" dune build @units

phase "analyzer self-test (broken fixtures must fail)" \
  sh "$(dirname "$0")/analyzer_selftest.sh"

phase "dune runtest" dune runtest

phase "equivalence suite (online vs post-hoc analyzer)" \
  dune exec test/test_online.exe -- test equivalence

phase "pftk selfcheck (200 cases, seed 42)" \
  dune exec bin/pftk.exe -- selfcheck --cases 200 --seed 42

phase "dune build --profile release" dune build --profile release

# Speedup floors are deliberately below the measured steady-state values
# (eq. (33): ~4.3x vs its own scalar, ~13x vs the scalar full model;
# eq. (32): ~2.8x) so CI noise does not flake, while a regression to a
# boxed or rescanning inner loop (2-3x of margin) still fails.  Each run
# also bit-compares 4096 rows against the guarded scalar path.
phase "batch smoke: eq. (32) kernel floor 2x" \
  dune exec --profile release bin/pftk.exe -- bench-batch \
  --rows 1000000 --model full --min-speedup 2

phase "batch smoke: eq. (33) vs scalar full model, floor 6x" \
  dune exec --profile release bin/pftk.exe -- bench-batch \
  --rows 1000000 --model approximate --scalar-model full --min-speedup 6

# The scale promise of the mean-field backend: a 100000-flow RED
# equilibrium in well under a second (measured ~0.3 ms; the 0.5 s
# budget only catches a complexity regression, not noise).
phase "meanfield smoke: 100000-flow equilibrium under 0.5s" \
  dune exec --profile release bin/pftk.exe -- meanfield \
  --flows 100000 --capacity 2000000 --equilibrium-only \
  --max-solver-seconds 0.5

phase "meanfield smoke: netsim cross-validation (quick)" \
  dune exec --profile release bin/pftk.exe -- meanfield --cross-validate --quick

say "all checks passed"
