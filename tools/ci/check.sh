#!/bin/sh
# One-command local CI for the pftk repo.  Runs, in order:
#
#   1. dune build          -- compiles everything at -warn-error +a and,
#                             via the default alias, runs the @lint
#                             (pftk-lint, rules L1-L5) and @race
#                             (pftk-race, rules R1-R4) analyzers
#   2. dune runtest        -- every alcotest/qcheck suite
#   3. dune build --profile release
#                          -- the optimized build the benchmarks use
#
# Exits non-zero at the first failure.  Run from anywhere inside the
# workspace; dune locates the project root itself.

set -eu

say() { printf '== %s\n' "$*"; }

say "dune build (default alias: compile + @lint + @race)"
dune build

say "dune runtest"
dune runtest

say "dune build --profile release"
dune build --profile release

say "all checks passed"
