#!/bin/sh
# Analyzer self-test: every deliberately-broken fixture under
# tools/lint/fixtures must make its analyzer exit 1 *and* name the
# expected rule.  This is the canary for the analyzers themselves — a
# lint/race/flow/units binary that silently stopped finding anything
# would otherwise keep CI green forever.
#
# Layout: each fixture is copied into a throwaway tree shaped like the
# workspace (lib/core/...), because the zone rules key on that relative
# layout; the typed fixtures are compiled with the toolchain's own
# ocamlc -bin-annot, exactly as the unit suites in test/test_race.ml
# and test/test_flow.ml do.

set -eu

say() { printf '== %s\n' "$*"; }

cd "$(dirname "$0")/../.."

fixtures=tools/lint/fixtures
lint=_build/default/tools/lint/pftk_lint.exe
race=_build/default/tools/lint/pftk_race.exe
flow=_build/default/tools/lint/pftk_flow.exe
units=_build/default/tools/lint/pftk_units.exe

for exe in "$lint" "$race" "$flow" "$units"; do
  if [ ! -x "$exe" ]; then
    echo "analyzer self-test: missing $exe (run dune build first)" >&2
    exit 2
  fi
done

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# stage <tree> <fixture>... : copy fixtures to $tmp/<tree>/lib/core and
# compile any .ml/.mli (interfaces first, so the .cmi exists).
stage() {
  _tree=$tmp/$1
  shift
  mkdir -p "$_tree/lib/core"
  for _f in "$@"; do
    cp "$fixtures/$_f" "$_tree/lib/core/"
  done
  for _f in "$@"; do
    case $_f in
    *.mli) (cd "$_tree" && ocamlc -bin-annot -w -a -I lib/core -c "lib/core/$_f") ;;
    esac
  done
  for _f in "$@"; do
    case $_f in
    *.mli) ;;
    *.ml) (cd "$_tree" && ocamlc -bin-annot -w -a -I lib/core -c "lib/core/$_f") ;;
    esac
  done
  printf '%s\n' "$_tree"
}

# expect <rule> <exe> <root>... : the analyzer must exit exactly 1 on
# the broken tree and its report must carry the [rule] tag.
expect() {
  _rule=$1
  shift
  set +e
  _out=$("$@" 2>/dev/null)
  _st=$?
  set -e
  if [ "$_st" -ne 1 ]; then
    echo "analyzer self-test: '$*' exited $_st on a broken tree (wanted 1, rule $_rule)" >&2
    exit 1
  fi
  case $_out in
  *"[$_rule]"*) say "  $_rule trigger caught" ;;
  *)
    echo "analyzer self-test: '$*' exited 1 without reporting $_rule:" >&2
    printf '%s\n' "$_out" >&2
    exit 1
    ;;
  esac
}

say "pftk-lint must fail on the L1 fixture"
tree=$(stage lint_l1 lint_l1.ml)
expect L1 "$lint" "$tree/lib"

say "pftk-race must fail on the R4 fixture"
tree=$(stage race_r4 race_r4.ml)
expect R4 "$race" "$tree"

say "pftk-flow must fail on each F-rule fixture"
tree=$(stage flow_f1 flow_f1.ml)
expect F1 "$flow" "$tree"
tree=$(stage flow_f2 flow_f2.ml)
expect F2 "$flow" "$tree"
tree=$(stage flow_f3 flow_f3.ml)
expect F3 "$flow" "$tree"
tree=$(stage flow_f4 flow_f4.mli flow_f4.ml)
expect F4 "$flow" "$tree"

say "pftk-units must fail on each U-rule fixture"
tree=$(stage units_u1 units_u1.ml)
expect U1 "$units" "$tree"
tree=$(stage units_u2 units_u2.ml)
expect U2 "$units" "$tree"
tree=$(stage units_u3 units_u3.mli units_u3.ml)
expect U3 "$units" "$tree"
tree=$(stage units_u4 units_u4.ml)
expect U4 "$units" "$tree"

say "analyzer self-test passed"
