(* pftk: command-line front end for the PFTK TCP-throughput model suite and
   its experiment drivers.  `pftk all` regenerates every table and figure. *)

open Cmdliner
open Pftk_core

let ppf = Format.std_formatter

(* --- Shared options ------------------------------------------------------ *)

let rtt_arg =
  let doc = "Average round-trip time, seconds." in
  Arg.(value & opt float 0.2 & info [ "rtt" ] ~docv:"SECONDS" ~doc)

let t0_arg =
  let doc = "Average single-timeout duration T0, seconds." in
  Arg.(value & opt float 2. & info [ "t0" ] ~docv:"SECONDS" ~doc)

let b_arg =
  let doc = "Packets acknowledged per ACK (2 with delayed ACKs)." in
  Arg.(value & opt int 2 & info [ "b"; "ack-factor" ] ~docv:"N" ~doc)

let wm_arg =
  let doc =
    "Receiver-advertised maximum window, packets.  $(docv) = 0 (the \
     default) means unlimited: the window-limit term of eq. (31)/(32) is \
     disabled and the models reduce to their unconstrained forms."
  in
  Arg.(value & opt int 0 & info [ "wm" ] ~docv:"PACKETS" ~doc)

let p_arg =
  let doc = "Loss-indication probability." in
  Arg.(value & opt float 0.01 & info [ "p"; "loss" ] ~docv:"PROB" ~doc)

let seed_arg =
  let doc = "Random seed." in
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Shorter runs: 600-s traces and 30 connections per batch." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the simulation fan-out (default: the number of \
     cores).  Results are independent of $(docv)."
  in
  let positive_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg "JOBS must be >= 1")
      | None -> Error (`Msg (Printf.sprintf "invalid JOBS value %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(
    value
    & opt positive_int (Pftk_parallel.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let model_arg =
  let doc =
    "Model: full (default), approximate, td-only, td-only-sqrt, \
     full-approx-q, throughput, markov."
  in
  Arg.(value & opt string "full" & info [ "model" ] ~docv:"MODEL" ~doc)

let make_params ~rtt ~t0 ~b ~wm =
  if wm <= 0 then Params.make ~b ~rtt ~t0 ()
  else Params.make ~b ~wm ~rtt ~t0 ()

let parse_model name =
  match Model.of_name name with
  | Some kind -> kind
  | None -> failwith (Printf.sprintf "unknown model %S" name)

(* Trace files come from users; fail with a message and a nonzero exit
   instead of a backtrace when one is unreadable, malformed, or empty. *)
let fail_trace path msg : 'a =
  Format.eprintf "pftk: cannot use trace file %s: %s@." path msg;
  exit 1

(* The error already names the file; fail_trace prints the path itself. *)
let trace_error (e : Pftk_trace.Serialize.error) =
  Pftk_trace.Serialize.error_message { e with Pftk_trace.Serialize.file = None }

let load_trace path =
  match Pftk_trace.Serialize.load path with
  | recorder ->
      if Pftk_trace.Recorder.length recorder = 0 then
        fail_trace path "trace contains no events"
      else recorder
  | exception Sys_error msg -> fail_trace path msg
  | exception Pftk_trace.Serialize.Error e -> fail_trace path (trace_error e)

let iter_trace path f =
  match Pftk_trace.Serialize.iter_file path f with
  | () -> ()
  | exception Sys_error msg -> fail_trace path msg
  | exception Pftk_trace.Serialize.Error e -> fail_trace path (trace_error e)

(* --- rate / throughput / inverse / sweep -------------------------------- *)

let rate_cmd =
  let run rtt t0 b wm p model =
    let params = make_params ~rtt ~t0 ~b ~wm in
    let kind = parse_model model in
    let rate = Model.send_rate kind params p in
    Format.fprintf ppf "%s model, %a, p=%g:@.  %.4f packets/s@."
      (Model.name kind) Params.pp params p rate
  in
  let doc = "Evaluate a send-rate model at one operating point." in
  Cmd.v (Cmd.info "rate" ~doc)
    Term.(const run $ rtt_arg $ t0_arg $ b_arg $ wm_arg $ p_arg $ model_arg)

let throughput_cmd =
  let run rtt t0 b wm p =
    let params = make_params ~rtt ~t0 ~b ~wm in
    let b_rate = Full_model.send_rate params p in
    let t_rate = Throughput.throughput params p in
    Format.fprintf ppf
      "%a, p=%g:@.  send rate B = %.4f pkt/s@.  throughput T = %.4f pkt/s@.  \
       delivery ratio = %.4f@."
      Params.pp params p b_rate t_rate (t_rate /. b_rate)
  in
  let doc = "Send rate vs receiver throughput (Sec. V) at one point." in
  Cmd.v (Cmd.info "throughput" ~doc)
    Term.(const run $ rtt_arg $ t0_arg $ b_arg $ wm_arg $ p_arg)

let inverse_cmd =
  let target_arg =
    let doc = "Target send rate, packets/s." in
    Arg.(value & opt float 10. & info [ "target" ] ~docv:"RATE" ~doc)
  in
  let run rtt t0 b wm target =
    let params = make_params ~rtt ~t0 ~b ~wm in
    match Inverse.loss_budget params ~rate:target with
    | Some p ->
        Format.fprintf ppf
          "%a:@.  loss budget for %.2f pkt/s: p = %.6f@." Params.pp params
          target p
    | None ->
        Format.fprintf ppf
          "%a:@.  %.2f pkt/s is outside the achievable range@." Params.pp
          params target
  in
  let doc = "Largest loss probability sustaining a target rate." in
  Cmd.v (Cmd.info "inverse" ~doc)
    Term.(const run $ rtt_arg $ t0_arg $ b_arg $ wm_arg $ target_arg)

let sweep_cmd =
  let run rtt t0 b wm model =
    let params = make_params ~rtt ~t0 ~b ~wm in
    let kind = parse_model model in
    let series = Model.series kind params (Sweep.paper_loss_grid ()) in
    Format.fprintf ppf "# %s over p, %a@.%a@." (Model.name kind) Params.pp
      params Sweep.pp_series series
  in
  let doc = "Print a (p, rate) series for one model over the paper's grid." in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(const run $ rtt_arg $ t0_arg $ b_arg $ wm_arg $ model_arg)

let latency_cmd =
  let packets_arg =
    let doc = "Transfer size, packets." in
    Arg.(value & opt int 20 & info [ "packets" ] ~docv:"N" ~doc)
  in
  let run rtt t0 b wm p packets =
    let params = make_params ~rtt ~t0 ~b ~wm in
    let phases = Short_flow.expected_latency params ~p ~packets in
    Format.fprintf ppf
      "short-flow latency, %a, p=%g, %d packets:@.  handshake %.3fs  slow-start %.3fs  recovery %.3fs  cong-avoidance %.3fs  delayed-ack %.3fs@.  total %.3f s  (%.2f pkt/s effective; bulk model: %.2f pkt/s)@."
      Params.pp params p packets phases.Short_flow.handshake
      phases.Short_flow.slow_start phases.Short_flow.recovery
      phases.Short_flow.congestion_avoidance phases.Short_flow.delayed_ack
      phases.Short_flow.total
      (Short_flow.mean_rate phases ~packets)
      (Full_model.send_rate params p)
  in
  let doc = "Expected completion time of a short transfer (Cardwell model)." in
  Cmd.v (Cmd.info "latency" ~doc)
    Term.(const run $ rtt_arg $ t0_arg $ b_arg $ wm_arg $ p_arg $ packets_arg)

let tfrc_cmd =
  let run rtt p seed =
    let controller = Tfrc.Controller.create () in
    let rng = Pftk_stats.Rng.create ~seed () in
    Format.fprintf ppf "TFRC controller under p=%g, RTT=%gs:@." p rtt;
    Format.fprintf ppf "%8s %12s %12s@." "epoch" "rate pkt/s" "est. p";
    for epoch = 1 to 24 do
      Tfrc.Controller.on_rtt_sample controller rtt;
      (* One RTT's worth of packets at the current rate. *)
      let n =
        max 1 (int_of_float (Tfrc.Controller.allowed_rate controller *. rtt))
      in
      for _ = 1 to n do
        Tfrc.Controller.on_packet controller
          ~lost:(Pftk_stats.Rng.bernoulli rng p)
      done;
      Tfrc.Controller.feedback_epoch controller;
      if epoch mod 2 = 0 then
        Format.fprintf ppf "%8d %12.2f %12s@." epoch
          (Tfrc.Controller.allowed_rate controller)
          (match Tfrc.Controller.loss_event_rate controller with
          | Some est -> Printf.sprintf "%.4f" est
          | None -> "-")
    done;
    let params = Params.make ~rtt ~t0:(4. *. rtt) () in
    Format.fprintf ppf "eq. (33) at the true p: %.2f pkt/s@."
      (Approx_model.send_rate params p)
  in
  let doc = "Drive the TFRC-style controller against synthetic loss." in
  Cmd.v (Cmd.info "tfrc" ~doc) Term.(const run $ rtt_arg $ p_arg $ seed_arg)

(* --- simulate / analyze -------------------------------------------------- *)

let simulate_cmd =
  let duration_arg =
    let doc = "Simulated duration, seconds." in
    Arg.(value & opt float 600. & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let dump_arg =
    let doc = "Write the trace to $(docv) (pftk text format)." in
    Arg.(value & opt (some string) None & info [ "dump-trace" ] ~docv:"FILE" ~doc)
  in
  let live_arg =
    let doc =
      "Attach a live predictor: print the streaming estimates and the \
       model's prediction at every 100-s checkpoint as the simulation \
       runs."
    in
    Arg.(value & flag & info [ "live" ] ~doc)
  in
  let run rtt t0 b wm p seed duration dump live =
    let params = make_params ~rtt ~t0 ~b ~wm in
    let rng = Pftk_stats.Rng.create ~seed () in
    let loss = Pftk_loss.Loss_process.round_correlated rng ~p in
    (* Buffering is only needed to dump the trace afterwards; the live
       predictor consumes events as a recorder subscriber either way. *)
    let recorder =
      Pftk_trace.Recorder.create ~buffered:(Option.is_some dump) ()
    in
    if live then begin
      let predictor =
        Pftk_online.Predictor.create params ~on_snapshot:(fun s ->
            Format.fprintf ppf "%a@." Pftk_online.Predictor.pp_snapshot s)
      in
      Pftk_trace.Recorder.subscribe recorder
        (Pftk_online.Predictor.sink predictor)
    end;
    let result =
      Pftk_tcp.Round_sim.run ~seed ~recorder ~duration ~loss
        (Pftk_tcp.Round_sim.config_of_params params)
    in
    (match dump with
    | Some path ->
        Pftk_trace.Serialize.save path recorder;
        Format.fprintf ppf "trace written to %s (%d events)@." path
          (Pftk_trace.Recorder.length recorder)
    | None -> ());
    let open Pftk_tcp.Round_sim in
    Format.fprintf ppf
      "round-based simulation, %a, p=%g, %.0f s:@.  packets sent %d \
       (delivered %d), rounds %d@.  loss indications %d (TD %d, TO \
       sequences %d)@.  send rate %.3f pkt/s (model: %.3f), observed p \
       %.5f@."
      Params.pp params p duration result.packets_sent result.packets_delivered
      result.rounds result.loss_indications result.td_events
      result.to_sequences result.send_rate
      (Full_model.send_rate params p)
      result.observed_p
  in
  let doc = "Monte-Carlo the model process and compare with eq. (32)." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ rtt_arg $ t0_arg $ b_arg $ wm_arg $ p_arg $ seed_arg
      $ duration_arg $ dump_arg $ live_arg)

let analyze_cmd =
  let trace_arg =
    let doc = "Analyze a saved trace file instead of running a simulation." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run seed quick trace =
    match trace with
    | Some path ->
        let recorder = load_trace path in
        let summary = Pftk_trace.Analyzer.summarize recorder in
        Format.fprintf ppf "%s: %a@." path Pftk_trace.Analyzer.pp_summary summary
    | None ->
    let duration = if quick then 300. else 1800. in
    let rng = Pftk_stats.Rng.create ~seed () in
    let scenario =
      {
        Pftk_tcp.Connection.default_scenario with
        data_loss = Some (Pftk_loss.Loss_process.bernoulli rng ~p:0.02);
      }
    in
    let result = Pftk_tcp.Connection.run ~seed ~duration scenario in
    let truth =
      Pftk_trace.Analyzer.summarize ~mode:`Ground_truth
        result.Pftk_tcp.Connection.recorder
    in
    let inferred =
      Pftk_trace.Analyzer.summarize ~mode:`Infer
        result.Pftk_tcp.Connection.recorder
    in
    Format.fprintf ppf
      "packet-level Reno over a lossy path (%.0f s):@.  ground truth: %a@.  \
       inferred:     %a@."
      duration Pftk_trace.Analyzer.pp_summary truth
      Pftk_trace.Analyzer.pp_summary inferred
  in
  let doc =
    "Run a packet-level connection and compare trace-inference against the \
     sender's ground truth."
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ seed_arg $ quick_arg $ trace_arg)

let live_cmd =
  let duration_arg =
    let doc = "Simulated duration, seconds." in
    Arg.(value & opt float 600. & info [ "duration" ] ~docv:"SECONDS" ~doc)
  in
  let interval_arg =
    let doc = "Checkpoint spacing, seconds." in
    Arg.(value & opt float 100. & info [ "interval" ] ~docv:"SECONDS" ~doc)
  in
  let trace_arg =
    let doc =
      "Replay a saved trace file through the live predictor instead of \
       simulating (streaming: the file is never loaded whole)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let infer_arg =
    let doc =
      "Infer loss indications from sends and ACKs alone (packet-trace \
       mode) instead of using the sender's own timer events."
    in
    Arg.(value & flag & info [ "infer" ] ~doc)
  in
  let run rtt t0 b wm p seed duration interval trace infer =
    let params = make_params ~rtt ~t0 ~b ~wm in
    let mode = if infer then `Infer else `Ground_truth in
    let predictor =
      Pftk_online.Predictor.create ~mode ~interval params ~on_snapshot:(fun s ->
          Format.fprintf ppf "%a@." Pftk_online.Predictor.pp_snapshot s)
    in
    let sink = Pftk_online.Predictor.sink predictor in
    (match trace with
    | Some path ->
        let count = Pftk_online.Sink.counter () in
        iter_trace path (Pftk_online.Sink.counting count sink);
        if Pftk_online.Sink.events count = 0 then
          fail_trace path "trace contains no events"
    | None ->
        let rng = Pftk_stats.Rng.create ~seed () in
        let loss = Pftk_loss.Loss_process.round_correlated rng ~p in
        let recorder = Pftk_trace.Recorder.create ~buffered:false () in
        Pftk_trace.Recorder.subscribe recorder sink;
        ignore
          (Pftk_tcp.Round_sim.run ~seed ~recorder ~duration ~loss
             (Pftk_tcp.Round_sim.config_of_params params)
            : Pftk_tcp.Round_sim.result));
    Format.fprintf ppf "final: %a@." Pftk_online.Predictor.pp_snapshot
      (Pftk_online.Predictor.snapshot predictor);
    Format.fprintf ppf "summary: %a@." Pftk_trace.Analyzer.pp_summary
      (Pftk_online.Predictor.summary predictor)
  in
  let doc =
    "Stream a connection (simulated, or a saved trace) through the online \
     estimators, printing predicted vs observed rate at every checkpoint."
  in
  Cmd.v (Cmd.info "live" ~doc)
    Term.(
      const run $ rtt_arg $ t0_arg $ b_arg $ wm_arg $ p_arg $ seed_arg
      $ duration_arg $ interval_arg $ trace_arg $ infer_arg)

(* --- selfcheck ------------------------------------------------------------ *)

let selfcheck_cmd =
  let cases_arg =
    let doc = "Number of generated cases." in
    Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let invariant_arg =
    let doc =
      "Check only one invariant, by id (C1..C12) or name (e.g. \
       inverse-roundtrip)."
    in
    Arg.(value & opt (some string) None & info [ "invariant" ] ~docv:"CK" ~doc)
  in
  let pin_arg =
    let doc =
      "Write each failure's shrunk counterexample to $(docv) as a corpus \
       file (one per failure, named after the invariant and case index)."
    in
    Arg.(value & opt (some string) None & info [ "pin" ] ~docv:"DIR" ~doc)
  in
  let run cases seed jobs invariant pin =
    let report =
      match
        Pftk_selfcheck.Runner.run
          { Pftk_selfcheck.Runner.cases; seed; jobs; only = invariant }
      with
      | report -> report
      | exception Invalid_argument msg ->
          Format.eprintf "pftk: %s@." msg;
          exit 2
    in
    Pftk_selfcheck.Runner.pp_report ppf report;
    (match pin with
    | Some dir ->
        List.iter
          (fun f ->
            let path =
              Filename.concat dir
                (Printf.sprintf "%s-case%d.case"
                   (String.lowercase_ascii
                      f.Pftk_selfcheck.Runner.invariant.Pftk_selfcheck.Invariant.id)
                   f.Pftk_selfcheck.Runner.index)
            in
            let oc = open_out path in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Pftk_selfcheck.Runner.counterexample_to_string ~seed f));
            Format.fprintf ppf "counterexample pinned to %s@." path)
          report.Pftk_selfcheck.Runner.failures
    | None -> ());
    if not (Pftk_selfcheck.Runner.ok report) then exit 1
  in
  let doc =
    "Property-based self-check: generate random cases and verify the \
     paper-guaranteed invariants (C1..C12) across the whole suite, \
     shrinking any counterexample.  Deterministic in --seed; the report \
     is byte-identical for every --jobs value."
  in
  Cmd.v (Cmd.info "selfcheck" ~doc)
    Term.(const run $ cases_arg $ seed_arg $ jobs_arg $ invariant_arg $ pin_arg)

(* --- batch: serve / bench-batch ------------------------------------------- *)

let batch_model_arg =
  let doc =
    "Batch model: full (default), full-approx-q, approximate, td-only, tfrc."
  in
  Arg.(value & opt string "full" & info [ "model" ] ~docv:"MODEL" ~doc)

let t0_factor_arg =
  let doc = "The tfrc model's RTO stand-in: T0 = $(docv) * RTT." in
  Arg.(value & opt float 4. & info [ "t0-factor" ] ~docv:"FACTOR" ~doc)

let chunk_arg =
  let doc =
    "Rows per engine chunk (the parallel work grain).  Output is \
     byte-identical for every $(docv) and --jobs value."
  in
  Arg.(
    value
    & opt int Pftk_batch.Engine.default_chunk
    & info [ "chunk" ] ~docv:"ROWS" ~doc)

let parse_batch_model ~t0_factor name =
  match String.lowercase_ascii name with
  | "tfrc" -> Pftk_batch.Kernel.Tfrc t0_factor
  | other -> (
      match Model.of_name other with
      | Some Model.Full -> Pftk_batch.Kernel.Full
      | Some Model.Full_approx_q -> Pftk_batch.Kernel.Full_approx_q
      | Some Model.Approximate -> Pftk_batch.Kernel.Approximate
      | Some Model.Td_only -> Pftk_batch.Kernel.Td_only
      | Some _ ->
          failwith
            (Printf.sprintf
               "model %S has no batch kernel (batch models: full, \
                full-approx-q, approximate, td-only, tfrc)"
               name)
      | None -> failwith (Printf.sprintf "unknown model %S" name))

let serve_cmd =
  let file_arg =
    let doc = "Read queries from $(docv) instead of stdin." in
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc)
  in
  let batch_arg =
    let doc =
      "Answer with the columnar batch engine.  This is the default; the \
       flag exists to make invocations explicit."
    in
    Arg.(value & flag & info [ "batch" ] ~doc)
  in
  let scalar_arg =
    let doc =
      "Answer each line with the guarded per-row scalar computation \
       instead of the batch engine.  Same protocol and (bit-identical) \
       output; exists to cross-check the engine."
    in
    Arg.(value & flag & info [ "scalar" ] ~doc)
  in
  let run model b t0_factor file batch scalar jobs chunk =
    ignore batch;
    let kernel = Pftk_batch.Kernel.make ~b (parse_batch_model ~t0_factor model) in
    let ic =
      match file with
      | None -> stdin
      | Some path -> (
          try open_in path
          with Sys_error msg ->
            Format.eprintf "pftk serve: %s@." msg;
            exit 2)
    in
    let outcome =
      Pftk_batch.Stream.run ~jobs ~chunk ~scalar kernel ic stdout ~err:stderr
    in
    (match file with Some _ -> close_in ic | None -> ());
    if
      outcome.Pftk_batch.Stream.total > 0
      && outcome.Pftk_batch.Stream.failed = outcome.Pftk_batch.Stream.total
    then exit 1
  in
  let doc =
    Printf.sprintf
      "Answer a newline-delimited query stream ('p rtt t0 wm' per line, \
       wm=0 for unlimited) with one send rate per line.  Units: p is the \
       loss probability (dimensionless, 0 < p < 1), rtt and t0 are \
       seconds, wm is packets, and each output rate is packets per \
       second (multiply by the MSS in bytes for bytes/s).  Malformed or \
       out-of-domain lines get the sentinel 'nan' on stdout and a 'pftk \
       serve: line N: ...' diagnostic on stderr without aborting the \
       stream; the exit status is nonzero only when every input line \
       failed.  Input lines are capped at %d bytes: a longer line is \
       rejected (never evaluated) with a diagnostic naming its observed \
       length."
      Pftk_batch.Serve.max_line_bytes
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ batch_model_arg $ b_arg $ t0_factor_arg $ file_arg
      $ batch_arg $ scalar_arg $ jobs_arg $ chunk_arg)

let bench_batch_cmd =
  let rows_arg =
    let doc = "Rows per measured pass." in
    Arg.(value & opt int 1_000_000 & info [ "rows" ] ~docv:"N" ~doc)
  in
  let min_speedup_arg =
    let doc =
      "Exit 1 unless single-thread batch throughput is at least $(docv) \
       times the scalar baseline."
    in
    Arg.(value & opt float 0. & info [ "min-speedup" ] ~docv:"X" ~doc)
  in
  let scalar_model_arg =
    let doc =
      "Scalar baseline for the speedup ratio (default: the batch model \
       itself, an apples-to-apples comparison).  Passing a different \
       model makes the cross-model ratio explicit, e.g. batch \
       'approximate' vs today's scalar 'full' default query path."
    in
    Arg.(
      value & opt (some string) None & info [ "scalar-model" ] ~docv:"MODEL" ~doc)
  in
  let run model scalar_model b t0_factor rows jobs min_speedup =
    if rows < 1 then failwith "--rows must be >= 1";
    let kernel = Pftk_batch.Kernel.make ~b (parse_batch_model ~t0_factor model) in
    let scalar_kernel =
      match scalar_model with
      | None -> kernel
      | Some name ->
          Pftk_batch.Kernel.make ~b (parse_batch_model ~t0_factor name)
    in
    (* Deterministic synthetic workload spanning both regimes of
       eq. (32): log-spaced p, a spread of RTTs, and a window cycle
       including small (limiting) and unlimited values. *)
    let wm_cycle = [| 0.; 8.; 32.; 1024. |] in
    let cols = Pftk_batch.Columns.create rows in
    let denom = float_of_int (max 1 (rows - 1)) in
    for i = 0 to rows - 1 do
      (* p ascends across the batch — the realistic shape (model sweeps
         over a loss grid) and the branch-predictable one; DESIGN
         "Batch evaluation" quantifies the shuffled-p penalty. *)
      let p = 10. ** (-4. +. (3. *. (float_of_int i /. denom))) in
      let rtt = 0.02 +. (0.38 *. (float_of_int (i mod 13) /. 12.)) in
      Pftk_batch.Columns.set cols i ~p ~rtt ~t0:(4. *. rtt)
        ~wm:wm_cycle.(i mod 4)
    done;
    (* Repeat each measured pass until >= 0.3 s of wall clock. *)
    let throughput f =
      let start = Unix.gettimeofday () in
      let reps = ref 0 in
      let elapsed = ref 0. in
      while !elapsed < 0.3 do
        f ();
        incr reps;
        elapsed := Unix.gettimeofday () -. start
      done;
      float_of_int (!reps * rows) /. !elapsed
    in
    let sink = ref 0. in
    let scalar_rate =
      throughput (fun () ->
          for i = 0 to rows - 1 do
            let p, rtt, t0, wm = Pftk_batch.Columns.row cols i in
            sink :=
              !sink
              +. Pftk_batch.Kernel.scalar_reference scalar_kernel ~p ~rtt ~t0
                   ~wm
          done)
    in
    let out = Float.Array.make rows 0. in
    let batch1_rate =
      throughput (fun () ->
          Pftk_batch.Engine.run_into ~jobs:1 kernel cols out)
    in
    let batchj_rate =
      if jobs = 1 then batch1_rate
      else throughput (fun () -> Pftk_batch.Engine.run_into ~jobs kernel cols out)
    in
    (* Bitwise sanity: the batch output must equal the batch model's own
       scalar results on a prefix of the rows. *)
    let check_rows = min rows 4096 in
    Pftk_batch.Engine.run_into ~jobs:1 kernel cols out;
    for i = 0 to check_rows - 1 do
      let p, rtt, t0, wm = Pftk_batch.Columns.row cols i in
      let want = Pftk_batch.Kernel.scalar_reference kernel ~p ~rtt ~t0 ~wm in
      let got = Float.Array.get out i in
      if not (Int64.equal (Int64.bits_of_float want) (Int64.bits_of_float got))
      then begin
        Format.eprintf
          "pftk bench-batch: batch/scalar mismatch at row %d: %h vs %h@." i
          got want;
        exit 1
      end
    done;
    let speedup = batch1_rate /. scalar_rate in
    Format.fprintf ppf
      "batch-bench: model=%s b=%d rows=%d@.  scalar (%s): %.3g evals/s@.  \
       batch jobs=1: %.3g evals/s  (%.2fx vs scalar)@.  batch jobs=%d: %.3g \
       evals/s@.  bitwise check: OK (%d rows)@."
      (Pftk_batch.Kernel.name kernel)
      b rows
      (Pftk_batch.Kernel.name scalar_kernel)
      scalar_rate batch1_rate speedup jobs batchj_rate check_rows;
    if min_speedup > 0. && speedup < min_speedup then begin
      Format.eprintf
        "pftk bench-batch: speedup %.2fx below required %.2fx@." speedup
        min_speedup;
      exit 1
    end
  in
  let doc =
    "Measure batch-engine throughput against the per-row scalar query path \
     on a synthetic workload, verify bit-identical results, and optionally \
     enforce a minimum speedup (CI smoke)."
  in
  Cmd.v (Cmd.info "bench-batch" ~doc)
    Term.(
      const run $ batch_model_arg $ scalar_model_arg $ b_arg $ t0_factor_arg
      $ rows_arg $ jobs_arg $ min_speedup_arg)

(* --- experiment drivers --------------------------------------------------- *)

let hour_duration quick = if quick then 600. else 3600.
let batch_count quick = if quick then 30 else 100

let table1_cmd =
  let run () = Pftk_experiments.Table1.print ppf in
  Cmd.v (Cmd.info "table1" ~doc:"Table I: measurement hosts.") Term.(const run $ const ())

let table2_cmd =
  let run seed quick jobs =
    Pftk_experiments.Table2.(
      print ppf (generate ~seed ~duration:(hour_duration quick) ~jobs ()))
  in
  Cmd.v
    (Cmd.info "table2" ~doc:"Table II: 1-hour trace summaries, sim vs paper.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let fig7_cmd =
  let run seed quick jobs =
    Pftk_experiments.Fig7.(
      print ppf (generate ~seed ~duration:(hour_duration quick) ~jobs ()))
  in
  Cmd.v (Cmd.info "fig7" ~doc:"Fig. 7: interval scatter vs model curves.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let fig8_cmd =
  let run seed quick jobs =
    Pftk_experiments.Fig8.(
      print ppf (generate ~seed ~count:(batch_count quick) ~jobs ()))
  in
  Cmd.v (Cmd.info "fig8" ~doc:"Fig. 8: 100-s traces vs model predictions.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let fig9_cmd =
  let run seed quick jobs =
    Pftk_experiments.Fig9.(
      print ppf ~title:"Fig. 9: Comparison of the models for 1-h traces"
        (generate ~seed ~duration:(hour_duration quick) ~jobs ()))
  in
  Cmd.v (Cmd.info "fig9" ~doc:"Fig. 9: average error on 1-hour traces.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let fig10_cmd =
  let run seed quick jobs =
    Pftk_experiments.Fig10.(
      print ppf (generate ~seed ~count:(batch_count quick) ~jobs ()))
  in
  Cmd.v (Cmd.info "fig10" ~doc:"Fig. 10: average error on 100-s traces.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let fig11_cmd =
  let run seed quick jobs =
    let duration = if quick then 900. else 3600. in
    Pftk_experiments.Fig11.(
      print ppf
        (generate ~seed ~wide_duration:duration ~modem_duration:duration ~jobs
           ()))
  in
  Cmd.v (Cmd.info "fig11" ~doc:"Fig. 11 / Sec. IV: modem correlation study.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let fig12_cmd =
  let run seed quick jobs =
    let mc_duration = if quick then 5_000. else 30_000. in
    Pftk_experiments.Fig12.(print ppf (generate ~seed ~mc_duration ~jobs ()))
  in
  Cmd.v (Cmd.info "fig12" ~doc:"Fig. 12: full model vs numerical Markov model.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let fig13_cmd =
  let run () = Pftk_experiments.Fig13.(print ppf (generate ())) in
  Cmd.v (Cmd.info "fig13" ~doc:"Fig. 13: throughput vs send rate.")
    Term.(const run $ const ())

let timeline_cmd =
  let trace_arg =
    let doc = "Plot a saved trace file instead of simulating." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run seed trace =
    let recorder =
      match trace with
      | Some path -> load_trace path
      | None ->
          let rng = Pftk_stats.Rng.create ~seed () in
          let scenario =
            {
              Pftk_tcp.Connection.default_scenario with
              Pftk_tcp.Connection.data_loss =
                Some (Pftk_loss.Loss_process.bernoulli rng ~p:0.02);
            }
          in
          (Pftk_tcp.Connection.run ~seed ~duration:120. scenario)
            .Pftk_tcp.Connection.recorder
    in
    Format.fprintf ppf "%s@." (Pftk_trace.Timeline.summary_line recorder);
    let to_points pts =
      List.map (fun { Pftk_trace.Timeline.time; value } -> (time, value)) pts
    in
    Pftk_experiments.Ascii_plot.render ppf ~logx:false ~logy:false
      ~x_label:"time (s)" ~y_label:"cwnd (pkts)"
      [
        {
          Pftk_experiments.Ascii_plot.glyph = '.';
          label = "congestion window";
          points = to_points (Pftk_trace.Timeline.congestion_window recorder);
        };
      ];
    Pftk_experiments.Ascii_plot.render ppf ~logx:false ~logy:false
      ~x_label:"time (s)" ~y_label:"pkt/s"
      [
        {
          Pftk_experiments.Ascii_plot.glyph = '#';
          label = "goodput (10-s bins)";
          points = to_points (Pftk_trace.Timeline.goodput recorder);
        };
      ]
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:"tcptrace-style views of a (simulated or saved) connection.")
    Term.(const run $ seed_arg $ trace_arg)

let convergence_cmd =
  let run seed quick jobs =
    Pftk_experiments.Convergence.(
      print ppf (generate ~seed ~duration:(hour_duration quick) ~jobs ()))
  in
  Cmd.v
    (Cmd.info "convergence"
       ~doc:
         "Streaming estimation over the Table II paths: when do the live \
          estimates settle to the final summary?")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let validate_cmd =
  let run seed quick jobs =
    Pftk_experiments.Validation.(
      print ppf
        (generate ~seed ~duration:(if quick then 300. else 900.) ~jobs ()))
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Model vs the packet-level Reno simulator across loss rates.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let fairness_cmd =
  let run seed quick jobs =
    let scenarios =
      if quick then
        [
          {
            Pftk_experiments.Fairness.label = "3 reno + 1 tfrc";
            reno_flows = 3;
            tfrc_flows = 1;
            duration = 60.;
          };
        ]
      else Pftk_experiments.Fairness.default_scenarios
    in
    Pftk_experiments.Fairness.(print ppf (generate ~seed ~scenarios ~jobs ()))
  in
  Cmd.v
    (Cmd.info "fairness"
       ~doc:"TCP-friendliness of an equation-paced flow at a shared bottleneck.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let sensitivity_cmd =
  let run () =
    Pftk_experiments.Sensitivity.(print ppf (elasticities ()))
  in
  Cmd.v
    (Cmd.info "sensitivity" ~doc:"Input elasticities of the full model.")
    Term.(const run $ const ())

let figwindow_cmd =
  let run seed = Pftk_experiments.Fig_window.(print ppf (generate ~seed ())) in
  Cmd.v
    (Cmd.info "figwindow" ~doc:"Figs. 1/3/5: window-evolution sample paths.")
    Term.(const run $ seed_arg)

(* --- mean-field backend --------------------------------------------------- *)

let meanfield_cmd =
  let module Solver = Pftk_meanfield.Solver in
  let module Dynamics = Pftk_meanfield.Dynamics in
  let module Queue_law = Pftk_meanfield.Queue_law in
  let flows_arg =
    let doc = "Population size: the number of homogeneous TCP flows." in
    Arg.(value & opt int 100_000 & info [ "flows" ] ~docv:"N" ~doc)
  in
  let capacity_arg =
    let doc = "Bottleneck capacity, packets per second." in
    Arg.(value & opt float 10_000. & info [ "capacity" ] ~docv:"PKT/S" ~doc)
  in
  let base_rtt_arg =
    let doc = "Two-way propagation delay excluding queueing, seconds." in
    Arg.(value & opt float 0.1 & info [ "base-rtt" ] ~docv:"SECONDS" ~doc)
  in
  let buffer_arg =
    let doc =
      "Buffer hard limit, packets.  0 (the default) sizes it to one \
       bandwidth-delay product."
    in
    Arg.(value & opt int 0 & info [ "buffer" ] ~docv:"PACKETS" ~doc)
  in
  let law_arg =
    let doc =
      "Drop law at the bottleneck: $(b,red) (ramp between the thresholds), \
       $(b,droptail) (loss only at a full buffer), or $(b,constant) (fixed \
       loss probability, no queue)."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("red", `Red); ("droptail", `Droptail); ("constant", `Constant) ]) `Red
      & info [ "law" ] ~docv:"LAW" ~doc)
  in
  let red_min_arg =
    let doc = "RED minimum threshold, packets (default: buffer/6)." in
    Arg.(value & opt float 0. & info [ "red-min" ] ~docv:"PACKETS" ~doc)
  in
  let red_max_arg =
    let doc = "RED maximum threshold, packets (default: buffer/2)." in
    Arg.(value & opt float 0. & info [ "red-max" ] ~docv:"PACKETS" ~doc)
  in
  let red_maxp_arg =
    let doc = "RED drop probability at the top of the ramp." in
    Arg.(value & opt float 0.1 & info [ "red-maxp" ] ~docv:"PROB" ~doc)
  in
  let red_weight_arg =
    let doc = "RED average-queue EWMA weight (per packet)." in
    Arg.(value & opt float 0.002 & info [ "red-weight" ] ~docv:"WEIGHT" ~doc)
  in
  let constant_p_arg =
    let doc = "Loss probability for the constant law." in
    Arg.(value & opt float 0.01 & info [ "constant-p" ] ~docv:"PROB" ~doc)
  in
  let rate_law_arg =
    let doc = "Per-flow rate model: eq. (32) ($(b,full)) or eq. (33) ($(b,approximate))." in
    Arg.(
      value
      & opt (Arg.enum [ ("full", Solver.Full); ("approximate", Solver.Approximate) ]) Solver.Full
      & info [ "rate-law" ] ~docv:"MODEL" ~doc)
  in
  let damping_arg =
    let doc = "Fixed-point damping factor in (0, 1]." in
    Arg.(value & opt float 0.5 & info [ "damping" ] ~docv:"GAMMA" ~doc)
  in
  let equilibrium_only_arg =
    let doc =
      "Skip the time-domain integration: report the fixed point without the \
       stable/oscillating verdict."
    in
    Arg.(value & flag & info [ "equilibrium-only" ] ~doc)
  in
  let max_solver_seconds_arg =
    let doc =
      "Fail (exit 1) when the equilibrium solve takes longer than $(docv) \
       wall-clock seconds; 0 disables the check.  CI uses this to hold the \
       scale promise: equilibria for 100000+ flows in well under a second."
    in
    Arg.(value & opt float 0. & info [ "max-solver-seconds" ] ~docv:"SECONDS" ~doc)
  in
  let cross_validate_arg =
    let doc =
      "Run the netsim cross-validation instead: N = 2..64 reno flows \
       through the packet-level shared bottleneck vs the same scenarios \
       under the mean-field solver, with per-flow goodput relative errors."
    in
    Arg.(value & flag & info [ "cross-validate" ] ~doc)
  in
  let run flows capacity base_rtt buffer law red_min red_max red_maxp
      red_weight constant_p rate_law damping b wm equilibrium_only
      max_solver_seconds cross_validate seed quick jobs =
    if cross_validate then begin
      let scenarios =
        if quick then Pftk_experiments.Meanfield_xval.quick_scenarios
        else Pftk_experiments.Meanfield_xval.default_scenarios
      in
      Pftk_experiments.Meanfield_xval.(
        print ppf (generate ~seed ~scenarios ~jobs ()))
    end
    else begin
      let buffer =
        if buffer > 0 then buffer
        else Int.max 8 (int_of_float (capacity *. base_rtt))
      in
      let law =
        match law with
        | `Droptail -> Queue_law.drop_tail ~capacity:buffer
        | `Constant -> Queue_law.constant ~p:constant_p
        | `Red ->
            let bf = float_of_int buffer in
            let min_threshold = if red_min > 0. then red_min else bf /. 6. in
            let max_threshold = if red_max > 0. then red_max else bf /. 2. in
            Queue_law.red ~weight:red_weight ~max_probability:red_maxp
              ~capacity:buffer ~min_threshold ~max_threshold ()
      in
      let cfg =
        {
          (Solver.default ~flows ~capacity ~base_rtt ~law) with
          Solver.b;
          wm;
          rate_law;
          damping;
        }
      in
      let t_start = Unix.gettimeofday () in
      let eq = Solver.solve cfg in
      let solver_seconds = Unix.gettimeofday () -. t_start in
      Format.fprintf ppf "Mean-field equilibrium (%d flows)@." flows;
      Format.fprintf ppf "  law: %s@."
        (match law with
        | Queue_law.Drop_tail c -> Printf.sprintf "droptail(buffer=%d pkt)" c
        | Queue_law.Constant p -> Printf.sprintf "constant(p=%g)" p
        | Queue_law.Red r ->
            Printf.sprintf
              "red(buffer=%d pkt, min=%g, max=%g, maxp=%g, weight=%g)"
              r.Queue_law.red_capacity r.Queue_law.min_threshold
              r.Queue_law.max_threshold r.Queue_law.max_probability
              r.Queue_law.weight);
      Format.fprintf ppf "  loss probability p:  %.6f@." eq.Solver.p;
      Format.fprintf ppf "  queue occupancy:     %.1f pkt@." eq.Solver.queue;
      Format.fprintf ppf "  rtt:                 %.4f s@." eq.Solver.rtt;
      Format.fprintf ppf "  per-flow rate:       %.2f pkt/s@."
        eq.Solver.per_flow_rate;
      Format.fprintf ppf "  per-flow goodput:    %.2f pkt/s@."
        eq.Solver.per_flow_goodput;
      Format.fprintf ppf "  utilization:         %.3f@." eq.Solver.utilization;
      Format.fprintf ppf "  window-limited:      %s@."
        (if eq.Solver.window_limited then "yes" else "no");
      (match eq.Solver.outcome with
      | Solver.Converged ->
          Format.fprintf ppf
            "  solver: converged in %d iterations (residual %.2e pkt, loop \
             gain %.2f)@."
            eq.Solver.iterations eq.Solver.residual eq.Solver.loop_gain
      | Solver.Oscillating amplitude ->
          Format.fprintf ppf
            "  solver: no fixed point after %d iterations (queue bouncing \
             +-%.1f pkt, loop gain %.2f)@."
            eq.Solver.iterations amplitude eq.Solver.loop_gain);
      if not equilibrium_only then begin
        let d = Dynamics.run (Dynamics.default cfg) in
        (match d.Dynamics.verdict with
        | Dynamics.Stable ->
            Format.fprintf ppf "  verdict: stable (queue settles at %.1f pkt)@."
              d.Dynamics.mean_queue
        | Dynamics.Oscillating { Dynamics.amplitude; period } ->
            Format.fprintf ppf
              "  verdict: oscillating (amplitude %.1f pkt%s — RED \
               instability)@."
              amplitude
              (if period > 0. then Printf.sprintf ", period %.2f s" period
               else ""));
        Format.fprintf ppf "  dynamics: queue %.1f..%.1f pkt, mean window %.1f \
                            pkt, mean goodput %.2f pkt/s@."
          d.Dynamics.queue_min d.Dynamics.queue_max d.Dynamics.mean_window
          d.Dynamics.mean_goodput
      end;
      (* Timing to stderr so stdout stays byte-comparable across runs. *)
      Format.eprintf "solver time: %.6f s (%.3g flows/s)@." solver_seconds
        (float_of_int flows /. Float.max 1e-9 solver_seconds);
      if max_solver_seconds > 0. && solver_seconds > max_solver_seconds then begin
        Format.eprintf
          "pftk meanfield: solver took %.3f s, over the %.3f s budget@."
          solver_seconds max_solver_seconds;
        exit 1
      end
    end
  in
  let doc =
    "Mean-field equilibrium and stability of N TCP flows behind one RED, \
     drop-tail or constant drop law."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Solves the population fixed point of the PFTK model behind a drop \
         law: inputs are the population size, the bottleneck capacity in \
         packets per second, the base round-trip time in seconds and the \
         drop law; the cost is independent of the number of flows.";
      `P
        "The report gives the equilibrium loss probability, queue occupancy \
         in packets, RTT, per-flow send rate and goodput in packets per \
         second, link utilization, and the solver's convergence record.  \
         Unless --equilibrium-only is given, the time-domain mean-field \
         dynamics then deliver the verdict line: $(b,stable) when the queue \
         settles, $(b,oscillating) with the limit-cycle amplitude and \
         period when RED's averaging lag and feedback delay sustain a \
         queue-law oscillation (Reynier's RED instability) — a result, \
         not an error.";
    ]
  in
  Cmd.v
    (Cmd.info "meanfield" ~doc ~man)
    Term.(
      const run $ flows_arg $ capacity_arg $ base_rtt_arg $ buffer_arg
      $ law_arg $ red_min_arg $ red_max_arg $ red_maxp_arg $ red_weight_arg
      $ constant_p_arg $ rate_law_arg $ damping_arg $ b_arg $ wm_arg
      $ equilibrium_only_arg $ max_solver_seconds_arg $ cross_validate_arg
      $ seed_arg $ quick_arg $ jobs_arg)

let redstability_cmd =
  let run quick jobs =
    let cells =
      if quick then Pftk_experiments.Red_stability.quick_cells
      else Pftk_experiments.Red_stability.default_cells
    in
    Pftk_experiments.Red_stability.(print ppf (generate ~cells ~jobs ()))
  in
  Cmd.v
    (Cmd.info "redstability"
       ~doc:
         "RED stability boundary: stable vs oscillating mean-field regimes \
          over an EWMA-weight x capacity x population sweep.")
    Term.(const run $ quick_arg $ jobs_arg)

let all_cmd =
  let run seed quick jobs =
    Pftk_experiments.Table1.print ppf;
    Pftk_experiments.Table2.(
      print ppf (generate ~seed ~duration:(hour_duration quick) ~jobs ()));
    Pftk_experiments.Fig_window.(print ppf (generate ~seed ()));
    Pftk_experiments.Fig7.(
      print ppf (generate ~seed ~duration:(hour_duration quick) ~jobs ()));
    Pftk_experiments.Fig8.(
      print ppf (generate ~seed ~count:(batch_count quick) ~jobs ()));
    Pftk_experiments.Fig9.(
      print ppf ~title:"Fig. 9: Comparison of the models for 1-h traces"
        (generate ~seed ~duration:(hour_duration quick) ~jobs ()));
    Pftk_experiments.Fig10.(
      print ppf (generate ~seed ~count:(batch_count quick) ~jobs ()));
    (let duration = if quick then 900. else 3600. in
     Pftk_experiments.Fig11.(
       print ppf
         (generate ~seed ~wide_duration:duration ~modem_duration:duration ~jobs
            ())));
    Pftk_experiments.Fig12.(
      print ppf
        (generate ~seed ~mc_duration:(if quick then 5_000. else 30_000.) ~jobs ()));
    Pftk_experiments.Fig13.(print ppf (generate ()));
    Pftk_experiments.Validation.(
      print ppf (generate ~seed ~duration:(if quick then 300. else 900.) ~jobs ()));
    Pftk_experiments.Convergence.(
      print ppf (generate ~seed ~duration:(hour_duration quick) ~jobs ()));
    Pftk_experiments.Window_dist.(
      print ppf
        (generate ~seed ~rounds:(if quick then 50_000 else 200_000) ~jobs ()));
    Pftk_experiments.Sensitivity.(print ppf (elasticities ()));
    Pftk_experiments.Fairness.(
      print ppf
        (generate ~seed
           ~scenarios:
             (if quick then
                [
                  {
                    label = "3 reno + 1 tfrc";
                    reno_flows = 3;
                    tfrc_flows = 1;
                    duration = 60.;
                  };
                ]
              else default_scenarios)
           ~jobs ()));
    Pftk_experiments.Meanfield_xval.(
      print ppf
        (generate ~seed
           ~scenarios:(if quick then quick_scenarios else default_scenarios)
           ~jobs ()));
    Pftk_experiments.Red_stability.(
      print ppf
        (generate ~cells:(if quick then quick_cells else default_cells) ~jobs ()))
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every table and figure.")
    Term.(const run $ seed_arg $ quick_arg $ jobs_arg)

let main_cmd =
  let doc =
    "PFTK TCP-throughput model suite: models, simulators, and the paper's \
     experiments."
  in
  Cmd.group (Cmd.info "pftk" ~version:"1.0.0" ~doc)
    [
      rate_cmd;
      throughput_cmd;
      inverse_cmd;
      sweep_cmd;
      latency_cmd;
      tfrc_cmd;
      simulate_cmd;
      analyze_cmd;
      live_cmd;
      serve_cmd;
      bench_batch_cmd;
      selfcheck_cmd;
      convergence_cmd;
      table1_cmd;
      table2_cmd;
      fig7_cmd;
      fig8_cmd;
      fig9_cmd;
      fig10_cmd;
      fig11_cmd;
      fig12_cmd;
      fig13_cmd;
      figwindow_cmd;
      timeline_cmd;
      validate_cmd;
      fairness_cmd;
      sensitivity_cmd;
      meanfield_cmd;
      redstability_cmd;
      all_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
