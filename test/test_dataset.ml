(* Tests for pftk_dataset: the Table I host catalog, the Table II data,
   path profiles, and the calibrated workload generators. *)

module Host = Pftk_dataset.Host
module Table2_data = Pftk_dataset.Table2_data
module Path_profile = Pftk_dataset.Path_profile
module Workload = Pftk_dataset.Workload

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* --- Host ---------------------------------------------------------------------- *)

let test_host_count () =
  Alcotest.(check int) "19 hosts as in Table I" 19 (List.length Host.all)

let test_host_find () =
  (match Host.find "manic" with
  | Some h ->
      Alcotest.(check string) "domain" "cs.umass.edu" h.Host.domain;
      Alcotest.(check bool) "Irix" true (h.Host.family = Host.Irix)
  | None -> Alcotest.fail "manic missing");
  Alcotest.(check bool) "unknown host" true (Host.find "nonesuch" = None)

let test_host_tweaks () =
  let linux = Host.reno_tweaks Host.Linux in
  Alcotest.(check int) "Linux TD after 2 dup acks" 2 linux.Host.dup_ack_threshold;
  let irix = Host.reno_tweaks Host.Irix in
  Alcotest.(check int) "Irix backoff cap 2^5" 5 irix.Host.backoff_cap;
  let sunos = Host.reno_tweaks Host.Sunos5 in
  Alcotest.(check int) "default threshold" 3 sunos.Host.dup_ack_threshold;
  Alcotest.(check int) "default cap" 6 sunos.Host.backoff_cap

let test_host_families_cover_table () =
  List.iter
    (fun h -> ignore (Host.reno_tweaks h.Host.family))
    Host.all

(* --- Table II data ---------------------------------------------------------------- *)

let test_table2_row_count () =
  Alcotest.(check int) "24 published rows" 24 (List.length Table2_data.rows)

let test_table2_internal_consistency () =
  (* Loss indications ~ TD + sum of timeout buckets.  The published table
     itself is off by a handful on three rows (void-ganef by 2, void-tove
     by 8, babel-alps by 5 -- presumably events straddling category
     boundaries), so the check allows 1%. *)
  List.iter
    (fun r ->
      let parts =
        r.Table2_data.td + List.fold_left ( + ) 0 r.Table2_data.to_counts
      in
      let gap = abs (r.Table2_data.loss_indications - parts) in
      Alcotest.(check bool)
        (r.Table2_data.sender ^ "-" ^ r.Table2_data.receiver)
        true
        (100 * gap <= r.Table2_data.loss_indications))
    Table2_data.rows

let test_table2_find () =
  (match Table2_data.find ~sender:"manic" ~receiver:"alps" with
  | Some r -> Alcotest.(check int) "packets" 54402 r.Table2_data.packets_sent
  | None -> Alcotest.fail "row missing");
  Alcotest.(check bool) "absent pair" true
    (Table2_data.find ~sender:"alps" ~receiver:"manic" = None)

let test_table2_observed_p () =
  match Table2_data.find ~sender:"manic" ~receiver:"baskerville" with
  | Some r -> check_float ~eps:1e-9 "p = 735/58120" (735. /. 58120.)
      (Table2_data.observed_p r)
  | None -> Alcotest.fail "row missing"

let test_table2_timeouts_dominate () =
  (* The paper's headline: timeouts are the majority or a significant
     fraction everywhere.  Quantified: > 35% in every trace, majority in
     at least 20 of 24. *)
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Table2_data.sender ^ "-" ^ r.Table2_data.receiver ^ " significant")
        true
        (Table2_data.timeout_fraction r > 0.35))
    Table2_data.rows;
  let majority =
    List.filter (fun r -> Table2_data.timeout_fraction r > 0.5) Table2_data.rows
  in
  Alcotest.(check bool) "majority in most traces" true
    (List.length majority >= 20)

(* --- Path profiles ------------------------------------------------------------------- *)

let test_profiles_cover_table2 () =
  Alcotest.(check int) "one profile per row" 24 (List.length Path_profile.all);
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Path_profile.label p ^ " has its row")
        true
        (p.Path_profile.table2 <> None))
    Path_profile.all

let test_profiles_valid_params () =
  List.iter
    (fun p -> Pftk_core.Params.validate (Path_profile.params p))
    (Path_profile.all @ Path_profile.extras)

let test_published_wm () =
  (* The Fig. 7 captions pin these five windows. *)
  List.iter
    (fun (sender, receiver, wm) ->
      match Path_profile.find ~sender ~receiver with
      | Some p ->
          Alcotest.(check int) (sender ^ "-" ^ receiver) wm p.Path_profile.wm;
          Alcotest.(check bool) "flagged published" true p.Path_profile.wm_published
      | None -> Alcotest.failf "missing %s-%s" sender receiver)
    [
      ("manic", "baskerville", 6);
      ("pif", "imagine", 8);
      ("pif", "manic", 33);
      ("void", "alps", 48);
      ("void", "tove", 8);
    ]

let test_fig_paths () =
  Alcotest.(check int) "six Fig. 7 panels" 6 (List.length Path_profile.fig7_paths);
  Alcotest.(check int) "six Fig. 8 panels" 6 (List.length Path_profile.fig8_paths);
  Alcotest.(check string) "modem receiver" "p5" Path_profile.modem.Path_profile.receiver;
  check_float "modem rtt" 4.726 Path_profile.modem.Path_profile.rtt

let test_profile_loss_rates_sane () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Path_profile.label p ^ " loss in (0, 0.2)")
        true
        (p.Path_profile.loss_rate > 0. && p.Path_profile.loss_rate < 0.2))
    (Path_profile.all @ Path_profile.extras)

(* --- Workload -------------------------------------------------------------------------- *)

let profile () =
  match Path_profile.find ~sender:"manic" ~receiver:"ganef" with
  | Some p -> p
  | None -> Alcotest.fail "profile missing"

let test_sim_config_tweaks () =
  (* manic runs Irix: backoff cap 5.  void runs Linux: threshold 2. *)
  let manic = Workload.sim_config (profile ()) in
  Alcotest.(check int) "Irix cap" 5 manic.Pftk_tcp.Round_sim.backoff_cap;
  match Path_profile.find ~sender:"void" ~receiver:"ganef" with
  | Some p ->
      let cfg = Workload.sim_config p in
      Alcotest.(check int) "Linux threshold" 2
        cfg.Pftk_tcp.Round_sim.dup_ack_threshold
  | None -> Alcotest.fail "void-ganef missing"

let test_targets_from_row () =
  let rate, to_frac, depth = Workload.targets (profile ()) in
  Alcotest.(check bool) "rate matches row" true
    (Float.abs (rate -. (743. /. 58924.)) < 1e-9);
  Alcotest.(check bool) "to fraction in (0,1)" true (to_frac > 0. && to_frac < 1.);
  Alcotest.(check bool) "depth >= 1" true (depth >= 1.)

let test_calibration_hits_loss_target () =
  let p = profile () in
  let cal = Workload.calibrate ~seed:31L p in
  let rng = Pftk_stats.Rng.create ~seed:99L () in
  let result =
    Pftk_tcp.Round_sim.run ~seed:99L ~duration:2000.
      ~loss:(Workload.loss_process rng cal)
      (Workload.sim_config p)
  in
  let target, _, _ = Workload.targets p in
  Alcotest.(check bool) "within 40% of target rate" true
    (Float.abs (result.Pftk_tcp.Round_sim.observed_p -. target) /. target < 0.4)

let test_run_for_records () =
  let trace = Workload.run_for ~seed:32L ~duration:300. (profile ()) in
  Alcotest.(check bool) "events recorded" true
    (Pftk_trace.Recorder.length trace.Workload.recorder > 100);
  Alcotest.(check int) "recorder agrees with result"
    trace.Workload.result.Pftk_tcp.Round_sim.packets_sent
    (Pftk_trace.Recorder.packets_sent trace.Workload.recorder)

let test_batch_count_and_independence () =
  let traces = Workload.batch_100s ~seed:33L ~count:5 (profile ()) in
  Alcotest.(check int) "five connections" 5 (List.length traces);
  let counts =
    List.map (fun t -> t.Workload.result.Pftk_tcp.Round_sim.packets_sent) traces
  in
  (* Different seeds: not all identical. *)
  Alcotest.(check bool) "streams differ" true
    (List.exists (fun c -> c <> List.hd counts) (List.tl counts))

let test_hour_trace_duration () =
  let trace = Workload.run_for ~seed:34L ~duration:900. (profile ()) in
  Alcotest.(check bool) "ran at least the requested time" true
    (trace.Workload.result.Pftk_tcp.Round_sim.duration >= 900.)

let () =
  Alcotest.run "pftk_dataset"
    [
      ( "host",
        [
          case "count" test_host_count;
          case "find" test_host_find;
          case "OS tweaks" test_host_tweaks;
          case "families total" test_host_families_cover_table;
        ] );
      ( "table2-data",
        [
          case "row count" test_table2_row_count;
          case "internal consistency" test_table2_internal_consistency;
          case "find" test_table2_find;
          case "observed p" test_table2_observed_p;
          case "timeouts dominate" test_table2_timeouts_dominate;
        ] );
      ( "path-profile",
        [
          case "covers Table II" test_profiles_cover_table2;
          case "valid params" test_profiles_valid_params;
          case "published Wm" test_published_wm;
          case "figure path sets" test_fig_paths;
          case "loss rates sane" test_profile_loss_rates_sane;
        ] );
      ( "workload",
        [
          case "OS tweaks applied" test_sim_config_tweaks;
          case "targets from row" test_targets_from_row;
          slow_case "calibration hits target" test_calibration_hits_loss_target;
          case "run_for records" test_run_for_records;
          case "batch" test_batch_count_and_independence;
          case "hour trace duration" test_hour_trace_duration;
        ] );
    ]
