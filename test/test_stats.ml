(* Tests for pftk_stats: RNG, descriptive statistics, correlation,
   histograms, regression, error metrics, online accumulators. *)

open Pftk_stats

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let case name f = Alcotest.test_case name `Quick f

(* --- Rng ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:1L () and b = Rng.create ~seed:1L () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1L () and b = Rng.create ~seed:2L () in
  Alcotest.(check bool) "different seeds differ" false
    (Rng.bits64 a = Rng.bits64 b)

let test_rng_float_range () =
  let rng = Rng.create () in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_float_mean () =
  let rng = Rng.create ~seed:3L () in
  let n = 50_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.float rng
  done;
  check_float ~eps:0.01 "uniform mean" 0.5 (!total /. float_of_int n)

let test_rng_int_bounds () =
  let rng = Rng.create ~seed:4L () in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_rng_int_uniformity () =
  let rng = Rng.create ~seed:5L () in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Rng.int rng 5 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iter
    (fun c ->
      check_float ~eps:0.02 "each bucket ~1/5" 0.2
        (float_of_int c /. float_of_int n))
    counts

let test_rng_bernoulli () =
  let rng = Rng.create ~seed:6L () in
  let n = 50_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  check_float ~eps:0.01 "bernoulli(0.3) frequency" 0.3
    (float_of_int !hits /. float_of_int n)

let test_rng_bernoulli_edges () =
  let rng = Rng.create () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p=1 always" true (Rng.bernoulli rng 1.)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:7L () in
  let n = 50_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng 2.5
  done;
  check_float ~eps:0.1 "exponential mean" 2.5 (!total /. float_of_int n)

let test_rng_geometric_mean () =
  let rng = Rng.create ~seed:8L () in
  let n = 50_000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Rng.geometric rng 0.25
  done;
  check_float ~eps:0.1 "geometric mean 1/p" 4.
    (float_of_int !total /. float_of_int n)

let test_rng_geometric_support () =
  let rng = Rng.create ~seed:9L () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "k >= 1" true (Rng.geometric rng 0.9 >= 1)
  done;
  Alcotest.(check int) "p=1 gives 1" 1 (Rng.geometric rng 1.)

let test_rng_normal_moments () =
  let rng = Rng.create ~seed:10L () in
  let n = 50_000 in
  let samples = Array.init n (fun _ -> Rng.normal rng ~mean:3. ~std:2.) in
  check_float ~eps:0.05 "normal mean" 3. (Descriptive.mean samples);
  check_float ~eps:0.05 "normal std" 2. (Descriptive.std samples)

let test_rng_shuffle_permutation () =
  let rng = Rng.create ~seed:11L () in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_rng_split_independent () =
  let parent = Rng.create ~seed:12L () in
  let child = Rng.split parent in
  Alcotest.(check bool) "streams differ" false
    (Rng.bits64 parent = Rng.bits64 child)

(* split now gates Monte-Carlo correctness (Window_dist chunks its rounds
   across domains, one split stream per chunk), so pin down its contract:
   reproducible, and no shared prefix between any of the derived streams. *)

let stream rng n = List.init n (fun _ -> Rng.bits64 rng)

let test_rng_split_reproducible () =
  let run () =
    let parent = Rng.create ~seed:77L () in
    let c1 = Rng.split parent in
    let c2 = Rng.split parent in
    (stream c1 32, stream c2 32, stream parent 32)
  in
  let a1, a2, ap = run () in
  let b1, b2, bp = run () in
  Alcotest.(check (list int64)) "first child reproducible" a1 b1;
  Alcotest.(check (list int64)) "second child reproducible" a2 b2;
  Alcotest.(check (list int64)) "parent continuation reproducible" ap bp

let test_rng_split_no_shared_prefix () =
  (* Chunk-stream derivation order, as Window_dist uses it: a master RNG
     split repeatedly.  No two derived streams (nor the parent's own
     continuation) may share a prefix — or even a single 64-bit value in
     their first 64 outputs, collisions being ~2^-52 events. *)
  let parent = Rng.create ~seed:78L () in
  let children = List.init 8 (fun _ -> Rng.split parent) in
  let streams = stream parent 64 :: List.map (fun c -> stream c 64) children in
  let rec check_pairs = function
    | [] -> ()
    | s :: rest ->
        List.iter
          (fun t ->
            Alcotest.(check bool)
              "prefixes differ" false
              (List.hd s = List.hd t);
            List.iter
              (fun v ->
                Alcotest.(check bool)
                  "no value shared in first 64 outputs" false (List.mem v t))
              s)
          rest;
        check_pairs rest
  in
  check_pairs streams

let test_rng_copy () =
  let a = Rng.create ~seed:13L () in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

(* --- Descriptive ----------------------------------------------------------- *)

let test_mean () = check_float "mean" 2.5 (Descriptive.mean [| 1.; 2.; 3.; 4. |])

let test_mean_list () =
  check_float "mean_list" 2. (Descriptive.mean_list [ 1.; 2.; 3. ])

let test_variance () =
  check_float "sample variance" (14. /. 3.)
    (Descriptive.variance [| 1.; 2.; 3.; 6. |]);
  check_float "singleton variance" 0. (Descriptive.variance [| 5. |])

let test_population_variance () =
  check_float "population variance" 3.5
    (Descriptive.population_variance [| 1.; 2.; 3.; 6. |])

let test_std () =
  check_float "std" (sqrt 1.2) (Descriptive.std [| 1.; 3.; 1.; 3.; 1.; 3. |])

let test_min_max_sum () =
  let a = [| 3.; -1.; 4.; 1.5 |] in
  check_float "min" (-1.) (Descriptive.min a);
  check_float "max" 4. (Descriptive.max a);
  check_float "sum" 7.5 (Descriptive.sum a)

let test_median_odd () =
  check_float "odd median" 3. (Descriptive.median [| 5.; 3.; 1. |])

let test_median_even () =
  check_float "even median" 2.5 (Descriptive.median [| 4.; 1.; 2.; 3. |])

let test_quantile () =
  let a = [| 10.; 20.; 30.; 40. |] in
  check_float "q0" 10. (Descriptive.quantile a 0.);
  check_float "q1" 40. (Descriptive.quantile a 1.);
  check_float "q0.5 interpolates" 25. (Descriptive.quantile a 0.5)

let test_quantile_monotone () =
  let a = [| 2.; 7.; 1.; 9.; 4.; 4.; 8. |] in
  let prev = ref neg_infinity in
  List.iter
    (fun q ->
      let v = Descriptive.quantile a q in
      Alcotest.(check bool) "quantile monotone" true (v >= !prev);
      prev := v)
    [ 0.; 0.1; 0.25; 0.5; 0.75; 0.9; 1. ]

let test_geometric_mean () =
  check_float "geometric mean" 4. (Descriptive.geometric_mean [| 2.; 8. |])

let test_empty_raises () =
  Alcotest.check_raises "mean of empty"
    (Invalid_argument "Descriptive.mean: empty input") (fun () ->
      ignore (Descriptive.mean [||]))

let test_summarize () =
  let s = Descriptive.summarize [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check int) "n" 5 s.Descriptive.n;
  check_float "mean" 3. s.Descriptive.mean;
  check_float "median" 3. s.Descriptive.median;
  check_float "min" 1. s.Descriptive.min;
  check_float "max" 5. s.Descriptive.max

(* --- Correlation ------------------------------------------------------------ *)

let test_pearson_perfect () =
  let x = [| 1.; 2.; 3.; 4. |] in
  let y = Array.map (fun v -> (2. *. v) +. 1.) x in
  check_float "perfect positive" 1. (Correlation.pearson x y);
  let z = Array.map (fun v -> -.v) x in
  check_float "perfect negative" (-1.) (Correlation.pearson x z)

let test_pearson_zero_variance () =
  check_float "flat input" 0.
    (Correlation.pearson [| 1.; 1.; 1. |] [| 1.; 2.; 3. |])

let test_covariance () =
  (* x deviations [-1.5,-0.5,0.5,1.5], y = 2x: sum of products 10, n-1 = 3. *)
  check_float "covariance" (10. /. 3.)
    (Correlation.covariance [| 1.; 2.; 3.; 4. |] [| 2.; 4.; 6.; 8. |])

let test_spearman_monotone () =
  let x = [| 1.; 2.; 3.; 4.; 5. |] in
  let y = Array.map (fun v -> v ** 3.) x in
  check_float "monotone nonlinear" 1. (Correlation.spearman x y)

let test_spearman_ties () =
  let x = [| 1.; 1.; 2.; 2. |] and y = [| 1.; 1.; 2.; 2. |] in
  check_float "ties handled" 1. (Correlation.spearman x y)

let test_autocorrelation () =
  (* Alternating series has strong negative lag-1 autocorrelation. *)
  let a = Array.init 100 (fun i -> if i mod 2 = 0 then 1. else -1.) in
  check_float ~eps:0.05 "alternating lag-1" (-1.) (Correlation.autocorrelation a 1)

let test_correlation_errors () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Correlation.pearson: length mismatch") (fun () ->
      ignore (Correlation.pearson [| 1.; 2. |] [| 1. |]))

(* --- Histogram --------------------------------------------------------------- *)

let test_histogram_linear () =
  let h = Histogram.create_linear ~lo:0. ~hi:10. ~bins:5 in
  Histogram.add_all h [| 1.; 3.; 5.; 7.; 9.; 9.9 |];
  Alcotest.(check (array int)) "counts" [| 1; 1; 1; 1; 2 |] (Histogram.counts h);
  Alcotest.(check int) "total" 6 (Histogram.total h)

let test_histogram_out_of_range () =
  let h = Histogram.create_linear ~lo:0. ~hi:1. ~bins:2 in
  Histogram.add h (-0.5);
  Histogram.add h 1.5;
  Histogram.add h 1.0;
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow (incl. hi edge)" 2 (Histogram.overflow h)

let test_histogram_log () =
  let h = Histogram.create_log ~lo:1e-4 ~hi:1. ~bins:4 in
  Histogram.add_all h [| 2e-4; 2e-3; 2e-2; 0.2 |];
  Alcotest.(check (array int)) "one per decade" [| 1; 1; 1; 1 |]
    (Histogram.counts h);
  check_float ~eps:1e-9 "log bin center is geometric" (10. ** -2.5)
    (Histogram.bin_center h 1)

let test_histogram_normalized () =
  let h = Histogram.create_linear ~lo:0. ~hi:4. ~bins:4 in
  Histogram.add_all h [| 0.5; 1.5; 1.6; 3.5 |];
  let n = Histogram.normalized h in
  check_float "normalized sums to 1" 1. (Array.fold_left ( +. ) 0. n);
  check_float "bin share" 0.5 n.(1)

let test_histogram_edges () =
  let h = Histogram.create_linear ~lo:0. ~hi:10. ~bins:2 in
  Alcotest.(check (array (float 1e-9))) "edges" [| 0.; 5.; 10. |]
    (Histogram.bin_edges h)

(* --- Regression ---------------------------------------------------------------- *)

let test_linear_fit_exact () =
  let x = [| 0.; 1.; 2.; 3. |] in
  let y = Array.map (fun v -> (3. *. v) -. 1. ) x in
  let fit = Regression.linear_fit x y in
  check_float "slope" 3. fit.Regression.slope;
  check_float "intercept" (-1.) fit.Regression.intercept;
  check_float "r2" 1. fit.Regression.r_squared

let test_log_log_power_law () =
  let x = [| 1.; 2.; 4.; 8.; 16. |] in
  let y = Array.map (fun v -> 5. *. (v ** -0.5)) x in
  let fit = Regression.log_log_fit x y in
  check_float ~eps:1e-9 "power-law slope" (-0.5) fit.Regression.slope

let test_predict () =
  let fit = { Regression.slope = 2.; intercept = 1.; r_squared = 1. } in
  check_float "predict" 7. (Regression.predict fit 3.)

let test_regression_errors () =
  Alcotest.check_raises "zero x variance"
    (Invalid_argument "Regression.linear_fit: x has zero variance") (fun () ->
      ignore (Regression.linear_fit [| 1.; 1. |] [| 1.; 2. |]))

(* --- Error metrics ---------------------------------------------------------------- *)

let test_average_error () =
  check_float "average error" 0.25
    (Error_metrics.average_error ~predicted:[| 5.; 15. |] ~observed:[| 4.; 20. |])

let test_average_error_skips_zero () =
  check_float "skips zero observations" 0.5
    (Error_metrics.average_error ~predicted:[| 3.; 99. |] ~observed:[| 2.; 0. |])

let test_mean_signed_error () =
  Alcotest.(check bool) "overestimate is positive" true
    (Error_metrics.mean_signed_error ~predicted:[| 10. |] ~observed:[| 5. |] > 0.);
  Alcotest.(check bool) "underestimate is negative" true
    (Error_metrics.mean_signed_error ~predicted:[| 2. |] ~observed:[| 5. |] < 0.)

let test_rmse () =
  (* errors 3 and 4: sqrt((9 + 16) / 2). *)
  check_float "rmse" (sqrt 12.5)
    (Error_metrics.rmse ~predicted:[| 3.; 11. |] ~observed:[| 0.; 7. |])

let test_max_relative_error () =
  check_float "max relative" 1.
    (Error_metrics.max_relative_error ~predicted:[| 2.; 1.1 |] ~observed:[| 1.; 1. |])

let test_error_metrics_errors () =
  Alcotest.check_raises "no usable observations"
    (Invalid_argument "Error_metrics.average_error: no usable observations")
    (fun () ->
      ignore (Error_metrics.average_error ~predicted:[| 1. |] ~observed:[| 0. |]))

(* --- Running ---------------------------------------------------------------------- *)

let test_running_matches_descriptive () =
  let data = [| 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. |] in
  let r = Running.create () in
  Array.iter (Running.add r) data;
  Alcotest.(check int) "count" 8 (Running.count r);
  check_float "mean" (Descriptive.mean data) (Running.mean r);
  check_float ~eps:1e-9 "variance" (Descriptive.variance data) (Running.variance r);
  check_float "min" 1. (Running.min r);
  check_float "max" 9. (Running.max r);
  check_float "total" (Descriptive.sum data) (Running.total r)

let test_running_empty () =
  let r = Running.create () in
  check_float "empty mean" 0. (Running.mean r);
  check_float "empty variance" 0. (Running.variance r)

let test_running_merge () =
  let data = Array.init 20 (fun i -> float_of_int (i * i) /. 7.) in
  let left = Running.create () and right = Running.create () in
  Array.iteri (fun i x -> Running.add (if i < 9 then left else right) x) data;
  let merged = Running.merge left right in
  check_float ~eps:1e-9 "merged mean" (Descriptive.mean data) (Running.mean merged);
  check_float ~eps:1e-9 "merged variance" (Descriptive.variance data)
    (Running.variance merged);
  Alcotest.(check int) "merged count" 20 (Running.count merged)

let test_running_merge_empty () =
  let r = Running.create () in
  Running.add r 5.;
  let merged = Running.merge (Running.create ()) r in
  check_float "merge with empty" 5. (Running.mean merged)

(* --- Property tests ------------------------------------------------------------------- *)

let nonempty_floats =
  QCheck.(array_of_size Gen.(int_range 1 40) (float_bound_inclusive 1000.))

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean within [min, max]" ~count:200 nonempty_floats
    (fun a ->
      let m = Descriptive.mean a in
      m >= Descriptive.min a -. 1e-9 && m <= Descriptive.max a +. 1e-9)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance nonnegative" ~count:200 nonempty_floats
    (fun a -> Descriptive.variance a >= -1e-9)

let pair_arrays =
  QCheck.(
    map
      (fun l ->
        let a = Array.of_list (List.map fst l) in
        let b = Array.of_list (List.map snd l) in
        (a, b))
      (list_of_size Gen.(int_range 2 40)
         (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.))))

let prop_pearson_bounded =
  QCheck.Test.make ~name:"pearson in [-1, 1]" ~count:200 pair_arrays
    (fun (x, y) ->
      let r = Correlation.pearson x y in
      r >= -1.0000001 && r <= 1.0000001)

let prop_self_correlation =
  QCheck.Test.make ~name:"pearson(x, x) is 1 (nonconstant x)" ~count:200
    nonempty_floats (fun a ->
      QCheck.assume (Array.length a >= 2 && Descriptive.std a > 0.);
      Float.abs (Correlation.pearson a a -. 1.) < 1e-6)

let prop_running_online =
  QCheck.Test.make ~name:"running matches batch" ~count:200 nonempty_floats
    (fun a ->
      let r = Running.create () in
      Array.iter (Running.add r) a;
      Float.abs (Running.mean r -. Descriptive.mean a) < 1e-6)

let props = List.map (fun t -> QCheck_alcotest.to_alcotest t)
  [
    prop_mean_bounded;
    prop_variance_nonneg;
    prop_pearson_bounded;
    prop_self_correlation;
    prop_running_online;
  ]

let () =
  Alcotest.run "pftk_stats"
    [
      ( "rng",
        [
          case "deterministic streams" test_rng_deterministic;
          case "seed sensitivity" test_rng_seed_sensitivity;
          case "float in [0,1)" test_rng_float_range;
          case "uniform mean" test_rng_float_mean;
          case "int bounds" test_rng_int_bounds;
          case "int uniformity" test_rng_int_uniformity;
          case "bernoulli frequency" test_rng_bernoulli;
          case "bernoulli edges" test_rng_bernoulli_edges;
          case "exponential mean" test_rng_exponential_mean;
          case "geometric mean" test_rng_geometric_mean;
          case "geometric support" test_rng_geometric_support;
          case "normal moments" test_rng_normal_moments;
          case "shuffle is a permutation" test_rng_shuffle_permutation;
          case "split independence" test_rng_split_independent;
          case "split reproducible" test_rng_split_reproducible;
          case "split no shared prefix" test_rng_split_no_shared_prefix;
          case "copy" test_rng_copy;
        ] );
      ( "descriptive",
        [
          case "mean" test_mean;
          case "mean_list" test_mean_list;
          case "variance" test_variance;
          case "population variance" test_population_variance;
          case "std" test_std;
          case "min/max/sum" test_min_max_sum;
          case "median odd" test_median_odd;
          case "median even" test_median_even;
          case "quantile" test_quantile;
          case "quantile monotone" test_quantile_monotone;
          case "geometric mean" test_geometric_mean;
          case "empty raises" test_empty_raises;
          case "summarize" test_summarize;
        ] );
      ( "correlation",
        [
          case "pearson perfect" test_pearson_perfect;
          case "pearson zero variance" test_pearson_zero_variance;
          case "covariance" test_covariance;
          case "spearman monotone" test_spearman_monotone;
          case "spearman ties" test_spearman_ties;
          case "autocorrelation" test_autocorrelation;
          case "errors" test_correlation_errors;
        ] );
      ( "histogram",
        [
          case "linear counts" test_histogram_linear;
          case "under/overflow" test_histogram_out_of_range;
          case "log bins" test_histogram_log;
          case "normalized" test_histogram_normalized;
          case "edges" test_histogram_edges;
        ] );
      ( "regression",
        [
          case "exact line" test_linear_fit_exact;
          case "power law on log-log" test_log_log_power_law;
          case "predict" test_predict;
          case "errors" test_regression_errors;
        ] );
      ( "error-metrics",
        [
          case "average error" test_average_error;
          case "skips zero observed" test_average_error_skips_zero;
          case "signed error" test_mean_signed_error;
          case "rmse" test_rmse;
          case "max relative" test_max_relative_error;
          case "errors" test_error_metrics_errors;
        ] );
      ( "running",
        [
          case "matches descriptive" test_running_matches_descriptive;
          case "empty defaults" test_running_empty;
          case "merge" test_running_merge;
          case "merge with empty" test_running_merge_empty;
        ] );
      ("properties", props);
    ]
