(* Tests for lib/batch: jobs-independence of the engine (byte-identical
   output for any [jobs]/[chunk]), empty and single-row groups, the
   hoisted domain scan (first-bad-row index and scalar-exact messages),
   kernel-vs-scalar bit-equality on a pinned grid, the batched inverse
   against the scalar bisection, validation caching, and the
   [pftk serve --batch] CLI error contract. *)

module Columns = Pftk_batch.Columns
module Scan = Pftk_batch.Scan
module Kernel = Pftk_batch.Kernel
module Engine = Pftk_batch.Engine

let case name f = Alcotest.test_case name `Quick f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i =
    i + n <= m && (String.equal (String.sub s i n) sub || scan (i + 1))
  in
  scan 0

let bits = Int64.bits_of_float

let bits_eq a b =
  (Float.is_nan a && Float.is_nan b) || Int64.equal (bits a) (bits b)

let all_models =
  [
    Kernel.make ~b:2 Kernel.Full;
    Kernel.make ~b:1 Kernel.Full;
    Kernel.make ~b:2 Kernel.Full_approx_q;
    Kernel.make ~b:2 Kernel.Approximate;
    Kernel.make ~b:2 Kernel.Td_only;
    Kernel.make ~b:2 (Kernel.Tfrc 4.);
  ]

(* A deterministic mixed grid: log-spaced p, cycling rtt, both window
   regimes (tiny, moderate, unlimited). *)
let mixed_columns n =
  let c = Columns.create n in
  let wm_cycle = [| 2.; 8.; 1024.; Columns.unlimited_wm |] in
  for i = 0 to n - 1 do
    let fi = float_of_int (i mod 89) /. 88. in
    let p = 10. ** (-5. +. (4.5 *. fi)) in
    let rtt = 0.01 +. (0.5 *. (float_of_int (i mod 7) /. 6.)) in
    Columns.set c i ~p ~rtt ~t0:(4. *. rtt) ~wm:wm_cycle.(i mod 4)
  done;
  c

(* --- Engine: jobs-independence ------------------------------------------- *)

let test_jobs_identity () =
  let n = 1000 in
  let c = mixed_columns n in
  List.iter
    (fun kernel ->
      let reference = Engine.run ~jobs:1 ~chunk:7 kernel c in
      List.iter
        (fun jobs ->
          let out = Engine.run ~jobs ~chunk:7 kernel c in
          for i = 0 to n - 1 do
            if not (bits_eq (Float.Array.get reference i) (Float.Array.get out i))
            then
              Alcotest.failf "%s: jobs=%d differs from jobs=1 at row %d"
                (Kernel.name kernel) jobs i
          done)
        [ 2; 4; 2000 ])
    all_models

let test_chunk_larger_than_rows () =
  let n = 5 in
  let c = mixed_columns n in
  let kernel = Kernel.make ~b:2 Kernel.Full in
  let a = Engine.run ~jobs:4 ~chunk:100000 kernel c in
  let b = Engine.run ~jobs:1 kernel c in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "same bits" true
      (bits_eq (Float.Array.get a i) (Float.Array.get b i))
  done;
  (* More workers than rows: every row still evaluated exactly once. *)
  let d = Engine.run ~jobs:16 ~chunk:1 kernel c in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "jobs > rows same bits" true
      (bits_eq (Float.Array.get d i) (Float.Array.get b i))
  done

let test_empty_and_single_row () =
  let kernel = Kernel.make ~b:2 Kernel.Approximate in
  let empty = Engine.run ~jobs:4 kernel (Columns.create 0) in
  Alcotest.(check int) "empty output" 0 (Float.Array.length empty);
  let c = Columns.create 1 in
  Columns.set c 0 ~p:0.02 ~rtt:0.1 ~t0:0.4 ~wm:32.;
  let out = Engine.run ~jobs:4 kernel c in
  let expected = Kernel.scalar_reference kernel ~p:0.02 ~rtt:0.1 ~t0:0.4 ~wm:32. in
  Alcotest.(check bool) "single row matches scalar" true
    (bits_eq expected (Float.Array.get out 0))

(* --- Scan ------------------------------------------------------------------ *)

let check_rejects ~expect c =
  let kernel = Kernel.make ~b:2 Kernel.Full in
  let out = Float.Array.make (Columns.length c) 0. in
  match Engine.run_into kernel c out with
  | () -> Alcotest.failf "scan accepted a bad column (wanted %S)" expect
  | exception Invalid_argument msg -> Alcotest.(check string) "message" expect msg

let bad_row_columns ~at ~p ~rtt ~t0 ~wm =
  let c = mixed_columns 10 in
  (* Bypass [Columns.set]'s wm <= 0 remapping so the scan sees the raw
     adversarial values. *)
  Float.Array.set c.Columns.p at p;
  Float.Array.set c.Columns.rtt at rtt;
  Float.Array.set c.Columns.t0 at t0;
  Float.Array.set c.Columns.wm at wm;
  c.Columns.dirty <- true;
  c

let test_scan_messages () =
  check_rejects ~expect:"batch row 3: Params: rtt must be positive"
    (bad_row_columns ~at:3 ~p:0.1 ~rtt:Float.nan ~t0:1. ~wm:2.);
  check_rejects ~expect:"batch row 0: Params: t0 must be positive"
    (bad_row_columns ~at:0 ~p:0.1 ~rtt:0.1 ~t0:(-0.) ~wm:2.);
  check_rejects ~expect:"batch row 9: Params: wm must be >= 1"
    (bad_row_columns ~at:9 ~p:0.1 ~rtt:0.1 ~t0:1. ~wm:0.5);
  check_rejects
    ~expect:
      "batch row 4: batch: wm exceeds the unlimited-window sentinel (use wm \
       <= 0 for unlimited)"
    (bad_row_columns ~at:4 ~p:0.1 ~rtt:0.1 ~t0:1. ~wm:Float.infinity);
  check_rejects ~expect:"batch row 5: batch: wm must be a whole number of packets"
    (bad_row_columns ~at:5 ~p:0.1 ~rtt:0.1 ~t0:1. ~wm:1.5);
  check_rejects ~expect:"batch row 7: loss probability p=1 outside (0, 1)"
    (bad_row_columns ~at:7 ~p:1. ~rtt:0.1 ~t0:1. ~wm:2.)

let test_scan_first_bad_row () =
  (* Two bad rows: the scan must report the earlier one, and the field
     order within a row is rtt before p (the scalar validation order). *)
  let c = bad_row_columns ~at:6 ~p:Float.nan ~rtt:0.1 ~t0:1. ~wm:2. in
  Float.Array.set c.Columns.rtt 2 (-1.);
  Float.Array.set c.Columns.p 2 Float.nan;
  match Scan.validate c with
  | Error { Scan.row = 2; field = "rtt"; message } ->
      Alcotest.(check string) "message" "Params: rtt must be positive" message
  | Error { Scan.row; field; _ } ->
      Alcotest.failf "reported row %d field %s, wanted row 2 field rtt" row field
  | Ok () -> Alcotest.fail "scan accepted bad columns"

let test_validation_caching () =
  let c = mixed_columns 50 in
  Alcotest.(check bool) "fresh columns are dirty" true c.Columns.dirty;
  let kernel = Kernel.make ~b:2 Kernel.Approximate in
  let _ = Engine.run kernel c in
  Alcotest.(check bool) "scan cleared dirty" false c.Columns.dirty;
  (* Mutating a row re-arms the scan: a now-invalid row must be caught
     by the next run, not served from the cached verdict. *)
  Columns.set c 10 ~p:Float.nan ~rtt:0.1 ~t0:1. ~wm:2.;
  Alcotest.(check bool) "set re-dirtied" true c.Columns.dirty;
  let out = Float.Array.make 50 0. in
  match Engine.run_into kernel c out with
  | () -> Alcotest.fail "stale validation accepted a NaN row"
  | exception Invalid_argument _ -> ()

(* --- Kernel vs scalar ------------------------------------------------------ *)

let test_kernel_matches_scalar_grid () =
  let n = 356 in
  let c = mixed_columns n in
  List.iter
    (fun kernel ->
      let out = Engine.run kernel c in
      for i = 0 to n - 1 do
        let p, rtt, t0, wm = Columns.row c i in
        let expected = Kernel.scalar_reference kernel ~p ~rtt ~t0 ~wm in
        if not (bits_eq expected (Float.Array.get out i)) then
          Alcotest.failf "%s: row %d (p=%h rtt=%h t0=%h wm=%h): %h <> %h"
            (Kernel.name kernel) i p rtt t0 wm (Float.Array.get out i) expected
      done)
    all_models

let test_subnormal_p_matches_scalar () =
  let c = Columns.create 3 in
  Columns.set c 0 ~p:0x1p-1074 ~rtt:0.2 ~t0:2. ~wm:32.;
  Columns.set c 1 ~p:0x1p-1022 ~rtt:0.2 ~t0:2. ~wm:0.;
  Columns.set c 2 ~p:1e-300 ~rtt:1e300 ~t0:1e300 ~wm:8.;
  List.iter
    (fun kernel ->
      let out = Engine.run kernel c in
      for i = 0 to 2 do
        let p, rtt, t0, wm = Columns.row c i in
        let expected = Kernel.scalar_reference kernel ~p ~rtt ~t0 ~wm in
        if not (bits_eq expected (Float.Array.get out i)) then
          Alcotest.failf "%s: subnormal row %d: %h <> %h" (Kernel.name kernel) i
            (Float.Array.get out i) expected
      done)
    all_models

(* --- Inverse ---------------------------------------------------------------- *)

let test_loss_budget_matches_scalar () =
  let n = 40 in
  let c = mixed_columns n in
  let rates = Float.Array.make n 0. in
  for i = 0 to n - 1 do
    (* A mix of attainable targets, unattainable ones, and invalid
       (non-positive / NaN) targets that must map to the NaN sentinel. *)
    let r =
      match i mod 4 with
      | 0 -> 5. +. float_of_int i
      | 1 -> 1e12
      | 2 -> 0.
      | _ -> Float.nan
    in
    Float.Array.set rates i r
  done;
  let out = Engine.loss_budget ~jobs:3 ~chunk:7 ~b:2 c ~rates in
  for i = 0 to n - 1 do
    let _, rtt, t0, wm = Columns.row c i in
    let rate = Float.Array.get rates i in
    let expected =
      if not (rate > 0.) then Float.nan
      else
        let params =
          Pftk_core.Params.make ~b:2 ~wm:(Columns.wm_to_int wm) ~rtt ~t0 ()
        in
        match Pftk_core.Inverse.loss_budget params ~rate with
        | Some p -> p
        | None -> Float.nan
    in
    if not (bits_eq expected (Float.Array.get out i)) then
      Alcotest.failf "row %d: loss budget %h <> scalar %h" i
        (Float.Array.get out i) expected
  done

(* --- serve CLI -------------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_serve ?(flags = "") queries =
  write_file "serve_q.txt" queries;
  let code =
    Sys.command
      (Printf.sprintf
         "../bin/pftk.exe serve --batch --file serve_q.txt %s \
          1>serve_out.txt 2>serve_err.txt"
         flags)
  in
  (code, read_file "serve_out.txt", read_file "serve_err.txt")

(* `pftk serve --help` must state the units of the protocol: the four
   input columns (p dimensionless, rtt/t0 seconds, wm packets) and the
   packets-per-second output.  Pinned so a doc rewrite cannot silently
   drop the units contract (ISSUE: units discrepancies between
   conventions are exactly what the dimensional-analysis pass exists to
   keep explicit). *)
let test_serve_help_documents_units () =
  let code =
    Sys.command
      "../bin/pftk.exe serve --help=plain 1>serve_help.txt 2>/dev/null"
  in
  Alcotest.(check int) "--help exits 0" 0 code;
  (* Cmdliner reflows the doc paragraph, so collapse all whitespace
     runs (including the wrap newlines) before substring matching. *)
  let help =
    String.concat " "
      (String.split_on_char '\n' (read_file "serve_help.txt")
      |> List.concat_map (String.split_on_char ' ')
      |> List.filter (fun w -> w <> ""))
  in
  let contains needle =
    let n = String.length needle and h = String.length help in
    let rec go i = i + n <= h && (String.sub help i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "help mentions %S" needle)
        true (contains needle))
    [
      "loss probability (dimensionless";
      "rtt and t0 are seconds";
      "wm is packets";
      "packets per second";
    ]

let test_serve_mixed_stream () =
  let code, out, err =
    run_serve
      "0.02 0.1 0.4 32\n\
       not a query\n\
       \n\
       0.02 -1 0.4 32\n\
       0.02 0.1 0.4 1.5\n\
       0.01 0.2 0.8 0\n"
  in
  Alcotest.(check int) "exit 0 when some lines succeed" 0 code;
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "one output line per input line" 6 (List.length lines);
  List.iteri
    (fun i line ->
      match i with
      | 0 | 5 ->
          Alcotest.(check bool)
            (Printf.sprintf "line %d is a rate" i)
            true
            (match float_of_string_opt line with
            | Some v -> v > 0.
            | None -> false)
      | _ ->
          Alcotest.(check string) (Printf.sprintf "line %d is the sentinel" i)
            "nan" line)
    lines;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~sub:needle err))
    [
      "pftk serve: line 2: expected 4 fields (p rtt t0 wm), got 3";
      "pftk serve: line 3: empty line";
      "pftk serve: line 4: Params: rtt must be positive";
      "pftk serve: line 5: batch: wm must be a whole number of packets";
    ]

let test_serve_all_bad_exits_nonzero () =
  let code, out, _err = run_serve "bad\nworse\n" in
  Alcotest.(check int) "exit 1 when every line fails" 1 code;
  Alcotest.(check string) "all sentinels" "nan\nnan\n" out

let test_serve_empty_stream () =
  let code, out, err = run_serve "" in
  Alcotest.(check int) "empty stream exits 0" 0 code;
  Alcotest.(check string) "no output" "" out;
  Alcotest.(check string) "no errors" "" err

let test_serve_overlong_line () =
  let long = String.make 5000 '1' in
  let code, out, err = run_serve (long ^ "\n0.02 0.1 0.4 32\n") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "overlong line diagnosed with its length" true
    (contains ~sub:"line 1: line exceeds 4096 bytes (got 5000)" err);
  Alcotest.(check bool) "sentinel then rate" true
    (match String.split_on_char '\n' (String.trim out) with
    | [ "nan"; rate ] -> float_of_string_opt rate <> None
    | _ -> false)

(* The cap is inclusive: a line of exactly [max_line_bytes] bytes is a
   valid query; one byte more is rejected without being parsed. *)
let test_serve_line_cap_boundary () =
  let cap = Pftk_batch.Serve.max_line_bytes in
  let pad query n = query ^ String.make (n - String.length query) ' ' in
  let at_cap = pad "0.02 0.1 0.4 32" cap in
  let over_cap = pad "0.02 0.1 0.4 32" (cap + 1) in
  let code, out, err = run_serve (at_cap ^ "\n" ^ over_cap ^ "\n") in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "line at the cap is answered" true
    (match String.split_on_char '\n' (String.trim out) with
    | [ rate; "nan" ] -> float_of_string_opt rate <> None
    | _ -> false);
  Alcotest.(check bool) "line past the cap is diagnosed" true
    (contains
       ~sub:(Printf.sprintf "line 2: line exceeds %d bytes (got %d)" cap (cap + 1))
       err);
  Alcotest.(check bool) "line at the cap is not diagnosed" true
    (not (contains ~sub:"line 1" err))

let test_serve_batch_equals_scalar () =
  let buf = Buffer.create 4096 in
  for i = 0 to 1999 do
    let fi = float_of_int i /. 1999. in
    Buffer.add_string buf
      (Printf.sprintf "%.17g %.17g %.17g %d\n"
         (10. ** (-5. +. (4.8 *. fi)))
         (0.01 +. fi)
         (0.04 +. (4. *. fi))
         (match i mod 3 with 0 -> 0 | 1 -> 8 | _ -> 1024))
  done;
  let queries = Buffer.contents buf in
  List.iter
    (fun model ->
      let _, batch, _ = run_serve ~flags:("--model " ^ model) queries in
      let _, scalar, _ =
        run_serve ~flags:("--model " ^ model ^ " --scalar") queries
      in
      Alcotest.(check string) (model ^ ": batch = scalar stream") scalar batch)
    [ "full"; "full-approx-q"; "approximate"; "td-only"; "tfrc" ]

let () =
  Alcotest.run "pftk_batch"
    [
      ( "engine",
        [
          case "jobs-identity" test_jobs_identity;
          case "chunk larger than rows" test_chunk_larger_than_rows;
          case "empty and single row" test_empty_and_single_row;
          case "validation caching" test_validation_caching;
        ] );
      ( "scan",
        [
          case "scalar-exact messages" test_scan_messages;
          case "first bad row wins" test_scan_first_bad_row;
        ] );
      ( "kernel",
        [
          case "matches scalar on mixed grid" test_kernel_matches_scalar_grid;
          case "subnormal and extreme rows" test_subnormal_p_matches_scalar;
        ] );
      ("inverse", [ case "loss budget matches scalar" test_loss_budget_matches_scalar ]);
      ( "serve",
        [
          case "mixed stream contract" test_serve_mixed_stream;
          case "--help documents units" test_serve_help_documents_units;
          case "all-bad stream exits 1" test_serve_all_bad_exits_nonzero;
          case "empty stream" test_serve_empty_stream;
          case "overlong line" test_serve_overlong_line;
          case "line-cap boundary" test_serve_line_cap_boundary;
          case "batch stream = scalar stream" test_serve_batch_equals_scalar;
        ] );
    ]
