(* Tests for the pftk-lint static-analysis engine (tools/lint): one
   triggering fixture per rule L1-L5, suppressed fixtures exercising the
   [@lint.allow] escape hatch, and a clean fixture asserting zero
   findings. *)

module Lint = Pftk_lint_engine

let case name f = Alcotest.test_case name `Quick f
let rules fs = List.map (fun (f : Lint.finding) -> f.Lint.rule) fs
let check_rules msg expected fs = Alcotest.(check (list string)) msg expected (rules fs)

(* --- L1: polymorphic comparison in model code ------------------------------ *)

let test_l1_poly_compare () =
  check_rules "bare = flagged in lib/core" [ "L1" ]
    (Lint.lint_source ~path:"lib/core/fixture.ml" "let f x = x = 0.\n");
  check_rules "qualified Stdlib.compare flagged" [ "L1" ]
    (Lint.lint_source ~path:"lib/stats/fixture.ml"
       "let sort a = Array.sort Stdlib.compare a\n");
  check_rules "min flagged in lib/stats" [ "L1" ]
    (Lint.lint_source ~path:"lib/stats/fixture.ml" "let lo a b = min a b\n");
  check_rules "Float.equal is the blessed spelling" []
    (Lint.lint_source ~path:"lib/core/fixture.ml"
       "let f x = Float.equal x 0.\n");
  check_rules "local monomorphic redefinition not flagged" []
    (Lint.lint_source ~path:"lib/stats/fixture.ml"
       "let min (a : float) b = if a < b then a else b\nlet lo = min 1. 2.\n");
  check_rules "polymorphic = allowed outside lib/core and lib/stats" []
    (Lint.lint_source ~path:"lib/tcp/fixture.ml" "let f x = x = 0\n")

(* --- L2: determinism ------------------------------------------------------- *)

let test_l2_determinism () =
  check_rules "Random.* in lib/" [ "L2" ]
    (Lint.lint_source ~path:"lib/loss/fixture.ml"
       "let jitter () = Random.float 1.\n");
  check_rules "Random.State too" [ "L2" ]
    (Lint.lint_source ~path:"lib/loss/fixture.ml"
       "let s () = Random.State.make_self_init ()\n");
  check_rules "Sys.time in lib/" [ "L2" ]
    (Lint.lint_source ~path:"lib/experiments/fixture.ml"
       "let t () = Sys.time ()\n");
  check_rules "Unix.gettimeofday in lib/" [ "L2" ]
    (Lint.lint_source ~path:"lib/trace/fixture.ml"
       "let t () = Unix.gettimeofday ()\n");
  check_rules "wall clock is fine in bench/" []
    (Lint.lint_source ~path:"bench/fixture.ml"
       "let t () = Unix.gettimeofday ()\n")

(* --- L3: module-toplevel mutable state ------------------------------------- *)

let test_l3_domain_safety () =
  check_rules "toplevel Hashtbl.create" [ "L3" ]
    (Lint.lint_source ~path:"lib/core/fixture.ml"
       "let cache : (int, float) Hashtbl.t = Hashtbl.create 16\n");
  check_rules "toplevel ref" [ "L3" ]
    (Lint.lint_source ~path:"lib/dataset/fixture.ml" "let counter = ref 0\n");
  check_rules "toplevel Buffer.create" [ "L3" ]
    (Lint.lint_source ~path:"lib/trace/fixture.ml"
       "let scratch = Buffer.create 256\n");
  check_rules "toplevel mutable-field record literal" [ "L3" ]
    (Lint.lint_source ~path:"lib/netsim/fixture.ml"
       "type s = { mutable n : int }\nlet shared = { n = 0 }\n");
  check_rules "ref inside a function body is per-call state" []
    (Lint.lint_source ~path:"lib/dataset/fixture.ml"
       "let fresh () = ref 0\nlet table () = Hashtbl.create 16\n");
  check_rules "immutable record literal at toplevel is fine" []
    (Lint.lint_source ~path:"lib/netsim/fixture.ml"
       "type s = { n : int }\nlet shared = { n = 0 }\n")

(* --- L4: every lib/ module keeps a paired .mli ----------------------------- *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    Sys.mkdir d 0o755
  end

let test_l4_missing_mli () =
  let root = Filename.temp_file "pftk_lint_l4" "" in
  Sys.remove root;
  let dir = List.fold_left Filename.concat root [ "lib"; "core" ] in
  mkdir_p dir;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  write "paired.ml" "let x = 1\n";
  write "paired.mli" "val x : int\n";
  write "naked.ml" "let y = 2\n";
  let findings = Lint.lint_dirs [ root ] in
  check_rules "exactly one L4, for the unpaired module" [ "L4" ] findings;
  (match findings with
  | [ f ] ->
      Alcotest.(check bool)
        "finding names the .ml without interface" true
        (Filename.basename f.Lint.file = "naked.ml")
  | _ -> Alcotest.fail "expected a single finding")

(* --- L5: Obj.magic and partial accessors ----------------------------------- *)

let test_l5_partiality () =
  check_rules "Obj.magic" [ "L5" ]
    (Lint.lint_source ~path:"lib/core/fixture.ml"
       "let coerce (x : int) : float = Obj.magic x\n");
  check_rules "List.hd" [ "L5" ]
    (Lint.lint_source ~path:"lib/experiments/fixture.ml"
       "let first xs = List.hd xs\n");
  check_rules "Option.get" [ "L5" ]
    (Lint.lint_source ~path:"lib/tcp/fixture.ml"
       "let force o = Option.get o\n");
  check_rules "Option.value is fine" []
    (Lint.lint_source ~path:"lib/tcp/fixture.ml"
       "let force o = Option.value ~default:0 o\n")

(* --- [@lint.allow] suppression --------------------------------------------- *)

let test_allow_attribute () =
  check_rules "expression-scoped allow suppresses the finding" []
    (Lint.lint_source ~path:"lib/core/fixture.ml"
       "let same a b = (a = b) [@lint.allow \"L1\"]\n");
  check_rules "binding-scoped allow ([@@...]) suppresses too" []
    (Lint.lint_source ~path:"lib/trace/fixture.ml"
       "let stamp () = Unix.gettimeofday () [@@lint.allow \"L2\"]\n");
  check_rules "allow is scoped: sibling bindings still flagged" [ "L2" ]
    (Lint.lint_source ~path:"lib/trace/fixture.ml"
       "let a () = Unix.gettimeofday () [@@lint.allow \"L2\"]\n\
        let b () = Unix.gettimeofday ()\n");
  check_rules "allow names only the listed rule" [ "L2" ]
    (Lint.lint_source ~path:"lib/core/fixture.ml"
       "let f x = (x = Sys.time ()) [@lint.allow \"L1\"]\n");
  check_rules "several rules in one attribute" []
    (Lint.lint_source ~path:"lib/core/fixture.ml"
       "let f x = (x = Sys.time ()) [@lint.allow \"L1 L2\"]\n")

(* --- Clean fixture ---------------------------------------------------------- *)

let test_clean () =
  check_rules "idiomatic model code has zero findings" []
    (Lint.lint_source ~path:"lib/core/fixture.ml"
       "let send_rate ~rtt p = 1. /. (rtt *. sqrt (2. *. p /. 3.))\n\
        let clamp lo hi x = Float.min hi (Float.max lo x)\n\
        let is_zero x = Float.equal x 0.\n");
  check_rules "syntax errors surface as parse findings" [ "parse" ]
    (Lint.lint_source ~path:"lib/core/fixture.ml" "let = in\n")

let () =
  Alcotest.run "pftk_lint"
    [
      ( "rules",
        [
          case "L1 polymorphic comparison" test_l1_poly_compare;
          case "L2 determinism" test_l2_determinism;
          case "L3 domain safety" test_l3_domain_safety;
          case "L4 interface hygiene" test_l4_missing_mli;
          case "L5 partiality" test_l5_partiality;
          case "lint.allow suppression" test_allow_attribute;
          case "clean fixture" test_clean;
        ] );
    ]
