(* Tests for the pftk-race typed analyzer (tools/lint): fixtures are
   compiled to .cmt/.cmti with the toolchain's own ocamlc (-bin-annot)
   in a throwaway root laid out like the workspace, then fed to
   [Pftk_race_engine.analyze_paths].  One triggering fixture per rule
   R1-R4, suppressed fixtures for the [@lint.allow] escape hatch, zone
   checks, and an end-to-end exit-code check of the pftk_race CLI. *)

module Race = Pftk_race_engine
module Lint = Pftk_lint_engine

let case name f = Alcotest.test_case name `Quick f
let rules fs = List.map (fun (f : Lint.finding) -> f.Lint.rule) fs

let check_rules msg expected fs =
  Alcotest.(check (list string)) msg expected (rules fs)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    Sys.mkdir d 0o755
  end

(* The compiler that built us: Config.standard_library is
   <prefix>/lib/ocaml, so ocamlc lives two levels up in <prefix>/bin;
   fall back to PATH lookup for unusual layouts. *)
let ocamlc =
  lazy
    (let prefix =
       Filename.dirname (Filename.dirname Config.standard_library)
     in
     let candidate =
       Filename.concat (Filename.concat prefix "bin") "ocamlc"
     in
     if Sys.file_exists candidate then candidate else "ocamlc")

let fresh_root () =
  let root = Filename.temp_file "pftk_race" "" in
  Sys.remove root;
  mkdir_p root;
  root

(* Write each (relative path, contents) fixture under [root] and compile
   it from [root] so the recorded source file stays workspace-relative
   ("lib/core/fixture.ml"), which is what the zone rules key on. *)
let compile_fixtures root fixtures =
  List.iter
    (fun (rel, contents) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      let oc = open_out path in
      output_string oc contents;
      close_out oc)
    fixtures;
  let cwd = Sys.getcwd () in
  Sys.chdir root;
  let failed =
    List.exists
      (fun (rel, _) ->
        Sys.command
          (Filename.quote_command (Lazy.force ocamlc)
             [ "-bin-annot"; "-w"; "-a"; "-c"; rel ])
        <> 0)
      fixtures
  in
  Sys.chdir cwd;
  if failed then Alcotest.fail "fixture did not compile"

let analyze fixtures =
  let root = fresh_root () in
  compile_fixtures root fixtures;
  Race.analyze_paths [ root ]

(* A stand-in for the real fan-out API: the trigger test keys on the
   dotted path [Pftk_parallel.map] / [Pool.submit] at the call site, so
   a local module of the same name exercises the rule without linking
   the parallel library into the fixture. *)
let parallel_stub =
  "module Pftk_parallel = struct\n\
  \  let map ~jobs f xs =\n\
  \    ignore jobs;\n\
  \    List.map f xs\n\
   end\n"

(* --- R1: mutable capture in a parallel closure ----------------------------- *)

let test_r1_mutable_capture () =
  let findings =
    analyze
      [
        ( "lib/experiments/r1_trigger.ml",
          parallel_stub
          ^ "let hits = ref 0\n\
             let burst xs =\n\
            \  Pftk_parallel.map ~jobs:2 (fun x -> incr hits; x + !hits) xs\n"
        );
      ]
  in
  check_rules "ref captured by fan-out closure" [ "R1" ] findings;
  match findings with
  | [ f ] ->
      Alcotest.(check bool)
        "finding names the captured ident" true
        (String.length f.Lint.message > 0
        && f.Lint.line > 0
        && Filename.basename f.Lint.file = "r1_trigger.ml")
  | _ -> Alcotest.fail "expected a single finding"

let test_r1_pool_submit () =
  check_rules "array captured by Pool.submit task" [ "R1" ]
    (analyze
       [
         ( "lib/experiments/r1_pool.ml",
           "module Pool = struct\n\
           \  let submit _pool task = task ()\n\
            end\n\
            let cells = Array.make 4 0\n\
            let go pool = Pool.submit pool (fun () -> cells.(0) <- 1)\n" );
       ])

let test_r1_allow () =
  check_rules "scoped [@lint.allow \"R1\"] suppresses" []
    (analyze
       [
         ( "lib/experiments/r1_allowed.ml",
           parallel_stub
           ^ "let hits = ref 0\n\
              let burst xs =\n\
             \  Pftk_parallel.map ~jobs:2\n\
             \    ((fun x -> incr hits; x + !hits) [@lint.allow \"R1\"])\n\
             \    xs\n" );
       ])

let test_r1_clean () =
  check_rules "immutable captures pass" []
    (analyze
       [
         ( "lib/experiments/r1_clean.ml",
           parallel_stub
           ^ "let scale = 3\n\
              let burst xs = Pftk_parallel.map ~jobs:2 (fun x -> x * scale) xs\n"
         );
       ])

(* --- R2: exported mutable values ------------------------------------------- *)

let test_r2_mutable_export () =
  check_rules "val cache : int array in a lib interface" [ "R2" ]
    (analyze [ ("lib/core/r2_trigger.mli", "val cache : int array\n") ]);
  check_rules "record with a mutable field, transitively" [ "R2" ]
    (analyze
       [
         ( "lib/netsim/r2_record.mli",
           "type t = { mutable n : int }\nval shared : t\n" );
       ]);
  check_rules "immutable exports pass" []
    (analyze
       [
         ( "lib/core/r2_clean.mli",
           "val x : int\nval f : float -> float\nval xs : float list\n" );
       ])

(* --- R3: typed polymorphic-comparison ban ---------------------------------- *)

let test_r3_poly_compare () =
  check_rules "compare on floats in lib/core" [ "R3" ]
    (analyze
       [
         ( "lib/core/r3_trigger.ml",
           "let order (a : float) (b : float) = compare a b\n" );
       ]);
  check_rules "an alias of (=) is caught at the binding" [ "R3" ]
    (analyze
       [
         ("lib/core/r3_alias.ml", "let eq : float -> float -> bool = ( = )\n");
       ]);
  check_rules "Float.compare is the blessed spelling" []
    (analyze
       [
         ( "lib/core/r3_clean.ml",
           "let order (a : float) b = Float.compare a b\n\
            let lt (a : float) b = a < b\n" );
       ]);
  check_rules "poly compare allowed outside lib/core and lib/stats" []
    (analyze
       [ ("lib/tcp/r3_zone.ml", "let order (a : float) b = compare a b\n") ])

(* --- R4: domain checks at lib/core entry points ----------------------------- *)

let test_r4_unguarded () =
  check_rules "rtt and p both unguarded" [ "R4"; "R4" ]
    (analyze
       [
         ( "lib/core/r4_trigger.ml",
           "let send_rate ~rtt p = 1. /. (rtt *. sqrt p)\n" );
       ])

let test_r4_guarded () =
  check_rules "check_p call plus raising if satisfy the rule" []
    (analyze
       [
         ( "lib/core/r4_guarded.ml",
           "let check_p p =\n\
           \  if p <= 0. || p >= 1. then invalid_arg \"p outside (0, 1)\"\n\
            let send_rate ~rtt p =\n\
           \  check_p p;\n\
           \  if not (rtt > 0.) then invalid_arg \"rtt must be positive\";\n\
           \  1. /. (rtt *. sqrt p)\n" );
       ])

(* The validated-input convention: an [_unchecked]-suffixed export is
   exempt (callers — the batch engine — hoist the scan), while the same
   body under a plain name in the same unit is still flagged. *)
let test_r4_unchecked_suffix () =
  check_rules "only the unsuffixed binding is flagged" [ "R4"; "R4" ]
    (analyze
       [
         ( "lib/core/r4_unchecked.ml",
           "let send_rate_unchecked ~rtt p = 1. /. (rtt *. sqrt p)\n\
            let send_rate ~rtt p = 1. /. (rtt *. sqrt p)\n" );
       ])

let test_r4_zone_and_allow () =
  check_rules "same signature outside lib/core passes" []
    (analyze
       [
         ( "lib/stats/r4_zone.ml",
           "let send_rate ~rtt p = 1. /. (rtt *. sqrt p)\n" );
       ]);
  check_rules "binding-scoped allow suppresses" []
    (analyze
       [
         ( "lib/core/r4_allowed.ml",
           "let send_rate ~rtt p = 1. /. (rtt *. sqrt p)\n\
            [@@lint.allow \"R4\"]\n" );
       ])

(* --- cmt discovery ----------------------------------------------------------- *)

let test_cmt_files () =
  let root = fresh_root () in
  Alcotest.(check (list string)) "no artifacts, no files" []
    (Race.cmt_files [ root ]);
  compile_fixtures root [ ("lib/core/disc.ml", "let x = 1\n") ];
  Alcotest.(check int)
    "one compiled fixture, one cmt" 1
    (List.length (Race.cmt_files [ root ]))

(* --- CLI exit codes ----------------------------------------------------------- *)

(* The test binary runs from _build/default/test, so the CLI (a declared
   dune dependency) sits next door under tools/lint. *)
let cli = Filename.concat ".." (Filename.concat "tools/lint" "pftk_race.exe")

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    i + n <= h && (String.equal (String.sub hay i n) needle || go (i + 1))
  in
  go 0

let run_cli args =
  let out = Filename.temp_file "pftk_race_cli" ".out" in
  let status =
    Sys.command (Filename.quote_command cli args ~stdout:out ~stderr:out)
  in
  let ic = open_in out in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (status, text)

let test_cli () =
  if not (Sys.file_exists cli) then
    Alcotest.fail "pftk_race.exe not found next to the test binary";
  let dirty = fresh_root () in
  compile_fixtures dirty
    [
      ( "lib/experiments/cli_fixture.ml",
        parallel_stub
        ^ "let hits = ref 0\n\
           let burst xs = Pftk_parallel.map ~jobs:2 (fun _ -> incr hits) xs\n"
      );
    ];
  let status, text = run_cli [ dirty ] in
  Alcotest.(check int) "dirty tree exits 1" 1 status;
  Alcotest.(check bool) "report carries the rule tag" true
    (contains text "[R1]");
  let status_json, json = run_cli [ "--format=json"; dirty ] in
  Alcotest.(check int) "json format keeps the exit code" 1 status_json;
  Alcotest.(check bool) "json mentions the rule" true
    (contains json {|"rule":"R1"|});
  let clean = fresh_root () in
  compile_fixtures clean [ ("lib/core/cli_clean.ml", "let x = 1\n") ];
  let status_clean, _ = run_cli [ clean ] in
  Alcotest.(check int) "clean tree exits 0" 0 status_clean

let () =
  Alcotest.run "pftk_race"
    [
      ( "rules",
        [
          case "R1 mutable capture" test_r1_mutable_capture;
          case "R1 Pool.submit" test_r1_pool_submit;
          case "R1 lint.allow" test_r1_allow;
          case "R1 clean closure" test_r1_clean;
          case "R2 exported mutable state" test_r2_mutable_export;
          case "R3 typed poly compare" test_r3_poly_compare;
          case "R4 unguarded entry point" test_r4_unguarded;
          case "R4 guarded entry point" test_r4_guarded;
          case "R4 _unchecked exemption" test_r4_unchecked_suffix;
          case "R4 zone and allow" test_r4_zone_and_allow;
          case "cmt discovery" test_cmt_files;
        ] );
      ("cli", [ case "exit codes and formats" test_cli ]);
    ]
