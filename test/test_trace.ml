(* Tests for pftk_trace: the recorder, the ground-truth and inference
   analyzers (including cross-validation on a real packet-level trace), the
   Karn RTT matcher, and interval binning. *)

module Recorder = Pftk_trace.Recorder
module Event = Pftk_trace.Event
module Analyzer = Pftk_trace.Analyzer
module Intervals = Pftk_trace.Intervals

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.equal (String.sub s i n) sub || scan (i + 1)) in
  scan 0

let send ?(rexmit = false) seq =
  Event.Segment_sent { seq; retransmission = rexmit; cwnd = 10.; flight = 5 }

let ack n = Event.Ack_received { ack = n }

let recorder_of events =
  let r = Recorder.create () in
  List.iter (fun (time, kind) -> Recorder.record r ~time kind) events;
  r

(* --- Recorder -------------------------------------------------------------- *)

let test_recorder_basic () =
  let r = recorder_of [ (0., send 0); (0.1, ack 1); (0.2, send 1) ] in
  Alcotest.(check int) "length" 3 (Recorder.length r);
  Alcotest.(check int) "packets sent" 2 (Recorder.packets_sent r);
  check_float "duration" 0.2 (Recorder.duration r)

let test_recorder_time_monotonic () =
  let r = Recorder.create () in
  Recorder.record r ~time:1. (send 0);
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Recorder.record: time went backwards") (fun () ->
      Recorder.record r ~time:0.5 (send 1))

let test_recorder_between () =
  let r =
    recorder_of [ (0., send 0); (1., send 1); (2., send 2); (3., send 3) ]
  in
  let slice = Recorder.between r ~start:1. ~stop:3. in
  Alcotest.(check int) "half-open window" 2 (Array.length slice)

let test_recorder_growth () =
  (* Exceed the initial buffer to exercise resizing. *)
  let r = Recorder.create () in
  for i = 0 to 4999 do
    Recorder.record r ~time:(float_of_int i) (send i)
  done;
  Alcotest.(check int) "5000 events" 5000 (Recorder.length r);
  Alcotest.(check int) "all sends" 5000 (Recorder.packets_sent r)

let test_recorder_fold_iter () =
  let r = recorder_of [ (0., send 0); (1., ack 1) ] in
  let count = Recorder.fold (fun n _ -> n + 1) 0 r in
  Alcotest.(check int) "fold visits all" 2 count

(* --- Ground-truth analyzer ---------------------------------------------------- *)

let test_ground_truth_td () =
  let r =
    recorder_of
      [
        (0., send 0);
        (1., Event.Fast_retransmit_triggered { seq = 0 });
        (2., Event.Fast_retransmit_triggered { seq = 5 });
      ]
  in
  match Analyzer.ground_truth_indications (Recorder.events r) with
  | [ Analyzer.Td { at = 1. }; Analyzer.Td { at = 2. } ] -> ()
  | other -> Alcotest.failf "expected two TDs, got %d" (List.length other)

let test_ground_truth_to_sequence () =
  (* Three timer firings with increasing backoff = one sequence of 3. *)
  let r =
    recorder_of
      [
        (0., send 0);
        (1., Event.Timer_fired { backoff = 1; rto = 2. });
        (3., Event.Timer_fired { backoff = 2; rto = 4. });
        (7., Event.Timer_fired { backoff = 3; rto = 8. });
      ]
  in
  match Analyzer.ground_truth_indications (Recorder.events r) with
  | [ Analyzer.To { at = 1.; timeouts = 3; first_timer = 2. } ] -> ()
  | other -> Alcotest.failf "expected one sequence of 3, got %d" (List.length other)

let test_ground_truth_two_sequences () =
  (* A backoff reset (fresh backoff = 1) starts a new sequence. *)
  let r =
    recorder_of
      [
        (1., Event.Timer_fired { backoff = 1; rto = 2. });
        (3., Event.Timer_fired { backoff = 2; rto = 4. });
        (10., Event.Timer_fired { backoff = 1; rto = 2. });
      ]
  in
  match Analyzer.ground_truth_indications (Recorder.events r) with
  | [ Analyzer.To { timeouts = 2; _ }; Analyzer.To { timeouts = 1; _ } ] -> ()
  | other -> Alcotest.failf "expected [2;1], got %d items" (List.length other)

let test_ground_truth_td_closes_sequence () =
  let r =
    recorder_of
      [
        (1., Event.Timer_fired { backoff = 1; rto = 2. });
        (5., Event.Fast_retransmit_triggered { seq = 3 });
      ]
  in
  match Analyzer.ground_truth_indications (Recorder.events r) with
  | [ Analyzer.To { timeouts = 1; _ }; Analyzer.Td _ ] -> ()
  | other -> Alcotest.failf "expected TO then TD, got %d items" (List.length other)

(* --- Inference analyzer --------------------------------------------------------- *)

let test_infer_td () =
  (* Three duplicate ACKs for 5, then a retransmission of 5: a TD. *)
  let events =
    [
      (0.0, send 5);
      (0.1, ack 5);
      (0.2, ack 5);
      (0.3, ack 5);
      (0.35, ack 5);
      (0.4, send ~rexmit:true 5);
    ]
  in
  (* First ack sets the baseline; three more make three duplicates. *)
  match Analyzer.infer_indications (Recorder.events (recorder_of events)) with
  | [ Analyzer.Td { at = 0.4 } ] -> ()
  | other -> Alcotest.failf "expected one TD, got %d items" (List.length other)

let test_infer_timeout () =
  (* A retransmission after a long idle gap is a timeout. *)
  let events = [ (0.0, send 7); (0.1, ack 7); (2.0, send ~rexmit:true 7) ] in
  match Analyzer.infer_indications (Recorder.events (recorder_of events)) with
  | [ Analyzer.To { timeouts = 1; first_timer; _ } ] ->
      check_float "gap measured" 1.9 first_timer
  | other -> Alcotest.failf "expected one TO, got %d items" (List.length other)

let test_infer_backoff_chain () =
  (* Repeated gap-separated retransmissions without progress chain into one
     sequence; an advancing ACK closes it. *)
  let events =
    [
      (0.0, send 3);
      (0.1, ack 3);
      (2.0, send ~rexmit:true 3);
      (6.0, send ~rexmit:true 3);
      (14.0, send ~rexmit:true 3);
      (14.2, ack 9);
    ]
  in
  match Analyzer.infer_indications (Recorder.events (recorder_of events)) with
  | [ Analyzer.To { timeouts = 3; _ } ] -> ()
  | other -> Alcotest.failf "expected a 3-timeout sequence, got %d items"
      (List.length other)

let test_infer_recovery_burst_not_counted () =
  (* Back-to-back retransmissions right after a timeout (go-back-N burst)
     are not extra timeouts. *)
  let events =
    [
      (0.0, send 3);
      (0.1, ack 3);
      (2.0, send ~rexmit:true 3);
      (2.01, send ~rexmit:true 4);
      (2.02, send ~rexmit:true 5);
    ]
  in
  match Analyzer.infer_indications (Recorder.events (recorder_of events)) with
  | [ Analyzer.To { timeouts = 1; _ } ] -> ()
  | other -> Alcotest.failf "expected a single TO, got %d items" (List.length other)

let test_infer_new_data_resets_gap () =
  (* Ordinary transmissions refresh the activity clock, so a retransmission
     shortly after them is not mistaken for a timeout. *)
  let events =
    [
      (0.0, send 3);
      (1.9, send 4);
      (2.0, send ~rexmit:true 3);
    ]
  in
  Alcotest.(check int) "no indications" 0
    (List.length
       (Analyzer.infer_indications (Recorder.events (recorder_of events))))

(* --- Karn RTT matching ------------------------------------------------------------ *)

let test_karn_basic () =
  let events = [ (0.0, send 0); (0.3, ack 1) ] in
  Alcotest.(check (array (float 1e-9))) "one sample" [| 0.3 |]
    (Analyzer.karn_rtt_samples (Recorder.events (recorder_of events)))

let test_karn_skips_retransmitted () =
  let events =
    [
      (0.0, send 0);
      (1.0, send ~rexmit:true 0);
      (1.3, ack 1);
      (1.4, send 1);
      (1.7, ack 2);
    ]
  in
  (* Segment 0 was retransmitted: no sample.  Segment 1 is clean: 0.3 s. *)
  Alcotest.(check (array (float 1e-9))) "karn's rule" [| 0.3 |]
    (Analyzer.karn_rtt_samples (Recorder.events (recorder_of events)))

let test_karn_cumulative_ack_covers_many () =
  let events =
    [ (0.0, send 0); (0.05, send 1); (0.1, send 2); (0.4, ack 3) ] in
  (* All three clean segments are sampled from the single cumulative ACK. *)
  Alcotest.(check int) "three samples" 3
    (Array.length (Analyzer.karn_rtt_samples (Recorder.events (recorder_of events))))

(* --- Summaries --------------------------------------------------------------------- *)

let test_summarize_ground_truth () =
  let r =
    recorder_of
      [
        (0., send 0);
        (0.1, send 1);
        (0.2, Event.Rtt_sample { sample = 0.2; srtt = 0.2; rto = 1. });
        (1., Event.Timer_fired { backoff = 1; rto = 2. });
        (3., Event.Timer_fired { backoff = 2; rto = 4. });
        (10., Event.Fast_retransmit_triggered { seq = 1 });
        (10.5, send 2);
      ]
  in
  let s = Analyzer.summarize r in
  Alcotest.(check int) "packets" 3 s.Analyzer.packets_sent;
  Alcotest.(check int) "indications" 2 s.Analyzer.loss_indications;
  Alcotest.(check int) "one td" 1 s.Analyzer.td_count;
  Alcotest.(check (array int)) "one double timeout" [| 0; 1; 0; 0; 0; 0 |]
    s.Analyzer.to_by_backoff;
  check_float "avg rtt from samples" 0.2 s.Analyzer.avg_rtt;
  check_float "avg t0 from first timers" 2. s.Analyzer.avg_t0;
  check_float ~eps:1e-6 "observed p" (2. /. 3.) s.Analyzer.observed_p

let test_summarize_empty () =
  let s = Analyzer.summarize (Recorder.create ()) in
  Alcotest.(check int) "no packets" 0 s.Analyzer.packets_sent;
  check_float "p zero" 0. s.Analyzer.observed_p

let test_inference_matches_ground_truth_on_real_trace () =
  (* Cross-validate the two analyzers on a packet-level Reno trace, the way
     the paper validated its programs against tcptrace/ns. *)
  let rng = Pftk_stats.Rng.create ~seed:21L () in
  let scenario =
    {
      Pftk_tcp.Connection.default_scenario with
      Pftk_tcp.Connection.data_loss =
        Some (Pftk_loss.Loss_process.bernoulli rng ~p:0.02);
    }
  in
  let result = Pftk_tcp.Connection.run ~seed:21L ~duration:600. scenario in
  let truth = Analyzer.summarize ~mode:`Ground_truth result.Pftk_tcp.Connection.recorder in
  let inferred = Analyzer.summarize ~mode:`Infer result.Pftk_tcp.Connection.recorder in
  let rel a b = Float.abs (a -. b) /. Float.max 1. b in
  Alcotest.(check bool) "indication count within 25%" true
    (rel
       (float_of_int inferred.Analyzer.loss_indications)
       (float_of_int truth.Analyzer.loss_indications)
    < 0.25);
  Alcotest.(check bool) "td count within 25%" true
    (rel (float_of_int inferred.Analyzer.td_count)
       (float_of_int truth.Analyzer.td_count)
    < 0.25);
  Alcotest.(check bool) "rtt within 30%" true
    (Float.abs (inferred.Analyzer.avg_rtt -. truth.Analyzer.avg_rtt)
     /. truth.Analyzer.avg_rtt
    < 0.3)

(* --- Intervals ----------------------------------------------------------------------- *)

let test_intervals_binning () =
  let r =
    recorder_of
      [
        (10., send 0);
        (20., send 1);
        (110., send 2);
        (150., Event.Timer_fired { backoff = 1; rto = 2. });
        (210., send 3);
        (250., Event.Fast_retransmit_triggered { seq = 3 });
        (305., send 4);
      ]
  in
  let bins = Intervals.split ~width:100. r in
  Alcotest.(check int) "three full bins" 3 (List.length bins);
  let b0 = List.nth bins 0 and b1 = List.nth bins 1 and b2 = List.nth bins 2 in
  Alcotest.(check int) "bin0 packets" 2 b0.Intervals.packets_sent;
  Alcotest.(check bool) "bin0 quiet" true (b0.Intervals.classification = Intervals.Quiet);
  Alcotest.(check int) "bin1 indications" 1 b1.Intervals.loss_indications;
  Alcotest.(check bool) "bin1 is T0" true (b1.Intervals.classification = Intervals.T0);
  Alcotest.(check bool) "bin2 is TD" true
    (b2.Intervals.classification = Intervals.Td_only);
  check_float "bin1 observed p" 1. b1.Intervals.observed_p

let test_intervals_classification_ladder () =
  let mk backoffs =
    let time = ref 0. in
    let events =
      List.concat_map
        (fun depth ->
          List.init depth (fun i ->
              time := !time +. 1.;
              (!time, Event.Timer_fired { backoff = i + 1; rto = 2. })))
        backoffs
    in
    (* A closing event past t = 100 completes the first bin. *)
    let r = recorder_of (((0.1, send 0) :: events) @ [ (100.5, send 999) ]) in
    (List.hd (Intervals.split ~width:100. r)).Intervals.classification
  in
  Alcotest.(check bool) "single timeout -> T0" true (mk [ 1 ] = Intervals.T0);
  Alcotest.(check bool) "double timeout -> T1" true (mk [ 2 ] = Intervals.T1);
  Alcotest.(check bool) "triple timeout -> T2+" true (mk [ 3 ] = Intervals.T2_plus);
  Alcotest.(check bool) "deepest wins" true (mk [ 1; 3; 1 ] = Intervals.T2_plus)

let test_intervals_validation () =
  Alcotest.check_raises "bad width"
    (Invalid_argument "Intervals.split: width must be positive") (fun () ->
      ignore (Intervals.split ~width:0. (Recorder.create ())))

let test_classification_labels () =
  Alcotest.(check string) "TD" "TD" (Intervals.classification_label Intervals.Td_only);
  Alcotest.(check string) "T2+" "T2+" (Intervals.classification_label Intervals.T2_plus)

(* --- Timeline ------------------------------------------------------------------------ *)

module Timeline = Pftk_trace.Timeline

let test_timeline_sequence () =
  let r =
    recorder_of
      [ (0., send 0); (1., send 1); (2., send ~rexmit:true 0); (3., send 2) ]
  in
  let firsts, rexmits = Timeline.sequence_numbers r in
  Alcotest.(check int) "three first transmissions" 3 (List.length firsts);
  Alcotest.(check int) "one retransmission" 1 (List.length rexmits);
  match rexmits with
  | [ { Timeline.time; value } ] ->
      check_float "rexmit time" 2. time;
      check_float "rexmit seq" 0. value
  | _ -> Alcotest.fail "unexpected rexmit series"

let test_timeline_ack_progress () =
  let r = recorder_of [ (0., send 0); (0.5, ack 1); (1., ack 3) ] in
  match Timeline.ack_progress r with
  | [ a; b ] ->
      check_float "first ack" 1. a.Timeline.value;
      check_float "second ack" 3. b.Timeline.value
  | _ -> Alcotest.fail "expected two points"

let test_timeline_goodput () =
  (* 4 sends in [0, 10), 2 in [10, 20): rates 0.4 and 0.2 pkt/s. *)
  let r =
    recorder_of
      [
        (1., send 0); (2., send 1); (3., send 2); (4., send 3);
        (12., send 4); (13., send 5); (20.5, send 6);
      ]
  in
  match Timeline.goodput ~window:10. r with
  | [ a; b ] ->
      check_float "bin 1 rate" 0.4 a.Timeline.value;
      check_float "bin 2 rate" 0.2 b.Timeline.value
  | pts -> Alcotest.failf "expected 2 bins, got %d" (List.length pts)

let test_timeline_cwnd_and_rtt () =
  let r =
    recorder_of
      [
        (0., send 0);
        (0.3, Event.Rtt_sample { sample = 0.3; srtt = 0.3; rto = 1. });
      ]
  in
  Alcotest.(check int) "cwnd series" 1 (List.length (Timeline.congestion_window r));
  match Timeline.rtt_series r with
  | [ { Timeline.value; _ } ] -> check_float "rtt point" 0.3 value
  | _ -> Alcotest.fail "expected one rtt point"

let test_timeline_summary () =
  let r = recorder_of [ (0., send 0); (5., send ~rexmit:true 0) ] in
  let line = Timeline.summary_line r in
  Alcotest.(check bool) "mentions retransmissions" true
    (String.length line > 0)

(* --- Degenerate summaries --------------------------------------------------
   Pinned behaviour on inputs the estimators must not choke on: zero
   duration and traces without RTT samples yield zeros, never NaN/inf. *)

let all_finite s =
  List.for_all Float.is_finite
    [
      s.Analyzer.duration;
      s.Analyzer.observed_p;
      s.Analyzer.avg_rtt;
      s.Analyzer.avg_t0;
      s.Analyzer.send_rate;
    ]

let test_summarize_zero_duration () =
  let s = Analyzer.summarize (recorder_of [ (0., send 0) ]) in
  check_float ~eps:0. "duration" 0. s.Analyzer.duration;
  Alcotest.(check int) "one packet" 1 s.Analyzer.packets_sent;
  check_float ~eps:0. "rate is 0, not NaN" 0. s.Analyzer.send_rate;
  Alcotest.(check bool) "all fields finite" true (all_finite s)

let test_summarize_no_rtt_samples () =
  let s =
    Analyzer.summarize
      (recorder_of
         [
           (0., send 0);
           (1., Event.Timer_fired { backoff = 1; rto = 2. });
           (3., send ~rexmit:true 0);
         ])
  in
  check_float ~eps:0. "avg rtt zero" 0. s.Analyzer.avg_rtt;
  Alcotest.(check bool) "all fields finite" true (all_finite s);
  Alcotest.(check int) "timeout still counted" 1 s.Analyzer.loss_indications

(* --- Serialization ----------------------------------------------------------
   Write-then-read identity over randomized streams covering all seven
   event kinds.  Exact comparison: the %h encoding must round-trip floats
   bit-for-bit. *)

let random_kind rng i =
  let module Rng = Pftk_stats.Rng in
  match Rng.int rng 7 with
  | 0 ->
      Event.Segment_sent
        {
          seq = i;
          retransmission = Rng.bool rng;
          cwnd = Rng.float_range rng 1. 100.;
          flight = Rng.int rng 64;
        }
  | 1 -> Event.Ack_received { ack = Rng.int rng 100_000 }
  | 2 ->
      Event.Timer_fired
        { backoff = 1 + Rng.int rng 6; rto = Rng.exponential rng 2. }
  | 3 -> Event.Fast_retransmit_triggered { seq = Rng.int rng 100_000 }
  | 4 ->
      let sample = Rng.float_range rng 1e-4 3. in
      Event.Rtt_sample
        { sample; srtt = sample *. 0.9; rto = Rng.exponential rng 1. }
  | 5 -> Event.Round_started { index = i; window = Rng.float_range rng 1. 50. }
  | _ -> Event.Connection_closed

let random_trace ~seed ~n =
  let rng = Pftk_stats.Rng.create ~seed () in
  let time = ref 0. in
  List.init n (fun i ->
      time := !time +. Pftk_stats.Rng.exponential rng 10.;
      { Event.time = !time; kind = random_kind rng i })

let kind_tag = function
  | Event.Segment_sent _ -> 0
  | Event.Ack_received _ -> 1
  | Event.Timer_fired _ -> 2
  | Event.Fast_retransmit_triggered _ -> 3
  | Event.Rtt_sample _ -> 4
  | Event.Round_started _ -> 5
  | Event.Connection_closed -> 6

let event =
  Alcotest.testable
    (fun ppf e -> Format.pp_print_string ppf (Pftk_trace.Serialize.line_of_event e))
    ( = )

let test_serialize_line_roundtrip () =
  let events = random_trace ~seed:123L ~n:500 in
  let tags = List.sort_uniq compare (List.map (fun e -> kind_tag e.Event.kind) events) in
  Alcotest.(check (list int)) "all seven kinds exercised" [ 0; 1; 2; 3; 4; 5; 6 ] tags;
  List.iter
    (fun e ->
      match Pftk_trace.Serialize.(event_of_line (line_of_event e)) with
      | Some e' -> Alcotest.check event "line roundtrip" e e'
      | None -> Alcotest.fail "event encoded as a comment/blank line")
    events

let test_serialize_file_roundtrip () =
  let r = Recorder.create () in
  List.iter
    (fun { Event.time; kind } -> Recorder.record r ~time kind)
    (random_trace ~seed:321L ~n:300);
  let path = Filename.temp_file "pftk_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Pftk_trace.Serialize.save path r;
      let r' = Pftk_trace.Serialize.load path in
      let events_of rec_ = Array.to_list (Recorder.events rec_) in
      Alcotest.(check (list event)) "save/load identity" (events_of r)
        (events_of r');
      (* Streaming read sees the same events as the batch read. *)
      let streamed = ref [] in
      Pftk_trace.Serialize.iter_file path (fun e -> streamed := e :: !streamed);
      Alcotest.(check (list event)) "iter_file identity" (events_of r)
        (List.rev !streamed))

let test_serialize_rejects_malformed () =
  Alcotest.(check bool) "comment skipped" true
    (Pftk_trace.Serialize.event_of_line "# comment" = None);
  Alcotest.(check bool) "blank skipped" true
    (Pftk_trace.Serialize.event_of_line "   " = None);
  match Pftk_trace.Serialize.event_of_line "0.5 bogus 1 2 3" with
  | exception Pftk_trace.Serialize.Error { reason; _ } ->
      Alcotest.(check bool) "reason carries the line" true
        (contains ~sub:"0.5 bogus 1 2 3" reason)
  | _ -> Alcotest.fail "malformed line accepted"

let with_trace_file content k =
  let path = Filename.temp_file "pftk_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      k path)

let test_serialize_error_locates_line () =
  (* Line 1 is a comment, lines 2-3 parse, line 4 is garbage. *)
  with_trace_file "# header\n0 send 0 false 0x1p+1 1\n0x1p-1 ack 1\nwhat is this\n"
    (fun path ->
      match Pftk_trace.Serialize.load path with
      | _ -> Alcotest.fail "corrupt file accepted"
      | exception Pftk_trace.Serialize.Error { file; line; reason } ->
          Alcotest.(check (option string)) "file" (Some path) file;
          Alcotest.(check int) "line" 4 line;
          Alcotest.(check bool) "reason carries content" true
            (contains ~sub:"what is this" reason))

let test_serialize_error_backwards_time () =
  with_trace_file "0x1p+1 ack 1\n0x1p-2 ack 2\n" (fun path ->
      match Pftk_trace.Serialize.load path with
      | _ -> Alcotest.fail "backwards time accepted"
      | exception Pftk_trace.Serialize.Error ({ line; reason; _ } as e) ->
          Alcotest.(check int) "line" 2 line;
          (* Times are spelled in decimal, not %h hex floats. *)
          Alcotest.(check bool) "human-readable times" true
            (contains ~sub:"0.25 s after 2 s" reason);
          Alcotest.(check bool) "message locates the file" true
            (contains ~sub:":2: " (Pftk_trace.Serialize.error_message e)))

let () =
  Alcotest.run "pftk_trace"
    [
      ( "recorder",
        [
          case "basic" test_recorder_basic;
          case "monotonic time" test_recorder_time_monotonic;
          case "between" test_recorder_between;
          case "growth" test_recorder_growth;
          case "fold/iter" test_recorder_fold_iter;
        ] );
      ( "ground-truth",
        [
          case "TDs" test_ground_truth_td;
          case "TO sequence" test_ground_truth_to_sequence;
          case "two sequences" test_ground_truth_two_sequences;
          case "TD closes sequence" test_ground_truth_td_closes_sequence;
        ] );
      ( "inference",
        [
          case "TD from dup acks" test_infer_td;
          case "TO from idle gap" test_infer_timeout;
          case "backoff chain" test_infer_backoff_chain;
          case "recovery burst ignored" test_infer_recovery_burst_not_counted;
          case "activity resets gap" test_infer_new_data_resets_gap;
        ] );
      ( "karn",
        [
          case "basic sample" test_karn_basic;
          case "skips retransmitted" test_karn_skips_retransmitted;
          case "cumulative ack" test_karn_cumulative_ack_covers_many;
        ] );
      ( "summary",
        [
          case "ground truth" test_summarize_ground_truth;
          case "empty trace" test_summarize_empty;
          case "zero duration" test_summarize_zero_duration;
          case "no rtt samples" test_summarize_no_rtt_samples;
          slow_case "inference vs ground truth" test_inference_matches_ground_truth_on_real_trace;
        ] );
      ( "serialize",
        [
          case "line roundtrip 500 random events" test_serialize_line_roundtrip;
          case "file roundtrip" test_serialize_file_roundtrip;
          case "rejects malformed" test_serialize_rejects_malformed;
          case "error locates line" test_serialize_error_locates_line;
          case "backwards time readable" test_serialize_error_backwards_time;
        ] );
      ( "timeline",
        [
          case "sequence numbers" test_timeline_sequence;
          case "ack progress" test_timeline_ack_progress;
          case "goodput bins" test_timeline_goodput;
          case "cwnd and rtt" test_timeline_cwnd_and_rtt;
          case "summary line" test_timeline_summary;
        ] );
      ( "intervals",
        [
          case "binning" test_intervals_binning;
          case "classification ladder" test_intervals_classification_ladder;
          case "validation" test_intervals_validation;
          case "labels" test_classification_labels;
        ] );
    ]
