(* Tests for the pftk-flow interprocedural contract analyzer
   (tools/lint): fixtures are compiled to .cmt/.cmti with the
   toolchain's own ocamlc (-bin-annot) in a throwaway root laid out
   like the workspace, then fed to [Pftk_flow_engine.analyze_paths].
   One triggering fixture per rule F1-F4 (each proving a nonzero
   finding count), guard/allow/clean variants, an end-to-end exit-code
   check of the pftk_flow CLI, and the JSON/SARIF schema-shape test
   shared by all four analyzer CLIs. *)

module Flow = Pftk_flow_engine
module F = Pftk_findings

let case name f = Alcotest.test_case name `Quick f
let rules fs = List.map (fun (f : F.finding) -> f.F.rule) fs

let check_rules msg expected fs =
  Alcotest.(check (list string)) msg expected (rules fs)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    Sys.mkdir d 0o755
  end

(* The compiler that built us: Config.standard_library is
   <prefix>/lib/ocaml, so ocamlc lives two levels up in <prefix>/bin;
   fall back to PATH lookup for unusual layouts. *)
let ocamlc =
  lazy
    (let prefix =
       Filename.dirname (Filename.dirname Config.standard_library)
     in
     let candidate =
       Filename.concat (Filename.concat prefix "bin") "ocamlc"
     in
     if Sys.file_exists candidate then candidate else "ocamlc")

let fresh_root () =
  let root = Filename.temp_file "pftk_flow" "" in
  Sys.remove root;
  mkdir_p root;
  root

(* Write each (relative path, contents) fixture under [root] and compile
   it from [root] so the recorded source file stays workspace-relative,
   which is what F4's lib/ interface scoping keys on.  List .mli
   fixtures before their .ml so interfaces compile first. *)
let compile_fixtures root fixtures =
  List.iter
    (fun (rel, contents) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      let oc = open_out path in
      output_string oc contents;
      close_out oc)
    fixtures;
  let cwd = Sys.getcwd () in
  Sys.chdir root;
  let failed =
    List.exists
      (fun (rel, _) ->
        Sys.command
          (Filename.quote_command (Lazy.force ocamlc)
             [
               "-bin-annot"; "-w"; "-a"; "-I"; Filename.dirname rel; "-c"; rel;
             ])
        <> 0)
      fixtures
  in
  Sys.chdir cwd;
  if failed then Alcotest.fail "fixture did not compile"

let analyze fixtures =
  let root = fresh_root () in
  compile_fixtures root fixtures;
  Flow.analyze_paths [ root ]

(* --- F1: guard domination of _unchecked call sites -------------------------- *)

let test_f1_undominated () =
  let findings =
    analyze
      [
        ( "lib/core/f1_trigger.ml",
          "let rate_unchecked p = 1. /. sqrt p\n\
           let rate p = rate_unchecked p\n" );
      ]
  in
  check_rules "bare call to *_unchecked flagged" [ "F1" ] findings;
  match findings with
  | [ f ] ->
      Alcotest.(check bool)
        "finding names the callee and lands in the fixture" true
        (F.contains_sub f.F.message "rate_unchecked"
        && f.F.line > 0
        && Filename.basename f.F.file = "f1_trigger.ml")
  | _ -> Alcotest.fail "expected a single finding"

let test_f1_guard_dominates () =
  check_rules "a check_* call before the call site satisfies F1" []
    (analyze
       [
         ( "lib/core/f1_guarded.ml",
           "let check_p p =\n\
           \  if p <= 0. || p >= 1. then invalid_arg \"p outside (0, 1)\"\n\
            let rate_unchecked p = 1. /. sqrt p\n\
            let rate p =\n\
           \  check_p p;\n\
           \  rate_unchecked p\n" );
       ]);
  check_rules "a raising conditional prefix satisfies F1" []
    (analyze
       [
         ( "lib/core/f1_raising_if.ml",
           "let rate_unchecked p = 1. /. sqrt p\n\
            let rate p =\n\
           \  if not (p > 0.) then invalid_arg \"p must be positive\";\n\
           \  rate_unchecked p\n" );
       ])

let test_f1_unchecked_caller_exempt () =
  check_rules "an *_unchecked caller vouches for its own callers" []
    (analyze
       [
         ( "lib/core/f1_chain.ml",
           "let rate_unchecked p = 1. /. sqrt p\n\
            let pair_unchecked p = rate_unchecked p +. rate_unchecked p\n" );
       ])

let test_f1_allow () =
  check_rules "binding-scoped [@@lint.allow \"F1\"] suppresses" []
    (analyze
       [
         ( "lib/core/f1_allowed.ml",
           "let rate_unchecked p = 1. /. sqrt p\n\
            let rate p = rate_unchecked p [@@lint.allow \"F1\"]\n" );
       ])

(* --- F2: allocation freedom of [@pftk.zero_alloc] bodies --------------------- *)

let test_f2_alloc () =
  let findings =
    analyze
      [
        ( "lib/core/f2_trigger.ml",
          "let[@pftk.zero_alloc] pair x = (x, x)\n" );
      ]
  in
  check_rules "tuple literal in a zero-alloc body" [ "F2" ] findings;
  check_rules "call to an unannotated function" [ "F2" ]
    (analyze
       [
         ( "lib/core/f2_callee.ml",
           "let helper x = x +. 1.\n\
            let[@pftk.zero_alloc] hot x = helper x\n" );
       ]);
  check_rules "float store into a mixed record boxes" [ "F2" ]
    (analyze
       [
         ( "lib/core/f2_boxing.ml",
           "type t = { mutable f : float; mutable n : int }\n\
            let[@pftk.zero_alloc] set t v = t.f <- v\n" );
       ])

let test_f2_clean () =
  check_rules "float arithmetic, noalloc externals and annotated callees pass"
    []
    (analyze
       [
         ( "lib/core/f2_clean.ml",
           "type fl = { mutable f : float; mutable g : float }\n\
            let[@pftk.zero_alloc] step x = (x *. 2.) +. sqrt x\n\
            let[@pftk.zero_alloc] hot t x = t.f <- step x\n" );
       ])

let test_f2_allow () =
  check_rules "expression-scoped [@lint.allow \"F2\"] suppresses" []
    (analyze
       [
         ( "lib/core/f2_allowed.ml",
           "let[@pftk.zero_alloc] pair x = ((x, x) [@lint.allow \"F2\"])\n" );
       ])

(* --- F3: exception escape from contract bodies ------------------------------- *)

let test_f3_direct_raise () =
  let findings =
    analyze
      [
        ( "lib/core/f3_trigger.ml",
          "let bad_unchecked p =\n\
          \  if p <= 0. then invalid_arg \"p\" else sqrt p\n" );
      ]
  in
  check_rules "invalid_arg inside an *_unchecked body" [ "F3" ] findings

let test_f3_transitive () =
  let findings =
    analyze
      [
        ( "lib/core/f3_chain.ml",
          "let helper p = if p <= 0. then failwith \"p\" else p\n\
           let chain_unchecked p = sqrt (helper p)\n" );
      ]
  in
  (* helper itself raising is fine (it is not under contract); the
     *_unchecked caller reaching that raise is the violation. *)
  check_rules "raise reached through a callee" [ "F3" ] findings;
  match findings with
  | [ f ] ->
      Alcotest.(check bool) "finding names the raising callee" true
        (F.contains_sub f.F.message "helper")
  | _ -> Alcotest.fail "expected a single finding"

let test_f3_try_handles () =
  check_rules "a try body contains its own exceptions" []
    (analyze
       [
         ( "lib/core/f3_handled.ml",
           "let parse_unchecked s =\n\
           \  try float_of_string s with Failure _ -> Float.nan\n" );
       ])

(* --- F4: NaN sentinel documentation ------------------------------------------ *)

let f4_impl =
  "let budget r = if r > 0. then 1. /. r else Float.nan\n"

let test_f4_undocumented () =
  check_rules "NaN-returning float API with a silent doc" [ "F4" ]
    (analyze
       [
         ( "lib/core/f4_trigger.mli",
           "val budget : float -> float\n\
            (** Largest sustainable loss budget. *)\n" );
         ("lib/core/f4_trigger.ml", f4_impl);
       ])

let test_f4_documented () =
  check_rules "naming the NaN sentinel satisfies F4" []
    (analyze
       [
         ( "lib/core/f4_doc.mli",
           "val budget : float -> float\n\
            (** Largest sustainable loss budget; NaN when unsolvable. *)\n" );
         ("lib/core/f4_doc.ml", f4_impl);
       ])

let test_f4_non_float_untouched () =
  (* Regression for the taint fixpoint: mentioning Float.nan in a data
     table must not force NaN docs onto non-float APIs reachable from
     it. *)
  check_rules "integer API with a NaN-tainted helper passes" []
    (analyze
       [
         ("lib/core/f4_int.mli", "val count : int -> int\n");
         ( "lib/core/f4_int.ml",
           "let special = [| Float.nan |]\n\
            let count n = Array.length special + n\n" );
       ])

let test_f4_allow () =
  check_rules "val-scoped [@@lint.allow \"F4\"] suppresses" []
    (analyze
       [
         ( "lib/core/f4_allowed.mli",
           "val budget : float -> float [@@lint.allow \"F4\"]\n" );
         ("lib/core/f4_allowed.ml", f4_impl);
       ])

(* --- cmt discovery ----------------------------------------------------------- *)

let test_cmt_files () =
  let root = fresh_root () in
  Alcotest.(check (list string)) "no artifacts, no files" []
    (Flow.cmt_files [ root ]);
  compile_fixtures root [ ("lib/core/disc.ml", "let x = 1\n") ];
  Alcotest.(check int)
    "one compiled fixture, one cmt" 1
    (List.length (Flow.cmt_files [ root ]))

(* --- CLI exit codes ----------------------------------------------------------- *)

(* The test binary runs from _build/default/test, so the CLIs (declared
   dune dependencies) sit next door under tools/lint. *)
let cli name = Filename.concat ".." (Filename.concat "tools/lint" name)
let flow_cli = cli "pftk_flow.exe"

(* stdout (findings) and stderr (the clean/summary line, usage errors)
   are captured separately: the JSON schema test must see the payload
   alone. *)
let run_cli exe args =
  let out = Filename.temp_file "pftk_flow_cli" ".out" in
  let err = Filename.temp_file "pftk_flow_cli" ".err" in
  let status =
    Sys.command (Filename.quote_command exe args ~stdout:out ~stderr:err)
  in
  let slurp path =
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    text
  in
  (status, slurp out, slurp err)

let test_cli () =
  if not (Sys.file_exists flow_cli) then
    Alcotest.fail "pftk_flow.exe not found next to the test binary";
  let dirty = fresh_root () in
  compile_fixtures dirty
    [
      ( "lib/core/cli_fixture.ml",
        "let rate_unchecked p = 1. /. sqrt p\n\
         let rate p = rate_unchecked p\n" );
    ];
  let status, text, _ = run_cli flow_cli [ dirty ] in
  Alcotest.(check int) "dirty tree exits 1" 1 status;
  Alcotest.(check bool) "report carries the rule tag" true
    (F.contains_sub text "[F1]");
  let status_json, json, _ = run_cli flow_cli [ "--format=json"; dirty ] in
  Alcotest.(check int) "json format keeps the exit code" 1 status_json;
  Alcotest.(check bool) "json mentions the rule" true
    (F.contains_sub json {|"rule":"F1"|});
  let clean = fresh_root () in
  compile_fixtures clean [ ("lib/core/cli_clean.ml", "let x = 1\n") ];
  let status_clean, _, _ = run_cli flow_cli [ clean ] in
  Alcotest.(check int) "clean tree exits 0" 0 status_clean;
  let empty = fresh_root () in
  let status_empty, _, err = run_cli flow_cli [ empty ] in
  Alcotest.(check int) "no .cmt files is a usage error (2)" 2 status_empty;
  Alcotest.(check bool) "usage error explains itself" true
    (F.contains_sub err "no .cmt")

(* --- JSON/SARIF schema shape across all four CLIs ------------------------------ *)

(* Every analyzer prints findings through [Pftk_findings.pp_findings_json]
   and [pp_findings_sarif], so the contracts below — a JSON array of
   objects whose keys appear in the fixed order file, line, col, rule,
   message, sorted by (file, line, col, rule); and a single-run SARIF
   2.1.0 log whose results cite rules declared by the driver — are
   checked once against real output of all four CLIs rather than
   per-tool. *)

let index_of hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i =
    if i + n > h then None
    else if String.equal (String.sub hay i n) needle then Some i
    else go (i + 1)
  in
  go 0

(* Split a pp_findings_json array into the raw object texts. *)
let json_objects text =
  let text = String.trim text in
  Alcotest.(check bool) "output is a JSON array" true
    (String.length text >= 2
    && text.[0] = '['
    && text.[String.length text - 1] = ']');
  String.split_on_char '{' text
  |> List.filteri (fun i _ -> i > 0)
  |> List.map (fun s ->
         match String.index_opt s '}' with
         | Some j -> String.sub s 0 j
         | None -> Alcotest.fail "unterminated JSON object")

let check_object_shape obj =
  let keys = [ {|"file":|}; {|"line":|}; {|"col":|}; {|"rule":|}; {|"message":|} ] in
  let positions =
    List.map
      (fun k ->
        match index_of obj k with
        | Some i -> i
        | None -> Alcotest.failf "object %S lacks key %s" obj k)
      keys
  in
  Alcotest.(check bool) "keys appear in the canonical order" true
    (List.sort compare positions = positions)

let field_string obj key =
  match index_of obj (Printf.sprintf {|"%s":"|} key) with
  | None -> Alcotest.failf "object %S lacks string field %s" obj key
  | Some i ->
      let start = i + String.length key + 4 in
      let j = String.index_from obj start '"' in
      String.sub obj start (j - start)

let check_cli_json ~tool exe args =
  let status, text, _ = run_cli exe args in
  Alcotest.(check int) (tool ^ " exits 1 on findings") 1 status;
  let objects = json_objects text in
  Alcotest.(check bool) (tool ^ " reports at least one finding") true
    (objects <> []);
  List.iter check_object_shape objects;
  let order_key = List.map (fun o -> field_string o "file") objects in
  Alcotest.(check (list string))
    (tool ^ " findings are sorted by file")
    (List.sort compare order_key) order_key

(* SARIF 2.1.0 (--format=sarif): same findings, one run, the driver
   named after the tool, each result carrying a ruleId echoed in the
   driver's rules table and a physical location whose startColumn is
   1-based (the JSON format's col is 0-based). *)
let check_cli_sarif ~tool exe args =
  let status, text, _ = run_cli exe args in
  Alcotest.(check int) (tool ^ " sarif exits 1 on findings") 1 status;
  let has needle =
    Alcotest.(check bool)
      (Printf.sprintf "%s sarif contains %s" tool needle)
      true
      (index_of text needle <> None)
  in
  has {|"$schema": "https://json.schemastore.org/sarif-2.1.0.json"|};
  has {|"version": "2.1.0"|};
  has (Printf.sprintf {|"name": "%s"|} tool);
  List.iter has
    [
      {|"rules": [{"id": "|};
      {|"ruleId": "|};
      {|"level": "error"|};
      {|"message": {"text": "|};
      {|"physicalLocation": {"artifactLocation": {"uri": "|};
      {|"region": {"startLine": |};
      {|"startColumn": |};
    ];
  (* Every result's ruleId must be declared in the driver's rules
     table. *)
  let rules_start =
    match index_of text {|"rules": [|} with
    | Some i -> i
    | None -> Alcotest.fail "no rules table"
  in
  let rules_end = String.index_from text rules_start ']' in
  let table = String.sub text rules_start (rules_end - rules_start) in
  String.split_on_char '{' text
  |> List.iter (fun chunk ->
         match index_of chunk {|"ruleId": "|} with
         | None -> ()
         | Some i ->
             let start = i + String.length {|"ruleId": "|} in
             let j = String.index_from chunk start '"' in
             let rule = String.sub chunk start (j - start) in
             Alcotest.(check bool)
               (Printf.sprintf "%s declares rule %s" tool rule)
               true
               (index_of table (Printf.sprintf {|{"id": "%s"}|} rule) <> None))

let check_cli_formats ~tool exe root =
  check_cli_json ~tool exe [ "--format=json"; root ];
  check_cli_sarif ~tool exe [ "--format=sarif"; root ]

let test_json_schema_shape () =
  (* One dirty tree per analyzer kind: a source tree for pftk-lint, a
     compiled tree for pftk-race, pftk-flow and pftk-units.  Each tree
     is checked in both machine formats. *)
  let lint_root = fresh_root () in
  let dir = List.fold_left Filename.concat lint_root [ "lib"; "core" ] in
  mkdir_p dir;
  let oc = open_out (Filename.concat dir "fixture.ml") in
  output_string oc "let f x = x = 0.\nlet g = ref 0\n";
  close_out oc;
  check_cli_formats ~tool:"pftk-lint" (cli "pftk_lint.exe") lint_root;
  let race_root = fresh_root () in
  compile_fixtures race_root
    [
      ( "lib/core/fixture.ml",
        "let order (a : float) (b : float) = compare a b\n\
         let send_rate ~rtt p = 1. /. (rtt *. sqrt p)\n" );
    ];
  check_cli_formats ~tool:"pftk-race" (cli "pftk_race.exe") race_root;
  let flow_root = fresh_root () in
  compile_fixtures flow_root
    [
      ( "lib/core/fixture.ml",
        "let rate_unchecked p = 1. /. sqrt p\n\
         let rate p = rate_unchecked p\n\
         let[@pftk.zero_alloc] pair x = (x, x)\n" );
    ];
  check_cli_formats ~tool:"pftk-flow" (cli "pftk_flow.exe") flow_root;
  let units_root = fresh_root () in
  compile_fixtures units_root
    [
      ( "lib/core/fixture.ml",
        "let[@pftk.unit \"s -> pkt -> 1\"] bad rtt wnd = rtt +. wnd\n" );
    ];
  check_cli_formats ~tool:"pftk-units" (cli "pftk_units.exe") units_root

let () =
  Alcotest.run "pftk_flow"
    [
      ( "rules",
        [
          case "F1 undominated call" test_f1_undominated;
          case "F1 guard domination" test_f1_guard_dominates;
          case "F1 _unchecked caller exempt" test_f1_unchecked_caller_exempt;
          case "F1 lint.allow" test_f1_allow;
          case "F2 allocating constructs" test_f2_alloc;
          case "F2 clean body" test_f2_clean;
          case "F2 lint.allow" test_f2_allow;
          case "F3 direct raise" test_f3_direct_raise;
          case "F3 transitive raise" test_f3_transitive;
          case "F3 try handles" test_f3_try_handles;
          case "F4 undocumented sentinel" test_f4_undocumented;
          case "F4 documented sentinel" test_f4_documented;
          case "F4 non-float API untouched" test_f4_non_float_untouched;
          case "F4 lint.allow" test_f4_allow;
          case "cmt discovery" test_cmt_files;
        ] );
      ( "cli",
        [
          case "exit codes and formats" test_cli;
          case "json/sarif schema shape (all CLIs)" test_json_schema_shape;
        ] );
    ]
