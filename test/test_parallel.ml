(* Tests for Pftk_parallel: ordering, exception propagation, the pool
   primitive, and — the property everything else rests on — determinism of
   the experiment generators under parallelism (jobs:1 vs jobs:4). *)

open Pftk_parallel

(* Uneven per-item work so parallel completion order differs from input
   order; the result must still come back in input order. *)
let busy_work i =
  let n = 1 + ((i * 7919) mod 2000) in
  let acc = ref 0 in
  for k = 1 to n do
    acc := (!acc + (k * k)) mod 1_000_003
  done;
  (i, !acc)

let test_map_ordering () =
  let items = List.init 50 Fun.id in
  Alcotest.(check (list (pair int int)))
    "input order preserved" (List.map busy_work items)
    (map ~jobs:4 busy_work items)

let test_mapi_indices () =
  let items = [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ] in
  Alcotest.(check (list (pair int string)))
    "indices line up"
    (List.mapi (fun i x -> (i, x)) items)
    (mapi ~jobs:3 (fun i x -> (i, x)) items)

let test_init_ordering () =
  Alcotest.(check (array (pair int int)))
    "init matches Array.init"
    (Array.init 33 busy_work)
    (init ~jobs:4 33 busy_work)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty list" [] (map ~jobs:4 succ []);
  Alcotest.(check (list int)) "singleton" [ 4 ] (map ~jobs:4 succ [ 3 ]);
  Alcotest.(check (array int)) "empty init" [||] (init ~jobs:4 0 succ)

let test_jobs_one_is_sequential () =
  let trace = ref [] in
  let f i =
    trace := i :: !trace;
    i
  in
  ignore (map ~jobs:1 f [ 0; 1; 2; 3 ]);
  Alcotest.(check (list int))
    "jobs:1 visits items left to right" [ 0; 1; 2; 3 ] (List.rev !trace)

exception Boom of int

let test_exception_propagation () =
  Alcotest.check_raises "worker exception re-raised" (Boom 7) (fun () ->
      ignore
        (map ~jobs:4
           (fun i -> if i = 7 then raise (Boom 7) else busy_work i)
           (List.init 20 Fun.id)));
  Alcotest.check_raises "init propagates too" (Boom 3) (fun () ->
      ignore (init ~jobs:2 10 (fun i -> if i = 3 then raise (Boom 3) else i)))

let test_invalid_jobs () =
  Alcotest.check_raises "jobs:0 rejected"
    (Invalid_argument "Pftk_parallel.map: jobs must be >= 1") (fun () ->
      ignore (map ~jobs:0 Fun.id [ 1 ]));
  Alcotest.check_raises "negative n rejected"
    (Invalid_argument "Pftk_parallel.init: n must be >= 0") (fun () ->
      ignore (init ~jobs:2 (-1) Fun.id))

let test_jobs_exceed_items () =
  (* More workers than work: [run] clamps the pool to [n] domains, so
     oversubscribed calls must neither hang nor drop items. *)
  Alcotest.(check (list int))
    "map jobs:16 over 3 items" [ 2; 3; 4 ]
    (map ~jobs:16 succ [ 1; 2; 3 ]);
  Alcotest.(check (list int))
    "mapi jobs:8 over 2 items" [ 10; 21 ]
    (mapi ~jobs:8 (fun i x -> (10 * i) + x) [ 10; 11 ]);
  Alcotest.(check (array int))
    "init jobs:8 over 1 slot" [| 5 |]
    (init ~jobs:8 1 (fun _ -> 5));
  Alcotest.(check (array int)) "init jobs:8 over 0 slots" [||]
    (init ~jobs:8 0 Fun.id)

let test_pool_direct () =
  let pool = Pool.create ~size:3 in
  let cells = Array.make 20 0 in
  Array.iteri (fun i _ -> Pool.submit pool (fun () -> cells.(i) <- i + 1)) cells;
  Pool.wait pool;
  Pool.shutdown pool;
  Alcotest.(check (array int))
    "every task ran exactly once"
    (Array.init 20 (fun i -> i + 1))
    cells;
  Alcotest.check_raises "submit after shutdown rejected"
    (Invalid_argument "Pftk_parallel.Pool.submit: pool is shut down")
    (fun () -> Pool.submit pool (fun () -> ()))

(* --- Determinism of the experiment fan-outs under parallelism ----------- *)

let test_table2_deterministic () =
  let a = Pftk_experiments.Table2.generate ~seed:211L ~duration:120. ~jobs:1 () in
  let b = Pftk_experiments.Table2.generate ~seed:211L ~duration:120. ~jobs:4 () in
  Alcotest.(check int) "same row count" (List.length a) (List.length b);
  Alcotest.(check bool) "rows identical under jobs:4" true (a = b)

let test_fig9_deterministic () =
  let a = Pftk_experiments.Fig9.generate ~seed:212L ~duration:120. ~jobs:1 () in
  let b = Pftk_experiments.Fig9.generate ~seed:212L ~duration:120. ~jobs:4 () in
  Alcotest.(check bool) "entries identical under jobs:4" true (a = b)

let test_window_dist_deterministic () =
  let a =
    Pftk_experiments.Window_dist.generate ~seed:213L ~rounds:30_000 ~jobs:1 ()
  in
  let b =
    Pftk_experiments.Window_dist.generate ~seed:213L ~rounds:30_000 ~jobs:4 ()
  in
  Alcotest.(check (array (float 0.)))
    "histograms bit-identical under jobs:4"
    a.Pftk_experiments.Window_dist.simulated_dist
    b.Pftk_experiments.Window_dist.simulated_dist

let test_batch_deterministic () =
  let profile = List.hd Pftk_dataset.Path_profile.all in
  let rates jobs =
    Pftk_dataset.Workload.batch_100s ~seed:214L ~count:8 ~jobs profile
    |> List.map (fun t ->
           t.Pftk_dataset.Workload.result.Pftk_tcp.Round_sim.send_rate)
  in
  Alcotest.(check (list (float 0.)))
    "batch rates identical under jobs:4" (rates 1) (rates 4)

let () =
  let case name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "pftk_parallel"
    [
      ( "primitives",
        [
          case "map ordering" test_map_ordering;
          case "mapi indices" test_mapi_indices;
          case "init ordering" test_init_ordering;
          case "empty and singleton" test_empty_and_singleton;
          case "jobs:1 sequential" test_jobs_one_is_sequential;
          case "exception propagation" test_exception_propagation;
          case "invalid arguments" test_invalid_jobs;
          case "jobs exceed items" test_jobs_exceed_items;
          case "pool direct use" test_pool_direct;
        ] );
      ( "determinism",
        [
          case "table2 jobs:1 = jobs:4" test_table2_deterministic;
          case "fig9 jobs:1 = jobs:4" test_fig9_deterministic;
          case "window-dist jobs:1 = jobs:4" test_window_dist_deterministic;
          case "workload batch jobs:1 = jobs:4" test_batch_deterministic;
        ] );
    ]
