(* Tests for pftk_core: every equation of the paper gets a direct check —
   closed forms against hand-computed values, approximations against their
   exact counterparts, asymptotics against the printed limits, and the
   cross-model consistency relations (TD-only vs full vs approximate vs
   throughput vs Markov). *)

open Pftk_core

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let close ?(rel = 0.05) msg expected actual =
  let err = Float.abs (expected -. actual) /. Float.abs expected in
  if err > rel then
    Alcotest.failf "%s: expected %g within %g%%, got %g (err %.1f%%)" msg
      expected (100. *. rel) actual (100. *. err)

let case name f = Alcotest.test_case name `Quick f

let default_params = Params.make ~rtt:0.2 ~t0:2. ~wm:50 ()

(* --- Params ----------------------------------------------------------------- *)

let test_params_defaults () =
  let p = Params.make ~rtt:0.1 ~t0:1. () in
  Alcotest.(check int) "b defaults to 2" 2 p.Params.b;
  Alcotest.(check bool) "wm defaults to unlimited" true
    (p.Params.wm >= Params.unlimited_window)

let test_params_validation () =
  Alcotest.check_raises "rtt <= 0" (Invalid_argument "Params: rtt must be positive")
    (fun () -> ignore (Params.make ~rtt:0. ~t0:1. ()));
  Alcotest.check_raises "t0 <= 0" (Invalid_argument "Params: t0 must be positive")
    (fun () -> ignore (Params.make ~rtt:1. ~t0:(-1.) ()));
  Alcotest.check_raises "b < 1" (Invalid_argument "Params: b must be >= 1")
    (fun () -> ignore (Params.make ~b:0 ~rtt:1. ~t0:1. ()));
  Alcotest.check_raises "wm < 1" (Invalid_argument "Params: wm must be >= 1")
    (fun () -> ignore (Params.make ~wm:0 ~rtt:1. ~t0:1. ()))

let test_check_p () =
  Params.check_p 0.5;
  Alcotest.check_raises "p = 0"
    (Invalid_argument "loss probability p=0 outside (0, 1)") (fun () ->
      Params.check_p 0.);
  Alcotest.check_raises "p = 1"
    (Invalid_argument "loss probability p=1 outside (0, 1)") (fun () ->
      Params.check_p 1.)

let test_params_equal () =
  let a = Params.make ~rtt:0.1 ~t0:1. () in
  Alcotest.(check bool) "equal" true (Params.equal a a);
  Alcotest.(check bool) "not equal" false
    (Params.equal a (Params.make ~rtt:0.2 ~t0:1. ()))

(* --- Tdonly (Section II-A) ---------------------------------------------------- *)

let test_e_alpha () =
  check_float "E[alpha] = 1/p (eq. 4)" 100. (Tdonly.e_alpha 0.01)

let test_e_w_formula () =
  (* Eq. (13) by hand for b = 2, p = 0.1:
     c = 4/6 = 2/3; E[W] = 2/3 + sqrt(8*0.9/(6*0.1) + 4/9). *)
  let expected = (2. /. 3.) +. sqrt ((8. *. 0.9 /. 0.6) +. (4. /. 9.)) in
  check_float "eq. (13)" expected (Tdonly.e_w ~b:2 0.1)

let test_e_w_asymptotic () =
  (* Eq. (14): E[W] -> sqrt(8/3bp) as p -> 0. *)
  let p = 1e-7 in
  close ~rel:1e-3 "eq. (14) asymptotic" (sqrt (8. /. (3. *. 2. *. p)))
    (Tdonly.e_w ~b:2 p)

let test_e_x_relation () =
  (* Eq. (11): E[W] = (2/b) E[X], so E[X] = b E[W] / 2. *)
  List.iter
    (fun (b, p) ->
      check_float ~eps:1e-9
        (Printf.sprintf "E[X] = bE[W]/2 at b=%d p=%g" b p)
        (float_of_int b *. Tdonly.e_w ~b p /. 2.)
        (Tdonly.e_x ~b p))
    [ (1, 0.01); (2, 0.01); (2, 0.3); (4, 0.1) ]

let test_e_a () =
  check_float "eq. (16) is RTT (E[X]+1)"
    (0.3 *. (Tdonly.e_x ~b:2 0.05 +. 1.))
    (Tdonly.e_a ~rtt:0.3 ~b:2 0.05)

let test_e_y () =
  check_float "eq. (5)"
    ((0.95 /. 0.05) +. Tdonly.e_w ~b:2 0.05)
    (Tdonly.e_y ~b:2 0.05)

let test_send_rate_is_ratio () =
  check_float "eq. (19) = E[Y]/E[A]"
    (Tdonly.e_y ~b:2 0.02 /. Tdonly.e_a ~rtt:0.25 ~b:2 0.02)
    (Tdonly.send_rate ~rtt:0.25 ~b:2 0.02)

let test_sqrt_formula () =
  (* Eq. (20): 1/RTT * sqrt(3/2bp); for b=1 this is Mahdavi-Floyd. *)
  check_float "eq. (20) b=1" (sqrt (1.5 /. 0.01) /. 0.1)
    (Tdonly.send_rate_sqrt ~rtt:0.1 ~b:1 0.01)

let test_sqrt_approximates_exact () =
  (* For small p the exact eq. (19) approaches eq. (20). *)
  close ~rel:0.02 "sqrt ~ exact at p = 1e-5"
    (Tdonly.send_rate_sqrt ~rtt:0.2 ~b:2 1e-5)
    (Tdonly.send_rate ~rtt:0.2 ~b:2 1e-5)

let test_e_x_asymptotic () =
  (* Eq. (17): E[X] -> sqrt(2b/3p) as p -> 0. *)
  let p = 1e-7 in
  close ~rel:1e-3 "eq. (17) asymptotic"
    (sqrt (2. *. 2. /. (3. *. p)))
    (Tdonly.e_x ~b:2 p)

let test_rtt_scaling () =
  (* Send rate scales as 1/RTT. *)
  check_float ~eps:1e-9 "1/RTT scaling"
    (2. *. Tdonly.send_rate ~rtt:0.4 ~b:2 0.01)
    (Tdonly.send_rate ~rtt:0.2 ~b:2 0.01)

let test_send_rate_capped () =
  let params = Params.make ~rtt:0.1 ~t0:1. ~wm:10 () in
  check_float "cap binds at tiny p" 100. (Tdonly.send_rate_capped params 1e-6);
  Alcotest.(check bool) "no cap at large p" true
    (Tdonly.send_rate_capped params 0.3 < 100.)

(* --- Qhat (eqs. 22-25) ---------------------------------------------------------- *)

let test_a_prob_normalized () =
  List.iter
    (fun (p, w) ->
      let total = ref 0. in
      for k = 0 to w - 1 do
        total := !total +. Qhat.a_prob ~p ~w k
      done;
      check_float ~eps:1e-9 (Printf.sprintf "A(w=%d, .) sums to 1 at p=%g" w p)
        1. !total)
    [ (0.1, 5); (0.01, 20); (0.5, 3); (0.001, 50) ]

let test_c_prob_normalized () =
  List.iter
    (fun (p, n) ->
      let total = ref 0. in
      for m = 0 to n do
        total := !total +. Qhat.c_prob ~p ~n m
      done;
      check_float ~eps:1e-9 (Printf.sprintf "C(n=%d, .) sums to 1 at p=%g" n p)
        1. !total)
    [ (0.1, 5); (0.3, 1); (0.01, 10) ]

let test_qhat_small_windows () =
  List.iter
    (fun w -> check_float "Q-hat = 1 for w <= 3" 1. (Qhat.exact ~p:0.05 w))
    [ 1; 2; 3 ]

let test_qhat_exact_equals_closed_form () =
  (* The algebraic reduction (24) of the double sum (22) is exact. *)
  List.iter
    (fun (p, w) ->
      check_float ~eps:1e-9
        (Printf.sprintf "exact = closed at p=%g w=%d" p w)
        (Qhat.exact ~p w)
        (Qhat.closed_form ~p (float_of_int w)))
    [ (0.01, 4); (0.01, 10); (0.1, 8); (0.3, 20); (0.05, 50); (0.7, 6) ]

let test_qhat_limit () =
  (* lim_{p->0} Q-hat(w) = 3/w (the L'Hopital observation). *)
  List.iter
    (fun w ->
      close ~rel:0.02
        (Printf.sprintf "p->0 limit at w=%d" w)
        (3. /. float_of_int w)
        (Qhat.closed_form ~p:1e-6 (float_of_int w)))
    [ 5; 10; 30 ]

let test_qhat_approx () =
  check_float "min(1, 3/w) above 3" 0.3 (Qhat.approx 10.);
  check_float "min(1, 3/w) below 3" 1. (Qhat.approx 2.)

let test_qhat_bounds () =
  List.iter
    (fun (p, w) ->
      let q = Qhat.closed_form ~p w in
      Alcotest.(check bool)
        (Printf.sprintf "0 <= Qhat <= 1 at p=%g w=%g" p w)
        true
        (q >= 0. && q <= 1.))
    [ (0.001, 4.); (0.5, 4.); (0.9, 100.); (0.2, 1.5) ]

let test_qhat_eval_dispatch () =
  check_float "Approximate" (Qhat.approx 12.) (Qhat.eval Qhat.Approximate ~p:0.1 12.);
  check_float "Closed" (Qhat.closed_form ~p:0.1 12.) (Qhat.eval Qhat.Closed ~p:0.1 12.);
  check_float "Exact rounds w" (Qhat.exact ~p:0.1 12) (Qhat.eval Qhat.Exact_sum ~p:0.1 12.3)

let test_qhat_decreasing_in_w () =
  let prev = ref 2. in
  List.iter
    (fun w ->
      let q = Qhat.closed_form ~p:0.05 w in
      Alcotest.(check bool) "nonincreasing in w" true (q <= !prev +. 1e-12);
      prev := q)
    [ 4.; 6.; 10.; 20.; 40. ]

(* --- Timeouts (eqs. 27-29) -------------------------------------------------------- *)

let test_f_polynomial () =
  let p = 0.1 in
  let expected =
    1. +. p +. (2. *. (p ** 2.)) +. (4. *. (p ** 3.)) +. (8. *. (p ** 4.))
    +. (16. *. (p ** 5.)) +. (32. *. (p ** 6.))
  in
  check_float ~eps:1e-12 "eq. (29)" expected (Timeouts.f p)

let test_e_r () = check_float "eq. (27)" (1. /. 0.8) (Timeouts.e_r 0.2)

let test_sequence_durations () =
  (* L_k = (2^k - 1) T0 through the cap+1, then linear at 64 T0 per extra. *)
  check_float "L_1" 1. (Timeouts.sequence_duration ~t0:1. 1);
  check_float "L_3" 7. (Timeouts.sequence_duration ~t0:1. 3);
  check_float "L_6 = 63 T0" 63. (Timeouts.sequence_duration ~t0:1. 6);
  check_float "L_7 = 127 T0" 127. (Timeouts.sequence_duration ~t0:1. 7);
  check_float "L_8 = 191 T0 (paper: 63 + 64(k-6))" 191.
    (Timeouts.sequence_duration ~t0:1. 8);
  check_float "L_9" 255. (Timeouts.sequence_duration ~t0:1. 9)

let test_sequence_duration_irix_cap () =
  (* Irix freezes at 2^5: L_7 = 63 + 32 + 32. *)
  check_float "cap 5: L_6 = 63" 63.
    (Timeouts.sequence_duration ~backoff_cap:5 ~t0:1. 6);
  check_float "cap 5: L_7 = 95" 95.
    (Timeouts.sequence_duration ~backoff_cap:5 ~t0:1. 7)

let test_sequence_length_distribution () =
  let total = ref 0. in
  for k = 1 to 200 do
    total := !total +. Timeouts.p_sequence_length 0.3 k
  done;
  check_float ~eps:1e-9 "geometric sums to 1" 1. !total

let test_e_zto_closed_form_matches_series () =
  (* The key identity behind eq. (28): E[Z^TO] = T0 f(p)/(1-p). *)
  List.iter
    (fun p ->
      close ~rel:1e-6
        (Printf.sprintf "series = closed form at p=%g" p)
        (Timeouts.e_zto ~t0:2.5 p)
        (Timeouts.e_zto_series ~t0:2.5 p))
    [ 0.01; 0.05; 0.1; 0.3; 0.5 ]

let test_e_zto_irix_smaller () =
  (* A lower backoff cap shortens deep sequences. *)
  Alcotest.(check bool) "cap 5 <= cap 6" true
    (Timeouts.e_zto_series ~backoff_cap:5 ~t0:1. 0.5
    <= Timeouts.e_zto_series ~backoff_cap:6 ~t0:1. 0.5)

(* --- Full model (eqs. 28, 32) ------------------------------------------------------- *)

let test_window_limited_regimes () =
  let params = Params.make ~rtt:0.2 ~t0:2. ~wm:8 () in
  Alcotest.(check bool) "limited at small p" true
    (Full_model.window_limited params 0.001);
  Alcotest.(check bool) "unconstrained at large p" false
    (Full_model.window_limited params 0.3)

let test_full_model_branch_continuity () =
  (* At the regime boundary E[W_u] = W_m the two branches of eq. (32)
     should roughly agree (the paper switches between them there). *)
  let wm = 12 in
  let params = Params.make ~rtt:0.3 ~t0:2. ~wm () in
  (* Find p where E[W_u] crosses wm. *)
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.
    else
      let mid = (lo +. hi) /. 2. in
      if Tdonly.e_w ~b:2 mid > float_of_int wm then bisect mid hi (n - 1)
      else bisect lo mid (n - 1)
  in
  let p_star = bisect 1e-6 0.5 60 in
  close ~rel:0.12 "branches agree at crossover"
    (Full_model.send_rate_unconstrained params p_star)
    (Full_model.send_rate_limited params p_star)

let test_full_model_spot_value () =
  (* Hand-computed eq. (28) at p=0.02, RTT=0.2, T0=2, b=2, no window limit. *)
  let p = 0.02 in
  let ew = Tdonly.e_w ~b:2 p in
  let ex = Tdonly.e_x ~b:2 p in
  let qhat = Qhat.closed_form ~p ew in
  let expected =
    (((1. -. p) /. p) +. ew +. (qhat /. (1. -. p)))
    /. ((0.2 *. (ex +. 1.)) +. (qhat *. 2. *. Timeouts.f p /. (1. -. p)))
  in
  let params = Params.make ~rtt:0.2 ~t0:2. () in
  check_float ~eps:1e-9 "eq. (28) assembled" expected
    (Full_model.send_rate params p)

let test_full_below_td_only () =
  (* Timeouts only reduce the rate: eq. (32) <= eq. (19) everywhere. *)
  let params = Params.make ~rtt:0.2 ~t0:2. () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "full <= TD-only at p=%g" p)
        true
        (Full_model.send_rate params p <= Tdonly.send_rate ~rtt:0.2 ~b:2 p))
    [ 0.001; 0.01; 0.05; 0.1; 0.3; 0.6 ]

let test_full_approaches_td_only_at_small_p () =
  (* With few timeouts (tiny p) the models coincide. *)
  let params = Params.make ~rtt:0.2 ~t0:2. () in
  close ~rel:0.05 "full ~ TD-only at p=1e-5"
    (Tdonly.send_rate ~rtt:0.2 ~b:2 1e-5)
    (Full_model.send_rate params 1e-5)

let test_full_decreasing_in_p () =
  let params = default_params in
  let prev = ref infinity in
  Array.iter
    (fun p ->
      let rate = Full_model.send_rate params p in
      Alcotest.(check bool) "decreasing" true (rate <= !prev);
      prev := rate)
    (Sweep.logspace ~lo:1e-4 ~hi:0.9 ~n:40)

let test_limited_identities () =
  (* Section II-C: E[U] + E[V] = E[X]. *)
  let params = Params.make ~rtt:0.2 ~t0:2. ~wm:10 () in
  let p = 0.003 in
  check_float ~eps:1e-9 "E[U] + E[V] = E[X]"
    (Full_model.e_u params +. Full_model.e_v params p)
    (Full_model.e_x_limited params p)

let test_timeout_fraction_range () =
  let params = default_params in
  List.iter
    (fun p ->
      let q = Full_model.timeout_fraction params p in
      Alcotest.(check bool) "Q in [0,1]" true (q >= 0. && q <= 1.))
    [ 0.001; 0.05; 0.3 ];
  (* Higher loss -> smaller windows -> more timeouts. *)
  Alcotest.(check bool) "Q grows with p" true
    (Full_model.timeout_fraction params 0.2
    > Full_model.timeout_fraction params 0.001)

let test_q_variants_close () =
  let params = default_params in
  List.iter
    (fun p ->
      close ~rel:0.25
        (Printf.sprintf "Q-hat variants agree at p=%g" p)
        (Full_model.send_rate ~q:Qhat.Closed params p)
        (Full_model.send_rate ~q:Qhat.Approximate params p))
    [ 0.005; 0.02; 0.1 ]

(* --- Approximate model (eqs. 30, 33) --------------------------------------------------- *)

let test_approx_formula () =
  (* Eq. (30) by hand at p=0.04, rtt=0.2, t0=2, b=2. *)
  let p = 0.04 in
  let td = 0.2 *. sqrt (2. *. 2. *. p /. 3.) in
  let to_ = 2. *. Float.min 1. (3. *. sqrt (3. *. 2. *. p /. 8.)) *. p *. (1. +. (32. *. p *. p)) in
  check_float ~eps:1e-12 "eq. (30)" (1. /. (td +. to_))
    (Approx_model.send_rate_uncapped ~rtt:0.2 ~t0:2. ~b:2 p)

let test_approx_capped () =
  let params = Params.make ~rtt:0.1 ~t0:1. ~wm:5 () in
  check_float "Wm/RTT cap" 50. (Approx_model.send_rate params 1e-6)

let test_approx_tracks_full () =
  (* Section III: eq. (33) is "a very good approximation" of eq. (32). *)
  let params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 () in
  List.iter
    (fun p ->
      close ~rel:0.35
        (Printf.sprintf "approx within 35%% at p=%g" p)
        (Full_model.send_rate params p)
        (Approx_model.send_rate params p))
    [ 0.001; 0.005; 0.02; 0.05; 0.1 ]

(* --- Throughput (Section V) -------------------------------------------------------------- *)

let test_throughput_below_send_rate () =
  let params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 () in
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "T <= B at p=%g" p)
        true
        (Throughput.throughput params p <= Full_model.send_rate params p))
    [ 0.0005; 0.01; 0.05; 0.2; 0.5 ]

let test_delivery_ratio_decreasing () =
  let params = default_params in
  let prev = ref 1.1 in
  List.iter
    (fun p ->
      let ratio = Throughput.delivery_ratio params p in
      Alcotest.(check bool) "ratio in (0, 1]" true (ratio > 0. && ratio <= 1.);
      Alcotest.(check bool) "ratio decreasing" true (ratio <= !prev);
      prev := ratio)
    [ 0.001; 0.01; 0.05; 0.1; 0.3 ]

let test_throughput_printed_formula_b2 () =
  (* Eq. (37)/(38) hardcodes b=2: W(p) = 2/3 + sqrt(4(1-p)/3p + 4/9).
     Reassemble the printed first branch verbatim and compare. *)
  let p = 0.01 in
  let w = (2. /. 3.) +. sqrt ((4. *. (1. -. p) /. (3. *. p)) +. (4. /. 9.)) in
  let q =
    Float.min 1.
      ((1. -. ((1. -. p) ** 3.))
      *. (1. +. (((1. -. p) ** 3.) *. (1. -. ((1. -. p) ** (w -. 3.)))))
      /. (1. -. ((1. -. p) ** w)))
  in
  let g = Timeouts.f p in
  let rtt = 0.3 and t0 = 2. in
  let expected =
    (((1. -. p) /. p) +. (w /. 2.) +. q)
    /. ((rtt *. (w +. 1.)) +. (q *. g *. t0 /. (1. -. p)))
  in
  let params = Params.make ~rtt ~t0 () in
  check_float ~eps:1e-9 "printed eq. (37), W(p) of eq. (38)" expected
    (Throughput.throughput params p);
  check_float ~eps:1e-9 "W(p) of eq. (38) is eq. (13) at b=2" w
    (Tdonly.e_w ~b:2 p)

let test_throughput_send_rate_shared_denominator () =
  (* Eqs. (21) and (34) share the denominator E[A] + Q E[Z^TO], so the
     ratio T/B must equal the ratio of the numerators:
     ((1-p)/p + W/2 + Q) / ((1-p)/p + W + Q/(1-p)). *)
  let params = Params.make ~rtt:0.3 ~t0:2. () in
  List.iter
    (fun p ->
      let w = Tdonly.e_w ~b:2 p in
      let q = Qhat.closed_form ~p w in
      let expected_ratio =
        (((1. -. p) /. p) +. (w /. 2.) +. q)
        /. (((1. -. p) /. p) +. w +. (q /. (1. -. p)))
      in
      check_float ~eps:1e-9
        (Printf.sprintf "numerator ratio at p=%g" p)
        expected_ratio
        (Throughput.delivery_ratio params p))
    [ 0.005; 0.05; 0.3 ]

let test_throughput_limited_branch () =
  let params = Params.make ~rtt:0.2 ~t0:2. ~wm:6 () in
  let p = 0.001 in
  Alcotest.(check bool) "window limited here" true
    (Full_model.window_limited params p);
  Alcotest.(check bool) "limited throughput positive" true
    (Throughput.throughput params p > 0.)

(* --- Markov model -------------------------------------------------------------------------- *)

let test_markov_distribution_normalized () =
  let t = Markov.solve (Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 ()) 0.02 in
  let total = Array.fold_left ( +. ) 0. (Markov.window_distribution t) in
  check_float ~eps:1e-6 "stationary distribution sums to 1" 1. total

let test_markov_states () =
  let t = Markov.solve (Params.make ~rtt:0.2 ~t0:2. ~wm:10 ()) 0.05 in
  Alcotest.(check int) "states = wm * b" 20 (Markov.states t)

let test_markov_tracks_full_model () =
  (* Fig. 12: the numerical chain and the closed form closely match. *)
  let params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 () in
  List.iter
    (fun p ->
      close ~rel:0.45
        (Printf.sprintf "markov vs closed form at p=%g" p)
        (Full_model.send_rate params p)
        (Markov.send_rate (Markov.solve params p)))
    [ 0.002; 0.01; 0.05; 0.2 ]

let test_markov_mean_window_sane () =
  let params = Params.make ~rtt:0.2 ~t0:2. ~wm:64 () in
  let t = Markov.solve params 0.01 in
  let mean = Markov.mean_window t in
  (* The chain's mean window should be of the order of E[W]. *)
  Alcotest.(check bool) "mean window near E[W]" true
    (mean > 0.3 *. Tdonly.e_w ~b:2 0.01 && mean < 2. *. Tdonly.e_w ~b:2 0.01)

let test_markov_decreasing_in_p () =
  let params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 () in
  let r1 = Markov.send_rate (Markov.solve params 0.005) in
  let r2 = Markov.send_rate (Markov.solve params 0.05) in
  let r3 = Markov.send_rate (Markov.solve params 0.3) in
  Alcotest.(check bool) "decreasing" true (r1 > r2 && r2 > r3)

let test_markov_deterministic () =
  let params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 () in
  check_float "same answer twice"
    (Markov.send_rate (Markov.solve params 0.03))
    (Markov.send_rate (Markov.solve params 0.03))

let test_markov_truncation () =
  let params = Params.make ~rtt:0.2 ~t0:2. () in
  let t = Markov.solve ~max_window:32 params 0.05 in
  Alcotest.(check int) "unlimited wm truncated" 64 (Markov.states t)

(* --- Inverse ----------------------------------------------------------------------------------- *)

let test_inverse_roundtrip () =
  let params = Params.make ~rtt:0.2 ~t0:2. ~wm:40 () in
  let model p = Full_model.send_rate params p in
  List.iter
    (fun p ->
      let rate = model p in
      match Inverse.loss_for_rate model rate with
      | Some found -> close ~rel:1e-3 (Printf.sprintf "roundtrip p=%g" p) p found
      | None -> Alcotest.failf "no solution for rate %g" rate)
    [ 0.002; 0.02; 0.2 ]

let test_inverse_out_of_range () =
  let params = Params.make ~rtt:0.2 ~t0:2. ~wm:10 () in
  Alcotest.(check bool) "unreachable rate" true
    (Inverse.loss_budget params ~rate:1e9 = None)

let test_loss_budget_monotone () =
  let params = Params.make ~rtt:0.2 ~t0:2. ~wm:40 () in
  match (Inverse.loss_budget params ~rate:10., Inverse.loss_budget params ~rate:50.) with
  | Some lo_rate_budget, Some hi_rate_budget ->
      Alcotest.(check bool) "higher target -> smaller budget" true
        (hi_rate_budget < lo_rate_budget)
  | _ -> Alcotest.fail "both budgets should exist"

(* Regression (selfcheck corpus c5-approx-plateau.case): below the
   window-limited knee eq. (33) is flat at Wm/RTT, so many losses attain the
   target.  loss_for_rate must return the largest of them — the loss
   budget — not whichever the bisection first brushed. *)
let test_inverse_plateau_largest_p () =
  let params = Params.make ~rtt:0.1 ~t0:1. ~wm:16 () in
  let target_p = 0x1.64840e1719f8p-10 in
  let model p = Approx_model.send_rate params p in
  let target = model target_p in
  check_float "target sits on the plateau" target (model (target_p /. 2.));
  match Inverse.loss_for_rate model target with
  | None -> Alcotest.fail "plateau rate should be attainable"
  | Some p_star ->
      Alcotest.(check bool) "largest attaining p" true
        (p_star >= target_p *. (1. -. 1e-6));
      Alcotest.(check bool) "still attains the target" true
        (model p_star >= target *. (1. -. 1e-9))

(* Regression (selfcheck corpus c5-full-knee.case): eq. (32) jumps upward
   where E[W_u] crosses W_m, so the set of losses attaining a rate can be
   disconnected.  loss_budget must search the unconstrained segment beyond
   the knee, not stop at the first (smaller) solution left of it. *)
let test_loss_budget_knee () =
  let params = Params.make ~b:1 ~wm:30 ~rtt:0x1.30d1c9cff2334p-7 ~t0:1. () in
  let target_p = 0x1.a0849a46a3971p-9 in
  let rate = Full_model.send_rate params target_p in
  match Inverse.loss_budget params ~rate with
  | None -> Alcotest.fail "rate attained at target_p should be attainable"
  | Some p_star ->
      Alcotest.(check bool) "budget not below the attaining loss" true
        (p_star >= target_p *. (1. -. 1e-6));
      Alcotest.(check bool) "rate still met at the budget" true
        (Full_model.send_rate params p_star >= rate *. (1. -. 1e-6))

(* Seeded sweeps over Gen.params: the cross-model ordering and the inverse
   round-trip must hold on random paths, not just the hand-picked ones. *)
let test_model_ordering_sweep () =
  for index = 0 to 39 do
    let rng = Pftk_selfcheck.Gen.rng_for ~seed:2024L ~index in
    let params = Pftk_selfcheck.Gen.params rng in
    let p = Pftk_selfcheck.Gen.loss rng in
    let cap = float_of_int params.Params.wm /. params.Params.rtt in
    let td_capped = Tdonly.send_rate_capped params p in
    List.iter
      (fun kind ->
        (* The Markov chain solves a wm x wm system; keep the sweep cheap
           and inside its well-conditioned regime. *)
        let evaluate =
          match kind with
          | Model.Markov -> params.Params.wm <= 64 && p >= 1e-3
          | _ -> true
        in
        if evaluate then begin
          let rate = Model.send_rate kind params p in
          if not (Float.is_finite rate && rate > 0.) then
            Alcotest.failf "%s not positive/finite at index %d"
              (Model.name kind) index;
          (match kind with
          | Model.Full | Model.Full_approx_q | Model.Approximate
          | Model.Throughput_model | Model.Markov ->
              if rate > cap *. (1. +. 1e-9) then
                Alcotest.failf "%s above Wm/RTT at index %d" (Model.name kind)
                  index
          | Model.Td_only | Model.Td_only_sqrt -> ());
          match kind with
          | Model.Full | Model.Full_approx_q ->
              if rate > td_capped *. (1. +. 1e-9) then
                Alcotest.failf "%s above capped TD-only at index %d"
                  (Model.name kind) index
          | _ -> ()
        end)
      Model.all;
    let full = Full_model.send_rate params p in
    let recv = Throughput.throughput params p in
    Alcotest.(check bool) "throughput <= send rate" true
      (recv <= full *. (1. +. 1e-9))
  done

let test_inverse_sweep_roundtrip () =
  for index = 0 to 39 do
    let rng = Pftk_selfcheck.Gen.rng_for ~seed:2025L ~index in
    let params = Pftk_selfcheck.Gen.params rng in
    let target_p =
      exp (Pftk_stats.Rng.float_range rng (log 1e-3) (log 0.3))
    in
    let full_rate = Full_model.send_rate params target_p in
    (match Inverse.loss_budget params ~rate:full_rate with
    | None -> Alcotest.failf "full: no budget at index %d" index
    | Some p_star ->
        if p_star < target_p *. (1. -. 1e-6) then
          Alcotest.failf "full: budget %g below attaining loss %g (index %d)"
            p_star target_p index;
        if Full_model.send_rate params p_star < full_rate *. (1. -. 1e-6) then
          Alcotest.failf "full: rate not met at budget (index %d)" index);
    let approx p = Approx_model.send_rate params p in
    match Inverse.loss_for_rate approx (approx target_p) with
    | None -> Alcotest.failf "approx: no budget at index %d" index
    | Some p_star ->
        if p_star < target_p *. (1. -. 1e-6) then
          Alcotest.failf "approx: budget %g below attaining loss %g (index %d)"
            p_star target_p index;
        if approx p_star < approx target_p *. (1. -. 1e-6) then
          Alcotest.failf "approx: rate not met at budget (index %d)" index
  done

let test_rate_in_bytes () =
  check_float "bytes conversion" 14600. (Inverse.rate_in_bytes ~mss:1460 10.)

let test_tcp_friendly_consistency () =
  let params = Params.make ~rtt:0.1 ~t0:0.4 ~wm:64 () in
  check_float "friendly = full model"
    (Full_model.send_rate params 0.02)
    (Inverse.tcp_friendly_rate params 0.02);
  check_float "simple = approximate model"
    (Approx_model.send_rate params 0.02)
    (Inverse.tcp_friendly_rate_simple params 0.02)

(* --- Sweep ---------------------------------------------------------------------------------------- *)

let test_logspace () =
  let a = Sweep.logspace ~lo:1e-3 ~hi:1. ~n:4 in
  Alcotest.(check int) "length" 4 (Array.length a);
  check_float ~eps:1e-12 "first" 1e-3 a.(0);
  check_float ~eps:1e-12 "last" 1. a.(3);
  check_float ~eps:1e-12 "geometric step" 1e-2 a.(1)

let test_linspace () =
  let a = Sweep.linspace ~lo:0. ~hi:1. ~n:5 in
  check_float "midpoint" 0.5 a.(2)

let test_series_drops_invalid () =
  let series = Sweep.series (fun p -> if p > 0.5 then nan else 1. /. p)
      [| 0.1; 0.9; 0.2 |] in
  Alcotest.(check int) "invalid dropped" 2 (List.length series)

let test_paper_grid () =
  let g = Sweep.paper_loss_grid () in
  Alcotest.(check int) "60 points" 60 (Array.length g);
  Alcotest.(check bool) "covers 1e-4 .. 0.8" true
    (g.(0) = 1e-4 && Float.abs (g.(59) -. 0.8) < 1e-9)

(* --- Model dispatch ---------------------------------------------------------------------------------- *)

let test_model_names_roundtrip () =
  List.iter
    (fun kind ->
      match Model.of_name (Model.name kind) with
      | Some back -> Alcotest.(check bool) (Model.name kind) true (back = kind)
      | None -> Alcotest.failf "name %s did not parse" (Model.name kind))
    Model.all

let test_model_aliases () =
  Alcotest.(check bool) "pftk = full" true (Model.of_name "pftk" = Some Model.Full);
  Alcotest.(check bool) "mathis = td-only" true
    (Model.of_name "mathis" = Some Model.Td_only);
  Alcotest.(check bool) "unknown" true (Model.of_name "nonsense" = None)

let test_all_models_evaluate () =
  let params = Params.make ~rtt:0.3 ~t0:2. ~wm:16 () in
  List.iter
    (fun kind ->
      let rate = Model.send_rate kind params 0.03 in
      Alcotest.(check bool)
        (Model.name kind ^ " positive and finite")
        true
        (Float.is_finite rate && rate > 0.))
    Model.all

(* --- Domain guards ------------------------------------------------------------------------------------- *)

(* Every exported entry point taking a loss probability, an RTT, or a
   timeout now validates its domain before computing (rule R4 of
   pftk-race).  Pin the exact message for one representative of each
   guard style, then sweep the rest generically. *)

let rejects msg f =
  match f () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" msg
  | exception Invalid_argument _ -> ()

let test_guard_messages () =
  Alcotest.check_raises "Full_model.send_rate p=0"
    (Invalid_argument "loss probability p=0 outside (0, 1)") (fun () ->
      ignore (Full_model.send_rate default_params 0.));
  Alcotest.check_raises "Tdonly.send_rate rtt=0"
    (Invalid_argument "Tdonly.send_rate: rtt must be positive") (fun () ->
      ignore (Tdonly.send_rate ~rtt:0. ~b:2 0.1));
  Alcotest.check_raises "Timeouts.e_zto_series t0=0"
    (Invalid_argument "Timeouts.e_zto_series: t0 must be positive") (fun () ->
      ignore (Timeouts.e_zto_series ~t0:0. 0.1))

let test_guard_sweep () =
  List.iter
    (fun (msg, f) -> rejects msg f)
    [
      ("Full_model.send_rate p=1", fun () ->
        ignore (Full_model.send_rate default_params 1.));
      ("Full_model.window_limited p=0", fun () ->
        ignore (Full_model.window_limited default_params 0.));
      ("Full_model.timeout_fraction p=1", fun () ->
        ignore (Full_model.timeout_fraction default_params 1.));
      ("Approx_model.send_rate p=0", fun () ->
        ignore (Approx_model.send_rate default_params 0.));
      ("Model.send_rate p=0", fun () ->
        ignore (Model.send_rate Model.Full default_params 0.));
      ("Qhat.h p=0", fun () -> ignore (Qhat.h ~p:0. 4));
      ("Qhat.eval p=1", fun () -> ignore (Qhat.eval Qhat.Closed ~p:1. 4.));
      ("Throughput.throughput p=0", fun () ->
        ignore (Throughput.throughput default_params 0.));
      ("Throughput.delivery_ratio p=1", fun () ->
        ignore (Throughput.delivery_ratio default_params 1.));
      ("Timeouts.e_zto p=0", fun () -> ignore (Timeouts.e_zto ~t0:2. 0.));
      ("Tdonly.e_a p=0", fun () -> ignore (Tdonly.e_a ~rtt:0.2 ~b:2 0.));
      ("Tdonly.send_rate p=1", fun () ->
        ignore (Tdonly.send_rate ~rtt:0.2 ~b:2 1.));
      ("Tdonly.send_rate_capped p=0", fun () ->
        ignore (Tdonly.send_rate_capped default_params 0.));
      ("Inverse.tcp_friendly_rate p=0", fun () ->
        ignore (Inverse.tcp_friendly_rate default_params 0.));
      ("Inverse.tcp_friendly_rate_simple p=1", fun () ->
        ignore (Inverse.tcp_friendly_rate_simple default_params 1.));
    ]

let test_tfrc_guards () =
  let c = Tfrc.Controller.create () in
  Alcotest.check_raises "Tfrc equation_rate rtt=0"
    (Invalid_argument "Tfrc.Controller.equation_rate: rtt must be positive")
    (fun () -> ignore (Tfrc.Controller.equation_rate c 0.05 0.));
  rejects "Tfrc equation_rate p=0" (fun () ->
      ignore (Tfrc.Controller.equation_rate c 0. 0.2));
  rejects "Tfrc equation_rate p=1" (fun () ->
      ignore (Tfrc.Controller.equation_rate c 1. 0.2));
  rejects "Tfrc on_rtt_sample rtt=0" (fun () ->
      Tfrc.Controller.on_rtt_sample c 0.);
  (* A valid call right at the guard boundary still works. *)
  let r = Tfrc.Controller.equation_rate c 0.05 0.2 in
  Alcotest.(check bool) "valid call finite" true (Float.is_finite r && r > 0.)

(* --- Tfrc.Loss_history oracle ---------------------------------------------------------------------------
   Hand-computed RFC 5348 weighted averages.  With the depth-8 weights
   [1,1,1,1,0.8,0.6,0.4,0.2] (sum 6), closed intervals most-recent-first
   [80;70;60;50;40;30;20;10] give
     (80+70+60+50 + 0.8*40+0.6*30+0.4*20+0.2*10) / 6 = 320/6. *)

(* Feed [interval] packets whose last one is lost: on_packet counts the
   lost packet into the interval, so this closes (or opens) an interval of
   exactly [interval] packets. *)
let feed_interval h interval =
  for _ = 1 to interval - 1 do
    Tfrc.Loss_history.on_packet h ~lost:false
  done;
  Tfrc.Loss_history.on_packet h ~lost:true

(* RFC 5348 states the TFRC throughput equation in bytes/s with the
   segment size [s] in the numerator,
     X_Bps = s / (R sqrt(2bp/3) + t_RTO (3 sqrt(3bp/8)) p (1 + 32 p^2)),
   while [Tfrc.fair_rate] is packet-normalized (s = 1 MSS, packets/s).
   Pin one worked value: R = 200 ms, p = 1%, b = 2, t_RTO = 4R (the RFC
   rule, [fair_rate]'s default [t0_factor]), s = 1460 B.  At this p the
   paper's min(1, 3 sqrt(3bp/8)) clamp in eq. (33) does not bind, so the
   RFC spelling and eq. (33) coincide and
     X_pps = 39.715442331954421,  X_Bps = 57984.545804653455 = s * X_pps.
   Multiplying the packet rate by the MSS ([Inverse.rate_in_bytes]) must
   recover the RFC's X_Bps exactly. *)
let test_tfrc_rfc5348_worked_value () =
  let rtt = 0.2 and p = 0.01 and mss = 1460 in
  let x_pps = Tfrc.fair_rate ~rtt p in
  check_float ~eps:1e-9 "packet-normalized rate (packets/s)"
    39.715442331954421 x_pps;
  let x_bps = Inverse.rate_in_bytes ~mss x_pps in
  check_float ~eps:1e-6 "RFC 5348 X_Bps (bytes/s)" 57984.545804653455 x_bps;
  check_float ~eps:0. "conversion is exactly mss * rate"
    (float_of_int mss *. x_pps) x_bps;
  (* The controller's equation_rate is the same equation. *)
  let c = Tfrc.Controller.create () in
  check_float ~eps:0. "Controller.equation_rate agrees" x_pps
    (Tfrc.Controller.equation_rate c p rtt)

let test_loss_history_uniform () =
  let h = Tfrc.Loss_history.create () in
  (* 9 events at packets 100, 200, ..., 900: 8 closed intervals of 100. *)
  for _ = 1 to 9 do
    feed_interval h 100
  done;
  Alcotest.(check int) "nine events" 9 (Tfrc.Loss_history.loss_events h);
  check_float ~eps:0. "uniform average is exact" 100.
    (Option.get (Tfrc.Loss_history.average_interval h));
  check_float ~eps:0. "rate 1/100" 0.01
    (Option.get (Tfrc.Loss_history.loss_event_rate h))

let test_loss_history_weighted () =
  let h = Tfrc.Loss_history.create () in
  (* First event opens history; then close intervals 10, 20, ..., 80 in
     chronological order, so most-recent-first the history reads
     [80;70;...;10]. *)
  feed_interval h 5;
  List.iter (feed_interval h) [ 10; 20; 30; 40; 50; 60; 70; 80 ];
  (* with-current is weaker (current = 0), so the history average wins. *)
  check_float ~eps:1e-12 "weighted average 320/6" (320. /. 6.)
    (Option.get (Tfrc.Loss_history.average_interval h));
  check_float ~eps:1e-12 "rate 6/320" (6. /. 320.)
    (Option.get (Tfrc.Loss_history.loss_event_rate h))

let test_loss_history_discounting () =
  let h = Tfrc.Loss_history.create () in
  feed_interval h 5;
  List.iter (feed_interval h) [ 10; 20; 30; 40; 50; 60; 70; 80 ];
  (* A long open interval lifts the average immediately: with current =
     1000, the with-current average is
     (1000+80+70+60 + 0.8*50+0.6*40+0.4*30+0.2*20) / 6 = 1290/6 > 320/6. *)
  for _ = 1 to 1000 do
    Tfrc.Loss_history.on_packet h ~lost:false
  done;
  check_float ~eps:1e-12 "discounted average 1290/6" (1290. /. 6.)
    (Option.get (Tfrc.Loss_history.average_interval h));
  (* A short open interval must NOT crash the estimate: after one more
     loss the closed history rules again. *)
  Tfrc.Loss_history.on_packet h ~lost:true;
  let avg = Option.get (Tfrc.Loss_history.average_interval h) in
  Alcotest.(check bool) "closing the long interval keeps average high" true
    (avg > 320. /. 6.)

let test_loss_history_vs_online_p () =
  (* The same loss pattern — one indication every 50 packets — through both
     estimators: TFRC's loss-event rate and the streaming summary's
     observed p agree exactly (8 events / 400 packets = 0.02). *)
  let h = Tfrc.Loss_history.create () in
  for _ = 1 to 8 do
    feed_interval h 50
  done;
  let tfrc_rate = Option.get (Tfrc.Loss_history.loss_event_rate h) in
  let s = Pftk_online.Summary.create () in
  for i = 1 to 400 do
    let time = float_of_int i in
    Pftk_online.Summary.push s
      {
        Pftk_trace.Event.time;
        kind =
          Pftk_trace.Event.Segment_sent
            { seq = i; retransmission = false; cwnd = 10.; flight = 5 };
      };
    if i mod 50 = 0 then
      Pftk_online.Summary.push s
        {
          Pftk_trace.Event.time;
          kind = Pftk_trace.Event.Timer_fired { backoff = 1; rto = 2. };
        }
  done;
  let online_p =
    (Pftk_online.Summary.current s).Pftk_trace.Analyzer.observed_p
  in
  check_float ~eps:0. "tfrc rate is exactly 0.02" 0.02 tfrc_rate;
  check_float ~eps:0. "online p equals tfrc rate" tfrc_rate online_p

(* --- Property tests ------------------------------------------------------------------------------------ *)

let gen_p = QCheck.float_range 1e-4 0.9

let prop_full_positive =
  QCheck.Test.make ~name:"full model positive and finite" ~count:300 gen_p
    (fun p ->
      let rate = Full_model.send_rate default_params p in
      Float.is_finite rate && rate > 0.)

let prop_full_below_tdonly =
  QCheck.Test.make ~name:"full <= TD-only" ~count:300 gen_p (fun p ->
      Full_model.send_rate default_params p
      <= Tdonly.send_rate ~rtt:0.2 ~b:2 p +. 1e-9)

let prop_throughput_below_send =
  QCheck.Test.make ~name:"T(p) <= B(p)" ~count:300 gen_p (fun p ->
      Throughput.throughput default_params p
      <= Full_model.send_rate default_params p +. 1e-9)

let prop_qhat_exact_closed =
  QCheck.Test.make ~name:"Qhat exact = closed form on integers" ~count:300
    QCheck.(pair (float_range 1e-3 0.8) (int_range 1 60))
    (fun (p, w) ->
      Float.abs (Qhat.exact ~p w -. Qhat.closed_form ~p (float_of_int w)) < 1e-7)

let prop_e_w_decreasing =
  QCheck.Test.make ~name:"E[W] decreasing in p" ~count:300
    QCheck.(pair gen_p gen_p)
    (fun (p1, p2) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      QCheck.assume (lo < hi);
      Tdonly.e_w ~b:2 lo >= Tdonly.e_w ~b:2 hi -. 1e-9)

let prop_wm_caps_rate =
  QCheck.Test.make ~name:"approximate model capped by Wm/RTT" ~count:300
    QCheck.(pair gen_p (int_range 1 64))
    (fun (p, wm) ->
      let params = Params.make ~rtt:0.2 ~t0:2. ~wm () in
      Approx_model.send_rate params p <= (float_of_int wm /. 0.2) +. 1e-9)

let prop_inverse_roundtrip =
  QCheck.Test.make ~name:"inverse roundtrip" ~count:50
    (QCheck.float_range 1e-3 0.5) (fun p ->
      let model q = Full_model.send_rate default_params q in
      match Inverse.loss_for_rate model (model p) with
      | Some found -> Float.abs (found -. p) /. p < 0.01
      | None -> false)

let props =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_full_positive;
      prop_full_below_tdonly;
      prop_throughput_below_send;
      prop_qhat_exact_closed;
      prop_e_w_decreasing;
      prop_wm_caps_rate;
      prop_inverse_roundtrip;
    ]

let () =
  Alcotest.run "pftk_core"
    [
      ( "params",
        [
          case "defaults" test_params_defaults;
          case "validation" test_params_validation;
          case "check_p" test_check_p;
          case "equal" test_params_equal;
        ] );
      ( "tdonly",
        [
          case "eq. (4) E[alpha]" test_e_alpha;
          case "eq. (13) E[W]" test_e_w_formula;
          case "eq. (14) asymptotic" test_e_w_asymptotic;
          case "eq. (11) E[X] relation" test_e_x_relation;
          case "eq. (16) E[A]" test_e_a;
          case "eq. (17) asymptotic" test_e_x_asymptotic;
          case "eq. (5) E[Y]" test_e_y;
          case "eq. (19) ratio" test_send_rate_is_ratio;
          case "eq. (20) sqrt" test_sqrt_formula;
          case "sqrt approximates exact" test_sqrt_approximates_exact;
          case "1/RTT scaling" test_rtt_scaling;
          case "window cap" test_send_rate_capped;
        ] );
      ( "qhat",
        [
          case "A(w,k) normalized" test_a_prob_normalized;
          case "C(n,m) normalized" test_c_prob_normalized;
          case "w <= 3 forces TO" test_qhat_small_windows;
          case "eq. (22) = eq. (24)" test_qhat_exact_equals_closed_form;
          case "p->0 limit 3/w" test_qhat_limit;
          case "eq. (25) approx" test_qhat_approx;
          case "bounds" test_qhat_bounds;
          case "eval dispatch" test_qhat_eval_dispatch;
          case "decreasing in w" test_qhat_decreasing_in_w;
        ] );
      ( "timeouts",
        [
          case "eq. (29) f(p)" test_f_polynomial;
          case "eq. (27) E[R]" test_e_r;
          case "L_k durations" test_sequence_durations;
          case "Irix cap 5" test_sequence_duration_irix_cap;
          case "geometric normalized" test_sequence_length_distribution;
          case "E[Z^TO] closed = series" test_e_zto_closed_form_matches_series;
          case "lower cap shortens" test_e_zto_irix_smaller;
        ] );
      ( "full-model",
        [
          case "regime switch" test_window_limited_regimes;
          case "branch continuity" test_full_model_branch_continuity;
          case "eq. (28) assembled" test_full_model_spot_value;
          case "full <= TD-only" test_full_below_td_only;
          case "agrees with TD-only at tiny p" test_full_approaches_td_only_at_small_p;
          case "decreasing in p" test_full_decreasing_in_p;
          case "II-C identities" test_limited_identities;
          case "timeout fraction" test_timeout_fraction_range;
          case "Q-hat variants close" test_q_variants_close;
        ] );
      ( "approx-model",
        [
          case "eq. (30) assembled" test_approx_formula;
          case "Wm/RTT cap" test_approx_capped;
          case "tracks full model" test_approx_tracks_full;
        ] );
      ( "throughput",
        [
          case "T <= B" test_throughput_below_send_rate;
          case "delivery ratio" test_delivery_ratio_decreasing;
          case "printed eq. (37)/(38) at b=2" test_throughput_printed_formula_b2;
          case "shared denominator identity" test_throughput_send_rate_shared_denominator;
          case "limited branch" test_throughput_limited_branch;
        ] );
      ( "markov",
        [
          case "distribution normalized" test_markov_distribution_normalized;
          case "state count" test_markov_states;
          case "tracks closed form" test_markov_tracks_full_model;
          case "mean window sane" test_markov_mean_window_sane;
          case "decreasing in p" test_markov_decreasing_in_p;
          case "deterministic" test_markov_deterministic;
          case "truncation" test_markov_truncation;
        ] );
      ( "inverse",
        [
          case "roundtrip" test_inverse_roundtrip;
          case "out of range" test_inverse_out_of_range;
          case "budget monotone" test_loss_budget_monotone;
          case "plateau returns largest p" test_inverse_plateau_largest_p;
          case "budget across the knee" test_loss_budget_knee;
          case "model ordering sweep" test_model_ordering_sweep;
          case "inverse sweep roundtrip" test_inverse_sweep_roundtrip;
          case "bytes conversion" test_rate_in_bytes;
          case "tcp-friendly aliases" test_tcp_friendly_consistency;
        ] );
      ( "sweep",
        [
          case "logspace" test_logspace;
          case "linspace" test_linspace;
          case "series drops invalid" test_series_drops_invalid;
          case "paper grid" test_paper_grid;
        ] );
      ( "model-dispatch",
        [
          case "name roundtrip" test_model_names_roundtrip;
          case "aliases" test_model_aliases;
          case "all evaluate" test_all_models_evaluate;
        ] );
      ( "domain-guards",
        [
          case "pinned messages" test_guard_messages;
          case "entry-point sweep" test_guard_sweep;
          case "tfrc controller" test_tfrc_guards;
        ] );
      ( "tfrc-oracle",
        [
          case "uniform intervals" test_loss_history_uniform;
          case "weighted history" test_loss_history_weighted;
          case "history discounting" test_loss_history_discounting;
          case "agrees with online p" test_loss_history_vs_online_p;
          case "RFC 5348 worked value" test_tfrc_rfc5348_worked_value;
        ] );
      ("properties", props);
    ]
