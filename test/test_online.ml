(* Tests for pftk_online: the streaming estimators (EWMA, sliding window,
   decaying counters), the single-pass detector/Karn ports, the recorder
   subscriber API, sink combinators, the live predictor, and — the anchor —
   the streaming/post-hoc equivalence suite over the Table II path
   catalog. *)

module Event = Pftk_trace.Event
module Recorder = Pftk_trace.Recorder
module Analyzer = Pftk_trace.Analyzer
module Serialize = Pftk_trace.Serialize
module Path_profile = Pftk_dataset.Path_profile
module Workload = Pftk_dataset.Workload
module Ewma = Pftk_online.Ewma
module Window = Pftk_online.Window
module Decay = Pftk_online.Decay
module Detector = Pftk_online.Detector
module Karn = Pftk_online.Karn
module Summary = Pftk_online.Summary
module Sink = Pftk_online.Sink
module Predictor = Pftk_online.Predictor

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let send ?(rexmit = false) seq =
  Event.Segment_sent { seq; retransmission = rexmit; cwnd = 10.; flight = 5 }

let ack n = Event.Ack_received { ack = n }
let at time kind = { Event.time; kind }

let recorder_of events =
  let r = Recorder.create () in
  List.iter (fun (time, kind) -> Recorder.record r ~time kind) events;
  r

(* --- Ewma ------------------------------------------------------------------ *)

let test_ewma_seeds_and_smooths () =
  let e = Ewma.create ~gain:0.25 () in
  Alcotest.(check (option (float 0.))) "empty" None (Ewma.value e);
  Ewma.update e 1.0;
  Alcotest.(check (option (float 0.))) "first sample exact" (Some 1.0)
    (Ewma.value e);
  Ewma.update e 2.0;
  (* 0.75 * 1 + 0.25 * 2 *)
  check_float "smoothed" 1.25 (Ewma.value_or e ~default:0.);
  Ewma.reset e;
  Alcotest.(check (option (float 0.))) "reset" None (Ewma.value e)

let test_ewma_validation () =
  Alcotest.check_raises "zero gain"
    (Invalid_argument "Ewma.create: gain outside (0, 1]") (fun () ->
      ignore (Ewma.create ~gain:0. ()))

(* --- Window ---------------------------------------------------------------- *)

let test_window_span_eviction () =
  let w = Window.create ~span:10. () in
  Window.add w ~time:0. 1.;
  Window.add w ~time:5. 3.;
  Window.add w ~time:12. 5.;
  (* t=0 sample is now outside [2, 12]. *)
  Alcotest.(check int) "two in span" 2 (Window.count w ~now:12.);
  Alcotest.(check (option (float 1e-9))) "mean of last two" (Some 4.)
    (Window.mean w ~now:12.);
  Alcotest.(check (option (float 1e-9))) "all evicted" None
    (Window.mean w ~now:100.)

let test_window_capacity_bound () =
  let w = Window.create ~capacity:4 ~span:1000. () in
  for i = 1 to 10 do
    Window.add w ~time:(float_of_int i) (float_of_int i)
  done;
  Alcotest.(check int) "ring holds capacity" 4 (Window.count w ~now:10.);
  Alcotest.(check int) "dropped the rest" 6 (Window.dropped w);
  (* Last four samples: 7+8+9+10. *)
  check_float "sum of survivors" 34. (Window.sum w ~now:10.)

let test_window_validation () =
  Alcotest.check_raises "bad span"
    (Invalid_argument "Window.create: span must be positive") (fun () ->
      ignore (Window.create ~span:0. ()))

(* --- Decay ----------------------------------------------------------------- *)

let test_decay_halflife () =
  let d = Decay.create ~tau:10. () in
  Decay.bump d ~time:0.;
  check_float "fresh" 1. (Decay.value d ~time:0.);
  check_float ~eps:1e-12 "aged one tau" (exp (-1.)) (Decay.value d ~time:10.);
  Decay.bump d ~time:10.;
  check_float ~eps:1e-12 "aged plus fresh" (exp (-1.) +. 1.)
    (Decay.value d ~time:10.)

let test_decay_ratio_estimates_p () =
  (* 1 indication per 50 packets at a steady cadence: the counter ratio
     sits near 0.02 regardless of tau. *)
  let packets = Decay.create ~tau:30. () in
  let losses = Decay.create ~tau:30. () in
  for i = 1 to 2000 do
    let time = float_of_int i *. 0.1 in
    Decay.bump packets ~time;
    if i mod 50 = 0 then Decay.bump losses ~time
  done;
  let p = Decay.value losses ~time:200. /. Decay.value packets ~time:200. in
  Alcotest.(check bool) "ratio near 1/50" true (Float.abs (p -. 0.02) < 0.005)

let test_decay_hist () =
  let h = Decay.create_hist ~tau:10. ~buckets:6 in
  Decay.observe h ~time:0. 0;
  Decay.observe h ~time:0. 5;
  check_float "total" 2. (Decay.total h ~time:0.);
  Alcotest.(check int) "buckets" 6 (Decay.buckets h);
  Alcotest.check_raises "range"
    (Invalid_argument "Decay.observe: bucket out of range") (fun () ->
      Decay.observe h ~time:0. 6)

(* --- Detector: streaming = post-hoc on crafted scenarios ------------------- *)

let drain_detector mode events =
  let emitted = ref [] in
  let d = Detector.create ~on_indication:(fun i -> emitted := i :: !emitted) mode in
  List.iter (fun (time, kind) -> Detector.push d (at time kind)) events;
  let pending = match Detector.pending d with Some i -> [ i ] | None -> [] in
  List.rev !emitted @ pending

let indication = Alcotest.testable (fun ppf i ->
    match i with
    | Analyzer.Td { at } -> Format.fprintf ppf "Td@@%g" at
    | Analyzer.To { at; timeouts; first_timer } ->
        Format.fprintf ppf "To@@%g(n=%d,t=%g)" at timeouts first_timer)
    (fun a b ->
      match (a, b) with
      | Analyzer.Td { at = a }, Analyzer.Td { at = b } -> Float.equal a b
      | ( Analyzer.To { at = a; timeouts = na; first_timer = fa },
          Analyzer.To { at = b; timeouts = nb; first_timer = fb } ) ->
          Float.equal a b && na = nb && Float.equal fa fb
      | _ -> false)

let detector_scenarios =
  [
    ( "td then timeout chain",
      [
        (0.0, send 3);
        (0.1, ack 3);
        (0.2, ack 3);
        (0.3, ack 3);
        (0.35, ack 3);
        (0.4, send ~rexmit:true 3);
        (2.5, send ~rexmit:true 3);
        (6.5, send ~rexmit:true 3);
        (6.7, ack 9);
      ] );
    ( "recovery burst",
      [
        (0.0, send 3);
        (0.1, ack 3);
        (2.0, send ~rexmit:true 3);
        (2.01, send ~rexmit:true 4);
        (2.02, send ~rexmit:true 5);
      ] );
    ( "activity resets gap",
      [ (0.0, send 3); (1.9, send 4); (2.0, send ~rexmit:true 3) ] );
    ( "open sequence at end",
      [ (0.0, send 3); (0.1, ack 3); (2.0, send ~rexmit:true 3);
        (6.0, send ~rexmit:true 3) ] );
  ]

let test_detector_infer_matches_post_hoc () =
  List.iter
    (fun (name, events) ->
      let expected =
        Analyzer.infer_indications (Recorder.events (recorder_of events))
      in
      Alcotest.(check (list indication)) name expected
        (drain_detector (Detector.infer ()) events))
    detector_scenarios

let test_detector_ground_truth_matches_post_hoc () =
  let scenarios =
    [
      ( "sequence then td",
        [
          (1., Event.Timer_fired { backoff = 1; rto = 2. });
          (3., Event.Timer_fired { backoff = 2; rto = 4. });
          (5., Event.Fast_retransmit_triggered { seq = 3 });
        ] );
      ( "backoff reset splits",
        [
          (1., Event.Timer_fired { backoff = 1; rto = 2. });
          (3., Event.Timer_fired { backoff = 2; rto = 4. });
          (10., Event.Timer_fired { backoff = 1; rto = 2. });
        ] );
    ]
  in
  List.iter
    (fun (name, events) ->
      let expected =
        Analyzer.ground_truth_indications (Recorder.events (recorder_of events))
      in
      Alcotest.(check (list indication)) name expected
        (drain_detector Detector.Ground_truth events))
    scenarios

let test_detector_prefix_invariant () =
  (* On every prefix of a mixed scenario, emitted @ pending must equal the
     post-hoc pass over that prefix. *)
  let _, events = List.hd detector_scenarios in
  let n = List.length events in
  for len = 0 to n do
    let prefix = List.filteri (fun i _ -> i < len) events in
    let expected =
      Analyzer.infer_indications (Recorder.events (recorder_of prefix))
    in
    Alcotest.(check (list indication))
      (Printf.sprintf "prefix %d" len)
      expected
      (drain_detector (Detector.infer ()) prefix)
  done

(* --- Karn: streaming = post-hoc -------------------------------------------- *)

let packet_trace ?(duration = 300.) ?(p = 0.02) seed =
  let rng = Pftk_stats.Rng.create ~seed () in
  let scenario =
    {
      Pftk_tcp.Connection.default_scenario with
      Pftk_tcp.Connection.data_loss =
        Some (Pftk_loss.Loss_process.bernoulli rng ~p);
    }
  in
  (Pftk_tcp.Connection.run ~seed ~duration scenario).Pftk_tcp.Connection.recorder

let test_karn_streaming_matches_post_hoc () =
  let recorder = packet_trace 31L in
  let expected = Analyzer.karn_rtt_samples (Recorder.events recorder) in
  let got = ref [] in
  let k = Karn.create ~on_sample:(fun s -> got := s :: !got) () in
  Recorder.iter (Karn.push k) recorder;
  Alcotest.(check bool) "has samples" true (Array.length expected > 0);
  Alcotest.(check (array (float 0.))) "same samples, same order" expected
    (Array.of_list (List.rev !got));
  Alcotest.(check int) "count" (Array.length expected) (Karn.samples k);
  (* Bounded state: matched segments are dropped as the ACK advances. *)
  Alcotest.(check bool) "outstanding bounded" true
    (Karn.outstanding k < Recorder.length recorder / 10)

(* --- Recorder subscriber API ------------------------------------------------ *)

let test_recorder_subscribers_in_order () =
  let r = Recorder.create () in
  let log = ref [] in
  Recorder.subscribe r (fun e -> log := ("a", e.Event.time) :: !log);
  Recorder.subscribe r (fun e -> log := ("b", e.Event.time) :: !log);
  Recorder.record r ~time:1. (send 0);
  Alcotest.(check (list (pair string (float 0.))))
    "subscription order" [ ("a", 1.); ("b", 1.) ] (List.rev !log);
  Alcotest.(check int) "still buffered" 1 (Recorder.length r)

let test_recorder_unbuffered () =
  let r = Recorder.create ~buffered:false () in
  let seen = ref 0 in
  Recorder.subscribe r (fun _ -> incr seen);
  for i = 0 to 99 do
    Recorder.record r ~time:(float_of_int i) (send i)
  done;
  Alcotest.(check bool) "reports unbuffered" false (Recorder.is_buffered r);
  Alcotest.(check int) "subscribers fed" 100 !seen;
  Alcotest.(check int) "events seen" 100 (Recorder.events_seen r);
  Alcotest.(check int) "packets counted" 100 (Recorder.packets_sent r);
  check_float "duration tracked" 99. (Recorder.duration r);
  Alcotest.check_raises "events raises"
    (Invalid_argument "Recorder.events: recorder is unbuffered") (fun () ->
      ignore (Recorder.events r))

let test_recorder_unbuffered_monotonic () =
  let r = Recorder.create ~buffered:false () in
  Recorder.record r ~time:1. (send 0);
  Alcotest.check_raises "backwards time"
    (Invalid_argument "Recorder.record: time went backwards") (fun () ->
      Recorder.record r ~time:0.5 (send 1))

(* --- Sink combinators ------------------------------------------------------- *)

let test_sink_tee_filter_counting () =
  let sends = ref 0 in
  let c = Sink.counter () in
  let sink =
    Sink.counting c
      (Sink.tee
         [
           Sink.filter Event.is_send (fun _ -> incr sends);
           Sink.null;
         ])
  in
  sink (at 0. (send 0));
  sink (at 1. (ack 1));
  sink (at 2. (send 1));
  Alcotest.(check int) "counter sees all" 3 (Sink.events c);
  check_float "last time" 2. (Sink.last_time c);
  Alcotest.(check int) "filter passes sends" 2 !sends

let test_sink_to_recorder_roundtrip () =
  let source = recorder_of [ (0., send 0); (0.5, ack 1); (1., send 1) ] in
  let copy = Recorder.create () in
  Recorder.iter (Sink.to_recorder copy) source;
  Alcotest.(check int) "copied" (Recorder.length source) (Recorder.length copy)

(* --- Summary: degenerate totality ------------------------------------------- *)

let finite f = Float.is_finite f

let test_summary_empty_stream () =
  List.iter
    (fun mode ->
      let s = Summary.create ~mode () in
      let c = Summary.current s in
      Alcotest.(check int) "no packets" 0 c.Analyzer.packets_sent;
      check_float "p" 0. c.Analyzer.observed_p;
      check_float "rtt" 0. c.Analyzer.avg_rtt;
      check_float "t0" 0. c.Analyzer.avg_t0;
      check_float "rate" 0. c.Analyzer.send_rate;
      Alcotest.(check bool) "all finite" true
        (finite c.Analyzer.observed_p && finite c.Analyzer.avg_rtt
        && finite c.Analyzer.avg_t0 && finite c.Analyzer.send_rate))
    [ `Ground_truth; `Infer ]

let test_summary_zero_duration () =
  (* A single event at t = 0: duration 0 must not divide. *)
  let s = Summary.create () in
  Summary.push s (at 0. (send 0));
  let c = Summary.current s in
  Alcotest.(check int) "one packet" 1 c.Analyzer.packets_sent;
  check_float "rate zero, not nan" 0. c.Analyzer.send_rate;
  Alcotest.(check bool) "finite" true (finite c.Analyzer.send_rate)

(* --- Predictor --------------------------------------------------------------- *)

let test_predictor_checkpoints () =
  let snaps = ref [] in
  let params = Pftk_core.Params.make ~rtt:0.2 ~t0:2. () in
  let pr =
    Predictor.create ~interval:10. params ~on_snapshot:(fun s ->
        snaps := s :: !snaps)
  in
  (* Sends and RTT samples at 1 Hz for 35 s, a timeout at t = 12. *)
  for i = 0 to 35 do
    let time = float_of_int i in
    Predictor.push pr (at time (send i));
    Predictor.push pr
      (at time (Event.Rtt_sample { sample = 0.2; srtt = 0.2; rto = 1. }));
    if i = 12 then
      Predictor.push pr
        (at 12.5 (Event.Timer_fired { backoff = 1; rto = 2. }));
    (* A backoff reset at t = 20 closes the first sequence, so the decayed
       estimators (which hear closed indications) see it. *)
    if i = 20 then
      Predictor.push pr
        (at 20.5 (Event.Timer_fired { backoff = 1; rto = 2. }))
  done;
  Alcotest.(check int) "three boundaries crossed" 3
    (Predictor.snapshots_emitted pr);
  let times = List.rev_map (fun s -> s.Predictor.time) !snaps in
  Alcotest.(check (list (float 0.))) "boundary times" [ 10.; 20.; 30. ] times;
  (* Before the timeout there is no loss: no prediction at t=10. *)
  (match List.rev !snaps with
  | first :: _ ->
      Alcotest.(check bool) "no prediction before loss" true
        (first.Predictor.prediction = None)
  | [] -> Alcotest.fail "no snapshots");
  let last = Predictor.snapshot pr in
  (match last.Predictor.prediction with
  | Some { Predictor.full; approx } ->
      Alcotest.(check bool) "full prediction positive" true (full > 0.);
      Alcotest.(check bool) "approx prediction positive" true (approx > 0.)
  | None -> Alcotest.fail "expected a prediction after a timeout");
  Alcotest.(check bool) "decayed histogram saw the timeout" true
    ((Predictor.decayed_backoff pr).(0) > 0.)

let test_predictor_validation () =
  let params = Pftk_core.Params.make ~rtt:0.2 ~t0:2. () in
  Alcotest.check_raises "bad interval"
    (Invalid_argument "Predictor.create: interval must be positive") (fun () ->
      ignore (Predictor.create ~interval:0. params))

let test_predictor_recorder_free_pipeline () =
  (* A long simulated transfer with no buffering anywhere: the recorder is
     unbuffered and the predictor's state is O(1). *)
  let params = Pftk_core.Params.make ~rtt:0.2 ~t0:2. () in
  let snaps = ref 0 in
  let pr = Predictor.create ~interval:100. params ~on_snapshot:(fun _ -> incr snaps) in
  let recorder = Recorder.create ~buffered:false () in
  Recorder.subscribe recorder (Predictor.sink pr);
  let rng = Pftk_stats.Rng.create ~seed:3L () in
  let loss = Pftk_loss.Loss_process.round_correlated rng ~p:0.02 in
  let result =
    Pftk_tcp.Round_sim.run ~seed:3L ~recorder ~duration:600. ~loss
      (Pftk_tcp.Round_sim.config_of_params params)
  in
  Alcotest.(check bool) "nothing buffered" false (Recorder.is_buffered recorder);
  (* Boundaries 100..500 always fire; 600 fires too when a trailing event
     lands at or past it. *)
  Alcotest.(check bool) "five or six checkpoints" true
    (!snaps = 5 || !snaps = 6);
  let summary = Predictor.summary pr in
  Alcotest.(check int) "summary agrees with simulator"
    result.Pftk_tcp.Round_sim.packets_sent summary.Analyzer.packets_sent

(* --- Equivalence suite: streaming = post-hoc on the Table II catalog -------- *)

let check_summaries ~msg (expected : Analyzer.summary) (actual : Analyzer.summary) =
  let lbl field = Printf.sprintf "%s: %s" msg field in
  check_float ~eps:0. (lbl "duration") expected.Analyzer.duration
    actual.Analyzer.duration;
  Alcotest.(check int) (lbl "packets") expected.Analyzer.packets_sent
    actual.Analyzer.packets_sent;
  Alcotest.(check int) (lbl "indications") expected.Analyzer.loss_indications
    actual.Analyzer.loss_indications;
  Alcotest.(check int) (lbl "td") expected.Analyzer.td_count
    actual.Analyzer.td_count;
  Alcotest.(check (array int)) (lbl "backoff histogram")
    expected.Analyzer.to_by_backoff actual.Analyzer.to_by_backoff;
  check_float ~eps:0. (lbl "observed p") expected.Analyzer.observed_p
    actual.Analyzer.observed_p;
  check_float ~eps:0. (lbl "send rate") expected.Analyzer.send_rate
    actual.Analyzer.send_rate;
  check_float ~eps:0. (lbl "avg rtt") expected.Analyzer.avg_rtt
    actual.Analyzer.avg_rtt;
  (* The post-hoc pass happens to sum first-timer durations in reverse
     order; same multiset, so only the last bits may differ. *)
  let rel =
    if expected.Analyzer.avg_t0 = 0. then Float.abs actual.Analyzer.avg_t0
    else
      Float.abs (actual.Analyzer.avg_t0 -. expected.Analyzer.avg_t0)
      /. expected.Analyzer.avg_t0
  in
  Alcotest.(check bool) (lbl "avg t0 within 1e-9 relative") true (rel <= 1e-9)

let stream_summary mode recorder =
  let s = Summary.create ~mode () in
  Recorder.iter (Summary.push s) recorder;
  Summary.current s

let table2_seed_trace i profile =
  let seed = Int64.of_int (4000 + i) in
  let rng = Pftk_stats.Rng.create ~seed () in
  let p = Float.max 2e-3 (Float.min 0.3 profile.Path_profile.loss_rate) in
  let loss = Pftk_loss.Loss_process.round_correlated rng ~p in
  let recorder = Recorder.create () in
  let (_ : Pftk_tcp.Round_sim.result) =
    Pftk_tcp.Round_sim.run ~seed ~recorder ~duration:300. ~loss
      (Workload.sim_config profile)
  in
  recorder

let test_equivalence_table2_catalog () =
  List.iteri
    (fun i profile ->
      let recorder = table2_seed_trace i profile in
      List.iter
        (fun (mode, tag) ->
          let expected = Analyzer.summarize ~mode recorder in
          let actual = stream_summary mode recorder in
          check_summaries
            ~msg:(Printf.sprintf "%s [%s]" (Path_profile.label profile) tag)
            expected actual)
        [ (`Ground_truth, "ground-truth"); (`Infer, "infer") ])
    Path_profile.all

let test_equivalence_packet_level () =
  (* Packet-level traces exercise the inference machinery (dup-ACK runs,
     idle gaps, Karn matching) that round-based traces cannot. *)
  List.iter
    (fun seed ->
      let recorder = packet_trace seed in
      List.iter
        (fun (mode, tag) ->
          let expected = Analyzer.summarize ~mode recorder in
          let actual = stream_summary mode recorder in
          Alcotest.(check bool)
            (Printf.sprintf "seed %Ld has indications" seed)
            true
            (expected.Analyzer.loss_indications > 0);
          check_summaries
            ~msg:(Printf.sprintf "packet seed %Ld [%s]" seed tag)
            expected actual)
        [ (`Ground_truth, "ground-truth"); (`Infer, "infer") ])
    [ 31L; 57L ]

let test_equivalence_every_prefix () =
  (* The streaming summary must match the post-hoc analyzer not just at
     stream end but at every moment: check a packet-level trace every 2000
     events, in both modes. *)
  let recorder = packet_trace ~duration:120. 77L in
  List.iter
    (fun (mode, tag) ->
      let s = Summary.create ~mode () in
      let prefix = Recorder.create () in
      let i = ref 0 in
      Recorder.iter
        (fun ({ Event.time; kind } as event) ->
          Summary.push s event;
          Recorder.record prefix ~time kind;
          incr i;
          if !i mod 2000 = 0 then
            check_summaries
              ~msg:(Printf.sprintf "prefix %d [%s]" !i tag)
              (Analyzer.summarize ~mode prefix)
              (Summary.current s))
        recorder;
      check_summaries
        ~msg:(Printf.sprintf "final [%s]" tag)
        (Analyzer.summarize ~mode prefix)
        (Summary.current s))
    [ (`Ground_truth, "ground-truth"); (`Infer, "infer") ]

let test_equivalence_streamed_from_disk () =
  (* Save, then replay through Serialize.iter_file without loading: the
     streamed summary equals the in-memory post-hoc one. *)
  let recorder = packet_trace ~duration:60. 91L in
  let path = Filename.temp_file "pftk_online" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save path recorder;
      let s = Summary.create ~mode:`Infer () in
      Serialize.iter_file path (Summary.push s);
      check_summaries ~msg:"disk replay [infer]"
        (Analyzer.summarize ~mode:`Infer recorder)
        (Summary.current s))

(* --- Convergence experiment -------------------------------------------------- *)

let test_convergence_experiment_shape () =
  (* One short run over the first profile only (generate over the full
     catalog is exercised by bench): the checkpoints are complete and the
     final summary is self-consistent. *)
  let profile = List.hd Path_profile.all in
  let snaps = ref [] in
  let pr =
    Predictor.create ~interval:50.
      (Path_profile.params profile)
      ~on_snapshot:(fun s -> snaps := s :: !snaps)
  in
  let trace =
    Workload.run_observed ~seed:5L ~duration:400. ~sink:(Predictor.sink pr)
      profile
  in
  Alcotest.(check bool) "checkpoints emitted" true (List.length !snaps >= 7);
  Alcotest.(check int) "packets agree with simulator"
    trace.Workload.result.Pftk_tcp.Round_sim.packets_sent
    (Predictor.summary pr).Analyzer.packets_sent

let () =
  Alcotest.run "pftk_online"
    [
      ( "ewma",
        [
          case "seeds and smooths" test_ewma_seeds_and_smooths;
          case "validation" test_ewma_validation;
        ] );
      ( "window",
        [
          case "span eviction" test_window_span_eviction;
          case "capacity bound" test_window_capacity_bound;
          case "validation" test_window_validation;
        ] );
      ( "decay",
        [
          case "half-life" test_decay_halflife;
          case "ratio estimates p" test_decay_ratio_estimates_p;
          case "histogram" test_decay_hist;
        ] );
      ( "detector",
        [
          case "infer matches post-hoc" test_detector_infer_matches_post_hoc;
          case "ground truth matches post-hoc"
            test_detector_ground_truth_matches_post_hoc;
          case "prefix invariant" test_detector_prefix_invariant;
        ] );
      ( "karn",
        [ slow_case "streaming matches post-hoc" test_karn_streaming_matches_post_hoc ] );
      ( "recorder",
        [
          case "subscribers in order" test_recorder_subscribers_in_order;
          case "unbuffered" test_recorder_unbuffered;
          case "unbuffered stays monotonic" test_recorder_unbuffered_monotonic;
        ] );
      ( "sink",
        [
          case "tee/filter/counting" test_sink_tee_filter_counting;
          case "to_recorder" test_sink_to_recorder_roundtrip;
        ] );
      ( "summary",
        [
          case "empty stream" test_summary_empty_stream;
          case "zero duration" test_summary_zero_duration;
        ] );
      ( "predictor",
        [
          case "checkpoints" test_predictor_checkpoints;
          case "validation" test_predictor_validation;
          slow_case "recorder-free pipeline" test_predictor_recorder_free_pipeline;
        ] );
      ( "equivalence",
        [
          slow_case "table2 catalog, both modes" test_equivalence_table2_catalog;
          slow_case "packet-level, both modes" test_equivalence_packet_level;
          slow_case "every prefix" test_equivalence_every_prefix;
          case "streamed from disk" test_equivalence_streamed_from_disk;
        ] );
      ( "convergence",
        [ slow_case "experiment shape" test_convergence_experiment_shape ] );
    ]
