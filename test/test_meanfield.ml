(* Tests for lib/meanfield: solver edge cases (single flow, invalid
   configurations, the RED min=max step profile, underutilized links),
   histogram mass conservation, the pinned stable and oscillating RED
   cells (an oscillation is a reported verdict, not a divergence), the
   netsim cross-validation tolerances at N = 2..64, byte-identical
   output across --jobs, and the pinned `pftk meanfield --help` units
   contract. *)

module Queue_law = Pftk_meanfield.Queue_law
module Window_hist = Pftk_meanfield.Window_hist
module Solver = Pftk_meanfield.Solver
module Dynamics = Pftk_meanfield.Dynamics
module Red_stability = Pftk_experiments.Red_stability
module Meanfield_xval = Pftk_experiments.Meanfield_xval

let case name f = Alcotest.test_case name `Quick f

let check_invalid name thunk =
  match thunk () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

(* --- solver edge cases ---------------------------------------------------- *)

(* One flow behind a constant drop law on an unconstrained link is the
   closed-form model itself (the degenerate limit selfcheck C12 fuzzes;
   here one pinned point). *)
let test_single_flow_matches_model () =
  let params = Pftk_core.Params.make ~b:2 ~rtt:0.1 ~t0:0.4 () in
  let p = 0.02 in
  let cfg =
    {
      (Solver.default ~flows:1 ~capacity:1e9 ~base_rtt:0.1
         ~law:(Queue_law.constant ~p))
      with
      Solver.t0_factor = 4.;
    }
  in
  let eq = Solver.solve cfg in
  let expect = Pftk_core.Full_model.send_rate params p in
  Alcotest.(check bool)
    "per-flow rate = eq. (32)" true
    (Float.abs (eq.Solver.per_flow_rate -. expect) <= 1e-9 *. expect);
  Alcotest.(check bool)
    "goodput = rate*(1-p)" true
    (Float.abs (eq.Solver.per_flow_goodput -. (expect *. (1. -. p)))
    <= 1e-9 *. expect)

let test_invalid_configs () =
  let law = Queue_law.drop_tail ~capacity:64 in
  let ok = Solver.default ~flows:4 ~capacity:100. ~base_rtt:0.1 ~law in
  check_invalid "flows=0" (fun () ->
      Solver.solve { ok with Solver.flows = 0 });
  check_invalid "capacity=0" (fun () ->
      Solver.solve { ok with Solver.capacity = 0. });
  check_invalid "capacity=nan" (fun () ->
      Solver.solve { ok with Solver.capacity = Float.nan });
  check_invalid "base_rtt=0" (fun () ->
      Solver.solve { ok with Solver.base_rtt = 0. });
  check_invalid "damping=0" (fun () ->
      Solver.solve { ok with Solver.damping = 0. });
  check_invalid "damping=1.5" (fun () ->
      Solver.solve { ok with Solver.damping = 1.5 });
  check_invalid "max_iterations=0" (fun () ->
      Solver.solve { ok with Solver.max_iterations = 0 });
  check_invalid "tolerance=0" (fun () ->
      Solver.solve { ok with Solver.tolerance = 0. });
  check_invalid "drop_tail capacity=0" (fun () ->
      Queue_law.drop_tail ~capacity:0);
  check_invalid "red min>max" (fun () ->
      Queue_law.red ~capacity:100 ~min_threshold:60. ~max_threshold:40. ());
  check_invalid "constant p=1" (fun () -> Queue_law.constant ~p:1.)

(* RED with min = max is a step profile, not a validation error. *)
let test_red_step_profile () =
  let law =
    Queue_law.red ~capacity:100 ~min_threshold:30. ~max_threshold:30. ()
  in
  Alcotest.(check (float 0.))
    "below the step" 0.
    (Queue_law.drop_prob law ~avg_queue:29.9);
  Alcotest.(check (float 0.))
    "at the step" 1.
    (Queue_law.drop_prob law ~avg_queue:30.);
  let eq =
    Solver.solve (Solver.default ~flows:50 ~capacity:1000. ~base_rtt:0.1 ~law)
  in
  Alcotest.(check bool) "p finite" true (Float.is_finite eq.Solver.p);
  Alcotest.(check bool) "queue finite" true (Float.is_finite eq.Solver.queue)

let test_underutilized_link () =
  let eq =
    Solver.solve
      (Solver.default ~flows:2 ~capacity:1e6 ~base_rtt:0.1
         ~law:(Queue_law.drop_tail ~capacity:64))
  in
  Alcotest.(check (float 0.)) "no loss" 0. eq.Solver.p;
  Alcotest.(check (float 0.)) "empty queue" 0. eq.Solver.queue;
  Alcotest.(check bool) "utilization < 1" true (eq.Solver.utilization < 1.)

(* --- histogram ------------------------------------------------------------ *)

let test_histogram_mass_conserved () =
  let h = Window_hist.create ~bins:64 ~wmax:40. () in
  Window_hist.reset h ~mean:10. ~spread:5.;
  Alcotest.(check bool)
    "unit mass after reset" true
    (Float.abs (Window_hist.total h -. 1.) <= 1e-12);
  for _ = 1 to 500 do
    Window_hist.step h ~dt:0.01 ~drift:5. ~p:0.02 ~rtt:0.1
  done;
  Alcotest.(check bool)
    "unit mass after 500 steps" true
    (Float.abs (Window_hist.total h -. 1.) <= 1e-9);
  Alcotest.(check bool)
    "mean within support" true
    (Window_hist.mean h > 0. && Window_hist.mean h <= 40.);
  check_invalid "bins=1" (fun () -> Window_hist.create ~bins:1 ~wmax:40. ());
  check_invalid "wmax=0" (fun () -> Window_hist.create ~wmax:0. ())

(* --- pinned RED stability cells ------------------------------------------- *)

(* Slow EWMA averaging on a fast link: the mean-field dynamics must
   report a bounded limit cycle — Oscillating with a finite amplitude —
   not diverge and not call it stable. *)
let test_pinned_oscillating_cell () =
  let c = Red_stability.cell ~flows:50 ~capacity:8000. ~weight:0.0005 () in
  let o = Red_stability.evaluate c in
  (match o.Red_stability.dynamics.Dynamics.verdict with
  | Dynamics.Stable -> Alcotest.fail "expected an oscillating verdict"
  | Dynamics.Oscillating { Dynamics.amplitude; period } ->
      Alcotest.(check bool)
        "amplitude in (10, 400) pkt" true
        (amplitude > 10. && amplitude < 400.);
      Alcotest.(check bool) "period finite" true (Float.is_finite period));
  Alcotest.(check bool)
    "queue excursion bounded by the buffer" true
    (o.Red_stability.dynamics.Dynamics.queue_max
    <= float_of_int o.Red_stability.cell.Red_stability.buffer +. 1e-6)

let test_pinned_stable_cell () =
  let c = Red_stability.cell ~flows:50 ~capacity:1000. ~weight:0.05 () in
  let o = Red_stability.evaluate c in
  Alcotest.(check bool) "stable" true o.Red_stability.stable;
  let d = o.Red_stability.dynamics in
  (* "Settles" means the trailing queue excursion collapses, and the
     operating point sits on the RED ramp (between min threshold and
     the buffer) — the instantaneous queue need not equal the solver's
     EWMA-averaged equilibrium. *)
  Alcotest.(check bool)
    "trailing excursion under 2 pkt" true
    (d.Dynamics.queue_max -. d.Dynamics.queue_min <= 2.);
  Alcotest.(check bool)
    "operating point on the RED ramp" true
    (d.Dynamics.mean_queue
     >= o.Red_stability.cell.Red_stability.min_threshold
    && d.Dynamics.mean_queue
       <= float_of_int o.Red_stability.cell.Red_stability.buffer)

(* --- netsim cross-validation ---------------------------------------------- *)

(* The calibrated tolerances: at the default seed the worst per-flow
   goodput relative error is ~0.12 at N=64 and under 0.06 below that;
   pinned with headroom so only a real regression trips them. *)
let test_xval_tolerances () =
  let rows = Meanfield_xval.generate () in
  Alcotest.(check int) "six scenarios" 6 (List.length rows);
  List.iter
    (fun r ->
      let flows = r.Meanfield_xval.scenario.Meanfield_xval.flows in
      let err = r.Meanfield_xval.goodput_rel_err in
      Alcotest.(check bool)
        (Printf.sprintf "N=%d rel err %.3f <= 0.2" flows err)
        true (err <= 0.2);
      if flows <= 16 then
        Alcotest.(check bool)
          (Printf.sprintf "N=%d rel err %.3f <= 0.1" flows err)
          true (err <= 0.1))
    rows

(* --- CLI: jobs identity and the pinned help ------------------------------- *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run_pftk ~out args =
  Sys.command (Printf.sprintf "../bin/pftk.exe %s 1>%s 2>/dev/null" args out)

let test_redstability_jobs_identity () =
  let c1 = run_pftk ~out:"mf_jobs1.txt" "redstability --quick --jobs 1" in
  let c4 = run_pftk ~out:"mf_jobs4.txt" "redstability --quick --jobs 4" in
  Alcotest.(check int) "--jobs 1 exits 0" 0 c1;
  Alcotest.(check int) "--jobs 4 exits 0" 0 c4;
  Alcotest.(check string)
    "byte-identical across --jobs" (read_file "mf_jobs1.txt")
    (read_file "mf_jobs4.txt")

(* `pftk meanfield --help` must state the units of the inputs (capacity
   packets/s, base RTT seconds, queue occupancy packets) and the
   stable/oscillating output contract.  Pinned like the serve and units
   help tests so a doc rewrite cannot drop them. *)
let test_meanfield_help_contract () =
  let code = run_pftk ~out:"mf_help.txt" "meanfield --help=plain" in
  Alcotest.(check int) "--help exits 0" 0 code;
  let help =
    String.concat " "
      (String.split_on_char '\n' (read_file "mf_help.txt")
      |> List.concat_map (String.split_on_char ' ')
      |> List.filter (fun w -> w <> ""))
  in
  let contains needle =
    let n = String.length needle and h = String.length help in
    let rec go i = i + n <= h && (String.sub help i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "help mentions %S" needle)
        true (contains needle))
    [
      "capacity in packets per second";
      "round-trip time in seconds";
      "queue occupancy in packets";
      "stable when the queue settles";
      "oscillating with the limit-cycle amplitude";
      "a result, not an error";
    ]

let () =
  Alcotest.run "pftk_meanfield"
    [
      ( "solver",
        [
          case "single flow matches model" test_single_flow_matches_model;
          case "invalid configs rejected" test_invalid_configs;
          case "red min=max step profile" test_red_step_profile;
          case "underutilized link" test_underutilized_link;
        ] );
      ("histogram", [ case "mass conserved" test_histogram_mass_conserved ]);
      ( "stability",
        [
          case "pinned oscillating cell" test_pinned_oscillating_cell;
          case "pinned stable cell" test_pinned_stable_cell;
        ] );
      ("cross-validation", [ case "N=2..64 tolerances" test_xval_tolerances ]);
      ( "cli",
        [
          case "redstability jobs identity" test_redstability_jobs_identity;
          case "--help units contract" test_meanfield_help_contract;
        ] );
    ]
