(* Tests for the pftk-units dimensional analyzer (tools/lint): the
   unit-expression parser, then fixtures compiled to .cmt/.cmti with the
   toolchain's own ocamlc (-bin-annot) in a throwaway root laid out
   like the workspace, fed to [Pftk_units_engine.analyze_paths].  One
   triggering fixture per rule U1-U4 (each proving a nonzero finding
   count), clean/allow variants, the propagation subtleties the engine
   promises (literals are polymorphic, [float_of_int] is opaque, * and /
   compose exponents, casts override), and an end-to-end exit-code check
   of the pftk_units CLI. *)

module Units = Pftk_units_engine
module F = Pftk_findings

let case name f = Alcotest.test_case name `Quick f
let rules fs = List.map (fun (f : F.finding) -> f.F.rule) fs

let check_rules msg expected fs =
  Alcotest.(check (list string)) msg expected (rules fs)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    Sys.mkdir d 0o755
  end

let ocamlc =
  lazy
    (let prefix =
       Filename.dirname (Filename.dirname Config.standard_library)
     in
     let candidate =
       Filename.concat (Filename.concat prefix "bin") "ocamlc"
     in
     if Sys.file_exists candidate then candidate else "ocamlc")

let fresh_root () =
  let root = Filename.temp_file "pftk_units" "" in
  Sys.remove root;
  mkdir_p root;
  root

(* Write each (relative path, contents) fixture under [root] and compile
   it from [root] so the recorded source file stays workspace-relative,
   which is what U3's lib/{core,batch,online} zone keys on.  List .mli
   fixtures before their .ml so interfaces compile first. *)
let compile_fixtures root fixtures =
  List.iter
    (fun (rel, contents) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      let oc = open_out path in
      output_string oc contents;
      close_out oc)
    fixtures;
  let cwd = Sys.getcwd () in
  Sys.chdir root;
  let failed =
    List.exists
      (fun (rel, _) ->
        Sys.command
          (Filename.quote_command (Lazy.force ocamlc)
             [
               "-bin-annot"; "-w"; "-a"; "-I"; Filename.dirname rel; "-c"; rel;
             ])
        <> 0)
      fixtures
  in
  Sys.chdir cwd;
  if failed then Alcotest.fail "fixture did not compile"

let analyze fixtures =
  let root = fresh_root () in
  compile_fixtures root fixtures;
  Units.analyze_paths [ root ]

(* --- The unit-expression parser ---------------------------------------------- *)

let test_parser () =
  let ok s = match Units.parse_unit s with Ok c -> c | Error m -> Alcotest.failf "%S rejected: %s" s m in
  let bad s = match Units.parse_unit s with Ok c -> Alcotest.failf "%S accepted as %s" s c | Error _ -> () in
  Alcotest.(check string) "canonical product order" "pkt/s" (ok "pkt / s");
  Alcotest.(check string) "prob is dimensionless" "1" (ok "prob");
  Alcotest.(check string) "1 is dimensionless" "1" (ok "1");
  Alcotest.(check string) "units cancel" "1" (ok "pkt*s/s/pkt");
  Alcotest.(check string) "exponents" "s^2" (ok "s^2");
  Alcotest.(check string) "negative exponent" "1/s^2" (ok "s^-2");
  Alcotest.(check string) "division chains" "pkt/s^2" (ok "pkt/s/s");
  Alcotest.(check string) "byte rate" "byte/s" (ok "byte/s");
  bad "furlong";
  bad "s +";
  bad "s^";
  bad "s pkt";
  match Units.parse_sig "s -> _ -> prob -> pkt/s" with
  | Ok c -> Alcotest.(check string) "signature round-trips" "s -> _ -> 1 -> pkt/s" c
  | Error m -> Alcotest.failf "signature rejected: %s" m

(* --- U1: mixed-unit arithmetic and comparison -------------------------------- *)

let test_u1_mixed_add () =
  let findings =
    analyze
      [
        ( "lib/core/u1_trigger.ml",
          "let[@pftk.unit \"s -> pkt -> 1\"] bad rtt wnd = rtt +. wnd\n" );
      ]
  in
  check_rules "adding s to pkt flagged" [ "U1" ] findings;
  match findings with
  | [ f ] ->
      Alcotest.(check bool) "finding names both units" true
        (F.contains_sub f.F.message "s"
        && F.contains_sub f.F.message "pkt"
        && Filename.basename f.F.file = "u1_trigger.ml")
  | _ -> Alcotest.fail "expected a single finding"

let test_u1_comparison () =
  check_rules "comparing s to pkt flagged" [ "U1" ]
    (analyze
       [
         ( "lib/core/u1_cmp.ml",
           "let[@pftk.unit \"s -> pkt -> _\"] bad (rtt : float) wnd =\n\
           \  rtt < wnd\n" );
       ]);
  check_rules "Float.min across units flagged" [ "U1" ]
    (analyze
       [
         ( "lib/core/u1_min.ml",
           "let[@pftk.unit \"s -> pkt -> _\"] bad rtt wnd = Float.min rtt wnd\n" );
       ])

let test_u1_dimless_transcendental () =
  check_rules "exp of a seconds value flagged" [ "U1" ]
    (analyze
       [
         ( "lib/core/u1_exp.ml",
           "let[@pftk.unit \"s -> 1\"] bad rtt = exp rtt\n" );
       ]);
  check_rules "sqrt of a dimensionless ratio passes" []
    (analyze
       [
         ( "lib/core/u1_sqrt.ml",
           "let[@pftk.unit \"s -> s -> 1\"] fine a b = sqrt (a /. b)\n" );
       ])

let test_u1_literals_polymorphic () =
  check_rules "float literals adapt to either unit" []
    (analyze
       [
         ( "lib/core/u1_lit.ml",
           "let[@pftk.unit \"s -> s\"] fine rtt = (2. *. rtt) +. 0.1\n" );
       ]);
  check_rules "float_of_int results are unit-opaque" []
    (analyze
       [
         ( "lib/core/u1_int.ml",
           "let[@pftk.unit \"s -> _ -> s\"] fine rtt b = rtt +. float_of_int b\n" );
       ])

let test_u1_allow () =
  check_rules "binding-scoped [@@lint.allow \"U1\"] suppresses" []
    (analyze
       [
         ( "lib/core/u1_allowed.ml",
           "let[@pftk.unit \"s -> pkt -> 1\"] bad rtt wnd = rtt +. wnd\n\
            [@@lint.allow \"U1\"]\n" );
       ])

(* --- U2: call sites and record fields match declarations ---------------------- *)

let test_u2_call_site () =
  let findings =
    analyze
      [
        ( "lib/core/u2_trigger.ml",
          "let[@pftk.unit \"s -> 1\"] normalize rtt = rtt /. rtt\n\
           let[@pftk.unit \"pkt -> 1\"] bad w = normalize w\n" );
      ]
  in
  check_rules "pkt passed where s declared" [ "U2" ] findings;
  match findings with
  | [ f ] ->
      Alcotest.(check bool) "finding names the callee" true
        (F.contains_sub f.F.message "normalize")
  | _ -> Alcotest.fail "expected a single finding"

let test_u2_through_interface () =
  (* The declaration lives in the .mli; the bad call site is in another
     compilation unit, resolved through the interface's annotation. *)
  check_rules "cross-module call checked against the .mli" [ "U2" ]
    (analyze
       [
         ( "lib/core/u2_iface.mli",
           "val normalize : float -> float\n\
            [@@pftk.unit \"s -> 1\"]\n" );
         ("lib/core/u2_iface.ml", "let normalize rtt = rtt /. rtt\n");
         ( "lib/core/u2_caller.ml",
           "let[@pftk.unit \"pkt -> 1\"] bad w = U2_iface.normalize w\n" );
       ])

let test_u2_record_field () =
  check_rules "record construction checked against field units" [ "U2" ]
    (analyze
       [
         ( "lib/core/u2_field.ml",
           "type t = { rtt : float [@pftk.unit \"s\"] }\n\
            let[@pftk.unit \"pkt -> _\"] bad w = { rtt = w }\n" );
       ]);
  check_rules "matching construction passes" []
    (analyze
       [
         ( "lib/core/u2_field_ok.ml",
           "type t = { rtt : float [@pftk.unit \"s\"] }\n\
            let[@pftk.unit \"s -> _\"] fine x = { rtt = x }\n\
            let[@pftk.unit \"_ -> s\"] back t = t.rtt\n" );
       ])

let test_u2_allow () =
  check_rules "binding-scoped [@@lint.allow \"U2\"] suppresses" []
    (analyze
       [
         ( "lib/core/u2_allowed.ml",
           "let[@pftk.unit \"s -> 1\"] normalize rtt = rtt /. rtt\n\
            let[@pftk.unit \"pkt -> 1\"] bad w = normalize w\n\
            [@@lint.allow \"U2\"]\n" );
       ])

(* --- U3: annotation coverage of exported float APIs --------------------------- *)

let test_u3_uncovered () =
  let findings =
    analyze
      [
        ( "lib/core/u3_trigger.mli",
          "val rate : float -> float\n" );
        ("lib/core/u3_trigger.ml", "let rate x = x\n");
      ]
  in
  check_rules "unannotated float export in the zone" [ "U3" ] findings

let test_u3_covered_and_exempt () =
  check_rules "a \"_\"-component annotation satisfies U3" []
    (analyze
       [
         ( "lib/core/u3_covered.mli",
           "val rate : float -> float\n\
            [@@pftk.unit \"_ -> _\"]\n" );
         ("lib/core/u3_covered.ml", "let rate x = x\n");
       ]);
  check_rules "non-float exports are not demanded" []
    (analyze
       [
         ("lib/core/u3_int.mli", "val count : int -> int\n");
         ("lib/core/u3_int.ml", "let count n = n\n");
       ]);
  check_rules "outside the zone nothing is demanded" []
    (analyze
       [
         ("lib/experiments/u3_outside.mli", "val rate : float -> float\n");
         ("lib/experiments/u3_outside.ml", "let rate x = x\n");
       ])

let test_u3_meanfield_zone () =
  check_rules "lib/meanfield is inside the U3 zone" [ "U3" ]
    (analyze
       [
         ("lib/meanfield/u3_mf.mli", "val occupancy : float -> float\n");
         ("lib/meanfield/u3_mf.ml", "let occupancy q = q\n");
       ])

let test_u3_field_coverage () =
  check_rules "unannotated float record field in a zone .mli" [ "U3" ]
    (analyze
       [
         ( "lib/batch/u3_field.mli",
           "type t = { rtt : float }\n" );
         ("lib/batch/u3_field.ml", "type t = { rtt : float }\n");
       ])

let test_u3_allow () =
  check_rules "val-scoped [@@lint.allow \"U3\"] suppresses" []
    (analyze
       [
         ( "lib/core/u3_allowed.mli",
           "val rate : float -> float [@@lint.allow \"U3\"]\n" );
         ("lib/core/u3_allowed.ml", "let rate x = x\n");
       ])

(* --- U4: unit-correct returns -------------------------------------------------- *)

let test_u4_wrong_result () =
  let findings =
    analyze
      [
        ( "lib/core/u4_trigger.ml",
          "let[@pftk.unit \"s -> pkt/s\"] bad rtt = rtt\n" );
      ]
  in
  check_rules "declared pkt/s, returned s" [ "U4" ] findings;
  match findings with
  | [ f ] ->
      Alcotest.(check bool) "finding spells both units" true
        (F.contains_sub f.F.message "pkt/s" && F.contains_sub f.F.message "s")
  | _ -> Alcotest.fail "expected a single finding"

let test_u4_composition () =
  check_rules "pkt divided by s composes to pkt/s" []
    (analyze
       [
         ( "lib/core/u4_div.ml",
           "let[@pftk.unit \"pkt -> s -> pkt/s\"] rate w rtt = w /. rtt\n" );
       ]);
  check_rules "inverse seconds squared" []
    (analyze
       [
         ( "lib/core/u4_sq.ml",
           "let[@pftk.unit \"s -> 1/s^2\"] curv rtt = 1. /. (rtt *. rtt)\n" );
       ]);
  check_rules "a cast overrides the inference" []
    (analyze
       [
         ( "lib/core/u4_cast.ml",
           "let[@pftk.unit \"_ -> pkt\"] lift x = (x [@pftk.unit \"pkt\"])\n" );
       ])

let test_u4_allow () =
  check_rules "binding-scoped [@@lint.allow \"U4\"] suppresses" []
    (analyze
       [
         ( "lib/core/u4_allowed.ml",
           "let[@pftk.unit \"s -> pkt/s\"] bad rtt = rtt\n\
            [@@lint.allow \"U4\"]\n" );
       ])

(* --- parse errors --------------------------------------------------------------- *)

let test_parse_findings () =
  check_rules "a malformed unit expression is a parse finding" [ "parse" ]
    (analyze
       [
         ( "lib/core/parse_bad.ml",
           "let[@pftk.unit \"furlong -> 1\"] f x = x\n" );
       ]);
  check_rules "an arity mismatch against the type is a parse finding"
    [ "parse" ]
    (analyze
       [
         ( "lib/core/parse_arity.mli",
           "val f : float -> float -> float\n\
            [@@pftk.unit \"s -> s\"]\n" );
         ("lib/core/parse_arity.ml", "let f x _ = x\n");
       ])

(* --- CLI exit codes -------------------------------------------------------------- *)

let cli = Filename.concat ".." (Filename.concat "tools/lint" "pftk_units.exe")

let run_cli exe args =
  let out = Filename.temp_file "pftk_units_cli" ".out" in
  let err = Filename.temp_file "pftk_units_cli" ".err" in
  let status =
    Sys.command (Filename.quote_command exe args ~stdout:out ~stderr:err)
  in
  let slurp path =
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    text
  in
  (status, slurp out, slurp err)

let test_cli () =
  if not (Sys.file_exists cli) then
    Alcotest.fail "pftk_units.exe not found next to the test binary";
  let dirty = fresh_root () in
  compile_fixtures dirty
    [
      ( "lib/core/cli_fixture.ml",
        "let[@pftk.unit \"s -> pkt -> 1\"] bad rtt wnd = rtt +. wnd\n" );
    ];
  let status, text, _ = run_cli cli [ dirty ] in
  Alcotest.(check int) "dirty tree exits 1" 1 status;
  Alcotest.(check bool) "report carries the rule tag" true
    (F.contains_sub text "[U1]");
  let status_json, json, _ = run_cli cli [ "--format=json"; dirty ] in
  Alcotest.(check int) "json format keeps the exit code" 1 status_json;
  Alcotest.(check bool) "json mentions the rule" true
    (F.contains_sub json {|"rule":"U1"|});
  let status_sarif, sarif, _ = run_cli cli [ "--format=sarif"; dirty ] in
  Alcotest.(check int) "sarif format keeps the exit code" 1 status_sarif;
  Alcotest.(check bool) "sarif carries the ruleId" true
    (F.contains_sub sarif {|"ruleId": "U1"|});
  let clean = fresh_root () in
  compile_fixtures clean [ ("lib/core/cli_clean.ml", "let x = 1\n") ];
  let status_clean, _, _ = run_cli cli [ clean ] in
  Alcotest.(check int) "clean tree exits 0" 0 status_clean;
  let empty = fresh_root () in
  let status_empty, _, err = run_cli cli [ empty ] in
  Alcotest.(check int) "no .cmt files is a usage error (2)" 2 status_empty;
  Alcotest.(check bool) "usage error explains itself" true
    (F.contains_sub err "no .cmt")

let () =
  Alcotest.run "pftk_units"
    [
      ("parser", [ case "unit expressions" test_parser ]);
      ( "rules",
        [
          case "U1 mixed addition" test_u1_mixed_add;
          case "U1 comparisons" test_u1_comparison;
          case "U1 transcendentals" test_u1_dimless_transcendental;
          case "U1 polymorphic literals" test_u1_literals_polymorphic;
          case "U1 lint.allow" test_u1_allow;
          case "U2 call site" test_u2_call_site;
          case "U2 through interface" test_u2_through_interface;
          case "U2 record field" test_u2_record_field;
          case "U2 lint.allow" test_u2_allow;
          case "U3 uncovered export" test_u3_uncovered;
          case "U3 covered and exempt" test_u3_covered_and_exempt;
          case "U3 meanfield zone" test_u3_meanfield_zone;
          case "U3 field coverage" test_u3_field_coverage;
          case "U3 lint.allow" test_u3_allow;
          case "U4 wrong result" test_u4_wrong_result;
          case "U4 exponent composition" test_u4_composition;
          case "U4 lint.allow" test_u4_allow;
          case "parse findings" test_parse_findings;
        ] );
      ("cli", [ case "exit codes and formats" test_cli ]);
    ]
