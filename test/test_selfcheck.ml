(* Tests for lib/selfcheck: generator determinism and domain, the corpus
   text format, the invariant catalog on seeded cases, the shrinker, the
   parallel runner's jobs-independence, replay of the pinned counterexample
   corpus under test/corpus/, and the CLI's behaviour on corrupt traces. *)

module Case = Pftk_selfcheck.Case
module Gen = Pftk_selfcheck.Gen
module Invariant = Pftk_selfcheck.Invariant
module Shrink = Pftk_selfcheck.Shrink
module Runner = Pftk_selfcheck.Runner

let case name f = Alcotest.test_case name `Quick f

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.equal (String.sub s i n) sub || scan (i + 1)) in
  scan 0

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- Gen ----------------------------------------------------------------- *)

let test_gen_deterministic () =
  let a = Gen.case ~seed:42L ~index:17 in
  let b = Gen.case ~seed:42L ~index:17 in
  Alcotest.(check bool) "same (seed, index), same case" true (Case.equal a b);
  let c = Gen.case ~seed:42L ~index:18 in
  Alcotest.(check bool) "different index, different case" false (Case.equal a c);
  let d = Gen.case ~seed:43L ~index:17 in
  Alcotest.(check bool) "different seed, different case" false (Case.equal a d)

let test_gen_domain () =
  for index = 0 to 49 do
    let c = Gen.case ~seed:1L ~index in
    Alcotest.(check bool) "p in (0,1)" true (c.Case.p > 0. && c.Case.p < 1.);
    Alcotest.(check bool) "p2 in (p,1)" true
      (c.Case.p2 > c.Case.p && c.Case.p2 < 1.);
    Alcotest.(check bool) "flows >= 1" true (c.Case.flows >= 1);
    let last = ref Float.neg_infinity in
    List.iter
      (fun e ->
        let t = e.Pftk_trace.Event.time in
        if not (Float.is_finite t) then Alcotest.fail "non-finite trace time";
        if t < !last then Alcotest.fail "trace time went backwards";
        last := t)
      c.Case.trace
  done

(* --- Case corpus format --------------------------------------------------- *)

let test_case_roundtrip () =
  for index = 0 to 19 do
    let c = Gen.case ~seed:5L ~index in
    match Case.of_string (Case.to_string c) with
    | Ok c' -> Alcotest.(check bool) "roundtrip" true (Case.equal c c')
    | Error msg -> Alcotest.failf "case %d did not parse back: %s" index msg
  done

let test_case_rejects_garbage () =
  (match Case.of_string "rtt nope\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad float accepted");
  (match Case.of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty text accepted");
  match Case.of_string "wrong 1\n" with
  | Error msg ->
      Alcotest.(check bool) "names the expected field" true
        (contains ~sub:"rtt" msg)
  | Ok _ -> Alcotest.fail "wrong field accepted"

(* --- Invariants ------------------------------------------------------------ *)

let test_invariants_hold () =
  for index = 0 to 49 do
    let c = Gen.case ~seed:42L ~index in
    List.iter
      (fun inv ->
        match Invariant.run inv c with
        | Invariant.Fail reason ->
            Alcotest.failf "%s (%s) failed on case %d: %s" inv.Invariant.id
              inv.Invariant.name index reason
        | Invariant.Pass | Invariant.Skip _ -> ())
      Invariant.all
  done

let test_invariant_find () =
  (match Invariant.find "C5" with
  | Some inv -> Alcotest.(check string) "by id" "inverse-roundtrip" inv.Invariant.name
  | None -> Alcotest.fail "C5 not found");
  (match Invariant.find "window-cap" with
  | Some inv -> Alcotest.(check string) "by name" "C1" inv.Invariant.id
  | None -> Alcotest.fail "window-cap not found");
  (match Invariant.find "c9" with
  | Some _ -> ()
  | None -> Alcotest.fail "lookup should be case-insensitive");
  match Invariant.find "C99" with
  | None -> ()
  | Some _ -> Alcotest.fail "unknown id resolved"

let test_run_catches_exceptions () =
  let boom =
    {
      Invariant.id = "X1";
      name = "boom";
      description = "always raises";
      check = (fun _ -> failwith "kaboom");
    }
  in
  match Invariant.run boom (Gen.case ~seed:1L ~index:0) with
  | Invariant.Fail reason ->
      Alcotest.(check bool) "reason carries the exception" true
        (contains ~sub:"kaboom" reason)
  | Invariant.Pass | Invariant.Skip _ -> Alcotest.fail "expected Fail"

(* --- Shrink ---------------------------------------------------------------- *)

let test_shrink_minimizes () =
  let c0 = Gen.case ~seed:9L ~index:3 in
  (* A predicate every case satisfies: the shrinker should drive the case
     to its global fixpoint (empty traces, one flow). *)
  let keep _ = true in
  let c1 = Shrink.minimize ~keep c0 in
  Alcotest.(check bool) "strictly smaller" true (Shrink.size c1 < Shrink.size c0);
  Alcotest.(check int) "trace dropped" 0 (List.length c1.Case.trace);
  Alcotest.(check int) "adversarial dropped" 0 (List.length c1.Case.adversarial);
  Alcotest.(check int) "one flow" 1 c1.Case.flows;
  (* Fixpoint: shrinking the shrunk case goes nowhere. *)
  Alcotest.(check bool) "idempotent" true
    (Case.equal c1 (Shrink.minimize ~keep c1))

let test_shrink_preserves_predicate () =
  let c0 = Gen.case ~seed:9L ~index:4 in
  let threshold = Shrink.size c0 / 2 in
  let keep c = Shrink.size c >= threshold in
  let c1 = Shrink.minimize ~keep c0 in
  Alcotest.(check bool) "still kept" true (keep c1);
  Alcotest.(check bool) "no larger" true (Shrink.size c1 <= Shrink.size c0)

let test_shrink_deterministic () =
  let c0 = Gen.case ~seed:9L ~index:5 in
  let keep c = c.Case.params.Pftk_core.Params.rtt > 0. in
  let a = Shrink.minimize ~keep c0 in
  let b = Shrink.minimize ~keep c0 in
  Alcotest.(check bool) "same fixpoint" true (Case.equal a b)

(* --- Runner ---------------------------------------------------------------- *)

let report_string config =
  Format.asprintf "%a" Runner.pp_report (Runner.run config)

let test_runner_jobs_deterministic () =
  let config jobs = { Runner.cases = 30; seed = 11L; jobs; only = None } in
  Alcotest.(check string) "jobs 1 = jobs 4" (report_string (config 1))
    (report_string (config 4))

let test_runner_only () =
  let report =
    Runner.run { Runner.cases = 5; seed = 11L; jobs = 1; only = Some "C6" }
  in
  Alcotest.(check int) "one invariant" 1 (List.length report.Runner.checked);
  Alcotest.(check bool) "ok" true (Runner.ok report);
  Alcotest.check_raises "unknown invariant"
    (Invalid_argument "Runner: unknown invariant \"C99\"") (fun () ->
      ignore (Runner.catalog ~only:(Some "C99")))

let test_counterexample_roundtrip () =
  let inv =
    match Invariant.all with i :: _ -> i | [] -> assert false
  in
  let shrunk = Gen.case ~seed:3L ~index:0 in
  let failure =
    {
      Runner.index = 7;
      invariant = inv;
      reason = "original reason";
      shrunk;
      shrunk_reason = "multi\nline reason";
    }
  in
  let text = Runner.counterexample_to_string ~seed:42L failure in
  Alcotest.(check bool) "header names the invariant" true
    (contains ~sub:inv.Invariant.id text);
  match Case.of_string text with
  | Ok c -> Alcotest.(check bool) "parses back to the case" true (Case.equal c shrunk)
  | Error msg -> Alcotest.failf "counterexample text did not parse: %s" msg

(* --- Corpus replay --------------------------------------------------------- *)

(* dune runs tests with cwd = _build/default/test; the corpus is a dep. *)
let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".case")
  |> List.sort String.compare

let test_corpus_replay () =
  let files = corpus_files () in
  Alcotest.(check bool) "at least the three pinned bugs" true
    (List.length files >= 3);
  List.iter
    (fun file ->
      match Case.of_string (read_file (Filename.concat "corpus" file)) with
      | Error msg -> Alcotest.failf "%s does not parse: %s" file msg
      | Ok c ->
          List.iter
            (fun inv ->
              match Invariant.run inv c with
              | Invariant.Fail reason ->
                  Alcotest.failf "%s regressed on %s (%s): %s" file
                    inv.Invariant.id inv.Invariant.name reason
              | Invariant.Pass | Invariant.Skip _ -> ())
            Invariant.all)
    files

(* --- CLI ------------------------------------------------------------------- *)

let test_cli_corrupt_trace () =
  let code =
    Sys.command
      "../bin/pftk.exe analyze --trace corrupt.trace 1>/dev/null 2>cli_stderr.txt"
  in
  Alcotest.(check int) "nonzero exit" 1 code;
  let stderr = read_file "cli_stderr.txt" in
  Alcotest.(check bool) "names the file" true
    (contains ~sub:"corrupt.trace" stderr);
  Alcotest.(check bool) "locates the line" true (contains ~sub:"line 3" stderr);
  Alcotest.(check bool) "quotes the offending content" true
    (contains ~sub:"0.5 bogus 1 2 3" stderr);
  Alcotest.(check bool) "no backtrace" true
    (not (contains ~sub:"Fatal error" stderr))

let test_cli_selfcheck_smoke () =
  let code =
    Sys.command
      "../bin/pftk.exe selfcheck --cases 5 --seed 42 --jobs 1 >/dev/null 2>&1"
  in
  Alcotest.(check int) "exit 0" 0 code;
  let bad =
    Sys.command
      "../bin/pftk.exe selfcheck --cases 5 --invariant C99 >/dev/null 2>&1"
  in
  Alcotest.(check int) "unknown invariant exits 2" 2 bad

let () =
  Alcotest.run "pftk_selfcheck"
    [
      ( "gen",
        [
          case "deterministic" test_gen_deterministic;
          case "domain" test_gen_domain;
        ] );
      ( "case-format",
        [
          case "roundtrip" test_case_roundtrip;
          case "rejects garbage" test_case_rejects_garbage;
        ] );
      ( "invariants",
        [
          case "hold on seeded cases" test_invariants_hold;
          case "find" test_invariant_find;
          case "run catches exceptions" test_run_catches_exceptions;
        ] );
      ( "shrink",
        [
          case "minimizes" test_shrink_minimizes;
          case "preserves predicate" test_shrink_preserves_predicate;
          case "deterministic" test_shrink_deterministic;
        ] );
      ( "runner",
        [
          case "jobs-independent" test_runner_jobs_deterministic;
          case "invariant selection" test_runner_only;
          case "counterexample format" test_counterexample_roundtrip;
        ] );
      ("corpus", [ case "replay" test_corpus_replay ]);
      ( "cli",
        [
          case "corrupt trace" test_cli_corrupt_trace;
          case "selfcheck smoke" test_cli_selfcheck_smoke;
        ] );
    ]
