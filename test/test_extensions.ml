(* Tests for the extension modules: the Cardwell short-flow latency model,
   the TFRC controller, trace serialization, and the round simulator's TCP
   flavors. *)

open Pftk_core
module Round_sim = Pftk_tcp.Round_sim
module Loss = Pftk_loss.Loss_process
module Serialize = Pftk_trace.Serialize
module Recorder = Pftk_trace.Recorder
module Event = Pftk_trace.Event

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let close ?(rel = 0.05) msg expected actual =
  let err = Float.abs (expected -. actual) /. Float.abs expected in
  if err > rel then
    Alcotest.failf "%s: expected %g within %g%%, got %g" msg expected
      (100. *. rel) actual

(* --- Short_flow ----------------------------------------------------------- *)

let params = Params.make ~rtt:0.1 ~t0:1. ~wm:32 ()

let test_ss_data_bounds () =
  (* Expected slow-start data is at least 1 packet and at most the whole
     transfer. *)
  List.iter
    (fun (p, d) ->
      let e = Short_flow.expected_slow_start_data ~p d in
      Alcotest.(check bool)
        (Printf.sprintf "bounds at p=%g d=%d" p d)
        true
        (e >= 1. && e <= float_of_int d))
    [ (0.01, 1); (0.01, 100); (0.5, 100); (0.0001, 10) ]

let test_ss_data_tiny_p_sends_everything () =
  (* With negligible loss the whole transfer fits in slow start. *)
  check_float ~eps:0.1 "all 50 packets in slow start" 50.
    (Short_flow.expected_slow_start_data ~p:1e-7 50)

let test_ss_window_growth () =
  (* gamma = 1.5 for b = 2: after sending 1 + 1.5 + 2.25 = 4.75 packets the
     window is 1.5^3 = 3.375. *)
  close ~rel:1e-6 "geometric window" 3.375
    (Short_flow.slow_start_window ~b:2 ~wm:1000 4.75)

let test_ss_window_capped () =
  check_float "cap respected" 8.
    (Short_flow.slow_start_window ~b:2 ~wm:8 1e6)

let test_ss_rounds_uncapped () =
  (* 4.75 packets need exactly 3 rounds at gamma = 1.5 from w = 1. *)
  close ~rel:1e-6 "3 rounds" 3. (Short_flow.slow_start_rounds ~b:2 ~wm:1000 4.75)

let test_ss_rounds_capped_linear_tail () =
  (* Beyond the cap the sender adds wm packets per round. *)
  let base = Short_flow.slow_start_rounds ~b:2 ~wm:8 100. in
  let more = Short_flow.slow_start_rounds ~b:2 ~wm:8 108. in
  close ~rel:1e-6 "one extra round per wm packets" 1. (more -. base)

let test_latency_monotone_in_size () =
  let prev = ref 0. in
  List.iter
    (fun packets ->
      let t = (Short_flow.expected_latency params ~p:0.02 ~packets).Short_flow.total in
      Alcotest.(check bool) "monotone in size" true (t > !prev);
      prev := t)
    [ 1; 5; 20; 100; 1000 ]

let test_latency_monotone_in_p () =
  let at p = (Short_flow.expected_latency params ~p ~packets:100).Short_flow.total in
  Alcotest.(check bool) "monotone in p" true
    (at 0.001 < at 0.01 && at 0.01 < at 0.1)

let test_latency_converges_to_bulk () =
  (* For huge transfers, effective rate -> B(p). *)
  let p = 0.02 in
  let packets = 200_000 in
  let phases = Short_flow.expected_latency params ~p ~packets in
  close ~rel:0.02 "per-packet cost tends to 1/B"
    (Full_model.send_rate params p)
    (Short_flow.mean_rate phases ~packets)

let test_latency_handshake_toggle () =
  let with_hs = Short_flow.expected_latency params ~p:0.01 ~packets:10 in
  let without = Short_flow.expected_latency ~handshake:false params ~p:0.01 ~packets:10 in
  check_float "handshake costs one RTT" params.Params.rtt
    (with_hs.Short_flow.total -. without.Short_flow.total)

let test_latency_phases_sum () =
  let ph = Short_flow.expected_latency params ~p:0.05 ~packets:40 in
  check_float ~eps:1e-9 "phases sum to total"
    (ph.Short_flow.handshake +. ph.Short_flow.slow_start +. ph.Short_flow.recovery
    +. ph.Short_flow.congestion_avoidance +. ph.Short_flow.delayed_ack)
    ph.Short_flow.total

let test_latency_validation () =
  Alcotest.check_raises "packets < 1"
    (Invalid_argument "Short_flow: packets must be >= 1") (fun () ->
      ignore (Short_flow.expected_latency params ~p:0.1 ~packets:0))

(* --- Tfrc ------------------------------------------------------------------- *)

let test_loss_history_no_event () =
  let h = Tfrc.Loss_history.create () in
  for _ = 1 to 100 do
    Tfrc.Loss_history.on_packet h ~lost:false
  done;
  Alcotest.(check bool) "no rate before first event" true
    (Tfrc.Loss_history.loss_event_rate h = None);
  Alcotest.(check int) "packets counted" 100 (Tfrc.Loss_history.packets_seen h)

let test_loss_history_periodic () =
  (* A loss every 50 packets: the estimated event rate converges to 1/50. *)
  let h = Tfrc.Loss_history.create () in
  for i = 1 to 1000 do
    Tfrc.Loss_history.on_packet h ~lost:(i mod 50 = 0)
  done;
  match Tfrc.Loss_history.loss_event_rate h with
  | Some rate -> close ~rel:0.05 "1/50" 0.02 rate
  | None -> Alcotest.fail "no estimate"

let test_loss_history_event_grouping () =
  (* Three consecutive losses within the event span are one event. *)
  let h = Tfrc.Loss_history.create () in
  Tfrc.Loss_history.set_event_span h 10;
  for i = 1 to 100 do
    Tfrc.Loss_history.on_packet h ~lost:(i >= 50 && i <= 52)
  done;
  Alcotest.(check int) "one event" 1 (Tfrc.Loss_history.loss_events h)

let test_loss_history_separate_events () =
  let h = Tfrc.Loss_history.create () in
  Tfrc.Loss_history.set_event_span h 5;
  for i = 1 to 100 do
    Tfrc.Loss_history.on_packet h ~lost:(i = 10 || i = 40 || i = 80)
  done;
  Alcotest.(check int) "three events" 3 (Tfrc.Loss_history.loss_events h)

let test_loss_history_discounting () =
  (* A long loss-free current interval must raise the average promptly. *)
  let h = Tfrc.Loss_history.create () in
  for i = 1 to 200 do
    Tfrc.Loss_history.on_packet h ~lost:(i mod 20 = 0)
  done;
  let before = Option.get (Tfrc.Loss_history.average_interval h) in
  for _ = 1 to 500 do
    Tfrc.Loss_history.on_packet h ~lost:false
  done;
  let after = Option.get (Tfrc.Loss_history.average_interval h) in
  Alcotest.(check bool) "average rose" true (after > before)

let test_controller_slow_start () =
  let c = Tfrc.Controller.create ~initial_rate:1. () in
  Tfrc.Controller.on_rtt_sample c 0.1;
  Tfrc.Controller.feedback_epoch c;
  Tfrc.Controller.feedback_epoch c;
  check_float "doubled twice" 4. (Tfrc.Controller.allowed_rate c)

let test_controller_tracks_equation () =
  (* Under steady Bernoulli loss the controller should settle within a
     small factor of eq. (33) at the true loss rate (loss-event grouping
     biases it a little high). *)
  let c = Tfrc.Controller.create () in
  let rng = Pftk_stats.Rng.create ~seed:77L () in
  let p = 0.03 and rtt = 0.1 in
  for _ = 1 to 400 do
    Tfrc.Controller.on_rtt_sample c rtt;
    let n = max 1 (int_of_float (Tfrc.Controller.allowed_rate c *. rtt)) in
    for _ = 1 to n do
      Tfrc.Controller.on_packet c ~lost:(Pftk_stats.Rng.bernoulli rng p)
    done;
    Tfrc.Controller.feedback_epoch c
  done;
  let fair =
    Approx_model.send_rate (Params.make ~rtt ~t0:(4. *. rtt) ()) p
  in
  let rate = Tfrc.Controller.allowed_rate c in
  Alcotest.(check bool)
    (Printf.sprintf "within 3x of fair (%.1f vs %.1f)" rate fair)
    true
    (rate > fair /. 3. && rate < fair *. 3.)

let test_controller_min_rate_floor () =
  let c = Tfrc.Controller.create ~initial_rate:1. ~min_rate:0.5 () in
  Tfrc.Controller.on_rtt_sample c 0.1;
  (* Saturate with losses: every packet lost. *)
  for _ = 1 to 50 do
    Tfrc.Controller.on_packet c ~lost:true;
    Tfrc.Controller.feedback_epoch c
  done;
  Alcotest.(check bool) "floor holds" true
    (Tfrc.Controller.allowed_rate c >= 0.5)

let test_controller_validation () =
  Alcotest.check_raises "bad gain"
    (Invalid_argument "Tfrc.Controller: rtt_gain outside (0, 1]") (fun () ->
      ignore (Tfrc.Controller.create ~rtt_gain:0. ()))

(* --- Serialize ----------------------------------------------------------------- *)

let sample_events =
  [
    { Event.time = 0.; kind = Event.Round_started { index = 1; window = 3.5 } };
    {
      Event.time = 0.1;
      kind =
        Event.Segment_sent
          { seq = 0; retransmission = false; cwnd = 3.5; flight = 1 };
    };
    { Event.time = 0.25; kind = Event.Ack_received { ack = 1 } };
    {
      Event.time = 0.25;
      kind = Event.Rtt_sample { sample = 0.15; srtt = 0.15; rto = 0.6 };
    };
    { Event.time = 1.; kind = Event.Timer_fired { backoff = 2; rto = 1.2 } };
    { Event.time = 1.5; kind = Event.Fast_retransmit_triggered { seq = 7 } };
    { Event.time = 2.; kind = Event.Connection_closed };
  ]

let test_serialize_roundtrip_lines () =
  List.iter
    (fun e ->
      match Serialize.event_of_line (Serialize.line_of_event e) with
      | Some back ->
          Alcotest.(check bool)
            (Serialize.line_of_event e)
            true (back = e)
      | None -> Alcotest.failf "line dropped: %s" (Serialize.line_of_event e))
    sample_events

let test_serialize_comments_skipped () =
  Alcotest.(check bool) "comment" true (Serialize.event_of_line "# hello" = None);
  Alcotest.(check bool) "blank" true (Serialize.event_of_line "   " = None)

let test_serialize_malformed () =
  Alcotest.check_raises "garbage"
    (Serialize.Error
       {
         Serialize.file = None;
         line = 0;
         reason = "malformed line \"1.0 frobnicate 3\"";
       })
    (fun () -> ignore (Serialize.event_of_line "1.0 frobnicate 3"))

let test_serialize_file_roundtrip () =
  let recorder = Recorder.create () in
  List.iter (fun { Event.time; kind } -> Recorder.record recorder ~time kind)
    sample_events;
  let path = Filename.temp_file "pftk" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save path recorder;
      let back = Serialize.load path in
      Alcotest.(check int) "same length" (Recorder.length recorder)
        (Recorder.length back);
      Alcotest.(check bool) "identical events" true
        (Recorder.events recorder = Recorder.events back))

let test_serialize_real_trace_reanalysis () =
  (* A simulated trace must analyze identically after a save/load cycle. *)
  let rng = Pftk_stats.Rng.create ~seed:5L () in
  let loss = Loss.round_correlated rng ~p:0.05 in
  let recorder = Recorder.create () in
  ignore
    (Round_sim.run ~recorder ~duration:300. ~loss Round_sim.default_config);
  let path = Filename.temp_file "pftk" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serialize.save path recorder;
      let back = Serialize.load path in
      let a = Pftk_trace.Analyzer.summarize recorder in
      let b = Pftk_trace.Analyzer.summarize back in
      Alcotest.(check bool) "summaries identical" true (a = b))

(* --- Round_sim flavors ------------------------------------------------------------ *)

let flavor_rate flavor p =
  let rng = Pftk_stats.Rng.create ~seed:31L () in
  let loss = Loss.round_correlated rng ~p in
  let config =
    {
      Round_sim.default_config with
      Round_sim.flavor;
      wm = 32;
      rtt_jitter = 0.;
      t0 = 1.5;
    }
  in
  (Round_sim.run ~seed:31L ~duration:20_000. ~loss config).Round_sim.send_rate

let test_tahoe_slower_at_low_p () =
  (* Where TDs dominate, Tahoe's full restarts cost real throughput. *)
  Alcotest.(check bool) "tahoe < reno at p=0.005" true
    (flavor_rate Round_sim.Tahoe 0.005
    < 0.95 *. flavor_rate Round_sim.Reno_slow_start 0.005)

let test_flavors_converge_at_high_p () =
  (* Where timeouts dominate, the flavors behave alike. *)
  let tahoe = flavor_rate Round_sim.Tahoe 0.2 in
  let reno = flavor_rate Round_sim.Reno_slow_start 0.2 in
  close ~rel:0.1 "tahoe ~ reno at p=0.2" reno tahoe

let test_model_reno_default () =
  Alcotest.(check bool) "default flavor" true
    (Round_sim.default_config.Round_sim.flavor = Round_sim.Model_reno)

let test_slow_start_recovers_faster_than_linear () =
  (* After a timeout, the slow-starting flavor reopens the window
     geometrically; sampled windows shortly after a reset must exceed the
     linear grower's.  Compare mean windows under identical loss. *)
  let samples flavor =
    let rng = Pftk_stats.Rng.create ~seed:32L () in
    let loss = Loss.round_correlated rng ~p:0.02 in
    let config =
      { Round_sim.default_config with Round_sim.flavor; wm = 64; rtt_jitter = 0. }
    in
    Round_sim.window_samples ~seed:32L ~rounds:2000 ~loss config
  in
  let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a) in
  Alcotest.(check bool) "slow start raises mean window" true
    (mean (samples Round_sim.Reno_slow_start) > mean (samples Round_sim.Model_reno))

(* --- Shared bottleneck / fairness -------------------------------------------------- *)

module SB = Pftk_tcp.Shared_bottleneck

let test_bottleneck_reno_share_fairly () =
  let result =
    SB.run ~seed:61L ~duration:90. [ SB.reno "a"; SB.reno "b"; SB.reno "c" ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "jain %.2f > 0.8" result.SB.jain_fairness)
    true
    (result.SB.jain_fairness > 0.8);
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.2f > 0.85" result.SB.bottleneck_utilization)
    true
    (result.SB.bottleneck_utilization > 0.85)

let test_bottleneck_tfrc_friendly () =
  let outcome =
    Pftk_experiments.Fairness.evaluate ~seed:62L
      {
        Pftk_experiments.Fairness.label = "test";
        reno_flows = 3;
        tfrc_flows = 1;
        duration = 120.;
      }
  in
  let ratio = outcome.Pftk_experiments.Fairness.friendliness_ratio in
  Alcotest.(check bool)
    (Printf.sprintf "tfrc/reno ratio %.2f within [0.3, 3]" ratio)
    true
    (ratio > 0.3 && ratio < 3.);
  Alcotest.(check bool) "overall fairness decent" true
    (outcome.Pftk_experiments.Fairness.result.SB.jain_fairness > 0.7)

let test_bottleneck_late_start () =
  let result =
    SB.run ~seed:63L ~duration:60.
      [ SB.reno "early"; { (SB.reno "late") with SB.start_time = 30. } ]
  in
  match result.SB.flows with
  | [ early; late ] ->
      Alcotest.(check bool) "late flow sent fewer packets" true
        (late.SB.packets_sent < early.SB.packets_sent)
  | _ -> Alcotest.fail "expected two flows"

let test_bottleneck_validation () =
  Alcotest.check_raises "empty flows"
    (Invalid_argument "Shared_bottleneck.run: no flows") (fun () ->
      ignore (SB.run ~duration:1. []))

let test_bottleneck_conservation () =
  (* Per flow, delivered <= sent; summed goodput <= bottleneck capacity. *)
  let bandwidth = 750_000. in
  let result =
    SB.run ~seed:64L ~bandwidth ~duration:60.
      [ SB.reno "a"; SB.reno "b"; SB.tfrc "t" ]
  in
  List.iter
    (fun (f : SB.flow_result) ->
      Alcotest.(check bool) (f.SB.name ^ " conserves") true
        (f.SB.packets_delivered <= f.SB.packets_sent))
    result.SB.flows;
  let total = List.fold_left (fun acc f -> acc +. f.SB.goodput) 0. result.SB.flows in
  Alcotest.(check bool) "total under capacity" true
    (total <= bandwidth /. 1500. *. 1.05)

(* --- Fixed point --------------------------------------------------------------------- *)

let test_fixed_point_underutilized () =
  (* One window-limited flow on a fat link: no loss, rate = Wm / base RTT. *)
  let eq =
    Fixed_point.solve ~wm:32 ~flows:1 ~capacity:10_000. ~buffer:100
      ~base_rtt:0.1 ()
  in
  check_float "no equilibrium loss" 0. eq.Fixed_point.p;
  close ~rel:0.02 "rate = Wm/RTT" 320. eq.Fixed_point.per_flow_rate;
  Alcotest.(check bool) "window limited" true eq.Fixed_point.window_limited

let test_fixed_point_saturated () =
  let eq =
    Fixed_point.solve ~flows:16 ~capacity:800. ~buffer:64 ~base_rtt:0.08 ()
  in
  Alcotest.(check bool) "positive equilibrium loss" true (eq.Fixed_point.p > 0.001);
  close ~rel:0.01 "flows fill the link" 1. eq.Fixed_point.utilization;
  close ~rel:0.01 "fair share" 50. eq.Fixed_point.per_flow_rate

let test_fixed_point_more_flows_more_loss () =
  let loss n =
    (Fixed_point.solve ~flows:n ~capacity:800. ~buffer:64 ~base_rtt:0.08 ())
      .Fixed_point.p
  in
  Alcotest.(check bool) "monotone in flows" true
    (loss 4 < loss 8 && loss 8 < loss 16 && loss 16 < loss 64)

let test_fixed_point_matches_simulation () =
  (* The headline: the analytic equilibrium matches the multi-flow
     packet-level simulation. *)
  let capacity = 1_250_000. /. 1500. in
  let eq =
    Fixed_point.solve ~wm:32 ~flows:8 ~capacity ~buffer:64 ~base_rtt:0.0426 ()
  in
  let sim =
    SB.run ~seed:72L ~duration:120. ~buffer:64 ~bandwidth:1_250_000.
      ~one_way_delay:0.02
      (List.init 8 (fun i -> SB.reno (Printf.sprintf "r%d" i)))
  in
  let mean_goodput =
    List.fold_left (fun a f -> a +. f.SB.goodput) 0. sim.SB.flows /. 8.
  in
  close ~rel:0.1 "equilibrium rate matches simulation"
    mean_goodput eq.Fixed_point.per_flow_rate

let test_required_buffer_monotone () =
  let buffer target =
    Fixed_point.required_buffer ~target_p:target ~flows:16 ~capacity:800.
      ~base_rtt:0.08 ()
  in
  (* A stricter (smaller) loss target needs a bigger buffer. *)
  Alcotest.(check bool) "monotone" true (buffer 0.002 > buffer 0.02)

(* Regression (selfcheck corpus c8-buffer-truncation.case): the old
   float-returning search truncated to a buffer whose equilibrium loss sat
   just above the target.  The contract is a round trip: solving at the
   returned buffer meets target_p, and one packet less does not. *)
let test_required_buffer_roundtrip () =
  List.iter
    (fun (flows, capacity, base_rtt, target_p) ->
      let buffer =
        Fixed_point.required_buffer ~target_p ~flows ~capacity ~base_rtt ()
      in
      let loss_at buffer =
        (Fixed_point.solve ~flows ~capacity ~buffer ~base_rtt ()).Fixed_point.p
      in
      Alcotest.(check bool)
        (Printf.sprintf "buffer %d sufficient (flows=%d)" buffer flows)
        true
        (loss_at buffer <= target_p);
      if buffer > 0 && buffer < 100_000 then
        Alcotest.(check bool)
          (Printf.sprintf "buffer %d minimal (flows=%d)" buffer flows)
          true
          (loss_at (buffer - 1) > target_p))
    [
      (31, 480., 0.035, 0.02);
      (* the pinned c8 counterexample's equilibrium, verbatim *)
      (28, 0x1.d34618a0bb68ep+11, 0x1.80528d4aca1f1p-3, 0x1.2cc8711e55722p-10);
      (16, 800., 0.08, 0.002);
      (8, 200., 0.05, 0.01);
    ]

let test_fixed_point_validation () =
  Alcotest.check_raises "flows < 1"
    (Invalid_argument "Fixed_point.solve: flows must be >= 1") (fun () ->
      ignore (Fixed_point.solve ~flows:0 ~capacity:1. ~buffer:1 ~base_rtt:0.1 ()))

(* --- Validation experiment -------------------------------------------------------------- *)

let test_validation_report () =
  let report =
    Pftk_experiments.Validation.generate ~seed:73L ~duration:200.
      ~grid:[| 0.005; 0.02; 0.08 |] ()
  in
  Alcotest.(check int) "three usable points" 3
    (List.length report.Pftk_experiments.Validation.points);
  Alcotest.(check bool) "full model decent (< 0.5)" true
    (report.Pftk_experiments.Validation.full_error < 0.5);
  Alcotest.(check bool) "full beats TD-only" true
    (report.Pftk_experiments.Validation.full_error
    < report.Pftk_experiments.Validation.td_only_error)

(* --- Generalized AIMD ------------------------------------------------------------------------ *)

let test_aimd_reduces_to_tcp () =
  (* AIMD(1, 1/2) must reproduce eq. (20) and eq. (14)'s asymptotics. *)
  List.iter
    (fun p ->
      check_float ~eps:1e-9 "eq. (20) at (1, 1/2)"
        (Tdonly.send_rate_sqrt ~rtt:0.2 ~b:2 p)
        (Aimd.send_rate Aimd.tcp ~rtt:0.2 ~b:2 p))
    [ 0.001; 0.01; 0.1 ];
  close ~rel:1e-3 "eq. (14) asymptotic at (1, 1/2)"
    (Tdonly.e_w_asymptotic ~b:2 1e-6)
    (Aimd.e_w Aimd.tcp ~b:2 1e-6 /. sqrt (1. -. 1e-6))

let test_aimd_friendly_line () =
  List.iter
    (fun beta ->
      let alpha = Aimd.tcp_friendly_alpha ~beta in
      Alcotest.(check bool)
        (Printf.sprintf "friendly at beta=%g" beta)
        true
        (Aimd.is_tcp_friendly (Aimd.make ~alpha ~beta));
      (* Friendly pairs get exactly TCP's rate. *)
      check_float ~eps:1e-9 "equal rate"
        (Aimd.send_rate Aimd.tcp ~rtt:0.1 ~b:2 0.01)
        (Aimd.send_rate (Aimd.make ~alpha ~beta) ~rtt:0.1 ~b:2 0.01))
    [ 0.125; 0.25; 0.5; 0.8 ];
  Alcotest.(check bool) "non-friendly pair detected" false
    (Aimd.is_tcp_friendly (Aimd.make ~alpha:1. ~beta:0.125))

let test_aimd_monotone_in_alpha () =
  let rate alpha =
    Aimd.send_rate (Aimd.make ~alpha ~beta:0.5) ~rtt:0.2 ~b:2 0.01
  in
  Alcotest.(check bool) "more aggressive is faster" true
    (rate 2. > rate 1. && rate 1. > rate 0.5)

let test_aimd_gentle_decrease_is_faster () =
  let rate beta =
    Aimd.send_rate (Aimd.make ~alpha:1. ~beta) ~rtt:0.2 ~b:2 0.01
  in
  Alcotest.(check bool) "smaller beta, higher rate" true (rate 0.125 > rate 0.5)

let test_aimd_matches_simulation () =
  (* Round simulator with the AIMD knobs vs the formula, timeouts
     suppressed (the formula is TD-only). *)
  List.iter
    (fun (alpha, beta) ->
      let p = 0.0005 in
      let rng = Pftk_stats.Rng.create ~seed:17L () in
      let loss = Loss.round_correlated rng ~p in
      let config =
        {
          Round_sim.default_config with
          Round_sim.aimd_increase = alpha;
          aimd_decrease = beta;
          wm = 100_000;
          rtt_jitter = 0.;
          dup_ack_threshold = 1;
        }
      in
      let r = Round_sim.run ~seed:17L ~duration:60_000. ~loss config in
      close ~rel:0.15
        (Printf.sprintf "AIMD(%g, %g) sim vs formula" alpha beta)
        (Aimd.send_rate (Aimd.make ~alpha ~beta) ~rtt:0.2 ~b:2 p)
        r.Round_sim.send_rate)
    [ (1., 0.5); (0.2, 0.125); (2., 0.8) ]

let test_aimd_validation () =
  Alcotest.check_raises "beta = 1" (Invalid_argument "Aimd.make: beta outside (0, 1)")
    (fun () -> ignore (Aimd.make ~alpha:1. ~beta:1.))

(* --- Window distribution -------------------------------------------------------------------- *)

let test_window_dist_agreement () =
  let r = Pftk_experiments.Window_dist.generate ~seed:91L ~rounds:100_000 () in
  Alcotest.(check bool)
    (Printf.sprintf "TV distance %.3f < 0.1"
       r.Pftk_experiments.Window_dist.total_variation)
    true
    (r.Pftk_experiments.Window_dist.total_variation < 0.1);
  close ~rel:0.15 "means agree" r.Pftk_experiments.Window_dist.markov_mean
    r.Pftk_experiments.Window_dist.simulated_mean

let test_window_dist_normalized () =
  let r = Pftk_experiments.Window_dist.generate ~seed:92L ~rounds:20_000 () in
  let sum a = Array.fold_left ( +. ) 0. a in
  check_float ~eps:1e-6 "markov normalized" 1.
    (sum r.Pftk_experiments.Window_dist.markov_dist);
  check_float ~eps:1e-6 "simulated normalized" 1.
    (sum r.Pftk_experiments.Window_dist.simulated_dist)

(* --- Ascii plot --------------------------------------------------------------------------- *)

let render_to_string series =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Pftk_experiments.Ascii_plot.render ppf series;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let test_ascii_plot_renders () =
  let out =
    render_to_string
      [
        {
          Pftk_experiments.Ascii_plot.glyph = '*';
          label = "a curve";
          points = [ (0.001, 100.); (0.01, 30.); (0.1, 10.) ];
        };
      ]
  in
  Alcotest.(check bool) "contains glyph" true (String.contains out '*');
  Alcotest.(check bool) "contains legend" true
    (String.length out > 0 && String.contains out 'c')

let test_ascii_plot_empty () =
  check_float "empty output for no points" 0.
    (float_of_int (String.length (render_to_string [])))

let test_ascii_plot_skips_nonpositive () =
  (* Nonpositive values must not crash a log-scale plot. *)
  let out =
    render_to_string
      [
        {
          Pftk_experiments.Ascii_plot.glyph = 'x';
          label = "mixed";
          points = [ (0., 1.); (-1., 5.); (0.1, 10.) ];
        };
      ]
  in
  Alcotest.(check bool) "renders the positive point" true
    (String.contains out 'x')

(* --- Cross traffic as the loss source --------------------------------------------------- *)

let test_model_under_cross_traffic () =
  (* The closest analog of the paper's real campaign: TCP loses packets to
     competing bursty traffic at a shared queue, and the model predicts
     its rate from the trace's own measurements. *)
  let config =
    {
      Pftk_netsim.Cross_traffic.rate = 600.;
      packet_size = 1500;
      mean_on = 0.5;
      mean_off = 1.0;
      pareto_shape = Some 1.5;
    }
  in
  let result =
    SB.run ~seed:97L ~duration:600. ~buffer:40
      [ SB.reno "tcp"; SB.cross ~config "bg" ]
  in
  let tcp = List.hd result.SB.flows in
  let bg = List.nth result.SB.flows 1 in
  Alcotest.(check bool) "tcp suffered loss" true (tcp.SB.loss_rate > 0.001);
  Alcotest.(check bool) "background also lost packets" true
    (bg.SB.loss_rate > 0.001);
  Alcotest.(check bool) "tcp still productive" true (tcp.SB.goodput > 50.)

(* --- Sensitivity --------------------------------------------------------------------- *)

let test_elasticities_signs () =
  List.iter
    (fun e ->
      Alcotest.(check bool) "RTT elasticity negative" true
        (e.Pftk_experiments.Sensitivity.wrt_rtt < 0.);
      Alcotest.(check bool) "T0 elasticity negative" true
        (e.Pftk_experiments.Sensitivity.wrt_t0 <= 0.);
      Alcotest.(check bool) "p elasticity negative" true
        (e.Pftk_experiments.Sensitivity.wrt_p < 0.);
      Alcotest.(check bool) "Wm elasticity nonnegative" true
        (e.Pftk_experiments.Sensitivity.wrt_wm >= -0.01))
    (Pftk_experiments.Sensitivity.elasticities ())

let test_elasticities_time_scaling () =
  (* B has dimension 1/time and RTT, T0 are the only time inputs, so their
     elasticities must sum to exactly -1. *)
  List.iter
    (fun e ->
      check_float ~eps:1e-3 "RTT + T0 elasticity = -1" (-1.)
        (e.Pftk_experiments.Sensitivity.wrt_rtt
        +. e.Pftk_experiments.Sensitivity.wrt_t0))
    (Pftk_experiments.Sensitivity.elasticities ())

let test_elasticity_sqrt_regime () =
  (* Unconstrained small p: d log B / d log p ~ -1/2. *)
  let rows =
    Pftk_experiments.Sensitivity.elasticities
      ~params:(Params.make ~rtt:0.2 ~t0:2. ()) ~grid:[| 1e-4 |] ()
  in
  match rows with
  | [ e ] ->
      close ~rel:0.1 "sqrt-law elasticity" (-0.5)
        e.Pftk_experiments.Sensitivity.wrt_p
  | _ -> Alcotest.fail "one row expected"

(* --- Analyzer/simulator cross-validation fuzz -------------------------------------------
   For any configuration, the ground-truth analyzer run over a recorded
   trace must reproduce the simulator's own counters exactly. *)

let test_analyzer_matches_round_sim_counters () =
  List.iter
    (fun (seed, p, wm, threshold) ->
      let rng = Pftk_stats.Rng.create ~seed () in
      let loss = Loss.episodic rng ~p ~burst_prob:0.4 ~mean_burst_rounds:2. in
      let recorder = Recorder.create () in
      let config =
        {
          Round_sim.default_config with
          Round_sim.wm;
          dup_ack_threshold = threshold;
        }
      in
      let result = Round_sim.run ~seed ~recorder ~duration:1500. ~loss config in
      let summary = Pftk_trace.Analyzer.summarize recorder in
      let label fmt = Printf.sprintf fmt (Int64.to_int seed) in
      Alcotest.(check int) (label "seed %d: packets") result.Round_sim.packets_sent
        summary.Pftk_trace.Analyzer.packets_sent;
      Alcotest.(check int) (label "seed %d: TD events") result.Round_sim.td_events
        summary.Pftk_trace.Analyzer.td_count;
      Alcotest.(check int)
        (label "seed %d: TO sequences")
        result.Round_sim.to_sequences
        (Array.fold_left ( + ) 0 summary.Pftk_trace.Analyzer.to_by_backoff);
      Alcotest.(check (array int))
        (label "seed %d: backoff buckets")
        result.Round_sim.to_by_backoff
        summary.Pftk_trace.Analyzer.to_by_backoff)
    [
      (1L, 0.01, 32, 3);
      (2L, 0.05, 8, 3);
      (3L, 0.12, 64, 2);
      (4L, 0.03, 4, 3);
      (5L, 0.08, 16, 1);
    ]

let test_analyzer_matches_reno_counters () =
  (* Packet-level: the trace's ground-truth TO firings must equal the
     sender's timeout counter, and TDs its fast-retransmit counter. *)
  List.iter
    (fun (seed, p) ->
      let rng = Pftk_stats.Rng.create ~seed () in
      let scenario =
        {
          Pftk_tcp.Connection.default_scenario with
          Pftk_tcp.Connection.data_loss = Some (Loss.bernoulli rng ~p);
        }
      in
      let result = Pftk_tcp.Connection.run ~seed ~duration:300. scenario in
      let summary =
        Pftk_trace.Analyzer.summarize result.Pftk_tcp.Connection.recorder
      in
      let firings =
        (* Total timer firings = sum over sequences of their length. *)
        Array.to_list (Pftk_trace.Recorder.events result.Pftk_tcp.Connection.recorder)
        |> List.filter (fun e ->
               match e.Event.kind with Event.Timer_fired _ -> true | _ -> false)
        |> List.length
      in
      Alcotest.(check int) "timer firings" result.Pftk_tcp.Connection.timeouts firings;
      Alcotest.(check int) "fast retransmits"
        result.Pftk_tcp.Connection.fast_retransmits
        summary.Pftk_trace.Analyzer.td_count;
      Alcotest.(check int) "packets"
        result.Pftk_tcp.Connection.packets_sent
        summary.Pftk_trace.Analyzer.packets_sent)
    [ (11L, 0.01); (12L, 0.05); (13L, 0.12) ]

(* --- Property tests ------------------------------------------------------------------ *)

let prop_latency_positive =
  QCheck.Test.make ~name:"short-flow latency positive and finite" ~count:200
    QCheck.(pair (float_range 1e-4 0.5) (int_range 1 5000))
    (fun (p, packets) ->
      let t = (Short_flow.expected_latency params ~p ~packets).Short_flow.total in
      Float.is_finite t && t > 0.)

let prop_serialize_roundtrip =
  let gen_event =
    QCheck.Gen.(
      map2
        (fun time pick -> { Event.time; kind = pick })
        (map Float.abs (float_bound_inclusive 1e6))
        (oneof
           [
             map2
               (fun seq flight ->
                 Event.Segment_sent
                   {
                     seq;
                     retransmission = seq mod 2 = 0;
                     cwnd = float_of_int flight +. 0.5;
                     flight;
                   })
               (int_bound 100000) (int_bound 100);
             map (fun ack -> Event.Ack_received { ack }) (int_bound 100000);
             map2
               (fun backoff rto ->
                 Event.Timer_fired { backoff = 1 + backoff; rto = Float.abs rto +. 0.001 })
               (int_bound 10)
               (float_bound_inclusive 100.);
             return Event.Connection_closed;
           ])
    )
  in
  QCheck.Test.make ~name:"serialize line roundtrip" ~count:300
    (QCheck.make gen_event) (fun e ->
      Serialize.event_of_line (Serialize.line_of_event e) = Some e)

let prop_timeline_goodput_conserves =
  (* The goodput bins integrate back to the number of sends inside them. *)
  QCheck.Test.make ~name:"timeline goodput conserves packets" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (QCheck.float_bound_inclusive 100.))
    (fun times ->
      let sorted = List.sort Float.compare (List.map Float.abs times) in
      let r = Recorder.create () in
      List.iter
        (fun time ->
          Recorder.record r ~time
            (Event.Segment_sent
               { seq = 0; retransmission = false; cwnd = 1.; flight = 0 }))
        sorted;
      let window = 10. in
      let bins = Pftk_trace.Timeline.goodput ~window r in
      let binned =
        List.fold_left
          (fun acc pt -> acc +. (pt.Pftk_trace.Timeline.value *. window))
          0. bins
      in
      let duration = Pftk_trace.Recorder.duration r in
      let covered =
        List.filter (fun t -> t < float_of_int (int_of_float (duration /. window)) *. window) sorted
      in
      Float.abs (binned -. float_of_int (List.length covered)) < 1e-6)

let props =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [ prop_latency_positive; prop_serialize_roundtrip; prop_timeline_goodput_conserves ]

let () =
  Alcotest.run "pftk_extensions"
    [
      ( "short-flow",
        [
          case "slow-start data bounds" test_ss_data_bounds;
          case "tiny p sends everything" test_ss_data_tiny_p_sends_everything;
          case "window growth" test_ss_window_growth;
          case "window cap" test_ss_window_capped;
          case "rounds uncapped" test_ss_rounds_uncapped;
          case "rounds capped tail" test_ss_rounds_capped_linear_tail;
          case "monotone in size" test_latency_monotone_in_size;
          case "monotone in p" test_latency_monotone_in_p;
          slow_case "converges to bulk" test_latency_converges_to_bulk;
          case "handshake toggle" test_latency_handshake_toggle;
          case "phases sum" test_latency_phases_sum;
          case "validation" test_latency_validation;
        ] );
      ( "tfrc",
        [
          case "no event, no rate" test_loss_history_no_event;
          case "periodic losses" test_loss_history_periodic;
          case "event grouping" test_loss_history_event_grouping;
          case "separate events" test_loss_history_separate_events;
          case "history discounting" test_loss_history_discounting;
          case "slow-start doubling" test_controller_slow_start;
          slow_case "tracks the equation" test_controller_tracks_equation;
          case "min-rate floor" test_controller_min_rate_floor;
          case "validation" test_controller_validation;
        ] );
      ( "serialize",
        [
          case "line roundtrip" test_serialize_roundtrip_lines;
          case "comments skipped" test_serialize_comments_skipped;
          case "malformed rejected" test_serialize_malformed;
          case "file roundtrip" test_serialize_file_roundtrip;
          slow_case "re-analysis identical" test_serialize_real_trace_reanalysis;
        ] );
      ( "bottleneck",
        [
          slow_case "reno flows share fairly" test_bottleneck_reno_share_fairly;
          slow_case "tfrc is friendly" test_bottleneck_tfrc_friendly;
          slow_case "late start" test_bottleneck_late_start;
          case "validation" test_bottleneck_validation;
          slow_case "conservation" test_bottleneck_conservation;
        ] );
      ( "fixed-point",
        [
          case "underutilized" test_fixed_point_underutilized;
          case "saturated" test_fixed_point_saturated;
          case "more flows, more loss" test_fixed_point_more_flows_more_loss;
          slow_case "matches simulation" test_fixed_point_matches_simulation;
          case "required buffer" test_required_buffer_monotone;
          case "required buffer round-trip" test_required_buffer_roundtrip;
          case "validation" test_fixed_point_validation;
        ] );
      ( "validation-experiment",
        [ slow_case "report shape" test_validation_report ] );
      ( "cross-validation",
        [
          slow_case "analyzer = round_sim counters" test_analyzer_matches_round_sim_counters;
          slow_case "analyzer = reno counters" test_analyzer_matches_reno_counters;
        ] );
      ( "aimd",
        [
          case "reduces to TCP" test_aimd_reduces_to_tcp;
          case "friendly line" test_aimd_friendly_line;
          case "monotone in alpha" test_aimd_monotone_in_alpha;
          case "gentle decrease faster" test_aimd_gentle_decrease_is_faster;
          slow_case "matches simulation" test_aimd_matches_simulation;
          case "validation" test_aimd_validation;
        ] );
      ( "window-dist",
        [
          slow_case "markov matches monte-carlo" test_window_dist_agreement;
          case "normalized" test_window_dist_normalized;
        ] );
      ( "ascii-plot",
        [
          case "renders" test_ascii_plot_renders;
          case "empty" test_ascii_plot_empty;
          case "nonpositive skipped" test_ascii_plot_skips_nonpositive;
        ] );
      ( "cross-traffic-loss",
        [ slow_case "reno vs bursty background" test_model_under_cross_traffic ] );
      ( "sensitivity",
        [
          case "signs" test_elasticities_signs;
          case "time scaling sums to -1" test_elasticities_time_scaling;
          case "sqrt regime" test_elasticity_sqrt_regime;
        ] );
      ( "flavors",
        [
          case "default is the model" test_model_reno_default;
          slow_case "tahoe slower at low p" test_tahoe_slower_at_low_p;
          slow_case "flavors converge at high p" test_flavors_converge_at_high_p;
          case "slow start reopens faster" test_slow_start_recovers_faster_than_linear;
        ] );
      ("properties", props);
    ]
