(* Benchmark harness: regenerates every table and figure of the paper (the
   same rows/series the paper reports), runs the ablation studies DESIGN.md
   calls out, then times the suite's moving parts with Bechamel.

   Run with:  dune exec bench/main.exe            (full regeneration)
              dune exec bench/main.exe -- --quick (shorter workloads)
              dune exec bench/main.exe -- --jobs 4 (worker domains)
              dune exec bench/main.exe -- --no-micro (skip Bechamel)

   Artifact output goes to stdout and is byte-identical for every --jobs
   value; per-artifact wall-clock timings go to stderr and to
   BENCH_results.json so the perf trajectory is tracked across PRs. *)

open Pftk_core
module Experiments = Pftk_experiments

let ppf = Format.std_formatter

(* --- Part 1: regenerate every table and figure ---------------------------- *)

let artifacts ~quick ~jobs =
  let seed = 2024L in
  let hour = if quick then 600. else 3600. in
  let count = if quick then 30 else 100 in
  [
    ("table1", fun () -> Experiments.Table1.print ppf);
    ( "table2",
      fun () ->
        Experiments.Table2.(print ppf (generate ~seed ~duration:hour ~jobs ()))
    );
    ("fig-window", fun () -> Experiments.Fig_window.(print ppf (generate ~seed ())));
    ( "fig7",
      fun () ->
        Experiments.Fig7.(print ppf (generate ~seed ~duration:hour ~jobs ())) );
    ( "fig8",
      fun () -> Experiments.Fig8.(print ppf (generate ~seed ~count ~jobs ())) );
    ( "fig9",
      fun () ->
        Experiments.Fig9.(
          print ppf ~title:"Fig. 9: Comparison of the models for 1-h traces"
            (generate ~seed ~duration:hour ~jobs ())) );
    ( "fig10",
      fun () -> Experiments.Fig10.(print ppf (generate ~seed ~count ~jobs ())) );
    ( "fig11",
      fun () ->
        Experiments.Fig11.(
          print ppf
            (generate ~seed
               ~wide_duration:(if quick then 900. else 3600.)
               ~modem_duration:(if quick then 1800. else 3600.)
               ~jobs ())) );
    ( "fig12",
      fun () ->
        Experiments.Fig12.(
          print ppf
            (generate ~seed
               ~mc_duration:(if quick then 5_000. else 30_000.)
               ~jobs ())) );
    ("fig13", fun () -> Experiments.Fig13.(print ppf (generate ())));
    ( "validation",
      fun () ->
        Experiments.Validation.(
          print ppf (generate ~duration:(if quick then 300. else 900.) ~jobs ()))
    );
    ( "convergence",
      fun () ->
        Experiments.Convergence.(
          print ppf (generate ~seed ~duration:hour ~jobs ())) );
    ( "window-dist",
      fun () ->
        Experiments.Window_dist.(
          print ppf
            (generate ~rounds:(if quick then 50_000 else 200_000) ~jobs ())) );
    ("sensitivity", fun () -> Experiments.Sensitivity.(print ppf (elasticities ())));
    ( "fairness",
      fun () ->
        Experiments.Fairness.(
          print ppf
            (generate
               ~scenarios:
                 (if quick then
                    [
                      {
                        label = "3 reno + 1 tfrc";
                        reno_flows = 3;
                        tfrc_flows = 1;
                        duration = 60.;
                      };
                    ]
                  else Experiments.Fairness.default_scenarios)
               ~jobs ())) );
    ( "redstability",
      fun () ->
        Experiments.Red_stability.(
          print ppf
            (generate
               ~cells:(if quick then quick_cells else default_cells)
               ~jobs ())) );
  ]

(* BENCH_results.json feeds the cross-PR perf trajectory; refuse to
   record timings for a tree that fails pftk-lint (AST rules L1-L5),
   pftk-race (typed rules R1-R4) or pftk-flow (interprocedural rules
   F1-F4) so the numbers always describe a clean tree.  Each analyzer's
   own wall-clock is recorded alongside the perf numbers — the
   analyzers are part of every `dune build`, so their cost is part of
   the edit-compile loop worth tracking.  Run from anywhere else (no
   source dirs in sight, no build artifacts), there is nothing to
   check. *)
let report_findings findings =
  let err = Format.err_formatter in
  List.iter
    (fun f -> Format.fprintf err "%a@." Pftk_lint_engine.pp_finding f)
    findings;
  findings = []

let source_roots () =
  List.filter
    (fun d -> Sys.file_exists d && Sys.is_directory d)
    [ "lib"; "bin"; "bench"; "examples" ]

let tree_is_lint_clean () =
  match source_roots () with
  | [] -> true
  | roots -> report_findings (Pftk_lint_engine.lint_dirs roots)

(* The typed analyzers read the .cmt/.cmti files dune emitted, which
   live under _build/default when the benchmark runs from the source
   root and right next to us when it runs from inside _build. *)
let cmt_roots () =
  List.concat_map
    (fun d -> [ d; Filename.concat "_build/default" d ])
    [ "lib"; "bin"; "bench"; "examples" ]
  |> List.filter (fun d -> Sys.file_exists d && Sys.is_directory d)

let tree_is_race_clean () =
  let roots = cmt_roots () in
  match Pftk_race_engine.cmt_files roots with
  | [] -> true
  | _ :: _ -> report_findings (Pftk_race_engine.analyze_paths roots)

let tree_is_flow_clean () =
  let roots = cmt_roots () in
  match Pftk_flow_engine.cmt_files roots with
  | [] -> true
  | _ :: _ -> report_findings (Pftk_flow_engine.analyze_paths roots)

let tree_is_units_clean () =
  let roots = cmt_roots () in
  match Pftk_units_engine.cmt_files roots with
  | [] -> true
  | _ :: _ -> report_findings (Pftk_units_engine.analyze_paths roots)

type analyzer_run = { an_name : string; an_clean : bool; an_seconds : float }

let analyzer_runs () =
  let timed an_name f =
    let t0 = Unix.gettimeofday () in
    let an_clean = f () in
    { an_name; an_clean; an_seconds = Unix.gettimeofday () -. t0 }
  in
  (* Evaluate all four so a dirty tree reports every finding at once. *)
  [
    timed "pftk-lint" tree_is_lint_clean;
    timed "pftk-race" tree_is_race_clean;
    timed "pftk-flow" tree_is_flow_clean;
    timed "pftk-units" tree_is_units_clean;
  ]

(* --- Streaming throughput: events/second through the online estimators ---- *)

(* One recorded trace, replayed repeatedly through each streaming consumer.
   Results go to stderr and BENCH_results.json only — throughput numbers
   are machine-dependent and must not disturb the byte-comparable
   stdout. *)
let streaming_benchmark ~quick =
  let duration = if quick then 600. else 3600. in
  let params = Params.make ~rtt:0.2 ~t0:2. () in
  let recorder = Pftk_trace.Recorder.create () in
  let rng = Pftk_stats.Rng.create ~seed:7L () in
  let loss = Pftk_loss.Loss_process.round_correlated rng ~p:0.02 in
  ignore
    (Pftk_tcp.Round_sim.run ~seed:7L ~recorder ~duration ~loss
       (Pftk_tcp.Round_sim.config_of_params params)
      : Pftk_tcp.Round_sim.result);
  let events = Pftk_trace.Recorder.length recorder in
  let rate name feed =
    let reps = ref 0 in
    let start = Unix.gettimeofday () in
    let elapsed = ref 0. in
    while !elapsed < 0.5 do
      feed ();
      incr reps;
      elapsed := Unix.gettimeofday () -. start
    done;
    (name, float_of_int (events * !reps) /. !elapsed)
  in
  [
    rate "summary-ground-truth" (fun () ->
        let s = Pftk_online.Summary.create () in
        Pftk_trace.Recorder.iter (Pftk_online.Summary.push s) recorder);
    rate "summary-infer" (fun () ->
        let s = Pftk_online.Summary.create ~mode:`Infer () in
        Pftk_trace.Recorder.iter (Pftk_online.Summary.push s) recorder);
    rate "predictor" (fun () ->
        let predictor = Pftk_online.Predictor.create params in
        Pftk_trace.Recorder.iter
          (Pftk_online.Predictor.push predictor)
          recorder);
  ]

(* --- Selfcheck throughput: generated cases/second through the catalog ----- *)

(* How fast the property harness burns through cases matters for how many a
   CI run can afford; track it alongside the other perf numbers.  The run
   itself doubles as a correctness gate: a failing invariant marks the
   record as not-ok. *)
let selfcheck_benchmark ~quick ~jobs =
  let cases = if quick then 100 else 400 in
  let t0 = Unix.gettimeofday () in
  let report =
    Pftk_selfcheck.Runner.run
      { Pftk_selfcheck.Runner.cases; seed = 42L; jobs; only = None }
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (cases, float_of_int cases /. elapsed, Pftk_selfcheck.Runner.ok report)

(* --- Batch engine throughput: evals/second through lib/batch -------------- *)

(* The same deterministic mixed workload as [pftk bench-batch]:
   ascending loss sweep (the realistic batch shape — branch-predictable),
   cycling RTTs, both window regimes.  Throughput is steady-state: the
   validation scan runs once, then repeated evaluation over the
   unchanged columns measures the pure kernels (the scan's own rate is
   reported separately). *)
let batch_workload rows =
  let c = Pftk_batch.Columns.create rows in
  let wm_cycle = [| 0.; 8.; 32.; 1024. |] in
  let denom = float_of_int (max 1 (rows - 1)) in
  for i = 0 to rows - 1 do
    let p = 10. ** (-4. +. (3. *. (float_of_int i /. denom))) in
    let rtt = 0.02 +. (0.38 *. (float_of_int (i mod 13) /. 12.)) in
    Pftk_batch.Columns.set c i ~p ~rtt ~t0:(4. *. rtt) ~wm:wm_cycle.(i mod 4)
  done;
  c

let repeat_rate ~rows f =
  let reps = ref 0 in
  let start = Unix.gettimeofday () in
  let elapsed = ref 0. in
  while !elapsed < 0.4 do
    f ();
    incr reps;
    elapsed := Unix.gettimeofday () -. start
  done;
  float_of_int rows *. float_of_int !reps /. !elapsed

type batch_model_rates = {
  bm_name : string;
  bm_scalar : float;
  bm_batch1 : float;
  bm_batchj : float;
}

type batch_rates = {
  batch_rows : int;
  scan_rate : float;
  models : batch_model_rates list;
  inverse_rows : int;
  inverse_batch : float;
  inverse_scalar : float;
}

let batch_benchmark ~quick ~jobs =
  let rows = if quick then 300_000 else 1_000_000 in
  let c = batch_workload rows in
  let out = Float.Array.make rows 0. in
  let scan_rate =
    repeat_rate ~rows (fun () ->
        c.Pftk_batch.Columns.dirty <- true;
        ignore (Pftk_batch.Scan.validate c : (unit, Pftk_batch.Scan.error) result))
  in
  let model_rates bm_name kernel =
    let bm_scalar =
      repeat_rate ~rows (fun () ->
          for i = 0 to rows - 1 do
            let p, rtt, t0, wm = Pftk_batch.Columns.row c i in
            Float.Array.set out i
              (Pftk_batch.Kernel.scalar_reference kernel ~p ~rtt ~t0 ~wm)
          done)
    in
    let bm_batch1 =
      repeat_rate ~rows (fun () ->
          Pftk_batch.Engine.run_into ~jobs:1 kernel c out)
    in
    let bm_batchj =
      repeat_rate ~rows (fun () ->
          Pftk_batch.Engine.run_into ~jobs kernel c out)
    in
    { bm_name; bm_scalar; bm_batch1; bm_batchj }
  in
  let models =
    [
      model_rates "full" (Pftk_batch.Kernel.make ~b:2 Pftk_batch.Kernel.Full);
      model_rates "full-approx-q"
        (Pftk_batch.Kernel.make ~b:2 Pftk_batch.Kernel.Full_approx_q);
      model_rates "approximate"
        (Pftk_batch.Kernel.make ~b:2 Pftk_batch.Kernel.Approximate);
      model_rates "td-only"
        (Pftk_batch.Kernel.make ~b:2 Pftk_batch.Kernel.Td_only);
      model_rates "tfrc"
        (Pftk_batch.Kernel.make ~b:2 (Pftk_batch.Kernel.Tfrc 4.));
    ]
  in
  (* The batched inverse runs ~240 model evaluations of bisection per
     row; benchmark it on a smaller column set. *)
  let inverse_rows = if quick then 2_000 else 10_000 in
  let ci = batch_workload inverse_rows in
  let rates = Float.Array.make inverse_rows 0. in
  for i = 0 to inverse_rows - 1 do
    Float.Array.set rates i (2. +. float_of_int (i mod 40))
  done;
  let iout = Float.Array.make inverse_rows 0. in
  let inverse_batch =
    repeat_rate ~rows:inverse_rows (fun () ->
        Pftk_batch.Engine.loss_budget_into ~jobs ~b:2 ci ~rates iout)
  in
  let inverse_scalar =
    repeat_rate ~rows:inverse_rows (fun () ->
        for i = 0 to inverse_rows - 1 do
          let _, rtt, t0, wm = Pftk_batch.Columns.row ci i in
          let params =
            Params.make ~b:2 ~wm:(Pftk_batch.Columns.wm_to_int wm) ~rtt ~t0 ()
          in
          let v =
            match
              Inverse.loss_budget params ~rate:(Float.Array.get rates i)
            with
            | Some p -> p
            | None -> Float.nan
          in
          Float.Array.set iout i v
        done)
  in
  { batch_rows = rows; scan_rate; models; inverse_rows; inverse_batch;
    inverse_scalar }

(* --- Fig. 10 phase profile ------------------------------------------------- *)

(* Where a measurement campaign actually spends its time: simulating the
   traces, summarizing them, or evaluating the models.  The split
   (recorded in BENCH_results.json) documents why batching the model
   evaluation cannot speed up fig10 itself — the campaign is
   simulation-bound; the batch engine pays off when models are evaluated
   in bulk without fresh simulation (grids, inversion, serving). *)
type fig10_profile = {
  simulation_seconds : float;
  summarize_seconds : float;
  model_eval_seconds : float;
}

let fig10_profile_benchmark ~quick =
  let profile =
    match Pftk_dataset.Path_profile.all with
    | p :: _ -> p
    | [] -> failwith "no path profiles"
  in
  let count = if quick then 10 else 30 in
  let t0 = Unix.gettimeofday () in
  let traces = Pftk_dataset.Workload.batch_100s ~seed:37L ~count profile in
  let t1 = Unix.gettimeofday () in
  let summaries =
    List.map
      (fun trace ->
        Pftk_trace.Analyzer.summarize trace.Pftk_dataset.Workload.recorder)
      traces
  in
  let t2 = Unix.gettimeofday () in
  List.iter
    (fun (s : Pftk_trace.Analyzer.summary) ->
      if s.Pftk_trace.Analyzer.loss_indications > 0
         && s.Pftk_trace.Analyzer.packets_sent > 0
      then begin
        let rtt =
          if s.Pftk_trace.Analyzer.avg_rtt > 0. then s.Pftk_trace.Analyzer.avg_rtt
          else profile.Pftk_dataset.Path_profile.rtt
        in
        let t0 =
          if s.Pftk_trace.Analyzer.avg_t0 > 0. then s.Pftk_trace.Analyzer.avg_t0
          else profile.Pftk_dataset.Path_profile.t0
        in
        let params =
          Params.make ~rtt ~t0 ~wm:profile.Pftk_dataset.Path_profile.wm ()
        in
        let p = s.Pftk_trace.Analyzer.observed_p in
        ignore (Full_model.send_rate params p : float);
        ignore (Approx_model.send_rate params p : float);
        ignore (Tdonly.send_rate ~rtt ~b:2 p : float)
      end)
    summaries;
  let t3 = Unix.gettimeofday () in
  {
    simulation_seconds = t1 -. t0;
    summarize_seconds = t2 -. t1;
    model_eval_seconds = t3 -. t2;
  }

(* --- Mean-field scale: equilibria for 1e5-1e6 flow populations ------------ *)

type meanfield_solve = {
  mf_flows : int;
  mf_seconds : float;
  mf_flows_per_second : float;
  mf_iterations : int;
}

(* The solver's cost is per *population*, not per flow — the point of
   the mean-field backend.  Canonical RED geometry (one-BDP buffer,
   thresholds at B/6 and B/2), 20 pkt/s of capacity per flow; min of
   five timed solves after a warm-up. *)
let meanfield_benchmark () =
  let module Solver = Pftk_meanfield.Solver in
  let module Queue_law = Pftk_meanfield.Queue_law in
  List.map
    (fun flows ->
      let capacity = 20. *. float_of_int flows in
      let buffer = int_of_float (capacity *. 0.1) in
      let bf = float_of_int buffer in
      let law =
        Queue_law.red ~capacity:buffer ~min_threshold:(bf /. 6.)
          ~max_threshold:(bf /. 2.) ()
      in
      let cfg = Solver.default ~flows ~capacity ~base_rtt:0.1 ~law in
      let eq = ref (Solver.solve cfg) in
      let best = ref Float.infinity in
      for _ = 1 to 5 do
        let t0 = Unix.gettimeofday () in
        eq := Solver.solve cfg;
        best := Float.min !best (Unix.gettimeofday () -. t0)
      done;
      {
        mf_flows = flows;
        mf_seconds = !best;
        mf_flows_per_second = float_of_int flows /. Float.max 1e-9 !best;
        mf_iterations = !eq.Solver.iterations;
      })
    [ 100_000; 1_000_000 ]

let write_timings_json ~path ~quick ~jobs ~analyzers ~streaming ~selfcheck
    ~batch ~meanfield ~fig10_profile timings =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": \"pftk-bench-v7\",\n";
  Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"quick\": %b,\n" quick;
  (* v5: the wall-clock of the analyzers gating this very file; they
     run on every `dune build`, so their cost is edit-loop cost.
     v6: pftk-units joins the gate and the timing table.
     v7: the mean-field solver's flows/s at 1e5 and 1e6 flows, and the
     redstability sweep joins the Part-1 artifacts. *)
  Printf.fprintf oc "  \"analyzers\": [\n";
  let na = List.length analyzers in
  List.iteri
    (fun i a ->
      Printf.fprintf oc "    { \"name\": %S, \"seconds\": %.6f }%s\n" a.an_name
        a.an_seconds
        (if i = na - 1 then "" else ","))
    analyzers;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"artifacts\": [\n";
  let n = List.length timings in
  List.iteri
    (fun i (name, seconds) ->
      Printf.fprintf oc "    { \"name\": %S, \"seconds\": %.6f }%s\n" name
        seconds
        (if i = n - 1 then "" else ","))
    timings;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"streaming\": [\n";
  let n = List.length streaming in
  List.iteri
    (fun i (name, events_per_second) ->
      Printf.fprintf oc "    { \"name\": %S, \"events_per_second\": %.0f }%s\n"
        name events_per_second
        (if i = n - 1 then "" else ","))
    streaming;
  Printf.fprintf oc "  ],\n";
  let cases, cases_per_second, ok = selfcheck in
  Printf.fprintf oc
    "  \"selfcheck\": { \"cases\": %d, \"cases_per_second\": %.0f, \"ok\": %b \
     },\n"
    cases cases_per_second ok;
  Printf.fprintf oc "  \"batch\": {\n";
  Printf.fprintf oc "    \"rows\": %d,\n" batch.batch_rows;
  Printf.fprintf oc "    \"target_evals_per_second\": 1e8,\n";
  Printf.fprintf oc "    \"scan_rows_per_second\": %.0f,\n" batch.scan_rate;
  Printf.fprintf oc "    \"models\": [\n";
  let nm = List.length batch.models in
  List.iteri
    (fun i m ->
      Printf.fprintf oc
        "      { \"name\": %S, \"scalar_evals_per_second\": %.0f, \
         \"batch_evals_per_second\": %.0f, \
         \"batch_jobs_evals_per_second\": %.0f, \"speedup\": %.2f }%s\n"
        m.bm_name m.bm_scalar m.bm_batch1 m.bm_batchj
        (m.bm_batch1 /. m.bm_scalar)
        (if i = nm - 1 then "" else ","))
    batch.models;
  Printf.fprintf oc "    ],\n";
  Printf.fprintf oc
    "    \"inverse\": { \"rows\": %d, \"batch_rows_per_second\": %.0f, \
     \"scalar_rows_per_second\": %.0f }\n"
    batch.inverse_rows batch.inverse_batch batch.inverse_scalar;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"meanfield\": { \"solves\": [\n";
  let nf = List.length meanfield in
  List.iteri
    (fun i m ->
      Printf.fprintf oc
        "    { \"flows\": %d, \"seconds\": %.6f, \"flows_per_second\": %.0f, \
         \"iterations\": %d }%s\n"
        m.mf_flows m.mf_seconds m.mf_flows_per_second m.mf_iterations
        (if i = nf - 1 then "" else ","))
    meanfield;
  Printf.fprintf oc "  ] },\n";
  Printf.fprintf oc
    "  \"fig10_profile\": { \"simulation_seconds\": %.6f, \
     \"summarize_seconds\": %.6f, \"model_eval_seconds\": %.6f },\n"
    fig10_profile.simulation_seconds fig10_profile.summarize_seconds
    fig10_profile.model_eval_seconds;
  Printf.fprintf oc "  \"part1_total_seconds\": %.6f\n"
    (List.fold_left (fun acc (_, s) -> acc +. s) 0. timings);
  Printf.fprintf oc "}\n";
  close_out oc

let regenerate ~quick ~jobs =
  Experiments.Report.heading ppf "PART 1 -- Paper artifacts regenerated";
  let timings =
    List.map
      (fun (name, run) ->
        let t0 = Unix.gettimeofday () in
        run ();
        Format.pp_print_flush ppf ();
        (name, Unix.gettimeofday () -. t0))
      (artifacts ~quick ~jobs)
  in
  (* Timings on stderr, not stdout: stdout must stay byte-comparable
     across --jobs values. *)
  let err = Format.err_formatter in
  Format.fprintf err "# Part-1 wall-clock (jobs=%d)@." jobs;
  List.iter
    (fun (name, seconds) -> Format.fprintf err "%-12s %9.3f s@." name seconds)
    timings;
  Format.fprintf err "%-12s %9.3f s@." "total"
    (List.fold_left (fun acc (_, s) -> acc +. s) 0. timings);
  let streaming = streaming_benchmark ~quick in
  Format.fprintf err "# Streaming estimators (single domain)@.";
  List.iter
    (fun (name, events_per_second) ->
      Format.fprintf err "%-22s %12.0f events/s@." name events_per_second)
    streaming;
  let selfcheck = selfcheck_benchmark ~quick ~jobs in
  let cases, cases_per_second, ok = selfcheck in
  Format.fprintf err "# Selfcheck harness (jobs=%d)@." jobs;
  Format.fprintf err "%-22s %12.0f cases/s (%d cases, %s)@." "selfcheck"
    cases_per_second cases
    (if ok then "all invariants hold" else "FAILURES");
  let batch = batch_benchmark ~quick ~jobs in
  Format.fprintf err "# Batch engine (rows=%d, steady-state; target 1e8)@."
    batch.batch_rows;
  Format.fprintf err "%-22s %12.3g rows/s@." "domain scan" batch.scan_rate;
  List.iter
    (fun m ->
      Format.fprintf err
        "%-22s %12.3g evals/s  (scalar %.3g, %.2fx; jobs=%d %.3g)@." m.bm_name
        m.bm_batch1 m.bm_scalar
        (m.bm_batch1 /. m.bm_scalar)
        jobs m.bm_batchj)
    batch.models;
  Format.fprintf err "%-22s %12.3g rows/s  (scalar %.3g)@." "inverse"
    batch.inverse_batch batch.inverse_scalar;
  let meanfield = meanfield_benchmark () in
  Format.fprintf err "# Mean-field solver (RED equilibrium, cost per population)@.";
  List.iter
    (fun m ->
      Format.fprintf err "%-22s %12.3g flows/s  (%.6f s, %d iterations)@."
        (Printf.sprintf "meanfield n=%d" m.mf_flows)
        m.mf_flows_per_second m.mf_seconds m.mf_iterations)
    meanfield;
  let fig10_profile = fig10_profile_benchmark ~quick in
  Format.fprintf err
    "# Fig. 10 phase split: sim %.3f s, summarize %.3f s, models %.6f s@."
    fig10_profile.simulation_seconds fig10_profile.summarize_seconds
    fig10_profile.model_eval_seconds;
  let analyzers = analyzer_runs () in
  Format.fprintf err "# Analyzer wall-clock (also gate BENCH_results.json)@.";
  List.iter
    (fun a -> Format.fprintf err "%-22s %12.3f s@." a.an_name a.an_seconds)
    analyzers;
  Format.pp_print_flush err ();
  if List.for_all (fun a -> a.an_clean) analyzers then
    write_timings_json ~path:"BENCH_results.json" ~quick ~jobs ~analyzers
      ~streaming ~selfcheck ~batch ~meanfield ~fig10_profile timings
  else
    Format.fprintf err
      "# BENCH_results.json not written: tree fails \
       pftk-lint/pftk-race/pftk-flow@."

(* --- Part 2: ablation studies --------------------------------------------- *)

let ablations () =
  Experiments.Report.heading ppf "PART 2 -- Ablations";
  let params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 () in
  let grid = Sweep.logspace ~lo:1e-3 ~hi:0.5 ~n:20 in

  Experiments.Report.subheading ppf
    "Q-hat: exact eq. (24) vs min(1, 3/w) approximation (rate deltas)";
  Format.fprintf ppf "# p  full(closed-q)  full(approx-q)  delta%%@.";
  Array.iter
    (fun p ->
      let exact = Full_model.send_rate ~q:Qhat.Closed params p in
      let approx = Full_model.send_rate ~q:Qhat.Approximate params p in
      Format.fprintf ppf "%.4f %10.3f %10.3f %8.2f@." p exact approx
        (100. *. (approx -. exact) /. exact))
    grid;

  Experiments.Report.subheading ppf
    "Full model eq. (32) vs one-line approximation eq. (33)";
  Format.fprintf ppf "# p  full  approximate  delta%%@.";
  Array.iter
    (fun p ->
      let full = Full_model.send_rate params p in
      let approx = Approx_model.send_rate params p in
      Format.fprintf ppf "%.4f %10.3f %10.3f %8.2f@." p full approx
        (100. *. (approx -. full) /. full))
    grid;

  Experiments.Report.subheading ppf
    "Loss-model robustness: round simulator under three processes";
  Format.fprintf ppf "# p  model  correlated  bernoulli  gilbert@.";
  List.iter
    (fun p ->
      let run make_loss seed =
        let rng = Pftk_stats.Rng.create ~seed () in
        let r =
          Pftk_tcp.Round_sim.run ~seed ~duration:20_000. ~loss:(make_loss rng)
            (Pftk_tcp.Round_sim.config_of_params params)
        in
        r.Pftk_tcp.Round_sim.send_rate
      in
      let correlated =
        run (fun rng -> Pftk_loss.Loss_process.round_correlated rng ~p) 1L
      in
      let bernoulli =
        run (fun rng -> Pftk_loss.Loss_process.bernoulli rng ~p) 2L
      in
      let gilbert =
        (* Same stationary loss rate, bursty (mean burst of 3 packets). *)
        run
          (fun rng ->
            Pftk_loss.Loss_process.gilbert rng
              ~p_enter_bad:(Float.min 0.9 (p /. 3. /. Float.max 0.01 (1. -. p)))
              ~p_exit_bad:(1. /. 3.) ())
          3L
      in
      Format.fprintf ppf "%.4f %8.3f %8.3f %8.3f %8.3f@." p
        (Full_model.send_rate params p)
        correlated bernoulli gilbert)
    [ 0.005; 0.02; 0.08 ];

  Experiments.Report.subheading ppf
    "Stack quirks: dup-ACK threshold and backoff cap (simulated rate)";
  Format.fprintf ppf "# threshold cap rate@.";
  List.iter
    (fun (threshold, cap) ->
      let rng = Pftk_stats.Rng.create ~seed:4L () in
      let loss = Pftk_loss.Loss_process.round_correlated rng ~p:0.05 in
      let config =
        {
          (Pftk_tcp.Round_sim.config_of_params params) with
          Pftk_tcp.Round_sim.dup_ack_threshold = threshold;
          backoff_cap = cap;
        }
      in
      let r = Pftk_tcp.Round_sim.run ~seed:4L ~duration:20_000. ~loss config in
      Format.fprintf ppf "%9d %3d %8.3f@." threshold cap
        r.Pftk_tcp.Round_sim.send_rate)
    [ (3, 6); (2, 6); (3, 5); (2, 5) ];

  Experiments.Report.subheading ppf
    "TCP flavor: the model's process vs Reno-with-slow-start vs Tahoe";
  Format.fprintf ppf "# p  model  model-reno  reno+ss  tahoe@.";
  List.iter
    (fun p ->
      let rate flavor seed =
        let rng = Pftk_stats.Rng.create ~seed () in
        let loss = Pftk_loss.Loss_process.round_correlated rng ~p in
        let config =
          { (Pftk_tcp.Round_sim.config_of_params params) with
            Pftk_tcp.Round_sim.flavor }
        in
        (Pftk_tcp.Round_sim.run ~seed ~duration:20_000. ~loss config)
          .Pftk_tcp.Round_sim.send_rate
      in
      Format.fprintf ppf "%.4f %8.3f %8.3f %8.3f %8.3f@." p
        (Full_model.send_rate params p)
        (rate Pftk_tcp.Round_sim.Model_reno 5L)
        (rate Pftk_tcp.Round_sim.Reno_slow_start 6L)
        (rate Pftk_tcp.Round_sim.Tahoe 7L))
    [ 0.005; 0.02; 0.08 ];

  Experiments.Report.subheading ppf
    "Recovery style at packet level: Reno vs NewReno vs SACK (p = 0.03)";
  Format.fprintf ppf "# style  rate  timeouts  fast-rexmits@.";
  List.iter
    (fun (label, recovery) ->
      let rng = Pftk_stats.Rng.create ~seed:14L () in
      let scenario =
        {
          Pftk_tcp.Connection.default_scenario with
          Pftk_tcp.Connection.forward_bandwidth = 1_250_000.;
          reverse_bandwidth = 1_250_000.;
          forward_delay = 0.05;
          reverse_delay = 0.05;
          buffer = Pftk_netsim.Queue_discipline.drop_tail ~capacity:100;
          data_loss = Some (Pftk_loss.Loss_process.bernoulli rng ~p:0.03);
          sender = { Pftk_tcp.Reno.default_config with recovery };
        }
      in
      let r = Pftk_tcp.Connection.run ~seed:14L ~duration:300. scenario in
      Format.fprintf ppf "%-8s %8.2f %8d %8d@." label
        r.Pftk_tcp.Connection.send_rate r.Pftk_tcp.Connection.timeouts
        r.Pftk_tcp.Connection.fast_retransmits)
    [
      ("reno", Pftk_tcp.Reno.Reno_recovery);
      ("newreno", Pftk_tcp.Reno.Newreno_recovery);
      ("sack", Pftk_tcp.Reno.Sack_recovery);
    ];

  Experiments.Report.subheading ppf
    "Queue discipline: model accuracy when loss comes only from the buffer";
  Format.fprintf ppf "# discipline  observed-p  measured  predicted  ratio@.";
  List.iter
    (fun (label, buffer) ->
      let scenario =
        {
          Pftk_tcp.Connection.default_scenario with
          Pftk_tcp.Connection.forward_bandwidth = 250_000.;
          reverse_bandwidth = 250_000.;
          forward_delay = 0.04;
          reverse_delay = 0.04;
          buffer;
        }
      in
      let result = Pftk_tcp.Connection.run ~seed:9L ~duration:900. scenario in
      let s = Pftk_trace.Analyzer.summarize result.Pftk_tcp.Connection.recorder in
      if s.Pftk_trace.Analyzer.loss_indications > 0 then begin
        let rtt = s.Pftk_trace.Analyzer.avg_rtt in
        let t0 =
          if s.Pftk_trace.Analyzer.avg_t0 > 0. then s.Pftk_trace.Analyzer.avg_t0
          else 4. *. rtt
        in
        let model =
          Full_model.send_rate
            (Params.make ~rtt ~t0 ~wm:32 ())
            s.Pftk_trace.Analyzer.observed_p
        in
        Format.fprintf ppf "%-22s %10.4f %9.2f %10.2f %6.2f@." label
          s.Pftk_trace.Analyzer.observed_p
          result.Pftk_tcp.Connection.send_rate model
          (model /. result.Pftk_tcp.Connection.send_rate)
      end
      else Format.fprintf ppf "%-22s (no loss indications)@." label)
    [
      ("drop-tail(12)", Pftk_netsim.Queue_discipline.drop_tail ~capacity:12);
      ( "RED(3..9/12)",
        Pftk_netsim.Queue_discipline.red ~capacity:12 ~min_threshold:3.
          ~max_threshold:9. () );
    ];

  Experiments.Report.subheading ppf
    "Endogenous loss: TCP competing with bursty ON/OFF cross-traffic";
  begin
    let config =
      {
        Pftk_netsim.Cross_traffic.rate = 600.;
        packet_size = 1500;
        mean_on = 0.5;
        mean_off = 1.0;
        pareto_shape = Some 1.5;
      }
    in
    let result =
      Pftk_tcp.Shared_bottleneck.run ~seed:97L ~duration:600. ~buffer:40
        [
          Pftk_tcp.Shared_bottleneck.reno "tcp";
          Pftk_tcp.Shared_bottleneck.cross ~config "background";
        ]
    in
    List.iter
      (fun (f : Pftk_tcp.Shared_bottleneck.flow_result) ->
        Format.fprintf ppf "%-12s %-6s goodput %7.1f pkt/s  loss %.4f@."
          f.Pftk_tcp.Shared_bottleneck.name
          f.Pftk_tcp.Shared_bottleneck.kind_label
          f.Pftk_tcp.Shared_bottleneck.goodput
          f.Pftk_tcp.Shared_bottleneck.loss_rate)
      result.Pftk_tcp.Shared_bottleneck.flows
  end;

  Experiments.Report.subheading ppf
    "Generalized AIMD: formula vs simulation, and the TCP-friendly line";
  Format.fprintf ppf "# alpha beta  formula  simulated  friendly?@.";
  List.iter
    (fun (alpha, beta) ->
      let p = 0.001 in
      let rng = Pftk_stats.Rng.create ~seed:17L () in
      let loss = Pftk_loss.Loss_process.round_correlated rng ~p in
      let config =
        {
          Pftk_tcp.Round_sim.default_config with
          Pftk_tcp.Round_sim.aimd_increase = alpha;
          aimd_decrease = beta;
          wm = 100_000;
          rtt_jitter = 0.;
          dup_ack_threshold = 1;
        }
      in
      let r = Pftk_tcp.Round_sim.run ~seed:17L ~duration:30_000. ~loss config in
      Format.fprintf ppf "%5.2f %5.3f %8.2f %10.2f %10b@." alpha beta
        (Aimd.send_rate (Aimd.make ~alpha ~beta) ~rtt:0.2 ~b:2 p)
        r.Pftk_tcp.Round_sim.send_rate
        (Aimd.is_tcp_friendly (Aimd.make ~alpha ~beta)))
    [ (1., 0.5); (0.2, 0.125); (2., 0.8); (1., 0.125) ];

  Experiments.Report.subheading ppf
    "Delayed ACKs: b = 1 vs b = 2 across the grid";
  Format.fprintf ppf "# p  B(b=1)  B(b=2)  ratio@.";
  Array.iter
    (fun p ->
      let b1 = Params.make ~b:1 ~rtt:0.47 ~t0:3.2 ~wm:12 () in
      let r1 = Full_model.send_rate b1 p in
      let r2 = Full_model.send_rate params p in
      Format.fprintf ppf "%.4f %8.3f %8.3f %6.3f@." p r1 r2 (r1 /. r2))
    (Sweep.logspace ~lo:1e-3 ~hi:0.3 ~n:8)

(* --- Part 3: Bechamel micro-benchmarks -------------------------------------- *)

let micro () =
  let open Bechamel in
  let params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 () in
  let p = 0.02 in
  let stage name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"pftk"
      [
        stage "full-model eq.(32)" (fun () ->
            ignore (Full_model.send_rate params p));
        stage "approximate eq.(33)" (fun () ->
            ignore (Approx_model.send_rate params p));
        stage "td-only eq.(19)" (fun () ->
            ignore (Tdonly.send_rate ~rtt:0.47 ~b:2 p));
        stage "throughput eq.(37)" (fun () ->
            ignore (Throughput.throughput params p));
        stage "qhat exact sum (w=30)" (fun () -> ignore (Qhat.exact ~p 30));
        stage "qhat closed form (w=30)" (fun () ->
            ignore (Qhat.closed_form ~p 30.));
        stage "markov solve (Wm=12)" (fun () ->
            ignore (Markov.send_rate (Markov.solve params p)));
        stage "inverse bisection" (fun () ->
            ignore (Inverse.loss_budget params ~rate:5.));
        stage "round sim (100 s)" (fun () ->
            let rng = Pftk_stats.Rng.create ~seed:5L () in
            let loss = Pftk_loss.Loss_process.round_correlated rng ~p in
            ignore
              (Pftk_tcp.Round_sim.run ~duration:100. ~loss
                 (Pftk_tcp.Round_sim.config_of_params params)));
        stage "packet-level Reno (10 s)" (fun () ->
            ignore
              (Pftk_tcp.Connection.run ~duration:10.
                 Pftk_tcp.Connection.default_scenario));
      ]
  in
  Experiments.Report.heading ppf "PART 3 -- Micro-benchmarks (Bechamel)";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name v acc ->
        match Analyze.OLS.estimates v with
        | Some (ns :: _) -> (name, ns) :: acc
        | Some [] | None -> (name, nan) :: acc)
      results []
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  List.iter
    (fun (name, ns) ->
      if Float.is_nan ns then Format.fprintf ppf "%-36s (no estimate)@." name
      else if ns > 1e6 then Format.fprintf ppf "%-36s %12.3f ms/run@." name (ns /. 1e6)
      else if ns > 1e3 then Format.fprintf ppf "%-36s %12.3f us/run@." name (ns /. 1e3)
      else Format.fprintf ppf "%-36s %12.1f ns/run@." name ns)
    rows

(* Minimal flag parsing: --quick, --no-micro, --jobs N (or --jobs=N). *)
let parse_jobs argv =
  let jobs = ref (Pftk_parallel.default_jobs ()) in
  Array.iteri
    (fun i arg ->
      if arg = "--jobs" && i + 1 < Array.length argv then
        jobs := int_of_string argv.(i + 1)
      else
        match String.index_opt arg '=' with
        | Some eq when String.sub arg 0 eq = "--jobs" ->
            jobs :=
              int_of_string (String.sub arg (eq + 1) (String.length arg - eq - 1))
        | _ -> ())
    argv;
  if !jobs < 1 then failwith "--jobs must be >= 1";
  !jobs

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let no_micro = Array.exists (( = ) "--no-micro") Sys.argv in
  let jobs = parse_jobs Sys.argv in
  regenerate ~quick ~jobs;
  ablations ();
  if not no_micro then micro ();
  Format.pp_print_flush ppf ()
