(* Link provisioning with the model: the operator-side application.

   Given a bottleneck's capacity, buffer and base RTT, the fixed-point
   solver predicts the equilibrium loss rate and per-flow goodput for any
   number of competing TCP flows -- and inverts the relation to size the
   buffer for a loss budget.  The analytic answers are checked against the
   multi-flow packet-level simulator.

   Run with:  dune exec examples/provisioning.exe *)

open Pftk_core
module SB = Pftk_tcp.Shared_bottleneck

let capacity_bytes = 1_250_000.
let packet = 1500.
let capacity = capacity_bytes /. packet (* packets/s *)
let buffer = 64
let base_rtt = 0.0426 (* 2 x 20 ms propagation + serialization *)

let () =
  Format.printf
    "Bottleneck: %.0f pkt/s, %d-packet buffer, base RTT %.1f ms@.@." capacity
    buffer (1000. *. base_rtt);
  Format.printf "%-7s %12s %12s %10s %12s %12s@." "flows" "eq. loss"
    "model pkt/s" "util" "sim pkt/s" "sim loss";
  List.iter
    (fun n ->
      let eq =
        Fixed_point.solve ~wm:32 ~flows:n ~capacity ~buffer ~base_rtt ()
      in
      let sim =
        SB.run
          ~seed:(Int64.of_int (100 + n))
          ~duration:120. ~buffer ~bandwidth:capacity_bytes
          ~one_way_delay:0.02
          (List.init n (fun i -> SB.reno (Printf.sprintf "flow-%d" i)))
      in
      let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int n in
      let sim_rate = mean (List.map (fun f -> f.SB.goodput) sim.SB.flows) in
      let sim_loss = mean (List.map (fun f -> f.SB.loss_rate) sim.SB.flows) in
      Format.printf "%-7d %12.4f %12.1f %10.2f %12.1f %12.4f@." n
        eq.Fixed_point.p eq.Fixed_point.per_flow_rate
        eq.Fixed_point.utilization sim_rate sim_loss)
    [ 1; 2; 4; 8; 16; 32 ];

  (* How much buffer does a loss budget require as the user count grows? *)
  Format.printf "@.Buffer needed to hold equilibrium loss at 1%%:@.";
  Format.printf "%-7s %14s@." "flows" "buffer (pkts)";
  List.iter
    (fun n ->
      let needed =
        Fixed_point.required_buffer ~target_p:0.01 ~flows:n ~capacity
          ~base_rtt ()
      in
      Format.printf "%-7d %14d@." n needed)
    [ 8; 16; 32; 64; 128 ];
  Format.printf
    "@.(The square-root law in reverse: doubling the user count quadruples@.";
  Format.printf
    "the per-flow loss needed to slow everyone down, so the buffer -- which@.";
  Format.printf "inflates everyone's RTT -- has to grow steeply instead.)@."
