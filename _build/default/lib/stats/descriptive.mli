(** Descriptive statistics over float arrays and lists.

    All functions raise [Invalid_argument] on empty input unless stated
    otherwise; callers in the experiment drivers always operate on non-empty
    measurement sets. *)

val mean : float array -> float
val mean_list : float list -> float

val variance : float array -> float
(** Unbiased sample variance (divides by [n - 1]); [0.] for singletons. *)

val population_variance : float array -> float
(** Divides by [n]. *)

val std : float array -> float
(** Square root of {!variance}. *)

val min : float array -> float
val max : float array -> float
val sum : float array -> float
val sum_list : float list -> float

val median : float array -> float
(** Median without mutating the input (sorts a copy). *)

val quantile : float array -> float -> float
(** [quantile a q] with [q] in [\[0, 1\]], linear interpolation between order
    statistics (type-7, the R default). *)

val geometric_mean : float array -> float
(** Requires strictly positive entries. *)

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  p25 : float;
  median : float;
  p75 : float;
  max : float;
}

val summarize : float array -> summary
val pp_summary : Format.formatter -> summary -> unit
