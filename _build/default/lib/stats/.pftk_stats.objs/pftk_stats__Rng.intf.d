lib/stats/rng.mli:
