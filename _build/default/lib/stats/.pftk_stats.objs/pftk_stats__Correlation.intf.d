lib/stats/correlation.mli:
