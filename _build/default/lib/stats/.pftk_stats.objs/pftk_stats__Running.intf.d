lib/stats/running.mli:
