lib/stats/running.ml: Float
