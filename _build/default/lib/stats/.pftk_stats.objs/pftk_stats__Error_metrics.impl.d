lib/stats/error_metrics.ml: Array Float
