lib/stats/regression.mli:
