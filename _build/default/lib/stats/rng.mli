(** Deterministic pseudo-random number generation.

    Simulation experiments must be reproducible run-to-run, so the library
    carries its own generator rather than relying on the global [Random]
    state.  The implementation is xoshiro256** seeded through SplitMix64,
    which has a period of [2^256 - 1] and passes BigCrush; both algorithms
    are public domain (Blackman & Vigna). *)

type t
(** Mutable generator state. *)

val create : ?seed:int64 -> unit -> t
(** [create ?seed ()] makes a fresh generator.  The default seed is a fixed
    constant so that unseeded experiments are still reproducible. *)

val copy : t -> t
(** Independent clone of the current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t].  Streams from
    the parent and child are statistically independent; use this to give each
    simulated connection its own stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] is uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p].  Requires
    [0. <= p && p <= 1.]. *)

val exponential : t -> float -> float
(** [exponential t mean] samples Exp with the given mean.  Requires
    [mean > 0.]. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of Bernoulli([p]) trials up to and
    including the first success; support [1, 2, ...].  Requires
    [0. < p && p <= 1.]. *)

val normal : t -> mean:float -> std:float -> float
(** Gaussian sample via Box-Muller. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
