(** Online (single-pass) statistics via Welford's algorithm.

    The simulators feed per-round RTT samples and window sizes through these
    accumulators so hour-long traces never have to buffer raw samples just to
    report a mean. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
(** [0.] when empty. *)

val variance : t -> float
(** Unbiased; [0.] when fewer than two samples. *)

val std : t -> float
val min : t -> float
(** [infinity] when empty. *)

val max : t -> float
(** [neg_infinity] when empty. *)

val total : t -> float
val merge : t -> t -> t
(** Combine two accumulators (Chan's parallel update). *)
