(** Ordinary least-squares fits.

    {!log_log_fit} is used in the tests to confirm the model's small-[p]
    asymptotics: on a log-log scale, [B(p)] must approach slope [-1/2]
    (the square-root law of eq. 20). *)

type fit = {
  slope : float;
  intercept : float;
  r_squared : float;  (** Coefficient of determination in [\[0, 1\]]. *)
}

val linear_fit : float array -> float array -> fit
(** Least squares [y ~ slope * x + intercept].  Raises [Invalid_argument] on
    length mismatch, fewer than two points, or zero variance in [x]. *)

val log_log_fit : float array -> float array -> fit
(** Fit on [(log x, log y)]; requires strictly positive data. *)

val predict : fit -> float -> float
