(** Fixed-bin histograms over floats, with linear or logarithmic binning.

    Used by the experiment drivers to bucket per-interval loss frequencies
    (log-spaced, matching the log-scale x axes of Figs. 7 and 12) and by the
    loss-model tests to compare empirical distributions against theory. *)

type t

val create_linear : lo:float -> hi:float -> bins:int -> t
(** Equal-width bins spanning [\[lo, hi)].  Requires [lo < hi], [bins > 0]. *)

val create_log : lo:float -> hi:float -> bins:int -> t
(** Bins equal-width in [log] space.  Requires [0 < lo < hi]. *)

val add : t -> float -> unit
(** Values outside the range are counted in underflow/overflow. *)

val add_all : t -> float array -> unit
val count : t -> int -> int
val counts : t -> int array
val underflow : t -> int
val overflow : t -> int
val total : t -> int

val bin_edges : t -> float array
(** [bins + 1] edges; bin [i] spans [edges.(i), edges.(i+1)). *)

val bin_center : t -> int -> float
(** Arithmetic center for linear bins, geometric center for log bins. *)

val normalized : t -> float array
(** Fraction of in-range samples in each bin; all zeros when empty. *)

val pp : Format.formatter -> t -> unit
