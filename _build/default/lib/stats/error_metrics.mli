(** Model-accuracy metrics.

    {!average_error} is exactly the paper's Section III metric:
    [sum |predicted - observed| / observed / #observations], used to rank the
    models in Figs. 9 and 10.  Observations with a nonpositive observed value
    are skipped (they carry no information about relative error). *)

val average_error : predicted:float array -> observed:float array -> float
(** Mean relative absolute error.  Raises [Invalid_argument] on length
    mismatch or when no usable observation remains. *)

val rmse : predicted:float array -> observed:float array -> float
(** Root mean squared error. *)

val mean_signed_error : predicted:float array -> observed:float array -> float
(** Mean of [(predicted - observed) / observed]: positive means the model
    overestimates (the paper's criticism of TD-only). *)

val max_relative_error : predicted:float array -> observed:float array -> float
