(** Correlation measures.

    Section IV of the paper checks the model's RTT-vs-window independence
    assumption by computing the coefficient of correlation between per-round
    RTT samples and the number of packets in flight; normal paths fall in
    [\[-0.1, 0.1\]] while a modem path reaches 0.97.  {!pearson} is that
    coefficient. *)

val covariance : float array -> float array -> float
(** Sample covariance (divides by [n - 1]).  Raises [Invalid_argument] on
    length mismatch or input shorter than 2. *)

val pearson : float array -> float array -> float
(** Pearson product-moment correlation in [\[-1, 1\]].  Returns [0.] when
    either input has zero variance (no linear relationship measurable). *)

val spearman : float array -> float array -> float
(** Rank correlation: Pearson over midranks, robust to monotone
    nonlinearity. *)

val autocorrelation : float array -> int -> float
(** [autocorrelation a lag] of a series with itself shifted by [lag];
    used to inspect burstiness of simulated loss processes. *)
