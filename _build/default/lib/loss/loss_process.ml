type t = {
  name : string;
  drops : unit -> bool;
  new_round : unit -> unit;
  reset : unit -> unit;
}

let name t = t.name
let drops t = t.drops ()
let new_round t = t.new_round ()
let reset t = t.reset ()

let none =
  {
    name = "none";
    drops = (fun () -> false);
    new_round = ignore;
    reset = ignore;
  }

let bernoulli rng ~p =
  if not (0. <= p && p < 1.) then invalid_arg "Loss_process.bernoulli: p outside [0, 1)";
  {
    name = Printf.sprintf "bernoulli(p=%g)" p;
    drops = (fun () -> Pftk_stats.Rng.bernoulli rng p);
    new_round = ignore;
    reset = ignore;
  }

let round_correlated rng ~p =
  if not (0. <= p && p < 1.) then
    invalid_arg "Loss_process.round_correlated: p outside [0, 1)";
  let lossy_tail = ref false in
  {
    name = Printf.sprintf "round-correlated(p=%g)" p;
    drops =
      (fun () ->
        if !lossy_tail then true
        else if Pftk_stats.Rng.bernoulli rng p then begin
          lossy_tail := true;
          true
        end
        else false);
    new_round = (fun () -> lossy_tail := false);
    reset = (fun () -> lossy_tail := false);
  }

type gilbert_state = Good | Bad

let gilbert rng ~p_enter_bad ~p_exit_bad ?(loss_in_bad = 1.) () =
  let check label v =
    if not (0. < v && v <= 1.) then
      invalid_arg (Printf.sprintf "Loss_process.gilbert: %s outside (0, 1]" label)
  in
  check "p_enter_bad" p_enter_bad;
  check "p_exit_bad" p_exit_bad;
  if not (0. < loss_in_bad && loss_in_bad <= 1.) then
    invalid_arg "Loss_process.gilbert: loss_in_bad outside (0, 1]";
  let state = ref Good in
  {
    name =
      Printf.sprintf "gilbert(enter=%g, exit=%g, loss=%g)" p_enter_bad
        p_exit_bad loss_in_bad;
    drops =
      (fun () ->
        (match !state with
        | Good -> if Pftk_stats.Rng.bernoulli rng p_enter_bad then state := Bad
        | Bad -> if Pftk_stats.Rng.bernoulli rng p_exit_bad then state := Good);
        match !state with
        | Good -> false
        | Bad -> Pftk_stats.Rng.bernoulli rng loss_in_bad);
    new_round = ignore;
    reset = (fun () -> state := Good);
  }

let episodic rng ~p ~burst_prob ~mean_burst_rounds =
  if not (0. <= p && p < 1.) then invalid_arg "Loss_process.episodic: p outside [0, 1)";
  if not (0. <= burst_prob && burst_prob <= 1.) then
    invalid_arg "Loss_process.episodic: burst_prob outside [0, 1]";
  if not (mean_burst_rounds >= 1.) then
    invalid_arg "Loss_process.episodic: mean_burst_rounds < 1";
  let lossy_tail = ref false in
  let round_killed = ref false in
  let kill_rounds_left = ref 0 in
  let start_episode () =
    if burst_prob > 0. && Pftk_stats.Rng.bernoulli rng burst_prob then
      kill_rounds_left :=
        !kill_rounds_left
        + Pftk_stats.Rng.geometric rng (1. /. mean_burst_rounds)
  in
  {
    name =
      Printf.sprintf "episodic(p=%g, burst=%g, rounds=%g)" p burst_prob
        mean_burst_rounds;
    drops =
      (fun () ->
        if !round_killed || !lossy_tail then true
        else if Pftk_stats.Rng.bernoulli rng p then begin
          lossy_tail := true;
          start_episode ();
          true
        end
        else false);
    new_round =
      (fun () ->
        lossy_tail := false;
        if !kill_rounds_left > 0 then begin
          decr kill_rounds_left;
          round_killed := true
        end
        else round_killed := false);
    reset =
      (fun () ->
        lossy_tail := false;
        round_killed := false;
        kill_rounds_left := 0);
  }

let periodic ~period =
  if period < 1 then invalid_arg "Loss_process.periodic: period must be >= 1";
  let counter = ref 0 in
  {
    name = Printf.sprintf "periodic(%d)" period;
    drops =
      (fun () ->
        incr counter;
        if !counter >= period then begin
          counter := 0;
          true
        end
        else false);
    new_round = ignore;
    reset = (fun () -> counter := 0);
  }

let scripted pattern =
  if Array.length pattern = 0 then invalid_arg "Loss_process.scripted: empty pattern";
  let index = ref 0 in
  {
    name = Printf.sprintf "scripted(%d)" (Array.length pattern);
    drops =
      (fun () ->
        let v = pattern.(!index mod Array.length pattern) in
        incr index;
        v);
    new_round = ignore;
    reset = (fun () -> index := 0);
  }

let stationary_loss_rate t n =
  if n < 1 then invalid_arg "Loss_process.stationary_loss_rate: n must be >= 1";
  let lost = ref 0 in
  for _ = 1 to n do
    if drops t then incr lost
  done;
  float_of_int !lost /. float_of_int n
