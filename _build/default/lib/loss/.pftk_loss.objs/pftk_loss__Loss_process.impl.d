lib/loss/loss_process.ml: Array Pftk_stats Printf
