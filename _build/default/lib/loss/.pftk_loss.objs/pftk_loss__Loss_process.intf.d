lib/loss/loss_process.mli: Pftk_stats
