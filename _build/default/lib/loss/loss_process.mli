(** Packet-loss processes.

    A process answers, packet by packet in send order, "is this packet
    lost?".  Processes that depend on TCP's round structure (the paper's
    correlated-within-a-round model, §II) are informed of round boundaries
    through {!new_round}; the others ignore it.

    The paper assumes: losses in different rounds are independent, and once
    a packet is lost every later packet in the same round is lost too.
    {!round_correlated} implements exactly that.  {!bernoulli} is the
    i.i.d. alternative §IV reports the model also predicts well under, and
    {!gilbert} gives the bursty two-state process of the loss-measurement
    literature [23]. *)

type t

val name : t -> string

val drops : t -> bool
(** Decide the fate of the next packet. *)

val new_round : t -> unit
(** Signal that the sender started a new round (window of back-to-back
    packets). *)

val reset : t -> unit
(** Return to the initial state (does not reseed the RNG). *)

val none : t
(** Never drops. *)

val bernoulli : Pftk_stats.Rng.t -> p:float -> t
(** Independent loss with probability [p] per packet. *)

val round_correlated : Pftk_stats.Rng.t -> p:float -> t
(** The paper's model: the first packet of a round (and each packet whose
    predecessor survived) is lost with probability [p]; after a loss, every
    remaining packet of the round is lost. *)

val gilbert : Pftk_stats.Rng.t -> p_enter_bad:float -> p_exit_bad:float -> ?loss_in_bad:float -> unit -> t
(** Two-state Gilbert-Elliott chain: no loss in Good; in Bad, packets are
    lost with probability [loss_in_bad] (default 1).  State transitions are
    evaluated per packet.  Stationary loss rate is
    [loss_in_bad * p_enter_bad / (p_enter_bad + p_exit_bad)]. *)

val periodic : period:int -> t
(** Deterministically lose every [period]-th packet ([period >= 1]). *)

val episodic :
  Pftk_stats.Rng.t ->
  p:float ->
  burst_prob:float ->
  mean_burst_rounds:float ->
  t
(** Round-correlated loss with congestion {e episodes}: each loss event
    additionally, with probability [burst_prob], blacks out the next
    [Geometric(1/mean_burst_rounds)] whole rounds.  Because the sender's
    retransmissions after a timeout are themselves rounds, multi-round
    episodes produce exponential-backoff sequences (the T1..T5+ columns of
    Table II) and push the TD/TO mixture toward timeouts — the burstiness
    knob used to calibrate each measured path.  Requires [0 <= p < 1],
    [0 <= burst_prob <= 1], [mean_burst_rounds >= 1]. *)

val scripted : bool array -> t
(** Replay a fixed drop pattern, cycling when exhausted; useful in unit
    tests to force specific TD/TO scenarios.  Requires a non-empty array. *)

val stationary_loss_rate : t -> int -> float
(** Empirical loss rate over the next [n] packets (consumes the process);
    a testing convenience. *)
