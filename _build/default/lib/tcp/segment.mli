(** Wire units exchanged by the simulated sender and receiver.

    Sequence numbers are in whole segments (packets), not bytes: the paper's
    model and measurements count packets, and a bulk-transfer sender always
    sends full-MSS segments. *)

type data = {
  seq : int;  (** 0-based segment number. *)
  size : int;  (** Bytes on the wire (MSS + headers). *)
  retransmission : bool;
}

type ack = {
  ack : int;  (** Cumulative: next segment expected by the receiver. *)
  sacked : (int * int) list;
      (** SACK blocks [(first, last)] (inclusive, in segments) of data
          received above the cumulative point; empty when the receiver
          does not do SACK.  At most three blocks, nearest-first, per the
          option's size limit. *)
}

val pp_data : Format.formatter -> data -> unit
val pp_ack : Format.formatter -> ack -> unit
