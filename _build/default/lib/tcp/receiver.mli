(** The receiving endpoint: in-order reassembly, cumulative ACKs, delayed
    ACKs.

    Policy (classic BSD-style, matching the paper's assumptions in §II):
    - an in-order arrival is acknowledged immediately if it is the
      [ack_every]-th unacknowledged one, otherwise the ACK is delayed up to
      [delayed_ack_timeout];
    - an out-of-order arrival, or one that fills a hole, triggers an
      immediate ACK — this is what produces duplicate ACKs at the sender
      ("these ACKs are not delayed", §II-B). *)

type t

val create :
  ?ack_every:int ->
  ?delayed_ack_timeout:float ->
  ?sack:bool ->
  sim:Pftk_netsim.Sim.t ->
  send_ack:(Segment.ack -> unit) ->
  unit ->
  t
(** [ack_every] defaults to 2 (the paper's [b]); [delayed_ack_timeout] to
    0.2 s.  With [sack] (default false) every ACK carries up to three
    SACK blocks describing the out-of-order data held above the
    cumulative point. *)

val on_data : t -> Segment.data -> unit
(** Process an arriving data segment. *)

val rcv_nxt : t -> int
(** Next in-order segment expected. *)

val segments_received : t -> int
(** Distinct in-order segments delivered to the application: the
    "throughput" counter of §V. *)

val duplicates_received : t -> int
(** Arrivals at or below the current cumulative point (spurious
    retransmissions). *)

val acks_sent : t -> int
