module Int_set = Set.Make (Int)

type t = {
  sim : Pftk_netsim.Sim.t;
  send_ack : Segment.ack -> unit;
  ack_every : int;
  delayed_ack_timeout : float;
  sack : bool;
  mutable rcv_nxt : int;
  mutable out_of_order : Int_set.t;
  mutable unacked_arrivals : int;
  mutable delayed_timer : Pftk_netsim.Sim.event option;
  mutable segments_received : int;
  mutable duplicates_received : int;
  mutable acks_sent : int;
}

let create ?(ack_every = 2) ?(delayed_ack_timeout = 0.2) ?(sack = false) ~sim
    ~send_ack () =
  if ack_every < 1 then invalid_arg "Receiver.create: ack_every must be >= 1";
  if not (delayed_ack_timeout > 0.) then
    invalid_arg "Receiver.create: delayed_ack_timeout must be positive";
  {
    sim;
    send_ack;
    ack_every;
    delayed_ack_timeout;
    sack;
    rcv_nxt = 0;
    out_of_order = Int_set.empty;
    unacked_arrivals = 0;
    delayed_timer = None;
    segments_received = 0;
    duplicates_received = 0;
    acks_sent = 0;
  }

let cancel_delayed_timer t =
  match t.delayed_timer with
  | Some e ->
      Pftk_netsim.Sim.cancel e;
      t.delayed_timer <- None
  | None -> ()

(* Maximal runs of buffered out-of-order segments, nearest the cumulative
   point first, capped at three (the SACK option's size limit). *)
let sack_blocks t =
  if not t.sack then []
  else begin
    let rec runs acc current = function
      | [] -> List.rev (match current with None -> acc | Some r -> r :: acc)
      | seq :: rest -> begin
          match current with
          | Some (first, last) when seq = last + 1 ->
              runs acc (Some (first, seq)) rest
          | Some run -> runs (run :: acc) (Some (seq, seq)) rest
          | None -> runs acc (Some (seq, seq)) rest
        end
    in
    let all = runs [] None (Int_set.elements t.out_of_order) in
    List.filteri (fun i _ -> i < 3) all
  end

let emit_ack t =
  cancel_delayed_timer t;
  t.unacked_arrivals <- 0;
  t.acks_sent <- t.acks_sent + 1;
  t.send_ack { Segment.ack = t.rcv_nxt; sacked = sack_blocks t }

let arm_delayed_timer t =
  if t.delayed_timer = None then
    t.delayed_timer <-
      Some
        (Pftk_netsim.Sim.schedule t.sim ~delay:t.delayed_ack_timeout (fun () ->
             t.delayed_timer <- None;
             if t.unacked_arrivals > 0 then emit_ack t))

(* Advance the cumulative point through any buffered segments. *)
let rec drain t =
  if Int_set.mem t.rcv_nxt t.out_of_order then begin
    t.out_of_order <- Int_set.remove t.rcv_nxt t.out_of_order;
    t.rcv_nxt <- t.rcv_nxt + 1;
    t.segments_received <- t.segments_received + 1;
    drain t
  end

let on_data t (seg : Segment.data) =
  if seg.seq < t.rcv_nxt || Int_set.mem seg.seq t.out_of_order then begin
    (* Duplicate: below the cumulative point or already buffered.  ACK
       immediately so the sender sees where we stand. *)
    t.duplicates_received <- t.duplicates_received + 1;
    emit_ack t
  end
  else if seg.seq = t.rcv_nxt then begin
    t.rcv_nxt <- t.rcv_nxt + 1;
    t.segments_received <- t.segments_received + 1;
    let filled_hole = not (Int_set.is_empty t.out_of_order) in
    drain t;
    if filled_hole then emit_ack t
    else begin
      t.unacked_arrivals <- t.unacked_arrivals + 1;
      if t.unacked_arrivals >= t.ack_every then emit_ack t
      else arm_delayed_timer t
    end
  end
  else begin
    (* Out of order: buffer and send an immediate duplicate ACK. *)
    t.out_of_order <- Int_set.add seg.seq t.out_of_order;
    emit_ack t
  end

let rcv_nxt t = t.rcv_nxt
let segments_received t = t.segments_received
let duplicates_received t = t.duplicates_received
let acks_sent t = t.acks_sent
