type data = { seq : int; size : int; retransmission : bool }
type ack = { ack : int; sacked : (int * int) list }

let pp_data ppf { seq; size; retransmission } =
  Format.fprintf ppf "data(seq=%d, %dB%s)" seq size
    (if retransmission then ", rexmit" else "")

let pp_ack ppf { ack; sacked } =
  match sacked with
  | [] -> Format.fprintf ppf "ack(%d)" ack
  | blocks ->
      Format.fprintf ppf "ack(%d, sack=%s)" ack
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) blocks))
