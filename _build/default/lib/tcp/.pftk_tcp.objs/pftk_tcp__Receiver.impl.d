lib/tcp/receiver.ml: Int List Pftk_netsim Segment Set
