lib/tcp/reno.mli: Pftk_netsim Pftk_trace Segment
