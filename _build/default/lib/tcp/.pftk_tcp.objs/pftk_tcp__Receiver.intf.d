lib/tcp/receiver.mli: Pftk_netsim Segment
