lib/tcp/shared_bottleneck.mli: Pftk_netsim Reno
