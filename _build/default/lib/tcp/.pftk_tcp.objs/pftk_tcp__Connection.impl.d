lib/tcp/connection.ml: Array Option Pftk_loss Pftk_netsim Pftk_stats Pftk_trace Receiver Reno Segment
