lib/tcp/segment.ml: Format List Printf String
