lib/tcp/connection.mli: Pftk_loss Pftk_netsim Pftk_trace Reno
