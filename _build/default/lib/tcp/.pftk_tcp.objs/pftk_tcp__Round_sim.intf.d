lib/tcp/round_sim.mli: Pftk_core Pftk_loss Pftk_trace
