lib/tcp/round_sim.ml: Array Float Pftk_core Pftk_loss Pftk_stats Pftk_trace
