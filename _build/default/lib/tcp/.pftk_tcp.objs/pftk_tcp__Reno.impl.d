lib/tcp/reno.ml: Array Float Hashtbl List Option Pftk_netsim Pftk_trace Rto Segment
