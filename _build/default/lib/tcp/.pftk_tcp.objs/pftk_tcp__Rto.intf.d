lib/tcp/rto.mli:
