lib/tcp/shared_bottleneck.ml: Array Float List Option Pftk_core Pftk_netsim Pftk_stats Pftk_trace Receiver Reno Segment
