type t = {
  min_rto : float;
  max_rto : float;
  initial_rto : float;
  granularity : float;
  alpha : float;
  beta : float;
  mutable srtt : float;
  mutable rttvar : float;
  mutable samples : int;
}

let create ?(initial_rto = 3.) ?(min_rto = 0.2) ?(max_rto = 240.)
    ?(granularity = 0.1) ?(alpha = 0.125) ?(beta = 0.25) () =
  if not (initial_rto > 0. && min_rto > 0. && max_rto >= min_rto) then
    invalid_arg "Rto.create: inconsistent timer bounds";
  if not (0. < alpha && alpha < 1. && 0. < beta && beta < 1.) then
    invalid_arg "Rto.create: gains outside (0, 1)";
  {
    min_rto;
    max_rto;
    initial_rto;
    granularity;
    alpha;
    beta;
    srtt = 0.;
    rttvar = 0.;
    samples = 0;
  }

let observe t r =
  if not (r > 0.) then invalid_arg "Rto.observe: sample must be positive";
  if t.samples = 0 then begin
    t.srtt <- r;
    t.rttvar <- r /. 2.
  end
  else begin
    t.rttvar <- ((1. -. t.beta) *. t.rttvar) +. (t.beta *. Float.abs (t.srtt -. r));
    t.srtt <- ((1. -. t.alpha) *. t.srtt) +. (t.alpha *. r)
  end;
  t.samples <- t.samples + 1

let srtt t = if t.samples = 0 then None else Some t.srtt
let rttvar t = if t.samples = 0 then None else Some t.rttvar

let rto t =
  if t.samples = 0 then t.initial_rto
  else
    let raw = t.srtt +. Float.max t.granularity (4. *. t.rttvar) in
    Float.min t.max_rto (Float.max t.min_rto raw)

let samples t = t.samples
