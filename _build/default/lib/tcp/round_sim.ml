module Loss_process = Pftk_loss.Loss_process
module Recorder = Pftk_trace.Recorder
module Event = Pftk_trace.Event
module Rng = Pftk_stats.Rng

type flavor = Model_reno | Reno_slow_start | Tahoe

type config = {
  flavor : flavor;
  b : int;
  wm : int;
  t0 : float;
  rtt_mean : float;
  rtt_jitter : float;
  aimd_increase : float;
  aimd_decrease : float;
  dup_ack_threshold : int;
  backoff_cap : int;
  initial_window : float;
}

let default_config =
  {
    flavor = Model_reno;
    b = 2;
    wm = 32;
    t0 = 2.;
    rtt_mean = 0.2;
    rtt_jitter = 0.1;
    aimd_increase = 1.;
    aimd_decrease = 0.5;
    dup_ack_threshold = 3;
    backoff_cap = 6;
    initial_window = 1.;
  }

let config_of_params ?(rtt_jitter = 0.1) (params : Pftk_core.Params.t) =
  {
    default_config with
    b = params.b;
    wm = min params.wm 1_000_000;
    t0 = params.t0;
    rtt_mean = params.rtt;
    rtt_jitter;
  }

let validate config =
  if config.b < 1 then invalid_arg "Round_sim: b must be >= 1";
  if config.wm < 1 then invalid_arg "Round_sim: wm must be >= 1";
  if not (config.t0 > 0. && config.rtt_mean > 0.) then
    invalid_arg "Round_sim: t0 and rtt_mean must be positive";
  if config.rtt_jitter < 0. then invalid_arg "Round_sim: negative rtt_jitter";
  if not (config.aimd_increase > 0.) then
    invalid_arg "Round_sim: aimd_increase must be positive";
  if not (0. < config.aimd_decrease && config.aimd_decrease < 1.) then
    invalid_arg "Round_sim: aimd_decrease outside (0, 1)";
  if config.dup_ack_threshold < 1 then
    invalid_arg "Round_sim: dup_ack_threshold must be >= 1";
  if config.backoff_cap < 0 then invalid_arg "Round_sim: backoff_cap must be >= 0";
  if not (config.initial_window >= 1.) then
    invalid_arg "Round_sim: initial_window must be >= 1"

type result = {
  duration : float;
  rounds : int;
  packets_sent : int;
  packets_delivered : int;
  td_events : int;
  to_sequences : int;
  to_by_backoff : int array;
  send_rate : float;
  throughput : float;
  loss_indications : int;
  observed_p : float;
}

type state = {
  config : config;
  rng : Rng.t;
  loss : Loss_process.t;
  recorder : Recorder.t option;
  mutable time : float;
  mutable window : float;
  mutable ssthresh : float;
  mutable next_seq : int;
  mutable rounds : int;
  mutable sent : int;
  mutable delivered : int;
  mutable td_events : int;
  mutable to_sequences : int;
  to_by_backoff : int array;
}

let record state kind =
  match state.recorder with
  | Some recorder -> Recorder.record recorder ~time:state.time kind
  | None -> ()

let rtt_sample state =
  let c = state.config in
  if c.rtt_jitter = 0. then c.rtt_mean
  else
    let r = Rng.normal state.rng ~mean:c.rtt_mean ~std:(c.rtt_jitter *. c.rtt_mean) in
    Float.max (c.rtt_mean /. 10.) r

(* Advance the clock by one round and log its duration as an RTT sample
   (every round's duration is a Karn-valid sample in the model: nothing in
   a loss-free flight is retransmitted). *)
let advance_round state =
  let r = rtt_sample state in
  state.time <- state.time +. r;
  record state (Event.Rtt_sample { sample = r; srtt = r; rto = state.config.t0 })

(* Send [n] packets through the loss process; returns how many were
   delivered before the first loss ([n] when the round is loss-free). *)
let send_round state ~retransmission n =
  Loss_process.new_round state.loss;
  let first_loss = ref None in
  for i = 0 to n - 1 do
    let seq = state.next_seq in
    state.next_seq <- state.next_seq + 1;
    state.sent <- state.sent + 1;
    record state
      (Event.Segment_sent
         { seq; retransmission; cwnd = state.window; flight = n });
    if Loss_process.drops state.loss && !first_loss = None then
      first_loss := Some i
  done;
  match !first_loss with Some i -> i | None -> n

let effective_window state =
  max 1 (min state.config.wm (int_of_float (Float.round state.window)))

(* Loss-free round: slow start (geometric, below ssthresh, for the
   slow-starting flavors) or congestion avoidance (+1/b per round). *)
let grow_window state =
  let cap = float_of_int state.config.wm in
  let in_slow_start =
    state.config.flavor <> Model_reno && state.window < state.ssthresh
  in
  let next =
    if in_slow_start then
      Float.min state.ssthresh
        (state.window *. (1. +. (1. /. float_of_int state.config.b)))
    else
      state.window
      +. (state.config.aimd_increase /. float_of_int state.config.b)
  in
  state.window <- Float.min cap next

(* Window reaction to a TD indication, by flavor. *)
let on_td state =
  let reduced =
    Float.max 1. (state.window *. (1. -. state.config.aimd_decrease))
  in
  state.ssthresh <- Float.max 2. reduced;
  match state.config.flavor with
  | Model_reno | Reno_slow_start -> state.window <- reduced
  | Tahoe -> state.window <- 1.

(* A timeout sequence: the timer fires, one retransmission goes out; while
   retransmissions keep getting lost the timer doubles (capped).  Returns
   the number of timeouts. *)
let timeout_sequence state =
  let c = state.config in
  let rec attempt n =
    let timer = c.t0 *. float_of_int (1 lsl min (n - 1) c.backoff_cap) in
    state.time <- state.time +. timer;
    record state (Event.Timer_fired { backoff = n; rto = timer });
    Loss_process.new_round state.loss;
    state.sent <- state.sent + 1;
    record state
      (Event.Segment_sent
         { seq = state.next_seq; retransmission = true; cwnd = 1.; flight = 1 });
    state.next_seq <- state.next_seq + 1;
    if Loss_process.drops state.loss then attempt (n + 1)
    else begin
      state.delivered <- state.delivered + 1;
      n
    end
  in
  let n = attempt 1 in
  state.to_sequences <- state.to_sequences + 1;
  let bucket = min (n - 1) (Array.length state.to_by_backoff - 1) in
  state.to_by_backoff.(bucket) <- state.to_by_backoff.(bucket) + 1;
  (* Z^TD resumes immediately after the successful retransmission: the next
     TDP starts at window one (the model charges no extra round here). *)
  state.ssthresh <- Float.max 2. (state.window /. 2.);
  state.window <- 1.;
  n

let run ?(seed = 7L) ?recorder ~duration ~loss config =
  validate config;
  if not (duration > 0.) then invalid_arg "Round_sim.run: duration must be positive";
  let state =
    {
      config;
      rng = Rng.create ~seed ();
      loss;
      recorder;
      time = 0.;
      window = config.initial_window;
      ssthresh = infinity;
      next_seq = 0;
      rounds = 0;
      sent = 0;
      delivered = 0;
      td_events = 0;
      to_sequences = 0;
      to_by_backoff = Array.make 6 0;
    }
  in
  while state.time < duration do
    state.rounds <- state.rounds + 1;
    record state
      (Event.Round_started { index = state.rounds; window = state.window });
    let w = effective_window state in
    let k = send_round state ~retransmission:false w in
    state.delivered <- state.delivered + k;
    advance_round state;
    if k = w then grow_window state
    else begin
      (* Loss round ("penultimate", Fig. 4): the k ACKed packets trigger a
         final round of k packets; the duplicate-ACK count is how many of
         those survive. *)
      let m =
        if k = 0 then 0
        else begin
          state.rounds <- state.rounds + 1;
          let m = send_round state ~retransmission:false k in
          state.delivered <- state.delivered + m;
          advance_round state;
          m
        end
      in
      if m >= config.dup_ack_threshold then begin
        state.td_events <- state.td_events + 1;
        record state (Event.Fast_retransmit_triggered { seq = state.next_seq });
        on_td state
      end
      else ignore (timeout_sequence state)
    end
  done;
  let loss_indications = state.td_events + state.to_sequences in
  {
    duration = state.time;
    rounds = state.rounds;
    packets_sent = state.sent;
    packets_delivered = state.delivered;
    td_events = state.td_events;
    to_sequences = state.to_sequences;
    to_by_backoff = state.to_by_backoff;
    send_rate = float_of_int state.sent /. state.time;
    throughput = float_of_int state.delivered /. state.time;
    loss_indications;
    observed_p =
      (if state.sent = 0 then 0.
       else float_of_int loss_indications /. float_of_int state.sent);
  }

let window_samples ?(seed = 7L) ~rounds ~loss config =
  validate config;
  if rounds < 1 then invalid_arg "Round_sim.window_samples: rounds must be >= 1";
  let state =
    {
      config;
      rng = Rng.create ~seed ();
      loss;
      recorder = None;
      time = 0.;
      window = config.initial_window;
      ssthresh = infinity;
      next_seq = 0;
      rounds = 0;
      sent = 0;
      delivered = 0;
      td_events = 0;
      to_sequences = 0;
      to_by_backoff = Array.make 6 0;
    }
  in
  let samples = Array.make rounds 0. in
  for i = 0 to rounds - 1 do
    samples.(i) <- state.window;
    let w = effective_window state in
    let k = send_round state ~retransmission:false w in
    if k = w then grow_window state
    else begin
      let m = if k = 0 then 0 else send_round state ~retransmission:false k in
      if m >= config.dup_ack_threshold then on_td state
      else ignore (timeout_sequence state)
    end
  done;
  samples
