type t = { alpha : float; beta : float }

let tcp = { alpha = 1.; beta = 0.5 }

let make ~alpha ~beta =
  if not (alpha > 0.) then invalid_arg "Aimd.make: alpha must be positive";
  if not (0. < beta && beta < 1.) then invalid_arg "Aimd.make: beta outside (0, 1)";
  { alpha; beta }

(* Sawtooth between (1-beta) W and W with slope alpha/b per round lasts
   X = W beta b / alpha rounds and carries ~ W (1 - beta/2) X = 1/p
   packets, giving W^2 = 2 alpha / (p b beta (2 - beta)). *)
let e_w { alpha; beta } ~b p =
  Params.check_p p;
  if b < 1 then invalid_arg "Aimd.e_w: b must be >= 1";
  sqrt
    (2. *. alpha *. (1. -. p)
    /. (float_of_int b *. beta *. (2. -. beta) *. p))

let send_rate { alpha; beta } ~rtt ~b p =
  Params.check_p p;
  if not (rtt > 0.) then invalid_arg "Aimd.send_rate: rtt must be positive";
  if b < 1 then invalid_arg "Aimd.send_rate: b must be >= 1";
  sqrt (alpha *. (2. -. beta) /. (2. *. float_of_int b *. beta *. p)) /. rtt

let tcp_friendly_alpha ~beta =
  if not (0. < beta && beta < 1.) then
    invalid_arg "Aimd.tcp_friendly_alpha: beta outside (0, 1)";
  3. *. beta /. (2. -. beta)

let is_tcp_friendly ?(tolerance = 1e-6) { alpha; beta } =
  (* Rates are proportional to sqrt(alpha (2-beta) / beta); equality with
     TCP's sqrt(3) is parameter-only. *)
  let factor = alpha *. (2. -. beta) /. beta in
  Float.abs (factor -. 3.) /. 3. < tolerance
