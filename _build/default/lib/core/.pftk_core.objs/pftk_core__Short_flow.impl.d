lib/core/short_flow.ml: Float Full_model Params Qhat Timeouts
