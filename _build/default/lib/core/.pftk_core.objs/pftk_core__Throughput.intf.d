lib/core/throughput.mli: Params Qhat
