lib/core/tfrc.mli:
