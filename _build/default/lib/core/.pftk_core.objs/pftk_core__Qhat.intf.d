lib/core/qhat.mli:
