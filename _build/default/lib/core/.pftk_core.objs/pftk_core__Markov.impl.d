lib/core/markov.ml: Array Float List Params Qhat Timeouts
