lib/core/sweep.ml: Array Float Format List
