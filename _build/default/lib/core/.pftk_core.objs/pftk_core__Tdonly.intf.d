lib/core/tdonly.mli: Params
