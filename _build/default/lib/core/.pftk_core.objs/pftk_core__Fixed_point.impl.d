lib/core/fixed_point.ml: Float Full_model Params
