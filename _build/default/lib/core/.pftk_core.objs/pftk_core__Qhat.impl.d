lib/core/qhat.ml: Float Params
