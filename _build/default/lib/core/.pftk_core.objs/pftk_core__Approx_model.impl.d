lib/core/approx_model.ml: Float Params
