lib/core/markov.mli: Params Qhat
