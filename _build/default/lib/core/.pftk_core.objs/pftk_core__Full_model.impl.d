lib/core/full_model.ml: Float Params Qhat Tdonly Timeouts
