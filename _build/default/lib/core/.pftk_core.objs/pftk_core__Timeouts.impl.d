lib/core/timeouts.ml: Params
