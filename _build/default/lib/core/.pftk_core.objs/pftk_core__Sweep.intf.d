lib/core/sweep.mli: Format
