lib/core/short_flow.mli: Params
