lib/core/model.ml: Approx_model Full_model Markov Params Qhat String Sweep Tdonly Throughput
