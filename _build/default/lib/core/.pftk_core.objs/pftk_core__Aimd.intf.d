lib/core/aimd.mli:
