lib/core/fixed_point.mli:
