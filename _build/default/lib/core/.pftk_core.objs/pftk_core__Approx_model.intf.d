lib/core/approx_model.mli: Params
