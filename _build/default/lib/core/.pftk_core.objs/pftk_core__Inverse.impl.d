lib/core/inverse.ml: Approx_model Full_model
