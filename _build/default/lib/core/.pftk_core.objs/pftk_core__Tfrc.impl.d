lib/core/tfrc.ml: Approx_model Array Float List Params
