lib/core/inverse.mli: Params
