lib/core/throughput.ml: Float Full_model Params Qhat Tdonly Timeouts
