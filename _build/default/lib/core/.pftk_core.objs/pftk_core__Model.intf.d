lib/core/model.mli: Params Sweep
