lib/core/full_model.mli: Params Qhat
