lib/core/aimd.ml: Float Params
