lib/core/timeouts.mli:
