lib/core/tdonly.ml: Float Params
