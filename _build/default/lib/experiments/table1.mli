(** Table I: domains and operating systems of the measurement hosts. *)

val print : Format.formatter -> unit
