let heading ppf title =
  Format.fprintf ppf "@.%s@.%s@." title (String.make (String.length title) '=')

let subheading ppf title =
  Format.fprintf ppf "@.%s@.%s@." title (String.make (String.length title) '-')

let series ppf ~label points =
  Format.fprintf ppf "# series: %s@." label;
  List.iter (fun (x, y) -> Format.fprintf ppf "%.6g %.6g@." x y) points

let kv ppf key value = Format.fprintf ppf "%-28s %s@." (key ^ ":") value

let fmt_rate r = Printf.sprintf "%.2f pkt/s" r
let fmt_p p = Printf.sprintf "%.5f" p
