open Pftk_core

type result = {
  params : Params.t;
  send_rate : (float * float) list;
  throughput : (float * float) list;
  delivery_ratio : (float * float) list;
}

let paper_params = Params.make ~rtt:0.47 ~t0:3.2 ~wm:12 ()

let generate ?(params = paper_params) ?grid () =
  let grid =
    match grid with Some g -> g | None -> Sweep.logspace ~lo:1e-4 ~hi:0.8 ~n:60
  in
  let eval model =
    Sweep.series model grid |> List.map (fun { Sweep.p; rate } -> (p, rate))
  in
  {
    params;
    send_rate = eval (Full_model.send_rate params);
    throughput = eval (Throughput.throughput params);
    delivery_ratio = eval (Throughput.delivery_ratio params);
  }

let print ppf result =
  Report.heading ppf "Fig. 13: Comparison of throughput and send rate";
  Report.kv ppf "parameters" (Format.asprintf "%a" Params.pp result.params);
  Report.series ppf ~label:"send rate B(p)" result.send_rate;
  Report.series ppf ~label:"throughput T(p)" result.throughput;
  Report.series ppf ~label:"delivery ratio T/B" result.delivery_ratio;
  Ascii_plot.render ppf ~x_label:"loss probability p" ~y_label:"pkt/s"
    [
      { Ascii_plot.glyph = 'B'; label = "send rate B(p)"; points = result.send_rate };
      { Ascii_plot.glyph = 'T'; label = "throughput T(p)"; points = result.throughput };
    ]
