(** Terminal rendering of the figures: log-log scatter/line plots drawn
    with ASCII, so the reproduction's "shape" claims are visible directly
    in CLI output without external plotting tools.

    Each series gets a glyph; overlapping cells show the later series.
    Axes are logarithmic (the paper's figures all are in x, mostly in y). *)

type series = {
  glyph : char;
  label : string;
  points : (float * float) list;
}

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?logx:bool ->
  ?logy:bool ->
  Format.formatter ->
  series list ->
  unit
(** [render ppf series] draws the plot ([width] x [height] characters,
    default 72 x 20, both axes logarithmic by default).  Points with
    nonpositive coordinates are skipped on logarithmic axes.  Does nothing
    when no drawable point exists. *)
