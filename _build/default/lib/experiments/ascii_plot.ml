type series = { glyph : char; label : string; points : (float * float) list }

let finite_positive logscale v = Float.is_finite v && ((not logscale) || v > 0.)

let render ?(width = 72) ?(height = 20) ?(x_label = "p") ?(y_label = "rate")
    ?(logx = true) ?(logy = true) ppf series =
  let usable =
    List.concat_map
      (fun s ->
        List.filter
          (fun (x, y) -> finite_positive logx x && finite_positive logy y)
          s.points)
      series
  in
  if usable <> [] then begin
    let xs = List.map fst usable and ys = List.map snd usable in
    let fold f = List.fold_left f in
    let x_lo = fold Float.min infinity xs and x_hi = fold Float.max neg_infinity xs in
    let y_lo = fold Float.min infinity ys and y_hi = fold Float.max neg_infinity ys in
    let scale logscale lo hi v =
      if logscale then
        if hi = lo then 0.5 else (log v -. log lo) /. (log hi -. log lo)
      else if hi = lo then 0.5
      else (v -. lo) /. (hi -. lo)
    in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        List.iter
          (fun (x, y) ->
            if finite_positive logx x && finite_positive logy y then begin
              let fx = scale logx x_lo x_hi x and fy = scale logy y_lo y_hi y in
              let col = min (width - 1) (int_of_float (fx *. float_of_int (width - 1))) in
              let row =
                height - 1
                - min (height - 1) (int_of_float (fy *. float_of_int (height - 1)))
              in
              grid.(row).(col) <- s.glyph
            end)
          s.points)
      series;
    Format.fprintf ppf "%s (%s axis %s, %s axis %s)@." y_label "y"
      (if logy then "log" else "linear")
      "x"
      (if logx then "log" else "linear");
    Array.iteri
      (fun row line ->
        let edge =
          if row = 0 then Printf.sprintf "%8.3g |" y_hi
          else if row = height - 1 then Printf.sprintf "%8.3g |" y_lo
          else "         |"
        in
        Format.fprintf ppf "%s%s@." edge (String.init width (Array.get line)))
      grid;
    Format.fprintf ppf "         +%s@." (String.make width '-');
    Format.fprintf ppf "          %-8.3g%s%8.3g  (%s)@." x_lo
      (String.make (max 1 (width - 18)) ' ')
      x_hi x_label;
    List.iter
      (fun s -> Format.fprintf ppf "          [%c] %s@." s.glyph s.label)
      series
  end
