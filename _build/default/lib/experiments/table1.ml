let print ppf =
  Report.heading ppf "Table I: Domains and operating systems of hosts";
  Format.fprintf ppf "%-12s %-16s %s@." "Host" "Domain" "Operating System";
  List.iter
    (fun h -> Format.fprintf ppf "%a@." Pftk_dataset.Host.pp h)
    Pftk_dataset.Host.all
