(** Figs. 1, 3 and 5: illustrative sample paths of the congestion-window
    evolution in the model's three regimes — TD indications only (the
    sawtooth of Fig. 1), TD plus timeout sequences (Fig. 3), and
    receiver-window limitation (the flat-topped sawtooth of Fig. 5). *)

type sample_path = {
  label : string;
  windows : float array;  (** Window at the start of each round. *)
}

val generate : ?seed:int64 -> ?rounds:int -> unit -> sample_path list

val print : Format.formatter -> sample_path list -> unit
