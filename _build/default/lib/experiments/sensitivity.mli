(** Input-sensitivity study: how much does the full model's prediction move
    when its measured inputs are wrong by a known factor?

    Practitioners feed the PFTK equation estimates of RTT, T0 and p that
    are themselves noisy; this experiment quantifies the model's
    amplification of each input error (the elasticity
    [d log B / d log x]) across operating points, and ranks the inputs by
    how carefully they must be measured.  In the square-root regime theory
    says elasticity -1 for RTT and -1/2 for p; the timeout regime shifts
    weight onto T0.  No counterpart figure exists in the paper; this is
    the ablation DESIGN.md calls out for the measurement pipeline. *)

type elasticity = {
  p : float;  (** Operating point. *)
  wrt_rtt : float;
  wrt_t0 : float;
  wrt_p : float;
  wrt_wm : float;
}

val elasticities :
  ?params:Pftk_core.Params.t -> ?grid:float array -> unit -> elasticity list
(** Central-difference log-log derivatives of eq. (32) at each grid
    point. *)

val print : Format.formatter -> elasticity list -> unit
