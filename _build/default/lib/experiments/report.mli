(** Small formatting helpers shared by the experiment drivers: every
    driver prints the rows/series of one paper artifact in a uniform,
    grep-friendly layout. *)

val heading : Format.formatter -> string -> unit
(** An underlined section title. *)

val subheading : Format.formatter -> string -> unit

val series :
  Format.formatter -> label:string -> (float * float) list -> unit
(** A named two-column series, one [x y] pair per line. *)

val kv : Format.formatter -> string -> string -> unit
(** An aligned ["key: value"] line. *)

val fmt_rate : float -> string
(** Packets/second with sensible precision. *)

val fmt_p : float -> string
(** Loss probability. *)
