lib/experiments/fig_window.mli: Format
