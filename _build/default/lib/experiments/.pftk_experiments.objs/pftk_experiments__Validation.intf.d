lib/experiments/validation.mli: Format
