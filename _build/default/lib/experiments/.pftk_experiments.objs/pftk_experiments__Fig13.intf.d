lib/experiments/fig13.mli: Format Pftk_core
