lib/experiments/fig9.ml: Approx_model Array Float Format Full_model Fun Int64 List Params Pftk_core Pftk_dataset Pftk_stats Pftk_trace Report Tdonly
