lib/experiments/table1.ml: Format List Pftk_dataset Report
