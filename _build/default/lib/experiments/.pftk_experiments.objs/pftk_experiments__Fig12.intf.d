lib/experiments/fig12.mli: Format Pftk_core
