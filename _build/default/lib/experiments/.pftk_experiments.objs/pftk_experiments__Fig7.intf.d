lib/experiments/fig7.mli: Format Pftk_dataset
