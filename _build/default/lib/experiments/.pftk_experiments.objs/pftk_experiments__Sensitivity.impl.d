lib/experiments/sensitivity.ml: Array Format Full_model List Params Pftk_core Report Sweep
