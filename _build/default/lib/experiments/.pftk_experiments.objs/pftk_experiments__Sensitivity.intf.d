lib/experiments/sensitivity.mli: Format Pftk_core
