lib/experiments/fig_window.ml: Array Format Int64 List Pftk_loss Pftk_stats Pftk_tcp Report
