lib/experiments/fig10.ml: Approx_model Array Fig9 Float Full_model Fun Int64 List Params Pftk_core Pftk_dataset Pftk_stats Pftk_trace Tdonly
