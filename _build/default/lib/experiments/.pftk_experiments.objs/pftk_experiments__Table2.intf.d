lib/experiments/table2.mli: Format Pftk_dataset Pftk_trace
