lib/experiments/fairness.ml: Format Int64 List Pftk_tcp Printf Report
