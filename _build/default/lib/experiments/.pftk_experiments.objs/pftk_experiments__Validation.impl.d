lib/experiments/validation.ml: Approx_model Array Format Full_model Fun Int64 List Params Pftk_core Pftk_loss Pftk_netsim Pftk_stats Pftk_tcp Pftk_trace Printf Report Sweep Tdonly
