lib/experiments/fig13.ml: Ascii_plot Format Full_model List Params Pftk_core Report Sweep Throughput
