lib/experiments/fairness.mli: Format Pftk_tcp
