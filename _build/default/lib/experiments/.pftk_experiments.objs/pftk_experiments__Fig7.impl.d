lib/experiments/fig7.ml: Approx_model Ascii_plot Float Format Full_model Int64 List Params Pftk_core Pftk_dataset Pftk_trace Printf Report Sweep Tdonly
