lib/experiments/window_dist.mli: Format Pftk_core
