lib/experiments/fig8.ml: Array Format Full_model Fun Int64 List Params Pftk_core Pftk_dataset Pftk_stats Pftk_trace Printf Report Tdonly
