lib/experiments/table2.ml: Array Format Int64 List Pftk_dataset Pftk_trace Report
