lib/experiments/fig12.ml: Approx_model Array Ascii_plot Float Format Full_model Int64 List Markov Params Pftk_core Pftk_loss Pftk_stats Pftk_tcp Printf Report Sweep
