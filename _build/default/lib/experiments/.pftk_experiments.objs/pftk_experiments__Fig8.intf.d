lib/experiments/fig8.mli: Format Pftk_dataset
