lib/experiments/fig10.mli: Fig9 Format
