lib/experiments/window_dist.ml: Array Float Format Markov Params Pftk_core Pftk_loss Pftk_stats Pftk_tcp Printf Report Tdonly
