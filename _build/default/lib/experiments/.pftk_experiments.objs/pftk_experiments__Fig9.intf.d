lib/experiments/fig9.mli: Format Pftk_dataset
