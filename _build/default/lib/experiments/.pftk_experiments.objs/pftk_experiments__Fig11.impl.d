lib/experiments/fig11.ml: Format Full_model Int64 List Params Pftk_core Pftk_loss Pftk_netsim Pftk_stats Pftk_tcp Pftk_trace Printf Report
