module Round_sim = Pftk_tcp.Round_sim
module Loss_process = Pftk_loss.Loss_process

type sample_path = { label : string; windows : float array }

let path ~seed ~rounds ~label ~p ~wm ~dup_ack_threshold =
  let rng = Pftk_stats.Rng.create ~seed () in
  let loss = Loss_process.round_correlated rng ~p in
  let config =
    {
      Round_sim.default_config with
      Round_sim.wm;
      dup_ack_threshold;
      initial_window = 8.;
      rtt_jitter = 0.;
    }
  in
  { label; windows = Round_sim.window_samples ~seed ~rounds ~loss config }

let generate ?(seed = 53L) ?(rounds = 200) () =
  [
    (* Large window, moderate loss: losses land on big windows, so dup
       ACKs abound and indications are TDs (Fig. 1's sawtooth). *)
    path ~seed ~rounds ~label:"fig1: TD indications only" ~p:0.01 ~wm:64
      ~dup_ack_threshold:3;
    (* Heavier loss: small windows at loss time force timeout sequences
       (Fig. 3). *)
    path ~seed:(Int64.add seed 1L) ~rounds
      ~label:"fig3: TD and TO indications" ~p:0.06 ~wm:64 ~dup_ack_threshold:3;
    (* Tight receiver window: growth flattens at Wm (Fig. 5). *)
    path ~seed:(Int64.add seed 2L) ~rounds ~label:"fig5: window-limited"
      ~p:0.005 ~wm:12 ~dup_ack_threshold:3;
  ]

let print ppf paths =
  Report.heading ppf "Figs. 1/3/5: Window-evolution sample paths";
  List.iter
    (fun { label; windows } ->
      Report.subheading ppf label;
      Format.fprintf ppf "# round window@.";
      Array.iteri (fun i w -> Format.fprintf ppf "%d %.2f@." i w) windows)
    paths
