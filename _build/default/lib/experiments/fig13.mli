(** Fig. 13: send rate B(p) vs throughput T(p) for a bulk-transfer flow at
    the paper's parameters (W_m 12, RTT 470 ms, T0 3.2 s).  Throughput is
    bounded above by send rate, with the gap widening as p grows. *)

type result = {
  params : Pftk_core.Params.t;
  send_rate : (float * float) list;
  throughput : (float * float) list;
  delivery_ratio : (float * float) list;
}

val generate : ?params:Pftk_core.Params.t -> ?grid:float array -> unit -> result

val print : Format.formatter -> result -> unit
