lib/trace/intervals.mli: Recorder
