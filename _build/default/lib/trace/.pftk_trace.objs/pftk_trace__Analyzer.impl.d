lib/trace/analyzer.ml: Array Event Format Hashtbl List Pftk_stats Recorder String
