lib/trace/serialize.mli: Event Recorder
