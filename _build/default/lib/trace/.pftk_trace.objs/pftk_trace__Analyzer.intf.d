lib/trace/analyzer.mli: Event Format Recorder
