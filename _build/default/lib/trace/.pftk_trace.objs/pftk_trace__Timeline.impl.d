lib/trace/timeline.ml: Array Event List Printf Recorder
