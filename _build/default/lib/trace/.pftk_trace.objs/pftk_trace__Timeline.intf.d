lib/trace/timeline.mli: Recorder
