lib/trace/intervals.ml: Analyzer Array Event List Recorder
