lib/trace/serialize.ml: Event Fun Printf Recorder String
