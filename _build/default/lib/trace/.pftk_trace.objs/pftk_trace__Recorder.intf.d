lib/trace/recorder.mli: Event Format
