lib/trace/recorder.ml: Array Event Format List
