type point = { time : float; value : float }

let collect f recorder =
  Recorder.fold
    (fun acc e -> match f e with Some pt -> pt :: acc | None -> acc)
    [] recorder
  |> List.rev

let sequence_numbers recorder =
  let firsts =
    collect
      (fun { Event.time; kind } ->
        match kind with
        | Event.Segment_sent { seq; retransmission = false; _ } ->
            Some { time; value = float_of_int seq }
        | _ -> None)
      recorder
  in
  let rexmits =
    collect
      (fun { Event.time; kind } ->
        match kind with
        | Event.Segment_sent { seq; retransmission = true; _ } ->
            Some { time; value = float_of_int seq }
        | _ -> None)
      recorder
  in
  (firsts, rexmits)

let congestion_window recorder =
  collect
    (fun { Event.time; kind } ->
      match kind with
      | Event.Segment_sent { cwnd; _ } -> Some { time; value = cwnd }
      | _ -> None)
    recorder

let ack_progress recorder =
  collect
    (fun { Event.time; kind } ->
      match kind with
      | Event.Ack_received { ack } -> Some { time; value = float_of_int ack }
      | _ -> None)
    recorder

let goodput ?(window = 10.) recorder =
  if not (window > 0.) then invalid_arg "Timeline.goodput: window must be positive";
  let duration = Recorder.duration recorder in
  let bins = int_of_float (duration /. window) in
  let counts = Array.make (max 1 bins) 0 in
  Recorder.iter
    (fun e ->
      if Event.is_send e then begin
        let bin = int_of_float (e.Event.time /. window) in
        if bin < Array.length counts then counts.(bin) <- counts.(bin) + 1
      end)
    recorder;
  List.init (max 0 bins) (fun i ->
      {
        time = (float_of_int i +. 0.5) *. window;
        value = float_of_int counts.(i) /. window;
      })

let rtt_series recorder =
  collect
    (fun { Event.time; kind } ->
      match kind with
      | Event.Rtt_sample { sample; _ } -> Some { time; value = sample }
      | _ -> None)
    recorder

let summary_line recorder =
  let sends = Recorder.packets_sent recorder in
  let rexmits =
    Recorder.fold
      (fun n e ->
        match e.Event.kind with
        | Event.Segment_sent { retransmission = true; _ } -> n + 1
        | _ -> n)
      0 recorder
  in
  Printf.sprintf "%.1f s, %d packets (%d retransmissions), %d events"
    (Recorder.duration recorder)
    sends rexmits (Recorder.length recorder)
