(** Loss-indication analysis of sender traces: the simulated counterpart of
    the paper's tcpdump post-processing programs (§III).

    Two modes:

    - {e Ground truth} uses the sender's own [Timer_fired] and
      [Fast_retransmit_triggered] events.  Consecutive timer firings with
      increasing backoff form one timeout {e sequence} (one loss
      indication, like the model's Z^TO).
    - {e Inference} reconstructs indications from [Segment_sent] and
      [Ack_received] alone, the way the paper's programs worked from raw
      packet traces: a retransmission preceded by a run of
      [dup_ack_threshold]+ duplicate ACKs is a TD; a retransmission after
      an idle gap is a timeout firing; firings without intervening
      cumulative progress chain into one sequence.  RTT samples follow
      Karn's algorithm (segments retransmitted at least once are never
      timed).

    The test suite validates inference against ground truth on
    packet-level Reno traces. *)

type indication =
  | Td of { at : float }
  | To of {
      at : float;  (** Time of the first timer firing. *)
      timeouts : int;  (** Sequence length (1 = single timeout). *)
      first_timer : float;  (** Duration of the first (undoubled) timer. *)
    }

val indication_time : indication -> float

val infer_indications :
  ?dup_ack_threshold:int ->
  ?min_timeout_gap:float ->
  Event.t array ->
  indication list
(** Inference mode over a chronological event array.  [min_timeout_gap]
    (default 0.15 s) is the idle period that distinguishes a timeout
    retransmission from a recovery burst. *)

val ground_truth_indications : Event.t array -> indication list

type summary = {
  duration : float;
  packets_sent : int;
  loss_indications : int;
  td_count : int;
  to_by_backoff : int array;
      (** Six buckets: sequences of exactly 1..5 timeouts, then "6+" —
          Table II's T0..T5-or-more columns. *)
  observed_p : float;  (** indications / packets sent. *)
  avg_rtt : float;  (** Mean of Karn-valid RTT samples; 0 if none. *)
  avg_t0 : float;  (** Mean first-timer duration over sequences; 0 if none. *)
  send_rate : float;  (** packets / duration. *)
}

val summarize :
  ?mode:[ `Ground_truth | `Infer ] ->
  ?dup_ack_threshold:int ->
  ?min_timeout_gap:float ->
  Recorder.t ->
  summary
(** Default mode [`Ground_truth].  In inference mode, RTT samples are
    re-derived from the send/ACK matching; in ground-truth mode the
    sender's [Rtt_sample] events are averaged. *)

val karn_rtt_samples : Event.t array -> float array
(** The inference-mode RTT samples: first-transmission segments matched to
    the first cumulative ACK covering them, skipping any segment that was
    ever retransmitted. *)

val pp_summary : Format.formatter -> summary -> unit
