(** Time-series extraction from traces: the tcptrace-style views ([11] in
    the paper's references — the tool the authors verified their analysis
    against).

    Produces plottable series from a recorded trace: the sequence-time
    diagram (sends and retransmissions), the congestion-window trajectory,
    cumulative-ACK progress, and a goodput-over-time series.  The CLI and
    examples feed these to {!Pftk_experiments.Ascii_plot}-style renderers
    or external tools. *)

type point = { time : float; value : float }

val sequence_numbers : Recorder.t -> point list * point list
(** (first transmissions, retransmissions): the classic time-sequence
    diagram's two point clouds, seq number vs time. *)

val congestion_window : Recorder.t -> point list
(** cwnd at each send, as the sender recorded it. *)

val ack_progress : Recorder.t -> point list
(** Cumulative ACK value over time (monotone steps). *)

val goodput : ?window:float -> Recorder.t -> point list
(** Sliding send-rate series: packets sent per [window] seconds (default
    10), one point per window.  Raises [Invalid_argument] when
    [window <= 0.]. *)

val rtt_series : Recorder.t -> point list
(** Karn-valid RTT samples over time (from the sender's own records). *)

val summary_line : Recorder.t -> string
(** One-line digest: duration, packets, retransmissions, distinct events. *)
