type t = {
  mutable buf : Event.t array;
  mutable size : int;
  mutable last_time : float;
}

let placeholder : Event.t = { time = 0.; kind = Event.Connection_closed }

let create () = { buf = Array.make 1024 placeholder; size = 0; last_time = 0. }

let record t ~time kind =
  if time < t.last_time then invalid_arg "Recorder.record: time went backwards";
  t.last_time <- time;
  if t.size = Array.length t.buf then begin
    let bigger = Array.make (2 * t.size) placeholder in
    Array.blit t.buf 0 bigger 0 t.size;
    t.buf <- bigger
  end;
  t.buf.(t.size) <- { time; kind };
  t.size <- t.size + 1

let length t = t.size
let events t = Array.sub t.buf 0 t.size

let iter f t =
  for i = 0 to t.size - 1 do
    f t.buf.(i)
  done

let fold f init t =
  let acc = ref init in
  iter (fun e -> acc := f !acc e) t;
  !acc

let between t ~start ~stop =
  let out = ref [] in
  iter
    (fun e -> if e.Event.time >= start && e.Event.time < stop then out := e :: !out)
    t;
  Array.of_list (List.rev !out)

let duration t = if t.size = 0 then 0. else t.buf.(t.size - 1).Event.time

let packets_sent t =
  fold (fun n e -> if Event.is_send e then n + 1 else n) 0 t

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  iter (fun e -> Format.fprintf ppf "%a@ " Event.pp e) t;
  Format.fprintf ppf "@]"
