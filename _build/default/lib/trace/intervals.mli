(** Fixed-width interval binning of a trace: §III divides each 1-h trace
    into 36 consecutive 100-s intervals and, per interval, measures the
    number of packets sent and the frequency of loss indications — the
    scatter points of Fig. 7 — classifying each interval by the worst loss
    event it contains. *)

type classification =
  | Td_only  (** No timeouts in the interval (TD indications at most). *)
  | T0  (** At least one single timeout, no exponential backoff. *)
  | T1  (** At least one double timeout. *)
  | T2_plus  (** Deeper backoff. *)
  | Quiet  (** No loss indication at all. *)

val classification_label : classification -> string

type interval = {
  index : int;
  start : float;
  stop : float;
  packets_sent : int;
  loss_indications : int;
  observed_p : float;  (** indications / packets (0 when no packets). *)
  classification : classification;
}

val split :
  ?mode:[ `Ground_truth | `Infer ] ->
  ?dup_ack_threshold:int ->
  width:float ->
  Recorder.t ->
  interval list
(** Bin a trace into consecutive [width]-second intervals (the trailing
    partial interval is dropped, as the paper's fixed 36 bins imply).
    Raises [Invalid_argument] when [width <= 0.]. *)
