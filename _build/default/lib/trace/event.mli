(** Sender-side trace events: the simulated counterpart of running tcpdump
    at the sender (§III).

    The analyzer ({!module:Analyzer}) reconstructs loss indications from
    [Segment_sent]/[Ack_received] alone, exactly as the paper's analysis
    programs worked from packet traces.  The sender additionally emits
    [Timer_fired], [Fast_retransmit_triggered] and [Rtt_sample] ground-truth
    events, which the test suite uses to validate the analyzer's inference
    (the paper validated its programs against tcptrace and ns). *)

type kind =
  | Segment_sent of {
      seq : int;  (** Segment sequence number, in packets (0-based). *)
      retransmission : bool;
      cwnd : float;  (** Congestion window at send time, packets. *)
      flight : int;  (** Outstanding segments after this send. *)
    }
  | Ack_received of { ack : int (** Next expected seq (cumulative). *) }
  | Timer_fired of {
      backoff : int;  (** 1 for a first timeout, 2 for a doubled timer, ... *)
      rto : float;  (** Timer value that just expired, seconds. *)
    }
  | Fast_retransmit_triggered of { seq : int }
  | Rtt_sample of { sample : float; srtt : float; rto : float }
  | Round_started of { index : int; window : float }
      (** Emitted by the round-based simulator only. *)
  | Connection_closed

type t = { time : float; kind : kind }

val pp : Format.formatter -> t -> unit

val is_send : t -> bool
val is_ack : t -> bool
