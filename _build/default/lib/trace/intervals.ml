type classification = Td_only | T0 | T1 | T2_plus | Quiet

let classification_label = function
  | Td_only -> "TD"
  | T0 -> "T0"
  | T1 -> "T1"
  | T2_plus -> "T2+"
  | Quiet -> "quiet"

type interval = {
  index : int;
  start : float;
  stop : float;
  packets_sent : int;
  loss_indications : int;
  observed_p : float;
  classification : classification;
}

let classify indications =
  let deepest = ref (-1) in
  let any_td = ref false in
  List.iter
    (function
      | Analyzer.Td _ -> any_td := true
      | Analyzer.To { timeouts; _ } -> deepest := max !deepest timeouts)
    indications;
  if !deepest >= 3 then T2_plus
  else if !deepest = 2 then T1
  else if !deepest = 1 then T0
  else if !any_td then Td_only
  else Quiet

let split ?(mode = `Ground_truth) ?dup_ack_threshold ~width recorder =
  if not (width > 0.) then invalid_arg "Intervals.split: width must be positive";
  let events = Recorder.events recorder in
  let indications =
    match mode with
    | `Ground_truth -> Analyzer.ground_truth_indications events
    | `Infer -> Analyzer.infer_indications ?dup_ack_threshold events
  in
  let duration = Recorder.duration recorder in
  let bins = int_of_float (duration /. width) in
  List.init bins (fun index ->
      let start = float_of_int index *. width in
      let stop = start +. width in
      let in_bin t = t >= start && t < stop in
      let packets_sent =
        Array.fold_left
          (fun n e ->
            if Event.is_send e && in_bin e.Event.time then n + 1 else n)
          0 events
      in
      let here =
        List.filter (fun i -> in_bin (Analyzer.indication_time i)) indications
      in
      let loss_indications = List.length here in
      {
        index;
        start;
        stop;
        packets_sent;
        loss_indications;
        observed_p =
          (if packets_sent = 0 then 0.
           else float_of_int loss_indications /. float_of_int packets_sent);
        classification = classify here;
      })
