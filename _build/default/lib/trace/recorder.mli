(** An append-only buffer of trace events, timestamped from the simulation
    clock by the sender that owns it. *)

type t

val create : unit -> t

val record : t -> time:float -> Event.kind -> unit
(** Timestamps must be non-decreasing; raises [Invalid_argument]
    otherwise (the simulator never goes back in time). *)

val length : t -> int
val events : t -> Event.t array
(** Snapshot copy, in record order. *)

val iter : (Event.t -> unit) -> t -> unit
val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val between : t -> start:float -> stop:float -> Event.t array
(** Events with [start <= time < stop]. *)

val duration : t -> float
(** Timestamp of the last event, [0.] when empty. *)

val packets_sent : t -> int
(** Count of [Segment_sent] events (retransmissions included — the paper's
    send rate counts every transmission). *)

val pp : Format.formatter -> t -> unit
