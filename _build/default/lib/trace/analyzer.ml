type indication =
  | Td of { at : float }
  | To of { at : float; timeouts : int; first_timer : float }

let indication_time = function Td { at } -> at | To { at; _ } -> at

(* --- Ground-truth mode ------------------------------------------------- *)

let ground_truth_indications events =
  let out = ref [] in
  let open_seq = ref None in
  let close () =
    match !open_seq with
    | Some (at, count, first_timer) ->
        out := To { at; timeouts = count; first_timer } :: !out;
        open_seq := None
    | None -> ()
  in
  Array.iter
    (fun { Event.time; kind } ->
      match kind with
      | Event.Fast_retransmit_triggered _ ->
          close ();
          out := Td { at = time } :: !out
      | Event.Timer_fired { backoff; rto } -> begin
          match !open_seq with
          | Some (at, count, first_timer) when backoff = count + 1 ->
              open_seq := Some (at, count + 1, first_timer)
          | _ ->
              close ();
              open_seq := Some (time, 1, rto)
        end
      | Event.Ack_received _ | Event.Segment_sent _ | Event.Rtt_sample _
      | Event.Round_started _ | Event.Connection_closed ->
          (* A backoff-1 firing after progress starts a new sequence; the
             chain above keys on the backoff counter, so ordinary events
             need no action here. *)
          ())
    events;
  close ();
  List.rev !out

(* --- Inference mode ----------------------------------------------------- *)

let infer_indications ?(dup_ack_threshold = 3) ?(min_timeout_gap = 0.15) events =
  if dup_ack_threshold < 1 then
    invalid_arg "Analyzer.infer_indications: dup_ack_threshold must be >= 1";
  if not (min_timeout_gap > 0.) then
    invalid_arg "Analyzer.infer_indications: min_timeout_gap must be positive";
  let out = ref [] in
  let highest_ack = ref (-1) in
  let dup_ack = ref (-1) in
  let dup_count = ref 0 in
  let last_activity = ref 0. in
  (* Open timeout sequence: (start time, firing count, first gap). *)
  let open_seq = ref None in
  let close () =
    match !open_seq with
    | Some (at, count, first_timer) ->
        out := To { at; timeouts = count; first_timer } :: !out;
        open_seq := None
    | None -> ()
  in
  Array.iter
    (fun { Event.time; kind } ->
      match kind with
      | Event.Ack_received { ack } ->
          if ack > !highest_ack then begin
            (* Cumulative progress ends any ongoing timeout sequence. *)
            close ();
            highest_ack := ack;
            dup_ack := ack;
            dup_count := 0
          end
          else if ack = !dup_ack then incr dup_count
          else begin
            dup_ack := ack;
            dup_count := 1
          end;
          last_activity := time
      | Event.Segment_sent { seq; retransmission; _ } ->
          if retransmission then begin
            let gap = time -. !last_activity in
            if seq = !dup_ack && !dup_count >= dup_ack_threshold then begin
              close ();
              out := Td { at = time } :: !out;
              dup_count := 0
            end
            else if gap >= min_timeout_gap then begin
              match !open_seq with
              | Some (at, count, first_timer) ->
                  open_seq := Some (at, count + 1, first_timer)
              | None -> open_seq := Some (time, 1, gap)
            end
            (* else: recovery-burst retransmission, not a new indication *)
          end;
          last_activity := time
      | Event.Timer_fired _ | Event.Fast_retransmit_triggered _
      | Event.Rtt_sample _ | Event.Round_started _ | Event.Connection_closed ->
          ())
    events;
  close ();
  List.rev !out

(* --- Karn RTT matching -------------------------------------------------- *)

let karn_rtt_samples events =
  let send_time : (int, float) Hashtbl.t = Hashtbl.create 512 in
  let tainted : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let highest_ack = ref 0 in
  let samples = ref [] in
  Array.iter
    (fun { Event.time; kind } ->
      match kind with
      | Event.Segment_sent { seq; retransmission; _ } ->
          if retransmission then Hashtbl.replace tainted seq ()
          else if not (Hashtbl.mem send_time seq) then
            Hashtbl.replace send_time seq time
      | Event.Ack_received { ack } ->
          if ack > !highest_ack then begin
            for seq = !highest_ack to ack - 1 do
              (match Hashtbl.find_opt send_time seq with
              | Some sent when not (Hashtbl.mem tainted seq) ->
                  samples := (time -. sent) :: !samples
              | Some _ | None -> ());
              Hashtbl.remove send_time seq;
              Hashtbl.remove tainted seq
            done;
            highest_ack := ack
          end
      | Event.Timer_fired _ | Event.Fast_retransmit_triggered _
      | Event.Rtt_sample _ | Event.Round_started _ | Event.Connection_closed ->
          ())
    events;
  Array.of_list (List.rev !samples)

(* --- Summaries ----------------------------------------------------------- *)

type summary = {
  duration : float;
  packets_sent : int;
  loss_indications : int;
  td_count : int;
  to_by_backoff : int array;
  observed_p : float;
  avg_rtt : float;
  avg_t0 : float;
  send_rate : float;
}

let bucketize indications =
  let to_by_backoff = Array.make 6 0 in
  let td_count = ref 0 in
  let first_timers = ref [] in
  List.iter
    (function
      | Td _ -> incr td_count
      | To { timeouts; first_timer; _ } ->
          let bucket = min (timeouts - 1) 5 in
          to_by_backoff.(bucket) <- to_by_backoff.(bucket) + 1;
          first_timers := first_timer :: !first_timers)
    indications;
  (!td_count, to_by_backoff, !first_timers)

let mean_or_zero = function
  | [] -> 0.
  | samples -> Pftk_stats.Descriptive.mean_list samples

let summarize ?(mode = `Ground_truth) ?dup_ack_threshold ?min_timeout_gap
    recorder =
  let events = Recorder.events recorder in
  let indications =
    match mode with
    | `Ground_truth -> ground_truth_indications events
    | `Infer -> infer_indications ?dup_ack_threshold ?min_timeout_gap events
  in
  let td_count, to_by_backoff, first_timers = bucketize indications in
  let rtts =
    match mode with
    | `Infer -> Array.to_list (karn_rtt_samples events)
    | `Ground_truth ->
        Array.to_list events
        |> List.filter_map (fun { Event.kind; _ } ->
               match kind with
               | Event.Rtt_sample { sample; _ } -> Some sample
               | _ -> None)
  in
  let packets_sent =
    Array.fold_left
      (fun n e -> if Event.is_send e then n + 1 else n)
      0 events
  in
  let duration = Recorder.duration recorder in
  let loss_indications = List.length indications in
  {
    duration;
    packets_sent;
    loss_indications;
    td_count;
    to_by_backoff;
    observed_p =
      (if packets_sent = 0 then 0.
       else float_of_int loss_indications /. float_of_int packets_sent);
    avg_rtt = mean_or_zero rtts;
    avg_t0 = mean_or_zero first_timers;
    send_rate =
      (if duration > 0. then float_of_int packets_sent /. duration else 0.);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "packets=%d indications=%d (td=%d, to=[%s]) p=%.4f rtt=%.3f t0=%.3f rate=%.2f"
    s.packets_sent s.loss_indications s.td_count
    (String.concat ";" (Array.to_list (Array.map string_of_int s.to_by_backoff)))
    s.observed_p s.avg_rtt s.avg_t0 s.send_rate
