type kind =
  | Segment_sent of {
      seq : int;
      retransmission : bool;
      cwnd : float;
      flight : int;
    }
  | Ack_received of { ack : int }
  | Timer_fired of { backoff : int; rto : float }
  | Fast_retransmit_triggered of { seq : int }
  | Rtt_sample of { sample : float; srtt : float; rto : float }
  | Round_started of { index : int; window : float }
  | Connection_closed

type t = { time : float; kind : kind }

let pp ppf { time; kind } =
  match kind with
  | Segment_sent { seq; retransmission; cwnd; flight } ->
      Format.fprintf ppf "%.6f send seq=%d%s cwnd=%.2f flight=%d" time seq
        (if retransmission then " (rexmit)" else "")
        cwnd flight
  | Ack_received { ack } -> Format.fprintf ppf "%.6f ack %d" time ack
  | Timer_fired { backoff; rto } ->
      Format.fprintf ppf "%.6f timeout backoff=%d rto=%.3f" time backoff rto
  | Fast_retransmit_triggered { seq } ->
      Format.fprintf ppf "%.6f fast-retransmit seq=%d" time seq
  | Rtt_sample { sample; srtt; rto } ->
      Format.fprintf ppf "%.6f rtt-sample %.4f srtt=%.4f rto=%.3f" time sample
        srtt rto
  | Round_started { index; window } ->
      Format.fprintf ppf "%.6f round %d window=%.2f" time index window
  | Connection_closed -> Format.fprintf ppf "%.6f closed" time

let is_send t = match t.kind with Segment_sent _ -> true | _ -> false
let is_ack t = match t.kind with Ack_received _ -> true | _ -> false
