type os_family = Sunos4 | Sunos5 | Linux | Irix | Hpux | Win95 | Solaris

type t = { name : string; domain : string; os : string; family : os_family }

let host name domain os family = { name; domain; os; family }

(* Table I, verbatim. *)
let all =
  [
    host "ada" "hofstra.edu" "Irix 6.2" Irix;
    host "afer" "cs.umn.edu" "Linux" Linux;
    host "al" "cs.wm.edu" "Linux 2.0.31" Linux;
    host "alps" "cc.gatech.edu" "SunOS 4.1.3" Sunos4;
    host "babel" "cs.umass.edu" "SunOS 5.5.1" Sunos5;
    host "baskerville" "cs.arizona.edu" "SunOS 5.5.1" Sunos5;
    host "ganef" "cs.ucla.edu" "SunOS 5.5.1" Sunos5;
    host "imagine" "cs.umass.edu" "win95" Win95;
    host "manic" "cs.umass.edu" "Irix 6.2" Irix;
    host "mafalda" "inria.fr" "SunOS 5.5.1" Sunos5;
    host "maria" "wustl.edu" "SunOS 4.1.3" Sunos4;
    host "modi4" "ncsa.uiuc.edu" "Irix 6.2" Irix;
    host "pif" "inria.fr" "Solaris 2.5" Solaris;
    host "pong" "usc.edu" "HP-UX" Hpux;
    host "spiff" "sics.se" "SunOS 4.1.4" Sunos4;
    host "sutton" "cs.columbia.edu" "SunOS 5.5.1" Sunos5;
    host "tove" "cs.umd.edu" "SunOS 4.1.3" Sunos4;
    host "void" "cs.umass.edu" "Linux 2.0.30" Linux;
    host "att" "att.com" "Linux" Linux;
  ]

let find name = List.find_opt (fun h -> h.name = name) all

type tweaks = { dup_ack_threshold : int; backoff_cap : int }

let reno_tweaks = function
  | Linux -> { dup_ack_threshold = 2; backoff_cap = 6 }
  | Irix -> { dup_ack_threshold = 3; backoff_cap = 5 }
  | Sunos4 | Sunos5 | Hpux | Win95 | Solaris ->
      { dup_ack_threshold = 3; backoff_cap = 6 }

let pp ppf h = Format.fprintf ppf "%-12s %-16s %s" h.name h.domain h.os
