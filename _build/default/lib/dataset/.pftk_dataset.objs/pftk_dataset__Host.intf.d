lib/dataset/host.mli: Format
