lib/dataset/path_profile.ml: List Pftk_core Printf Table2_data
