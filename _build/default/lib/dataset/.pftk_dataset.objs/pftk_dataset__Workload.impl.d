lib/dataset/workload.ml: Array Float Host Int64 List Path_profile Pftk_loss Pftk_stats Pftk_tcp Pftk_trace Table2_data
