lib/dataset/host.ml: Format List
