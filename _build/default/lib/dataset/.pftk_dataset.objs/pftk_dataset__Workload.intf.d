lib/dataset/workload.mli: Path_profile Pftk_loss Pftk_stats Pftk_tcp Pftk_trace
