lib/dataset/table2_data.mli:
