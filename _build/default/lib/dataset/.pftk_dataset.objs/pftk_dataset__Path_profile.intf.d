lib/dataset/path_profile.mli: Pftk_core Table2_data
