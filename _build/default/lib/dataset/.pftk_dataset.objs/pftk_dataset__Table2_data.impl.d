lib/dataset/table2_data.ml: Array List
