(** Synthetic path profiles: one per measured sender-receiver pair.

    Each profile carries the path parameters the paper published (RTT and
    T0 from Table II; W_m from the Fig. 7 captions where given, assigned a
    plausible per-OS value elsewhere — documented in DESIGN.md) plus the
    loss level needed to drive the simulators.  The paper's 100-s pairs
    that have no Table II row (att-sutton, manic-afer of Fig. 8, and the
    modem path of Fig. 11) get profiles calibrated from the figure
    captions and surrounding text. *)

type t = {
  sender : string;
  receiver : string;
  rtt : float;
  t0 : float;
  wm : int;
  wm_published : bool;  (** [true] when W_m comes from a figure caption. *)
  loss_rate : float;  (** Target loss-indication frequency (Table II's p). *)
  table2 : Table2_data.row option;  (** The published row, when one exists. *)
}

val all : t list
(** The 24 Table II paths, in paper order. *)

val extras : t list
(** att-sutton and manic-afer (Fig. 8), and manic-p5, the 28.8 kbit/s
    modem path of Fig. 11. *)

val find : sender:string -> receiver:string -> t option
(** Searches {!all} then {!extras}. *)

val params : t -> Pftk_core.Params.t
(** Model parameters of the path (b = 2 throughout, as in the paper). *)

val label : t -> string
(** ["sender-receiver"]. *)

val fig7_paths : t list
(** The six paths plotted in Fig. 7, in subfigure order (a)-(f). *)

val fig8_paths : t list
(** The six paths plotted in Fig. 8, in subfigure order (a)-(f). *)

val modem : t
(** manic-p5 (Fig. 11): RTT 4.726 s, T0 18.407 s, W_m 22. *)
