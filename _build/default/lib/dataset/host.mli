(** Table I: the measurement hosts, their domains and operating systems.

    The OS matters because stack quirks shift model inputs (§IV): Linux
    fires a TD after two duplicate ACKs, Irix caps exponential backoff at
    2^5, SunOS 4.x is Tahoe-derived.  {!reno_tweaks} maps each OS family to
    the corresponding simulator knobs. *)

type os_family = Sunos4 | Sunos5 | Linux | Irix | Hpux | Win95 | Solaris

type t = {
  name : string;
  domain : string;
  os : string;  (** Verbatim Table I string. *)
  family : os_family;
}

val all : t list
(** The 19 hosts of Table I. *)

val find : string -> t option
(** Lookup by host name. *)

type tweaks = {
  dup_ack_threshold : int;
  backoff_cap : int;
}

val reno_tweaks : os_family -> tweaks
(** Linux: threshold 2; Irix: backoff cap 5; everything else: the defaults
    (threshold 3, cap 6). *)

val pp : Format.formatter -> t -> unit
