type t = {
  sender : string;
  receiver : string;
  rtt : float;
  t0 : float;
  wm : int;
  wm_published : bool;
  loss_rate : float;
  table2 : Table2_data.row option;
}

(* W_m per path.  Published values come from the Fig. 7 captions; the rest
   are fitted offline as the integer W_m at which the full model, evaluated
   at the row's published (p, RTT, T0), best matches the row's hourly packet
   count (see DESIGN.md).  The fit independently recovers the published
   W_m = 6 for manic-baskerville, and assigns W_m = 3..5 exactly to the
   rows with near-zero TD counts -- windows too small for three duplicate
   ACKs, which is the paper's own explanation for TO dominance. *)
let wm_table =
  [
    ("manic", "alps", 5, false);
    ("manic", "baskerville", 6, true);
    ("manic", "ganef", 6, false);
    ("manic", "mafalda", 5, false);
    ("manic", "maria", 5, false);
    ("manic", "spiff", 10, false);
    ("manic", "sutton", 9, false);
    ("manic", "tove", 3, false);
    ("void", "alps", 48, true);
    ("void", "baskerville", 7, false);
    ("void", "ganef", 6, false);
    ("void", "maria", 5, false);
    ("void", "spiff", 11, false);
    ("void", "sutton", 8, false);
    ("void", "tove", 8, true);
    ("babel", "alps", 3, false);
    ("babel", "baskerville", 7, false);
    ("babel", "ganef", 8, false);
    ("babel", "spiff", 9, false);
    ("babel", "sutton", 8, false);
    ("babel", "tove", 6, false);
    ("pif", "alps", 10, false);
    ("pif", "imagine", 8, true);
    ("pif", "manic", 33, true);
  ]

let of_row (row : Table2_data.row) =
  let wm, wm_published =
    match
      List.find_opt
        (fun (s, r, _, _) -> s = row.sender && r = row.receiver)
        wm_table
    with
    | Some (_, _, wm, published) -> (wm, published)
    | None -> (12, false)
  in
  {
    sender = row.sender;
    receiver = row.receiver;
    rtt = row.rtt;
    t0 = row.timeout;
    wm;
    wm_published;
    loss_rate = Table2_data.observed_p row;
    table2 = Some row;
  }

let all = List.map of_row Table2_data.rows

(* Paths that appear only in the 100-s experiments (Fig. 8) or the modem
   study (Fig. 11).  att-sutton and manic-afer have no published row; their
   parameters are picked to resemble their Fig. 8 neighbours. *)
let extras =
  [
    {
      sender = "att";
      receiver = "sutton";
      rtt = 0.21;
      t0 = 0.7;
      wm = 8;
      wm_published = false;
      loss_rate = 0.025;
      table2 = None;
    };
    {
      sender = "manic";
      receiver = "afer";
      rtt = 0.26;
      t0 = 1.5;
      wm = 6;
      wm_published = false;
      loss_rate = 0.03;
      table2 = None;
    };
    {
      (* Fig. 11's modem receiver ("p5", a Linux PC behind 28.8 kbit/s). *)
      sender = "manic";
      receiver = "p5";
      rtt = 4.726;
      t0 = 18.407;
      wm = 22;
      wm_published = true;
      loss_rate = 0.02;
      table2 = None;
    };
  ]

let find ~sender ~receiver =
  List.find_opt (fun p -> p.sender = sender && p.receiver = receiver) (all @ extras)

let params t = Pftk_core.Params.make ~rtt:t.rtt ~t0:t.t0 ~wm:t.wm ()

let label t = t.sender ^ "-" ^ t.receiver

let get ~sender ~receiver =
  match find ~sender ~receiver with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Path_profile: unknown path %s-%s" sender receiver)

let fig7_paths =
  [
    get ~sender:"manic" ~receiver:"baskerville";
    get ~sender:"pif" ~receiver:"imagine";
    get ~sender:"pif" ~receiver:"manic";
    get ~sender:"void" ~receiver:"alps";
    get ~sender:"void" ~receiver:"tove";
    get ~sender:"babel" ~receiver:"alps";
  ]

let fig8_paths =
  [
    get ~sender:"manic" ~receiver:"ganef";
    get ~sender:"manic" ~receiver:"mafalda";
    get ~sender:"manic" ~receiver:"tove";
    get ~sender:"manic" ~receiver:"maria";
    get ~sender:"att" ~receiver:"sutton";
    get ~sender:"manic" ~receiver:"afer";
  ]

let modem = get ~sender:"manic" ~receiver:"p5"
