(** Background cross-traffic: an ON/OFF packet source.

    The measurement paths of the paper lost packets to {e other people's
    traffic} at congested routers.  This source reproduces that: during ON
    periods it emits packets as a Poisson stream at a fixed rate; ON and
    OFF durations are exponential, or Pareto-heavy-tailed for the
    self-similar aggregate the traffic literature of the era measured.
    Pointed at a shared bottleneck, it makes a TCP flow's loss endogenous
    and bursty instead of injected. *)

type config = {
  rate : float;  (** Packets per second while ON. *)
  packet_size : int;  (** Bytes per packet. *)
  mean_on : float;  (** Mean ON duration, seconds. *)
  mean_off : float;  (** Mean OFF duration, seconds. *)
  pareto_shape : float option;
      (** [Some a] (requires [a > 1]) draws ON durations from a Pareto with
          that shape (heavy-tailed bursts); [None] uses exponential. *)
}

val default : config
(** 200 pkt/s of 1000-B packets, mean ON 1 s / OFF 2 s, exponential. *)

type t

val start :
  ?config:config ->
  sim:Sim.t ->
  rng:Pftk_stats.Rng.t ->
  send:(size:int -> unit) ->
  unit ->
  t
(** Begin the ON/OFF cycle (starting OFF, so competing flows get a brief
    head start).  [send] is called once per emitted packet. *)

val packets_sent : t -> int

val duty_cycle : config -> float
(** Long-run fraction of time ON: [mean_on / (mean_on + mean_off)]. *)

val mean_rate : config -> float
(** Long-run offered load, packets/s: [rate *. duty_cycle]. *)
