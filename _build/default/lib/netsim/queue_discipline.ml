type t =
  | Drop_tail of { capacity : int }
  | Red of {
      capacity : int;
      min_threshold : float;
      max_threshold : float;
      max_probability : float;
      weight : float;
    }

let drop_tail ~capacity =
  if capacity < 1 then invalid_arg "Queue_discipline.drop_tail: capacity < 1";
  Drop_tail { capacity }

let red ?(weight = 0.002) ?(max_probability = 0.1) ~capacity ~min_threshold
    ~max_threshold () =
  if capacity < 1 then invalid_arg "Queue_discipline.red: capacity < 1";
  if not (0. <= min_threshold && min_threshold < max_threshold) then
    invalid_arg "Queue_discipline.red: need 0 <= min_th < max_th";
  if not (0. < max_probability && max_probability <= 1.) then
    invalid_arg "Queue_discipline.red: max_probability outside (0, 1]";
  if not (0. < weight && weight <= 1.) then
    invalid_arg "Queue_discipline.red: weight outside (0, 1]";
  Red { capacity; min_threshold; max_threshold; max_probability; weight }

type state = { mutable avg : float; mutable since_drop : int }

let init _t = { avg = 0.; since_drop = 0 }

let admit t state ~rng ~queue_length =
  match t with
  | Drop_tail { capacity } -> queue_length < capacity
  | Red { capacity; min_threshold; max_threshold; max_probability; weight } ->
      state.avg <-
        ((1. -. weight) *. state.avg) +. (weight *. float_of_int queue_length);
      if queue_length >= capacity then begin
        state.since_drop <- 0;
        false
      end
      else if state.avg < min_threshold then begin
        state.since_drop <- state.since_drop + 1;
        true
      end
      else if state.avg >= max_threshold then begin
        state.since_drop <- 0;
        false
      end
      else begin
        (* Gentle region: drop with probability growing linearly in the
           average, spread out by the count since the last drop (the
           original RED "p_a" correction). *)
        let base =
          max_probability
          *. ((state.avg -. min_threshold) /. (max_threshold -. min_threshold))
        in
        let denominator = 1. -. (float_of_int state.since_drop *. base) in
        let prob = if denominator <= 0. then 1. else base /. denominator in
        if Pftk_stats.Rng.bernoulli rng (Float.min 1. prob) then begin
          state.since_drop <- 0;
          false
        end
        else begin
          state.since_drop <- state.since_drop + 1;
          true
        end
      end

let on_dequeue t state ~queue_length =
  match t with
  | Drop_tail _ -> ()
  | Red { weight; _ } ->
      state.avg <-
        ((1. -. weight) *. state.avg) +. (weight *. float_of_int queue_length)

let average_queue state = state.avg
