type config = {
  rate : float;
  packet_size : int;
  mean_on : float;
  mean_off : float;
  pareto_shape : float option;
}

let default =
  {
    rate = 200.;
    packet_size = 1000;
    mean_on = 1.;
    mean_off = 2.;
    pareto_shape = None;
  }

type t = { mutable packets_sent : int }

let validate c =
  if not (c.rate > 0.) then invalid_arg "Cross_traffic: rate must be positive";
  if c.packet_size <= 0 then invalid_arg "Cross_traffic: bad packet size";
  if not (c.mean_on > 0. && c.mean_off > 0.) then
    invalid_arg "Cross_traffic: durations must be positive";
  match c.pareto_shape with
  | Some a when not (a > 1.) ->
      invalid_arg "Cross_traffic: pareto shape must exceed 1"
  | Some _ | None -> ()

(* Pareto with the requested mean: scale x_m = mean (a-1)/a, sample
   x_m * U^(-1/a). *)
let on_duration config rng =
  match config.pareto_shape with
  | None -> Pftk_stats.Rng.exponential rng config.mean_on
  | Some a ->
      let x_m = config.mean_on *. (a -. 1.) /. a in
      let u = 1. -. Pftk_stats.Rng.float rng in
      x_m *. (u ** (-1. /. a))

let start ?(config = default) ~sim ~rng ~send () =
  validate config;
  let t = { packets_sent = 0 } in
  let rec off_period () =
    ignore
      (Sim.schedule sim
         ~delay:(Pftk_stats.Rng.exponential rng config.mean_off)
         on_period)
  and on_period () =
    let ends_at = Sim.now sim +. on_duration config rng in
    let rec burst () =
      if Sim.now sim < ends_at then begin
        t.packets_sent <- t.packets_sent + 1;
        send ~size:config.packet_size;
        ignore
          (Sim.schedule sim
             ~delay:(Pftk_stats.Rng.exponential rng (1. /. config.rate))
             burst)
      end
      else off_period ()
    in
    burst ()
  in
  off_period ();
  t

let packets_sent t = t.packets_sent
let duty_cycle c = c.mean_on /. (c.mean_on +. c.mean_off)
let mean_rate c = c.rate *. duty_cycle c
