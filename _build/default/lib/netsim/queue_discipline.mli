(** Buffer management policies for link queues.

    A discipline decides, per arriving packet, whether to enqueue or drop,
    given the instantaneous and (for RED) averaged queue occupancy.  The
    paper's measurement paths lose packets to tail-drop router buffers;
    RED [4] is included because it produces the closer-to-Bernoulli loss
    pattern that §IV discusses. *)

type t =
  | Drop_tail of { capacity : int }
      (** Drop arrivals once [capacity] packets are queued. *)
  | Red of {
      capacity : int;  (** Hard limit, packets. *)
      min_threshold : float;  (** avg queue below this: never drop. *)
      max_threshold : float;  (** avg queue above this: always drop. *)
      max_probability : float;  (** drop prob. as avg reaches max_th. *)
      weight : float;  (** EWMA weight for the average queue (ns default 0.002). *)
    }

val drop_tail : capacity:int -> t
val red :
  ?weight:float ->
  ?max_probability:float ->
  capacity:int ->
  min_threshold:float ->
  max_threshold:float ->
  unit ->
  t

type state
(** Per-queue mutable discipline state (RED average, drop counter). *)

val init : t -> state

val admit : t -> state -> rng:Pftk_stats.Rng.t -> queue_length:int -> bool
(** [admit] is called on each arrival with the pre-enqueue queue length;
    [false] means drop.  Updates RED's moving average. *)

val on_dequeue : t -> state -> queue_length:int -> unit
(** Notify the discipline that a packet left (RED idle-time bookkeeping). *)

val average_queue : state -> float
(** RED's current average ([0.] under drop-tail). *)
