lib/netsim/path.mli: Link Pftk_stats Queue_discipline Sim
