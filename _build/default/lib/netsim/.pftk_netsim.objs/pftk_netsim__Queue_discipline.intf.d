lib/netsim/queue_discipline.mli: Pftk_stats
