lib/netsim/sim.ml: Array Float
