lib/netsim/link.ml: Pftk_stats Queue Queue_discipline Sim
