lib/netsim/cross_traffic.ml: Pftk_stats Sim
