lib/netsim/cross_traffic.mli: Pftk_stats Sim
