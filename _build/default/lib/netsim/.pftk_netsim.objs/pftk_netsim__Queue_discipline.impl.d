lib/netsim/queue_discipline.ml: Float Pftk_stats
