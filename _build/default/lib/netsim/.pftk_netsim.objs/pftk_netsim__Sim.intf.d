lib/netsim/sim.mli:
