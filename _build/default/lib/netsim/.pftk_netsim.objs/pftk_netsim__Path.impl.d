lib/netsim/path.ml: Link
