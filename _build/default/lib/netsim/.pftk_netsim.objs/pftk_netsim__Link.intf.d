lib/netsim/link.mli: Pftk_stats Queue_discipline Sim
