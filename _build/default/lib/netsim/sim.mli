(** Discrete-event simulation core: a virtual clock and a priority queue of
    timestamped callbacks.

    Events at equal timestamps fire in scheduling order (a monotone sequence
    number breaks ties), which keeps runs fully deterministic. *)

type t

type event
(** Handle for cancellation. *)

val create : unit -> t

val now : t -> float
(** Current virtual time, seconds.  Starts at 0. *)

val schedule : t -> delay:float -> (unit -> unit) -> event
(** [schedule t ~delay f] fires [f] at [now t +. delay].
    Raises [Invalid_argument] if [delay < 0.]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event
(** Absolute-time variant; [time] must not precede [now t]. *)

val cancel : event -> unit
(** Idempotent; cancelling a fired event is a no-op. *)

val cancelled : event -> bool

val pending : t -> int
(** Live (scheduled, not cancelled, not fired) event count. *)

val run : ?until:float -> t -> unit
(** Dispatch events in timestamp order.  With [until], stops once the clock
    would pass it (the clock is left at [until]); otherwise runs until no
    events remain. *)

val step : t -> bool
(** Dispatch the single next event; [false] when none remain. *)
