type ('data, 'ack) t = { forward : 'data Link.t; reverse : 'ack Link.t }

let create ?forward_discipline ?reverse_discipline ?forward_loss ?reverse_loss
    ~sim ~rng ~forward_bandwidth ~reverse_bandwidth ~forward_delay
    ~reverse_delay ~deliver_data ~deliver_ack () =
  let forward =
    Link.create ?discipline:forward_discipline ?random_loss:forward_loss ~sim
      ~rng ~bandwidth:forward_bandwidth ~delay:forward_delay
      ~deliver:deliver_data ()
  in
  let reverse =
    Link.create ?discipline:reverse_discipline ?random_loss:reverse_loss ~sim
      ~rng ~bandwidth:reverse_bandwidth ~delay:reverse_delay
      ~deliver:deliver_ack ()
  in
  { forward; reverse }

let symmetric ?discipline ?forward_loss ?reverse_loss ~sim ~rng ~bandwidth
    ~one_way_delay ~deliver_data ~deliver_ack () =
  create ?forward_discipline:discipline ?reverse_discipline:discipline
    ?forward_loss ?reverse_loss ~sim ~rng ~forward_bandwidth:bandwidth
    ~reverse_bandwidth:bandwidth ~forward_delay:one_way_delay
    ~reverse_delay:one_way_delay ~deliver_data ~deliver_ack ()

let base_rtt t = Link.delay t.forward +. Link.delay t.reverse
