(** A duplex path: independent forward (data) and reverse (ACK) links,
    which is how the measurement paths of the paper are modeled — the
    bottleneck, buffering and loss act on the data direction while ACKs
    travel a lightly-loaded reverse channel. *)

type ('data, 'ack) t = {
  forward : 'data Link.t;
  reverse : 'ack Link.t;
}

val create :
  ?forward_discipline:Queue_discipline.t ->
  ?reverse_discipline:Queue_discipline.t ->
  ?forward_loss:(unit -> bool) ->
  ?reverse_loss:(unit -> bool) ->
  sim:Sim.t ->
  rng:Pftk_stats.Rng.t ->
  forward_bandwidth:float ->
  reverse_bandwidth:float ->
  forward_delay:float ->
  reverse_delay:float ->
  deliver_data:('data -> unit) ->
  deliver_ack:('ack -> unit) ->
  unit ->
  ('data, 'ack) t

val symmetric :
  ?discipline:Queue_discipline.t ->
  ?forward_loss:(unit -> bool) ->
  ?reverse_loss:(unit -> bool) ->
  sim:Sim.t ->
  rng:Pftk_stats.Rng.t ->
  bandwidth:float ->
  one_way_delay:float ->
  deliver_data:('data -> unit) ->
  deliver_ack:('ack -> unit) ->
  unit ->
  ('data, 'ack) t
(** Same bandwidth/delay both ways; the base RTT is
    [2 *. one_way_delay] plus serialization and queueing. *)

val base_rtt : ('data, 'ack) t -> float
(** Propagation-only round-trip: forward delay + reverse delay. *)
