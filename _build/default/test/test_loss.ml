(* Tests for pftk_loss: statistical and structural behavior of every loss
   process. *)

module Loss = Pftk_loss.Loss_process

let case name f = Alcotest.test_case name `Quick f
let rng ?(seed = 5L) () = Pftk_stats.Rng.create ~seed ()

let check_float ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let test_none () =
  for _ = 1 to 100 do
    Alcotest.(check bool) "never drops" false (Loss.drops Loss.none)
  done

let test_bernoulli_rate () =
  let process = Loss.bernoulli (rng ()) ~p:0.2 in
  check_float ~eps:0.01 "empirical rate" 0.2
    (Loss.stationary_loss_rate process 50_000)

let test_bernoulli_zero () =
  let process = Loss.bernoulli (rng ()) ~p:0. in
  check_float "p = 0 never drops" 0. (Loss.stationary_loss_rate process 1000)

let test_bernoulli_validation () =
  Alcotest.check_raises "p = 1 rejected"
    (Invalid_argument "Loss_process.bernoulli: p outside [0, 1)") (fun () ->
      ignore (Loss.bernoulli (rng ()) ~p:1.))

let test_round_correlated_tail () =
  (* Once a packet drops, the rest of the round must drop. *)
  let process = Loss.round_correlated (rng ()) ~p:0.3 in
  let checked = ref false in
  for _round = 1 to 200 do
    Loss.new_round process;
    let lost_yet = ref false in
    for _pkt = 1 to 20 do
      let dropped = Loss.drops process in
      if !lost_yet then begin
        checked := true;
        Alcotest.(check bool) "tail all lost" true dropped
      end;
      if dropped then lost_yet := true
    done
  done;
  Alcotest.(check bool) "exercised the tail case" true !checked

let test_round_correlated_first_packet_rate () =
  (* The first packet of each round is lost with probability p. *)
  let process = Loss.round_correlated (rng ()) ~p:0.15 in
  let n = 50_000 in
  let lost = ref 0 in
  for _ = 1 to n do
    Loss.new_round process;
    if Loss.drops process then incr lost
  done;
  check_float ~eps:0.01 "first-packet loss rate" 0.15
    (float_of_int !lost /. float_of_int n)

let test_round_correlated_reset () =
  let process = Loss.round_correlated (rng ()) ~p:0.99 in
  Loss.new_round process;
  ignore (Loss.drops process);
  Loss.reset process;
  (* After reset the lossy-tail flag is cleared: with p = 0.99 the next
     verdict is random again, but the flag-driven certainty is gone.  Use a
     p = 0 process to make it deterministic instead. *)
  let deterministic = Loss.round_correlated (rng ()) ~p:0. in
  Loss.new_round deterministic;
  Alcotest.(check bool) "clean after reset" false (Loss.drops deterministic)

let test_gilbert_stationary_rate () =
  (* Stationary loss = loss_in_bad * enter / (enter + exit). *)
  let process =
    Loss.gilbert (rng ()) ~p_enter_bad:0.02 ~p_exit_bad:0.18 ()
  in
  check_float ~eps:0.01 "gilbert stationary rate" 0.1
    (Loss.stationary_loss_rate process 200_000)

let test_gilbert_burstiness () =
  (* Losses cluster: the conditional loss probability after a loss is far
     higher than the marginal. *)
  let process = Loss.gilbert (rng ()) ~p_enter_bad:0.01 ~p_exit_bad:0.1 () in
  let n = 100_000 in
  let losses = ref 0 and pairs = ref 0 and prev = ref false in
  for _ = 1 to n do
    let d = Loss.drops process in
    if d then incr losses;
    if d && !prev then incr pairs;
    prev := d
  done;
  let marginal = float_of_int !losses /. float_of_int n in
  let conditional = float_of_int !pairs /. float_of_int !losses in
  Alcotest.(check bool) "bursty" true (conditional > 3. *. marginal)

let test_gilbert_validation () =
  Alcotest.check_raises "bad enter probability"
    (Invalid_argument "Loss_process.gilbert: p_enter_bad outside (0, 1]")
    (fun () -> ignore (Loss.gilbert (rng ()) ~p_enter_bad:0. ~p_exit_bad:0.5 ()))

let test_periodic () =
  let process = Loss.periodic ~period:3 in
  let pattern = List.init 9 (fun _ -> Loss.drops process) in
  Alcotest.(check (list bool)) "every third"
    [ false; false; true; false; false; true; false; false; true ]
    pattern

let test_periodic_reset () =
  let process = Loss.periodic ~period:2 in
  ignore (Loss.drops process);
  Loss.reset process;
  Alcotest.(check bool) "counter cleared" false (Loss.drops process)

let test_scripted_cycles () =
  let process = Loss.scripted [| true; false |] in
  Alcotest.(check (list bool)) "cycles"
    [ true; false; true; false ]
    (List.init 4 (fun _ -> Loss.drops process))

let test_scripted_empty () =
  Alcotest.check_raises "empty pattern"
    (Invalid_argument "Loss_process.scripted: empty pattern") (fun () ->
      ignore (Loss.scripted [||]))

let test_episodic_blackout () =
  (* Force an episode on the first loss and verify whole following rounds
     are blacked out. *)
  let process =
    Loss.episodic (rng ()) ~p:1.0e-9 ~burst_prob:1. ~mean_burst_rounds:1.
  in
  (* p tiny: manufacture the loss via a p = high process instead. *)
  ignore process;
  let process =
    Loss.episodic (rng ()) ~p:0.9999 ~burst_prob:1. ~mean_burst_rounds:1.
  in
  Loss.new_round process;
  Alcotest.(check bool) "first packet lost" true (Loss.drops process);
  Loss.new_round process;
  (* The following round(s) are killed entirely; with mean 1 the geometric
     draw is >= 1 round. *)
  let all_lost = List.init 10 (fun _ -> Loss.drops process) in
  Alcotest.(check bool) "next round blacked out" true
    (List.for_all Fun.id all_lost)

let test_episodic_without_bursts_is_round_correlated () =
  (* burst_prob = 0 degenerates to the round-correlated process. *)
  let episodic = Loss.episodic (rng ~seed:7L ()) ~p:0.2 ~burst_prob:0. ~mean_burst_rounds:1. in
  let plain = Loss.round_correlated (rng ~seed:7L ()) ~p:0.2 in
  for _round = 1 to 500 do
    Loss.new_round episodic;
    Loss.new_round plain;
    for _pkt = 1 to 10 do
      Alcotest.(check bool) "identical decisions" (Loss.drops plain)
        (Loss.drops episodic)
    done
  done

let test_episodic_reset () =
  let process =
    Loss.episodic (rng ()) ~p:0.9999 ~burst_prob:1. ~mean_burst_rounds:5.
  in
  Loss.new_round process;
  ignore (Loss.drops process);
  Loss.reset process;
  Loss.new_round process;
  (* After reset, pending blackout rounds are cleared; loss is again
     probabilistic (here still near-certain due to p, so check the flagged
     state instead with a benign p). *)
  let benign =
    Loss.episodic (rng ()) ~p:0. ~burst_prob:1. ~mean_burst_rounds:5.
  in
  Loss.new_round benign;
  Alcotest.(check bool) "no residual blackout" false (Loss.drops benign)

let test_episodic_validation () =
  Alcotest.check_raises "mean_burst_rounds < 1"
    (Invalid_argument "Loss_process.episodic: mean_burst_rounds < 1")
    (fun () ->
      ignore (Loss.episodic (rng ()) ~p:0.1 ~burst_prob:0.5 ~mean_burst_rounds:0.5))

let test_names () =
  Alcotest.(check string) "none" "none" (Loss.name Loss.none);
  Alcotest.(check bool) "bernoulli name mentions p" true
    (String.length (Loss.name (Loss.bernoulli (rng ()) ~p:0.1)) > 0)

let test_stationary_loss_rate_validation () =
  Alcotest.check_raises "n < 1"
    (Invalid_argument "Loss_process.stationary_loss_rate: n must be >= 1")
    (fun () -> ignore (Loss.stationary_loss_rate Loss.none 0))

let () =
  Alcotest.run "pftk_loss"
    [
      ( "basic",
        [
          case "none" test_none;
          case "names" test_names;
          case "stationary rate validation" test_stationary_loss_rate_validation;
        ] );
      ( "bernoulli",
        [
          case "rate" test_bernoulli_rate;
          case "zero" test_bernoulli_zero;
          case "validation" test_bernoulli_validation;
        ] );
      ( "round-correlated",
        [
          case "lossy tail" test_round_correlated_tail;
          case "first-packet rate" test_round_correlated_first_packet_rate;
          case "reset" test_round_correlated_reset;
        ] );
      ( "gilbert",
        [
          case "stationary rate" test_gilbert_stationary_rate;
          case "burstiness" test_gilbert_burstiness;
          case "validation" test_gilbert_validation;
        ] );
      ( "periodic-scripted",
        [
          case "periodic" test_periodic;
          case "periodic reset" test_periodic_reset;
          case "scripted cycles" test_scripted_cycles;
          case "scripted empty" test_scripted_empty;
        ] );
      ( "episodic",
        [
          case "blackout rounds" test_episodic_blackout;
          case "degenerates to round-correlated" test_episodic_without_bursts_is_round_correlated;
          case "reset" test_episodic_reset;
          case "validation" test_episodic_validation;
        ] );
    ]
