(* Tests for pftk_experiments: every table/figure driver runs in quick mode
   and its output must exhibit the paper's qualitative shape — who wins, in
   which direction, and by roughly what kind of margin. *)

open Pftk_experiments
module Path_profile = Pftk_dataset.Path_profile

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* --- Table II ---------------------------------------------------------------- *)

let table2_rows = lazy (Table2.generate ~seed:101L ~duration:600. ())

let test_table2_all_paths () =
  Alcotest.(check int) "24 rows" 24 (List.length (Lazy.force table2_rows))

let test_table2_timeouts_majority () =
  (* The paper's headline observation must survive simulation: timeouts are
     the majority of loss indications in most traces. *)
  let rows = Lazy.force table2_rows in
  let majority =
    List.filter (fun r -> Table2.timeout_fraction r > 0.5) rows
  in
  Alcotest.(check bool) "majority-timeout traces >= 16/24" true
    (List.length majority >= 16)

let test_table2_loss_rates_track_published () =
  let rows = Lazy.force table2_rows in
  let ok =
    List.filter
      (fun r ->
        match r.Table2.profile.Path_profile.table2 with
        | None -> true
        | Some row ->
            let target = Pftk_dataset.Table2_data.observed_p row in
            let sim = r.Table2.summary.Pftk_trace.Analyzer.observed_p in
            Float.abs (sim -. target) /. target < 0.5)
      rows
  in
  Alcotest.(check bool) "most rows within 50% of published p" true
    (List.length ok >= 18)

let test_table2_backoff_present () =
  (* Exponential backoff (T1+) occurs with significant frequency overall. *)
  let rows = Lazy.force table2_rows in
  let deep =
    List.fold_left
      (fun acc r ->
        acc
        + Array.fold_left ( + ) 0
            (Array.sub r.Table2.summary.Pftk_trace.Analyzer.to_by_backoff 1 5))
      0 rows
  in
  Alcotest.(check bool) "multi-timeout sequences occur" true (deep > 20)

let test_table2_rtt_t0_columns () =
  (* The analyzer's measured RTT and T0 must sit near the profile values
     they were simulated with. *)
  List.iter
    (fun r ->
      let profile = r.Table2.profile in
      let s = r.Table2.summary in
      Alcotest.(check bool)
        (Path_profile.label profile ^ " rtt")
        true
        (Float.abs (s.Pftk_trace.Analyzer.avg_rtt -. profile.Path_profile.rtt)
         /. profile.Path_profile.rtt
        < 0.1);
      Alcotest.(check bool)
        (Path_profile.label profile ^ " t0")
        true
        (Float.abs (s.Pftk_trace.Analyzer.avg_t0 -. profile.Path_profile.t0)
         /. profile.Path_profile.t0
        < 0.1))
    (Lazy.force table2_rows)

(* --- Fig. 7 ------------------------------------------------------------------------ *)

let fig7_panel =
  lazy
    (Fig7.panel_for ~seed:102L ~duration:1200.
       (List.hd Path_profile.fig7_paths))

let test_fig7_points () =
  let panel = Lazy.force fig7_panel in
  Alcotest.(check bool) "has interval points" true
    (List.length panel.Fig7.points >= 10);
  List.iter
    (fun pt ->
      Alcotest.(check bool) "p in [0,1)" true
        (pt.Fig7.p >= 0. && pt.Fig7.p < 1.))
    panel.Fig7.points

let test_fig7_curves_decreasing () =
  let panel = Lazy.force fig7_panel in
  let decreasing curve =
    let rec ok = function
      | (_, a) :: ((_, b) :: _ as rest) -> a >= b -. 1e-9 && ok rest
      | _ -> true
    in
    ok curve
  in
  Alcotest.(check bool) "full curve decreasing" true
    (decreasing panel.Fig7.full_curve);
  Alcotest.(check bool) "TD-only curve decreasing" true
    (decreasing panel.Fig7.td_only_curve)

let test_fig7_td_only_overestimates () =
  (* At high loss frequencies the TD-only curve sits far above the full
     model -- the figure's visual message. *)
  let panel = Lazy.force fig7_panel in
  let at curve target =
    List.fold_left
      (fun best (p, v) ->
        match best with
        | Some (bp, _) when Float.abs (p -. target) >= Float.abs (bp -. target) ->
            best
        | _ -> Some (p, v))
      None curve
    |> Option.get |> snd
  in
  Alcotest.(check bool) "TD-only above full at p=0.2" true
    (at panel.Fig7.td_only_curve 0.2 > 1.5 *. at panel.Fig7.full_curve 0.2)

let test_fig7_window_cap_visible () =
  (* manic-baskerville has Wm = 6: at tiny p the full model flattens at
     Wm/RTT * 100 s while TD-only keeps growing. *)
  let panel = Lazy.force fig7_panel in
  match (panel.Fig7.full_curve, panel.Fig7.td_only_curve) with
  | (p1, full1) :: _, (_, td1) :: _ ->
      Alcotest.(check bool) "low-p full capped below TD-only" true
        (p1 < 1e-3 && full1 < td1)
  | _ -> Alcotest.fail "curves empty"

(* --- Fig. 8 ------------------------------------------------------------------------- *)

let fig8_panel =
  lazy (Fig8.panel_for ~seed:103L ~count:30 (List.hd Path_profile.fig8_paths))

let test_fig8_samples () =
  let panel = Lazy.force fig8_panel in
  Alcotest.(check bool) "most traces usable" true
    (List.length panel.Fig8.samples >= 20);
  List.iter
    (fun s ->
      Alcotest.(check bool) "predictions positive" true
        (s.Fig8.full > 0. && s.Fig8.td_only > 0. && s.Fig8.measured > 0.))
    panel.Fig8.samples

let test_fig8_full_beats_td_only () =
  let full_err, td_err = Fig8.average_errors (Lazy.force fig8_panel) in
  Alcotest.(check bool) "proposed model more accurate" true (full_err < td_err)

let test_fig8_td_only_overestimates () =
  (* TD-only should overestimate on average (its signature failure). *)
  let panel = Lazy.force fig8_panel in
  let signed =
    Pftk_stats.Error_metrics.mean_signed_error
      ~predicted:
        (Array.of_list (List.map (fun s -> s.Fig8.td_only) panel.Fig8.samples))
      ~observed:
        (Array.of_list (List.map (fun s -> s.Fig8.measured) panel.Fig8.samples))
  in
  Alcotest.(check bool) "TD-only biased high" true (signed > 0.)

(* --- Figs. 9 and 10 ------------------------------------------------------------------- *)

let test_fig9_shape () =
  let entries = Fig9.generate ~seed:104L ~duration:600. () in
  Alcotest.(check bool) "most paths usable" true (List.length entries >= 20);
  (* Sorted by TD-only error. *)
  let rec sorted = function
    | a :: (b :: _ as rest) ->
        a.Fig9.td_only_error <= b.Fig9.td_only_error && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted entries);
  (* The paper's conclusion: the proposed model is the better estimator in
     most cases. *)
  let wins =
    List.filter (fun e -> e.Fig9.full_error < e.Fig9.td_only_error) entries
  in
  Alcotest.(check bool) "full model wins on >= 2/3 of traces" true
    (3 * List.length wins >= 2 * List.length entries)

let test_fig10_shape () =
  let entries = Fig10.generate ~seed:105L ~count:20 () in
  Alcotest.(check bool) "entries exist" true (List.length entries >= 4);
  let wins =
    List.filter (fun e -> e.Fig9.full_error < e.Fig9.td_only_error) entries
  in
  Alcotest.(check bool) "full model wins on most pairs" true
    (2 * List.length wins > List.length entries)

(* --- Fig. 11 / Sec. IV ------------------------------------------------------------------- *)

let test_fig11_correlation_contrast () =
  let wide = Fig11.run_wide_area ~seed:106L ~duration:600. () in
  let modem = Fig11.run_modem ~seed:107L ~duration:1200. () in
  Alcotest.(check bool)
    (Printf.sprintf "wide-area |corr| small (%.2f)" wide.Fig11.correlation)
    true
    (Float.abs wide.Fig11.correlation < 0.45);
  Alcotest.(check bool)
    (Printf.sprintf "modem corr large (%.2f)" modem.Fig11.correlation)
    true
    (modem.Fig11.correlation > 0.6);
  Alcotest.(check bool) "modem correlation dominates" true
    (modem.Fig11.correlation > Float.abs wide.Fig11.correlation +. 0.2)

let test_fig11_model_fails_on_modem () =
  (* Sec. IV: the model "fails to match the observed data" behind the
     modem, while remaining a good estimator on the wide-area path. *)
  let modem = Fig11.run_modem ~seed:108L ~duration:2400. () in
  let wide = Fig11.run_wide_area ~seed:108L ~duration:1200. () in
  let mismatch r =
    Float.abs ((r.Fig11.predicted_rate /. r.Fig11.measured_rate) -. 1.)
  in
  Alcotest.(check bool)
    (Printf.sprintf "modem mismatch large (%.2f)" (mismatch modem))
    true
    (mismatch modem > 0.2);
  Alcotest.(check bool)
    (Printf.sprintf "wide-area mismatch smaller (%.2f vs %.2f)"
       (mismatch wide) (mismatch modem))
    true
    (mismatch wide < mismatch modem)

(* --- Fig. 12 -------------------------------------------------------------------------------- *)

let fig12 = lazy (Fig12.generate ~seed:109L ~mc_duration:4000. ())

let test_fig12_markov_close () =
  let r = Lazy.force fig12 in
  Alcotest.(check bool)
    (Printf.sprintf "max gap %.2f < 0.5" r.Fig12.max_gap)
    true (r.Fig12.max_gap < 0.5)

let test_fig12_series_complete () =
  let r = Lazy.force fig12 in
  let n = List.length r.Fig12.full.Fig12.points in
  Alcotest.(check bool) "full series populated" true (n >= 25);
  Alcotest.(check int) "markov series same length" n
    (List.length r.Fig12.markov.Fig12.points)

let test_fig12_monte_carlo_between () =
  (* The Monte-Carlo should land in the neighborhood of both analytic
     curves (within 50% of the full model everywhere on the grid). *)
  let r = Lazy.force fig12 in
  List.iter2
    (fun (p, full) (_, mc) ->
      Alcotest.(check bool)
        (Printf.sprintf "mc near full at p=%g" p)
        true
        (Float.abs (mc -. full) /. full < 0.5))
    r.Fig12.full.Fig12.points r.Fig12.monte_carlo.Fig12.points

(* --- Fig. 13 -------------------------------------------------------------------------------- *)

let test_fig13_throughput_below_send () =
  let r = Fig13.generate () in
  List.iter2
    (fun (p, b) (_, t) ->
      Alcotest.(check bool)
        (Printf.sprintf "T <= B at p=%g" p)
        true (t <= b +. 1e-9))
    r.Fig13.send_rate r.Fig13.throughput

let test_fig13_gap_widens () =
  let r = Fig13.generate () in
  match (r.Fig13.delivery_ratio, List.rev r.Fig13.delivery_ratio) with
  | (_, first) :: _, (_, last) :: _ ->
      Alcotest.(check bool) "delivery ratio shrinks with p" true (last < first)
  | _ -> Alcotest.fail "empty series"

(* --- Figs. 1/3/5 ------------------------------------------------------------------------------ *)

let test_fig_window_regimes () =
  let paths = Fig_window.generate ~seed:110L () in
  Alcotest.(check int) "three sample paths" 3 (List.length paths);
  List.iter
    (fun sp ->
      Alcotest.(check bool)
        (sp.Fig_window.label ^ " windows >= 1")
        true
        (Array.for_all (fun w -> w >= 1.) sp.Fig_window.windows))
    paths;
  (* The window-limited path must hit and respect its cap of 12. *)
  let limited = List.nth paths 2 in
  Alcotest.(check bool) "capped at 12" true
    (Array.for_all (fun w -> w <= 12.) limited.Fig_window.windows);
  Alcotest.(check bool) "reaches the cap" true
    (Array.exists (fun w -> w >= 12.) limited.Fig_window.windows)

let test_fig_window_sawtooth () =
  (* The TD-only path halves (roughly) at losses: look for at least one
     drop by a factor close to 2 and subsequent linear growth. *)
  let paths = Fig_window.generate ~seed:111L () in
  let td = List.hd paths in
  let w = td.Fig_window.windows in
  let halvings = ref 0 in
  for i = 0 to Array.length w - 2 do
    if w.(i + 1) < 0.7 *. w.(i) && w.(i + 1) >= (w.(i) /. 2.) -. 1.5 then
      incr halvings
  done;
  Alcotest.(check bool) "sawtooth halvings present" true (!halvings >= 2)

(* --- Table I ------------------------------------------------------------------------------------ *)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let test_table1_prints () =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Table1.print ppf;
  Format.pp_print_flush ppf ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "mentions manic" true (contains out "manic");
  Alcotest.(check bool) "mentions att.com" true (contains out "att.com")

let () =
  Alcotest.run "pftk_experiments"
    [
      ( "table2",
        [
          slow_case "all paths" test_table2_all_paths;
          slow_case "timeouts majority" test_table2_timeouts_majority;
          slow_case "loss rates track published" test_table2_loss_rates_track_published;
          slow_case "backoff present" test_table2_backoff_present;
          slow_case "RTT/T0 columns" test_table2_rtt_t0_columns;
        ] );
      ( "fig7",
        [
          slow_case "points" test_fig7_points;
          slow_case "curves decreasing" test_fig7_curves_decreasing;
          slow_case "TD-only overestimates" test_fig7_td_only_overestimates;
          slow_case "window cap visible" test_fig7_window_cap_visible;
        ] );
      ( "fig8",
        [
          slow_case "samples" test_fig8_samples;
          slow_case "full beats TD-only" test_fig8_full_beats_td_only;
          slow_case "TD-only biased high" test_fig8_td_only_overestimates;
        ] );
      ( "fig9-10",
        [
          slow_case "fig9 shape" test_fig9_shape;
          slow_case "fig10 shape" test_fig10_shape;
        ] );
      ( "fig11",
        [
          slow_case "correlation contrast" test_fig11_correlation_contrast;
          slow_case "model fails on modem" test_fig11_model_fails_on_modem;
        ] );
      ( "fig12",
        [
          slow_case "markov close" test_fig12_markov_close;
          slow_case "series complete" test_fig12_series_complete;
          slow_case "monte carlo near" test_fig12_monte_carlo_between;
        ] );
      ( "fig13",
        [
          case "T <= B" test_fig13_throughput_below_send;
          case "gap widens" test_fig13_gap_widens;
        ] );
      ( "fig-window",
        [
          case "regimes" test_fig_window_regimes;
          case "sawtooth" test_fig_window_sawtooth;
        ] );
      ("table1", [ case "prints hosts" test_table1_prints ]);
    ]
