test/test_netsim.ml: Alcotest Array Float List Pftk_netsim Pftk_stats Printf
