test/test_loss.ml: Alcotest Fun List Pftk_loss Pftk_stats String
