test/test_stats.ml: Alcotest Array Correlation Descriptive Error_metrics Float Gen Histogram List Pftk_stats QCheck QCheck_alcotest Regression Rng Running
