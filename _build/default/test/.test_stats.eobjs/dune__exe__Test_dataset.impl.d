test/test_dataset.ml: Alcotest Array Float List Pftk_core Pftk_dataset Pftk_stats Pftk_tcp Pftk_trace
