test/test_trace.ml: Alcotest Array Float List Pftk_loss Pftk_stats Pftk_tcp Pftk_trace String
