test/test_loss.mli:
