test/test_core.ml: Alcotest Approx_model Array Float Full_model Inverse List Markov Model Params Pftk_core Printf QCheck QCheck_alcotest Qhat Sweep Tdonly Throughput Timeouts
