test/test_tcp.ml: Alcotest Array Float Full_model List Option Params Pftk_core Pftk_loss Pftk_netsim Pftk_stats Pftk_tcp Pftk_trace Printf
